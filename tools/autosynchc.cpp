//===- tools/autosynchc.cpp - The AutoSynch translator CLI -------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Command-line front end of the source-to-source translator (the paper's
// preprocessor, Fig. 2):
//
//   autosynchc input.asynch [-o output.h]
//
// Reads the monitor-language source, emits a C++ header of monitor classes
// built on the autosynch runtime, or prints diagnostics and exits nonzero.
//
//===----------------------------------------------------------------------===//

#include "translate/Translate.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace autosynch;

static int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <input.asynch> [-o <output.h>]\n"
               "Translates AutoSynch monitor declarations to C++ classes\n"
               "over the autosynch runtime (writes stdout by default).\n",
               Argv0);
  return 2;
}

int main(int Argc, char **Argv) {
  const char *InputPath = nullptr;
  const char *OutputPath = nullptr;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "-o") == 0) {
      if (I + 1 == Argc)
        return usage(Argv[0]);
      OutputPath = Argv[++I];
    } else if (Argv[I][0] == '-') {
      return usage(Argv[0]);
    } else if (!InputPath) {
      InputPath = Argv[I];
    } else {
      return usage(Argv[0]);
    }
  }
  if (!InputPath)
    return usage(Argv[0]);

  std::ifstream In(InputPath);
  if (!In) {
    std::fprintf(stderr, "autosynchc: error: cannot open '%s'\n", InputPath);
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  // Use the basename for the banner/guard.
  std::string Name(InputPath);
  size_t Slash = Name.find_last_of('/');
  if (Slash != std::string::npos)
    Name = Name.substr(Slash + 1);

  translate::TranslateResult Result =
      translate::translateMonitorSource(Source, Name);
  if (!Result.ok()) {
    for (const ParseError &E : Result.Errors)
      std::fprintf(stderr, "%s:%s: error: %s\n", InputPath,
                   (std::to_string(E.Line) + ":" + std::to_string(E.Col))
                       .c_str(),
                   E.Message.c_str());
    return 1;
  }

  if (!OutputPath) {
    std::fputs(Result.Cpp.c_str(), stdout);
    return 0;
  }
  std::ofstream OutFile(OutputPath);
  if (!OutFile) {
    std::fprintf(stderr, "autosynchc: error: cannot write '%s'\n",
                 OutputPath);
    return 1;
  }
  OutFile << Result.Cpp;
  return 0;
}

//===- tools/autosynch_workbench.cpp - Multi-monitor workload CLI -----------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Drives the workload engine's scenario graphs over a sweep of thread
// counts, signaling mechanisms, and sync backends, printing a per-cell
// summary table and writing the full results as machine-readable JSON
// (BENCH_workload.json by default; schema documented in the README).
//
//   autosynch-workbench --scenario=pipeline --threads=8 --tokens=20000
//   autosynch-workbench --list
//
// Thread counts default to the AUTOSYNCH_BENCH_THREADS sweep (see
// bench_support/BenchOptions); every flag has a sane default so the bare
// invocation produces a full sweep of the pipeline scenario.
//
//===----------------------------------------------------------------------===//

#include "bench_support/BenchOptions.h"
#include "bench_support/Table.h"
#include "support/Stats.h"
#include "workload/Engine.h"
#include "workload/Json.h"
#include "workload/Scenario.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace autosynch;
using namespace autosynch::workload;

namespace {

int usage(const char *Argv0, int Code) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "Runs multi-monitor workload scenarios and writes JSON results.\n"
      "\n"
      "  --list                 print the built-in scenarios and exit\n"
      "  --scenario=NAME        scenario to run (default: pipeline)\n"
      "  --threads=N[,N...]     workers per processing stage sweep\n"
      "                         (default: AUTOSYNCH_BENCH_THREADS or 2..64)\n"
      "  --mechanisms=M[,M...]  explicit,baseline,autosynch-t,autosynch\n"
      "                         (default: all four)\n"
      "  --backends=B[,B...]    std,futex (default: std)\n"
      "  --tokens=N             tokens per source (default: 10000)\n"
      "  --arrival=MODE         closed, open-uniform, open-poisson\n"
      "                         (default: the scenario's own setting)\n"
      "  --rate=R               open-loop tokens/sec per source\n"
      "  --seed=S               workload seed (default: 1)\n"
      "  --relay-filter=F[,F..] always,dirty: relay-filter sweep for the\n"
      "                         dirty-set ablation (default: dirty)\n"
      "  --op-timeout-us=N[,N..] per-op channel deadline sweep in\n"
      "                         microseconds; 0 = untimed (default: 0).\n"
      "                         Timed ops that expire are counted and\n"
      "                         retried, so token conservation holds\n"
      "  --json=PATH            output file (default: BENCH_workload.json;\n"
      "                         '-' for pure JSON on stdout, '' to skip)\n"
      "  --assert-plan-cache    fail unless every automatic (relay-policy)\n"
      "                         run served waits from the plan cache\n"
      "  --assert-relay-skips   fail unless every relay-policy dirty-filter\n"
      "                         run exercised the dirty-set machinery\n"
      "                         (skipped relays, filtered entries, or\n"
      "                         stamp short-circuits)\n",
      Argv0);
  return Code;
}

// Enum-style flags reject unknown values with the full list of valid
// choices — a typo'd cell label must fail loudly, never silently publish
// results under the default.
constexpr const char *RelayFilterChoices = "always, dirty";
constexpr const char *MechanismChoices =
    "explicit, baseline, autosynch-t, autosynch";
constexpr const char *BackendChoices = "std, futex";
constexpr const char *ArrivalChoices = "closed, open-uniform, open-poisson";

bool parseRelayFilter(std::string_view S, RelayFilter &Out) {
  if (S == "always")
    Out = RelayFilter::Always;
  else if (S == "dirty" || S == "dirty-set" || S == "dirtyset")
    Out = RelayFilter::DirtySet;
  else
    return false;
  return true;
}

bool parseMechanism(std::string_view S, Mechanism &Out) {
  if (S == "explicit")
    Out = Mechanism::Explicit;
  else if (S == "baseline")
    Out = Mechanism::Baseline;
  else if (S == "autosynch-t" || S == "AutoSynch-T")
    Out = Mechanism::AutoSynchT;
  else if (S == "autosynch" || S == "AutoSynch")
    Out = Mechanism::AutoSynch;
  else
    return false;
  return true;
}

bool parseBackend(std::string_view S, sync::Backend &Out) {
  if (S == "std")
    Out = sync::Backend::Std;
  else if (S == "futex")
    Out = sync::Backend::Futex;
  else
    return false;
  return true;
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

/// "--flag=value" match; returns the value half on success.
const char *matchFlag(const char *Arg, const char *Flag) {
  size_t N = std::strlen(Flag);
  if (std::strncmp(Arg, Flag, N) == 0 && Arg[N] == '=')
    return Arg + N + 1;
  return nullptr;
}

double fmtMs(uint64_t Ns) { return static_cast<double>(Ns) / 1e6; }

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchOptions Env = bench::BenchOptions::fromEnv();

  std::string ScenarioName = "pipeline";
  std::vector<int> Threads = Env.ThreadCounts;
  std::vector<Mechanism> Mechs = {Mechanism::Explicit, Mechanism::Baseline,
                                  Mechanism::AutoSynchT,
                                  Mechanism::AutoSynch};
  std::vector<sync::Backend> Backends = {sync::Backend::Std};
  std::vector<RelayFilter> Filters = {RelayFilter::DirtySet};
  std::vector<uint64_t> OpTimeoutsUs = {0};
  RunConfig Base;
  std::string JsonPath = "BENCH_workload.json";
  bool AssertPlanCache = false;
  bool AssertRelaySkips = false;

  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    const char *V;
    if (std::strcmp(Arg, "--list") == 0) {
      for (const ScenarioSpec &S : builtinScenarios()) {
        std::printf("%-10s %s\n", S.Name.c_str(), S.Description.c_str());
        for (const StageSpec &St : S.Stages) {
          std::printf("    %-10s %-15s", St.Name.c_str(),
                      stageKindName(St.Kind));
          if (St.Downstream.empty()) {
            std::printf(" -> (sink)\n");
            continue;
          }
          std::printf(" ->");
          for (int D : St.Downstream)
            std::printf(" %s", S.Stages[D].Name.c_str());
          std::printf("\n");
        }
      }
      return 0;
    }
    if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0)
      return usage(Argv[0], 0);
    if ((V = matchFlag(Arg, "--scenario"))) {
      ScenarioName = V;
    } else if ((V = matchFlag(Arg, "--threads"))) {
      Threads.clear();
      for (const std::string &T : splitList(V)) {
        char *End = nullptr;
        long N = std::strtol(T.c_str(), &End, 10);
        // Reject, not skip: a silently dropped cell would publish a
        // partial sweep as if it were complete.
        if (End == T.c_str() || *End != '\0' || N < 1 || N > 4096) {
          std::fprintf(stderr, "%s: bad --threads entry '%s'\n", Argv[0],
                       T.c_str());
          return 2;
        }
        Threads.push_back(static_cast<int>(N));
      }
      if (Threads.empty()) {
        std::fprintf(stderr, "%s: empty --threads list\n", Argv[0]);
        return 2;
      }
    } else if ((V = matchFlag(Arg, "--mechanisms"))) {
      Mechs.clear();
      for (const std::string &M : splitList(V)) {
        Mechanism Mech;
        if (!parseMechanism(M, Mech)) {
          std::fprintf(stderr, "%s: unknown mechanism '%s' (valid: %s)\n",
                       Argv[0], M.c_str(), MechanismChoices);
          return 2;
        }
        Mechs.push_back(Mech);
      }
      if (Mechs.empty()) {
        std::fprintf(stderr, "%s: empty --mechanisms list\n", Argv[0]);
        return 2; // A zero-cell sweep must not publish as success.
      }
    } else if ((V = matchFlag(Arg, "--backends"))) {
      Backends.clear();
      for (const std::string &B : splitList(V)) {
        sync::Backend Backend;
        if (!parseBackend(B, Backend)) {
          std::fprintf(stderr, "%s: unknown backend '%s' (valid: %s)\n",
                       Argv[0], B.c_str(), BackendChoices);
          return 2;
        }
        Backends.push_back(Backend);
      }
      if (Backends.empty()) {
        std::fprintf(stderr, "%s: empty --backends list\n", Argv[0]);
        return 2;
      }
    } else if ((V = matchFlag(Arg, "--relay-filter"))) {
      Filters.clear();
      for (const std::string &F : splitList(V)) {
        RelayFilter Filter;
        if (!parseRelayFilter(F, Filter)) {
          std::fprintf(stderr,
                       "%s: unknown relay filter '%s' (valid: %s)\n",
                       Argv[0], F.c_str(), RelayFilterChoices);
          return 2;
        }
        Filters.push_back(Filter);
      }
      if (Filters.empty()) {
        std::fprintf(stderr, "%s: empty --relay-filter list\n", Argv[0]);
        return 2;
      }
    } else if ((V = matchFlag(Arg, "--op-timeout-us"))) {
      OpTimeoutsUs.clear();
      for (const std::string &T : splitList(V)) {
        char *End = nullptr;
        unsigned long long N = std::strtoull(T.c_str(), &End, 10);
        if (End == T.c_str() || *End != '\0' ||
            N > 60ull * 1000 * 1000) { // Cap at one minute per op.
          std::fprintf(stderr,
                       "%s: bad --op-timeout-us entry '%s' (valid: "
                       "0..60000000; 0 = untimed)\n",
                       Argv[0], T.c_str());
          return 2;
        }
        OpTimeoutsUs.push_back(static_cast<uint64_t>(N));
      }
      if (OpTimeoutsUs.empty()) {
        std::fprintf(stderr, "%s: empty --op-timeout-us list\n", Argv[0]);
        return 2;
      }
    } else if ((V = matchFlag(Arg, "--tokens"))) {
      char *End = nullptr;
      Base.TokensPerSource = std::strtoll(V, &End, 10);
      if (End == V || *End != '\0' || Base.TokensPerSource < 1) {
        std::fprintf(stderr, "%s: bad --tokens value '%s'\n", Argv[0], V);
        return 2;
      }
    } else if ((V = matchFlag(Arg, "--arrival"))) {
      Base.OverrideArrival = true;
      if (std::strcmp(V, "closed") == 0)
        Base.Process = Arrival::Closed;
      else if (std::strcmp(V, "open-uniform") == 0)
        Base.Process = Arrival::OpenUniform;
      else if (std::strcmp(V, "open-poisson") == 0)
        Base.Process = Arrival::OpenPoisson;
      else {
        std::fprintf(stderr,
                     "%s: unknown arrival mode '%s' (valid: %s)\n",
                     Argv[0], V, ArrivalChoices);
        return 2;
      }
    } else if ((V = matchFlag(Arg, "--rate"))) {
      char *End = nullptr;
      Base.RatePerSec = std::strtod(V, &End);
      if (End == V || *End != '\0' || Base.RatePerSec <= 0.0) {
        std::fprintf(stderr, "%s: bad --rate value '%s'\n", Argv[0], V);
        return 2;
      }
    } else if ((V = matchFlag(Arg, "--seed"))) {
      char *End = nullptr;
      Base.Seed = std::strtoull(V, &End, 0);
      if (End == V || *End != '\0') {
        std::fprintf(stderr, "%s: bad --seed value '%s'\n", Argv[0], V);
        return 2;
      }
    } else if ((V = matchFlag(Arg, "--json"))) {
      JsonPath = V;
    } else if (std::strcmp(Arg, "--assert-plan-cache") == 0) {
      AssertPlanCache = true;
    } else if (std::strcmp(Arg, "--assert-relay-skips") == 0) {
      AssertRelaySkips = true;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", Argv[0], Arg);
      return usage(Argv[0], 2);
    }
  }

  if (Base.OverrideArrival && Base.Process != Arrival::Closed &&
      Base.RatePerSec <= 0.0) {
    std::fprintf(stderr, "%s: open-loop arrivals need --rate\n", Argv[0]);
    return 2;
  }
  if (!Base.OverrideArrival && Base.RatePerSec > 0.0) {
    // A silently ignored rate would still be published in the JSON.
    std::fprintf(stderr, "%s: --rate requires --arrival\n", Argv[0]);
    return 2;
  }

  const ScenarioSpec *Scenario = findScenario(ScenarioName);
  if (!Scenario) {
    std::fprintf(stderr, "%s: unknown scenario '%s' (try --list)\n",
                 Argv[0], ScenarioName.c_str());
    return 2;
  }

  // With --json=- the JSON owns stdout; keep it machine-parseable by
  // suppressing the human-readable banner and summary table.
  const bool HumanOutput = JsonPath != "-";
  if (HumanOutput) {
    std::printf("# autosynch-workbench: scenario '%s' (%s)\n",
                Scenario->Name.c_str(), Scenario->Description.c_str());
    std::printf("# tokens/source=%lld seed=%llu\n",
                static_cast<long long>(Base.TokensPerSource),
                static_cast<unsigned long long>(Base.Seed));
  }

  bench::Table Summary({"threads", "mechanism", "backend", "filter",
                        "op-to-us", "timeouts", "wall-s", "tokens/s",
                        "e2e-p50-ms", "e2e-p95-ms", "e2e-p99-ms"});
  std::vector<ScenarioReport> Reports;
  for (int T : Threads) {
    ScenarioSpec Sized = Scenario->withWorkers(T);
    for (Mechanism M : Mechs) {
      const bool RelayPolicy =
          M == Mechanism::AutoSynch || M == Mechanism::AutoSynchT;
      for (sync::Backend B : Backends) {
        for (RelayFilter F : Filters) {
          // The relay filter only affects the relay policies; running
          // Explicit/Baseline once per filter would just duplicate cells
          // under a meaningless label.
          if (!RelayPolicy && F != Filters.front())
            continue;
          for (uint64_t OtUs : OpTimeoutsUs) {
            RunConfig Cfg = Base;
            Cfg.Mech = M;
            Cfg.Backend = B;
            Cfg.Filter = F;
            Cfg.OpTimeoutNs = OtUs * 1000;
            ScenarioReport R = runScenario(Sized, Cfg);
            char Buf[32];
            auto Fmt = [&Buf](double Val) {
              std::snprintf(Buf, sizeof(Buf), "%.3f", Val);
              return std::string(Buf);
            };
            Summary.addRow({std::to_string(T), mechanismName(M),
                            sync::backendName(B), relayFilterName(F),
                            std::to_string(OtUs),
                            std::to_string(R.OpTimeouts),
                            Fmt(R.WallSeconds), Fmt(R.Throughput),
                            Fmt(fmtMs(R.EndToEnd.quantileNanos(0.50))),
                            Fmt(fmtMs(R.EndToEnd.quantileNanos(0.95))),
                            Fmt(fmtMs(R.EndToEnd.quantileNanos(0.99)))});
            Reports.push_back(std::move(R));
          }
        }
      }
    }
  }
  if (HumanOutput)
    Summary.print();

  if (AssertPlanCache) {
    // Every relay-policy (automatic, non-broadcast) run must have served
    // its waituntil calls through the plan cache: no uncached-pipeline
    // waits, and the cache actually consulted. Broadcast and Explicit
    // runs have no plan path by design.
    for (const ScenarioReport &R : Reports) {
      if (R.Mech != Mechanism::AutoSynch && R.Mech != Mechanism::AutoSynchT)
        continue;
      uint64_t Consulted = R.Plan.ShapeBuilds + R.Plan.ShapeHits +
                           R.Plan.BindHits + R.Plan.ColdBinds;
      if (R.Plan.LegacyWaits != 0 || Consulted == 0) {
        std::fprintf(stderr,
                     "%s: plan-cache assertion failed for %s/%s: "
                     "legacy_waits=%llu consulted=%llu\n",
                     Argv[0], mechanismName(R.Mech),
                     sync::backendName(R.Backend),
                     static_cast<unsigned long long>(R.Plan.LegacyWaits),
                     static_cast<unsigned long long>(Consulted));
        return 1;
      }
    }
    if (HumanOutput)
      std::printf("# plan-cache assertion: ok\n");
  }

  if (AssertRelaySkips) {
    // Every relay-policy run under the DirtySet filter must show the
    // dirty-set machinery doing real work: relays skipped outright,
    // index entries pruned by read-set intersection, or predicate checks
    // answered by the version stamp. Broadcast/Explicit runs and Always
    // runs have no skip path by design and are not checked.
    for (const ScenarioReport &R : Reports) {
      if (R.Mech != Mechanism::AutoSynch && R.Mech != Mechanism::AutoSynchT)
        continue;
      if (R.Filter != RelayFilter::DirtySet)
        continue;
      uint64_t Exercised = R.Relay.DirtySkips + R.Relay.FilteredExprs +
                           R.Relay.StampShortCircuits;
      if (Exercised == 0) {
        std::fprintf(stderr,
                     "%s: relay-skip assertion failed for %s/%s: "
                     "calls=%llu dirty_skips=0 filtered_exprs=0 "
                     "stamp_short_circuits=0\n",
                     Argv[0], mechanismName(R.Mech),
                     sync::backendName(R.Backend),
                     static_cast<unsigned long long>(R.Relay.RelayCalls));
        return 1;
      }
    }
    if (HumanOutput)
      std::printf("# relay-skip assertion: ok\n");
  }

  if (JsonPath.empty())
    return 0;

  std::ofstream File;
  std::ostream *OS = &std::cout;
  if (JsonPath != "-") {
    File.open(JsonPath);
    if (!File) {
      std::fprintf(stderr, "%s: cannot write '%s'\n", Argv[0],
                   JsonPath.c_str());
      return 1;
    }
    OS = &File;
  }

  JsonWriter J(*OS);
  J.beginObject()
      .member("tool", "autosynch-workbench")
      .member("version", 4) // 4: per-run "op_timeout_ns"/"op_timeouts" +
                            // "time" deadline-runtime counters (3 added
                            // "relay_filter" + "relay").
      .member("scenario", Scenario->Name)
      .member("description", Scenario->Description)
      .member("tokens_per_source", Base.TokensPerSource)
      .member("seed", Base.Seed)
      .member("arrival",
              Base.OverrideArrival ? arrivalName(Base.Process)
                                   : "per-scenario")
      .member("rate_per_sec", Base.RatePerSec);
  J.key("runs");
  J.beginArray();
  for (const ScenarioReport &R : Reports)
    writeReportJson(R, J);
  J.endArray();
  J.endObject();
  *OS << '\n';
  if (JsonPath != "-")
    std::fprintf(stderr, "wrote %zu runs to %s\n", Reports.size(),
                 JsonPath.c_str());
  return 0;
}

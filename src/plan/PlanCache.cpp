//===- plan/PlanCache.cpp - Per-monitor wait-plan cache ---------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "plan/PlanCache.h"

#include "expr/Subst.h"

#include <string>

using namespace autosynch;

PlanCounters &PlanCounters::global() {
  static PlanCounters G;
  return G;
}

VarId PlanCache::slotVar(size_t I, TypeKind Ty) {
  std::vector<VarId> &Vars =
      Ty == TypeKind::Int ? IntSlotVars : BoolSlotVars;
  while (Vars.size() <= I) {
    // '$' cannot appear in parsed identifiers, so slot names can never
    // collide with user variables.
    std::string Name = (Ty == TypeKind::Int ? "$i" : "$b") +
                       std::to_string(Vars.size());
    Vars.push_back(Syms.declare(Name, Ty, VarScope::Local));
  }
  return Vars[I];
}

const WaitPlan *PlanCache::lookupOrBuild(ExprRef Shape,
                                         const DnfLimits &Limits) {
  auto It = Plans.find(Shape);
  if (It != Plans.end()) {
    ++Stats.ShapeHits;
    PlanCounters::global().onShapeHit();
    return It->second.get();
  }
  ++Stats.ShapeBuilds;
  PlanCounters::global().onShapeBuild();
  std::unique_ptr<WaitPlan> P = WaitPlan::build(Arena, Syms, Shape, Limits);
  if (P->kind() == WaitPlan::Kind::Legacy)
    ++Stats.LegacyShapes;
  return Plans.emplace(Shape, std::move(P)).first->second.get();
}

const WaitPlan *PlanCache::forShape(ExprRef Shape, const DnfLimits &Limits) {
  return lookupOrBuild(Shape, Limits);
}

namespace {

/// Skeleton-walk state: literal values collected in walk order.
struct SkeletonWalk {
  PlanCache &Cache;
  ExprArena &Arena;
  Value *BoundOut;
  size_t NumBound = 0;
  size_t IntIdx = 0, BoolIdx = 0;
  bool Overflow = false;

  VarId nextSlot(TypeKind Ty);
  ExprRef walk(ExprRef E, bool AbstractLits);
};

} // namespace

const WaitPlan *PlanCache::forEdsl(ExprRef P, const DnfLimits &Limits,
                                   Value *BoundOut, size_t &NumBound) {
  ++Stats.EdslSkeletons;
  SkeletonWalk W{*this, Arena, BoundOut};
  ExprRef Shape = W.walk(P, /*AbstractLits=*/true);

  if (!W.Overflow) {
    const WaitPlan *Plan = lookupOrBuild(Shape, Limits);
    if (Plan->kind() != WaitPlan::Kind::Legacy) {
      AUTOSYNCH_CHECK(Plan->slots().size() == W.NumBound,
                      "EDSL slot count diverged from the cached shape");
      NumBound = W.NumBound;
      return Plan;
    }
  }

  // No abstractable literals, too many of them, or a shape the planner
  // cannot parameterize: plan the concrete predicate itself. EDSL
  // expressions mention only shared variables and literals, so this is a
  // Ground (or Legacy, for e.g. unbounded DNF) plan over P.
  NumBound = 0;
  if (isComplex(P, Syms))
    return nullptr; // Locals smuggled into an EDSL tree: uncached path.
  return lookupOrBuild(P, Limits);
}

VarId SkeletonWalk::nextSlot(TypeKind Ty) {
  size_t &Idx = Ty == TypeKind::Int ? IntIdx : BoolIdx;
  return Cache.slotVar(Idx++, Ty);
}

ExprRef SkeletonWalk::walk(ExprRef E, bool AbstractLits) {
  if (Overflow)
    return E;

  if (E->isLiteral()) {
    if (!AbstractLits)
      return E;
    if (NumBound == WaitPlan::MaxSlots) {
      Overflow = true;
      return E;
    }
    Value V = E->literalValue();
    VarId Slot = nextSlot(V.type());
    BoundOut[NumBound++] = V;
    return Arena.var(Slot, V.type());
  }

  switch (E->kind()) {
  case ExprKind::Var:
    return E;
  case ExprKind::Neg:
  case ExprKind::Not: {
    ExprRef Op = walk(E->lhs(), AbstractLits);
    return Op == E->lhs() ? E : Arena.unary(E->kind(), Op);
  }
  default:
    break;
  }

  AUTOSYNCH_CHECK(isBinaryKind(E->kind()), "unexpected node in skeleton");
  // Literal operands of * / % are structural: abstracting them would make
  // the atom non-linear (variable * variable) and untaggable.
  bool Structural = E->kind() == ExprKind::Mul ||
                    E->kind() == ExprKind::Div || E->kind() == ExprKind::Mod;
  ExprRef L = walk(E->lhs(), AbstractLits && !(Structural && E->lhs()->isLiteral()));
  ExprRef R = walk(E->rhs(), AbstractLits && !(Structural && E->rhs()->isLiteral()));
  if (L == E->lhs() && R == E->rhs())
    return E;
  return Arena.binary(E->kind(), L, R);
}

//===- plan/PlanCache.h - Per-monitor wait-plan cache ----------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The monitor's cache of WaitPlans, keyed by predicate *shape*:
///
///  * parsed predicates — the interned parse result is the shape (locals
///    are already symbolic);
///  * EDSL predicates — literals are abstracted into synthetic Local-scoped
///    slot variables ("$i0", "$b0", ... by occurrence), so `Count >= 3` and
///    `Count >= 7` share one shape `count >= $i0` and one plan. Literal
///    operands of `*`, `/`, and `%` are kept concrete: they are structural
///    (a slot there would make the atom non-linear and untaggable), and
///    they are how shapes like `X * 2 >= 96` still canonicalize onto the
///    same record as `X >= 48`.
///
/// The cache is append-only like the parse cache: distinct shapes are
/// bounded by distinct waituntil call sites, not by data.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PLAN_PLANCACHE_H
#define AUTOSYNCH_PLAN_PLANCACHE_H

#include "plan/WaitPlan.h"

#include <atomic>
#include <unordered_map>

namespace autosynch {

/// Per-monitor plan-cache statistics (guarded by the monitor lock).
struct PlanCacheStats {
  uint64_t ShapeBuilds = 0;   ///< Plans constructed.
  uint64_t ShapeHits = 0;     ///< Lookups served by a cached plan.
  uint64_t EdslSkeletons = 0; ///< EDSL predicates abstracted into shapes.
  uint64_t LegacyShapes = 0;  ///< Shapes the planner handed back as Legacy.
};

/// Snapshot of the process-wide plan counters (workbench/bench reporting).
struct PlanCountersSnapshot {
  uint64_t ShapeBuilds = 0;
  uint64_t ShapeHits = 0;
  uint64_t BindHits = 0;   ///< Signature lookups served by the bind table.
  uint64_t ColdBinds = 0;  ///< Signatures resolved through the cold path.
  uint64_t LegacyWaits = 0;///< waituntil calls on the uncached path.

  PlanCountersSnapshot operator-(const PlanCountersSnapshot &R) const {
    return {ShapeBuilds - R.ShapeBuilds, ShapeHits - R.ShapeHits,
            BindHits - R.BindHits, ColdBinds - R.ColdBinds,
            LegacyWaits - R.LegacyWaits};
  }
};

/// Process-wide plan counters, updated with relaxed atomics (aggregates
/// across every monitor in the process; the per-monitor numbers live in
/// PlanCacheStats / ManagerStats).
class PlanCounters {
public:
  static PlanCounters &global();

  void onShapeBuild() { ShapeBuilds.fetch_add(1, std::memory_order_relaxed); }
  void onShapeHit() { ShapeHits.fetch_add(1, std::memory_order_relaxed); }
  void onBindHit() { BindHits.fetch_add(1, std::memory_order_relaxed); }
  void onColdBind() { ColdBinds.fetch_add(1, std::memory_order_relaxed); }
  void onLegacyWait() { LegacyWaits.fetch_add(1, std::memory_order_relaxed); }

  PlanCountersSnapshot snapshot() const {
    return {ShapeBuilds.load(std::memory_order_relaxed),
            ShapeHits.load(std::memory_order_relaxed),
            BindHits.load(std::memory_order_relaxed),
            ColdBinds.load(std::memory_order_relaxed),
            LegacyWaits.load(std::memory_order_relaxed)};
  }

private:
  std::atomic<uint64_t> ShapeBuilds{0};
  std::atomic<uint64_t> ShapeHits{0};
  std::atomic<uint64_t> BindHits{0};
  std::atomic<uint64_t> ColdBinds{0};
  std::atomic<uint64_t> LegacyWaits{0};
};

/// The per-monitor shape -> WaitPlan cache. All member functions require
/// the monitor lock (shapes intern into the monitor's arena).
class PlanCache {
public:
  PlanCache(ExprArena &Arena, SymbolTable &Syms) : Arena(Arena), Syms(Syms) {}

  /// Plan for a shape whose locals are already symbolic (parsed
  /// predicates). O(1) on repeat shapes.
  const WaitPlan *forShape(ExprRef Shape, const DnfLimits &Limits);

  /// Plan for an EDSL predicate: abstracts literals into slot variables
  /// and writes their values to \p BoundOut (size >= WaitPlan::MaxSlots)
  /// in slot order. EDSL shapes that the planner cannot parameterize fall
  /// back to a Ground plan over \p P itself (EDSL predicates are
  /// shared-and-literal only, so that is always possible).
  const WaitPlan *forEdsl(ExprRef P, const DnfLimits &Limits,
                          Value *BoundOut, size_t &NumBound);

  const PlanCacheStats &stats() const { return Stats; }
  void resetStats() { Stats = PlanCacheStats(); }

  /// Number of cached shapes.
  size_t size() const { return Plans.size(); }

  /// The I-th synthetic slot variable of type \p Ty, declared on demand
  /// (public for the skeleton walker; not part of the monitor-facing API).
  VarId slotVar(size_t I, TypeKind Ty);

private:
  const WaitPlan *lookupOrBuild(ExprRef Shape, const DnfLimits &Limits);

  ExprArena &Arena;
  SymbolTable &Syms;
  std::unordered_map<ExprRef, std::unique_ptr<WaitPlan>> Plans;
  std::vector<VarId> IntSlotVars, BoolSlotVars;
  PlanCacheStats Stats;
};

} // namespace autosynch

#endif // AUTOSYNCH_PLAN_PLANCACHE_H

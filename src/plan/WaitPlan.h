//===- plan/WaitPlan.h - Parameterized wait plans --------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wait plans: the front half of the waituntil pipeline (globalization §4.1
/// -> canonicalization -> DNF -> tag-key derivation) run ONCE per predicate
/// *shape* and parameterized over the waiting thread's local values.
///
/// A shape is a predicate expression whose Local-scoped variables are held
/// symbolic — a parsed predicate as written ("count >= n"), or an EDSL
/// expression with its literals abstracted into slots (plan/PlanCache.h).
/// Building a plan canonicalizes the shape symbolically and compiles, per
/// DNF conjunction, small *atom templates* whose constants are linear
/// functions of the slots:
///
///   count >= n      ->  (count, >=, K(n) = n)
///   2*count >= n    ->  (count, >=, K(n) = ceil(n/2))
///   n > 0           ->  guard: bind-time truth test, no shared part
///
/// A steady-state waitUntil then *binds* current local values into the
/// cached plan: evaluate each key form (O(#locals) integer arithmetic),
/// drop conjunctions whose guards fail, and emit a flat, stack-allocated
/// *signature* — the ground canonical form of the globalized predicate,
/// expressed as (interned shared-expression, op, key) triples. The
/// condition manager resolves signatures to predicate records through a
/// hash table with heterogeneous lookup, so the whole hit path performs
/// zero arena interning and zero heap allocation.
///
/// Exactness is never load-bearing: a signature the manager has not seen
/// is reconstructed into an expression and re-canonicalized through the
/// ordinary dnf/ pipeline, unifying with records registered by any other
/// route (eager registration, the uncached path, other shapes). The bind
/// path only ever prunes conjunctions it can prove false (guard failure,
/// divisibility, interval contradiction — the same rules the ground
/// canonicalizer applies after substitution), so plans are semantically
/// transparent.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PLAN_WAITPLAN_H
#define AUTOSYNCH_PLAN_WAITPLAN_H

#include "dnf/Dnf.h"
#include "expr/Bytecode.h"
#include "expr/SymbolTable.h"
#include "expr/VarSet.h"

#include <memory>
#include <vector>

namespace autosynch {

/// One entry of a resolved plan signature. A signature is a flat array of
/// entries: resolved atoms grouped into conjunction segments, each segment
/// terminated by a Separator entry. Entries compare bitwise.
struct SigEntry {
  /// Separator / opaque-atom / resolved-comparison discriminator. Values
  /// >= OpBase encode the comparison ExprKind of a resolved atom.
  enum : uint64_t { Separator = 0, Opaque = 1, OpBase = 2 };

  const void *P = nullptr; ///< Interned shared expression (or whole atom).
  uint64_t Tag = Separator;
  int64_t K = 0;

  static SigEntry separator() { return SigEntry{}; }
  static SigEntry opaque(ExprRef Atom) { return {Atom, Opaque, 0}; }
  static SigEntry resolved(ExprRef Shared, ExprKind Op, int64_t K) {
    return {Shared, OpBase + static_cast<uint64_t>(Op), K};
  }

  bool isSeparator() const { return Tag == Separator; }
  ExprKind op() const { return static_cast<ExprKind>(Tag - OpBase); }

  bool operator==(const SigEntry &R) const {
    return P == R.P && Tag == R.Tag && K == R.K;
  }
};

/// A parameterized wait plan for one predicate shape.
class WaitPlan {
public:
  enum class Kind : uint8_t {
    Ground,        ///< No slots: canonicalized outright at build time.
    Slotted,       ///< Parameterized over local-value slots.
    Legacy,        ///< Shape the planner cannot parameterize (e.g. a
                   ///< non-linear atom mixing shared and local variables);
                   ///< callers use the uncached waituntil path.
    AlwaysTrue,    ///< Canonically true for every binding.
    Unsatisfiable  ///< Canonically false for every binding.
  };

  /// One local-value slot of the shape.
  struct Slot {
    VarId Var = 0;
    TypeKind Type = TypeKind::Int;
  };

  /// Shapes with more slots, conjunctions, or atoms fall back to the
  /// uncached path; the caps size the fixed buffers resolve() works in
  /// (build() enforces them, so resolution never overflows).
  static constexpr size_t MaxSlots = 16;
  static constexpr size_t MaxConjs = 24;
  static constexpr size_t MaxSigEntries = 96;

  /// Outcome of resolving a binding into a signature.
  enum class ResolveStatus : uint8_t {
    Resolved, ///< Signature written; proceed to record lookup.
    True,     ///< Predicate is true for this binding under any state.
    False,    ///< Predicate is false for this binding under any state
              ///< (an unsatisfiable wait — fatal at the call site).
    Overflow  ///< Key arithmetic overflowed int64; use the uncached path.
  };

  /// Builds the plan for \p Shape (bool-typed; locals symbolic). Always
  /// returns a plan; shapes beyond the planner's reach come back as
  /// Kind::Legacy.
  static std::unique_ptr<WaitPlan> build(ExprArena &Arena,
                                         const SymbolTable &Syms,
                                         ExprRef Shape, DnfLimits Limits);

  Kind kind() const { return K; }
  ExprRef shape() const { return Shape; }
  const std::vector<Slot> &slots() const { return Slots; }

  /// The symbolic canonical predicate (Ground and Slotted plans). For
  /// Ground plans this is the finished ground canonical form.
  const CanonicalPredicate &canonical() const { return CP; }

  /// Slot program evaluating the canonical predicate over (shared slots,
  /// bound locals); the allocation-free fast-path check.
  const CompiledPredicate &code() const { return Code; }

  /// The shared variables the canonical shape reads, computed once at
  /// build time (meaningful for Ground and Slotted plans). Every ground
  /// predicate a binding of this plan registers reads a subset of these
  /// variables, so the dirty-set relay's per-record read sets agree with
  /// the plan-level one regardless of front end.
  const VarSet &readSet() const { return ReadSet; }

  /// Binds local values out of \p Locals into \p Out (size >= MaxSlots) in
  /// slot order. Fatal error on an unbound or type-mismatched local.
  void bindFromEnv(const Env &Locals, Value *Out) const;

  /// Resolves bound values into a signature. \p Buf must hold at least
  /// MaxSigEntries entries; \p N receives the entry count (including the
  /// per-conjunction separators).
  ResolveStatus resolve(const Value *Bound, SigEntry *Buf, size_t &N) const;

  /// Rebuilds the ground DNF a signature denotes (cold path: the result is
  /// re-canonicalized by the caller to unify with the predicate table).
  static Dnf reconstruct(ExprArena &Arena, const SigEntry *Sig, size_t N);

private:
  WaitPlan() = default;

  /// One atom of one conjunction, parameterized over the slots.
  struct AtomTemplate {
    enum class TKind : uint8_t {
      Opaque,      ///< Shared-only atom with no linear form; emitted as-is.
      GroundLinear,///< Shared-only canonical comparison; constant known.
      Linear,      ///< Mixed comparison; key is a linear form of slots.
      Guard,       ///< Local-only canonical comparison; bind-time truth.
      GuardOpaque  ///< Local-only opaque atom; compiled over the slots.
    };

    TKind T = TKind::Opaque;
    ExprRef Atom = nullptr;       ///< Opaque: the interned atom.
    ExprRef SharedExpr = nullptr; ///< GroundLinear/Linear: reduced LHS.
    ExprKind Op = ExprKind::Eq;   ///< Comparison op (Eq/Ne/Le/Ge).
    int64_t K = 0;                ///< GroundLinear constant / Guard RHS.
    uint64_t G = 1;               ///< Linear: gcd the key divides through.
    int64_t KeyC = 0;             ///< Linear/Guard key-form constant.
    /// Linear/Guard key-form terms: (slot index, coefficient).
    std::vector<std::pair<uint32_t, int64_t>> KeyTerms;
    CompiledPredicate Guard;      ///< GuardOpaque program.
  };

  struct ConjTemplate {
    std::vector<AtomTemplate> Atoms;
  };

  /// Builds the slot list from \p Shape; false when over MaxSlots.
  bool collectSlots(const SymbolTable &Syms);

  /// Lowers one canonical conjunction into templates; false -> Legacy.
  bool lowerConjunction(ExprArena &Arena, const SymbolTable &Syms,
                       const Conjunction &C);

  /// Slot index of \p Var, or -1.
  int slotIndex(VarId Var) const;

  Kind K = Kind::Legacy;
  ExprRef Shape = nullptr;
  CanonicalPredicate CP;
  VarSet ReadSet;
  std::vector<Slot> Slots;
  std::vector<ConjTemplate> Conjs;
  CompiledPredicate Code;
};

} // namespace autosynch

#endif // AUTOSYNCH_PLAN_WAITPLAN_H

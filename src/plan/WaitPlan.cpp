//===- plan/WaitPlan.cpp - Parameterized wait plans -------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "plan/WaitPlan.h"

#include "dnf/CanonicalAtom.h"
#include "expr/Subst.h"

#include <algorithm>
#include <numeric>

using namespace autosynch;

namespace {

bool compareKeys(int64_t L, ExprKind Op, int64_t R) {
  switch (Op) {
  case ExprKind::Eq:
    return L == R;
  case ExprKind::Ne:
    return L != R;
  case ExprKind::Le:
    return L <= R;
  case ExprKind::Ge:
    return L >= R;
  default:
    AUTOSYNCH_UNREACHABLE("non-canonical op in plan guard");
  }
}

/// Scope census of one expression.
struct ScopeCensus {
  bool AnyShared = false;
  bool AnyLocal = false;
};

void census(ExprRef E, const SymbolTable &Syms, ScopeCensus &Out) {
  if (E->kind() == ExprKind::Var) {
    (Syms.isShared(E->varId()) ? Out.AnyShared : Out.AnyLocal) = true;
    return;
  }
  for (unsigned I = 0; I != E->numOperands(); ++I)
    census(E->operand(I), Syms, Out);
}

bool sigEntryLess(const SigEntry &A, const SigEntry &B) {
  if (A.P != B.P)
    return A.P < B.P;
  if (A.Tag != B.Tag)
    return A.Tag < B.Tag;
  return A.K < B.K;
}

/// Interval tracker replicating dnf/Dnf.cpp's BoundsTracker over resolved
/// keys, with fixed-size storage (pruning is skipped, never invented, when
/// a cap is hit — dropping a conjunction must stay provably sound).
class BindBounds {
public:
  /// Returns false when the conjunction became unsatisfiable.
  bool record(const void *Expr, ExprKind Op, int64_t K) {
    Entry *E = find(Expr);
    if (!E)
      return true; // Out of tracking slots: skip pruning, keep the atom.
    switch (Op) {
    case ExprKind::Eq:
      if (E->HasEq && E->Eq != K)
        return false;
      E->HasEq = true;
      E->Eq = K;
      break;
    case ExprKind::Ne:
      if (E->NeCount < MaxNe)
        E->Ne[E->NeCount++] = K;
      break;
    case ExprKind::Le:
      if (!E->HasHi || K < E->Hi) {
        E->HasHi = true;
        E->Hi = K;
      }
      break;
    case ExprKind::Ge:
      if (!E->HasLo || K > E->Lo) {
        E->HasLo = true;
        E->Lo = K;
      }
      break;
    default:
      AUTOSYNCH_UNREACHABLE("non-canonical op in BindBounds");
    }
    return satisfiable(*E);
  }

private:
  static constexpr size_t MaxExprs = 16;
  static constexpr unsigned MaxNe = 8;

  struct Entry {
    const void *Expr = nullptr;
    bool HasLo = false, HasHi = false, HasEq = false;
    int64_t Lo = 0, Hi = 0, Eq = 0;
    int64_t Ne[MaxNe];
    unsigned NeCount = 0;
  };

  Entry *find(const void *Expr) {
    for (size_t I = 0; I != Count; ++I)
      if (Entries[I].Expr == Expr)
        return &Entries[I];
    if (Count == MaxExprs)
      return nullptr;
    Entries[Count].Expr = Expr;
    return &Entries[Count++];
  }

  bool hasNe(const Entry &E, int64_t K) const {
    for (unsigned I = 0; I != E.NeCount; ++I)
      if (E.Ne[I] == K)
        return true;
    return false;
  }

  bool satisfiable(const Entry &E) const {
    if (E.HasLo && E.HasHi && E.Lo > E.Hi)
      return false;
    if (E.HasEq) {
      if (E.HasLo && E.Eq < E.Lo)
        return false;
      if (E.HasHi && E.Eq > E.Hi)
        return false;
      if (hasNe(E, E.Eq))
        return false;
    }
    if (E.HasLo && E.HasHi && E.Lo == E.Hi && hasNe(E, E.Lo))
      return false;
    return true;
  }

  Entry Entries[MaxExprs];
  size_t Count = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Plan construction
//===----------------------------------------------------------------------===//

int WaitPlan::slotIndex(VarId Var) const {
  for (size_t I = 0; I != Slots.size(); ++I)
    if (Slots[I].Var == Var)
      return static_cast<int>(I);
  return -1;
}

bool WaitPlan::collectSlots(const SymbolTable &Syms) {
  // First-occurrence pre-order over the shape; this is the binding order
  // the EDSL skeletonizer emits values in.
  bool Ok = true;
  auto Walk = [&](auto &&Self, ExprRef E) -> void {
    if (!Ok)
      return;
    if (E->kind() == ExprKind::Var) {
      VarId V = E->varId();
      if (Syms.isLocal(V) && slotIndex(V) < 0) {
        if (Slots.size() == MaxSlots) {
          Ok = false;
          return;
        }
        Slots.push_back({V, Syms.info(V).Type});
      }
      return;
    }
    for (unsigned I = 0; I != E->numOperands(); ++I)
      Self(Self, E->operand(I));
  };
  Walk(Walk, Shape);
  return Ok;
}

bool WaitPlan::lowerConjunction(ExprArena &Arena, const SymbolTable &Syms,
                                const Conjunction &C) {
  ConjTemplate CT;
  for (ExprRef Atom : C.Atoms) {
    ScopeCensus SC;
    census(Atom, Syms, SC);

    AtomCanonResult R = canonicalizeAtom(Atom);
    switch (R.Kind) {
    case AtomCanonKind::True:
      continue; // Contributes nothing (defensive; canonicalization folds).
    case AtomCanonKind::False:
      // False under every binding: the whole conjunction is dead.
      return true;
    case AtomCanonKind::Opaque: {
      AtomTemplate T;
      if (!SC.AnyLocal) {
        T.T = AtomTemplate::TKind::Opaque;
        T.Atom = Atom;
      } else if (!SC.AnyShared) {
        T.T = AtomTemplate::TKind::GuardOpaque;
        T.Guard = CompiledPredicate::compile(
            Atom, [this](VarId V) -> ResolvedVar {
              int I = slotIndex(V);
              AUTOSYNCH_CHECK(I >= 0, "guard atom var is not a plan slot");
              return {ResolvedVar::Kind::Local, static_cast<uint32_t>(I)};
            });
      } else {
        return false; // Mixed opaque atom: beyond the planner.
      }
      CT.Atoms.push_back(std::move(T));
      continue;
    }
    case AtomCanonKind::Atom:
      break;
    }

    // Split the canonical linear form into shared and local parts.
    LinearForm Sh;
    std::vector<std::pair<uint32_t, int64_t>> LocalTerms;
    bool Bad = false;
    for (const LinearForm::Term &Term : R.Atom.Lhs.terms()) {
      if (Term.second == INT64_MIN) {
        Bad = true; // Negation below would overflow; give up on the shape.
        break;
      }
      if (Syms.isShared(Term.first)) {
        std::optional<LinearForm> Sum =
            Sh.add(LinearForm::variableForm(Term.first).scale(Term.second)
                       .value());
        AUTOSYNCH_CHECK(Sum.has_value(), "re-summing sorted terms is exact");
        Sh = *Sum;
      } else {
        int I = slotIndex(Term.first);
        AUTOSYNCH_CHECK(I >= 0, "local term var is not a plan slot");
        LocalTerms.push_back({static_cast<uint32_t>(I), Term.second});
      }
    }
    if (Bad)
      return false;

    AtomTemplate T;
    T.Op = R.Atom.Op;

    if (Sh.terms().empty()) {
      // Local-only comparison: a bind-time guard.
      T.T = AtomTemplate::TKind::Guard;
      T.K = R.Atom.Rhs;
      T.KeyC = 0;
      T.KeyTerms = std::move(LocalTerms);
      CT.Atoms.push_back(std::move(T));
      continue;
    }

    if (LocalTerms.empty()) {
      // Shared-only comparison, already canonical from the symbolic pass.
      T.T = AtomTemplate::TKind::GroundLinear;
      T.SharedExpr = linearFormToExpr(Arena, R.Atom.Lhs);
      T.K = R.Atom.Rhs;
      CT.Atoms.push_back(std::move(T));
      continue;
    }

    // Mixed comparison. Ground canonicalization of the substituted atom
    // (a) moves the local part into the constant, (b) makes the leading
    // shared coefficient positive, (c) gcd-reduces the shared coefficients
    // with an integer-exact bound adjustment. (a) and (b) are replayed
    // here; (c)'s rounding depends on the bound value and runs at bind
    // time through the stored gcd.
    T.T = AtomTemplate::TKind::Linear;
    bool Flip = Sh.terms().front().second < 0;
    if (Flip) {
      if (R.Atom.Rhs == INT64_MIN)
        return false; // -K would overflow.
      std::optional<LinearForm> Neg = Sh.negate();
      if (!Neg)
        return false;
      Sh = *Neg;
      T.KeyC = -R.Atom.Rhs;
      T.KeyTerms = std::move(LocalTerms);
      if (T.Op == ExprKind::Le)
        T.Op = ExprKind::Ge;
      else if (T.Op == ExprKind::Ge)
        T.Op = ExprKind::Le;
    } else {
      T.KeyC = R.Atom.Rhs;
      T.KeyTerms = std::move(LocalTerms);
      for (auto &KT : T.KeyTerms)
        KT.second = -KT.second; // K' = K - Lo(vals).
    }

    uint64_t G = 0;
    for (const LinearForm::Term &Term : Sh.terms())
      G = std::gcd(G, static_cast<uint64_t>(
                          Term.second < 0 ? -static_cast<uint64_t>(Term.second)
                                          : static_cast<uint64_t>(Term.second)));
    AUTOSYNCH_CHECK(G > 0, "gcd of a non-constant form is positive");
    T.G = G;
    if (G > 1) {
      LinearForm Reduced;
      for (const LinearForm::Term &Term : Sh.terms()) {
        std::optional<LinearForm> Part =
            LinearForm::variableForm(Term.first)
                .scale(Term.second / static_cast<int64_t>(G));
        std::optional<LinearForm> Sum = Reduced.add(*Part);
        AUTOSYNCH_CHECK(Sum.has_value(), "gcd division cannot overflow");
        Reduced = *Sum;
      }
      Sh = Reduced;
    }
    T.SharedExpr = linearFormToExpr(Arena, Sh);
    CT.Atoms.push_back(std::move(T));
  }

  if (CT.Atoms.size() > 32)
    return false; // Signature buffers are fixed-size.
  Conjs.push_back(std::move(CT));
  return true;
}

std::unique_ptr<WaitPlan> WaitPlan::build(ExprArena &Arena,
                                          const SymbolTable &Syms,
                                          ExprRef Shape, DnfLimits Limits) {
  AUTOSYNCH_CHECK(Shape->type() == TypeKind::Bool,
                  "wait plans require a bool-typed shape");
  std::unique_ptr<WaitPlan> P(new WaitPlan());
  P->Shape = Shape;
  P->K = Kind::Legacy;

  if (!P->collectSlots(Syms))
    return P;

  // Canonicalize the shape with its locals symbolic. For a shape with no
  // locals this IS the ground canonical form.
  P->CP = canonicalizePredicate(Arena, Shape, Limits);

  if (P->CP.D.isTrue()) {
    P->K = Kind::AlwaysTrue;
    return P;
  }
  if (P->CP.D.isFalse()) {
    P->K = Kind::Unsatisfiable;
    return P;
  }

  auto Resolver = [&Syms, Raw = P.get()](VarId V) -> ResolvedVar {
    if (Syms.isShared(V))
      return {ResolvedVar::Kind::Shared, V};
    int I = Raw->slotIndex(V);
    AUTOSYNCH_CHECK(I >= 0, "plan expression var is not shared or a slot");
    return {ResolvedVar::Kind::Local, static_cast<uint32_t>(I)};
  };

  P->ReadSet = sharedReadSet(P->CP.Expr, Syms);

  if (P->Slots.empty()) {
    P->K = Kind::Ground;
    P->Code = CompiledPredicate::compile(P->CP.Expr, Resolver);
    return P;
  }

  if (P->CP.D.Conjs.size() > MaxConjs)
    return P; // Legacy: signature buffers are fixed-size.

  size_t TotalEntries = 0;
  for (const Conjunction &C : P->CP.D.Conjs) {
    if (!P->lowerConjunction(Arena, Syms, C)) {
      P->Conjs.clear();
      return P; // Legacy.
    }
    TotalEntries += C.Atoms.size() + 1;
  }
  if (TotalEntries > MaxSigEntries) {
    P->Conjs.clear();
    return P; // Legacy.
  }

  P->K = Kind::Slotted;
  P->Code = CompiledPredicate::compile(P->CP.Expr, Resolver);
  return P;
}

//===----------------------------------------------------------------------===//
// Binding and signature resolution
//===----------------------------------------------------------------------===//

void WaitPlan::bindFromEnv(const Env &Locals, Value *Out) const {
  for (size_t I = 0; I != Slots.size(); ++I) {
    AUTOSYNCH_CHECK(Locals.has(Slots[I].Var),
                    "waituntil: unbound local variable in predicate");
    Value V = Locals.get(Slots[I].Var);
    AUTOSYNCH_CHECK(V.type() == Slots[I].Type,
                    "waituntil: local bound with mismatched type");
    Out[I] = V;
  }
}

WaitPlan::ResolveStatus WaitPlan::resolve(const Value *Bound, SigEntry *Buf,
                                          size_t &N) const {
  AUTOSYNCH_CHECK(K == Kind::Slotted, "resolve() requires a slotted plan");

  // Evaluates KeyC + sum(coef * Bound[slot]) with overflow checking.
  auto evalKey = [&](const AtomTemplate &T, int64_t &Out) -> bool {
    int64_t Acc = T.KeyC;
    for (const auto &[SlotIdx, Coef] : T.KeyTerms) {
      int64_t Term;
      if (__builtin_mul_overflow(Coef, Bound[SlotIdx].raw(), &Term))
        return false;
      if (__builtin_add_overflow(Acc, Term, &Acc))
        return false;
    }
    Out = Acc;
    return true;
  };

  SigEntry Tmp[MaxSigEntries];
  struct Segment {
    size_t Begin, End;
  };
  Segment Segs[MaxConjs];
  size_t NumSegs = 0;
  size_t Used = 0;

  for (const ConjTemplate &CT : Conjs) {
    size_t Begin = Used;
    bool Dead = false;
    BindBounds Bounds;

    for (const AtomTemplate &T : CT.Atoms) {
      switch (T.T) {
      case AtomTemplate::TKind::Opaque:
        Tmp[Used++] = SigEntry::opaque(T.Atom);
        break;
      case AtomTemplate::TKind::GroundLinear:
        if (!Bounds.record(T.SharedExpr, T.Op, T.K)) {
          Dead = true;
          break;
        }
        Tmp[Used++] = SigEntry::resolved(T.SharedExpr, T.Op, T.K);
        break;
      case AtomTemplate::TKind::Guard: {
        int64_t Key;
        if (!evalKey(T, Key))
          return ResolveStatus::Overflow;
        if (!compareKeys(Key, T.Op, T.K))
          Dead = true;
        break; // True guards contribute nothing.
      }
      case AtomTemplate::TKind::GuardOpaque:
        if (!T.Guard.runRawBool(nullptr, Bound))
          Dead = true;
        break;
      case AtomTemplate::TKind::Linear: {
        int64_t Key;
        if (!evalKey(T, Key))
          return ResolveStatus::Overflow;
        bool AtomTrue = false;
        if (T.G > 1) {
          int64_t Gs = static_cast<int64_t>(T.G);
          switch (T.Op) {
          case ExprKind::Eq:
            if (Key % Gs != 0)
              Dead = true; // g*expr == K unsolvable.
            else
              Key /= Gs;
            break;
          case ExprKind::Ne:
            if (Key % Gs != 0)
              AtomTrue = true; // g*expr != K always holds.
            else
              Key /= Gs;
            break;
          case ExprKind::Le:
            Key = floorDivExact(Key, Gs);
            break;
          case ExprKind::Ge:
            Key = ceilDivExact(Key, Gs);
            break;
          default:
            AUTOSYNCH_UNREACHABLE("non-canonical op in plan template");
          }
        }
        if (Dead || AtomTrue)
          break;
        if (!Bounds.record(T.SharedExpr, T.Op, Key)) {
          Dead = true;
          break;
        }
        Tmp[Used++] = SigEntry::resolved(T.SharedExpr, T.Op, Key);
        break;
      }
      }
      if (Dead)
        break;
    }

    if (Dead) {
      Used = Begin;
      continue;
    }
    if (Used == Begin) {
      // Every atom resolved away true: the predicate holds for this
      // binding under any shared state.
      N = 0;
      return ResolveStatus::True;
    }

    // Canonical entry order within the conjunction (insertion sort: the
    // arrays are tiny) plus duplicate removal.
    for (size_t I = Begin + 1; I < Used; ++I) {
      SigEntry E = Tmp[I];
      size_t J = I;
      while (J > Begin && sigEntryLess(E, Tmp[J - 1])) {
        Tmp[J] = Tmp[J - 1];
        --J;
      }
      Tmp[J] = E;
    }
    size_t W = Begin;
    for (size_t I = Begin; I < Used; ++I)
      if (I == Begin || !(Tmp[I] == Tmp[W - 1]))
        Tmp[W++] = Tmp[I];
    Used = W;

    AUTOSYNCH_CHECK(NumSegs < MaxConjs, "conjunction count exceeds the cap "
                                        "build() enforces");
    Segs[NumSegs++] = {Begin, Used};
  }

  if (NumSegs == 0) {
    N = 0;
    return ResolveStatus::False;
  }

  // Canonical conjunction order: sort the segments lexicographically and
  // drop duplicates. (Subsumption is left to the cold path's full
  // canonicalization; it only affects which alias maps to the record.)
  auto segLess = [&](const Segment &A, const Segment &B) {
    size_t LA = A.End - A.Begin, LB = B.End - B.Begin;
    size_t L = LA < LB ? LA : LB;
    for (size_t I = 0; I != L; ++I) {
      if (sigEntryLess(Tmp[A.Begin + I], Tmp[B.Begin + I]))
        return true;
      if (sigEntryLess(Tmp[B.Begin + I], Tmp[A.Begin + I]))
        return false;
    }
    return LA < LB;
  };
  auto segEqual = [&](const Segment &A, const Segment &B) {
    if (A.End - A.Begin != B.End - B.Begin)
      return false;
    for (size_t I = 0; I != A.End - A.Begin; ++I)
      if (!(Tmp[A.Begin + I] == Tmp[B.Begin + I]))
        return false;
    return true;
  };
  for (size_t I = 1; I < NumSegs; ++I) {
    Segment S = Segs[I];
    size_t J = I;
    while (J > 0 && segLess(S, Segs[J - 1])) {
      Segs[J] = Segs[J - 1];
      --J;
    }
    Segs[J] = S;
  }

  N = 0;
  for (size_t I = 0; I != NumSegs; ++I) {
    if (I > 0 && segEqual(Segs[I], Segs[I - 1]))
      continue;
    for (size_t E = Segs[I].Begin; E != Segs[I].End; ++E)
      Buf[N++] = Tmp[E];
    Buf[N++] = SigEntry::separator();
  }
  return ResolveStatus::Resolved;
}

Dnf WaitPlan::reconstruct(ExprArena &Arena, const SigEntry *Sig, size_t N) {
  Dnf D;
  Conjunction C;
  for (size_t I = 0; I != N; ++I) {
    const SigEntry &E = Sig[I];
    if (E.isSeparator()) {
      D.Conjs.push_back(std::move(C));
      C = Conjunction{};
      continue;
    }
    ExprRef Atom;
    if (E.Tag == SigEntry::Opaque)
      Atom = static_cast<ExprRef>(E.P);
    else
      Atom = Arena.binary(E.op(), static_cast<ExprRef>(E.P),
                          Arena.intLit(E.K));
    C.Atoms.push_back(Atom);
  }
  AUTOSYNCH_CHECK(C.Atoms.empty(), "signature not separator-terminated");
  return D;
}

//===- support/Check.h - Always-on invariant checks ------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant-check macros that stay active in release builds, plus the
/// fatal-error termination path. The library does not use exceptions; a
/// violated structural invariant aborts with a message (LLVM's
/// report_fatal_error discipline). Hot-path sanity checks use plain assert().
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_SUPPORT_CHECK_H
#define AUTOSYNCH_SUPPORT_CHECK_H

#include "support/Compiler.h"

namespace autosynch {

/// Prints \p Msg (with source location) to stderr and aborts. Never returns.
[[noreturn]] void fatalError(const char *File, int Line, const char *Msg);

} // namespace autosynch

/// Aborts with \p Msg when \p Cond is false. Active in all build types; use
/// for structural invariants whose violation would corrupt monitor state.
#define AUTOSYNCH_CHECK(Cond, Msg)                                            \
  do {                                                                        \
    if (AUTOSYNCH_UNLIKELY(!(Cond)))                                          \
      ::autosynch::fatalError(__FILE__, __LINE__, Msg);                       \
  } while (false)

/// Marks a code path that must be unreachable.
#define AUTOSYNCH_UNREACHABLE(Msg)                                            \
  ::autosynch::fatalError(__FILE__, __LINE__, Msg)

#endif // AUTOSYNCH_SUPPORT_CHECK_H

//===- support/Compiler.h - Compiler abstraction macros --------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler abstraction macros shared across the project.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_SUPPORT_COMPILER_H
#define AUTOSYNCH_SUPPORT_COMPILER_H

#if defined(__GNUC__) || defined(__clang__)
#define AUTOSYNCH_LIKELY(x) __builtin_expect(!!(x), 1)
#define AUTOSYNCH_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define AUTOSYNCH_NOINLINE __attribute__((noinline))
#define AUTOSYNCH_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define AUTOSYNCH_LIKELY(x) (x)
#define AUTOSYNCH_UNLIKELY(x) (x)
#define AUTOSYNCH_NOINLINE
#define AUTOSYNCH_ALWAYS_INLINE inline
#endif

#endif // AUTOSYNCH_SUPPORT_COMPILER_H

//===- support/ProcStats.cpp - Process-level OS statistics ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/ProcStats.h"

#include <sys/resource.h>

using namespace autosynch;

ContextSwitches autosynch::readContextSwitches() {
  struct rusage Usage;
  ContextSwitches CS;
  if (getrusage(RUSAGE_SELF, &Usage) == 0) {
    CS.Voluntary = static_cast<uint64_t>(Usage.ru_nvcsw);
    CS.Involuntary = static_cast<uint64_t>(Usage.ru_nivcsw);
  }
  return CS;
}

//===- support/ProcStats.h - Process-level OS statistics -------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-switch counting for the Fig. 15 experiment. The paper reports the
/// number of context switches of the parameterized bounded-buffer runs; we
/// obtain the same quantity from getrusage(2) (voluntary + involuntary).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_SUPPORT_PROCSTATS_H
#define AUTOSYNCH_SUPPORT_PROCSTATS_H

#include <cstdint>

namespace autosynch {

/// Snapshot of the process's context-switch counters.
struct ContextSwitches {
  uint64_t Voluntary = 0;
  uint64_t Involuntary = 0;

  uint64_t total() const { return Voluntary + Involuntary; }

  ContextSwitches operator-(const ContextSwitches &Rhs) const {
    return {Voluntary - Rhs.Voluntary, Involuntary - Rhs.Involuntary};
  }
};

/// Reads the current process-wide context-switch counters.
ContextSwitches readContextSwitches();

} // namespace autosynch

#endif // AUTOSYNCH_SUPPORT_PROCSTATS_H

//===- support/Check.cpp - Always-on invariant checks ---------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Check.h"

#include <cstdio>
#include <cstdlib>

void autosynch::fatalError(const char *File, int Line, const char *Msg) {
  std::fprintf(stderr, "autosynch fatal error: %s:%d: %s\n", File, Line, Msg);
  std::fflush(stderr);
  std::abort();
}

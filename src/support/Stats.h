//===- support/Stats.h - Run statistics and timing -------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Repetition statistics following the paper's methodology (Section 6.1):
/// run an experiment N times, drop the best and the worst result, and report
/// the mean of the rest. Also provides a simple wall-clock stopwatch.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_SUPPORT_STATS_H
#define AUTOSYNCH_SUPPORT_STATS_H

#include <chrono>
#include <cstdint>
#include <vector>

namespace autosynch {

/// Summary of a set of repeated measurements.
struct RunSummary {
  double Mean = 0.0;   ///< Mean after dropping best and worst (paper §6.1).
  double Min = 0.0;    ///< Minimum over all samples.
  double Max = 0.0;    ///< Maximum over all samples.
  double StdDev = 0.0; ///< Standard deviation of the retained samples.
  int Retained = 0;    ///< Number of samples contributing to Mean.
};

/// Summarizes \p Samples with the paper's drop-best-and-worst rule.
///
/// With fewer than three samples nothing is dropped. Requires at least one
/// sample.
RunSummary summarizeRuns(const std::vector<double> &Samples);

/// Wall-clock stopwatch.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Nanoseconds elapsed since construction or the last restart().
  uint64_t nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

  void restart() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace autosynch

#endif // AUTOSYNCH_SUPPORT_STATS_H

//===- support/Stats.h - Run statistics and timing -------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Repetition statistics following the paper's methodology (Section 6.1):
/// run an experiment N times, drop the best and the worst result, and report
/// the mean of the rest. Also provides a simple wall-clock stopwatch.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_SUPPORT_STATS_H
#define AUTOSYNCH_SUPPORT_STATS_H

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

namespace autosynch {

/// Summary of a set of repeated measurements.
struct RunSummary {
  double Mean = 0.0;   ///< Mean after dropping best and worst (paper §6.1).
  double Min = 0.0;    ///< Minimum over all samples.
  double Max = 0.0;    ///< Maximum over all samples.
  double StdDev = 0.0; ///< Standard deviation of the retained samples.
  int Retained = 0;    ///< Number of samples contributing to Mean.
};

/// Summarizes \p Samples with the paper's drop-best-and-worst rule.
///
/// With fewer than three samples nothing is dropped. Requires at least one
/// sample.
RunSummary summarizeRuns(const std::vector<double> &Samples);

/// Log-bucketed latency histogram (HdrHistogram-style): power-of-two
/// octaves split into 2^SubBucketBits linear sub-buckets, giving a fixed
/// relative error of at most 1/2^SubBucketBits (~3%) over the full uint64
/// nanosecond range with O(1) recording and a few KB of storage.
///
/// Recording is not thread-safe; workload workers keep one histogram each
/// and merge() them after joining.
class LatencyHistogram {
public:
  void record(uint64_t Nanos);

  /// Adds every sample of \p Other into this histogram.
  void merge(const LatencyHistogram &Other);

  uint64_t count() const { return Count; }
  uint64_t minNanos() const { return Count ? Min : 0; }
  uint64_t maxNanos() const { return Count ? Max : 0; }
  double meanNanos() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count)
                 : 0.0;
  }

  /// Value at quantile \p Q in [0, 1] (0.5 = p50): the lower bound of the
  /// bucket holding the ceil(Q * count)-th smallest sample. Returns 0 on an
  /// empty histogram.
  uint64_t quantileNanos(double Q) const;

private:
  static constexpr int SubBucketBits = 5; // 32 sub-buckets per octave.
  static constexpr uint64_t SubBuckets = 1ULL << SubBucketBits;
  // Indices [0, 2*SubBuckets) are exact; each further octave adds
  // SubBuckets buckets, up to 2^64.
  static constexpr size_t NumBuckets =
      (64 - SubBucketBits + 1) * SubBuckets;

  static size_t bucketIndex(uint64_t V);
  /// Smallest value mapping to bucket \p Index.
  static uint64_t bucketLowerBound(size_t Index);

  std::array<uint64_t, NumBuckets> Buckets{};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = ~0ULL;
  uint64_t Max = 0;
};

/// Wall-clock stopwatch.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Nanoseconds elapsed since construction or the last restart().
  uint64_t nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

  void restart() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace autosynch

#endif // AUTOSYNCH_SUPPORT_STATS_H

//===- support/Stats.cpp - Run statistics and timing ----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include "support/Check.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace autosynch;

RunSummary autosynch::summarizeRuns(const std::vector<double> &Samples) {
  AUTOSYNCH_CHECK(!Samples.empty(), "summarizeRuns requires >= 1 sample");

  std::vector<double> Sorted(Samples);
  std::sort(Sorted.begin(), Sorted.end());

  RunSummary S;
  S.Min = Sorted.front();
  S.Max = Sorted.back();

  // Paper §6.1: "we perform 25 times, and remove the best and the worst
  // results. Then we compare the average runtime." Only drop when at least
  // one sample would remain.
  size_t Lo = 0, Hi = Sorted.size();
  if (Sorted.size() >= 3) {
    ++Lo;
    --Hi;
  }

  double Sum = 0.0;
  for (size_t I = Lo; I != Hi; ++I)
    Sum += Sorted[I];
  S.Retained = static_cast<int>(Hi - Lo);
  S.Mean = Sum / S.Retained;

  double Var = 0.0;
  for (size_t I = Lo; I != Hi; ++I)
    Var += (Sorted[I] - S.Mean) * (Sorted[I] - S.Mean);
  S.StdDev = S.Retained > 1 ? std::sqrt(Var / (S.Retained - 1)) : 0.0;
  return S;
}

size_t LatencyHistogram::bucketIndex(uint64_t V) {
  // The first two octaves are stored exactly; above them the top
  // SubBucketBits+1 bits of V select the bucket.
  if (V < 2 * SubBuckets)
    return static_cast<size_t>(V);
  int Exp = 63 - std::countl_zero(V);
  int Shift = Exp - SubBucketBits;
  return static_cast<size_t>(Shift) * SubBuckets +
         static_cast<size_t>(V >> Shift);
}

uint64_t LatencyHistogram::bucketLowerBound(size_t Index) {
  if (Index < 2 * SubBuckets)
    return Index;
  size_t Shift = Index / SubBuckets - 1;
  uint64_t Sub = Index % SubBuckets;
  return (SubBuckets + Sub) << Shift;
}

void LatencyHistogram::record(uint64_t Nanos) {
  ++Buckets[bucketIndex(Nanos)];
  ++Count;
  Sum += Nanos;
  Min = std::min(Min, Nanos);
  Max = std::max(Max, Nanos);
}

void LatencyHistogram::merge(const LatencyHistogram &Other) {
  if (Other.Count == 0)
    return;
  for (size_t I = 0; I != NumBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
  Count += Other.Count;
  Sum += Other.Sum;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
}

uint64_t LatencyHistogram::quantileNanos(double Q) const {
  if (Count == 0)
    return 0;
  Q = std::clamp(Q, 0.0, 1.0);
  uint64_t Target = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Count)));
  Target = std::max<uint64_t>(1, std::min(Target, Count));
  uint64_t Cumulative = 0;
  for (size_t I = 0; I != NumBuckets; ++I) {
    Cumulative += Buckets[I];
    if (Cumulative >= Target)
      return std::max(bucketLowerBound(I), minNanos());
  }
  return maxNanos(); // Unreachable: Target <= Count.
}

//===- support/Stats.cpp - Run statistics and timing ----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include "support/Check.h"

#include <algorithm>
#include <cmath>

using namespace autosynch;

RunSummary autosynch::summarizeRuns(const std::vector<double> &Samples) {
  AUTOSYNCH_CHECK(!Samples.empty(), "summarizeRuns requires >= 1 sample");

  std::vector<double> Sorted(Samples);
  std::sort(Sorted.begin(), Sorted.end());

  RunSummary S;
  S.Min = Sorted.front();
  S.Max = Sorted.back();

  // Paper §6.1: "we perform 25 times, and remove the best and the worst
  // results. Then we compare the average runtime." Only drop when at least
  // one sample would remain.
  size_t Lo = 0, Hi = Sorted.size();
  if (Sorted.size() >= 3) {
    ++Lo;
    --Hi;
  }

  double Sum = 0.0;
  for (size_t I = Lo; I != Hi; ++I)
    Sum += Sorted[I];
  S.Retained = static_cast<int>(Hi - Lo);
  S.Mean = Sum / S.Retained;

  double Var = 0.0;
  for (size_t I = Lo; I != Hi; ++I)
    Var += (Sorted[I] - S.Mean) * (Sorted[I] - S.Mean);
  S.StdDev = S.Retained > 1 ? std::sqrt(Var / (S.Retained - 1)) : 0.0;
  return S;
}

//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 pseudo-random generator. Deterministic across platforms so
/// workloads (e.g. the parameterized bounded buffer's random item counts)
/// and property tests are reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_SUPPORT_RNG_H
#define AUTOSYNCH_SUPPORT_RNG_H

#include "support/Check.h"

#include <cstdint>

namespace autosynch {

/// SplitMix64: tiny, fast, and statistically solid enough for workload
/// generation and property-test case generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniform in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  int64_t range(int64_t Lo, int64_t Hi) {
    AUTOSYNCH_CHECK(Lo <= Hi, "Rng::range requires Lo <= Hi");
    uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
    if (Span == 0) // Full 64-bit span.
      return static_cast<int64_t>(next());
    return Lo + static_cast<int64_t>(next() % Span);
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) {
    AUTOSYNCH_CHECK(Den > 0 && Num <= Den, "Rng::chance requires Num <= Den");
    return next() % Den < Num;
  }

private:
  uint64_t State;
};

} // namespace autosynch

#endif // AUTOSYNCH_SUPPORT_RNG_H

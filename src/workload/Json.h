//===- workload/Json.h - Minimal JSON emission -----------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny streaming JSON writer for the workbench's machine-readable
/// output (BENCH_workload.json). Write-only, no dependencies; commas and
/// nesting are tracked so call sites read like the document.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_WORKLOAD_JSON_H
#define AUTOSYNCH_WORKLOAD_JSON_H

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace autosynch::workload {

/// Streaming JSON writer. The caller is responsible for well-formedness
/// (balanced begin/end, keys only inside objects); violations are fatal in
/// checked builds.
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS) : OS(OS) {}

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits the key of the next member (objects only).
  JsonWriter &key(std::string_view Name);

  JsonWriter &value(std::string_view S);
  JsonWriter &value(const char *S) { return value(std::string_view(S)); }
  JsonWriter &value(int64_t V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(double V);
  JsonWriter &value(bool V);

  /// key(Name) + value(V) in one call.
  template <typename T> JsonWriter &member(std::string_view Name, T V) {
    key(Name);
    return value(V);
  }

private:
  enum class Scope : uint8_t { Object, Array };

  void beforeValue();

  std::ostream &OS;
  std::vector<Scope> Stack;
  bool NeedComma = false;
  bool PendingKey = false;
};

} // namespace autosynch::workload

#endif // AUTOSYNCH_WORKLOAD_JSON_H

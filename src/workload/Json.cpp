//===- workload/Json.cpp - Minimal JSON emission ----------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "workload/Json.h"

#include "support/Check.h"

#include <cmath>
#include <cstdio>

using namespace autosynch;
using namespace autosynch::workload;

void JsonWriter::beforeValue() {
  if (!Stack.empty() && Stack.back() == Scope::Object)
    AUTOSYNCH_CHECK(PendingKey, "object member written without a key");
  if (NeedComma && !PendingKey)
    OS << ',';
  PendingKey = false;
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  OS << '{';
  Stack.push_back(Scope::Object);
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  AUTOSYNCH_CHECK(!Stack.empty() && Stack.back() == Scope::Object,
                  "endObject outside an object");
  AUTOSYNCH_CHECK(!PendingKey, "dangling key at endObject");
  Stack.pop_back();
  OS << '}';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  OS << '[';
  Stack.push_back(Scope::Array);
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  AUTOSYNCH_CHECK(!Stack.empty() && Stack.back() == Scope::Array,
                  "endArray outside an array");
  Stack.pop_back();
  OS << ']';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Name) {
  AUTOSYNCH_CHECK(!Stack.empty() && Stack.back() == Scope::Object,
                  "key outside an object");
  AUTOSYNCH_CHECK(!PendingKey, "two keys in a row");
  if (NeedComma)
    OS << ',';
  PendingKey = true;
  NeedComma = false;
  // Reuse the string escaper, then flag the pending key it cleared.
  value(Name);
  OS << ':';
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view S) {
  if (!PendingKey)
    beforeValue();
  else
    PendingKey = false;
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  beforeValue();
  OS << V;
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  beforeValue();
  OS << V;
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  beforeValue();
  // JSON has no NaN/Inf; clamp to null.
  if (!std::isfinite(V)) {
    OS << "null";
  } else {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    OS << Buf;
  }
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  beforeValue();
  OS << (V ? "true" : "false");
  NeedComma = true;
  return *this;
}


//===- workload/Scenario.h - Multi-monitor scenario graphs -----*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scenario graphs: multi-stage topologies composing the problem monitors
/// of src/problems/ into one concurrent workload. Tokens flow from source
/// stages through bounded-buffer channels into processing stages (readers/
/// writers sections, barrier crossings, strict-rotation admission), with
/// fan-out (a stage routes token id % n to its n successors) and fan-in
/// (several stages feeding one input channel).
///
/// Everything about a scenario is deterministic given the spec and a seed:
/// token routing depends only on token ids, so per-stage token counts can
/// be computed up front (simulateTokenCounts) and used as exact work
/// quotas — no poison pills, no racy shutdown.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_WORKLOAD_SCENARIO_H
#define AUTOSYNCH_WORKLOAD_SCENARIO_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace autosynch::workload {

/// What a stage does with each token it receives.
enum class StageKind : uint8_t {
  Source,         ///< Emits tokens (closed- or open-loop); one thread.
  Queue,          ///< Pure bounded-buffer handoff; the channel is the work.
  ReadersWriters, ///< Read or write section on a shared RW monitor.
  Barrier,        ///< Whole-group crossing of a FIFO cyclic barrier.
  Rotation        ///< Strict round-robin admission (total order).
};

/// Returns "source", "queue", "readers-writers", "barrier", or "rotation".
const char *stageKindName(StageKind K);

/// How a source paces token emission.
enum class Arrival : uint8_t {
  Closed,      ///< Emit as fast as downstream accepts (backpressure-bound).
  OpenUniform, ///< Seeded uniform inter-arrival times around 1/rate.
  OpenPoisson  ///< Seeded exponential inter-arrival times (Poisson stream).
};

/// Returns "closed", "open-uniform", or "open-poisson".
const char *arrivalName(Arrival A);

/// One node of the scenario graph.
struct StageSpec {
  std::string Name;
  StageKind Kind = StageKind::Queue;

  /// Worker threads pulling from the input channel. 0 means "filled in by
  /// the runner's thread knob" (see ScenarioSpec::withWorkers). Sources
  /// always run one emitter thread.
  int Workers = 1;

  /// Input-channel capacity (non-source stages).
  int64_t Capacity = 64;

  /// ReadersWriters: percentage of tokens that take the read side.
  int ReadPercent = 90;

  /// Barrier: party count; 0 means one party per worker.
  int64_t Parties = 0;

  /// Source pacing; ignored for other kinds.
  Arrival Process = Arrival::Closed;
  /// Open-loop mean emission rate (tokens/sec); ignored for Closed.
  double RatePerSec = 0.0;

  /// Successor stage indices. A token with id T goes to
  /// Downstream[T % Downstream.size()]; empty marks a sink.
  std::vector<int> Downstream;
};

/// A full scenario: stages in topological order (edges only point to
/// higher indices).
struct ScenarioSpec {
  std::string Name;
  std::string Description;
  std::vector<StageSpec> Stages;

  /// Empty when the spec is well-formed, else a description of the first
  /// problem found (bad edges, barrier parties exceeding workers, ...).
  std::string validate() const;

  /// Copy with every Workers==0 processing stage set to \p Workers (the
  /// thread-sweep knob).
  ScenarioSpec withWorkers(int Workers) const;
};

/// The built-in scenario presets (pipeline, fanout, fanin, mixed).
const std::vector<ScenarioSpec> &builtinScenarios();

/// Looks up a built-in scenario by name; null when unknown.
const ScenarioSpec *findScenario(std::string_view Name);

/// Tokens each stage processes when every source emits \p TokensPerSource
/// (routing is deterministic in token ids). Index-aligned with Stages;
/// sources report the tokens they emit.
std::vector<int64_t> simulateTokenCounts(const ScenarioSpec &Spec,
                                         int64_t TokensPerSource);

} // namespace autosynch::workload

#endif // AUTOSYNCH_WORKLOAD_SCENARIO_H

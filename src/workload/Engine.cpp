//===- workload/Engine.cpp - Scenario execution engine ----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Determinism and shutdown: per-stage token counts are precomputed
// (simulateTokenCounts), so workers claim work from a per-stage atomic
// countdown and exit exactly when their stage's quota is consumed — no
// poison pills. Timestamp tables are indexed by token id and written on
// the producing side of a channel before put(); the monitor lock makes
// them visible to the taking worker (TSan-clean by construction).
//
// Deadlock freedom rests on three arguments:
//  * The graph is a DAG with edges pointing forward, so channel
//    backpressure cannot cycle.
//  * A barrier stage only issues await tickets up to the largest multiple
//    of Parties within its quota, and the Parties-th arrival trips the
//    group synchronously, so blocked workers never exceed Parties-1 and a
//    free worker always remains to feed the group.
//  * A rotation stage's pending tickets are at most Workers consecutive
//    integers (one per worker), whose residues are distinct, so the
//    current turn always has exactly one admissible waiter.
//
//===----------------------------------------------------------------------===//

#include "workload/Engine.h"

#include "problems/BoundedBuffer.h"
#include "problems/CyclicBarrier.h"
#include "problems/ReadersWriters.h"
#include "problems/RoundRobin.h"
#include "support/Check.h"
#include "support/Rng.h"
#include "workload/Json.h"

#include <atomic>
#include <barrier>
#include <chrono>
#include <cmath>
#include <thread>

using namespace autosynch;
using namespace autosynch::workload;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void atomicMin(std::atomic<uint64_t> &A, uint64_t V) {
  uint64_t Cur = A.load(std::memory_order_relaxed);
  while (V < Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

void atomicMax(std::atomic<uint64_t> &A, uint64_t V) {
  uint64_t Cur = A.load(std::memory_order_relaxed);
  while (V > Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

/// Uniform double in (0, 1].
double unitUniform(Rng &R) {
  return (static_cast<double>(R.next() >> 11) + 1.0) / 9007199254740992.0;
}

/// Everything one stage needs at run time.
struct StageRuntime {
  const StageSpec *Spec = nullptr;
  int64_t ExpectedTokens = 0;

  /// Input channel (null for sources): a bounded-buffer monitor carrying
  /// token ids.
  std::unique_ptr<BoundedBufferIface> In;

  /// The stage's work monitor (at most one is non-null).
  std::unique_ptr<ReadersWritersIface> RW;
  std::unique_ptr<CyclicBarrierIface> Barrier;
  std::unique_ptr<RoundRobinIface> Rotation;

  /// Work-claim countdown: a worker that decrements it to or below zero
  /// stops; total successful claims == ExpectedTokens.
  std::atomic<int64_t> Remaining{0};

  /// Barrier stages: await tickets; tickets at or above AwaitLimit (the
  /// largest multiple of Parties within the quota) pass through without
  /// awaiting so the final generation always fills.
  std::atomic<int64_t> AwaitTickets{0};
  int64_t AwaitLimit = 0;

  /// Rotation stages: global admission tickets.
  std::atomic<int64_t> RotationTickets{0};

  /// First-arrival / last-completion timestamps (throughput span).
  std::atomic<uint64_t> FirstNs{~0ULL};
  std::atomic<uint64_t> LastNs{0};

  /// Channel-op expiries charged to this stage (timed runs only): takes
  /// from the input channel that expired, plus puts into it that expired
  /// against its backpressure. Rare events; one shared counter is fine.
  std::atomic<int64_t> OpTimeouts{0};

  /// Token arrival stamps at this stage, indexed by token id; written by
  /// the producing side before put(), read by the worker after take().
  /// Deliberately sized to the global token count even under fan-out
  /// (O(stages x tokens) memory, ~8 bytes per cell): direct indexing
  /// needs no locking or id remapping on the hot path.
  std::vector<uint64_t> ArrivalNs;

  /// Per-worker histograms, merged after the join.
  std::vector<LatencyHistogram> WorkerLatency;
  std::vector<LatencyHistogram> WorkerEndToEnd; // Allocated for sinks only.
};

class Engine {
public:
  Engine(const ScenarioSpec &Spec, const RunConfig &Cfg)
      : Spec(Spec), Cfg(Cfg) {}

  ScenarioReport run();

private:
  void forward(StageRuntime &From, int64_t Id, uint64_t Now,
               LatencyHistogram *SinkHist);
  void sourceLoop(StageRuntime &St, int64_t IdBase);
  void workerLoop(StageRuntime &St, int WorkerIdx);

  const ScenarioSpec &Spec;
  const RunConfig &Cfg;
  // unique_ptr: StageRuntime holds atomics and is not movable.
  std::vector<std::unique_ptr<StageRuntime>> Stages;
  std::vector<uint64_t> StartNs; ///< Emission stamp per token id.
};

void Engine::forward(StageRuntime &From, int64_t Id, uint64_t Now,
                     LatencyHistogram *SinkHist) {
  const std::vector<int> &Down = From.Spec->Downstream;
  if (Down.empty()) {
    // Sink: the token leaves the system here.
    SinkHist->record(Now - StartNs[Id]);
    return;
  }
  StageRuntime &Dest =
      *Stages[Down[static_cast<uint64_t>(Id) % Down.size()]];
  Dest.ArrivalNs[Id] = Now;
  atomicMin(Dest.FirstNs, Now);
  if (Cfg.OpTimeoutNs == 0) {
    Dest.In->put(Id);
    return;
  }
  // Timed run: bound every put by the op deadline and retry on expiry —
  // conservation is sacred (quotas are exact), the count is the signal.
  while (!Dest.In->putFor(Id, Cfg.OpTimeoutNs))
    Dest.OpTimeouts.fetch_add(1, std::memory_order_relaxed);
}

void Engine::sourceLoop(StageRuntime &St, int64_t IdBase) {
  Arrival Process =
      Cfg.OverrideArrival ? Cfg.Process : St.Spec->Process;
  double Rate = Cfg.OverrideArrival ? Cfg.RatePerSec : St.Spec->RatePerSec;
  AUTOSYNCH_CHECK(Process == Arrival::Closed || Rate > 0.0,
                  "open-loop source without a rate");
  Rng R(Cfg.Seed ^ (static_cast<uint64_t>(IdBase) * 0x9e3779b97f4a7c15ULL));

  uint64_t DueNs = nowNanos();
  for (int64_t T = 0; T != Cfg.TokensPerSource; ++T) {
    int64_t Id = IdBase + T;
    if (Process != Arrival::Closed) {
      double MeanNs = 1e9 / Rate;
      double Wait = Process == Arrival::OpenUniform
                        ? 2.0 * MeanNs * unitUniform(R)
                        : -MeanNs * std::log(unitUniform(R));
      DueNs += static_cast<uint64_t>(Wait);
      uint64_t Now = nowNanos();
      if (Now < DueNs)
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(DueNs - Now));
    }
    uint64_t Now = nowNanos();
    StartNs[Id] = Now;
    atomicMin(St.FirstNs, Now);
    atomicMax(St.LastNs, Now);
    forward(St, Id, Now, /*SinkHist=*/nullptr); // Sources are never sinks.
  }
}

void Engine::workerLoop(StageRuntime &St, int WorkerIdx) {
  const StageSpec &S = *St.Spec;
  LatencyHistogram &Latency = St.WorkerLatency[WorkerIdx];
  LatencyHistogram *Sink =
      S.Downstream.empty() ? &St.WorkerEndToEnd[WorkerIdx] : nullptr;

  for (;;) {
    if (St.Remaining.fetch_sub(1, std::memory_order_relaxed) <= 0)
      break;
    int64_t Id;
    if (Cfg.OpTimeoutNs == 0) {
      Id = St.In->take();
    } else {
      while (!St.In->takeFor(Id, Cfg.OpTimeoutNs))
        St.OpTimeouts.fetch_add(1, std::memory_order_relaxed);
    }

    switch (S.Kind) {
    case StageKind::Queue:
      break; // The channel handoff is the work.
    case StageKind::ReadersWriters: {
      // Derive the read/write choice from the token id, not the worker:
      // the op sequence is then identical across mechanisms and backends.
      Rng Coin(Cfg.Seed ^ (static_cast<uint64_t>(Id) + 1) *
                              0xbf58476d1ce4e5b9ULL);
      if (Coin.chance(static_cast<uint64_t>(S.ReadPercent), 100)) {
        St.RW->startRead();
        St.RW->endRead();
      } else {
        St.RW->startWrite();
        St.RW->endWrite();
      }
      break;
    }
    case StageKind::Barrier: {
      int64_t Ticket =
          St.AwaitTickets.fetch_add(1, std::memory_order_relaxed);
      if (Ticket < St.AwaitLimit)
        St.Barrier->await();
      break;
    }
    case StageKind::Rotation: {
      int64_t Ticket =
          St.RotationTickets.fetch_add(1, std::memory_order_relaxed);
      St.Rotation->access(Ticket % S.Workers);
      break;
    }
    case StageKind::Source:
      AUTOSYNCH_UNREACHABLE("sources have no worker loop");
    }

    uint64_t Now = nowNanos();
    Latency.record(Now - St.ArrivalNs[Id]);
    atomicMax(St.LastNs, Now);
    forward(St, Id, Now, Sink);
  }
}

ScenarioReport Engine::run() {
  std::string Problem = Spec.validate();
  AUTOSYNCH_CHECK(Problem.empty(),
                  ("invalid scenario: " + Problem).c_str());

  // Install the run's relay filter before any monitor is instantiated
  // (the problem factories read it through configFor()); restored before
  // returning so a sweep cell cannot leak its filter into later runs.
  RelayFilter PrevFilter = defaultRelayFilter();
  setDefaultRelayFilter(Cfg.Filter);

  std::vector<int64_t> Counts =
      simulateTokenCounts(Spec, Cfg.TokensPerSource);

  int64_t NumSources = 0;
  for (const StageSpec &S : Spec.Stages)
    if (S.Kind == StageKind::Source)
      ++NumSources;
  int64_t TotalTokens = NumSources * Cfg.TokensPerSource;
  StartNs.assign(static_cast<size_t>(TotalTokens), 0);

  // Instantiate the graph's monitors.
  Stages.clear();
  for (size_t I = 0; I != Spec.Stages.size(); ++I)
    Stages.push_back(std::make_unique<StageRuntime>());
  for (size_t I = 0; I != Spec.Stages.size(); ++I) {
    const StageSpec &S = Spec.Stages[I];
    StageRuntime &St = *Stages[I];
    St.Spec = &S;
    St.ExpectedTokens = Counts[I];
    if (S.Kind == StageKind::Source)
      continue;
    St.In = makeBoundedBuffer(Cfg.Mech, S.Capacity, Cfg.Backend);
    St.Remaining.store(Counts[I], std::memory_order_relaxed);
    St.ArrivalNs.assign(static_cast<size_t>(TotalTokens), 0);
    St.WorkerLatency.resize(S.Workers);
    if (S.Downstream.empty())
      St.WorkerEndToEnd.resize(S.Workers);
    switch (S.Kind) {
    case StageKind::ReadersWriters:
      St.RW = makeReadersWriters(Cfg.Mech, Cfg.Backend);
      break;
    case StageKind::Barrier: {
      int64_t Parties = S.Parties > 0 ? S.Parties : S.Workers;
      St.Barrier = makeCyclicBarrier(Cfg.Mech, Parties, Cfg.Backend);
      St.AwaitLimit = (Counts[I] / Parties) * Parties;
      break;
    }
    case StageKind::Rotation:
      St.Rotation = makeRoundRobin(Cfg.Mech, S.Workers, Cfg.Backend);
      break;
    case StageKind::Queue:
      break;
    case StageKind::Source:
      AUTOSYNCH_UNREACHABLE("handled above");
    }
  }

  // Launch everything behind one start gate so the clock starts fair.
  int TotalThreads = 0;
  for (const StageSpec &S : Spec.Stages)
    TotalThreads += S.Kind == StageKind::Source ? 1 : S.Workers;

  std::barrier StartGate(TotalThreads + 1);
  std::vector<std::thread> Pool;
  Pool.reserve(TotalThreads);
  int64_t IdBase = 0;
  for (size_t I = 0; I != Spec.Stages.size(); ++I) {
    StageRuntime &St = *Stages[I];
    if (St.Spec->Kind == StageKind::Source) {
      Pool.emplace_back([this, &St, &StartGate, IdBase] {
        StartGate.arrive_and_wait();
        sourceLoop(St, IdBase);
      });
      IdBase += Cfg.TokensPerSource;
      continue;
    }
    for (int W = 0; W != St.Spec->Workers; ++W) {
      Pool.emplace_back([this, &St, &StartGate, W] {
        StartGate.arrive_and_wait();
        workerLoop(St, W);
      });
    }
  }

  sync::CountersSnapshot Sync0 = sync::Counters::global().snapshot();
  PlanCountersSnapshot Plan0 = PlanCounters::global().snapshot();
  sync::RelayCountersSnapshot Relay0 =
      sync::RelayCounters::global().snapshot();
  sync::TimedCountersSnapshot Time0 =
      sync::TimedCounters::global().snapshot();
  StartGate.arrive_and_wait();
  Stopwatch Watch;
  for (std::thread &T : Pool)
    T.join();
  double Wall = Watch.seconds();

  // Assemble the report.
  ScenarioReport R;
  R.Scenario = Spec.Name;
  R.Mech = Cfg.Mech;
  R.Backend = Cfg.Backend;
  R.Filter = Cfg.Filter;
  R.TotalTokens = TotalTokens;
  R.TotalThreads = TotalThreads;
  R.WallSeconds = Wall;
  R.Sync = sync::Counters::global().snapshot() - Sync0;
  R.Plan = PlanCounters::global().snapshot() - Plan0;
  R.OpTimeoutNs = Cfg.OpTimeoutNs;

  int64_t SinkTokens = 0;
  for (size_t I = 0; I != Stages.size(); ++I) {
    StageRuntime &St = *Stages[I];
    StageReport SR;
    SR.Name = St.Spec->Name;
    SR.Kind = St.Spec->Kind;
    SR.Workers = St.Spec->Kind == StageKind::Source ? 1 : St.Spec->Workers;
    SR.Tokens = St.ExpectedTokens;
    SR.OpTimeouts = St.OpTimeouts.load(std::memory_order_relaxed);
    R.OpTimeouts += SR.OpTimeouts;
    if (St.RW) {
      SR.Reads = St.RW->reads();
      SR.Writes = St.RW->writes();
    }
    for (const LatencyHistogram &H : St.WorkerLatency)
      SR.Latency.merge(H);
    uint64_t First = St.FirstNs.load(std::memory_order_relaxed);
    uint64_t Last = St.LastNs.load(std::memory_order_relaxed);
    double Span = Last > First ? static_cast<double>(Last - First) / 1e9
                               : Wall;
    SR.SpanSeconds = Span;
    SR.Throughput =
        Span > 0.0 ? static_cast<double>(SR.Tokens) / Span : 0.0;
    if (St.Spec->Downstream.empty() &&
        St.Spec->Kind != StageKind::Source) {
      SinkTokens += St.ExpectedTokens;
      for (const LatencyHistogram &H : St.WorkerEndToEnd)
        R.EndToEnd.merge(H);
    }
    R.Stages.push_back(std::move(SR));
  }
  R.Throughput =
      Wall > 0.0 ? static_cast<double>(SinkTokens) / Wall : 0.0;

  // The monitors feed sync::RelayCounters in batches and flush the
  // remainder on destruction, so they must be torn down (the stage
  // reports above are done with them) before the relay delta is taken —
  // otherwise a run with few relays per monitor reports zeros.
  Stages.clear();
  R.Relay = sync::RelayCounters::global().snapshot() - Relay0;
  R.Time = sync::TimedCounters::global().snapshot() - Time0;

  setDefaultRelayFilter(PrevFilter);
  return R;
}

} // namespace

ScenarioReport workload::runScenario(const ScenarioSpec &Spec,
                                     const RunConfig &Cfg) {
  return Engine(Spec, Cfg).run();
}

static void writeHistogramJson(JsonWriter &J, const LatencyHistogram &H) {
  J.beginObject()
      .member("count", H.count())
      .member("mean", H.meanNanos())
      .member("min", H.minNanos())
      .member("p50", H.quantileNanos(0.50))
      .member("p95", H.quantileNanos(0.95))
      .member("p99", H.quantileNanos(0.99))
      .member("max", H.maxNanos())
      .endObject();
}

void workload::writeReportJson(const ScenarioReport &R, JsonWriter &J) {
  J.beginObject()
      .member("scenario", R.Scenario)
      .member("mechanism", mechanismName(R.Mech))
      .member("backend", sync::backendName(R.Backend))
      .member("relay_filter", relayFilterName(R.Filter))
      .member("total_tokens", R.TotalTokens)
      .member("total_threads", R.TotalThreads)
      .member("wall_seconds", R.WallSeconds)
      .member("throughput_tokens_per_sec", R.Throughput);
  J.key("end_to_end_ns");
  writeHistogramJson(J, R.EndToEnd);
  J.key("sync");
  J.beginObject()
      .member("awaits", R.Sync.Awaits)
      .member("signals", R.Sync.Signals)
      .member("signal_alls", R.Sync.SignalAlls)
      .member("wakeups", R.Sync.Wakeups)
      .endObject();
  J.key("plan_cache");
  J.beginObject()
      .member("shape_builds", R.Plan.ShapeBuilds)
      .member("shape_hits", R.Plan.ShapeHits)
      .member("bind_hits", R.Plan.BindHits)
      .member("cold_binds", R.Plan.ColdBinds)
      .member("legacy_waits", R.Plan.LegacyWaits)
      .endObject();
  J.key("relay");
  J.beginObject()
      .member("calls", R.Relay.RelayCalls)
      .member("dirty_skips", R.Relay.DirtySkips)
      .member("filtered_exprs", R.Relay.FilteredExprs)
      .member("stamp_short_circuits", R.Relay.StampShortCircuits)
      .endObject();
  // Schema v4: the deadline-runtime block. op_timeout_ns echoes the
  // per-op bound in force (0 = untimed run), op_timeouts totals the
  // per-stage expiry counts, and the "time" counters are the process-wide
  // deadline-runtime deltas.
  J.member("op_timeout_ns", R.OpTimeoutNs)
      .member("op_timeouts", R.OpTimeouts);
  J.key("time");
  J.beginObject()
      .member("timed_waits", R.Time.TimedWaits)
      .member("timeouts", R.Time.Timeouts)
      .member("cancels", R.Time.Cancels)
      .member("wheel_wakeups", R.Time.WheelWakeups)
      .endObject();
  J.key("stages");
  J.beginArray();
  for (const StageReport &S : R.Stages) {
    J.beginObject()
        .member("name", S.Name)
        .member("kind", stageKindName(S.Kind))
        .member("workers", S.Workers)
        .member("tokens", S.Tokens)
        .member("span_seconds", S.SpanSeconds)
        .member("throughput_tokens_per_sec", S.Throughput);
    if (S.Kind == StageKind::ReadersWriters)
      J.member("reads", S.Reads).member("writes", S.Writes);
    if (R.OpTimeoutNs != 0)
      J.member("op_timeouts", S.OpTimeouts);
    J.key("latency_ns");
    writeHistogramJson(J, S.Latency);
    J.endObject();
  }
  J.endArray();
  J.endObject();
}

void workload::writeReportJson(const ScenarioReport &R, std::ostream &OS) {
  JsonWriter J(OS);
  writeReportJson(R, J);
}

//===- workload/Scenario.cpp - Multi-monitor scenario graphs ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "workload/Scenario.h"

#include "support/Check.h"

#include <sstream>

using namespace autosynch;
using namespace autosynch::workload;

const char *workload::stageKindName(StageKind K) {
  switch (K) {
  case StageKind::Source:
    return "source";
  case StageKind::Queue:
    return "queue";
  case StageKind::ReadersWriters:
    return "readers-writers";
  case StageKind::Barrier:
    return "barrier";
  case StageKind::Rotation:
    return "rotation";
  }
  AUTOSYNCH_UNREACHABLE("invalid StageKind");
}

const char *workload::arrivalName(Arrival A) {
  switch (A) {
  case Arrival::Closed:
    return "closed";
  case Arrival::OpenUniform:
    return "open-uniform";
  case Arrival::OpenPoisson:
    return "open-poisson";
  }
  AUTOSYNCH_UNREACHABLE("invalid Arrival");
}

std::string ScenarioSpec::validate() const {
  std::ostringstream Err;
  if (Stages.empty())
    return "scenario has no stages";

  bool HasSource = false;
  for (size_t I = 0; I != Stages.size(); ++I) {
    const StageSpec &S = Stages[I];
    auto Fail = [&](const std::string &Why) {
      Err << "stage " << I << " ('" << S.Name << "'): " << Why;
      return Err.str();
    };

    if (S.Kind == StageKind::Source) {
      HasSource = true;
      if (S.Downstream.empty())
        return Fail("a source needs at least one downstream stage");
      if (S.RatePerSec <= 0.0 && S.Process != Arrival::Closed)
        return Fail("open-loop sources need RatePerSec > 0");
    } else {
      if (S.Workers < 1)
        return Fail("processing stages need at least one worker "
                    "(is the Workers==0 placeholder unfilled?)");
      if (S.Capacity < 1)
        return Fail("input channel capacity must be >= 1");
    }
    if (S.Kind == StageKind::ReadersWriters &&
        (S.ReadPercent < 0 || S.ReadPercent > 100))
      return Fail("ReadPercent must be within [0, 100]");
    if (S.Kind == StageKind::Barrier && S.Parties > S.Workers)
      return Fail("barrier parties exceed the stage's workers "
                  "(a generation could never fill)");

    // Topological order doubles as the acyclicity proof: edges may only
    // point forward.
    for (int D : S.Downstream) {
      if (D < 0 || static_cast<size_t>(D) >= Stages.size())
        return Fail("downstream index out of range");
      if (static_cast<size_t>(D) <= I)
        return Fail("downstream edges must point to later stages");
      if (Stages[D].Kind == StageKind::Source)
        return Fail("a source cannot be a downstream target");
    }
  }
  if (!HasSource)
    return "scenario has no source stage";
  return "";
}

ScenarioSpec ScenarioSpec::withWorkers(int Workers) const {
  AUTOSYNCH_CHECK(Workers >= 1, "worker knob must be >= 1");
  ScenarioSpec Out = *this;
  for (StageSpec &S : Out.Stages)
    if (S.Kind != StageKind::Source && S.Workers == 0)
      S.Workers = Workers;
  return Out;
}

std::vector<int64_t>
workload::simulateTokenCounts(const ScenarioSpec &Spec,
                              int64_t TokensPerSource) {
  AUTOSYNCH_CHECK(TokensPerSource >= 0, "token count must be >= 0");
  std::vector<int64_t> Counts(Spec.Stages.size(), 0);

  // Token ids are globally unique: source k emits the contiguous block
  // [k * TokensPerSource, (k+1) * TokensPerSource). Routing depends only
  // on the id, so walking each token's path reproduces the run exactly.
  int64_t SourceIdx = 0;
  for (size_t S = 0; S != Spec.Stages.size(); ++S) {
    if (Spec.Stages[S].Kind != StageKind::Source)
      continue;
    int64_t Base = SourceIdx * TokensPerSource;
    ++SourceIdx;
    Counts[S] += TokensPerSource;
    for (int64_t T = 0; T != TokensPerSource; ++T) {
      int64_t Id = Base + T;
      size_t At = S;
      while (!Spec.Stages[At].Downstream.empty()) {
        const std::vector<int> &Down = Spec.Stages[At].Downstream;
        At = static_cast<size_t>(
            Down[static_cast<uint64_t>(Id) % Down.size()]);
        ++Counts[At];
      }
    }
  }
  return Counts;
}

const std::vector<ScenarioSpec> &workload::builtinScenarios() {
  static const std::vector<ScenarioSpec> Scenarios = [] {
    std::vector<ScenarioSpec> V;

    {
      // The acceptance scenario: a linear 3-stage pipeline.
      ScenarioSpec S;
      S.Name = "pipeline";
      S.Description =
          "producer -> bounded-buffer queue -> readers-writers -> barrier";
      S.Stages = {
          {"producer", StageKind::Source, 1, 64, 90, 0, Arrival::Closed,
           0.0, {1}},
          {"queue", StageKind::Queue, 0, 64, 90, 0, Arrival::Closed, 0.0,
           {2}},
          {"rw", StageKind::ReadersWriters, 0, 64, 90, 0, Arrival::Closed,
           0.0, {3}},
          {"barrier", StageKind::Barrier, 0, 64, 90, 0, Arrival::Closed,
           0.0, {}},
      };
      V.push_back(std::move(S));
    }

    {
      // Fan-out: a router queue splits the stream across two RW sections
      // with opposite read/write mixes; a barrier stage fans the branches
      // back in.
      ScenarioSpec S;
      S.Name = "fanout";
      S.Description = "source -> router -> {read-heavy RW, write-heavy RW} "
                      "-> fan-in barrier";
      S.Stages = {
          {"source", StageKind::Source, 1, 64, 90, 0, Arrival::Closed, 0.0,
           {1}},
          {"router", StageKind::Queue, 0, 64, 90, 0, Arrival::Closed, 0.0,
           {2, 3}},
          {"rw-read", StageKind::ReadersWriters, 0, 64, 95, 0,
           Arrival::Closed, 0.0, {4}},
          {"rw-write", StageKind::ReadersWriters, 0, 64, 10, 0,
           Arrival::Closed, 0.0, {4}},
          {"join", StageKind::Barrier, 0, 64, 90, 0, Arrival::Closed, 0.0,
           {}},
      };
      V.push_back(std::move(S));
    }

    {
      // Fan-in: two independent sources merge into one queue, then a
      // strict-rotation stage serializes the merged stream.
      ScenarioSpec S;
      S.Name = "fanin";
      S.Description =
          "two sources -> shared queue -> strict-rotation sink";
      S.Stages = {
          {"source-a", StageKind::Source, 1, 64, 90, 0, Arrival::Closed,
           0.0, {2}},
          {"source-b", StageKind::Source, 1, 64, 90, 0, Arrival::Closed,
           0.0, {2}},
          {"merge", StageKind::Queue, 0, 64, 90, 0, Arrival::Closed, 0.0,
           {3}},
          {"rotation", StageKind::Rotation, 0, 64, 90, 0, Arrival::Closed,
           0.0, {}},
      };
      V.push_back(std::move(S));
    }

    {
      // Mixed: fan-out into heterogeneous work (RW section vs. barrier
      // crossing), fanned back into a serializing rotation.
      ScenarioSpec S;
      S.Name = "mixed";
      S.Description = "source -> queue -> {readers-writers, barrier} -> "
                      "rotation sink";
      S.Stages = {
          {"source", StageKind::Source, 1, 64, 90, 0, Arrival::Closed, 0.0,
           {1}},
          {"queue", StageKind::Queue, 0, 64, 90, 0, Arrival::Closed, 0.0,
           {2, 3}},
          {"rw", StageKind::ReadersWriters, 0, 64, 75, 0, Arrival::Closed,
           0.0, {4}},
          {"barrier", StageKind::Barrier, 0, 64, 90, 0, Arrival::Closed,
           0.0, {4}},
          {"rotation", StageKind::Rotation, 0, 64, 90, 0, Arrival::Closed,
           0.0, {}},
      };
      V.push_back(std::move(S));
    }

    for (const ScenarioSpec &S : V)
      AUTOSYNCH_CHECK(S.withWorkers(1).validate().empty(),
                      "built-in scenario failed validation");
    return V;
  }();
  return Scenarios;
}

const ScenarioSpec *workload::findScenario(std::string_view Name) {
  for (const ScenarioSpec &S : builtinScenarios())
    if (S.Name == Name)
      return &S;
  return nullptr;
}

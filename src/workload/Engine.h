//===- workload/Engine.h - Scenario execution engine -----------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a scenario graph: instantiates one monitor per stage (bounded
/// buffers as inter-stage channels, RW/barrier/round-robin monitors as
/// stage work) under a chosen Mechanism x sync::Backend, drives it with
/// seeded closed- or open-loop sources, and reports per-stage throughput
/// and latency histograms plus end-to-end sojourn times.
///
/// This is the first layer that exercises many automatic-signal monitors
/// concurrently in one process: a P-stage scenario at W workers runs
/// 2P monitors (channel + work) under P*W + sources threads.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_WORKLOAD_ENGINE_H
#define AUTOSYNCH_WORKLOAD_ENGINE_H

#include "plan/PlanCache.h"
#include "problems/Mechanism.h"
#include "support/Stats.h"
#include "sync/Counters.h"
#include "workload/Scenario.h"

#include <cstdint>
#include <ostream>

namespace autosynch::workload {

class JsonWriter;

/// One scenario execution's knobs.
struct RunConfig {
  Mechanism Mech = Mechanism::AutoSynch;
  sync::Backend Backend = sync::Backend::Std;

  /// Relay filter installed (via setDefaultRelayFilter) for the run's
  /// monitors; the workbench sweeps it for the dirty-set ablation.
  RelayFilter Filter = RelayFilter::DirtySet;

  /// Tokens each source emits.
  int64_t TokensPerSource = 10000;

  /// Base seed for the sources' arrival processes and the RW read/write
  /// choice. The same seed reproduces the same op sequence per stage.
  uint64_t Seed = 1;

  /// Overrides every source's arrival process when set (the workbench's
  /// --arrival/--rate knobs).
  bool OverrideArrival = false;
  Arrival Process = Arrival::Closed;
  double RatePerSec = 0.0;

  /// Per-operation deadline on every channel put/take (0 = untimed, the
  /// classic engine). A timed-out op is *retried* until it lands — token
  /// conservation and the per-stage quotas stay exact — with each expiry
  /// counted per stage, so the sweep exposes how often backpressure
  /// exceeds the bound without ever dropping work.
  uint64_t OpTimeoutNs = 0;
};

/// Per-stage results.
struct StageReport {
  std::string Name;
  StageKind Kind = StageKind::Queue;
  int Workers = 0;
  int64_t Tokens = 0;       ///< Tokens processed (sources: emitted).
  double SpanSeconds = 0.0; ///< First arrival to last completion.
  double Throughput = 0.0;  ///< Tokens / SpanSeconds.
  /// ReadersWriters stages: the seed-determined op split (0 elsewhere).
  int64_t Reads = 0;
  int64_t Writes = 0;
  /// Channel-op expiries charged to this stage under RunConfig::
  /// OpTimeoutNs: timed-out takes from its input channel plus timed-out
  /// puts *into* it (the producer was blocked by this stage's
  /// backpressure). 0 in untimed runs.
  int64_t OpTimeouts = 0;
  /// Stage sojourn per token: enqueue on the input channel to forward.
  /// Empty for sources.
  LatencyHistogram Latency;
};

/// Whole-scenario results.
struct ScenarioReport {
  std::string Scenario;
  Mechanism Mech = Mechanism::AutoSynch;
  sync::Backend Backend = sync::Backend::Std;
  RelayFilter Filter = RelayFilter::DirtySet;
  int64_t TotalTokens = 0;
  int TotalThreads = 0;
  double WallSeconds = 0.0;
  double Throughput = 0.0; ///< Sink completions / wall seconds.
  /// Source emission to sink completion, across all sinks.
  LatencyHistogram EndToEnd;
  /// Sync-layer event deltas over the run (process-wide).
  sync::CountersSnapshot Sync;
  /// Wait-plan cache deltas over the run (process-wide): how the
  /// monitors' waituntil calls were served (bind-table hits vs. cold
  /// resolutions vs. the uncached pipeline).
  PlanCountersSnapshot Plan;
  /// Dirty-set relay deltas over the run (process-wide): skipped relays,
  /// read-set-filtered index entries, stamp short-circuits.
  sync::RelayCountersSnapshot Relay;
  /// Deadline-runtime deltas over the run (process-wide): timed waits
  /// that blocked, expiries, cancels, exit-path wheel wakeups.
  sync::TimedCountersSnapshot Time;
  /// The per-op deadline in force (RunConfig::OpTimeoutNs) and the total
  /// op expiries across stages.
  uint64_t OpTimeoutNs = 0;
  int64_t OpTimeouts = 0;
  std::vector<StageReport> Stages;
};

/// Runs \p Spec (which must validate()) under \p Cfg and blocks until every
/// token has drained. Fatal error on an invalid spec.
ScenarioReport runScenario(const ScenarioSpec &Spec, const RunConfig &Cfg);

/// Renders \p R as one JSON object through \p J (the element schema of
/// BENCH_workload.json's "runs" array; see README). \p J must be
/// positioned where a value may start (array element or after a key).
void writeReportJson(const ScenarioReport &R, JsonWriter &J);

/// Convenience: renders \p R as a standalone JSON document on \p OS.
void writeReportJson(const ScenarioReport &R, std::ostream &OS);

} // namespace autosynch::workload

#endif // AUTOSYNCH_WORKLOAD_ENGINE_H

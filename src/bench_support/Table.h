//===- bench_support/Table.h - Paper-style result tables -------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned plain-text tables, one per reproduced figure/table. The
/// benches print the same series the paper plots so EXPERIMENTS.md can
/// compare shapes directly.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_BENCH_SUPPORT_TABLE_H
#define AUTOSYNCH_BENCH_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace autosynch::bench {

/// Accumulates rows of string cells and prints them column-aligned.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a row; must have exactly as many cells as the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders to stdout with two-space column gaps.
  void print() const;

  /// Formats seconds with millisecond resolution ("0.123").
  static std::string fmtSeconds(double S);
  /// Formats a count with no decoration.
  static std::string fmtCount(uint64_t N);
  /// Formats a ratio ("12.3x").
  static std::string fmtRatio(double R);

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace autosynch::bench

#endif // AUTOSYNCH_BENCH_SUPPORT_TABLE_H

//===- bench_support/BenchOptions.cpp - Bench configuration ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "bench_support/BenchOptions.h"

#include <algorithm>
#include <cstdlib>
#include <string>

using namespace autosynch::bench;

BenchOptions BenchOptions::fromEnv() {
  BenchOptions Opts;

  if (const char *Threads = std::getenv("AUTOSYNCH_BENCH_THREADS")) {
    std::vector<int> Counts;
    std::string S(Threads);
    size_t Pos = 0;
    while (Pos < S.size()) {
      size_t Comma = S.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = S.size();
      int V = std::atoi(S.substr(Pos, Comma - Pos).c_str());
      if (V > 0)
        Counts.push_back(V);
      Pos = Comma + 1;
    }
    if (!Counts.empty())
      Opts.ThreadCounts = std::move(Counts);
  }

  if (const char *Reps = std::getenv("AUTOSYNCH_BENCH_REPS"))
    Opts.Reps = std::max(1, std::atoi(Reps));

  if (const char *Scale = std::getenv("AUTOSYNCH_BENCH_SCALE")) {
    double V = std::atof(Scale);
    if (V > 0)
      Opts.OpsScale = V;
  }

  return Opts;
}

int64_t BenchOptions::scaled(int64_t BaseOps) const {
  int64_t V = static_cast<int64_t>(static_cast<double>(BaseOps) * OpsScale);
  return std::max<int64_t>(1, V);
}

//===- bench_support/BenchOptions.h - Bench configuration ------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Environment-configurable benchmark parameters. The paper sweeps 2..256
/// threads with 25 repetitions on a 64-hardware-thread machine; the default
/// here is a faster sweep suitable for CI, extensible via:
///
///   AUTOSYNCH_BENCH_THREADS  comma list, e.g. "2,4,8,16,32,64,128,256"
///   AUTOSYNCH_BENCH_REPS     repetitions per cell (default 3)
///   AUTOSYNCH_BENCH_SCALE    multiplier on per-cell operation counts
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_BENCH_SUPPORT_BENCHOPTIONS_H
#define AUTOSYNCH_BENCH_SUPPORT_BENCHOPTIONS_H

#include <cstdint>
#include <vector>

namespace autosynch::bench {

struct BenchOptions {
  /// Thread counts on the sweep's x-axis.
  std::vector<int> ThreadCounts = {2, 4, 8, 16, 32, 64};

  /// Repetitions per cell; best and worst are dropped when >= 3 (paper
  /// §6.1).
  int Reps = 3;

  /// Scales every per-cell operation budget.
  double OpsScale = 1.0;

  /// Reads the environment overrides.
  static BenchOptions fromEnv();

  /// Applies OpsScale to a base operation count (min 1).
  int64_t scaled(int64_t BaseOps) const;
};

} // namespace autosynch::bench

#endif // AUTOSYNCH_BENCH_SUPPORT_BENCHOPTIONS_H

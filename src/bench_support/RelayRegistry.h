//===- bench_support/RelayRegistry.h - Dirty-set relay fixture -*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The registry-style monitor the dirty-set relay scenarios are built on,
/// shared by bench/relay_dirtyset.cpp and tests/core/RelayFilterTest.cpp
/// so the two cannot drift apart: the zero-evaluation assertions depend on
/// exactly which shared variables each operation writes and each waiter
/// reads.
///
///   waiters       read set
///   waitLevel(n)  {level}   (parsed front end, local threshold)
///   waitGate()    {gate}    (EDSL front end)
///
///   operations    write set
///   peek()        {}        read-only exit: must dirty-skip the relay
///   bump()        {stamp}   no waiter reads it: must be filtered
///   setLevel(v)   {level} when v changes it, {} when idempotent
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_BENCH_SUPPORT_RELAYREGISTRY_H
#define AUTOSYNCH_BENCH_SUPPORT_RELAYREGISTRY_H

#include "core/Monitor.h"

#include <chrono>
#include <thread>

namespace autosynch::bench {

class RelayRegistry : public Monitor {
public:
  explicit RelayRegistry(MonitorConfig Cfg) : Monitor(Cfg), N(local("n")) {}

  /// Parks until `level >= Threshold` (parsed predicate, one record per
  /// distinct threshold).
  void waitLevel(int64_t Threshold) {
    Region R(*this);
    waitUntil("level >= n", locals().bindInt(N, Threshold));
  }

  /// Parks until `gate == 1` (EDSL predicate, one shared record).
  void waitGate() {
    Region R(*this);
    waitUntil(Gate == lit(1));
  }

  /// Read-only region: writes nothing.
  int64_t peek() {
    Region R(*this);
    return Level.get();
  }

  /// Writes a counter no waiter reads.
  void bump() {
    Region R(*this);
    Stamp += 1;
  }

  void setLevel(int64_t L) {
    Region R(*this);
    Level = L;
  }

  void setGate(int64_t G) {
    Region R(*this);
    Gate = G;
  }

  void setLevelAndGate(int64_t L, int64_t G) {
    Region R(*this);
    Level = L;
    Gate = G;
  }

  /// Parked-waiter count, read under the monitor lock (the probe
  /// testutil::awaitWaiters expects).
  int waiters() {
    Region R(*this);
    return conditionManager().numWaiters();
  }

  /// Spins until \p Count threads are parked (warmup choreography for
  /// benches; tests prefer testutil::awaitWaiters for its deadline).
  void awaitBlocked(int Count) {
    while (waiters() < Count)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  using Monitor::conditionManager;
  using Monitor::planCache;

private:
  Shared<int64_t> Level{*this, "level", 0};
  Shared<int64_t> Gate{*this, "gate", 0};
  Shared<int64_t> Stamp{*this, "stamp", 0};
  VarId N;
};

} // namespace autosynch::bench

#endif // AUTOSYNCH_BENCH_SUPPORT_RELAYREGISTRY_H

//===- bench_support/Table.cpp - Paper-style result tables -----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "bench_support/Table.h"

#include "support/Check.h"

#include <cstdint>
#include <cstdio>

using namespace autosynch::bench;

Table::Table(std::vector<std::string> Header) {
  Rows.push_back(std::move(Header));
}

void Table::addRow(std::vector<std::string> Cells) {
  AUTOSYNCH_CHECK(Cells.size() == Rows.front().size(),
                  "table row width mismatch");
  Rows.push_back(std::move(Cells));
}

void Table::print() const {
  std::vector<size_t> Widths(Rows.front().size(), 0);
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  for (const auto &Row : Rows) {
    for (size_t C = 0; C != Row.size(); ++C)
      std::printf("%-*s%s", static_cast<int>(Widths[C]), Row[C].c_str(),
                  C + 1 == Row.size() ? "" : "  ");
    std::printf("\n");
  }
}

std::string Table::fmtSeconds(double S) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", S);
  return Buf;
}

std::string Table::fmtCount(uint64_t N) { return std::to_string(N); }

std::string Table::fmtRatio(double R) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1fx", R);
  return Buf;
}

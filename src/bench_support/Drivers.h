//===- bench_support/Drivers.h - Saturation workload drivers ---*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One driver per evaluation problem, implementing the paper's saturation
/// tests (§6.1: "only monitor accessing function is performed ... no extra
/// work is in the monitor or out of the monitor"). Every driver starts all
/// threads behind a barrier, times the whole run, and returns wall time
/// plus OS and sync-layer event deltas.
///
/// One deliberate deviation, documented in EXPERIMENTS.md: the per-cell
/// *total* operation count is fixed and divided among the threads, so a
/// sweep point's runtime reflects per-operation cost under that level of
/// contention (the paper fixes per-thread work instead; shapes are
/// equivalent, absolute seconds are not).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_BENCH_SUPPORT_DRIVERS_H
#define AUTOSYNCH_BENCH_SUPPORT_DRIVERS_H

#include "problems/BoundedBuffer.h"
#include "problems/CyclicBarrier.h"
#include "problems/DiningPhilosophers.h"
#include "problems/H2O.h"
#include "problems/LeaseManager.h"
#include "problems/ParamBoundedBuffer.h"
#include "problems/ReadersWriters.h"
#include "problems/RoundRobin.h"
#include "problems/SantaClaus.h"
#include "problems/SleepingBarber.h"
#include "problems/TokenBucket.h"
#include "support/ProcStats.h"
#include "sync/Counters.h"

#include <cstdint>

namespace autosynch::bench {

/// Measurements of one driver run.
struct RunMetrics {
  double Seconds = 0.0;
  /// OS context-switch delta (zero on kernels that do not report them).
  ContextSwitches OsCtx;
  /// Sync-layer event deltas (awaits, signals, signalAlls, wakeups).
  sync::CountersSnapshot Sync;
};

/// Fig. 8: \p Producers producers and \p Consumers consumers moving
/// \p TotalOps items (unit batches) through \p B.
RunMetrics runBoundedBuffer(BoundedBufferIface &B, int Producers,
                            int Consumers, int64_t TotalOps);

/// Figs. 14-15: one producer, \p Consumers consumers, random batches of
/// 1..MaxBatch items, \p TotalItems items in total (demand precomputed so
/// supply exactly covers it).
RunMetrics runParamBoundedBuffer(ParamBoundedBufferIface &B, int Consumers,
                                 int64_t TotalItems, int64_t MaxBatch,
                                 uint64_t Seed);

/// Fig. 9: one oxygen thread, \p HThreads hydrogen threads, \p Molecules
/// molecules in total.
RunMetrics runH2O(H2OIface &W, int HThreads, int64_t Molecules);

/// Fig. 10: one barber, \p Customers customer threads, \p TotalCuts
/// haircuts in total (customers retry when they balk).
RunMetrics runSleepingBarber(SleepingBarberIface &S, int Customers,
                             int64_t TotalCuts);

/// Fig. 11 / Table 1: \p Threads participants, \p TotalOps accesses in
/// round-robin order (rounded down to a whole number of cycles).
RunMetrics runRoundRobin(RoundRobinIface &RR, int Threads,
                         int64_t TotalOps);

/// Fig. 12: \p Writers writer and \p Readers reader threads, \p TotalOps
/// operations split proportionally.
RunMetrics runReadersWriters(ReadersWritersIface &RW, int Writers,
                             int Readers, int64_t TotalOps);

/// Fig. 13: \p Philosophers threads, \p TotalMeals meals in total.
RunMetrics runDiningPhilosophers(DiningPhilosophersIface &D,
                                 int Philosophers, int64_t TotalMeals);

/// Extension: \p B's full party count of threads crossing the barrier
/// \p Generations times each.
RunMetrics runCyclicBarrier(CyclicBarrierIface &B, int64_t Generations);

/// Extension: one Santa, \p ReindeerThreads + \p ElfThreads arrival
/// threads pulling from shared quotas sized for \p Deliveries toy runs and
/// \p Consultations elf meetings.
RunMetrics runSantaClaus(SantaClausIface &S, int ReindeerThreads,
                         int ElfThreads, int64_t Deliveries,
                         int64_t Consultations);

/// Extension (deadline runtime): \p Threads workers performing
/// \p TotalOps acquire/release cycles against \p L; every \p TimedEvery
/// -th acquire uses \p TimeoutNs and retries on expiry (expiries counted
/// in the lease manager's own stats), the rest are unbounded.
RunMetrics runLeaseManager(LeaseManagerIface &L, int Threads,
                           int64_t TotalOps, int TimedEvery,
                           uint64_t TimeoutNs);

/// Extension (deadline runtime): \p Consumers demand seeded batches from
/// \p B (unbounded acquires, \p TotalItems items in total) against one
/// refiller supplying exactly the excess over the initial fill without
/// ever overflowing the bucket.
RunMetrics runTokenBucket(TokenBucketIface &B, int Consumers,
                          int64_t Capacity, int64_t TotalItems,
                          uint64_t Seed);

} // namespace autosynch::bench

#endif // AUTOSYNCH_BENCH_SUPPORT_DRIVERS_H

//===- bench_support/Drivers.cpp - Saturation workload drivers -------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "bench_support/Drivers.h"

#include "support/Check.h"
#include "support/Rng.h"
#include "support/Stats.h"

#include <atomic>
#include <barrier>
#include <memory>
#include <functional>
#include <thread>
#include <vector>

using namespace autosynch;
using namespace autosynch::bench;

namespace {

/// Runs every work item on its own thread, released together; measures the
/// span from release to the last completion, plus counter deltas.
RunMetrics measure(std::vector<std::function<void()>> Work) {
  std::barrier Start(static_cast<ptrdiff_t>(Work.size() + 1));
  std::vector<std::thread> Pool;
  Pool.reserve(Work.size());
  for (auto &Fn : Work) {
    Pool.emplace_back([&Start, &Fn] {
      Start.arrive_and_wait();
      Fn();
    });
  }

  ContextSwitches Ctx0 = readContextSwitches();
  sync::CountersSnapshot Sync0 = sync::Counters::global().snapshot();
  Start.arrive_and_wait();
  Stopwatch Watch;
  for (auto &T : Pool)
    T.join();

  RunMetrics M;
  M.Seconds = Watch.seconds();
  M.OsCtx = readContextSwitches() - Ctx0;
  M.Sync = sync::Counters::global().snapshot() - Sync0;
  return M;
}

/// Splits \p Total into \p Parts near-equal shares.
std::vector<int64_t> split(int64_t Total, int Parts) {
  std::vector<int64_t> Shares(Parts, Total / Parts);
  for (int64_t I = 0; I != Total % Parts; ++I)
    ++Shares[I];
  return Shares;
}

} // namespace

RunMetrics bench::runBoundedBuffer(BoundedBufferIface &B, int Producers,
                                   int Consumers, int64_t TotalOps) {
  AUTOSYNCH_CHECK(Producers > 0 && Consumers > 0,
                  "bounded buffer needs producers and consumers");
  std::vector<int64_t> Puts = split(TotalOps, Producers);
  std::vector<int64_t> Takes = split(TotalOps, Consumers);

  std::vector<std::function<void()>> Work;
  for (int P = 0; P != Producers; ++P) {
    Work.push_back([&B, N = Puts[P]] {
      for (int64_t I = 0; I != N; ++I)
        B.put(I);
    });
  }
  for (int C = 0; C != Consumers; ++C) {
    Work.push_back([&B, N = Takes[C]] {
      for (int64_t I = 0; I != N; ++I)
        B.take();
    });
  }
  return measure(std::move(Work));
}

RunMetrics bench::runParamBoundedBuffer(ParamBoundedBufferIface &B,
                                        int Consumers, int64_t TotalItems,
                                        int64_t MaxBatch, uint64_t Seed) {
  AUTOSYNCH_CHECK(Consumers > 0, "needs at least one consumer");
  AUTOSYNCH_CHECK(MaxBatch >= 1, "batch bound must be positive");

  // Precompute each consumer's batch sequence so producer supply exactly
  // covers total demand (avoids an artificial tail deadlock; see the
  // module header).
  std::vector<std::vector<int64_t>> Batches(Consumers);
  std::vector<int64_t> Demand = split(TotalItems, Consumers);
  for (int C = 0; C != Consumers; ++C) {
    Rng R(Seed + C);
    int64_t Left = Demand[C];
    while (Left > 0) {
      int64_t N = std::min<int64_t>(Left, R.range(1, MaxBatch));
      Batches[C].push_back(N);
      Left -= N;
    }
  }

  std::vector<std::function<void()>> Work;
  // The single producer (the paper's Fig. 14 setup).
  Work.push_back([&B, TotalItems, MaxBatch, Seed] {
    Rng R(Seed ^ 0x9e3779b97f4a7c15ULL);
    int64_t Left = TotalItems;
    while (Left > 0) {
      int64_t N = std::min<int64_t>(Left, R.range(1, MaxBatch));
      B.put(N);
      Left -= N;
    }
  });
  for (int C = 0; C != Consumers; ++C) {
    Work.push_back([&B, &Seq = Batches[C]] {
      for (int64_t N : Seq)
        B.take(N);
    });
  }
  return measure(std::move(Work));
}

RunMetrics bench::runH2O(H2OIface &W, int HThreads, int64_t Molecules) {
  AUTOSYNCH_CHECK(HThreads > 1, "needs >= 2 hydrogen threads");

  // Hydrogen threads pull operations from a shared counter instead of
  // owning fixed quotas. With per-thread quotas, a single lagging thread
  // can own the final two hydrogen arrivals — and since an oxygen needs
  // two *concurrently available* hydrogens, no schedule could finish. The
  // shared counter guarantees a free hydrogen thread can always supply the
  // next arrival.
  auto Remaining = std::make_shared<std::atomic<int64_t>>(2 * Molecules);

  std::vector<std::function<void()>> Work;
  Work.push_back([&W, Molecules] { // The single oxygen thread (§6.4).
    for (int64_t I = 0; I != Molecules; ++I)
      W.oxygen();
  });
  for (int T = 0; T != HThreads; ++T) {
    Work.push_back([&W, Remaining] {
      while (Remaining->fetch_sub(1, std::memory_order_relaxed) > 0)
        W.hydrogen();
    });
  }
  return measure(std::move(Work));
}

RunMetrics bench::runSleepingBarber(SleepingBarberIface &S, int Customers,
                                    int64_t TotalCuts) {
  AUTOSYNCH_CHECK(Customers > 0, "needs customers");
  std::vector<int64_t> Cuts = split(TotalCuts, Customers);

  std::vector<std::function<void()>> Work;
  Work.push_back([&S, TotalCuts] { // The barber.
    for (int64_t I = 0; I != TotalCuts; ++I)
      S.cutHair();
  });
  for (int C = 0; C != Customers; ++C) {
    Work.push_back([&S, N = Cuts[C]] {
      for (int64_t Done = 0; Done != N;) {
        if (S.getHaircut())
          ++Done;
        else
          std::this_thread::yield(); // Full shop: retry.
      }
    });
  }
  return measure(std::move(Work));
}

RunMetrics bench::runRoundRobin(RoundRobinIface &RR, int Threads,
                                int64_t TotalOps) {
  AUTOSYNCH_CHECK(Threads > 0, "needs threads");
  // Strict turn order requires whole cycles.
  int64_t PerThread = std::max<int64_t>(1, TotalOps / Threads);

  std::vector<std::function<void()>> Work;
  for (int T = 0; T != Threads; ++T) {
    Work.push_back([&RR, T, PerThread] {
      for (int64_t I = 0; I != PerThread; ++I)
        RR.access(T);
    });
  }
  return measure(std::move(Work));
}

RunMetrics bench::runReadersWriters(ReadersWritersIface &RW, int Writers,
                                    int Readers, int64_t TotalOps) {
  AUTOSYNCH_CHECK(Writers > 0 && Readers > 0, "needs writers and readers");
  std::vector<int64_t> Ops = split(TotalOps, Writers + Readers);

  std::vector<std::function<void()>> Work;
  for (int W = 0; W != Writers; ++W) {
    Work.push_back([&RW, N = Ops[W]] {
      for (int64_t I = 0; I != N; ++I) {
        RW.startWrite();
        RW.endWrite();
      }
    });
  }
  for (int R = 0; R != Readers; ++R) {
    Work.push_back([&RW, N = Ops[Writers + R]] {
      for (int64_t I = 0; I != N; ++I) {
        RW.startRead();
        RW.endRead();
      }
    });
  }
  return measure(std::move(Work));
}

RunMetrics bench::runCyclicBarrier(CyclicBarrierIface &B,
                                   int64_t Generations) {
  AUTOSYNCH_CHECK(Generations > 0, "needs generations");
  int64_t Parties = B.parties();

  std::vector<std::function<void()>> Work;
  for (int64_t P = 0; P != Parties; ++P) {
    Work.push_back([&B, Generations] {
      for (int64_t G = 0; G != Generations; ++G)
        B.await();
    });
  }
  return measure(std::move(Work));
}

RunMetrics bench::runSantaClaus(SantaClausIface &S, int ReindeerThreads,
                                int ElfThreads, int64_t Deliveries,
                                int64_t Consultations) {
  // A group forms only from concurrently blocked arrivals, so the thread
  // pools must cover one full group each; arrivals are pulled from shared
  // counters (see runH2O) so a lagging thread cannot strand the last group.
  AUTOSYNCH_CHECK(ReindeerThreads >= S.reindeerTeam(),
                  "need at least one reindeer team of threads");
  AUTOSYNCH_CHECK(ElfThreads >= S.elfGroup(),
                  "need at least one elf group of threads");
  auto ReindeerLeft =
      std::make_shared<std::atomic<int64_t>>(S.reindeerTeam() * Deliveries);
  auto ElvesLeft =
      std::make_shared<std::atomic<int64_t>>(S.elfGroup() * Consultations);

  std::vector<std::function<void()>> Work;
  Work.push_back([&S, Deliveries, Consultations] { // Santa.
    for (int64_t I = 0; I != Deliveries + Consultations; ++I)
      S.santa();
  });
  for (int T = 0; T != ReindeerThreads; ++T) {
    Work.push_back([&S, ReindeerLeft] {
      while (ReindeerLeft->fetch_sub(1, std::memory_order_relaxed) > 0)
        S.reindeer();
    });
  }
  for (int T = 0; T != ElfThreads; ++T) {
    Work.push_back([&S, ElvesLeft] {
      while (ElvesLeft->fetch_sub(1, std::memory_order_relaxed) > 0)
        S.elf();
    });
  }
  return measure(std::move(Work));
}

RunMetrics bench::runDiningPhilosophers(DiningPhilosophersIface &D,
                                        int Philosophers,
                                        int64_t TotalMeals) {
  AUTOSYNCH_CHECK(Philosophers >= 2, "needs >= 2 philosophers");
  std::vector<int64_t> Meals = split(TotalMeals, Philosophers);

  std::vector<std::function<void()>> Work;
  for (int P = 0; P != Philosophers; ++P) {
    Work.push_back([&D, P, N = Meals[P]] {
      for (int64_t I = 0; I != N; ++I) {
        D.pickUp(P);
        D.putDown(P);
      }
    });
  }
  return measure(std::move(Work));
}

RunMetrics bench::runLeaseManager(LeaseManagerIface &L, int Threads,
                                  int64_t TotalOps, int TimedEvery,
                                  uint64_t TimeoutNs) {
  std::vector<int64_t> Shares = split(TotalOps, Threads);
  std::vector<std::function<void()>> Work;
  for (int T = 0; T != Threads; ++T) {
    int64_t Ops = Shares[T];
    Work.push_back([&L, Ops, TimedEvery, TimeoutNs] {
      for (int64_t I = 0; I != Ops; ++I) {
        if (TimedEvery > 0 && I % TimedEvery == 0) {
          while (!L.acquire(TimeoutNs)) {
            // Expiry counted by the lease manager; retry keeps the
            // per-thread op quota exact.
          }
        } else {
          L.acquire(~uint64_t{0});
        }
        L.release();
      }
    });
  }
  return measure(std::move(Work));
}

RunMetrics bench::runTokenBucket(TokenBucketIface &B, int Consumers,
                                 int64_t Capacity, int64_t TotalItems,
                                 uint64_t Seed) {
  // Precompute seeded demand scripts whose sum is exactly TotalItems.
  std::vector<std::vector<int64_t>> Demands(Consumers);
  Rng R(Seed);
  int64_t Left = TotalItems;
  for (int C = 0; Left > 0; C = (C + 1) % Consumers) {
    int64_t N = std::min<int64_t>(Left, R.range(1, Capacity));
    Demands[C].push_back(N);
    Left -= N;
  }

  std::vector<std::function<void()>> Work;
  for (int C = 0; C != Consumers; ++C) {
    const std::vector<int64_t> &Script = Demands[C];
    Work.push_back([&B, &Script] {
      for (int64_t N : Script)
        B.acquire(N, ~uint64_t{0});
    });
  }
  // The refiller supplies exactly the excess over the initial (full)
  // bucket, checking headroom first: it is the only token source, so an
  // observed fit cannot be invalidated by the time the refill lands.
  Work.push_back([&B, Capacity, TotalItems, Seed] {
    Rng RR(Seed ^ 0x9e3779b97f4a7c15ULL);
    int64_t Budget = TotalItems - Capacity;
    while (Budget > 0) {
      int64_t N = std::min<int64_t>(Budget, RR.range(1, 6));
      if (B.tokens() > Capacity - N) {
        std::this_thread::yield();
        continue;
      }
      B.refill(N);
      Budget -= N;
    }
  });
  return measure(std::move(Work));
}

//===- problems/Mechanism.h - The four signaling mechanisms ----*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four signaling mechanisms compared throughout the paper's
/// evaluation (§6.2). Every synchronization problem in this directory has
/// one implementation per applicable mechanism, created through a factory
/// taking a Mechanism value.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_MECHANISM_H
#define AUTOSYNCH_PROBLEMS_MECHANISM_H

#include "core/MonitorConfig.h"

namespace autosynch {

/// Which signaling mechanism implements a problem (paper §6.2).
enum class Mechanism : uint8_t {
  Explicit,   ///< Hand-written Lock/Condition code with explicit signals.
  Baseline,   ///< Automatic; one condition variable + signalAll.
  AutoSynchT, ///< AutoSynch without predicate tagging (linear relay scan).
  AutoSynch   ///< Full AutoSynch (relay invariance + predicate tagging).
};

/// Returns "explicit", "baseline", "AutoSynch-T", or "AutoSynch".
const char *mechanismName(Mechanism M);

/// Whether \p M uses the automatic-signal Monitor (everything but
/// Explicit).
inline bool isAutomatic(Mechanism M) { return M != Mechanism::Explicit; }

/// Monitor configuration matching \p M. Fatal error for Explicit (it has
/// no automatic monitor). The relay filter comes from defaultRelayFilter().
MonitorConfig configFor(Mechanism M,
                        sync::Backend Backend = sync::Backend::Std);

/// Process-wide default RelayFilter applied by configFor(). The problem
/// factories take only (Mechanism, Backend), so sweeps over the relay
/// filter (workbench --relay-filter, benches, ablation tests) set this
/// before instantiating monitors instead of re-plumbing every factory.
/// Defaults to RelayFilter::DirtySet.
RelayFilter defaultRelayFilter();
void setDefaultRelayFilter(RelayFilter F);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_MECHANISM_H

//===- problems/BoundedBuffer.h - Classic bounded buffer -------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The traditional bounded-buffer (producer/consumer) problem, Fig. 8 of
/// the paper: producers block while the buffer is full, consumers while it
/// is empty. Single-item operations; the predicates are shared-only
/// (`count < capacity`, `count > 0`), which is the paper's first problem
/// class (§6.3.1).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_BOUNDEDBUFFER_H
#define AUTOSYNCH_PROBLEMS_BOUNDEDBUFFER_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

/// Single-item bounded buffer.
class BoundedBufferIface {
public:
  virtual ~BoundedBufferIface() = default;

  /// Blocks until there is space, then deposits \p Item.
  virtual void put(int64_t Item) = 0;

  /// Blocks until there is an item, then removes and returns it.
  virtual int64_t take() = 0;

  /// Bounded put: deposits \p Item and returns true, or returns false
  /// once \p TimeoutNs (monotonic, relative) elapses with the buffer
  /// still full. The buffer is unchanged on false.
  virtual bool putFor(int64_t Item, uint64_t TimeoutNs) = 0;

  /// Bounded take: stores the removed item in \p Out and returns true, or
  /// returns false once \p TimeoutNs elapses with the buffer still empty.
  virtual bool takeFor(int64_t &Out, uint64_t TimeoutNs) = 0;

  /// Current number of buffered items (synchronized snapshot).
  virtual int64_t size() const = 0;
};

/// Creates the \p M implementation with space for \p Capacity items.
std::unique_ptr<BoundedBufferIface>
makeBoundedBuffer(Mechanism M, int64_t Capacity,
                  sync::Backend Backend = sync::Backend::Std);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_BOUNDEDBUFFER_H

//===- problems/RoundRobin.cpp - Round-robin access pattern -----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "problems/RoundRobin.h"

#include "core/Monitor.h"
#include "support/Check.h"
#include "sync/Mutex.h"

#include <vector>

using namespace autosynch;

namespace {

/// Explicit signaling with "an array of condition variables ... for
/// associating the id of each thread and its condition variable" (§6.4):
/// the leaving thread signals exactly the next thread's condition, the
/// explicit mechanism's best case.
class ExplicitRoundRobin final : public RoundRobinIface {
public:
  ExplicitRoundRobin(int64_t NumThreads, sync::Backend Backend)
      : Mutex(Backend), NumThreads(NumThreads) {
    Turns.reserve(NumThreads);
    for (int64_t I = 0; I != NumThreads; ++I)
      Turns.push_back(Mutex.newCondition());
  }

  void access(int64_t MyId) override {
    Mutex.lock();
    while (Turn != MyId)
      Turns[MyId]->await();
    Turn = (Turn + 1) % NumThreads;
    ++Accesses;
    Turns[Turn]->signal();
    Mutex.unlock();
  }

  int64_t accesses() const override {
    Mutex.lock();
    int64_t N = Accesses;
    Mutex.unlock();
    return N;
  }

private:
  mutable sync::Mutex Mutex;
  std::vector<std::unique_ptr<sync::Condition>> Turns;
  const int64_t NumThreads;
  int64_t Turn = 0;
  int64_t Accesses = 0;
};

class AutoRoundRobin final : public RoundRobinIface, private Monitor {
public:
  AutoRoundRobin(int64_t NumThreads, const MonitorConfig &Cfg)
      : Monitor(Cfg), NumThreads(NumThreads) {}

  void access(int64_t MyId) override {
    Region R(*this);
    // Globalized complex predicate: `turn == <myId>`. N distinct
    // equivalence predicates over the shared expression `turn`.
    waitUntil(Turn == MyId);
    Turn = (Turn.get() + 1) % NumThreads;
    Accesses += 1;
  }

  int64_t accesses() const override {
    return const_cast<AutoRoundRobin *>(this)->synchronized(
        [this] { return Accesses.get(); });
  }

  ConditionManager *manager() override { return &conditionManager(); }

private:
  Shared<int64_t> Turn{*this, "turn", 0};
  Shared<int64_t> Accesses{*this, "accesses", 0};
  const int64_t NumThreads;
};

} // namespace

std::unique_ptr<RoundRobinIface>
autosynch::makeRoundRobin(Mechanism M, int64_t NumThreads,
                          sync::Backend Backend, bool EnablePhaseTimers) {
  AUTOSYNCH_CHECK(NumThreads > 0, "round robin requires >= 1 thread");
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitRoundRobin>(NumThreads, Backend);
  MonitorConfig Cfg = configFor(M, Backend);
  Cfg.EnablePhaseTimers = EnablePhaseTimers;
  return std::make_unique<AutoRoundRobin>(NumThreads, Cfg);
}

//===- problems/LeaseManager.cpp - Bounded-hold lease pool -----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "problems/LeaseManager.h"

#include "core/Monitor.h"
#include "support/Check.h"
#include "sync/Mutex.h"
#include "time/Deadline.h"

#include <chrono>

using namespace autosynch;

namespace {

/// Hand-written explicit-signal implementation: one condition, deadline
/// loop with the epoch handshake (sync/Mutex.h) so a release signaled
/// between the last check and the block is never lost.
class ExplicitLeaseManager final : public LeaseManagerIface {
public:
  ExplicitLeaseManager(int64_t Leases, sync::Backend Backend)
      : Mutex(Backend), Freed(Mutex.newCondition()), Free(Leases) {}

  bool acquire(uint64_t TimeoutNs) override {
    uint64_t Deadline = time::deadlineAfter(time::nowNs(), TimeoutNs);
    Mutex.lock();
    while (Free == 0) {
      uint64_t Epoch = Freed->epoch();
      if (Deadline != time::NeverNs && time::nowNs() >= Deadline) {
        ++Timeouts;
        Mutex.unlock();
        return false;
      }
      Freed->awaitUntil(Deadline, Epoch);
    }
    --Free;
    ++Grants;
    Mutex.unlock();
    return true;
  }

  void release() override {
    Mutex.lock();
    ++Free;
    Freed->signal();
    Mutex.unlock();
  }

  int64_t available() const override {
    Mutex.lock();
    int64_t F = Free;
    Mutex.unlock();
    return F;
  }

  int64_t grants() const override {
    Mutex.lock();
    int64_t G = Grants;
    Mutex.unlock();
    return G;
  }

  int64_t timeouts() const override {
    Mutex.lock();
    int64_t T = Timeouts;
    Mutex.unlock();
    return T;
  }

private:
  mutable sync::Mutex Mutex;
  std::unique_ptr<sync::Condition> Freed;
  int64_t Free;
  int64_t Grants = 0;
  int64_t Timeouts = 0;
};

/// Automatic-signal implementation: one timed waituntil, no conditions,
/// no signals. The bound rides the deadline runtime (timer wheel +
/// bounded block); the shared predicate `free > 0` is eagerly registered
/// like the paper's Fig. 5 constructors.
class AutoLeaseManager final : public LeaseManagerIface, private Monitor {
public:
  AutoLeaseManager(int64_t Leases, const MonitorConfig &Cfg)
      : Monitor(Cfg), LeaseCount(Leases) {
    registerPredicate("free > 0");
  }

  bool acquire(uint64_t TimeoutNs) override {
    Region R(*this);
    if (!waitUntilFor(Free > lit(0), time::toTimeout(TimeoutNs))) {
      ++Timeouts;
      return false;
    }
    Free -= 1;
    ++Grants;
    return true;
  }

  void release() override {
    Region R(*this);
    Free += 1;
  }

  int64_t available() const override {
    auto *Self = const_cast<AutoLeaseManager *>(this);
    return Self->synchronized([Self] { return Self->Free.get(); });
  }

  int64_t grants() const override {
    auto *Self = const_cast<AutoLeaseManager *>(this);
    return Self->synchronized([Self] { return Self->Grants; });
  }

  int64_t timeouts() const override {
    auto *Self = const_cast<AutoLeaseManager *>(this);
    return Self->synchronized([Self] { return Self->Timeouts; });
  }

private:
  // Declared before Free so the Shared slot's initial value is ready.
  int64_t LeaseCount;
  Shared<int64_t> Free{*this, "free", LeaseCount};
  // Plain counters: mutated inside regions only; deliberately not Shared
  // so bookkeeping writes never dirty the relay set.
  int64_t Grants = 0;
  int64_t Timeouts = 0;
};

} // namespace

std::unique_ptr<LeaseManagerIface>
autosynch::makeLeaseManager(Mechanism M, int64_t Leases,
                            sync::Backend Backend) {
  AUTOSYNCH_CHECK(Leases > 0, "lease manager requires at least one lease");
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitLeaseManager>(Leases, Backend);
  return std::make_unique<AutoLeaseManager>(Leases, configFor(M, Backend));
}

//===- problems/SantaClaus.cpp - The Santa Claus problem --------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Protocol (pass counters, like H2O): arrivals increment a waiting count;
// Santa waits for a full group, converts the group's waiting count into
// passes, and each blocked arrival leaves by consuming one pass. Reindeer
// priority lives in santa()'s group choice, not in the predicates.
//
//===----------------------------------------------------------------------===//

#include "problems/SantaClaus.h"

#include "core/Monitor.h"
#include "support/Check.h"
#include "sync/Mutex.h"

using namespace autosynch;

namespace {

class ExplicitSantaClaus final : public SantaClausIface {
public:
  ExplicitSantaClaus(int64_t ReindeerTeam, int64_t ElfGroup,
                     sync::Backend Backend)
      : Mutex(Backend), GroupReady(Mutex.newCondition()),
        RPassAvailable(Mutex.newCondition()),
        EPassAvailable(Mutex.newCondition()), ReindeerTeam(ReindeerTeam),
        ElfGroup(ElfGroup) {}

  void reindeer() override {
    Mutex.lock();
    ++RWaiting;
    if (RWaiting >= ReindeerTeam)
      GroupReady->signal();
    while (RPasses == 0)
      RPassAvailable->await();
    --RPasses;
    Mutex.unlock();
  }

  void elf() override {
    Mutex.lock();
    ++EWaiting;
    if (EWaiting >= ElfGroup)
      GroupReady->signal();
    while (EPasses == 0)
      EPassAvailable->await();
    --EPasses;
    Mutex.unlock();
  }

  SantaService santa() override {
    Mutex.lock();
    while (RWaiting < ReindeerTeam && EWaiting < ElfGroup)
      GroupReady->await();
    SantaService Served;
    if (RWaiting >= ReindeerTeam) { // Reindeer priority.
      RWaiting -= ReindeerTeam;
      RPasses += ReindeerTeam;
      ++Deliveries;
      for (int64_t I = 0; I != ReindeerTeam; ++I)
        RPassAvailable->signal();
      Served = SantaService::Toys;
    } else {
      EWaiting -= ElfGroup;
      EPasses += ElfGroup;
      ++Consultations;
      for (int64_t I = 0; I != ElfGroup; ++I)
        EPassAvailable->signal();
      Served = SantaService::Consult;
    }
    Mutex.unlock();
    return Served;
  }

  int64_t deliveries() const override {
    Mutex.lock();
    int64_t N = Deliveries;
    Mutex.unlock();
    return N;
  }

  int64_t consultations() const override {
    Mutex.lock();
    int64_t N = Consultations;
    Mutex.unlock();
    return N;
  }

  int64_t reindeerWaiting() const override {
    Mutex.lock();
    int64_t N = RWaiting;
    Mutex.unlock();
    return N;
  }

  int64_t elvesWaiting() const override {
    Mutex.lock();
    int64_t N = EWaiting;
    Mutex.unlock();
    return N;
  }

  int64_t reindeerTeam() const override { return ReindeerTeam; }
  int64_t elfGroup() const override { return ElfGroup; }

private:
  mutable sync::Mutex Mutex;
  std::unique_ptr<sync::Condition> GroupReady;
  std::unique_ptr<sync::Condition> RPassAvailable;
  std::unique_ptr<sync::Condition> EPassAvailable;
  const int64_t ReindeerTeam;
  const int64_t ElfGroup;
  int64_t RWaiting = 0;
  int64_t EWaiting = 0;
  int64_t RPasses = 0;
  int64_t EPasses = 0;
  int64_t Deliveries = 0;
  int64_t Consultations = 0;
};

class AutoSantaClaus final : public SantaClausIface, private Monitor {
public:
  AutoSantaClaus(int64_t ReindeerTeam, int64_t ElfGroup,
                 const MonitorConfig &Cfg)
      : Monitor(Cfg), ReindeerTeam(ReindeerTeam), ElfGroup(ElfGroup) {}

  void reindeer() override {
    Region R(*this);
    RWaiting += 1;
    waitUntil(RPasses > 0);
    RPasses -= 1;
  }

  void elf() override {
    Region R(*this);
    EWaiting += 1;
    waitUntil(EPasses > 0);
    EPasses -= 1;
  }

  SantaService santa() override {
    Region R(*this);
    waitUntil(RWaiting >= ReindeerTeam || EWaiting >= ElfGroup);
    if (RWaiting.get() >= ReindeerTeam) { // Reindeer priority.
      RWaiting -= ReindeerTeam;
      RPasses += ReindeerTeam;
      Deliveries += 1;
      return SantaService::Toys;
    }
    EWaiting -= ElfGroup;
    EPasses += ElfGroup;
    Consultations += 1;
    return SantaService::Consult;
  }

  int64_t deliveries() const override {
    return const_cast<AutoSantaClaus *>(this)->synchronized(
        [this] { return Deliveries.get(); });
  }

  int64_t consultations() const override {
    return const_cast<AutoSantaClaus *>(this)->synchronized(
        [this] { return Consultations.get(); });
  }

  int64_t reindeerWaiting() const override {
    return const_cast<AutoSantaClaus *>(this)->synchronized(
        [this] { return RWaiting.get(); });
  }

  int64_t elvesWaiting() const override {
    return const_cast<AutoSantaClaus *>(this)->synchronized(
        [this] { return EWaiting.get(); });
  }

  int64_t reindeerTeam() const override { return ReindeerTeam; }
  int64_t elfGroup() const override { return ElfGroup; }

private:
  Shared<int64_t> RWaiting{*this, "rWaiting", 0};
  Shared<int64_t> EWaiting{*this, "eWaiting", 0};
  Shared<int64_t> RPasses{*this, "rPasses", 0};
  Shared<int64_t> EPasses{*this, "ePasses", 0};
  Shared<int64_t> Deliveries{*this, "deliveries", 0};
  Shared<int64_t> Consultations{*this, "consultations", 0};
  const int64_t ReindeerTeam;
  const int64_t ElfGroup;
};

} // namespace

std::unique_ptr<SantaClausIface>
autosynch::makeSantaClaus(Mechanism M, int64_t ReindeerTeam,
                          int64_t ElfGroup, sync::Backend Backend) {
  AUTOSYNCH_CHECK(ReindeerTeam > 0 && ElfGroup > 0,
                  "santa claus requires positive group sizes");
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitSantaClaus>(ReindeerTeam, ElfGroup,
                                                Backend);
  return std::make_unique<AutoSantaClaus>(ReindeerTeam, ElfGroup,
                                          configFor(M, Backend));
}

//===- problems/ParamBoundedBuffer.cpp - Parameterized buffer --------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "problems/ParamBoundedBuffer.h"

#include "core/Monitor.h"
#include "support/Check.h"
#include "sync/Mutex.h"

using namespace autosynch;

namespace {

/// The paper's Fig. 1 explicit-signal Java class, in C++. Waiters need
/// different item counts, so the signaler cannot know whom to wake:
/// signalAll on both conditions is forced (§3).
class ExplicitParamBoundedBuffer final : public ParamBoundedBufferIface {
public:
  ExplicitParamBoundedBuffer(int64_t Capacity, sync::Backend Backend)
      : Mutex(Backend), InsufficientSpace(Mutex.newCondition()),
        InsufficientItems(Mutex.newCondition()), Capacity(Capacity) {}

  void put(int64_t NumItems) override {
    Mutex.lock();
    while (Count + NumItems > Capacity)
      InsufficientSpace->await();
    Count += NumItems;
    InsufficientItems->signalAll();
    Mutex.unlock();
  }

  void take(int64_t NumItems) override {
    Mutex.lock();
    while (Count < NumItems)
      InsufficientItems->await();
    Count -= NumItems;
    InsufficientSpace->signalAll();
    Mutex.unlock();
  }

  int64_t size() const override {
    Mutex.lock();
    int64_t S = Count;
    Mutex.unlock();
    return S;
  }

private:
  mutable sync::Mutex Mutex;
  std::unique_ptr<sync::Condition> InsufficientSpace;
  std::unique_ptr<sync::Condition> InsufficientItems;
  const int64_t Capacity;
  int64_t Count = 0;
};

/// The paper's Fig. 1 automatic-signal class. Each call bakes its batch
/// size into the predicate (the EDSL analogue of globalization), producing
/// per-threshold predicates the tag heaps discriminate between.
class AutoParamBoundedBuffer final : public ParamBoundedBufferIface,
                                     private Monitor {
public:
  AutoParamBoundedBuffer(int64_t Capacity, const MonitorConfig &Cfg)
      : Monitor(Cfg), Capacity(Capacity) {}

  void put(int64_t NumItems) override {
    Region R(*this);
    waitUntil(Count + NumItems <= Capacity);
    Count += NumItems;
  }

  void take(int64_t NumItems) override {
    Region R(*this);
    waitUntil(Count >= NumItems);
    Count -= NumItems;
  }

  int64_t size() const override {
    return const_cast<AutoParamBoundedBuffer *>(this)->synchronized(
        [this] { return Count.get(); });
  }

private:
  Shared<int64_t> Count{*this, "count", 0};
  const int64_t Capacity;
};

} // namespace

std::unique_ptr<ParamBoundedBufferIface>
autosynch::makeParamBoundedBuffer(Mechanism M, int64_t Capacity,
                                  sync::Backend Backend) {
  AUTOSYNCH_CHECK(Capacity > 0,
                  "parameterized bounded buffer requires capacity >= 1");
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitParamBoundedBuffer>(Capacity, Backend);
  return std::make_unique<AutoParamBoundedBuffer>(Capacity,
                                                  configFor(M, Backend));
}

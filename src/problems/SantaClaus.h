//===- problems/SantaClaus.h - The Santa Claus problem ---------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trono's Santa Claus problem: Santa sleeps until either a full team of
/// reindeer (classically 9) has returned — then he delivers toys — or a
/// group of elves (classically 3) is stuck — then he consults them.
/// Reindeer have priority. Santa's waiting predicate is a *disjunction* of
/// two thresholds (`rWaiting >= R || eWaiting >= E`), exercising the DNF
/// path with multiple disjuncts; reindeer and elves block on shared-only
/// pass counters like H2O's hydrogens.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_SANTACLAUS_H
#define AUTOSYNCH_PROBLEMS_SANTACLAUS_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

/// What one santa() call serviced.
enum class SantaService : uint8_t {
  Toys,   ///< Harnessed a full reindeer team and delivered toys.
  Consult ///< Consulted a group of elves.
};

/// The Santa Claus rendezvous monitor.
class SantaClausIface {
public:
  virtual ~SantaClausIface() = default;

  /// A reindeer returns from vacation; blocks until its team has been
  /// harnessed and the delivery is under way.
  virtual void reindeer() = 0;

  /// An elf gets stuck; blocks until Santa has consulted its group.
  virtual void elf() = 0;

  /// Santa serves exactly one complete group, sleeping until one is
  /// available. Reindeer teams take priority over elf groups.
  virtual SantaService santa() = 0;

  /// Completed toy deliveries / consultations (synchronized snapshots).
  virtual int64_t deliveries() const = 0;
  virtual int64_t consultations() const = 0;

  /// Arrivals currently waiting to be served (synchronized snapshots;
  /// tests use these to know a group has formed without sleeping).
  virtual int64_t reindeerWaiting() const = 0;
  virtual int64_t elvesWaiting() const = 0;

  /// The configured group sizes.
  virtual int64_t reindeerTeam() const = 0;
  virtual int64_t elfGroup() const = 0;
};

/// Creates the \p M implementation with a reindeer team of \p ReindeerTeam
/// and elf groups of \p ElfGroup.
std::unique_ptr<SantaClausIface>
makeSantaClaus(Mechanism M, int64_t ReindeerTeam = 9, int64_t ElfGroup = 3,
               sync::Backend Backend = sync::Backend::Std);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_SANTACLAUS_H

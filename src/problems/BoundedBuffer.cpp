//===- problems/BoundedBuffer.cpp - Classic bounded buffer -----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "problems/BoundedBuffer.h"

#include "core/Monitor.h"
#include "support/Check.h"
#include "sync/Mutex.h"
#include "time/Deadline.h"

#include <chrono>
#include <vector>

using namespace autosynch;

namespace {

/// Hand-written explicit-signal implementation, the C++ rendering of the
/// paper's Fig. 1 Java class (single-item variant). Two condition
/// variables; `signal` suffices because all waiters on one condition wait
/// for the same single-item event.
class ExplicitBoundedBuffer final : public BoundedBufferIface {
public:
  ExplicitBoundedBuffer(int64_t Capacity, sync::Backend Backend)
      : Mutex(Backend), NotFull(Mutex.newCondition()),
        NotEmpty(Mutex.newCondition()), Buffer(Capacity) {}

  void put(int64_t Item) override {
    Mutex.lock();
    while (Count == static_cast<int64_t>(Buffer.size()))
      NotFull->await();
    Buffer[PutPtr] = Item;
    PutPtr = (PutPtr + 1) % static_cast<int64_t>(Buffer.size());
    ++Count;
    NotEmpty->signal();
    Mutex.unlock();
  }

  int64_t take() override {
    Mutex.lock();
    while (Count == 0)
      NotEmpty->await();
    int64_t Item = Buffer[TakePtr];
    TakePtr = (TakePtr + 1) % static_cast<int64_t>(Buffer.size());
    --Count;
    NotFull->signal();
    Mutex.unlock();
    return Item;
  }

  bool putFor(int64_t Item, uint64_t TimeoutNs) override {
    uint64_t Deadline = time::deadlineAfter(time::nowNs(), TimeoutNs);
    Mutex.lock();
    while (Count == static_cast<int64_t>(Buffer.size())) {
      uint64_t Epoch = NotFull->epoch();
      if (time::nowNs() >= Deadline) {
        Mutex.unlock();
        return false;
      }
      NotFull->awaitUntil(Deadline, Epoch);
    }
    Buffer[PutPtr] = Item;
    PutPtr = (PutPtr + 1) % static_cast<int64_t>(Buffer.size());
    ++Count;
    NotEmpty->signal();
    Mutex.unlock();
    return true;
  }

  bool takeFor(int64_t &Out, uint64_t TimeoutNs) override {
    uint64_t Deadline = time::deadlineAfter(time::nowNs(), TimeoutNs);
    Mutex.lock();
    while (Count == 0) {
      uint64_t Epoch = NotEmpty->epoch();
      if (time::nowNs() >= Deadline) {
        Mutex.unlock();
        return false;
      }
      NotEmpty->awaitUntil(Deadline, Epoch);
    }
    Out = Buffer[TakePtr];
    TakePtr = (TakePtr + 1) % static_cast<int64_t>(Buffer.size());
    --Count;
    NotFull->signal();
    Mutex.unlock();
    return true;
  }

  int64_t size() const override {
    Mutex.lock();
    int64_t S = Count;
    Mutex.unlock();
    return S;
  }

private:
  mutable sync::Mutex Mutex;
  std::unique_ptr<sync::Condition> NotFull;
  std::unique_ptr<sync::Condition> NotEmpty;
  std::vector<int64_t> Buffer;
  int64_t PutPtr = 0;
  int64_t TakePtr = 0;
  int64_t Count = 0;
};

/// Automatic-signal implementation: the paper's `AutoSynch class` — no
/// condition variables, no signals, just waituntil. One class serves the
/// Baseline / AutoSynch-T / AutoSynch mechanisms via the signal policy.
class AutoBoundedBuffer final : public BoundedBufferIface,
                                private Monitor {
public:
  AutoBoundedBuffer(int64_t Capacity, const MonitorConfig &Cfg)
      : Monitor(Cfg), Buffer(Capacity) {
    // Paper Fig. 5: static shared predicates can be registered eagerly.
    registerPredicate("count > 0");
    registerPredicate("count < " + std::to_string(Capacity));
  }

  void put(int64_t Item) override {
    Region R(*this);
    waitUntil(Count < static_cast<int64_t>(Buffer.size()));
    Buffer[PutPtr] = Item;
    PutPtr = (PutPtr + 1) % static_cast<int64_t>(Buffer.size());
    Count += 1;
  }

  int64_t take() override {
    Region R(*this);
    waitUntil(Count > 0);
    int64_t Item = Buffer[TakePtr];
    TakePtr = (TakePtr + 1) % static_cast<int64_t>(Buffer.size());
    Count -= 1;
    return Item;
  }

  bool putFor(int64_t Item, uint64_t TimeoutNs) override {
    Region R(*this);
    if (!waitUntilFor(Count < static_cast<int64_t>(Buffer.size()),
                      time::toTimeout(TimeoutNs)))
      return false;
    Buffer[PutPtr] = Item;
    PutPtr = (PutPtr + 1) % static_cast<int64_t>(Buffer.size());
    Count += 1;
    return true;
  }

  bool takeFor(int64_t &Out, uint64_t TimeoutNs) override {
    Region R(*this);
    if (!waitUntilFor(Count > 0, time::toTimeout(TimeoutNs)))
      return false;
    Out = Buffer[TakePtr];
    TakePtr = (TakePtr + 1) % static_cast<int64_t>(Buffer.size());
    Count -= 1;
    return true;
  }

  int64_t size() const override { return CountPeek(); }

private:
  int64_t CountPeek() const {
    // Quiescent-only peek for tests; bypasses the ownership check.
    return const_cast<AutoBoundedBuffer *>(this)->synchronized(
        [this] { return Count.get(); });
  }

  Shared<int64_t> Count{*this, "count", 0};
  std::vector<int64_t> Buffer;
  int64_t PutPtr = 0;
  int64_t TakePtr = 0;
};

} // namespace

std::unique_ptr<BoundedBufferIface>
autosynch::makeBoundedBuffer(Mechanism M, int64_t Capacity,
                             sync::Backend Backend) {
  AUTOSYNCH_CHECK(Capacity > 0, "bounded buffer requires capacity >= 1");
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitBoundedBuffer>(Capacity, Backend);
  return std::make_unique<AutoBoundedBuffer>(Capacity,
                                             configFor(M, Backend));
}

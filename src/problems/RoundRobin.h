//===- problems/RoundRobin.h - Round-robin access pattern ------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The round-robin access pattern (paper Fig. 11 and Table 1): N threads
/// take turns entering the monitor in id order. Each thread waits on the
/// complex predicate `turn == myId` — after globalization there are N
/// distinct equivalence predicates on the same shared expression, the
/// showcase for equivalence-tag hashing: AutoSynch finds the next thread in
/// O(1) while AutoSynch-T's relay scan degrades linearly with N.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_ROUNDROBIN_H
#define AUTOSYNCH_PROBLEMS_ROUNDROBIN_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

class ConditionManager;

/// Monitor accessed by N threads in strict round-robin order.
class RoundRobinIface {
public:
  virtual ~RoundRobinIface() = default;

  /// Blocks until it is \p MyId's turn, performs the (empty) critical
  /// section, and passes the turn to (MyId + 1) mod N.
  virtual void access(int64_t MyId) = 0;

  /// Total accesses performed (synchronized snapshot).
  virtual int64_t accesses() const = 0;

  /// The condition manager of automatic implementations (for the Table 1
  /// phase timers and signaling statistics); null for Explicit.
  virtual ConditionManager *manager() { return nullptr; }
};

/// Creates the \p M implementation for \p NumThreads participants. When
/// \p EnablePhaseTimers is set, automatic implementations record the
/// Table 1 phase breakdown (relaySignal / tag management).
std::unique_ptr<RoundRobinIface>
makeRoundRobin(Mechanism M, int64_t NumThreads,
               sync::Backend Backend = sync::Backend::Std,
               bool EnablePhaseTimers = false);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_ROUNDROBIN_H

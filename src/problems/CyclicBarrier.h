//===- problems/CyclicBarrier.h - FIFO cyclic barrier ----------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FIFO cyclic barrier: \p Parties threads block in await() until the
/// group is complete, then all advance together and the barrier resets for
/// the next generation. Arrival indices are handed out in monitor-entry
/// order (FIFO), so callers can observe their arrival rank within the
/// generation. The waiting predicate `generation > myGen` is a per-thread
/// threshold predicate after globalization — the threshold-heap workload,
/// complementing round-robin's equivalence predicates.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_CYCLICBARRIER_H
#define AUTOSYNCH_PROBLEMS_CYCLICBARRIER_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

/// Reusable barrier for a fixed party count.
class CyclicBarrierIface {
public:
  virtual ~CyclicBarrierIface() = default;

  /// Blocks until \p Parties threads have arrived, then all are released.
  /// Returns this thread's arrival index in the generation (0 for the
  /// first arrival, Parties-1 for the one that trips the barrier).
  virtual int64_t await() = 0;

  /// Completed generations (synchronized snapshot).
  virtual int64_t trips() const = 0;

  /// The configured party count.
  virtual int64_t parties() const = 0;
};

/// Creates the \p M implementation for \p Parties threads per generation.
std::unique_ptr<CyclicBarrierIface>
makeCyclicBarrier(Mechanism M, int64_t Parties,
                  sync::Backend Backend = sync::Backend::Std);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_CYCLICBARRIER_H

//===- problems/TokenBucket.cpp - Token-bucket rate limiter ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "problems/TokenBucket.h"

#include "core/Monitor.h"
#include "support/Check.h"
#include "sync/Mutex.h"
#include "time/Deadline.h"

#include <algorithm>
#include <chrono>

using namespace autosynch;

namespace {

/// Hand-written explicit-signal implementation. Waiters have
/// heterogeneous thresholds (each demands its own N), so a refill must
/// signalAll — the classic over-signaling the automatic mechanisms avoid
/// with threshold tags.
class ExplicitTokenBucket final : public TokenBucketIface {
public:
  ExplicitTokenBucket(int64_t Capacity, sync::Backend Backend)
      : Mutex(Backend), Refilled(Mutex.newCondition()), Capacity(Capacity),
        Tokens(Capacity) {}

  bool acquire(int64_t N, uint64_t TimeoutNs) override {
    AUTOSYNCH_CHECK(N >= 1 && N <= Capacity,
                    "token demand outside [1, capacity]");
    uint64_t Deadline = time::deadlineAfter(time::nowNs(), TimeoutNs);
    Mutex.lock();
    while (Tokens < N) {
      uint64_t Epoch = Refilled->epoch();
      if (Deadline != time::NeverNs && time::nowNs() >= Deadline) {
        ++Timeouts;
        Mutex.unlock();
        return false;
      }
      Refilled->awaitUntil(Deadline, Epoch);
    }
    Tokens -= N;
    ++Grants;
    Mutex.unlock();
    return true;
  }

  void refill(int64_t N) override {
    AUTOSYNCH_CHECK(N >= 0, "negative refill");
    Mutex.lock();
    Tokens = std::min(Capacity, Tokens + N);
    Refilled->signalAll();
    Mutex.unlock();
  }

  int64_t tokens() const override {
    Mutex.lock();
    int64_t T = Tokens;
    Mutex.unlock();
    return T;
  }

  int64_t grants() const override {
    Mutex.lock();
    int64_t G = Grants;
    Mutex.unlock();
    return G;
  }

  int64_t timeouts() const override {
    Mutex.lock();
    int64_t T = Timeouts;
    Mutex.unlock();
    return T;
  }

private:
  mutable sync::Mutex Mutex;
  std::unique_ptr<sync::Condition> Refilled;
  const int64_t Capacity;
  int64_t Tokens;
  int64_t Grants = 0;
  int64_t Timeouts = 0;
};

/// Automatic-signal implementation: the per-call demand is a *local* in a
/// parsed predicate, so timed waits run the full globalize-once slotted
/// plan path (threshold tags direct the relay; the deadline rides the
/// timer wheel).
class AutoTokenBucket final : public TokenBucketIface, private Monitor {
public:
  AutoTokenBucket(int64_t Capacity, const MonitorConfig &Cfg)
      : Monitor(Cfg), Capacity(Capacity), NVar(local("n")) {}

  bool acquire(int64_t N, uint64_t TimeoutNs) override {
    AUTOSYNCH_CHECK(N >= 1 && N <= Capacity,
                    "token demand outside [1, capacity]");
    Region R(*this);
    if (!waitUntilFor("tokens >= n", locals().bindInt(NVar, N),
                      time::toTimeout(TimeoutNs))) {
      ++Timeouts;
      return false;
    }
    Tokens -= N;
    ++Grants;
    return true;
  }

  void refill(int64_t N) override {
    AUTOSYNCH_CHECK(N >= 0, "negative refill");
    Region R(*this);
    Tokens = std::min<int64_t>(Capacity, Tokens.get() + N);
  }

  int64_t tokens() const override {
    auto *Self = const_cast<AutoTokenBucket *>(this);
    return Self->synchronized([Self] { return Self->Tokens.get(); });
  }

  int64_t grants() const override {
    auto *Self = const_cast<AutoTokenBucket *>(this);
    return Self->synchronized([Self] { return Self->Grants; });
  }

  int64_t timeouts() const override {
    auto *Self = const_cast<AutoTokenBucket *>(this);
    return Self->synchronized([Self] { return Self->Timeouts; });
  }

private:
  const int64_t Capacity;
  VarId NVar;
  Shared<int64_t> Tokens{*this, "tokens", Capacity};
  int64_t Grants = 0;
  int64_t Timeouts = 0;
};

} // namespace

std::unique_ptr<TokenBucketIface>
autosynch::makeTokenBucket(Mechanism M, int64_t Capacity,
                           sync::Backend Backend) {
  AUTOSYNCH_CHECK(Capacity > 0, "token bucket requires capacity >= 1");
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitTokenBucket>(Capacity, Backend);
  return std::make_unique<AutoTokenBucket>(Capacity, configFor(M, Backend));
}

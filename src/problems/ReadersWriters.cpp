//===- problems/ReadersWriters.cpp - Ticketed readers/writers ---------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Ticket protocol: every arrival takes NextTicket++. Admission is strictly
// in ticket order: a reader may start when Serving reaches its ticket and
// no writer is active; a writer additionally needs the readers drained.
// Advancing Serving on admission lets consecutive readers overlap while a
// waiting writer blocks later arrivals — the classic fair RW.
//
//===----------------------------------------------------------------------===//

#include "problems/ReadersWriters.h"

#include "core/Monitor.h"
#include "support/Check.h"
#include "sync/Mutex.h"

#include <deque>

using namespace autosynch;

namespace {

/// Explicit signaling in Buhr & Harji's style: each waiting thread parks on
/// its own condition variable in an arrival-order queue; whoever changes
/// the admission state signals exactly the queue head when it can run. This
/// is the explicit mechanism's strength — it always knows whom to wake.
class ExplicitReadersWriters final : public ReadersWritersIface {
public:
  explicit ExplicitReadersWriters(sync::Backend Backend) : Mutex(Backend) {}

  void startRead() override {
    Mutex.lock();
    if (!Queue.empty() || ActiveWriters != 0) {
      Waiter W{Mutex.newCondition(), /*IsWriter=*/false, /*Admitted=*/false};
      Queue.push_back(&W);
      while (!W.Admitted)
        W.Cond->await();
    } else {
      ++ActiveReaders;
    }
    ++Reads;
    Mutex.unlock();
  }

  void endRead() override {
    Mutex.lock();
    --ActiveReaders;
    admitFromQueue();
    Mutex.unlock();
  }

  void startWrite() override {
    Mutex.lock();
    if (!Queue.empty() || ActiveWriters != 0 || ActiveReaders != 0) {
      Waiter W{Mutex.newCondition(), /*IsWriter=*/true, /*Admitted=*/false};
      Queue.push_back(&W);
      while (!W.Admitted)
        W.Cond->await();
    } else {
      ++ActiveWriters;
    }
    ++Writes;
    Mutex.unlock();
  }

  void endWrite() override {
    Mutex.lock();
    --ActiveWriters;
    admitFromQueue();
    Mutex.unlock();
  }

  int64_t reads() const override {
    Mutex.lock();
    int64_t N = Reads;
    Mutex.unlock();
    return N;
  }
  int64_t writes() const override {
    Mutex.lock();
    int64_t N = Writes;
    Mutex.unlock();
    return N;
  }

private:
  struct Waiter {
    std::unique_ptr<sync::Condition> Cond;
    bool IsWriter;
    bool Admitted;
  };

  /// Admits the queue head if it can run now; after admitting a reader,
  /// keeps admitting consecutive readers (they overlap).
  void admitFromQueue() {
    while (!Queue.empty()) {
      Waiter *W = Queue.front();
      if (W->IsWriter) {
        if (ActiveReaders != 0 || ActiveWriters != 0)
          return;
        Queue.pop_front();
        ++ActiveWriters;
        W->Admitted = true;
        W->Cond->signal();
        return; // A writer is exclusive; stop admitting.
      }
      if (ActiveWriters != 0)
        return;
      Queue.pop_front();
      ++ActiveReaders;
      W->Admitted = true;
      W->Cond->signal();
      // Continue: the next queued reader may overlap.
    }
  }

  mutable sync::Mutex Mutex;
  std::deque<Waiter *> Queue;
  int64_t ActiveReaders = 0;
  int64_t ActiveWriters = 0;
  int64_t Reads = 0;
  int64_t Writes = 0;
};

/// Automatic-signal ticketed implementation (§6.3.2). After globalization
/// every waiter has an equivalence predicate on `serving` — the tag hash
/// finds the next thread to admit in O(1).
class AutoReadersWriters final : public ReadersWritersIface,
                                 private Monitor {
public:
  explicit AutoReadersWriters(const MonitorConfig &Cfg) : Monitor(Cfg) {}

  void startRead() override {
    Region R(*this);
    int64_t MyTicket = NextTicket.get();
    NextTicket += 1;
    waitUntil(Serving == MyTicket && ActiveWriters == 0);
    Serving += 1; // Admitted; the next ticket holder may be examined.
    ActiveReaders += 1;
    Reads += 1;
  }

  void endRead() override {
    Region R(*this);
    ActiveReaders -= 1;
  }

  void startWrite() override {
    Region R(*this);
    int64_t MyTicket = NextTicket.get();
    NextTicket += 1;
    waitUntil(Serving == MyTicket && ActiveWriters == 0 &&
              ActiveReaders == 0);
    Serving += 1;
    ActiveWriters += 1;
    Writes += 1;
  }

  void endWrite() override {
    Region R(*this);
    ActiveWriters -= 1;
  }

  int64_t reads() const override {
    return const_cast<AutoReadersWriters *>(this)->synchronized(
        [this] { return Reads.get(); });
  }
  int64_t writes() const override {
    return const_cast<AutoReadersWriters *>(this)->synchronized(
        [this] { return Writes.get(); });
  }

private:
  Shared<int64_t> NextTicket{*this, "nextTicket", 0};
  Shared<int64_t> Serving{*this, "serving", 0};
  Shared<int64_t> ActiveReaders{*this, "activeReaders", 0};
  Shared<int64_t> ActiveWriters{*this, "activeWriters", 0};
  Shared<int64_t> Reads{*this, "reads", 0};
  Shared<int64_t> Writes{*this, "writes", 0};
};

} // namespace

std::unique_ptr<ReadersWritersIface>
autosynch::makeReadersWriters(Mechanism M, sync::Backend Backend) {
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitReadersWriters>(Backend);
  return std::make_unique<AutoReadersWriters>(configFor(M, Backend));
}

//===- problems/ReadersWriters.h - Ticketed readers/writers ----*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The readers/writers problem in the fair, ticketed formulation the paper
/// adopts from Buhr & Harji (§6.3.2): "a ticket is used to maintain the
/// accessing order of readers and writers. Every reader and writer gets a
/// ticket number indicating its arrival order" and is admitted in that
/// order — readers may overlap; a writer is exclusive. The waiting
/// predicates (`serving == myTicket && ...`) are complex; globalization
/// yields per-thread equivalence predicates on the shared `serving`.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_READERSWRITERS_H
#define AUTOSYNCH_PROBLEMS_READERSWRITERS_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

/// Fair (arrival-order) readers/writers lock over a monitored resource.
class ReadersWritersIface {
public:
  virtual ~ReadersWritersIface() = default;

  virtual void startRead() = 0;
  virtual void endRead() = 0;
  virtual void startWrite() = 0;
  virtual void endWrite() = 0;

  /// Completed (read, write) operations (synchronized snapshots).
  virtual int64_t reads() const = 0;
  virtual int64_t writes() const = 0;
};

std::unique_ptr<ReadersWritersIface>
makeReadersWriters(Mechanism M,
                   sync::Backend Backend = sync::Backend::Std);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_READERSWRITERS_H

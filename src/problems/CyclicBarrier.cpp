//===- problems/CyclicBarrier.cpp - FIFO cyclic barrier ---------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Protocol: each arrival takes the next index of the current generation;
// the Parties-th arrival resets the count, bumps the generation, and wakes
// the group. Waiters block on "the generation has advanced past mine" —
// monotone, so a threshold predicate rather than an equivalence one.
//
//===----------------------------------------------------------------------===//

#include "problems/CyclicBarrier.h"

#include "core/Monitor.h"
#include "support/Check.h"
#include "sync/Mutex.h"

using namespace autosynch;

namespace {

/// Hand-written explicit version: one condition for the whole group;
/// signalAll on the trip is the natural explicit rendering (every waiter of
/// the finished generation must run).
class ExplicitCyclicBarrier final : public CyclicBarrierIface {
public:
  ExplicitCyclicBarrier(int64_t Parties, sync::Backend Backend)
      : Mutex(Backend), Tripped(Mutex.newCondition()), NumParties(Parties) {}

  int64_t await() override {
    Mutex.lock();
    int64_t MyGen = Generation;
    int64_t Index = Arrived++;
    if (Arrived == NumParties) {
      Arrived = 0;
      ++Generation;
      ++Trips;
      Tripped->signalAll();
    } else {
      while (Generation == MyGen)
        Tripped->await();
    }
    Mutex.unlock();
    return Index;
  }

  int64_t trips() const override {
    Mutex.lock();
    int64_t N = Trips;
    Mutex.unlock();
    return N;
  }

  int64_t parties() const override { return NumParties; }

private:
  mutable sync::Mutex Mutex;
  std::unique_ptr<sync::Condition> Tripped;
  const int64_t NumParties;
  int64_t Arrived = 0;
  int64_t Generation = 0;
  int64_t Trips = 0;
};

class AutoCyclicBarrier final : public CyclicBarrierIface, private Monitor {
public:
  AutoCyclicBarrier(int64_t Parties, const MonitorConfig &Cfg)
      : Monitor(Cfg), NumParties(Parties) {}

  int64_t await() override {
    Region R(*this);
    int64_t MyGen = Generation.get();
    int64_t Index = Arrived.get();
    Arrived += 1;
    if (Index + 1 == NumParties) {
      Arrived = 0;
      Generation += 1;
      Trips += 1;
    } else {
      // Globalized threshold predicate `generation > <myGen>`: one
      // lower-bound tag per blocked generation.
      waitUntil(Generation > MyGen);
    }
    return Index;
  }

  int64_t trips() const override {
    return const_cast<AutoCyclicBarrier *>(this)->synchronized(
        [this] { return Trips.get(); });
  }

  int64_t parties() const override { return NumParties; }

private:
  Shared<int64_t> Arrived{*this, "arrived", 0};
  Shared<int64_t> Generation{*this, "generation", 0};
  Shared<int64_t> Trips{*this, "trips", 0};
  const int64_t NumParties;
};

} // namespace

std::unique_ptr<CyclicBarrierIface>
autosynch::makeCyclicBarrier(Mechanism M, int64_t Parties,
                             sync::Backend Backend) {
  AUTOSYNCH_CHECK(Parties > 0, "cyclic barrier requires >= 1 party");
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitCyclicBarrier>(Parties, Backend);
  return std::make_unique<AutoCyclicBarrier>(Parties, configFor(M, Backend));
}

//===- problems/DiningPhilosophers.h - Dining philosophers -----*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dining philosophers (paper Fig. 13): philosopher i needs chopsticks i
/// and (i+1) mod N simultaneously and holds both while eating. The waiting
/// predicate `!stick[i] && !stick[i+1]` is a conjunction of boolean shared
/// variables; contention is local (each philosopher competes only with two
/// neighbours), which is why the paper sees the mechanisms stay close.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_DININGPHILOSOPHERS_H
#define AUTOSYNCH_PROBLEMS_DININGPHILOSOPHERS_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

/// Chopstick arbiter for N philosophers.
class DiningPhilosophersIface {
public:
  virtual ~DiningPhilosophersIface() = default;

  /// Blocks until both of \p Philosopher's chopsticks are free, then takes
  /// them.
  virtual void pickUp(int64_t Philosopher) = 0;

  /// Returns \p Philosopher's chopsticks.
  virtual void putDown(int64_t Philosopher) = 0;

  /// Completed meals (synchronized snapshot).
  virtual int64_t meals() const = 0;
};

std::unique_ptr<DiningPhilosophersIface>
makeDiningPhilosophers(Mechanism M, int64_t NumPhilosophers,
                       sync::Backend Backend = sync::Backend::Std);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_DININGPHILOSOPHERS_H

//===- problems/ParamBoundedBuffer.h - Parameterized buffer ----*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parameterized bounded buffer of the paper's Fig. 1 and Figs. 14-15:
/// producers deposit a *batch* of items and consumers remove a batch, so
/// every thread may wait on a different threshold (`count + n <= capacity`,
/// `count >= num`). The explicit-signal version cannot know which waiter to
/// wake and must use signalAll — the workload where AutoSynch wins by an
/// order of magnitude (§6.4, 26.9x at 256 consumers).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_PARAMBOUNDEDBUFFER_H
#define AUTOSYNCH_PROBLEMS_PARAMBOUNDEDBUFFER_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

/// Batch-operation bounded buffer (paper Fig. 1).
class ParamBoundedBufferIface {
public:
  virtual ~ParamBoundedBufferIface() = default;

  /// Blocks until \p NumItems fit, then deposits them.
  virtual void put(int64_t NumItems) = 0;

  /// Blocks until \p NumItems are available, then removes them.
  virtual void take(int64_t NumItems) = 0;

  /// Current item count (synchronized snapshot).
  virtual int64_t size() const = 0;
};

/// Creates the \p M implementation. Only Explicit and the automatic
/// mechanisms the paper plots (AutoSynch) are exercised by the Fig. 14
/// bench, but every mechanism is constructible.
std::unique_ptr<ParamBoundedBufferIface>
makeParamBoundedBuffer(Mechanism M, int64_t Capacity,
                       sync::Backend Backend = sync::Backend::Std);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_PARAMBOUNDEDBUFFER_H

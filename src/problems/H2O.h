//===- problems/H2O.h - Water-building barrier -----------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The H2O problem (Andrews; paper Fig. 9): hydrogen threads wait until an
/// oxygen binds two of them into a molecule; the oxygen waits until two
/// hydrogens are available. Shared-only threshold predicates; the paper
/// runs one oxygen thread and sweeps the number of hydrogen threads.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_H2O_H
#define AUTOSYNCH_PROBLEMS_H2O_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

/// Water-molecule assembly barrier.
class H2OIface {
public:
  virtual ~H2OIface() = default;

  /// A hydrogen atom arrives and blocks until consumed by a molecule.
  virtual void hydrogen() = 0;

  /// An oxygen atom arrives, blocks until two hydrogens are available, and
  /// completes one molecule.
  virtual void oxygen() = 0;

  /// Molecules completed (synchronized snapshot).
  virtual int64_t molecules() const = 0;
};

std::unique_ptr<H2OIface>
makeH2O(Mechanism M, sync::Backend Backend = sync::Backend::Std);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_H2O_H

//===- problems/SleepingBarber.h - Sleeping barber -------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sleeping-barber problem (paper Fig. 10): one barber, a bounded
/// waiting room. A customer leaves when no chair is free, otherwise takes a
/// chair and waits for the barber's offer; the barber sleeps (waits) until
/// a customer is available. The rendezvous uses shared-only predicates
/// (`offers > 0`, `offers == 0`, `waiting > 0`), the paper's first problem
/// class.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_SLEEPINGBARBER_H
#define AUTOSYNCH_PROBLEMS_SLEEPINGBARBER_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

/// One-barber shop with a bounded waiting room.
class SleepingBarberIface {
public:
  virtual ~SleepingBarberIface() = default;

  /// A customer tries to get a haircut. Returns false when every waiting
  /// chair was taken (the customer leaves), true once the haircut happened.
  virtual bool getHaircut() = 0;

  /// The barber serves exactly one customer (sleeping until one arrives).
  virtual void cutHair() = 0;

  /// Haircuts completed (synchronized snapshot).
  virtual int64_t haircuts() const = 0;
};

/// Creates the \p M implementation with \p Chairs waiting chairs.
std::unique_ptr<SleepingBarberIface>
makeSleepingBarber(Mechanism M, int64_t Chairs,
                   sync::Backend Backend = sync::Backend::Std);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_SLEEPINGBARBER_H

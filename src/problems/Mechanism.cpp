//===- problems/Mechanism.cpp - The four signaling mechanisms --------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "problems/Mechanism.h"

#include "support/Check.h"

#include <atomic>

using namespace autosynch;

namespace {
std::atomic<RelayFilter> GDefaultFilter{RelayFilter::DirtySet};
} // namespace

RelayFilter autosynch::defaultRelayFilter() {
  return GDefaultFilter.load(std::memory_order_relaxed);
}

void autosynch::setDefaultRelayFilter(RelayFilter F) {
  GDefaultFilter.store(F, std::memory_order_relaxed);
}

const char *autosynch::mechanismName(Mechanism M) {
  switch (M) {
  case Mechanism::Explicit:
    return "explicit";
  case Mechanism::Baseline:
    return "baseline";
  case Mechanism::AutoSynchT:
    return "AutoSynch-T";
  case Mechanism::AutoSynch:
    return "AutoSynch";
  }
  AUTOSYNCH_UNREACHABLE("invalid Mechanism");
}

MonitorConfig autosynch::configFor(Mechanism M, sync::Backend Backend) {
  MonitorConfig Cfg;
  Cfg.Backend = Backend;
  Cfg.Filter = defaultRelayFilter();
  switch (M) {
  case Mechanism::Baseline:
    Cfg.Policy = SignalPolicy::Broadcast;
    return Cfg;
  case Mechanism::AutoSynchT:
    Cfg.Policy = SignalPolicy::LinearScan;
    return Cfg;
  case Mechanism::AutoSynch:
    Cfg.Policy = SignalPolicy::Tagged;
    return Cfg;
  case Mechanism::Explicit:
    break;
  }
  AUTOSYNCH_UNREACHABLE("explicit mechanism has no automatic monitor");
}

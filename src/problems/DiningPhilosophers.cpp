//===- problems/DiningPhilosophers.cpp - Dining philosophers ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "problems/DiningPhilosophers.h"

#include "core/Monitor.h"
#include "support/Check.h"
#include "sync/Mutex.h"

#include <deque>
#include <string>
#include <vector>

using namespace autosynch;

namespace {

/// Explicit signaling: one condition per philosopher; putting chopsticks
/// down signals both neighbours (they are the only threads whose
/// predicates may have turned true).
class ExplicitDiningPhilosophers final : public DiningPhilosophersIface {
public:
  ExplicitDiningPhilosophers(int64_t N, sync::Backend Backend)
      : Mutex(Backend), Stick(N, false), N(N) {
    Conds.reserve(N);
    for (int64_t I = 0; I != N; ++I)
      Conds.push_back(Mutex.newCondition());
  }

  void pickUp(int64_t P) override {
    Mutex.lock();
    while (Stick[P] || Stick[(P + 1) % N])
      Conds[P]->await();
    Stick[P] = Stick[(P + 1) % N] = true;
    Mutex.unlock();
  }

  void putDown(int64_t P) override {
    Mutex.lock();
    Stick[P] = Stick[(P + 1) % N] = false;
    ++Meals;
    Conds[(P + N - 1) % N]->signal();
    Conds[(P + 1) % N]->signal();
    Mutex.unlock();
  }

  int64_t meals() const override {
    Mutex.lock();
    int64_t N = Meals;
    Mutex.unlock();
    return N;
  }

private:
  mutable sync::Mutex Mutex;
  std::vector<std::unique_ptr<sync::Condition>> Conds;
  std::vector<bool> Stick;
  const int64_t N;
  int64_t Meals = 0;
};

class AutoDiningPhilosophers final : public DiningPhilosophersIface,
                                     private Monitor {
public:
  AutoDiningPhilosophers(int64_t N, const MonitorConfig &Cfg)
      : Monitor(Cfg), N(N) {
    // The base is private; convert here, where it is accessible, rather
    // than inside the container's construct_at.
    Monitor &Self = *this;
    for (int64_t I = 0; I != N; ++I)
      Sticks.emplace_back(Self, "stick" + std::to_string(I), false);
  }

  void pickUp(int64_t P) override {
    Region R(*this);
    // `!stick[p] && !stick[p+1]`: boolean equivalence tags (key 0) on both
    // chopstick variables.
    waitUntil(!Sticks[P].expr() && !Sticks[(P + 1) % N].expr());
    Sticks[P] = true;
    Sticks[(P + 1) % N] = true;
  }

  void putDown(int64_t P) override {
    Region R(*this);
    Sticks[P] = false;
    Sticks[(P + 1) % N] = false;
    Meals += 1;
  }

  int64_t meals() const override {
    return const_cast<AutoDiningPhilosophers *>(this)->synchronized(
        [this] { return Meals.get(); });
  }

private:
  std::deque<Shared<bool>> Sticks;
  Shared<int64_t> Meals{*this, "meals", 0};
  const int64_t N;
};

} // namespace

std::unique_ptr<DiningPhilosophersIface>
autosynch::makeDiningPhilosophers(Mechanism M, int64_t NumPhilosophers,
                                  sync::Backend Backend) {
  AUTOSYNCH_CHECK(NumPhilosophers >= 2,
                  "dining philosophers requires >= 2 philosophers");
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitDiningPhilosophers>(NumPhilosophers,
                                                        Backend);
  return std::make_unique<AutoDiningPhilosophers>(NumPhilosophers,
                                                  configFor(M, Backend));
}

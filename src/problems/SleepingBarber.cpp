//===- problems/SleepingBarber.cpp - Sleeping barber ------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Protocol (monitor state): Waiting counts customers in waiting chairs;
// Offers counts barber offers not yet taken. The barber publishes one offer
// and waits until a customer takes it; a waiting customer takes an offer,
// frees a chair, and has the haircut. A customer finding all chairs taken
// leaves immediately.
//
//===----------------------------------------------------------------------===//

#include "problems/SleepingBarber.h"

#include "core/Monitor.h"
#include "support/Check.h"
#include "sync/Mutex.h"

using namespace autosynch;

namespace {

class ExplicitSleepingBarber final : public SleepingBarberIface {
public:
  ExplicitSleepingBarber(int64_t Chairs, sync::Backend Backend)
      : Mutex(Backend), CustomerAvailable(Mutex.newCondition()),
        OfferAvailable(Mutex.newCondition()),
        OfferTaken(Mutex.newCondition()), Chairs(Chairs) {}

  bool getHaircut() override {
    Mutex.lock();
    if (Waiting == Chairs) {
      Mutex.unlock();
      return false; // No free chair: the customer leaves.
    }
    ++Waiting;
    CustomerAvailable->signal(); // Wake the barber if he is asleep.
    while (Offers == 0)
      OfferAvailable->await();
    --Offers;
    --Waiting;
    ++Haircuts;
    OfferTaken->signal();
    Mutex.unlock();
    return true;
  }

  void cutHair() override {
    Mutex.lock();
    while (Waiting == 0)
      CustomerAvailable->await(); // The barber sleeps.
    ++Offers;
    OfferAvailable->signal();
    while (Offers != 0)
      OfferTaken->await();
    Mutex.unlock();
  }

  int64_t haircuts() const override {
    Mutex.lock();
    int64_t H = Haircuts;
    Mutex.unlock();
    return H;
  }

private:
  mutable sync::Mutex Mutex;
  std::unique_ptr<sync::Condition> CustomerAvailable;
  std::unique_ptr<sync::Condition> OfferAvailable;
  std::unique_ptr<sync::Condition> OfferTaken;
  const int64_t Chairs;
  int64_t Waiting = 0;
  int64_t Offers = 0;
  int64_t Haircuts = 0;
};

class AutoSleepingBarber final : public SleepingBarberIface,
                                 private Monitor {
public:
  AutoSleepingBarber(int64_t Chairs, const MonitorConfig &Cfg)
      : Monitor(Cfg), Chairs(Chairs) {}

  bool getHaircut() override {
    Region R(*this);
    if (Waiting.get() == Chairs)
      return false; // No free chair: the customer leaves.
    Waiting += 1;
    waitUntil(Offers > 0);
    Offers -= 1;
    Waiting -= 1;
    Done += 1;
    return true;
  }

  void cutHair() override {
    Region R(*this);
    waitUntil(Waiting > 0); // The barber sleeps until a customer arrives.
    Offers += 1;
    waitUntil(Offers == 0); // Until some customer takes the offer.
  }

  int64_t haircuts() const override {
    return const_cast<AutoSleepingBarber *>(this)->synchronized(
        [this] { return Done.get(); });
  }

private:
  Shared<int64_t> Waiting{*this, "waiting", 0};
  Shared<int64_t> Offers{*this, "offers", 0};
  Shared<int64_t> Done{*this, "done", 0};
  const int64_t Chairs;
};

} // namespace

std::unique_ptr<SleepingBarberIface>
autosynch::makeSleepingBarber(Mechanism M, int64_t Chairs,
                              sync::Backend Backend) {
  AUTOSYNCH_CHECK(Chairs > 0, "sleeping barber requires >= 1 chair");
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitSleepingBarber>(Chairs, Backend);
  return std::make_unique<AutoSleepingBarber>(Chairs, configFor(M, Backend));
}

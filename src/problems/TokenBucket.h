//===- problems/TokenBucket.h - Token-bucket rate limiter ------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A token-bucket rate limiter: the second timeout-native evaluation
/// problem. Acquirers demand a *per-call* number of tokens — the predicate
/// `tokens >= n` carries a local, so the automatic implementations
/// exercise globalization, slotted wait plans, and threshold tags under
/// deadlines. Refills are explicit operations (not wall-clock driven):
/// that keeps every run's supply schedule deterministic, which is what
/// lets the differential oracle pin down exact timeout sets across
/// mechanisms. Timed-out demands leave the bucket untouched.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_TOKENBUCKET_H
#define AUTOSYNCH_PROBLEMS_TOKENBUCKET_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

/// Token bucket with bounded-blocking batch acquisition.
class TokenBucketIface {
public:
  virtual ~TokenBucketIface() = default;

  /// Blocks until \p N tokens are available, at most \p TimeoutNs
  /// nanoseconds (relative; UINT64_MAX = unbounded), then takes them
  /// atomically. Returns false on timeout with the bucket unchanged.
  /// \p N must be within [1, capacity] — larger demands could never be
  /// satisfied and are rejected fatally, timed or not.
  virtual bool acquire(int64_t N, uint64_t TimeoutNs) = 0;

  /// Adds \p N tokens, saturating at capacity.
  virtual void refill(int64_t N) = 0;

  /// Tokens currently in the bucket (synchronized snapshot).
  virtual int64_t tokens() const = 0;

  /// Successful acquisitions so far.
  virtual int64_t grants() const = 0;

  /// Timed-out acquisitions so far.
  virtual int64_t timeouts() const = 0;
};

/// Creates the \p M implementation with room for \p Capacity tokens; the
/// bucket starts full.
std::unique_ptr<TokenBucketIface>
makeTokenBucket(Mechanism M, int64_t Capacity,
                sync::Backend Backend = sync::Backend::Std);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_TOKENBUCKET_H

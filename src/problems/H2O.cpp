//===- problems/H2O.cpp - Water-building barrier ----------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Protocol: HWaiting counts blocked hydrogens; an oxygen waits until
// HWaiting >= 2, then claims two hydrogens by moving them to HPasses;
// each blocked hydrogen leaves once it can consume a pass. Every molecule
// therefore consumes exactly one oxygen call and two hydrogen calls.
//
//===----------------------------------------------------------------------===//

#include "problems/H2O.h"

#include "core/Monitor.h"
#include "sync/Mutex.h"

using namespace autosynch;

namespace {

class ExplicitH2O final : public H2OIface {
public:
  explicit ExplicitH2O(sync::Backend Backend)
      : Mutex(Backend), EnoughHydrogen(Mutex.newCondition()),
        PassAvailable(Mutex.newCondition()) {}

  void hydrogen() override {
    Mutex.lock();
    ++HWaiting;
    if (HWaiting >= 2)
      EnoughHydrogen->signal();
    while (HPasses == 0)
      PassAvailable->await();
    --HPasses;
    Mutex.unlock();
  }

  void oxygen() override {
    Mutex.lock();
    while (HWaiting < 2)
      EnoughHydrogen->await();
    HWaiting -= 2;
    HPasses += 2;
    ++Molecules;
    // Exactly two passes were minted: wake two hydrogens.
    PassAvailable->signal();
    PassAvailable->signal();
    Mutex.unlock();
  }

  int64_t molecules() const override {
    Mutex.lock();
    int64_t N = Molecules;
    Mutex.unlock();
    return N;
  }

private:
  mutable sync::Mutex Mutex;
  std::unique_ptr<sync::Condition> EnoughHydrogen;
  std::unique_ptr<sync::Condition> PassAvailable;
  int64_t HWaiting = 0;
  int64_t HPasses = 0;
  int64_t Molecules = 0;
};

class AutoH2O final : public H2OIface, private Monitor {
public:
  explicit AutoH2O(const MonitorConfig &Cfg) : Monitor(Cfg) {}

  void hydrogen() override {
    Region R(*this);
    HWaiting += 1;
    waitUntil(HPasses > 0);
    HPasses -= 1;
  }

  void oxygen() override {
    Region R(*this);
    waitUntil(HWaiting >= 2);
    HWaiting -= 2;
    HPasses += 2;
    Molecules += 1;
  }

  int64_t molecules() const override {
    return const_cast<AutoH2O *>(this)->synchronized(
        [this] { return Molecules.get(); });
  }

private:
  Shared<int64_t> HWaiting{*this, "hWaiting", 0};
  Shared<int64_t> HPasses{*this, "hPasses", 0};
  Shared<int64_t> Molecules{*this, "molecules", 0};
};

} // namespace

std::unique_ptr<H2OIface> autosynch::makeH2O(Mechanism M,
                                             sync::Backend Backend) {
  if (M == Mechanism::Explicit)
    return std::make_unique<ExplicitH2O>(Backend);
  return std::make_unique<AutoH2O>(configFor(M, Backend));
}

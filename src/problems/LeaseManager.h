//===- problems/LeaseManager.h - Bounded-hold lease pool -------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lease manager: the first timeout-native evaluation problem. A fixed
/// pool of leases; acquirers block for *at most* a caller-chosen bound —
/// the production idiom (connection pools, distributed-lock leases,
/// admission control) the paper's unbounded waitUntil cannot express. The
/// automatic implementations are one timed wait on `free > 0`; the
/// explicit implementation is the classic hand-written Lock/Condition
/// deadline loop. Grant and timeout counts are part of the observable
/// history, so the differential oracle can compare *timeout sets*, not
/// just completions, across mechanisms.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PROBLEMS_LEASEMANAGER_H
#define AUTOSYNCH_PROBLEMS_LEASEMANAGER_H

#include "problems/Mechanism.h"

#include <cstdint>
#include <memory>

namespace autosynch {

/// Fixed pool of leases with bounded-blocking acquisition.
class LeaseManagerIface {
public:
  virtual ~LeaseManagerIface() = default;

  /// Blocks until a lease is free, at most \p TimeoutNs nanoseconds
  /// (relative; UINT64_MAX = unbounded). Returns true and takes the lease
  /// on success; false on timeout with the pool unchanged.
  virtual bool acquire(uint64_t TimeoutNs) = 0;

  /// Returns a held lease to the pool.
  virtual void release() = 0;

  /// Currently free leases (synchronized snapshot).
  virtual int64_t available() const = 0;

  /// Successful acquisitions so far.
  virtual int64_t grants() const = 0;

  /// Timed-out acquisitions so far.
  virtual int64_t timeouts() const = 0;
};

/// Creates the \p M implementation managing \p Leases leases.
std::unique_ptr<LeaseManagerIface>
makeLeaseManager(Mechanism M, int64_t Leases,
                 sync::Backend Backend = sync::Backend::Std);

} // namespace autosynch

#endif // AUTOSYNCH_PROBLEMS_LEASEMANAGER_H

//===- sync/Futex.h - Raw Linux futex wrappers -----------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin wrappers over the Linux futex(2) system call, used by the futex
/// backend of the sync substrate. Process-private futexes only.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_SYNC_FUTEX_H
#define AUTOSYNCH_SYNC_FUTEX_H

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <ctime>

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace autosynch::sync {

/// Blocks until \p Word no longer holds \p Expected or the thread is woken.
/// May return spuriously; callers must re-check their condition.
inline void futexWait(std::atomic<uint32_t> &Word, uint32_t Expected) {
  syscall(SYS_futex, reinterpret_cast<uint32_t *>(&Word), FUTEX_WAIT_PRIVATE,
          Expected, nullptr, nullptr, 0);
}

/// Timed futexWait: blocks until \p Word no longer holds \p Expected, the
/// thread is woken, or the absolute CLOCK_MONOTONIC deadline \p DeadlineNs
/// passes (FUTEX_WAIT_BITSET takes an absolute monotonic timespec — the
/// same clock time::nowNs reads, so no relative-timeout re-arithmetic on
/// spurious wakeups). DeadlineNs == UINT64_MAX waits unboundedly. Returns
/// true iff the wait ended because the deadline passed; may also return
/// spuriously (callers re-check their condition either way).
inline bool futexWaitUntil(std::atomic<uint32_t> &Word, uint32_t Expected,
                           uint64_t DeadlineNs) {
  if (DeadlineNs == ~uint64_t{0}) {
    futexWait(Word, Expected);
    return false;
  }
  timespec TS;
  TS.tv_sec = static_cast<time_t>(DeadlineNs / 1000000000u);
  TS.tv_nsec = static_cast<long>(DeadlineNs % 1000000000u);
  long Rc = syscall(SYS_futex, reinterpret_cast<uint32_t *>(&Word),
                    FUTEX_WAIT_BITSET_PRIVATE, Expected, &TS, nullptr,
                    FUTEX_BITSET_MATCH_ANY);
  return Rc == -1 && errno == ETIMEDOUT;
}

/// Wakes up to \p Count threads blocked in futexWait on \p Word.
/// Returns the number of threads actually woken.
inline int futexWake(std::atomic<uint32_t> &Word, int Count) {
  long Woken = syscall(SYS_futex, reinterpret_cast<uint32_t *>(&Word),
                       FUTEX_WAKE_PRIVATE, Count, nullptr, nullptr, 0);
  return Woken < 0 ? 0 : static_cast<int>(Woken);
}

} // namespace autosynch::sync

#endif // AUTOSYNCH_SYNC_FUTEX_H

//===- sync/Mutex.cpp - Lock/Condition substrate ---------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "sync/Mutex.h"

#include "support/Check.h"
#include "sync/Counters.h"
#include "sync/Futex.h"

#include <chrono>
#include <climits>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

using namespace autosynch;
using namespace autosynch::sync;

const char *sync::backendName(Backend B) {
  switch (B) {
  case Backend::Std:
    return "std";
  case Backend::Futex:
    return "futex";
  }
  AUTOSYNCH_UNREACHABLE("invalid sync backend");
}

//===----------------------------------------------------------------------===//
// Spurious-wakeup fault injection (tests only)
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint32_t> SpuriousPeriod{0};
std::atomic<uint32_t> SpuriousTick{0};

/// True when this wait should return spuriously instead of blocking.
bool injectSpurious() {
  uint32_t P = SpuriousPeriod.load(std::memory_order_relaxed);
  if (AUTOSYNCH_LIKELY(P == 0))
    return false;
  return SpuriousTick.fetch_add(1, std::memory_order_relaxed) % P == P - 1;
}
} // namespace

void sync::setSpuriousWakeupPeriod(uint32_t N) {
  SpuriousPeriod.store(N, std::memory_order_relaxed);
}

uint32_t sync::spuriousWakeupPeriod() {
  return SpuriousPeriod.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Std backend
//===----------------------------------------------------------------------===//

namespace {

class StdMutexImpl final : public detail::MutexImpl {
public:
  void lock() override { M.lock(); }
  void unlock() override { M.unlock(); }
  bool tryLock() override { return M.try_lock(); }

  std::mutex &raw() { return M; }

private:
  std::mutex M;
};

class StdConditionImpl final : public detail::ConditionImpl {
public:
  explicit StdConditionImpl(std::mutex &M) : M(M) {}

  void await() override {
    // The caller already holds M through Mutex::lock(); adopt it so the
    // condition variable can release and re-acquire it, then hand ownership
    // back without unlocking.
    std::unique_lock<std::mutex> Guard(M, std::adopt_lock);
    CV.wait(Guard);
    Guard.release();
  }

  bool awaitUntil(uint64_t DeadlineNs, uint64_t Epoch) override {
    // std::condition_variable cannot close the lost-notify window
    // against notifiers that do not hold the mutex (CancelToken::cancel,
    // the fallback ticker): a notify landing between the epoch check and
    // the condvar's internal waiter registration wakes nobody, and on an
    // unbounded epoch wait that is a hang. The epoch-protected path
    // therefore waits on the epoch word itself with a futex — the
    // value-vs-epoch compare is atomic in the kernel, exactly like the
    // futex backend — while plain await() stays pure condvar.
    EpochWaiters.fetch_add(1, std::memory_order_seq_cst);
    M.unlock();
    bool TimedOut =
        futexWaitUntil(Gen, static_cast<uint32_t>(Epoch), DeadlineNs);
    M.lock();
    EpochWaiters.fetch_sub(1, std::memory_order_relaxed);
    return TimedOut;
  }

  uint64_t epoch() const override {
    return Gen.load(std::memory_order_relaxed);
  }

  void signal() override {
    Gen.fetch_add(1, std::memory_order_release);
    CV.notify_one();
    if (epochWaiterMayBeParked())
      futexWake(Gen, 1);
  }
  void signalAll() override {
    Gen.fetch_add(1, std::memory_order_release);
    CV.notify_all();
    if (epochWaiterMayBeParked())
      futexWake(Gen, INT_MAX);
  }

  void spuriousWake() override {
    M.unlock();
    std::this_thread::yield();
    M.lock();
  }

private:
  /// Whether the futex wake is needed. The wake is skippable when no
  /// epoch waiter exists — a waiter that captured its epoch before the
  /// bump self-detects the change in futexWaitUntil's kernel compare —
  /// but the waker-side check is the classic futex waiter-count pattern
  /// and needs a full StoreLoad barrier between the Gen bump and the
  /// count read (paired with the waiter's seq_cst increment before its
  /// kernel compare): with plain release/relaxed ordering the count
  /// read could be satisfied before the bump commits, read zero, and
  /// drop the only wake for a concurrently parking waiter. x86's RMW
  /// masks this; weaker architectures do not.
  bool epochWaiterMayBeParked() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return EpochWaiters.load(std::memory_order_relaxed) != 0;
  }

  std::mutex &M;
  std::condition_variable CV;
  /// Wake epoch; see Condition::epoch(). 32-bit: it doubles as the
  /// futex word for the epoch-protected timed wait.
  std::atomic<uint32_t> Gen{0};
  /// Threads currently blocked in the futex epoch wait.
  std::atomic<uint32_t> EpochWaiters{0};
};

//===----------------------------------------------------------------------===//
// Futex backend
//===----------------------------------------------------------------------===//

/// Drepper's three-state futex mutex ("Futexes Are Tricky", 2011):
/// 0 = unlocked, 1 = locked with no waiters, 2 = locked with possible
/// waiters.
class FutexMutexImpl final : public detail::MutexImpl {
public:
  void lock() override {
    uint32_t C = 0;
    if (State.compare_exchange_strong(C, 1, std::memory_order_acquire))
      return;
    // Contended path: advertise a waiter by setting state 2, then sleep
    // until the owner hands the lock over.
    if (C != 2)
      C = State.exchange(2, std::memory_order_acquire);
    while (C != 0) {
      futexWait(State, 2);
      C = State.exchange(2, std::memory_order_acquire);
    }
  }

  bool tryLock() override {
    uint32_t C = 0;
    return State.compare_exchange_strong(C, 1, std::memory_order_acquire);
  }

  void unlock() override {
    if (State.fetch_sub(1, std::memory_order_release) != 1) {
      // There may be waiters (state was 2): fully release and wake one.
      State.store(0, std::memory_order_release);
      futexWake(State, 1);
    }
  }

private:
  std::atomic<uint32_t> State{0};
};

/// Sequence-counter futex condition variable. await() publishes the current
/// sequence number, releases the mutex, and sleeps until the sequence
/// changes; each signal bumps the sequence, so a signal issued between the
/// unlock and the futexWait is never lost (the wait returns immediately on
/// the value mismatch).
class FutexConditionImpl final : public detail::ConditionImpl {
public:
  explicit FutexConditionImpl(FutexMutexImpl &M) : M(M) {}

  void await() override {
    uint32_t S = Seq.load(std::memory_order_relaxed);
    M.unlock();
    futexWait(Seq, S);
    M.lock();
  }

  bool awaitUntil(uint64_t DeadlineNs, uint64_t Epoch) override {
    // The sequence counter is the epoch: a wake issued after the caller's
    // capture bumps it, and futexWaitUntil returns immediately on the
    // value mismatch — nothing to lose. The timeout is an absolute
    // CLOCK_MONOTONIC timespec, so spurious returns need no re-arming
    // arithmetic.
    M.unlock();
    bool TimedOut =
        futexWaitUntil(Seq, static_cast<uint32_t>(Epoch), DeadlineNs);
    M.lock();
    return TimedOut;
  }

  uint64_t epoch() const override {
    return Seq.load(std::memory_order_relaxed);
  }

  void signal() override {
    Seq.fetch_add(1, std::memory_order_release);
    futexWake(Seq, 1);
  }

  void signalAll() override {
    Seq.fetch_add(1, std::memory_order_release);
    futexWake(Seq, INT_MAX);
  }

  void spuriousWake() override {
    M.unlock();
    std::this_thread::yield();
    M.lock();
  }

private:
  std::atomic<uint32_t> Seq{0};
  FutexMutexImpl &M;
};

} // namespace

//===----------------------------------------------------------------------===//
// Public wrappers
//===----------------------------------------------------------------------===//

Mutex::Mutex(Backend B) : Kind(B) {
  switch (B) {
  case Backend::Std:
    Impl = std::make_unique<StdMutexImpl>();
    return;
  case Backend::Futex:
    Impl = std::make_unique<FutexMutexImpl>();
    return;
  }
  AUTOSYNCH_UNREACHABLE("invalid sync backend");
}

Mutex::~Mutex() = default;

static uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Mutex::lock() {
  Counters &G = Counters::global();
  if (AUTOSYNCH_UNLIKELY(G.timingEnabled())) {
    uint64_t T0 = nowNs();
    Impl->lock();
    G.addLockNs(nowNs() - T0);
    return;
  }
  Impl->lock();
}

void Mutex::unlock() { Impl->unlock(); }
bool Mutex::tryLock() { return Impl->tryLock(); }

std::unique_ptr<Condition> Mutex::newCondition() {
  std::unique_ptr<detail::ConditionImpl> CI;
  switch (Kind) {
  case Backend::Std:
    CI = std::make_unique<StdConditionImpl>(
        static_cast<StdMutexImpl &>(*Impl).raw());
    break;
  case Backend::Futex:
    CI = std::make_unique<FutexConditionImpl>(
        static_cast<FutexMutexImpl &>(*Impl));
    break;
  }
  AUTOSYNCH_CHECK(CI != nullptr, "invalid sync backend");
  // Condition's constructor is private; makeshift make_unique.
  return std::unique_ptr<Condition>(new Condition(std::move(CI)));
}

void Condition::await() {
  Awaits.fetch_add(1, std::memory_order_relaxed);
  Counters &G = Counters::global();
  G.onAwait();
  if (AUTOSYNCH_UNLIKELY(injectSpurious())) {
    Impl->spuriousWake();
    G.onWakeup();
    return;
  }
  if (AUTOSYNCH_UNLIKELY(G.timingEnabled())) {
    uint64_t T0 = nowNs();
    Impl->await();
    G.addAwaitNs(nowNs() - T0);
  } else {
    Impl->await();
  }
  G.onWakeup();
}

uint64_t Condition::epoch() const { return Impl->epoch(); }

bool Condition::awaitUntil(uint64_t DeadlineNs, uint64_t Epoch) {
  Awaits.fetch_add(1, std::memory_order_relaxed);
  Counters &G = Counters::global();
  G.onAwait();
  if (AUTOSYNCH_UNLIKELY(injectSpurious())) {
    Impl->spuriousWake();
    G.onWakeup();
    // The verdict must stay truthful even when the kernel never ran:
    // callers lean on it as their only deadline observation.
    return DeadlineNs != ~uint64_t{0} && nowNs() >= DeadlineNs;
  }
  bool TimedOut;
  if (AUTOSYNCH_UNLIKELY(G.timingEnabled())) {
    uint64_t T0 = nowNs();
    TimedOut = Impl->awaitUntil(DeadlineNs, Epoch);
    G.addAwaitNs(nowNs() - T0);
  } else {
    TimedOut = Impl->awaitUntil(DeadlineNs, Epoch);
  }
  G.onWakeup();
  return TimedOut;
}

void Condition::signal() {
  Signals.fetch_add(1, std::memory_order_relaxed);
  Counters::global().onSignal();
  Impl->signal();
}

void Condition::signalAll() {
  SignalAlls.fetch_add(1, std::memory_order_relaxed);
  Counters::global().onSignalAll();
  Impl->signalAll();
}

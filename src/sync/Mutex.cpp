//===- sync/Mutex.cpp - Lock/Condition substrate ---------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "sync/Mutex.h"

#include "support/Check.h"
#include "sync/Counters.h"
#include "sync/Futex.h"

#include <chrono>
#include <climits>
#include <condition_variable>
#include <mutex>

using namespace autosynch;
using namespace autosynch::sync;

const char *sync::backendName(Backend B) {
  switch (B) {
  case Backend::Std:
    return "std";
  case Backend::Futex:
    return "futex";
  }
  AUTOSYNCH_UNREACHABLE("invalid sync backend");
}

//===----------------------------------------------------------------------===//
// Std backend
//===----------------------------------------------------------------------===//

namespace {

class StdMutexImpl final : public detail::MutexImpl {
public:
  void lock() override { M.lock(); }
  void unlock() override { M.unlock(); }
  bool tryLock() override { return M.try_lock(); }

  std::mutex &raw() { return M; }

private:
  std::mutex M;
};

class StdConditionImpl final : public detail::ConditionImpl {
public:
  explicit StdConditionImpl(std::mutex &M) : M(M) {}

  void await() override {
    // The caller already holds M through Mutex::lock(); adopt it so the
    // condition variable can release and re-acquire it, then hand ownership
    // back without unlocking.
    std::unique_lock<std::mutex> Guard(M, std::adopt_lock);
    CV.wait(Guard);
    Guard.release();
  }

  void signal() override { CV.notify_one(); }
  void signalAll() override { CV.notify_all(); }

private:
  std::mutex &M;
  std::condition_variable CV;
};

//===----------------------------------------------------------------------===//
// Futex backend
//===----------------------------------------------------------------------===//

/// Drepper's three-state futex mutex ("Futexes Are Tricky", 2011):
/// 0 = unlocked, 1 = locked with no waiters, 2 = locked with possible
/// waiters.
class FutexMutexImpl final : public detail::MutexImpl {
public:
  void lock() override {
    uint32_t C = 0;
    if (State.compare_exchange_strong(C, 1, std::memory_order_acquire))
      return;
    // Contended path: advertise a waiter by setting state 2, then sleep
    // until the owner hands the lock over.
    if (C != 2)
      C = State.exchange(2, std::memory_order_acquire);
    while (C != 0) {
      futexWait(State, 2);
      C = State.exchange(2, std::memory_order_acquire);
    }
  }

  bool tryLock() override {
    uint32_t C = 0;
    return State.compare_exchange_strong(C, 1, std::memory_order_acquire);
  }

  void unlock() override {
    if (State.fetch_sub(1, std::memory_order_release) != 1) {
      // There may be waiters (state was 2): fully release and wake one.
      State.store(0, std::memory_order_release);
      futexWake(State, 1);
    }
  }

private:
  std::atomic<uint32_t> State{0};
};

/// Sequence-counter futex condition variable. await() publishes the current
/// sequence number, releases the mutex, and sleeps until the sequence
/// changes; each signal bumps the sequence, so a signal issued between the
/// unlock and the futexWait is never lost (the wait returns immediately on
/// the value mismatch).
class FutexConditionImpl final : public detail::ConditionImpl {
public:
  explicit FutexConditionImpl(FutexMutexImpl &M) : M(M) {}

  void await() override {
    uint32_t S = Seq.load(std::memory_order_relaxed);
    M.unlock();
    futexWait(Seq, S);
    M.lock();
  }

  void signal() override {
    Seq.fetch_add(1, std::memory_order_release);
    futexWake(Seq, 1);
  }

  void signalAll() override {
    Seq.fetch_add(1, std::memory_order_release);
    futexWake(Seq, INT_MAX);
  }

private:
  std::atomic<uint32_t> Seq{0};
  FutexMutexImpl &M;
};

} // namespace

//===----------------------------------------------------------------------===//
// Public wrappers
//===----------------------------------------------------------------------===//

Mutex::Mutex(Backend B) : Kind(B) {
  switch (B) {
  case Backend::Std:
    Impl = std::make_unique<StdMutexImpl>();
    return;
  case Backend::Futex:
    Impl = std::make_unique<FutexMutexImpl>();
    return;
  }
  AUTOSYNCH_UNREACHABLE("invalid sync backend");
}

Mutex::~Mutex() = default;

static uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Mutex::lock() {
  Counters &G = Counters::global();
  if (AUTOSYNCH_UNLIKELY(G.timingEnabled())) {
    uint64_t T0 = nowNs();
    Impl->lock();
    G.addLockNs(nowNs() - T0);
    return;
  }
  Impl->lock();
}

void Mutex::unlock() { Impl->unlock(); }
bool Mutex::tryLock() { return Impl->tryLock(); }

std::unique_ptr<Condition> Mutex::newCondition() {
  std::unique_ptr<detail::ConditionImpl> CI;
  switch (Kind) {
  case Backend::Std:
    CI = std::make_unique<StdConditionImpl>(
        static_cast<StdMutexImpl &>(*Impl).raw());
    break;
  case Backend::Futex:
    CI = std::make_unique<FutexConditionImpl>(
        static_cast<FutexMutexImpl &>(*Impl));
    break;
  }
  AUTOSYNCH_CHECK(CI != nullptr, "invalid sync backend");
  // Condition's constructor is private; makeshift make_unique.
  return std::unique_ptr<Condition>(new Condition(std::move(CI)));
}

void Condition::await() {
  Awaits.fetch_add(1, std::memory_order_relaxed);
  Counters &G = Counters::global();
  G.onAwait();
  if (AUTOSYNCH_UNLIKELY(G.timingEnabled())) {
    uint64_t T0 = nowNs();
    Impl->await();
    G.addAwaitNs(nowNs() - T0);
  } else {
    Impl->await();
  }
  G.onWakeup();
}

void Condition::signal() {
  Signals.fetch_add(1, std::memory_order_relaxed);
  Counters::global().onSignal();
  Impl->signal();
}

void Condition::signalAll() {
  SignalAlls.fetch_add(1, std::memory_order_relaxed);
  Counters::global().onSignalAll();
  Impl->signalAll();
}

//===- sync/Counters.h - Signaling instrumentation counters ----*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide counters of synchronization events. The paper's argument is
/// quantitative — signalAll causes redundant wakeups and context switches —
/// so the substrate counts every await, signal, signalAll, and wakeup. The
/// benches and tests read these to verify, e.g., that the AutoSynch policies
/// never call signalAll (relay invariance, §4.2).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_SYNC_COUNTERS_H
#define AUTOSYNCH_SYNC_COUNTERS_H

#include <atomic>
#include <cstdint>

namespace autosynch::sync {

/// Snapshot of the global synchronization counters.
struct CountersSnapshot {
  uint64_t Awaits = 0;     ///< Condition::await calls (threads that blocked).
  uint64_t Signals = 0;    ///< Condition::signal calls.
  uint64_t SignalAlls = 0; ///< Condition::signalAll calls.
  uint64_t Wakeups = 0;    ///< await calls that returned (incl. spurious).
  uint64_t AwaitNs = 0;    ///< Time blocked in await (when timing enabled).
  uint64_t LockNs = 0;     ///< Time acquiring mutexes (when timing enabled).

  CountersSnapshot operator-(const CountersSnapshot &Rhs) const {
    return {Awaits - Rhs.Awaits,         Signals - Rhs.Signals,
            SignalAlls - Rhs.SignalAlls, Wakeups - Rhs.Wakeups,
            AwaitNs - Rhs.AwaitNs,       LockNs - Rhs.LockNs};
  }

  /// Synchronization-induced context-switch events: every block and every
  /// wakeup implies a scheduler transition. The Fig. 15 bench reports this
  /// when the OS context-switch counters are unavailable (sandboxed
  /// kernels).
  uint64_t contextSwitchEvents() const { return Awaits + Wakeups; }
};

/// Process-wide event counters, updated with relaxed atomics (cheap enough
/// to keep always on).
class Counters {
public:
  static Counters &global();

  void onAwait() { Awaits.fetch_add(1, std::memory_order_relaxed); }
  void onSignal() { Signals.fetch_add(1, std::memory_order_relaxed); }
  void onSignalAll() { SignalAlls.fetch_add(1, std::memory_order_relaxed); }
  void onWakeup() { Wakeups.fetch_add(1, std::memory_order_relaxed); }
  void addAwaitNs(uint64_t Ns) {
    AwaitNs.fetch_add(Ns, std::memory_order_relaxed);
  }
  void addLockNs(uint64_t Ns) {
    LockNs.fetch_add(Ns, std::memory_order_relaxed);
  }

  /// Per-phase wall timing of await/lock, for the Table 1 experiment.
  /// Costs two clock reads per operation; off by default.
  void enableTiming(bool On) {
    TimingEnabled.store(On, std::memory_order_relaxed);
  }
  bool timingEnabled() const {
    return TimingEnabled.load(std::memory_order_relaxed);
  }

  CountersSnapshot snapshot() const {
    return {Awaits.load(std::memory_order_relaxed),
            Signals.load(std::memory_order_relaxed),
            SignalAlls.load(std::memory_order_relaxed),
            Wakeups.load(std::memory_order_relaxed),
            AwaitNs.load(std::memory_order_relaxed),
            LockNs.load(std::memory_order_relaxed)};
  }

  void reset() {
    Awaits.store(0, std::memory_order_relaxed);
    Signals.store(0, std::memory_order_relaxed);
    SignalAlls.store(0, std::memory_order_relaxed);
    Wakeups.store(0, std::memory_order_relaxed);
    AwaitNs.store(0, std::memory_order_relaxed);
    LockNs.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Awaits{0};
  std::atomic<uint64_t> Signals{0};
  std::atomic<uint64_t> SignalAlls{0};
  std::atomic<uint64_t> Wakeups{0};
  std::atomic<uint64_t> AwaitNs{0};
  std::atomic<uint64_t> LockNs{0};
  std::atomic<bool> TimingEnabled{false};
};

/// Snapshot of the process-wide dirty-set relay counters.
struct RelayCountersSnapshot {
  uint64_t RelayCalls = 0;         ///< relaySignal() invocations.
  uint64_t DirtySkips = 0;         ///< Relays skipped: empty dirty set.
  uint64_t FilteredExprs = 0;      ///< Index entries skipped by read-set
                                   ///< intersection during relay scans.
  uint64_t StampShortCircuits = 0; ///< Predicate checks answered by the
                                   ///< false-stamp, no evaluation run.

  RelayCountersSnapshot operator-(const RelayCountersSnapshot &R) const {
    return {RelayCalls - R.RelayCalls, DirtySkips - R.DirtySkips,
            FilteredExprs - R.FilteredExprs,
            StampShortCircuits - R.StampShortCircuits};
  }
};

/// Process-wide counters of dirty-set relay behavior, aggregated across
/// every monitor (the per-monitor numbers live in ManagerStats). The
/// condition manager batches its lock-guarded stats into these atomics
/// every few dozen relays (and on destruction/reset) rather than touching
/// a shared cache line on every monitor exit; totals therefore trail the
/// per-monitor stats by at most one batch until the monitor flushes.
class RelayCounters {
public:
  static RelayCounters &global();

  /// Adds a per-monitor delta (see ConditionManager::flushRelayCounters).
  void add(const RelayCountersSnapshot &D) {
    RelayCalls.fetch_add(D.RelayCalls, std::memory_order_relaxed);
    DirtySkips.fetch_add(D.DirtySkips, std::memory_order_relaxed);
    FilteredExprs.fetch_add(D.FilteredExprs, std::memory_order_relaxed);
    StampShortCircuits.fetch_add(D.StampShortCircuits,
                                 std::memory_order_relaxed);
  }

  RelayCountersSnapshot snapshot() const {
    return {RelayCalls.load(std::memory_order_relaxed),
            DirtySkips.load(std::memory_order_relaxed),
            FilteredExprs.load(std::memory_order_relaxed),
            StampShortCircuits.load(std::memory_order_relaxed)};
  }

  void reset() {
    RelayCalls.store(0, std::memory_order_relaxed);
    DirtySkips.store(0, std::memory_order_relaxed);
    FilteredExprs.store(0, std::memory_order_relaxed);
    StampShortCircuits.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> RelayCalls{0};
  std::atomic<uint64_t> DirtySkips{0};
  std::atomic<uint64_t> FilteredExprs{0};
  std::atomic<uint64_t> StampShortCircuits{0};
};

/// Snapshot of the process-wide timed-wait counters.
struct TimedCountersSnapshot {
  uint64_t TimedWaits = 0;   ///< Timed waits that reached the blocking path.
  uint64_t Timeouts = 0;     ///< Timed waits that returned false on expiry.
  uint64_t Cancels = 0;      ///< Waits aborted through a CancelToken.
  uint64_t WheelWakeups = 0; ///< Expiry wakes issued by exit-path wheel
                             ///< advances (the lazy cascade noticing an
                             ///< expired waiter before its own bounded
                             ///< block returns).

  TimedCountersSnapshot operator-(const TimedCountersSnapshot &R) const {
    return {TimedWaits - R.TimedWaits, Timeouts - R.Timeouts,
            Cancels - R.Cancels, WheelWakeups - R.WheelWakeups};
  }
};

/// Process-wide counters of deadline-runtime behavior, aggregated across
/// every monitor. Fed in batches by the condition managers exactly like
/// RelayCounters (flushed every few dozen relays and at destruction/
/// reset), so the timed hot path touches no shared atomics either.
class TimedCounters {
public:
  static TimedCounters &global();

  void add(const TimedCountersSnapshot &D) {
    TimedWaits.fetch_add(D.TimedWaits, std::memory_order_relaxed);
    Timeouts.fetch_add(D.Timeouts, std::memory_order_relaxed);
    Cancels.fetch_add(D.Cancels, std::memory_order_relaxed);
    WheelWakeups.fetch_add(D.WheelWakeups, std::memory_order_relaxed);
  }

  TimedCountersSnapshot snapshot() const {
    return {TimedWaits.load(std::memory_order_relaxed),
            Timeouts.load(std::memory_order_relaxed),
            Cancels.load(std::memory_order_relaxed),
            WheelWakeups.load(std::memory_order_relaxed)};
  }

  void reset() {
    TimedWaits.store(0, std::memory_order_relaxed);
    Timeouts.store(0, std::memory_order_relaxed);
    Cancels.store(0, std::memory_order_relaxed);
    WheelWakeups.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> TimedWaits{0};
  std::atomic<uint64_t> Timeouts{0};
  std::atomic<uint64_t> Cancels{0};
  std::atomic<uint64_t> WheelWakeups{0};
};

} // namespace autosynch::sync

#endif // AUTOSYNCH_SYNC_COUNTERS_H

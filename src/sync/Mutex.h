//===- sync/Mutex.h - Lock/Condition substrate -----------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synchronization substrate the monitors are built on. The API mirrors
/// Java's Lock/Condition (the paper's substrate): a Mutex owns any number of
/// Conditions created by newCondition(); await/signal/signalAll must be
/// called while holding the mutex.
///
/// Two interchangeable backends:
///  * Backend::Std   — std::mutex + std::condition_variable.
///  * Backend::Futex — raw Linux futexes (Drepper-style mutex, sequence-
///                     counter condition variable).
///
/// Spurious wakeups are permitted by both backends; all users wait in
/// predicate-re-checking loops, exactly as the paper's monitors do.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_SYNC_MUTEX_H
#define AUTOSYNCH_SYNC_MUTEX_H

#include <atomic>
#include <cstdint>
#include <memory>

namespace autosynch::sync {

/// Selects the implementation of Mutex/Condition at construction time.
enum class Backend : uint8_t {
  Std,  ///< std::mutex / std::condition_variable.
  Futex ///< Raw Linux futex implementation.
};

/// Returns a human-readable backend name ("std" or "futex").
const char *backendName(Backend B);

/// Fault-injection hook for robustness tests: when \p N > 0, every Nth
/// Condition::await / awaitUntil across the process returns spuriously
/// (the mutex is genuinely released and re-acquired, no signal consumed)
/// instead of blocking. 0 — the default — disables injection; the hot
/// path then pays one relaxed load. Not for production use.
void setSpuriousWakeupPeriod(uint32_t N);
uint32_t spuriousWakeupPeriod();

/// RAII enable/restore for the spurious-wakeup hook (test scaffolding).
class SpuriousWakeupGuard {
public:
  explicit SpuriousWakeupGuard(uint32_t N) : Prev(spuriousWakeupPeriod()) {
    setSpuriousWakeupPeriod(N);
  }
  ~SpuriousWakeupGuard() { setSpuriousWakeupPeriod(Prev); }
  SpuriousWakeupGuard(const SpuriousWakeupGuard &) = delete;
  SpuriousWakeupGuard &operator=(const SpuriousWakeupGuard &) = delete;

private:
  uint32_t Prev;
};

namespace detail {

class MutexImpl {
public:
  virtual ~MutexImpl() = default;
  virtual void lock() = 0;
  virtual void unlock() = 0;
  virtual bool tryLock() = 0;
};

class ConditionImpl {
public:
  virtual ~ConditionImpl() = default;
  virtual void await() = 0;
  /// Timed wait against the wake epoch captured by the caller; see
  /// Condition::awaitUntil. Returns true iff the deadline passed.
  virtual bool awaitUntil(uint64_t DeadlineNs, uint64_t Epoch) = 0;
  /// Current wake epoch (bumped by every signal/signalAll).
  virtual uint64_t epoch() const = 0;
  virtual void signal() = 0;
  virtual void signalAll() = 0;
  /// Releases the mutex, yields, and re-acquires — a manufactured
  /// spurious wakeup for the fault-injection hook.
  virtual void spuriousWake() = 0;
};

} // namespace detail

class Condition;

/// A non-reentrant mutual-exclusion lock with Java's Lock shape.
class Mutex {
public:
  explicit Mutex(Backend B = Backend::Std);
  ~Mutex();
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock();
  void unlock();

  /// Attempts to acquire without blocking. Returns true on success.
  bool tryLock();

  /// Creates a condition variable bound to this mutex. The mutex must
  /// outlive the condition.
  std::unique_ptr<Condition> newCondition();

  Backend backend() const { return Kind; }

private:
  Backend Kind;
  std::unique_ptr<detail::MutexImpl> Impl;
};

/// A condition variable bound to a Mutex. await() requires the bound mutex
/// to be held by the calling thread. signal()/signalAll() may be called
/// with OR without the mutex held: both backends tolerate lock-free
/// notification (std::condition_variable by contract; the futex backend by
/// its sequence counter), which is what lets the monitor defer its relay
/// wakeup until after the monitor lock is released (no wake-then-block
/// convoy). The caller must still guarantee the Condition outlives any
/// in-flight lock-free signal.
class Condition {
public:
  /// Atomically releases the mutex and blocks until signaled (or a spurious
  /// wakeup); re-acquires the mutex before returning.
  void await();

  /// The condition's wake epoch: a counter both backends bump on every
  /// signal/signalAll. Timed waits capture it (under the mutex) *before*
  /// their final state checks; awaitUntil then returns immediately if the
  /// epoch has moved, so a wake issued between the capture and the block
  /// — the classic lost-notify window, which CancelToken::cancel and the
  /// timer wheel's lock-free expiry wakes would otherwise fall into — is
  /// never lost. Relaxed read; requires the mutex for the ordering
  /// guarantee above.
  uint64_t epoch() const;

  /// Atomically releases the mutex and blocks until the epoch advances
  /// past \p Epoch, the thread is woken (possibly spuriously), or the
  /// absolute monotonic deadline \p DeadlineNs (time::nowNs domain;
  /// UINT64_MAX = unbounded) passes; re-acquires the mutex before
  /// returning. Returns true iff the wait ended because the deadline
  /// passed — best effort: callers must re-check their predicate and
  /// clock either way.
  bool awaitUntil(uint64_t DeadlineNs, uint64_t Epoch);

  /// Wakes at least one waiting thread, if any are waiting.
  void signal();

  /// Wakes all waiting threads. Counted separately so benches can prove the
  /// AutoSynch policies never use it.
  void signalAll();

  /// Number of await calls on this condition.
  uint64_t awaitCount() const {
    return Awaits.load(std::memory_order_relaxed);
  }
  /// Number of signal calls on this condition.
  uint64_t signalCount() const {
    return Signals.load(std::memory_order_relaxed);
  }
  /// Number of signalAll calls on this condition.
  uint64_t signalAllCount() const {
    return SignalAlls.load(std::memory_order_relaxed);
  }

private:
  friend class Mutex;
  explicit Condition(std::unique_ptr<detail::ConditionImpl> Impl)
      : Impl(std::move(Impl)) {}

  std::unique_ptr<detail::ConditionImpl> Impl;
  // Relaxed atomics: signal()/signalAll() may run outside the mutex.
  std::atomic<uint64_t> Awaits{0};
  std::atomic<uint64_t> Signals{0};
  std::atomic<uint64_t> SignalAlls{0};
};

} // namespace autosynch::sync

#endif // AUTOSYNCH_SYNC_MUTEX_H

//===- sync/Counters.cpp - Signaling instrumentation counters -------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "sync/Counters.h"

using namespace autosynch::sync;

Counters &Counters::global() {
  static Counters Instance;
  return Instance;
}

RelayCounters &RelayCounters::global() {
  static RelayCounters Instance;
  return Instance;
}

TimedCounters &TimedCounters::global() {
  static TimedCounters Instance;
  return Instance;
}

//===- translate/Parser.cpp - Monitor-language parser -----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "translate/Parser.h"

#include "parse/Lexer.h"

#include <unordered_map>
#include <unordered_set>

using namespace autosynch;
using namespace autosynch::translate;

namespace {

/// Recursive-descent parser over the pre-lexed token stream. Expression
/// positions are parsed by slicing the source between the current token and
/// the statement's terminator and handing the slice to the predicate-
/// language parser with the method's symbol table.
class MonitorParser {
public:
  explicit MonitorParser(std::string_view Source) : Source(Source) {
    Lexer L(Source);
    // Materialize tokens with their source offsets so expression slices
    // can be cut from the original text.
    for (Token T = L.next();; T = L.next()) {
      Offsets.push_back(
          static_cast<size_t>(T.Spelling.data() - Source.data()));
      Tokens.push_back(T);
      if (T.is(TokenKind::Eof))
        break;
    }
  }

  ParseUnitResult run() {
    ParseUnitResult Result;
    while (!at(TokenKind::Eof) && Errors.size() < MaxErrors) {
      if (!at(TokenKind::KwMonitor)) {
        error("expected 'monitor'");
        break;
      }
      MonitorDecl M;
      if (parseMonitor(M))
        Result.Unit.Monitors.push_back(std::move(M));
      else
        break; // Structural recovery across monitors is not attempted.
    }
    if (Result.Unit.Monitors.empty() && Errors.empty())
      error("input declares no monitors");
    Result.Errors = std::move(Errors);
    if (!Result.Errors.empty())
      Result.Unit.Monitors.clear();
    return Result;
  }

private:
  static constexpr size_t MaxErrors = 20;

  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &tok(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return Tokens[I < Tokens.size() ? I : Tokens.size() - 1];
  }
  bool at(TokenKind K) const { return tok().is(K); }
  void advance() {
    if (Pos + 1 < Tokens.size())
      ++Pos;
  }

  bool expect(TokenKind K, const char *What) {
    if (at(K)) {
      advance();
      return true;
    }
    error(std::string("expected ") + What + ", got " +
          tokenKindName(tok().Kind));
    return false;
  }

  void error(const std::string &Message) {
    Errors.push_back(ParseError{tok().Line, tok().Col, Message});
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  bool parseType(TypeKind &Out) {
    if (at(TokenKind::KwInt)) {
      Out = TypeKind::Int;
      advance();
      return true;
    }
    if (at(TokenKind::KwBool)) {
      Out = TypeKind::Bool;
      advance();
      return true;
    }
    error("expected a type ('int' or 'bool')");
    return false;
  }

  bool parseName(std::string &Out, const char *What) {
    if (!at(TokenKind::Identifier)) {
      error(std::string("expected ") + What + ", got " +
            tokenKindName(tok().Kind));
      return false;
    }
    Out = std::string(tok().Spelling);
    // Names that would collide with the generated class's inherited
    // Monitor API are rejected up front.
    static const std::unordered_set<std::string> Reserved = {
        "waitUntil", "Region",  "Shared",       "local",
        "locals",    "lit",     "blit",         "synchronized",
        "registerPredicate",    "conditionManager",
        "arena",     "symbols", "config",       "Monitor"};
    if (Reserved.count(Out)) {
      error("'" + Out + "' is reserved by the autosynch runtime");
      return false;
    }
    advance();
    return true;
  }

  bool parseMonitor(MonitorDecl &M) {
    advance(); // 'monitor'
    if (!parseName(M.Name, "a monitor name"))
      return false;

    if (at(TokenKind::LParen)) {
      advance();
      if (!at(TokenKind::RParen) && !parseParamList(M.CtorParams))
        return false;
      if (!expect(TokenKind::RParen, "')'"))
        return false;
    }
    if (!expect(TokenKind::LBrace, "'{'"))
      return false;

    while (!at(TokenKind::RBrace) && !at(TokenKind::Eof) &&
           Errors.size() < MaxErrors) {
      if (at(TokenKind::KwShared)) {
        if (!parseSharedDecl(M))
          return false;
      } else if (at(TokenKind::KwMethod)) {
        if (!parseMethod(M))
          return false;
      } else {
        error("expected 'shared' or 'method'");
        return false;
      }
    }
    if (!expect(TokenKind::RBrace, "'}'"))
      return false;

    // Local names must have one type across methods: the runtime monitor
    // declares parsed-predicate locals monitor-wide by name.
    std::unordered_map<std::string, TypeKind> LocalTypes;
    for (const MethodDecl &Method : M.Methods) {
      for (const VarInfo &Info : Method.Syms->variables()) {
        if (Info.Scope != VarScope::Local)
          continue;
        auto [It, Inserted] = LocalTypes.emplace(Info.Name, Info.Type);
        if (!Inserted && It->second != Info.Type) {
          error("local variable '" + Info.Name +
                "' is declared with different types in different methods");
          return false;
        }
      }
    }
    return true;
  }

  bool parseParamList(std::vector<Param> &Params) {
    while (true) {
      Param P;
      if (!parseType(P.Type) || !parseName(P.Name, "a parameter name"))
        return false;
      Params.push_back(std::move(P));
      if (!at(TokenKind::Comma))
        return true;
      advance();
    }
  }

  bool parseSharedDecl(MonitorDecl &M) {
    advance(); // 'shared'
    SharedDecl D;
    if (!parseType(D.Type) || !parseName(D.Name, "a variable name"))
      return false;

    for (const SharedDecl &Existing : M.Shared) {
      if (Existing.Name == D.Name) {
        error("redeclaration of shared variable '" + D.Name + "'");
        return false;
      }
    }
    for (const Param &P : M.CtorParams) {
      if (P.Name == D.Name) {
        error("shared variable '" + D.Name +
              "' collides with a constructor parameter");
        return false;
      }
    }

    if (at(TokenKind::Assign)) {
      advance();
      // Initializers are literals (optionally negated ints).
      bool Negative = false;
      if (at(TokenKind::Minus)) {
        Negative = true;
        advance();
      }
      if (at(TokenKind::IntLiteral) && D.Type == TypeKind::Int) {
        D.IntInit = Negative ? -tok().IntValue : tok().IntValue;
        advance();
      } else if ((at(TokenKind::KwTrue) || at(TokenKind::KwFalse)) &&
                 D.Type == TypeKind::Bool && !Negative) {
        D.BoolInit = at(TokenKind::KwTrue);
        advance();
      } else {
        error("shared initializer must be a literal of the declared type");
        return false;
      }
    }
    if (!expect(TokenKind::Semicolon, "';'"))
      return false;
    M.Shared.push_back(std::move(D));
    return true;
  }

  bool parseMethod(MonitorDecl &M) {
    advance(); // 'method'
    MethodDecl Method;
    Method.Arena = std::make_unique<ExprArena>();
    Method.Syms = std::make_unique<SymbolTable>();
    if (!parseName(Method.Name, "a method name"))
      return false;
    for (const MethodDecl &Existing : M.Methods) {
      if (Existing.Name == Method.Name) {
        error("redeclaration of method '" + Method.Name + "'");
        return false;
      }
    }

    if (!expect(TokenKind::LParen, "'('"))
      return false;
    if (!at(TokenKind::RParen) && !parseParamList(Method.Params))
      return false;
    if (!expect(TokenKind::RParen, "')'"))
      return false;

    if (at(TokenKind::KwReturns)) {
      advance();
      Method.HasReturn = true;
      if (!parseType(Method.ReturnType))
        return false;
    }

    // Populate the method's symbol table: monitor state first (shared
    // scope), then parameters (local scope — the paper's globalization
    // boundary).
    for (const Param &P : M.CtorParams)
      Method.Syms->declare(P.Name, P.Type, VarScope::Shared);
    for (const SharedDecl &D : M.Shared)
      Method.Syms->declare(D.Name, D.Type, VarScope::Shared);
    for (Param &P : Method.Params) {
      if (Method.Syms->lookup(P.Name)) {
        error("parameter '" + P.Name + "' shadows another variable");
        return false;
      }
      P.Id = Method.Syms->declare(P.Name, P.Type, VarScope::Local);
    }

    if (!expect(TokenKind::LBrace, "'{'"))
      return false;
    CurrentMethod = &Method;
    bool Ok = parseStmtList(Method.Body, TokenKind::RBrace);
    CurrentMethod = nullptr;
    if (!Ok)
      return false;
    if (!expect(TokenKind::RBrace, "'}'"))
      return false;
    M.Methods.push_back(std::move(Method));
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  bool parseStmtList(std::vector<StmtPtr> &Out, TokenKind Terminator) {
    while (!at(Terminator) && !at(TokenKind::Eof) &&
           Errors.size() < MaxErrors) {
      StmtPtr S = parseStmt();
      if (!S)
        return false;
      Out.push_back(std::move(S));
    }
    return true;
  }

  StmtPtr parseStmt() {
    switch (tok().Kind) {
    case TokenKind::KwWaituntil:
      return parseWaitUntil();
    case TokenKind::KwInt:
    case TokenKind::KwBool:
      return parseLocalDecl();
    case TokenKind::KwIf:
      return parseIf();
    case TokenKind::KwWhile:
      return parseWhile();
    case TokenKind::KwReturn:
      return parseReturn();
    case TokenKind::LBrace:
      return parseBlock();
    case TokenKind::Identifier:
      return parseAssign();
    default:
      error(std::string("expected a statement, got ") +
            tokenKindName(tok().Kind));
      return nullptr;
    }
  }

  StmtPtr parseWaitUntil() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::WaitUntil;
    S->Line = tok().Line;
    advance(); // 'waituntil'
    if (!expect(TokenKind::LParen, "'('"))
      return nullptr;
    S->Expr = parseExprUntilCloseParen();
    if (!S->Expr)
      return nullptr;
    if (S->Expr->type() != TypeKind::Bool) {
      error("waituntil predicate must be bool-typed");
      return nullptr;
    }
    if (!expect(TokenKind::RParen, "')'") ||
        !expect(TokenKind::Semicolon, "';'"))
      return nullptr;
    return S;
  }

  StmtPtr parseLocalDecl() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::LocalDecl;
    S->Line = tok().Line;
    TypeKind Ty;
    std::string Name;
    if (!parseType(Ty) || !parseName(Name, "a variable name"))
      return nullptr;
    if (CurrentMethod->Syms->lookup(Name)) {
      error("redeclaration of '" + Name + "'");
      return nullptr;
    }
    if (!expect(TokenKind::Assign, "'='"))
      return nullptr;
    S->Expr = parseExprUntilSemicolon();
    if (!S->Expr)
      return nullptr;
    if (S->Expr->type() != Ty) {
      error("initializer type does not match '" + Name + "'");
      return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "';'"))
      return nullptr;
    // Declare after parsing the initializer: `int x = x;` is an error.
    S->Target = CurrentMethod->Syms->declare(Name, Ty, VarScope::Local);
    return S;
  }

  StmtPtr parseAssign() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Assign;
    S->Line = tok().Line;
    std::string Name(tok().Spelling);
    const VarInfo *Info = CurrentMethod->Syms->lookup(Name);
    if (!Info) {
      error("assignment to undeclared variable '" + Name + "'");
      return nullptr;
    }
    S->Target = Info->Id;
    advance();
    if (!expect(TokenKind::Assign, "'='"))
      return nullptr;
    S->Expr = parseExprUntilSemicolon();
    if (!S->Expr)
      return nullptr;
    if (S->Expr->type() != Info->Type) {
      error("assigned value type does not match '" + Name + "'");
      return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "';'"))
      return nullptr;
    return S;
  }

  StmtPtr parseIf() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::If;
    S->Line = tok().Line;
    advance(); // 'if'
    if (!expect(TokenKind::LParen, "'('"))
      return nullptr;
    S->Expr = parseExprUntilCloseParen();
    if (!S->Expr)
      return nullptr;
    if (S->Expr->type() != TypeKind::Bool) {
      error("if condition must be bool-typed");
      return nullptr;
    }
    if (!expect(TokenKind::RParen, "')'"))
      return nullptr;
    StmtPtr Then = parseStmt();
    if (!Then)
      return nullptr;
    S->Children.push_back(std::move(Then));
    if (at(TokenKind::KwElse)) {
      advance();
      StmtPtr Else = parseStmt();
      if (!Else)
        return nullptr;
      S->Children.push_back(std::move(Else));
    }
    return S;
  }

  StmtPtr parseWhile() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::While;
    S->Line = tok().Line;
    advance(); // 'while'
    if (!expect(TokenKind::LParen, "'('"))
      return nullptr;
    S->Expr = parseExprUntilCloseParen();
    if (!S->Expr)
      return nullptr;
    if (S->Expr->type() != TypeKind::Bool) {
      error("while condition must be bool-typed");
      return nullptr;
    }
    if (!expect(TokenKind::RParen, "')'"))
      return nullptr;
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    S->Children.push_back(std::move(Body));
    return S;
  }

  StmtPtr parseReturn() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Return;
    S->Line = tok().Line;
    advance(); // 'return'
    if (!at(TokenKind::Semicolon)) {
      S->Expr = parseExprUntilSemicolon();
      if (!S->Expr)
        return nullptr;
    }
    if (CurrentMethod->HasReturn) {
      if (!S->Expr) {
        error("method declares a return type; 'return' needs a value");
        return nullptr;
      }
      if (S->Expr->type() != CurrentMethod->ReturnType) {
        error("return value type does not match the declared return type");
        return nullptr;
      }
    } else if (S->Expr) {
      error("void method cannot return a value");
      return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "';'"))
      return nullptr;
    return S;
  }

  StmtPtr parseBlock() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Block;
    S->Line = tok().Line;
    advance(); // '{'
    if (!parseStmtList(S->Children, TokenKind::RBrace))
      return nullptr;
    if (!expect(TokenKind::RBrace, "'}'"))
      return nullptr;
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Expression slices
  //===--------------------------------------------------------------------===//

  /// Parses the expression starting at the current token and ending just
  /// before the matching ')' of an already-consumed '('. Leaves the parser
  /// positioned at that ')'.
  ExprRef parseExprUntilCloseParen() {
    size_t End = Pos;
    int Depth = 0;
    while (End < Tokens.size() && !Tokens[End].is(TokenKind::Eof)) {
      if (Tokens[End].is(TokenKind::LParen)) {
        ++Depth;
      } else if (Tokens[End].is(TokenKind::RParen)) {
        if (Depth == 0)
          break;
        --Depth;
      }
      ++End;
    }
    return parseSlice(End);
  }

  /// Parses the expression ending just before the next ';' at paren depth
  /// zero. Leaves the parser positioned at that ';'.
  ExprRef parseExprUntilSemicolon() {
    size_t End = Pos;
    int Depth = 0;
    while (End < Tokens.size() && !Tokens[End].is(TokenKind::Eof)) {
      if (Tokens[End].is(TokenKind::LParen))
        ++Depth;
      else if (Tokens[End].is(TokenKind::RParen))
        --Depth;
      else if (Tokens[End].is(TokenKind::Semicolon) && Depth == 0)
        break;
      ++End;
    }
    return parseSlice(End);
  }

  /// Hands Source[Pos..End) to the predicate-language parser under the
  /// current method's symbol table, then advances past the slice.
  ExprRef parseSlice(size_t End) {
    AUTOSYNCH_CHECK(CurrentMethod, "expression outside a method body");
    if (End == Pos) {
      error("expected an expression");
      return nullptr;
    }
    size_t Begin = Offsets[Pos];
    size_t Stop = Offsets[End];
    std::string_view Slice = Source.substr(Begin, Stop - Begin);
    int BaseLine = Tokens[Pos].Line;
    int BaseCol = Tokens[Pos].Col;

    PredicateParseResult R = parseExpression(Slice, *CurrentMethod->Arena,
                                             *CurrentMethod->Syms);
    if (!R.ok()) {
      // Rebase the slice-relative location onto the file.
      int Line = BaseLine + R.Error.Line - 1;
      int Col = R.Error.Line == 1 ? BaseCol + R.Error.Col - 1 : R.Error.Col;
      Errors.push_back(ParseError{Line, Col, R.Error.Message});
      return nullptr;
    }
    Pos = End;
    return R.Expr;
  }

  std::string_view Source;
  std::vector<Token> Tokens;
  std::vector<size_t> Offsets;
  size_t Pos = 0;
  MethodDecl *CurrentMethod = nullptr;
  std::vector<ParseError> Errors;
};

} // namespace

ParseUnitResult translate::parseMonitorFile(std::string_view Source) {
  return MonitorParser(Source).run();
}

//===- translate/Parser.h - Monitor-language parser ------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser and semantic analysis for the `.asynch` monitor language. Parsing
/// resolves identifiers and checks types as it goes (the preprocessor's
/// analysis half, paper Fig. 5: classify shared vs. local variables so
/// globalization and registration can be generated).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TRANSLATE_PARSER_H
#define AUTOSYNCH_TRANSLATE_PARSER_H

#include "parse/PredicateParser.h"
#include "translate/Ast.h"

#include <string_view>

namespace autosynch::translate {

/// Outcome of parsing a `.asynch` source. On failure Unit is empty and
/// Errors lists every diagnostic found before the parser gave up.
struct ParseUnitResult {
  TranslationUnit Unit;
  std::vector<ParseError> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Parses and semantically checks \p Source.
ParseUnitResult parseMonitorFile(std::string_view Source);

} // namespace autosynch::translate

#endif // AUTOSYNCH_TRANSLATE_PARSER_H

//===- translate/Translate.h - One-call translation API --------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autosynchc entry point: `.asynch` monitor source in, generated C++
/// header out — the paper's Fig. 2 preprocessor as a library call.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TRANSLATE_TRANSLATE_H
#define AUTOSYNCH_TRANSLATE_TRANSLATE_H

#include "translate/Parser.h"

#include <string>

namespace autosynch::translate {

/// Result of translating one source file.
struct TranslateResult {
  std::string Cpp; ///< Generated header text (empty on failure).
  std::vector<ParseError> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Translates `.asynch` \p Source; \p SourceName is used in diagnostics
/// and the generated banner/guard.
TranslateResult translateMonitorSource(std::string_view Source,
                                       std::string_view SourceName);

} // namespace autosynch::translate

#endif // AUTOSYNCH_TRANSLATE_TRANSLATE_H

//===- translate/Translate.cpp - One-call translation API -------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "translate/Translate.h"

#include "translate/CodeGen.h"

using namespace autosynch;
using namespace autosynch::translate;

TranslateResult
translate::translateMonitorSource(std::string_view Source,
                                  std::string_view SourceName) {
  TranslateResult Result;
  ParseUnitResult Parsed = parseMonitorFile(Source);
  if (!Parsed.ok()) {
    Result.Errors = std::move(Parsed.Errors);
    return Result;
  }
  Result.Cpp = generateCpp(Parsed.Unit, SourceName);
  return Result;
}

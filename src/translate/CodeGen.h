//===- translate/CodeGen.h - C++ code generation ---------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The back half of the autosynchc translator (the paper's preprocessor,
/// Fig. 2): emits one C++ class per monitor declaration, deriving
/// autosynch::Monitor. Mirrors the paper's Fig. 5/6 transformation:
///
///  * shared declarations become Shared<T> members (registered monitor
///    state);
///  * every method body is wrapped in a Region (lock/unlock insertion);
///  * `waituntil(P)` becomes `waitUntil("P", locals()...bindings...)`,
///    carrying exactly the local variables P mentions — the runtime
///    globalizes them per call (§4.1);
///  * static shared predicates are registered eagerly in the constructor
///    (Fig. 5).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TRANSLATE_CODEGEN_H
#define AUTOSYNCH_TRANSLATE_CODEGEN_H

#include "translate/Ast.h"

#include <string>

namespace autosynch::translate {

/// Renders the generated C++ header for \p Unit. \p SourceName appears in
/// the banner and include guard.
std::string generateCpp(const TranslationUnit &Unit,
                        std::string_view SourceName);

} // namespace autosynch::translate

#endif // AUTOSYNCH_TRANSLATE_CODEGEN_H

//===- translate/Ast.h - Monitor-language AST ------------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax of the AutoSynch monitor language — the input of the
/// `autosynchc` source-to-source translator, our reproduction of the
/// paper's JavaCC preprocessor (Fig. 2). A `.asynch` file declares
/// monitors in the paper's Fig. 1 style:
///
/// \code
///   monitor BoundedBuffer(int capacity) {
///     shared int count = 0;
///
///     method put(int items) {
///       waituntil(count + items <= capacity);
///       count = count + items;
///     }
///
///     method take(int num) returns int {
///       waituntil(count >= num);
///       count = count - num;
///       return num;
///     }
///   }
/// \endcode
///
/// Expressions are the shared predicate language (expr/); each method owns
/// an ExprArena + SymbolTable so identical names in different methods do
/// not collide.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TRANSLATE_AST_H
#define AUTOSYNCH_TRANSLATE_AST_H

#include "expr/ExprArena.h"
#include "expr/SymbolTable.h"

#include <memory>
#include <string>
#include <vector>

namespace autosynch::translate {

/// Statement kinds of the method body language.
enum class StmtKind : uint8_t {
  WaitUntil, ///< waituntil(P);
  Assign,    ///< name = expr;
  LocalDecl, ///< int name = expr; | bool name = expr;
  If,        ///< if (cond) stmt [else stmt]
  While,     ///< while (cond) stmt
  Return,    ///< return [expr];
  Block      ///< { stmt* }
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind Kind;
  int Line = 0;

  /// WaitUntil / Return (may be null) / If / While condition / Assign RHS /
  /// LocalDecl initializer.
  ExprRef Expr = nullptr;

  /// Assign target or LocalDecl name.
  VarId Target = 0;

  /// If: [then, else?]; While: [body]; Block: children.
  std::vector<StmtPtr> Children;
};

/// A constructor or method parameter.
struct Param {
  std::string Name;
  TypeKind Type = TypeKind::Int;
  VarId Id = 0;
};

struct MethodDecl {
  std::string Name;
  std::vector<Param> Params;
  bool HasReturn = false;
  TypeKind ReturnType = TypeKind::Int;
  std::vector<StmtPtr> Body;

  /// Per-method expression context: shared variables (re-declared here
  /// with per-method ids) plus this method's params and locals.
  std::unique_ptr<ExprArena> Arena;
  std::unique_ptr<SymbolTable> Syms;
};

struct SharedDecl {
  std::string Name;
  TypeKind Type = TypeKind::Int;
  /// Initializer literal; shared initializers are compile-time constants.
  int64_t IntInit = 0;
  bool BoolInit = false;
};

struct MonitorDecl {
  std::string Name;
  std::vector<Param> CtorParams; ///< Become constant shared variables.
  std::vector<SharedDecl> Shared;
  std::vector<MethodDecl> Methods;
};

/// A parsed `.asynch` translation unit.
struct TranslationUnit {
  std::vector<MonitorDecl> Monitors;
};

} // namespace autosynch::translate

#endif // AUTOSYNCH_TRANSLATE_AST_H

//===- tag/Tag.cpp - Predicate tags (paper Section 4.3) --------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "tag/Tag.h"

#include "dnf/CanonicalAtom.h"
#include "expr/Printer.h"
#include "expr/Subst.h"

#include <algorithm>

using namespace autosynch;

const char *autosynch::tagKindName(TagKind K) {
  switch (K) {
  case TagKind::Equivalence:
    return "equivalence";
  case TagKind::Threshold:
    return "threshold";
  case TagKind::None:
    return "none";
  }
  AUTOSYNCH_UNREACHABLE("invalid TagKind");
}

std::string Tag::toString(const SymbolTable &Syms) const {
  if (Kind == TagKind::None)
    return "(none)";
  std::string S = "(";
  S += tagKindName(Kind);
  S += ", ";
  S += printExpr(SharedExpr, Syms);
  S += ", ";
  S += std::to_string(Key);
  if (Kind == TagKind::Threshold) {
    S += ", ";
    S += exprKindSpelling(Op);
  }
  S += ")";
  return S;
}

namespace {

/// True when every variable in \p E is Shared-scoped (tags are only usable
/// when any thread in the monitor can evaluate the shared expression).
bool allShared(ExprRef E, const SymbolTable &Syms) {
  return !isComplex(E, Syms);
}

/// Tries to view \p Atom as an equivalence or threshold over a shared
/// linear form; also recognizes boolean shared variables (`b`, `!b`) as
/// equivalences with keys 1/0.
bool classifyAtom(ExprArena &Arena, ExprRef Atom, const SymbolTable &Syms,
                  Tag &Out) {
  // Boolean variable forms.
  if (Atom->kind() == ExprKind::Var && Atom->type() == TypeKind::Bool) {
    if (!Syms.isShared(Atom->varId()))
      return false;
    Out = Tag{TagKind::Equivalence, Atom, 1, ExprKind::Eq};
    return true;
  }
  if (Atom->kind() == ExprKind::Not &&
      Atom->lhs()->kind() == ExprKind::Var) {
    if (!Syms.isShared(Atom->lhs()->varId()))
      return false;
    Out = Tag{TagKind::Equivalence, Atom->lhs(), 0, ExprKind::Eq};
    return true;
  }

  AtomCanonResult R = canonicalizeAtom(Atom);
  if (R.Kind != AtomCanonKind::Atom)
    return false;
  ExprRef Shared = linearFormToExpr(Arena, R.Atom.Lhs);
  if (!allShared(Shared, Syms))
    return false;

  switch (R.Atom.Op) {
  case ExprKind::Eq:
    Out = Tag{TagKind::Equivalence, Shared, R.Atom.Rhs, ExprKind::Eq};
    return true;
  case ExprKind::Le:
  case ExprKind::Ge:
  case ExprKind::Lt:
  case ExprKind::Gt:
    Out = Tag{TagKind::Threshold, Shared, R.Atom.Rhs, R.Atom.Op};
    return true;
  default:
    // Ne is neither an equivalence nor a threshold (paper Defs. 6-7).
    return false;
  }
}

} // namespace

Tag autosynch::deriveTag(ExprArena &Arena, const Conjunction &C,
                         const SymbolTable &Syms) {
  // Paper Fig. 3: prefer an equivalence atom; fall back to a threshold
  // atom; otherwise None. Only one tag per conjunction — more would not
  // speed up the search (§4.3.1).
  Tag Threshold;
  bool HaveThreshold = false;

  for (ExprRef Atom : C.Atoms) {
    Tag T;
    if (!classifyAtom(Arena, Atom, Syms, T))
      continue;
    if (T.Kind == TagKind::Equivalence)
      return T;
    if (!HaveThreshold) {
      Threshold = T;
      HaveThreshold = true;
    }
  }
  return HaveThreshold ? Threshold : Tag{};
}

std::vector<Tag> autosynch::deriveTags(ExprArena &Arena, const Dnf &D,
                                       const SymbolTable &Syms) {
  std::vector<Tag> Tags;
  for (const Conjunction &C : D.Conjs) {
    Tag T = deriveTag(Arena, C, Syms);
    if (std::find(Tags.begin(), Tags.end(), T) == Tags.end())
      Tags.push_back(T);
  }
  return Tags;
}

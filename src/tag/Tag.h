//===- tag/Tag.h - Predicate tags (paper Section 4.3) ----------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predicate tags. A tag is the paper's four-tuple (M, expr, key, op)
/// (Definition 8): M ∈ {Equivalence, Threshold, None}; expr is a shared
/// expression; key is the globalized local-expression value; op is the
/// threshold comparison. One tag is assigned per DNF conjunction with
/// priority Equivalence > Threshold > None (Fig. 3), because an equivalence
/// tag prunes the search space hardest.
///
/// Because registration happens after globalization and canonicalization,
/// the tagged atoms here have the shape `linear-shared-expr op constant`;
/// boolean shared variables `b` / `!b` are tagged as equivalences with keys
/// 1 / 0.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TAG_TAG_H
#define AUTOSYNCH_TAG_TAG_H

#include "dnf/Dnf.h"
#include "expr/SymbolTable.h"

#include <cstdint>
#include <string>
#include <vector>

namespace autosynch {

/// The tag's mode M (paper Definition 8).
enum class TagKind : uint8_t { Equivalence, Threshold, None };

/// Returns "equivalence", "threshold", or "none".
const char *tagKindName(TagKind K);

/// A predicate tag. For None tags, SharedExpr is null and Key/Op are
/// meaningless (the paper's ⊥).
struct Tag {
  TagKind Kind = TagKind::None;
  /// The canonical shared expression (interned; pointer identity groups
  /// tags of the same expression, as the paper's per-expression structures
  /// require).
  ExprRef SharedExpr = nullptr;
  /// Globalized local-expression value.
  int64_t Key = 0;
  /// For Threshold tags: Le, Ge (canonical), or Lt, Gt (accepted for
  /// generality). Unused otherwise.
  ExprKind Op = ExprKind::Eq;

  bool operator==(const Tag &Rhs) const {
    return Kind == Rhs.Kind && SharedExpr == Rhs.SharedExpr &&
           Key == Rhs.Key && Op == Rhs.Op;
  }

  std::string toString(const SymbolTable &Syms) const;
};

/// Derives the tag of one conjunction (paper Fig. 3): the first equivalence
/// atom wins, else the first threshold atom, else None. Atoms mentioning
/// local variables are not taggable (the caller globalizes first; the check
/// is defensive).
Tag deriveTag(ExprArena &Arena, const Conjunction &C,
              const SymbolTable &Syms);

/// Derives one tag per conjunction of \p D and deduplicates (the paper
/// notes multiple conjunctions may share a tag; indices store each record
/// once per distinct tag).
std::vector<Tag> deriveTags(ExprArena &Arena, const Dnf &D,
                            const SymbolTable &Syms);

} // namespace autosynch

#endif // AUTOSYNCH_TAG_TAG_H

//===- tag/TagIndex.h - Per-expression tag indices (paper Fig. 7) -*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The condition manager's tag storage (paper Fig. 7): for every distinct
/// shared expression, an equivalence hash table keyed by the globalized
/// value, plus a lower-bound min-heap and an upper-bound max-heap of
/// threshold tags; untaggable predicates go to the None list and are
/// scanned exhaustively, last.
///
/// findTrue() is the search half of relay signaling: given the monitor's
/// current state it returns some registered record whose predicate is true,
/// or null — with as few predicate evaluations as the tags allow.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TAG_TAGINDEX_H
#define AUTOSYNCH_TAG_TAGINDEX_H

#include "expr/VarSet.h"
#include "tag/Tag.h"
#include "tag/ThresholdHeap.h"

#include <unordered_map>

namespace autosynch {

/// Tag-directed index of records (registered predicates). RecordT is
/// supplied by the condition manager; tests instantiate it with a stub.
///
/// RecordT must expose a `size_t NoneIdx` member initialized to
/// TagIndex::InvalidPos — the index stores a record's position in the None
/// list intrusively, so None-tag activation/deactivation does no hashing —
/// and a `VarSet ReadSet` member naming the shared variables the record's
/// predicate reads. Each per-expression group maintains a *cover set*, the
/// union of the read sets of every record added to it: findTrue can then
/// skip whole groups whose cover cannot intersect the caller's dirty set.
/// The cover is not shrunk on remove (stale bits only widen the scan,
/// never lose one) and dies with the group when its last tag is removed.
template <typename RecordT> class TagIndex {
public:
  static constexpr size_t InvalidPos = static_cast<size_t>(-1);

  /// Registers \p R under \p T.
  void add(const Tag &T, RecordT *R) {
    if (T.Kind == TagKind::None) {
      AUTOSYNCH_CHECK(R->NoneIdx == InvalidPos,
                      "record already in the None list");
      R->NoneIdx = NoneList.size();
      NoneList.push_back(R);
      return;
    }

    PerExpr &P = byExpr(T.SharedExpr);
    P.Cover.unionWith(R->ReadSet);
    if (T.Kind == TagKind::Equivalence) {
      P.Eq[T.Key].push_back(R);
      return;
    }
    heapFor(P, T).add(T.Key, isStrictOp(T.Op), R);
  }

  /// Unregisters \p R from \p T (must match a prior add).
  void remove(const Tag &T, RecordT *R) {
    if (T.Kind == TagKind::None) {
      size_t Pos = R->NoneIdx;
      AUTOSYNCH_CHECK(Pos < NoneList.size() && NoneList[Pos] == R,
                      "record not in the None list");
      NoneList[Pos] = NoneList.back();
      NoneList[Pos]->NoneIdx = Pos;
      NoneList.pop_back();
      R->NoneIdx = InvalidPos;
      return;
    }

    auto ExprIt = Exprs.find(T.SharedExpr);
    AUTOSYNCH_CHECK(ExprIt != Exprs.end(), "removing an unregistered tag");
    PerExpr &P = ExprIt->second;
    if (T.Kind == TagKind::Equivalence) {
      auto BucketIt = P.Eq.find(T.Key);
      AUTOSYNCH_CHECK(BucketIt != P.Eq.end(),
                      "removing an unregistered equivalence tag");
      std::vector<RecordT *> &Bucket = BucketIt->second;
      auto Pos = std::find(Bucket.begin(), Bucket.end(), R);
      AUTOSYNCH_CHECK(Pos != Bucket.end(),
                      "removing an unregistered record");
      *Pos = Bucket.back();
      Bucket.pop_back();
      if (Bucket.empty())
        P.Eq.erase(BucketIt);
    } else {
      heapFor(P, T).remove(T.Key, isStrictOp(T.Op), R);
    }
    if (P.Eq.empty() && P.LowerBound.empty() && P.UpperBound.empty())
      Exprs.erase(ExprIt);
  }

  /// Searches for a record whose predicate is true.
  ///
  /// \p EvalShared maps a shared expression to its current int64 value
  /// (bool expressions as 0/1); \p IsTrue is the full predicate check.
  /// Order (paper Fig. 7): per shared expression, the equivalence bucket
  /// for the current value, then the two threshold heaps; finally the None
  /// list, exhaustively.
  ///
  /// With \p Dirty set, only entries whose read sets intersect it are
  /// visited: per-expression groups are pruned through their cover sets,
  /// None-list records individually. The caller guarantees every record
  /// whose read set misses \p Dirty is known false (the dirty-set relay
  /// invariant), so pruned entries cannot be the answer.
  template <typename EvalSharedFn, typename IsTrueFn>
  RecordT *findTrue(EvalSharedFn &&EvalShared, IsTrueFn &&IsTrue,
                    TagSearchStats *Stats = nullptr,
                    const VarSet *Dirty = nullptr) {
    for (auto &[SharedExpr, P] : Exprs) {
      if (Dirty && !Dirty->intersects(P.Cover)) {
        if (Stats)
          ++Stats->FilteredExprs;
        continue;
      }
      int64_t V = EvalShared(SharedExpr);
      if (Stats)
        ++Stats->SharedExprEvals;

      // Equivalence hash: at most one bucket can be true for this value
      // (§4.3.2), found in O(1).
      if (!P.Eq.empty()) {
        if (Stats)
          ++Stats->EqLookups;
        auto BucketIt = P.Eq.find(V);
        if (BucketIt != P.Eq.end()) {
          for (RecordT *R : BucketIt->second) {
            if (Stats)
              ++Stats->PredicateChecks;
            if (IsTrue(R))
              return R;
          }
        }
      }

      if (RecordT *R = P.LowerBound.search(V, IsTrue, Stats))
        return R;
      if (RecordT *R = P.UpperBound.search(V, IsTrue, Stats))
        return R;
    }

    // Exhaustive fallback over untaggable predicates.
    for (RecordT *R : NoneList) {
      if (Dirty && !Dirty->intersects(R->ReadSet)) {
        if (Stats)
          ++Stats->FilteredExprs;
        continue;
      }
      if (Stats) {
        ++Stats->NoneScans;
        ++Stats->PredicateChecks;
      }
      if (IsTrue(R))
        return R;
    }
    return nullptr;
  }

  /// Number of distinct shared expressions currently indexed.
  size_t numSharedExprs() const { return Exprs.size(); }
  /// Number of records in the None list.
  size_t noneListSize() const { return NoneList.size(); }
  bool empty() const { return Exprs.empty() && NoneList.empty(); }

private:
  struct PerExpr {
    /// Union of the read sets of every record added under this expression
    /// (grows only; see class comment).
    VarSet Cover;
    std::unordered_map<int64_t, std::vector<RecordT *>> Eq;
    ThresholdHeap<RecordT> LowerBound{
        ThresholdHeap<RecordT>::Direction::LowerBound};
    ThresholdHeap<RecordT> UpperBound{
        ThresholdHeap<RecordT>::Direction::UpperBound};
  };

  static bool isStrictOp(ExprKind Op) {
    return Op == ExprKind::Lt || Op == ExprKind::Gt;
  }

  static bool isLowerBoundOp(ExprKind Op) {
    return Op == ExprKind::Ge || Op == ExprKind::Gt;
  }

  ThresholdHeap<RecordT> &heapFor(PerExpr &P, const Tag &T) {
    AUTOSYNCH_CHECK(T.Kind == TagKind::Threshold,
                    "heapFor requires a threshold tag");
    return isLowerBoundOp(T.Op) ? P.LowerBound : P.UpperBound;
  }

  PerExpr &byExpr(ExprRef SharedExpr) { return Exprs[SharedExpr]; }

  std::unordered_map<ExprRef, PerExpr> Exprs;
  std::vector<RecordT *> NoneList;
};

} // namespace autosynch

#endif // AUTOSYNCH_TAG_TAGINDEX_H

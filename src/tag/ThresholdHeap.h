//===- tag/ThresholdHeap.h - Threshold-tag heaps (paper Fig. 4) -*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's threshold-tag heap (§4.3.2, Fig. 4). For one shared
/// expression, lower-bound tags (`expr >= k`, `expr > k`) live in a
/// min-heap: if the root tag (smallest k) is false under the current value,
/// every descendant is false too, so the scan stops after one comparison.
/// Upper-bound tags (`<=`, `<`) mirror this with a max-heap.
///
/// Tie-breaking follows the paper exactly: for equal keys, `>=` is treated
/// as smaller than `>` in the min-heap (it is true for more values, so it
/// must be examined first); dually `<=` precedes `<` in the max-heap.
///
/// The search implements Fig. 4's temporary-removal loop: when a true root
/// tag yields no true predicate, the node is popped into a backup list so
/// the next-priority tag (which may also be true) becomes visible; all
/// backups are re-inserted before returning.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TAG_THRESHOLDHEAP_H
#define AUTOSYNCH_TAG_THRESHOLDHEAP_H

#include "support/Check.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

namespace autosynch {

/// Statistics of one or more tag searches, reported by benches and used by
/// tests to pin down pruning behaviour.
struct TagSearchStats {
  uint64_t SharedExprEvals = 0; ///< Shared expressions evaluated.
  uint64_t EqLookups = 0;       ///< Equivalence hash probes.
  uint64_t HeapVisits = 0;      ///< Threshold heap nodes examined.
  uint64_t PredicateChecks = 0; ///< Predicate checks issued. Under the
                                ///< DirtySet relay filter a check may be
                                ///< answered by the record's false-stamp
                                ///< without an evaluation, so actual
                                ///< evaluations are PredicateChecks minus
                                ///< ManagerStats::StampShortCircuits.
  uint64_t NoneScans = 0;       ///< Records checked in the None list.
  uint64_t FilteredExprs = 0;   ///< Index entries (per-expression groups,
                                ///< None/linear-scan records) skipped
                                ///< because their read set cannot
                                ///< intersect the relay dirty set.
  uint64_t ExpiredSkips = 0;    ///< Records skipped mid-scan because every
                                ///< waiter's deadline already expired: a
                                ///< directed signal would be wasted on a
                                ///< thread that is leaving anyway (it
                                ///< wakes on its own bounded block).
};

/// A heap of threshold tags for one shared expression and one bound
/// direction, mapping each distinct (key, strictness) to the records
/// (registered predicates) carrying that tag.
template <typename RecordT> class ThresholdHeap {
public:
  enum class Direction : uint8_t {
    LowerBound, ///< Tags `expr >= k` / `expr > k`; min-heap on k.
    UpperBound  ///< Tags `expr <= k` / `expr < k`; max-heap on k.
  };

  explicit ThresholdHeap(Direction Dir) : Dir(Dir) {}

  bool empty() const { return Heap.empty(); }

  /// Number of live (key, strictness) nodes.
  size_t numNodes() const { return Nodes.size(); }

  /// Registers \p R under tag (\p Key, \p Strict).
  void add(int64_t Key, bool Strict, RecordT *R) {
    auto [It, Inserted] = Nodes.try_emplace(std::make_pair(Key, Strict));
    if (Inserted) {
      It->second = std::make_unique<Node>();
      It->second->Key = Key;
      It->second->Strict = Strict;
      pushNode(It->second.get());
    }
    It->second->Records.push_back(R);
  }

  /// Unregisters \p R from tag (\p Key, \p Strict). When the tag's last
  /// record goes away the node is removed too (§5.2: "A threshold tag also
  /// needs to be removed once it has no predicate").
  void remove(int64_t Key, bool Strict, RecordT *R) {
    auto It = Nodes.find(std::make_pair(Key, Strict));
    AUTOSYNCH_CHECK(It != Nodes.end(), "removing an unregistered tag");
    std::vector<RecordT *> &Records = It->second->Records;
    auto Pos = std::find(Records.begin(), Records.end(), R);
    AUTOSYNCH_CHECK(Pos != Records.end(), "removing an unregistered record");
    *Pos = Records.back();
    Records.pop_back();
    if (Records.empty())
      eraseNode(It);
  }

  /// Fig. 4: scans tags in priority order while they are true under
  /// \p SharedVal, calling IsTrue on each record; returns the first record
  /// whose predicate holds, or null when the frontier tag is false (all
  /// remaining tags are then false too). Temporarily popped nodes are
  /// restored.
  template <typename IsTrueFn>
  RecordT *search(int64_t SharedVal, IsTrueFn &&IsTrue,
                  TagSearchStats *Stats = nullptr) {
    std::vector<Node *> Backup;
    RecordT *Found = nullptr;

    while (!Heap.empty()) {
      Node *Top = Heap.front();
      AUTOSYNCH_CHECK(!Top->Records.empty(),
                      "empty node survived eager removal");
      if (Stats)
        ++Stats->HeapVisits;
      if (!tagTrue(SharedVal, *Top))
        break; // Every descendant tag is false as well.
      for (RecordT *R : Top->Records) {
        if (Stats)
          ++Stats->PredicateChecks;
        if (IsTrue(R)) {
          Found = R;
          break;
        }
      }
      if (Found)
        break;
      // No true predicate under a true tag: remove temporarily so the
      // next-priority tag becomes visible (its predicates may hold).
      popTop();
      Backup.push_back(Top);
    }

    for (Node *N : Backup)
      pushNode(N);
    return Found;
  }

private:
  struct Node {
    int64_t Key = 0;
    bool Strict = false;
    std::vector<RecordT *> Records;
  };

  /// Whether tag (`expr op key`) holds for `expr == SharedVal`.
  bool tagTrue(int64_t SharedVal, const Node &N) const {
    if (Dir == Direction::LowerBound)
      return N.Strict ? SharedVal > N.Key : SharedVal >= N.Key;
    return N.Strict ? SharedVal < N.Key : SharedVal <= N.Key;
  }

  /// True when \p A has strictly lower scan priority than \p B. The heap's
  /// front is the highest-priority node: smallest key for lower bounds
  /// (largest for upper bounds), non-strict before strict on equal keys.
  bool lowerPriority(const Node *A, const Node *B) const {
    if (A->Key != B->Key)
      return Dir == Direction::LowerBound ? A->Key > B->Key
                                          : A->Key < B->Key;
    return A->Strict && !B->Strict;
  }

  void pushNode(Node *N) {
    Heap.push_back(N);
    std::push_heap(Heap.begin(), Heap.end(),
                   [this](const Node *A, const Node *B) {
                     return lowerPriority(A, B);
                   });
  }

  void popTop() {
    std::pop_heap(Heap.begin(), Heap.end(),
                  [this](const Node *A, const Node *B) {
                    return lowerPriority(A, B);
                  });
    Heap.pop_back();
  }

  /// Removes \p It's node from both the map and the heap vector (linear
  /// scan + re-heapify; the node count is the number of distinct keys,
  /// which stays small).
  void eraseNode(
      typename std::map<std::pair<int64_t, bool>,
                        std::unique_ptr<Node>>::iterator It) {
    Node *N = It->second.get();
    auto Pos = std::find(Heap.begin(), Heap.end(), N);
    AUTOSYNCH_CHECK(Pos != Heap.end(), "node missing from the heap");
    *Pos = Heap.back();
    Heap.pop_back();
    std::make_heap(Heap.begin(), Heap.end(),
                   [this](const Node *A, const Node *B) {
                     return lowerPriority(A, B);
                   });
    Nodes.erase(It);
  }

  Direction Dir;
  std::vector<Node *> Heap;
  std::map<std::pair<int64_t, bool>, std::unique_ptr<Node>> Nodes;
};

} // namespace autosynch

#endif // AUTOSYNCH_TAG_THRESHOLDHEAP_H

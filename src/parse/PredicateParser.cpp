//===- parse/PredicateParser.cpp - Predicate expression parser -------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "parse/PredicateParser.h"

#include "parse/Lexer.h"

using namespace autosynch;

std::string ParseError::toString() const {
  return std::to_string(Line) + ":" + std::to_string(Col) + ": " + Message;
}

namespace {

/// Recursive-descent expression parser with the precedence ladder
///   ||  <  &&  <  == !=  <  < <= > >=  <  + -  <  * / %  <  unary.
/// Comparisons are non-associative (a < b < c is rejected), matching Java.
class ExprParser {
public:
  ExprParser(std::string_view Source, ExprArena &Arena, SymbolTable &Syms,
             PredicateParseOptions Options)
      : Lex(Source), Arena(Arena), Syms(Syms), Options(Options) {
    Tok = Lex.next();
  }

  PredicateParseResult run(bool RequireBool) {
    ExprRef E = parseOr();
    if (Failed)
      return fail();
    if (!Tok.is(TokenKind::Eof)) {
      error(std::string("unexpected ") + tokenKindName(Tok.Kind) +
            " after expression");
      return fail();
    }
    if (RequireBool && E->type() != TypeKind::Bool) {
      error("waituntil predicate must be bool-typed, got int");
      return fail();
    }
    PredicateParseResult R;
    R.Expr = E;
    return R;
  }

private:
  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  void consume() { Tok = Lex.next(); }

  void error(const std::string &Message) {
    if (Failed) // Keep the first error.
      return;
    Failed = true;
    Err.Line = Tok.Line;
    Err.Col = Tok.Col;
    Err.Message = Message;
  }

  PredicateParseResult fail() {
    PredicateParseResult R;
    R.Error = Err;
    return R;
  }

  //===--------------------------------------------------------------------===//
  // Grammar
  //===--------------------------------------------------------------------===//

  ExprRef parseOr() {
    ExprRef L = parseAnd();
    while (!Failed && Tok.is(TokenKind::PipePipe)) {
      consume();
      ExprRef R = parseAnd();
      if (Failed)
        return L;
      L = buildLogical(ExprKind::Or, L, R);
    }
    return L;
  }

  ExprRef parseAnd() {
    ExprRef L = parseEquality();
    while (!Failed && Tok.is(TokenKind::AmpAmp)) {
      consume();
      ExprRef R = parseEquality();
      if (Failed)
        return L;
      L = buildLogical(ExprKind::And, L, R);
    }
    return L;
  }

  ExprRef parseEquality() {
    ExprRef L = parseRelational();
    if (Failed)
      return L;
    ExprKind K;
    if (Tok.is(TokenKind::EqEq))
      K = ExprKind::Eq;
    else if (Tok.is(TokenKind::NotEq))
      K = ExprKind::Ne;
    else
      return L;
    consume();
    ExprRef R = parseRelational();
    if (Failed)
      return L;
    if (L->type() != R->type()) {
      error("'==' / '!=' require operands of the same type");
      return L;
    }
    return Arena.binary(K, L, R);
  }

  ExprRef parseRelational() {
    ExprRef L = parseAdditive();
    if (Failed)
      return L;
    ExprKind K;
    if (Tok.is(TokenKind::Less))
      K = ExprKind::Lt;
    else if (Tok.is(TokenKind::LessEq))
      K = ExprKind::Le;
    else if (Tok.is(TokenKind::Greater))
      K = ExprKind::Gt;
    else if (Tok.is(TokenKind::GreaterEq))
      K = ExprKind::Ge;
    else
      return L;
    consume();
    ExprRef R = parseAdditive();
    if (Failed)
      return L;
    if (L->type() != TypeKind::Int || R->type() != TypeKind::Int) {
      error("ordering comparison requires int operands");
      return L;
    }
    return Arena.binary(K, L, R);
  }

  ExprRef parseAdditive() {
    ExprRef L = parseMultiplicative();
    while (!Failed &&
           (Tok.is(TokenKind::Plus) || Tok.is(TokenKind::Minus))) {
      ExprKind K = Tok.is(TokenKind::Plus) ? ExprKind::Add : ExprKind::Sub;
      consume();
      ExprRef R = parseMultiplicative();
      if (Failed)
        return L;
      L = buildArith(K, L, R);
    }
    return L;
  }

  ExprRef parseMultiplicative() {
    ExprRef L = parseUnary();
    while (!Failed && (Tok.is(TokenKind::Star) || Tok.is(TokenKind::Slash) ||
                       Tok.is(TokenKind::Percent))) {
      ExprKind K = Tok.is(TokenKind::Star)    ? ExprKind::Mul
                   : Tok.is(TokenKind::Slash) ? ExprKind::Div
                                              : ExprKind::Mod;
      consume();
      ExprRef R = parseUnary();
      if (Failed)
        return L;
      L = buildArith(K, L, R);
    }
    return L;
  }

  ExprRef parseUnary() {
    if (Tok.is(TokenKind::Minus)) {
      consume();
      ExprRef Op = parseUnary();
      if (Failed)
        return Op;
      if (Op->type() != TypeKind::Int) {
        error("unary '-' requires an int operand");
        return Op;
      }
      return Arena.unary(ExprKind::Neg, Op);
    }
    if (Tok.is(TokenKind::Bang)) {
      consume();
      ExprRef Op = parseUnary();
      if (Failed)
        return Op;
      if (Op->type() != TypeKind::Bool) {
        error("'!' requires a bool operand");
        return Op;
      }
      return Arena.unary(ExprKind::Not, Op);
    }
    return parsePrimary();
  }

  ExprRef parsePrimary() {
    switch (Tok.Kind) {
    case TokenKind::IntLiteral: {
      int64_t V = Tok.IntValue;
      consume();
      return Arena.intLit(V);
    }
    case TokenKind::KwTrue:
      consume();
      return Arena.boolLit(true);
    case TokenKind::KwFalse:
      consume();
      return Arena.boolLit(false);
    case TokenKind::Identifier: {
      const VarInfo *Info = Syms.lookup(Tok.Spelling);
      if (!Info) {
        if (!Options.AutoDeclareLocals) {
          error("undeclared variable '" + std::string(Tok.Spelling) + "'");
          return Arena.boolLit(false);
        }
        VarId Id = Syms.declare(Tok.Spelling, TypeKind::Int, VarScope::Local);
        Info = &Syms.info(Id);
      }
      consume();
      return Arena.var(*Info);
    }
    case TokenKind::LParen: {
      consume();
      ExprRef E = parseOr();
      if (Failed)
        return E;
      if (!Tok.is(TokenKind::RParen)) {
        error(std::string("expected ')', got ") + tokenKindName(Tok.Kind));
        return E;
      }
      consume();
      return E;
    }
    default:
      error(std::string("expected an expression, got ") +
            tokenKindName(Tok.Kind));
      return Arena.boolLit(false);
    }
  }

  //===--------------------------------------------------------------------===//
  // Typed construction
  //===--------------------------------------------------------------------===//

  ExprRef buildArith(ExprKind K, ExprRef L, ExprRef R) {
    if (L->type() != TypeKind::Int || R->type() != TypeKind::Int) {
      error("arithmetic requires int operands");
      return L;
    }
    return Arena.binary(K, L, R);
  }

  ExprRef buildLogical(ExprKind K, ExprRef L, ExprRef R) {
    if (L->type() != TypeKind::Bool || R->type() != TypeKind::Bool) {
      error(K == ExprKind::And ? "'&&' requires bool operands"
                               : "'||' requires bool operands");
      return L;
    }
    return Arena.binary(K, L, R);
  }

  Lexer Lex;
  Token Tok;
  ExprArena &Arena;
  SymbolTable &Syms;
  PredicateParseOptions Options;
  bool Failed = false;
  ParseError Err;
};

} // namespace

PredicateParseResult autosynch::parsePredicate(std::string_view Source,
                                               ExprArena &Arena,
                                               SymbolTable &Syms,
                                               PredicateParseOptions Options) {
  return ExprParser(Source, Arena, Syms, Options).run(/*RequireBool=*/true);
}

PredicateParseResult
autosynch::parseExpression(std::string_view Source, ExprArena &Arena,
                           SymbolTable &Syms,
                           PredicateParseOptions Options) {
  return ExprParser(Source, Arena, Syms, Options).run(/*RequireBool=*/false);
}

//===- parse/Token.h - Tokens of the AutoSynch languages -------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token vocabulary shared by the predicate parser and the monitor-language
/// translator (the reproduction of the paper's JavaCC preprocessor, Fig. 2).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PARSE_TOKEN_H
#define AUTOSYNCH_PARSE_TOKEN_H

#include <cstdint>
#include <string_view>

namespace autosynch {

enum class TokenKind : uint8_t {
  Eof,
  Error, ///< Lexical error; spelling holds the offending text.

  Identifier,
  IntLiteral,

  // Keywords.
  KwTrue,
  KwFalse,
  KwMonitor,
  KwShared,
  KwMethod,
  KwReturns,
  KwReturn,
  KwWaituntil,
  KwInt,
  KwBool,
  KwIf,
  KwElse,
  KwWhile,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semicolon,
  Assign, ///< =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Bang
};

/// Returns a diagnostic-friendly name for \p K (e.g. "'<='", "identifier").
const char *tokenKindName(TokenKind K);

/// A lexed token with its source location (1-based line and column).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string_view Spelling;
  int Line = 1;
  int Col = 1;
  int64_t IntValue = 0; ///< Set for IntLiteral.

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace autosynch

#endif // AUTOSYNCH_PARSE_TOKEN_H

//===- parse/PredicateParser.h - Predicate expression parser ---*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses waituntil predicate source text ("count + items <= cap") into the
/// interned expression AST. Identifier resolution goes through a
/// SymbolTable; options control whether unknown identifiers auto-declare as
/// local int variables (the convenient mode for string-based waitUntil).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PARSE_PREDICATEPARSER_H
#define AUTOSYNCH_PARSE_PREDICATEPARSER_H

#include "expr/ExprArena.h"
#include "expr/SymbolTable.h"

#include <string>
#include <string_view>

namespace autosynch {

/// A parse or type error with its 1-based source location.
struct ParseError {
  int Line = 0;
  int Col = 0;
  std::string Message;

  /// "line:col: message" rendering for diagnostics.
  std::string toString() const;
};

/// Outcome of parsing a predicate. On failure, Expr is null and Error is
/// populated; the parser stops at the first error (predicates are
/// one-liners).
struct PredicateParseResult {
  ExprRef Expr = nullptr;
  ParseError Error;

  bool ok() const { return Expr != nullptr; }
};

/// Parser configuration.
struct PredicateParseOptions {
  /// When true, identifiers missing from the symbol table are declared as
  /// Local int variables; when false they are parse errors.
  bool AutoDeclareLocals = false;
};

/// Parses \p Source into \p Arena, resolving names in \p Syms. Requires the
/// result to be bool-typed (it is a waituntil condition).
PredicateParseResult parsePredicate(std::string_view Source, ExprArena &Arena,
                                    SymbolTable &Syms,
                                    PredicateParseOptions Options = {});

/// Parses an arbitrary (possibly int-typed) expression; used by tests and
/// the translator for right-hand sides of assignments.
PredicateParseResult parseExpression(std::string_view Source,
                                     ExprArena &Arena, SymbolTable &Syms,
                                     PredicateParseOptions Options = {});

} // namespace autosynch

#endif // AUTOSYNCH_PARSE_PREDICATEPARSER_H

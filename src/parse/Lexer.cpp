//===- parse/Lexer.cpp - Lexer for the AutoSynch languages -----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "parse/Lexer.h"

#include "support/Check.h"

#include <cctype>
#include <utility>

using namespace autosynch;

const char *autosynch::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwMonitor:
    return "'monitor'";
  case TokenKind::KwShared:
    return "'shared'";
  case TokenKind::KwMethod:
    return "'method'";
  case TokenKind::KwReturns:
    return "'returns'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwWaituntil:
    return "'waituntil'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  }
  AUTOSYNCH_UNREACHABLE("invalid TokenKind");
}

Lexer::Lexer(std::string_view Source) : Src(Source) {}

void Lexer::advance() {
  AUTOSYNCH_CHECK(Pos < Src.size(), "lexer advanced past end of input");
  if (Src[Pos] == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  ++Pos;
}

void Lexer::skipTrivia() {
  while (Pos < Src.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (Pos < Src.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos < Src.size()) { // Consume the closing "*/".
        advance();
        advance();
      }
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind K, size_t Begin) {
  Token T;
  T.Kind = K;
  T.Spelling = Src.substr(Begin, Pos - Begin);
  T.Line = TokLine;
  T.Col = TokCol;
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  size_t Begin = Pos;
  while (Pos < Src.size() &&
         (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
    advance();
  Token T = makeToken(TokenKind::Identifier, Begin);

  static constexpr std::pair<std::string_view, TokenKind> Keywords[] = {
      {"true", TokenKind::KwTrue},           {"false", TokenKind::KwFalse},
      {"monitor", TokenKind::KwMonitor},     {"shared", TokenKind::KwShared},
      {"method", TokenKind::KwMethod},       {"returns", TokenKind::KwReturns},
      {"return", TokenKind::KwReturn},       {"waituntil", TokenKind::KwWaituntil},
      {"int", TokenKind::KwInt},             {"bool", TokenKind::KwBool},
      {"if", TokenKind::KwIf},               {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile}};
  for (const auto &[Spelling, Kind] : Keywords) {
    if (T.Spelling == Spelling) {
      T.Kind = Kind;
      break;
    }
  }
  return T;
}

Token Lexer::lexNumber() {
  size_t Begin = Pos;
  while (Pos < Src.size() && std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  Token T = makeToken(TokenKind::IntLiteral, Begin);

  // Overflow-checked decimal conversion; overflow is a lexical error.
  uint64_t V = 0;
  for (char C : T.Spelling) {
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (V > (UINT64_MAX - Digit) / 10) {
      T.Kind = TokenKind::Error;
      return T;
    }
    V = V * 10 + Digit;
  }
  if (V > static_cast<uint64_t>(INT64_MAX)) {
    T.Kind = TokenKind::Error;
    return T;
  }
  T.IntValue = static_cast<int64_t>(V);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  TokLine = Line;
  TokCol = Col;

  if (Pos >= Src.size())
    return makeToken(TokenKind::Eof, Pos);

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();

  size_t Begin = Pos;
  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Begin);
  case ')':
    return makeToken(TokenKind::RParen, Begin);
  case '{':
    return makeToken(TokenKind::LBrace, Begin);
  case '}':
    return makeToken(TokenKind::RBrace, Begin);
  case ',':
    return makeToken(TokenKind::Comma, Begin);
  case ';':
    return makeToken(TokenKind::Semicolon, Begin);
  case '+':
    return makeToken(TokenKind::Plus, Begin);
  case '-':
    return makeToken(TokenKind::Minus, Begin);
  case '*':
    return makeToken(TokenKind::Star, Begin);
  case '/':
    return makeToken(TokenKind::Slash, Begin);
  case '%':
    return makeToken(TokenKind::Percent, Begin);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqEq, Begin);
    }
    return makeToken(TokenKind::Assign, Begin);
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::NotEq, Begin);
    }
    return makeToken(TokenKind::Bang, Begin);
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEq, Begin);
    }
    return makeToken(TokenKind::Less, Begin);
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEq, Begin);
    }
    return makeToken(TokenKind::Greater, Begin);
  case '&':
    if (peek() == '&') {
      advance();
      return makeToken(TokenKind::AmpAmp, Begin);
    }
    return makeToken(TokenKind::Error, Begin);
  case '|':
    if (peek() == '|') {
      advance();
      return makeToken(TokenKind::PipePipe, Begin);
    }
    return makeToken(TokenKind::Error, Begin);
  default:
    return makeToken(TokenKind::Error, Begin);
  }
}

std::vector<Token> Lexer::tokenize(std::string_view Source) {
  Lexer L(Source);
  std::vector<Token> Tokens;
  for (Token T = L.next(); !T.is(TokenKind::Eof); T = L.next())
    Tokens.push_back(T);
  return Tokens;
}

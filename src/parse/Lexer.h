//===- parse/Lexer.h - Lexer for the AutoSynch languages -------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer over a string_view. Supports `//` and `/* */`
/// comments, decimal integer literals, identifiers, keywords, and the
/// operator set of the predicate language.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_PARSE_LEXER_H
#define AUTOSYNCH_PARSE_LEXER_H

#include "parse/Token.h"

#include <vector>

namespace autosynch {

/// Single-pass lexer. The source buffer must outlive produced tokens
/// (spellings are views into it).
class Lexer {
public:
  explicit Lexer(std::string_view Source);

  /// Lexes and returns the next token; Eof repeats forever at the end.
  Token next();

  /// Lexes the entire input (excluding the trailing Eof).
  static std::vector<Token> tokenize(std::string_view Source);

private:
  void skipTrivia();
  Token makeToken(TokenKind K, size_t Begin);
  Token lexIdentifierOrKeyword();
  Token lexNumber();

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  void advance();

  std::string_view Src;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;
  int TokLine = 1;
  int TokCol = 1;
};

} // namespace autosynch

#endif // AUTOSYNCH_PARSE_LEXER_H

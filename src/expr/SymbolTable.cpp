//===- expr/SymbolTable.cpp - Variable declarations -----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "expr/SymbolTable.h"

#include "support/Check.h"

using namespace autosynch;

VarId SymbolTable::declare(std::string_view Name, TypeKind Type,
                           VarScope Scope) {
  AUTOSYNCH_CHECK(!Name.empty(), "variable name must be non-empty");
  AUTOSYNCH_CHECK(ByName.find(std::string(Name)) == ByName.end(),
                  "duplicate variable declaration");
  VarId Id = static_cast<VarId>(Vars.size());
  Vars.push_back(VarInfo{std::string(Name), Type, Scope, Id});
  ByName.emplace(std::string(Name), Id);
  return Id;
}

const VarInfo *SymbolTable::lookup(std::string_view Name) const {
  auto It = ByName.find(std::string(Name));
  if (It == ByName.end())
    return nullptr;
  return &Vars[It->second];
}

const VarInfo &SymbolTable::info(VarId Id) const {
  AUTOSYNCH_CHECK(Id < Vars.size(), "VarId out of range");
  return Vars[Id];
}

//===- expr/Var.h - Variable identity and scope ----------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable identity. The paper (Definition 1) divides predicate variables
/// into shared variables S (monitor state, readable by every thread in the
/// monitor) and local variables L (visible only to the waiting thread).
/// This split drives globalization and predicate classification.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_VAR_H
#define AUTOSYNCH_EXPR_VAR_H

#include "expr/Value.h"

#include <cstdint>
#include <string>

namespace autosynch {

/// Dense variable identifier assigned by a SymbolTable.
using VarId = uint32_t;

/// Whether a variable is monitor state or thread-local (paper Def. 1).
enum class VarScope : uint8_t { Shared, Local };

/// Everything the analyses need to know about a declared variable.
struct VarInfo {
  std::string Name;
  TypeKind Type = TypeKind::Int;
  VarScope Scope = VarScope::Shared;
  VarId Id = 0;
};

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_VAR_H

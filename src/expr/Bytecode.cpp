//===- expr/Bytecode.cpp - Compiled predicate evaluation -------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "expr/Bytecode.h"

#include "expr/Eval.h"

#include <cstdint>

using namespace autosynch;

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

class CompiledPredicate::Compiler {
public:
  Compiler(CompiledPredicate &P, const VarResolver *Resolve)
      : P(P), Resolve(Resolve) {}

  void compile(ExprRef E) {
    emitExpr(E);
    P.ResultType = E->type();
    P.MaxStack = MaxDepth;
  }

private:
  void emitExpr(ExprRef E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      emitPush(E->intValue());
      return;
    case ExprKind::BoolLit:
      emitPush(E->boolValue() ? 1 : 0);
      return;
    case ExprKind::Var:
      if (Resolve) {
        ResolvedVar R = (*Resolve)(E->varId());
        emit({R.K == ResolvedVar::Kind::Shared ? OpCode::LoadShared
                                               : OpCode::LoadLocal,
              R.Index, 0});
      } else {
        emit({OpCode::LoadVar, E->varId(), 0});
      }
      push();
      return;
    case ExprKind::Neg:
      emitExpr(E->lhs());
      emit({OpCode::Neg, 0, 0});
      return;
    case ExprKind::Not:
      emitExpr(E->lhs());
      emit({OpCode::Not, 0, 0});
      return;
    case ExprKind::And:
    case ExprKind::Or: {
      // Short-circuit: evaluate LHS; if it already decides the result,
      // jump over the RHS keeping the LHS value as the result.
      emitExpr(E->lhs());
      OpCode Jump = E->kind() == ExprKind::And ? OpCode::JumpFalsePeek
                                               : OpCode::JumpTruePeek;
      size_t Patch = P.Code.size();
      emit({Jump, 0, 0});
      emit({OpCode::Pop, 0, 0});
      pop();
      emitExpr(E->rhs());
      P.Code[Patch].A = static_cast<uint32_t>(P.Code.size());
      return;
    }
    default:
      break;
    }

    emitExpr(E->lhs());
    emitExpr(E->rhs());
    OpCode Op;
    switch (E->kind()) {
    case ExprKind::Add:
      Op = OpCode::Add;
      break;
    case ExprKind::Sub:
      Op = OpCode::Sub;
      break;
    case ExprKind::Mul:
      Op = OpCode::Mul;
      break;
    case ExprKind::Div:
      Op = OpCode::Div;
      break;
    case ExprKind::Mod:
      Op = OpCode::Mod;
      break;
    case ExprKind::Eq:
      Op = OpCode::Eq;
      break;
    case ExprKind::Ne:
      Op = OpCode::Ne;
      break;
    case ExprKind::Lt:
      Op = OpCode::Lt;
      break;
    case ExprKind::Le:
      Op = OpCode::Le;
      break;
    case ExprKind::Gt:
      Op = OpCode::Gt;
      break;
    case ExprKind::Ge:
      Op = OpCode::Ge;
      break;
    default:
      AUTOSYNCH_UNREACHABLE("invalid binary kind in bytecode compiler");
    }
    emit({Op, 0, 0});
    pop(); // Two operands popped, one result pushed.
  }

  void emitPush(int64_t V) {
    emit({OpCode::PushImm, 0, V});
    push();
  }

  void emit(Instr I) { P.Code.push_back(I); }

  void push() {
    if (++Depth > MaxDepth)
      MaxDepth = Depth;
  }
  void pop() {
    AUTOSYNCH_CHECK(Depth > 0, "bytecode compiler stack underflow");
    --Depth;
  }

  CompiledPredicate &P;
  const VarResolver *Resolve;
  unsigned Depth = 0;
  unsigned MaxDepth = 0;
};

CompiledPredicate CompiledPredicate::compile(ExprRef E) {
  CompiledPredicate P;
  Compiler(P, nullptr).compile(E);
  return P;
}

CompiledPredicate CompiledPredicate::compile(ExprRef E,
                                             const VarResolver &Resolve) {
  CompiledPredicate P;
  Compiler(P, &Resolve).compile(E);
  return P;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

static int64_t wrap(uint64_t V) { return static_cast<int64_t>(V); }

/// Shared interpreter loop; \p Load maps a load instruction to the raw
/// payload it pushes. Templated (not virtual) so the slot path inlines to
/// plain array indexing.
template <typename LoadFn>
Value CompiledPredicate::execute(LoadFn &&Load) const {
  AUTOSYNCH_CHECK(valid(), "running an empty CompiledPredicate");
  detail::bumpPredicateEvalCount();

  // Predicates are small; a fixed stack avoids allocation on the relay path.
  constexpr unsigned StackCap = 256;
  AUTOSYNCH_CHECK(MaxStack <= StackCap, "predicate too deep for VM stack");
  int64_t Stack[StackCap];
  unsigned Top = 0; // Next free slot.

  for (size_t Pc = 0; Pc != Code.size(); ++Pc) {
    const Instr &I = Code[Pc];
    switch (I.Op) {
    case OpCode::PushImm:
      Stack[Top++] = I.Imm;
      break;
    case OpCode::LoadVar:
    case OpCode::LoadShared:
    case OpCode::LoadLocal:
      Stack[Top++] = Load(I.Op, I.A);
      break;
    case OpCode::Neg:
      Stack[Top - 1] = wrap(-static_cast<uint64_t>(Stack[Top - 1]));
      break;
    case OpCode::Not:
      Stack[Top - 1] = Stack[Top - 1] == 0 ? 1 : 0;
      break;
    case OpCode::JumpFalsePeek:
      if (Stack[Top - 1] == 0)
        Pc = I.A - 1; // -1: the loop increments.
      break;
    case OpCode::JumpTruePeek:
      if (Stack[Top - 1] != 0)
        Pc = I.A - 1;
      break;
    case OpCode::Pop:
      --Top;
      break;
    default: {
      int64_t B = Stack[--Top];
      int64_t A = Stack[Top - 1];
      int64_t R;
      switch (I.Op) {
      case OpCode::Add:
        R = wrap(static_cast<uint64_t>(A) + static_cast<uint64_t>(B));
        break;
      case OpCode::Sub:
        R = wrap(static_cast<uint64_t>(A) - static_cast<uint64_t>(B));
        break;
      case OpCode::Mul:
        R = wrap(static_cast<uint64_t>(A) * static_cast<uint64_t>(B));
        break;
      case OpCode::Div:
        AUTOSYNCH_CHECK(B != 0, "division by zero in compiled predicate");
        AUTOSYNCH_CHECK(!(A == INT64_MIN && B == -1),
                        "INT64_MIN / -1 overflow in compiled predicate");
        R = A / B;
        break;
      case OpCode::Mod:
        AUTOSYNCH_CHECK(B != 0, "modulo by zero in compiled predicate");
        AUTOSYNCH_CHECK(!(A == INT64_MIN && B == -1),
                        "INT64_MIN % -1 overflow in compiled predicate");
        R = A % B;
        break;
      case OpCode::Eq:
        R = A == B;
        break;
      case OpCode::Ne:
        R = A != B;
        break;
      case OpCode::Lt:
        R = A < B;
        break;
      case OpCode::Le:
        R = A <= B;
        break;
      case OpCode::Gt:
        R = A > B;
        break;
      case OpCode::Ge:
        R = A >= B;
        break;
      default:
        AUTOSYNCH_UNREACHABLE("invalid opcode");
      }
      Stack[Top - 1] = R;
      break;
    }
    }
  }

  AUTOSYNCH_CHECK(Top == 1, "bytecode left a malformed stack");
  return ResultType == TypeKind::Bool ? Value::makeBool(Stack[0] != 0)
                                      : Value::makeInt(Stack[0]);
}

Value CompiledPredicate::run(const Env &Bindings) const {
  return execute([&Bindings](OpCode Op, uint32_t A) {
    AUTOSYNCH_CHECK(Op == OpCode::LoadVar,
                    "slot program run without slot arrays");
    return Bindings.get(A).raw();
  });
}

Value CompiledPredicate::runRaw(const Value *Shared,
                                const Value *Locals) const {
  return execute([Shared, Locals](OpCode Op, uint32_t A) {
    if (Op == OpCode::LoadShared)
      return Shared[A].raw();
    AUTOSYNCH_CHECK(Op == OpCode::LoadLocal,
                    "Env program run through runRaw");
    return Locals[A].raw();
  });
}

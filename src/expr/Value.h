//===- expr/Value.h - Runtime values of predicate expressions --*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value domain of the predicate language: 64-bit integers and
/// booleans. The paper's predicates range over Java primitives; int64 + bool
/// covers every predicate in its evaluation and keeps arithmetic exact.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_VALUE_H
#define AUTOSYNCH_EXPR_VALUE_H

#include "support/Check.h"

#include <cstdint>
#include <string>

namespace autosynch {

/// Static type of an expression or variable.
enum class TypeKind : uint8_t { Int, Bool };

/// Returns "int" or "bool".
inline const char *typeName(TypeKind T) {
  return T == TypeKind::Int ? "int" : "bool";
}

/// A runtime value: either an int64 or a bool.
class Value {
public:
  Value() : Ty(TypeKind::Int), IntVal(0) {}

  static Value makeInt(int64_t V) {
    Value R;
    R.Ty = TypeKind::Int;
    R.IntVal = V;
    return R;
  }

  static Value makeBool(bool B) {
    Value R;
    R.Ty = TypeKind::Bool;
    R.IntVal = B ? 1 : 0;
    return R;
  }

  TypeKind type() const { return Ty; }
  bool isInt() const { return Ty == TypeKind::Int; }
  bool isBool() const { return Ty == TypeKind::Bool; }

  int64_t asInt() const {
    AUTOSYNCH_CHECK(isInt(), "Value::asInt on a bool value");
    return IntVal;
  }

  bool asBool() const {
    AUTOSYNCH_CHECK(isBool(), "Value::asBool on an int value");
    return IntVal != 0;
  }

  /// Raw 64-bit payload (bool as 0/1); used by the bytecode VM.
  int64_t raw() const { return IntVal; }

  bool operator==(const Value &Rhs) const {
    return Ty == Rhs.Ty && IntVal == Rhs.IntVal;
  }
  bool operator!=(const Value &Rhs) const { return !(*this == Rhs); }

  std::string toString() const {
    if (isBool())
      return IntVal ? "true" : "false";
    return std::to_string(IntVal);
  }

private:
  TypeKind Ty;
  int64_t IntVal;
};

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_VALUE_H

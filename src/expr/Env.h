//===- expr/Env.h - Variable-binding environments --------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Environments bind VarIds to runtime Values during predicate evaluation.
/// The monitor supplies a shared-variable environment (its Shared<T> slots);
/// waituntil callers supply a local environment for globalization.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_ENV_H
#define AUTOSYNCH_EXPR_ENV_H

#include "expr/Var.h"

#include <array>
#include <vector>

namespace autosynch {

/// Abstract binding of VarIds to Values.
class Env {
public:
  virtual ~Env() = default;

  /// Returns the value bound to \p Id. Fatal error when unbound — an
  /// evaluated predicate must never mention an unbound variable.
  virtual Value get(VarId Id) const = 0;

  /// Returns true when \p Id has a binding.
  virtual bool has(VarId Id) const = 0;
};

/// An environment with no bindings.
class EmptyEnv final : public Env {
public:
  Value get(VarId) const override {
    AUTOSYNCH_UNREACHABLE("EmptyEnv::get: no bindings");
  }
  bool has(VarId) const override { return false; }

  static const EmptyEnv &instance() {
    static EmptyEnv E;
    return E;
  }
};

/// A small-map environment; the common carrier for waituntil local values.
/// Monitor predicates mention a handful of locals, so bindings live in a
/// fixed inline array (linear scan) and the constructor/bind path performs
/// no heap allocation until the inline capacity overflows — waituntil call
/// sites that build `locals().bindInt(...)` stay allocation-free.
class MapEnv final : public Env {
public:
  MapEnv() = default;

  MapEnv &bind(VarId Id, Value V) {
    for (size_t I = 0; I != Count; ++I) {
      if (at(I).first == Id) {
        at(I).second = V;
        return *this;
      }
    }
    if (Count < Inline.size())
      Inline[Count] = {Id, V};
    else
      Overflow.push_back({Id, V});
    ++Count;
    return *this;
  }

  MapEnv &bindInt(VarId Id, int64_t V) {
    return bind(Id, Value::makeInt(V));
  }

  MapEnv &bindBool(VarId Id, bool V) { return bind(Id, Value::makeBool(V)); }

  Value get(VarId Id) const override {
    const Value *V = find(Id);
    AUTOSYNCH_CHECK(V != nullptr, "unbound variable in MapEnv::get");
    return *V;
  }

  bool has(VarId Id) const override { return find(Id) != nullptr; }

  size_t size() const { return Count; }

private:
  using Entry = std::pair<VarId, Value>;

  Entry &at(size_t I) {
    return I < Inline.size() ? Inline[I] : Overflow[I - Inline.size()];
  }
  const Entry &at(size_t I) const {
    return I < Inline.size() ? Inline[I] : Overflow[I - Inline.size()];
  }

  const Value *find(VarId Id) const {
    for (size_t I = 0; I != Count; ++I)
      if (at(I).first == Id)
        return &at(I).second;
    return nullptr;
  }

  std::array<Entry, 8> Inline{};
  std::vector<Entry> Overflow;
  size_t Count = 0;
};

/// Overlays two environments: looks in First, then in Second. Used by the
/// Broadcast (baseline) policy where a waiter evaluates its own complex
/// predicate over shared + local bindings.
class OverlayEnv final : public Env {
public:
  OverlayEnv(const Env &First, const Env &Second)
      : First(First), Second(Second) {}

  Value get(VarId Id) const override {
    return First.has(Id) ? First.get(Id) : Second.get(Id);
  }

  bool has(VarId Id) const override {
    return First.has(Id) || Second.has(Id);
  }

private:
  const Env &First;
  const Env &Second;
};

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_ENV_H

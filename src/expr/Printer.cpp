//===- expr/Printer.cpp - Expression pretty-printer ------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "expr/Printer.h"

using namespace autosynch;

namespace {

/// Binding strength; higher binds tighter. Mirrors the parser's precedence
/// table so printed output re-parses to the same tree.
int precedence(ExprKind K) {
  switch (K) {
  case ExprKind::Or:
    return 1;
  case ExprKind::And:
    return 2;
  case ExprKind::Eq:
  case ExprKind::Ne:
    return 3;
  case ExprKind::Lt:
  case ExprKind::Le:
  case ExprKind::Gt:
  case ExprKind::Ge:
    return 4;
  case ExprKind::Add:
  case ExprKind::Sub:
    return 5;
  case ExprKind::Mul:
  case ExprKind::Div:
  case ExprKind::Mod:
    return 6;
  case ExprKind::Neg:
  case ExprKind::Not:
    return 7;
  default:
    return 8; // Leaves.
  }
}

class PrinterImpl {
public:
  explicit PrinterImpl(const SymbolTable *Syms) : Syms(Syms) {}
  explicit PrinterImpl(std::function<std::string(VarId)> NameFn)
      : Syms(nullptr), NameFn(std::move(NameFn)) {}

  std::string print(ExprRef E) {
    Out.clear();
    render(E, /*ParentPrec=*/0, /*RightChild=*/false);
    return Out;
  }

private:
  void render(ExprRef E, int ParentPrec, bool RightChild) {
    int Prec = precedence(E->kind());
    // Left-associative operators need parens around a right child of equal
    // precedence (a - (b - c)), and any child of lower precedence.
    bool NeedParens =
        Prec < ParentPrec || (Prec == ParentPrec && RightChild);
    if (NeedParens)
      Out += '(';
    renderBare(E, Prec);
    if (NeedParens)
      Out += ')';
  }

  void renderBare(ExprRef E, int Prec) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      Out += std::to_string(E->intValue());
      return;
    case ExprKind::BoolLit:
      Out += E->boolValue() ? "true" : "false";
      return;
    case ExprKind::Var:
      Out += varName(E->varId());
      return;
    case ExprKind::Neg:
      Out += '-';
      render(E->lhs(), Prec, /*RightChild=*/true);
      return;
    case ExprKind::Not:
      Out += '!';
      render(E->lhs(), Prec, /*RightChild=*/true);
      return;
    default:
      break;
    }
    render(E->lhs(), Prec, /*RightChild=*/false);
    Out += ' ';
    Out += exprKindSpelling(E->kind());
    Out += ' ';
    render(E->rhs(), Prec, /*RightChild=*/true);
  }

  std::string varName(VarId Id) const {
    if (NameFn)
      return NameFn(Id);
    if (Syms && Id < Syms->size())
      return Syms->info(Id).Name;
    return "v" + std::to_string(Id);
  }

  const SymbolTable *Syms;
  std::function<std::string(VarId)> NameFn;
  std::string Out;
};

} // namespace

std::string autosynch::printExpr(ExprRef E, const SymbolTable &Syms) {
  return PrinterImpl(&Syms).print(E);
}

std::string autosynch::printExpr(ExprRef E) {
  return PrinterImpl(static_cast<const SymbolTable *>(nullptr)).print(E);
}

std::string
autosynch::printExpr(ExprRef E,
                     const std::function<std::string(VarId)> &VarName) {
  return PrinterImpl(VarName).print(E);
}

//===- expr/Builder.h - Expression-building EDSL ---------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operator-overloading front end for building predicate ASTs in C++:
///
/// \code
///   ExprHandle Count = ...;              // from a Shared<int> member
///   waitUntil(Count + Items <= Cap);     // builds Le(Add(count,48), cap)
/// \endcode
///
/// Local values appear as literals (the C++ analogue of the paper's
/// globalization: the waiting thread captures its locals at waituntil time).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_BUILDER_H
#define AUTOSYNCH_EXPR_BUILDER_H

#include "expr/ExprArena.h"

namespace autosynch {

/// A reference to an interned expression plus the arena to extend it in.
class ExprHandle {
public:
  ExprHandle(ExprArena &Arena, ExprRef E) : Arena(&Arena), E(E) {
    AUTOSYNCH_CHECK(E != nullptr, "null expression in ExprHandle");
  }

  ExprRef ref() const { return E; }
  ExprArena &arena() const { return *Arena; }
  TypeKind type() const { return E->type(); }

private:
  ExprArena *Arena;
  ExprRef E;
};

/// Integer literal handle.
inline ExprHandle lit(ExprArena &Arena, int64_t V) {
  return ExprHandle(Arena, Arena.intLit(V));
}

/// Boolean literal handle.
inline ExprHandle blit(ExprArena &Arena, bool V) {
  return ExprHandle(Arena, Arena.boolLit(V));
}

namespace detail {

inline ExprHandle buildBinary(ExprKind K, const ExprHandle &L,
                              const ExprHandle &R) {
  AUTOSYNCH_CHECK(&L.arena() == &R.arena(),
                  "mixing expressions from different arenas");
  return ExprHandle(L.arena(), L.arena().binary(K, L.ref(), R.ref()));
}

} // namespace detail

#define AUTOSYNCH_BUILDER_BINOP(Sym, Kind)                                    \
  inline ExprHandle operator Sym(const ExprHandle &L, const ExprHandle &R) {  \
    return detail::buildBinary(ExprKind::Kind, L, R);                         \
  }                                                                           \
  inline ExprHandle operator Sym(const ExprHandle &L, int64_t R) {            \
    return detail::buildBinary(ExprKind::Kind, L, lit(L.arena(), R));         \
  }                                                                           \
  inline ExprHandle operator Sym(int64_t L, const ExprHandle &R) {            \
    return detail::buildBinary(ExprKind::Kind, lit(R.arena(), L), R);         \
  }

AUTOSYNCH_BUILDER_BINOP(+, Add)
AUTOSYNCH_BUILDER_BINOP(-, Sub)
AUTOSYNCH_BUILDER_BINOP(*, Mul)
AUTOSYNCH_BUILDER_BINOP(/, Div)
AUTOSYNCH_BUILDER_BINOP(%, Mod)
AUTOSYNCH_BUILDER_BINOP(==, Eq)
AUTOSYNCH_BUILDER_BINOP(!=, Ne)
AUTOSYNCH_BUILDER_BINOP(<, Lt)
AUTOSYNCH_BUILDER_BINOP(<=, Le)
AUTOSYNCH_BUILDER_BINOP(>, Gt)
AUTOSYNCH_BUILDER_BINOP(>=, Ge)

#undef AUTOSYNCH_BUILDER_BINOP

/// Logical connectives. Note: these build an AST; there is no short-circuit
/// at build time (evaluation short-circuits).
inline ExprHandle operator&&(const ExprHandle &L, const ExprHandle &R) {
  return detail::buildBinary(ExprKind::And, L, R);
}
inline ExprHandle operator||(const ExprHandle &L, const ExprHandle &R) {
  return detail::buildBinary(ExprKind::Or, L, R);
}
inline ExprHandle operator!(const ExprHandle &H) {
  return ExprHandle(H.arena(), H.arena().unary(ExprKind::Not, H.ref()));
}
inline ExprHandle operator-(const ExprHandle &H) {
  return ExprHandle(H.arena(), H.arena().unary(ExprKind::Neg, H.ref()));
}

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_BUILDER_H

//===- expr/VarSet.h - Fixed-size variable bitmasks ------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size set of VarIds, used by the dirty-set relay filter: the
/// monitor records which shared variables a region wrote (the *dirty set*)
/// and each registered predicate carries the variables it reads (its
/// *read set*); relay signaling then skips every predicate whose read set
/// cannot intersect the dirty set.
///
/// The representation is one 64-bit word. Monitors declare a handful of
/// shared variables, so VarIds above the word width are rare; such an id
/// *saturates* the set to "universal", which is conservative in both
/// directions the filter needs — a universal dirty set scans everything,
/// a universal read set is never filtered out. Correctness never depends
/// on the set being exact, only on it never under-approximating.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_VARSET_H
#define AUTOSYNCH_EXPR_VARSET_H

#include "expr/Expr.h"
#include "expr/SymbolTable.h"

#include <cstdint>

namespace autosynch {

/// A saturating bitmask of VarIds (see file comment).
class VarSet {
public:
  /// VarIds at or above this saturate the set to universal.
  static constexpr VarId MaxDirect = 64;

  void add(VarId Id) {
    if (Id >= MaxDirect)
      All = true;
    else
      Mask |= uint64_t{1} << Id;
  }

  void unionWith(const VarSet &O) {
    Mask |= O.Mask;
    All = All || O.All;
  }

  /// Whether the two sets can share a variable. Universal sets intersect
  /// every non-empty set; the empty set intersects nothing.
  bool intersects(const VarSet &O) const {
    if (empty() || O.empty())
      return false;
    if (All || O.All)
      return true;
    return (Mask & O.Mask) != 0;
  }

  bool contains(VarId Id) const {
    if (All)
      return true;
    return Id < MaxDirect && ((Mask >> Id) & 1) != 0;
  }

  bool empty() const { return Mask == 0 && !All; }
  bool universal() const { return All; }
  void clear() {
    Mask = 0;
    All = false;
  }

  /// The direct-member word (meaningless when universal()).
  uint64_t mask() const { return Mask; }

  bool operator==(const VarSet &O) const {
    // A saturated set is semantically universal regardless of which
    // direct bits happened to be set before (or after) saturation, so
    // the mask must not participate once either side is universal.
    if (All || O.All)
      return All == O.All;
    return Mask == O.Mask;
  }

private:
  uint64_t Mask = 0;
  bool All = false;
};

/// Adds every variable mentioned by \p E to \p Out.
inline void collectVars(ExprRef E, VarSet &Out) {
  if (E->kind() == ExprKind::Var) {
    Out.add(E->varId());
    return;
  }
  for (unsigned I = 0; I != E->numOperands(); ++I)
    collectVars(E->operand(I), Out);
}

/// The Shared-scoped variables \p E mentions — the read set of a predicate
/// over the monitor's state. Registered predicates are globalized, so for
/// them this equals collectVars; shapes with symbolic locals need the
/// scope filter.
inline VarSet sharedReadSet(ExprRef E, const SymbolTable &Syms) {
  VarSet Out;
  auto Walk = [&](auto &&Self, ExprRef N) -> void {
    if (N->kind() == ExprKind::Var) {
      if (Syms.isShared(N->varId()))
        Out.add(N->varId());
      return;
    }
    for (unsigned I = 0; I != N->numOperands(); ++I)
      Self(Self, N->operand(I));
  };
  Walk(Walk, E);
  return Out;
}

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_VARSET_H

//===- expr/Printer.h - Expression pretty-printer --------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic source-form printing of expressions, used in diagnostics,
/// the translator's generated code, and golden tests. Printing is
/// parenthesis-minimal and round-trips through the parser.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_PRINTER_H
#define AUTOSYNCH_EXPR_PRINTER_H

#include "expr/Expr.h"
#include "expr/SymbolTable.h"

#include <functional>
#include <string>

namespace autosynch {

/// Renders \p E using variable names from \p Syms.
std::string printExpr(ExprRef E, const SymbolTable &Syms);

/// Renders \p E with synthetic names (`v0`, `v1`, ...) when no symbol table
/// is available (debug output).
std::string printExpr(ExprRef E);

/// Renders \p E mapping each variable through \p VarName — the translator
/// uses this to emit C++ (shared variables become `name_.get()`).
std::string printExpr(ExprRef E,
                      const std::function<std::string(VarId)> &VarName);

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_PRINTER_H

//===- expr/Eval.h - Tree-walking evaluator --------------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference (tree-walking) evaluator for predicate expressions. The
/// condition manager calls this on behalf of waiting threads (the point of
/// globalization, §4.1). A bytecode evaluator with identical semantics lives
/// in expr/Bytecode.h.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_EVAL_H
#define AUTOSYNCH_EXPR_EVAL_H

#include "expr/Env.h"
#include "expr/Expr.h"

#include <cstdint>

namespace autosynch {

/// Evaluates \p E under \p Bindings.
///
/// Semantics: two's-complement wrapping arithmetic, truncating division,
/// short-circuit && and ||. Division or modulo by zero is a fatal error
/// (predicates must be total).
Value eval(ExprRef E, const Env &Bindings);

/// Evaluates a bool-typed expression. Fatal error on an int-typed \p E.
bool evalBool(ExprRef E, const Env &Bindings);

/// Evaluates an int-typed expression. Fatal error on a bool-typed \p E.
int64_t evalInt(ExprRef E, const Env &Bindings);

/// Process-wide count of eval() calls on predicate roots; the benches use
/// this to report predicate-evaluation workloads. Updated with relaxed
/// atomics. Compiled-predicate executions (expr/Bytecode.h) count too, so
/// the number means "predicate evaluations" regardless of evaluator.
uint64_t predicateEvalCount();
void resetPredicateEvalCount();

namespace detail {
/// Bumps the predicateEvalCount() counter; the bytecode VM calls this on
/// every program execution so both evaluators feed one statistic.
void bumpPredicateEvalCount();
} // namespace detail

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_EVAL_H

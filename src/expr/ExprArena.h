//===- expr/ExprArena.h - Interning arena for expressions ------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns and interns ExprNodes. One arena per monitor; all construction for a
/// monitor happens while holding the monitor lock (or during construction),
/// so the arena is deliberately not thread-safe.
///
/// Construction constant-folds literal operands. Folding is what makes
/// globalization (§4.1) produce canonical shared predicates: substituting
/// num=48 into `count >= num` yields the same interned node as writing
/// `count >= 48` directly.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_EXPRARENA_H
#define AUTOSYNCH_EXPR_EXPRARENA_H

#include "expr/Expr.h"

#include <deque>
#include <unordered_set>

namespace autosynch {

/// Content hash for interning lookups.
struct ExprNodeContentHash {
  size_t operator()(const ExprNode *N) const;
};

/// Content equality for interning lookups.
struct ExprNodeContentEq {
  bool operator()(const ExprNode *A, const ExprNode *B) const;
};

/// Bump-allocates and hash-conses expression nodes. Returned ExprRefs are
/// valid for the lifetime of the arena.
class ExprArena {
public:
  ExprArena() = default;
  ExprArena(const ExprArena &) = delete;
  ExprArena &operator=(const ExprArena &) = delete;

  ExprRef intLit(int64_t V);
  ExprRef boolLit(bool B);
  ExprRef var(const VarInfo &Info) { return var(Info.Id, Info.Type); }
  ExprRef var(VarId Id, TypeKind Ty);

  /// Builds a unary node (Neg over int, Not over bool). Type-checked;
  /// literal operands are folded.
  ExprRef unary(ExprKind K, ExprRef Op);

  /// Builds a binary node. Type-checked; literal operands are folded
  /// (except division/modulo by a zero literal, which is left unfolded and
  /// faults at evaluation time).
  ExprRef binary(ExprKind K, ExprRef L, ExprRef R);

  /// Builds the literal for \p V.
  ExprRef literal(const Value &V) {
    return V.isBool() ? boolLit(V.asBool()) : intLit(V.asInt());
  }

  /// Number of distinct interned nodes.
  size_t numNodes() const { return Nodes.size(); }

private:
  ExprRef intern(const ExprNode &Candidate);

  std::deque<ExprNode> Nodes;
  std::unordered_set<const ExprNode *, ExprNodeContentHash, ExprNodeContentEq>
      Interned;
};

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_EXPRARENA_H

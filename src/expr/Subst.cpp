//===- expr/Subst.cpp - Substitution and globalization ---------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "expr/Subst.h"

using namespace autosynch;

bool autosynch::isComplex(ExprRef E, const SymbolTable &Syms) {
  if (E->kind() == ExprKind::Var)
    return Syms.isLocal(E->varId());
  for (unsigned I = 0; I != E->numOperands(); ++I)
    if (isComplex(E->operand(I), Syms))
      return true;
  return false;
}

bool autosynch::isGround(ExprRef E) {
  if (E->kind() == ExprKind::Var)
    return false;
  for (unsigned I = 0; I != E->numOperands(); ++I)
    if (!isGround(E->operand(I)))
      return false;
  return true;
}

namespace {

/// Rebuilds \p E bottom-up, replacing variables selected by \p ShouldSubst
/// with literals from \p Bindings. Rebuilding through ExprArena interns and
/// folds on the way up.
template <typename ShouldSubstFn>
ExprRef rebuild(ExprArena &Arena, ExprRef E, const Env &Bindings,
                const ShouldSubstFn &ShouldSubst) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
    return E;
  case ExprKind::Var: {
    if (!ShouldSubst(E->varId()))
      return E;
    Value V = Bindings.get(E->varId());
    AUTOSYNCH_CHECK((V.isBool() ? TypeKind::Bool : TypeKind::Int) ==
                        E->type(),
                    "substituted value type mismatches variable type");
    return Arena.literal(V);
  }
  default:
    break;
  }

  if (E->numOperands() == 1) {
    ExprRef Op = rebuild(Arena, E->operand(0), Bindings, ShouldSubst);
    if (Op == E->operand(0))
      return E;
    return Arena.unary(E->kind(), Op);
  }

  ExprRef L = rebuild(Arena, E->lhs(), Bindings, ShouldSubst);
  ExprRef R = rebuild(Arena, E->rhs(), Bindings, ShouldSubst);
  if (L == E->lhs() && R == E->rhs())
    return E;
  return Arena.binary(E->kind(), L, R);
}

} // namespace

ExprRef autosynch::globalize(ExprArena &Arena, ExprRef E,
                             const SymbolTable &Syms, const Env &Locals) {
  return rebuild(Arena, E, Locals, [&](VarId Id) {
    if (!Syms.isLocal(Id))
      return false;
    AUTOSYNCH_CHECK(Locals.has(Id),
                    "globalization: unbound local variable in predicate");
    return true;
  });
}

ExprRef autosynch::substitute(ExprArena &Arena, ExprRef E,
                              const Env &Bindings) {
  return rebuild(Arena, E, Bindings,
                 [&](VarId Id) { return Bindings.has(Id); });
}

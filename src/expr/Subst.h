//===- expr/Subst.h - Substitution and globalization -----------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Globalization (paper Definition 2 and Proposition 1): a complex predicate
/// P(x, a) over shared variables x and local variables a becomes the shared
/// predicate G(x) = P(x, a_t) by substituting the locals' values a_t at the
/// instant the waituntil starts. Proposition 1 shows P and G are equivalent
/// for the whole waituntil period, because no other thread can write the
/// waiter's locals.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_SUBST_H
#define AUTOSYNCH_EXPR_SUBST_H

#include "expr/Env.h"
#include "expr/ExprArena.h"
#include "expr/SymbolTable.h"

namespace autosynch {

/// Returns true when \p E mentions at least one Local-scoped variable,
/// i.e. the paper's *complex predicate* test (Definition 1).
bool isComplex(ExprRef E, const SymbolTable &Syms);

/// Returns true when \p E mentions no variables at all.
bool isGround(ExprRef E);

/// Globalizes \p E: every Local-scoped variable is replaced by its value in
/// \p Locals (fatal error if a local is unbound — a waiter must supply all
/// of its locals). Shared variables are untouched. The rebuilt expression is
/// interned and constant-folded, so structurally equivalent globalizations
/// collapse to one node.
ExprRef globalize(ExprArena &Arena, ExprRef E, const SymbolTable &Syms,
                  const Env &Locals);

/// General substitution: replaces every variable bound in \p Bindings
/// (regardless of scope) with its literal value.
ExprRef substitute(ExprArena &Arena, ExprRef E, const Env &Bindings);

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_SUBST_H

//===- expr/SymbolTable.h - Variable declarations --------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declaration table for predicate variables. One instance per monitor: the
/// monitor's Shared<T> members register shared variables, and local
/// variables (method parameters in the paper's examples) are declared before
/// parsing predicates that mention them.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_SYMBOLTABLE_H
#define AUTOSYNCH_EXPR_SYMBOLTABLE_H

#include "expr/Var.h"

#include <string_view>
#include <unordered_map>
#include <vector>

namespace autosynch {

/// Maps variable names to dense VarIds and remembers type and scope.
class SymbolTable {
public:
  /// Declares a new variable. Fatal error on duplicate names — monitors
  /// must not have ambiguous predicate variables.
  VarId declare(std::string_view Name, TypeKind Type, VarScope Scope);

  /// Returns the info for \p Name, or nullptr if undeclared.
  const VarInfo *lookup(std::string_view Name) const;

  /// Returns the info for \p Id. Fatal error when out of range.
  const VarInfo &info(VarId Id) const;

  bool isShared(VarId Id) const {
    return info(Id).Scope == VarScope::Shared;
  }
  bool isLocal(VarId Id) const { return info(Id).Scope == VarScope::Local; }

  size_t size() const { return Vars.size(); }

  /// All declared variables in declaration order.
  const std::vector<VarInfo> &variables() const { return Vars; }

private:
  std::vector<VarInfo> Vars;
  std::unordered_map<std::string, VarId> ByName;
};

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_SYMBOLTABLE_H

//===- expr/Expr.h - Hash-consed expression AST ----------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable expression nodes for waituntil predicates. Nodes are interned
/// (hash-consed) by ExprArena, so two structurally identical expressions are
/// the *same pointer*. That gives the O(1) "syntax equivalence" test the
/// paper's predicate table needs (§5.2: predicates identical after
/// globalization map to the same condition variable).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_EXPR_H
#define AUTOSYNCH_EXPR_EXPR_H

#include "expr/Var.h"
#include "support/Check.h"

#include <cstdint>

namespace autosynch {

/// Node kinds of the predicate language.
enum class ExprKind : uint8_t {
  // Leaves.
  IntLit,
  BoolLit,
  Var,
  // Unary.
  Neg, ///< Integer negation.
  Not, ///< Boolean negation.
  // Integer arithmetic.
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  // Comparisons (operands of equal type; result bool).
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  // Boolean connectives.
  And,
  Or
};

inline bool isLeafKind(ExprKind K) {
  return K == ExprKind::IntLit || K == ExprKind::BoolLit || K == ExprKind::Var;
}

inline bool isUnaryKind(ExprKind K) {
  return K == ExprKind::Neg || K == ExprKind::Not;
}

inline bool isArithKind(ExprKind K) {
  return K >= ExprKind::Add && K <= ExprKind::Mod;
}

inline bool isComparisonKind(ExprKind K) {
  return K >= ExprKind::Eq && K <= ExprKind::Ge;
}

inline bool isLogicalKind(ExprKind K) {
  return K == ExprKind::And || K == ExprKind::Or;
}

inline bool isBinaryKind(ExprKind K) {
  return isArithKind(K) || isComparisonKind(K) || isLogicalKind(K);
}

/// Returns the comparison kind equivalent to !(a K b), e.g. Lt -> Ge.
inline ExprKind negatedComparisonKind(ExprKind K) {
  switch (K) {
  case ExprKind::Eq:
    return ExprKind::Ne;
  case ExprKind::Ne:
    return ExprKind::Eq;
  case ExprKind::Lt:
    return ExprKind::Ge;
  case ExprKind::Le:
    return ExprKind::Gt;
  case ExprKind::Gt:
    return ExprKind::Le;
  case ExprKind::Ge:
    return ExprKind::Lt;
  default:
    AUTOSYNCH_UNREACHABLE("negatedComparisonKind on non-comparison");
  }
}

/// Returns the comparison kind of (b K a) given (a K b), e.g. Lt -> Gt.
inline ExprKind swappedComparisonKind(ExprKind K) {
  switch (K) {
  case ExprKind::Eq:
  case ExprKind::Ne:
    return K;
  case ExprKind::Lt:
    return ExprKind::Gt;
  case ExprKind::Le:
    return ExprKind::Ge;
  case ExprKind::Gt:
    return ExprKind::Lt;
  case ExprKind::Ge:
    return ExprKind::Le;
  default:
    AUTOSYNCH_UNREACHABLE("swappedComparisonKind on non-comparison");
  }
}

/// Returns the source spelling of an operator kind (e.g. "<=").
const char *exprKindSpelling(ExprKind K);

class ExprNode;

/// Canonical handle to an interned expression. Pointer equality is
/// structural equality.
using ExprRef = const ExprNode *;

/// An immutable, interned expression node. Construct only via ExprArena.
class ExprNode {
public:
  ExprKind kind() const { return Kind; }
  TypeKind type() const { return Ty; }

  unsigned numOperands() const { return NumOps; }

  ExprRef operand(unsigned I) const {
    AUTOSYNCH_CHECK(I < NumOps, "operand index out of range");
    return Ops[I];
  }

  ExprRef lhs() const { return operand(0); }
  ExprRef rhs() const { return operand(1); }

  int64_t intValue() const {
    AUTOSYNCH_CHECK(Kind == ExprKind::IntLit, "intValue on non-IntLit");
    return Payload;
  }

  bool boolValue() const {
    AUTOSYNCH_CHECK(Kind == ExprKind::BoolLit, "boolValue on non-BoolLit");
    return Payload != 0;
  }

  VarId varId() const {
    AUTOSYNCH_CHECK(Kind == ExprKind::Var, "varId on non-Var");
    return static_cast<VarId>(Payload);
  }

  bool isLiteral() const {
    return Kind == ExprKind::IntLit || Kind == ExprKind::BoolLit;
  }

  /// The literal's runtime value (IntLit or BoolLit only).
  Value literalValue() const {
    if (Kind == ExprKind::IntLit)
      return Value::makeInt(Payload);
    AUTOSYNCH_CHECK(Kind == ExprKind::BoolLit,
                    "literalValue on non-literal node");
    return Value::makeBool(Payload != 0);
  }

private:
  friend class ExprArena;
  friend struct ExprNodeContentHash;
  friend struct ExprNodeContentEq;

  ExprNode() = default;

  ExprKind Kind = ExprKind::IntLit;
  TypeKind Ty = TypeKind::Int;
  uint8_t NumOps = 0;
  /// IntLit value, BoolLit as 0/1, or VarId, depending on Kind.
  int64_t Payload = 0;
  ExprRef Ops[2] = {nullptr, nullptr};
};

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_EXPR_H

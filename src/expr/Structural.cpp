//===- expr/Structural.cpp - Pointer-independent expression order ----------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "expr/Structural.h"

using namespace autosynch;

int autosynch::structuralCompare(ExprRef A, ExprRef B) {
  if (A == B) // Interning: identical structure iff identical pointer.
    return 0;
  if (A->kind() != B->kind())
    return A->kind() < B->kind() ? -1 : 1;

  // Same kind: compare payloads (literal value / variable id).
  switch (A->kind()) {
  case ExprKind::IntLit:
    return A->intValue() < B->intValue() ? -1 : 1;
  case ExprKind::BoolLit:
    return A->boolValue() < B->boolValue() ? -1 : 1;
  case ExprKind::Var:
    return A->varId() < B->varId() ? -1 : 1;
  default:
    break;
  }

  AUTOSYNCH_CHECK(A->numOperands() == B->numOperands(),
                  "same kind with differing arity");
  for (unsigned I = 0; I != A->numOperands(); ++I)
    if (int C = structuralCompare(A->operand(I), B->operand(I)))
      return C;
  AUTOSYNCH_UNREACHABLE(
      "structurally equal expressions with distinct interned nodes");
}

//===- expr/Bytecode.h - Compiled predicate evaluation ---------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stack-machine compilation of predicate expressions. The condition
/// manager evaluates registered predicates on every relay-signal scan
/// (the paper's "predicate evaluation" cost, §1); compiling a registered
/// predicate once and running flat bytecode avoids repeated tree walks.
/// Semantics are identical to expr/Eval.h, including short-circuiting of
/// && and || via conditional jumps (verified by property tests).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_BYTECODE_H
#define AUTOSYNCH_EXPR_BYTECODE_H

#include "expr/Env.h"
#include "expr/Expr.h"

#include <vector>

namespace autosynch {

/// A flat, relocatable predicate program.
class CompiledPredicate {
public:
  /// An empty program; valid() is false and run() is a fatal error.
  CompiledPredicate() = default;

  /// Compiles \p E. The program embeds VarIds, not values, so one program
  /// serves every evaluation environment.
  static CompiledPredicate compile(ExprRef E);

  bool valid() const { return !Code.empty(); }

  /// Executes the program under \p Bindings.
  Value run(const Env &Bindings) const;

  /// Executes a bool-typed program. Fatal error for int-typed programs.
  bool runBool(const Env &Bindings) const {
    return run(Bindings).asBool();
  }

  TypeKind resultType() const { return ResultType; }
  size_t numInstructions() const { return Code.size(); }
  unsigned maxStackDepth() const { return MaxStack; }

private:
  enum class OpCode : uint8_t {
    PushImm, ///< push Imm
    LoadVar, ///< push Bindings.get(A).raw()
    Neg,
    Not,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    JumpFalsePeek, ///< if top == 0, jump to A (top stays — short-circuit &&)
    JumpTruePeek,  ///< if top != 0, jump to A (top stays — short-circuit ||)
    Pop
  };

  struct Instr {
    OpCode Op;
    uint32_t A = 0;   ///< VarId or jump target.
    int64_t Imm = 0;  ///< PushImm payload.
  };

  class Compiler;

  std::vector<Instr> Code;
  TypeKind ResultType = TypeKind::Bool;
  unsigned MaxStack = 0;
};

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_BYTECODE_H

//===- expr/Bytecode.h - Compiled predicate evaluation ---------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stack-machine compilation of predicate expressions. The condition
/// manager evaluates registered predicates on every relay-signal scan
/// (the paper's "predicate evaluation" cost, §1); compiling a registered
/// predicate once and running flat bytecode avoids repeated tree walks.
/// Semantics are identical to expr/Eval.h, including short-circuiting of
/// && and || via conditional jumps (verified by property tests).
///
/// Two variable-access models:
///  * Env programs (LoadVar): every variable goes through the virtual
///    Env::get — flexible, used by tests and ad-hoc evaluation.
///  * Slot programs (LoadShared/LoadLocal, compiled with a VarResolver):
///    variables are resolved at compile time to indices into two flat
///    Value arrays, so the hot relay/wait paths evaluate with plain array
///    reads — no virtual dispatch, no hashing, no allocation.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_BYTECODE_H
#define AUTOSYNCH_EXPR_BYTECODE_H

#include "expr/Env.h"
#include "expr/Expr.h"

#include <functional>
#include <vector>

namespace autosynch {

/// Compile-time resolution of one variable reference in a slot program.
struct ResolvedVar {
  enum class Kind : uint8_t {
    Shared, ///< Index into the shared-slot array passed to runRaw.
    Local   ///< Index into the bound-locals array passed to runRaw.
  };
  Kind K = Kind::Shared;
  uint32_t Index = 0;
};

/// Maps a VarId to its slot at compile time (slot programs only).
using VarResolver = std::function<ResolvedVar(VarId)>;

/// A flat, relocatable predicate program.
class CompiledPredicate {
public:
  /// An empty program; valid() is false and run() is a fatal error.
  CompiledPredicate() = default;

  /// Compiles \p E as an Env program. The program embeds VarIds, not
  /// values, so one program serves every evaluation environment.
  static CompiledPredicate compile(ExprRef E);

  /// Compiles \p E as a slot program: every variable is resolved through
  /// \p Resolve once, at compile time. Run with runRaw.
  static CompiledPredicate compile(ExprRef E, const VarResolver &Resolve);

  bool valid() const { return !Code.empty(); }

  /// Executes an Env program under \p Bindings. Fatal error on a slot
  /// program (it has no Env to resolve against).
  Value run(const Env &Bindings) const;

  /// Executes a slot program against flat value arrays: \p Shared is
  /// indexed by LoadShared operands, \p Locals by LoadLocal operands
  /// (null is fine when the program references none). Fatal error on an
  /// Env program.
  Value runRaw(const Value *Shared, const Value *Locals) const;

  /// Executes a bool-typed program. Fatal error for int-typed programs.
  bool runBool(const Env &Bindings) const {
    return run(Bindings).asBool();
  }

  /// Bool-typed slot program against flat value arrays.
  bool runRawBool(const Value *Shared, const Value *Locals) const {
    return runRaw(Shared, Locals).asBool();
  }

  TypeKind resultType() const { return ResultType; }
  size_t numInstructions() const { return Code.size(); }
  unsigned maxStackDepth() const { return MaxStack; }

private:
  enum class OpCode : uint8_t {
    PushImm,    ///< push Imm
    LoadVar,    ///< push Bindings.get(A).raw() (Env programs)
    LoadShared, ///< push Shared[A].raw() (slot programs)
    LoadLocal,  ///< push Locals[A].raw() (slot programs)
    Neg,
    Not,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    JumpFalsePeek, ///< if top == 0, jump to A (top stays — short-circuit &&)
    JumpTruePeek,  ///< if top != 0, jump to A (top stays — short-circuit ||)
    Pop
  };

  struct Instr {
    OpCode Op;
    uint32_t A = 0;   ///< VarId or jump target.
    int64_t Imm = 0;  ///< PushImm payload.
  };

  class Compiler;

  template <typename LoadFn> Value execute(LoadFn &&Load) const;

  std::vector<Instr> Code;
  TypeKind ResultType = TypeKind::Bool;
  unsigned MaxStack = 0;
};

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_BYTECODE_H

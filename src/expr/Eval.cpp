//===- expr/Eval.cpp - Tree-walking evaluator ------------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "expr/Eval.h"

#include <atomic>

using namespace autosynch;

static std::atomic<uint64_t> EvalCount{0};

uint64_t autosynch::predicateEvalCount() {
  return EvalCount.load(std::memory_order_relaxed);
}

void autosynch::resetPredicateEvalCount() {
  EvalCount.store(0, std::memory_order_relaxed);
}

static int64_t wrap(uint64_t V) { return static_cast<int64_t>(V); }

static Value evalImpl(ExprRef E, const Env &Bindings) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return Value::makeInt(E->intValue());
  case ExprKind::BoolLit:
    return Value::makeBool(E->boolValue());
  case ExprKind::Var:
    return Bindings.get(E->varId());
  case ExprKind::Neg:
    return Value::makeInt(
        wrap(-static_cast<uint64_t>(evalImpl(E->lhs(), Bindings).asInt())));
  case ExprKind::Not:
    return Value::makeBool(!evalImpl(E->lhs(), Bindings).asBool());
  case ExprKind::And: {
    // Short-circuit, like the source language.
    if (!evalImpl(E->lhs(), Bindings).asBool())
      return Value::makeBool(false);
    return Value::makeBool(evalImpl(E->rhs(), Bindings).asBool());
  }
  case ExprKind::Or: {
    if (evalImpl(E->lhs(), Bindings).asBool())
      return Value::makeBool(true);
    return Value::makeBool(evalImpl(E->rhs(), Bindings).asBool());
  }
  default:
    break;
  }

  // Remaining kinds are strict binary operators.
  Value LV = evalImpl(E->lhs(), Bindings);
  Value RV = evalImpl(E->rhs(), Bindings);

  if (isComparisonKind(E->kind())) {
    int64_t A = LV.raw(), B = RV.raw();
    switch (E->kind()) {
    case ExprKind::Eq:
      return Value::makeBool(A == B);
    case ExprKind::Ne:
      return Value::makeBool(A != B);
    case ExprKind::Lt:
      return Value::makeBool(A < B);
    case ExprKind::Le:
      return Value::makeBool(A <= B);
    case ExprKind::Gt:
      return Value::makeBool(A > B);
    case ExprKind::Ge:
      return Value::makeBool(A >= B);
    default:
      AUTOSYNCH_UNREACHABLE("invalid comparison kind");
    }
  }

  int64_t A = LV.asInt(), B = RV.asInt();
  switch (E->kind()) {
  case ExprKind::Add:
    return Value::makeInt(
        wrap(static_cast<uint64_t>(A) + static_cast<uint64_t>(B)));
  case ExprKind::Sub:
    return Value::makeInt(
        wrap(static_cast<uint64_t>(A) - static_cast<uint64_t>(B)));
  case ExprKind::Mul:
    return Value::makeInt(
        wrap(static_cast<uint64_t>(A) * static_cast<uint64_t>(B)));
  case ExprKind::Div:
    AUTOSYNCH_CHECK(B != 0, "division by zero in predicate");
    AUTOSYNCH_CHECK(!(A == INT64_MIN && B == -1),
                    "INT64_MIN / -1 overflow in predicate");
    return Value::makeInt(A / B);
  case ExprKind::Mod:
    AUTOSYNCH_CHECK(B != 0, "modulo by zero in predicate");
    AUTOSYNCH_CHECK(!(A == INT64_MIN && B == -1),
                    "INT64_MIN % -1 overflow in predicate");
    return Value::makeInt(A % B);
  default:
    AUTOSYNCH_UNREACHABLE("invalid ExprKind in eval");
  }
}

void autosynch::detail::bumpPredicateEvalCount() {
  EvalCount.fetch_add(1, std::memory_order_relaxed);
}

Value autosynch::eval(ExprRef E, const Env &Bindings) {
  EvalCount.fetch_add(1, std::memory_order_relaxed);
  return evalImpl(E, Bindings);
}

bool autosynch::evalBool(ExprRef E, const Env &Bindings) {
  return eval(E, Bindings).asBool();
}

int64_t autosynch::evalInt(ExprRef E, const Env &Bindings) {
  return eval(E, Bindings).asInt();
}

//===- expr/Structural.h - Pointer-independent expression order -*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic total order on expressions based on structure rather
/// than on node addresses. Canonicalization sorts conjunction atoms and DNF
/// conjunctions with this order so canonical predicates are stable across
/// runs (and therefore testable against golden output).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_EXPR_STRUCTURAL_H
#define AUTOSYNCH_EXPR_STRUCTURAL_H

#include "expr/Expr.h"

namespace autosynch {

/// Three-way structural comparison: negative when A < B, zero when equal
/// (equivalently A == B, by interning), positive when A > B.
int structuralCompare(ExprRef A, ExprRef B);

/// Strict-weak-order adapter for sorting containers of ExprRef.
struct StructuralLess {
  bool operator()(ExprRef A, ExprRef B) const {
    return structuralCompare(A, B) < 0;
  }
};

} // namespace autosynch

#endif // AUTOSYNCH_EXPR_STRUCTURAL_H

//===- expr/ExprArena.cpp - Interning arena for expressions ---------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "expr/ExprArena.h"

using namespace autosynch;

const char *autosynch::exprKindSpelling(ExprKind K) {
  switch (K) {
  case ExprKind::IntLit:
    return "<int>";
  case ExprKind::BoolLit:
    return "<bool>";
  case ExprKind::Var:
    return "<var>";
  case ExprKind::Neg:
    return "-";
  case ExprKind::Not:
    return "!";
  case ExprKind::Add:
    return "+";
  case ExprKind::Sub:
    return "-";
  case ExprKind::Mul:
    return "*";
  case ExprKind::Div:
    return "/";
  case ExprKind::Mod:
    return "%";
  case ExprKind::Eq:
    return "==";
  case ExprKind::Ne:
    return "!=";
  case ExprKind::Lt:
    return "<";
  case ExprKind::Le:
    return "<=";
  case ExprKind::Gt:
    return ">";
  case ExprKind::Ge:
    return ">=";
  case ExprKind::And:
    return "&&";
  case ExprKind::Or:
    return "||";
  }
  AUTOSYNCH_UNREACHABLE("invalid ExprKind");
}

size_t ExprNodeContentHash::operator()(const ExprNode *N) const {
  // FNV-style mix over kind, payload, and operand pointers (operands are
  // already interned, so pointer identity is structural identity).
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ULL;
  };
  Mix(static_cast<uint64_t>(N->Kind));
  Mix(static_cast<uint64_t>(N->Payload));
  for (unsigned I = 0; I != N->NumOps; ++I)
    Mix(reinterpret_cast<uintptr_t>(N->Ops[I]));
  return static_cast<size_t>(H);
}

bool ExprNodeContentEq::operator()(const ExprNode *A,
                                   const ExprNode *B) const {
  if (A->Kind != B->Kind || A->Payload != B->Payload ||
      A->NumOps != B->NumOps)
    return false;
  for (unsigned I = 0; I != A->NumOps; ++I)
    if (A->Ops[I] != B->Ops[I])
      return false;
  return true;
}

ExprRef ExprArena::intern(const ExprNode &Candidate) {
  auto It = Interned.find(&Candidate);
  if (It != Interned.end())
    return *It;
  Nodes.push_back(Candidate);
  ExprRef Stored = &Nodes.back();
  Interned.insert(Stored);
  return Stored;
}

ExprRef ExprArena::intLit(int64_t V) {
  ExprNode N;
  N.Kind = ExprKind::IntLit;
  N.Ty = TypeKind::Int;
  N.Payload = V;
  return intern(N);
}

ExprRef ExprArena::boolLit(bool B) {
  ExprNode N;
  N.Kind = ExprKind::BoolLit;
  N.Ty = TypeKind::Bool;
  N.Payload = B ? 1 : 0;
  return intern(N);
}

ExprRef ExprArena::var(VarId Id, TypeKind Ty) {
  ExprNode N;
  N.Kind = ExprKind::Var;
  N.Ty = Ty;
  N.Payload = static_cast<int64_t>(Id);
  return intern(N);
}

/// Two's-complement wrapping arithmetic: evaluation and folding share these
/// semantics so folding never changes a predicate's meaning.
static int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
static int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
static int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
static int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(-static_cast<uint64_t>(A));
}

ExprRef ExprArena::unary(ExprKind K, ExprRef Op) {
  AUTOSYNCH_CHECK(isUnaryKind(K), "unary() requires a unary kind");
  if (K == ExprKind::Neg) {
    AUTOSYNCH_CHECK(Op->type() == TypeKind::Int, "Neg requires an int");
    if (Op->kind() == ExprKind::IntLit)
      return intLit(wrapNeg(Op->intValue()));
  } else {
    AUTOSYNCH_CHECK(Op->type() == TypeKind::Bool, "Not requires a bool");
    if (Op->kind() == ExprKind::BoolLit)
      return boolLit(!Op->boolValue());
  }
  ExprNode N;
  N.Kind = K;
  N.Ty = Op->type();
  N.NumOps = 1;
  N.Ops[0] = Op;
  return intern(N);
}

ExprRef ExprArena::binary(ExprKind K, ExprRef L, ExprRef R) {
  AUTOSYNCH_CHECK(isBinaryKind(K), "binary() requires a binary kind");
  if (isArithKind(K)) {
    AUTOSYNCH_CHECK(L->type() == TypeKind::Int && R->type() == TypeKind::Int,
                    "arithmetic requires int operands");
  } else if (isLogicalKind(K)) {
    AUTOSYNCH_CHECK(L->type() == TypeKind::Bool && R->type() == TypeKind::Bool,
                    "logical connective requires bool operands");
  } else {
    AUTOSYNCH_CHECK(L->type() == R->type(),
                    "comparison requires operands of equal type");
    AUTOSYNCH_CHECK(K == ExprKind::Eq || K == ExprKind::Ne ||
                        L->type() == TypeKind::Int,
                    "ordering comparison requires int operands");
  }

  // Constant folding.
  if (L->isLiteral() && R->isLiteral()) {
    int64_t A = L->Payload;
    int64_t B = R->Payload;
    switch (K) {
    case ExprKind::Add:
      return intLit(wrapAdd(A, B));
    case ExprKind::Sub:
      return intLit(wrapSub(A, B));
    case ExprKind::Mul:
      return intLit(wrapMul(A, B));
    case ExprKind::Div:
      if (B != 0 && !(A == INT64_MIN && B == -1))
        return intLit(A / B);
      break; // Leave the faulting division unfolded.
    case ExprKind::Mod:
      if (B != 0 && !(A == INT64_MIN && B == -1))
        return intLit(A % B);
      break;
    case ExprKind::Eq:
      return boolLit(A == B);
    case ExprKind::Ne:
      return boolLit(A != B);
    case ExprKind::Lt:
      return boolLit(A < B);
    case ExprKind::Le:
      return boolLit(A <= B);
    case ExprKind::Gt:
      return boolLit(A > B);
    case ExprKind::Ge:
      return boolLit(A >= B);
    case ExprKind::And:
      return boolLit(A != 0 && B != 0);
    case ExprKind::Or:
      return boolLit(A != 0 || B != 0);
    default:
      AUTOSYNCH_UNREACHABLE("invalid binary kind");
    }
  }

  // Boolean identity folds keep DNF conversion output tidy.
  if (K == ExprKind::And) {
    if (L->kind() == ExprKind::BoolLit)
      return L->boolValue() ? R : L;
    if (R->kind() == ExprKind::BoolLit)
      return R->boolValue() ? L : R;
  } else if (K == ExprKind::Or) {
    if (L->kind() == ExprKind::BoolLit)
      return L->boolValue() ? L : R;
    if (R->kind() == ExprKind::BoolLit)
      return R->boolValue() ? R : L;
  }

  ExprNode N;
  N.Kind = K;
  N.Ty = isArithKind(K) ? TypeKind::Int : TypeKind::Bool;
  N.NumOps = 2;
  N.Ops[0] = L;
  N.Ops[1] = R;
  return intern(N);
}

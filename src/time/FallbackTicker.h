//===- time/FallbackTicker.h - Far-deadline fallback tick ------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deadline runtime's fallback tick for *far* deadlines (beyond
/// TimerWheel::NearHorizonNs). A near-deadline waiter blocks with a
/// kernel-bounded condvar wait — precise, but every such block arms a
/// kernel timer, which alone costs ~10% on a blocking wait/signal cycle
/// even for hand-written pthread-style code. A far-deadline waiter
/// instead blocks *unbounded* under the epoch handshake (sync/Mutex.h)
/// and parks an intrusive node here; one process-wide sweeper thread
/// sleeps until the earliest parked deadline and signalAll-s the
/// conditions that come due. The whole process then arms one kernel
/// timer for all far waits together, and the per-wait cost is two
/// sharded-lock list splices on the waiter's own stack node — no
/// allocation, no global mutex on the hot path.
///
/// Structure: nodes live in one of several shards (picked by thread id,
/// so a producer/consumer pair rarely collides), each an unsorted
/// intrusive list under its own lock. A monotonic atomic lower bound of
/// the earliest deadline tells the sweeper when to wake; it may be stale
/// low after removals (the sweeper then finds nothing due, recomputes it
/// exactly under all shard locks, and goes back to sleep), but it is
/// never late: add() publishes its deadline with an atomic min *before*
/// deciding whether to nudge the sweeper, and the nudge itself takes the
/// sweeper's decision lock, so the sweeper either sees the new bound or
/// receives the notify.
///
/// Lifetime discipline mirrors CancelToken: the sweeper signals while
/// holding the node's shard lock, and a waiter deregisters under that
/// lock before its frame can unwind, so a fired signal never chases a
/// destroyed condition. The sweeper starts lazily on the first park and
/// is joined when the singleton tears down at process exit.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TIME_FALLBACKTICKER_H
#define AUTOSYNCH_TIME_FALLBACKTICKER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace autosynch::sync {
class Condition;
} // namespace autosynch::sync

namespace autosynch::time {

/// One parked far wait; embedded in the waiter's stack frame (the
/// condition manager's TimedWait). All fields are ticker-internal while
/// the node is parked.
struct FarNode {
  FarNode *Prev = nullptr;
  FarNode *Next = nullptr;
  sync::Condition *Cond = nullptr;
  uint64_t DeadlineNs = 0;
  uint8_t Shard = 0;
  enum class State : uint8_t { Idle, Queued, Fired } S = State::Idle;
};

/// Process-wide far-deadline waker; all members thread-safe.
class FallbackTicker {
public:
  static FallbackTicker &global();

  /// Parks \p N (Cond and DeadlineNs set, deadline bounded): N.Cond will
  /// be signalAll'd at (or promptly after) the deadline unless removed
  /// first.
  void add(FarNode &N);

  /// Unparks \p N (no-op if the sweeper already fired it). \p N is Idle
  /// and safe to destroy on return.
  void remove(FarNode &N);

  /// Parked nodes (introspection for tests; takes every shard lock).
  size_t pending() const;

  ~FallbackTicker();

private:
  static constexpr size_t NumShards = 8;

  struct Shard {
    mutable std::mutex M;
    FarNode *Head = nullptr;
  };

  FallbackTicker() = default;
  void run();
  /// Lowers the sleep bound to \p DeadlineNs and nudges the sweeper if
  /// it may be sleeping past it.
  void publishDeadline(uint64_t DeadlineNs);

  Shard Shards[NumShards];
  /// Lower bound on the earliest parked deadline (never late; may be
  /// stale low). NeverNs when the sweeper believes nothing is parked.
  std::atomic<uint64_t> MinDeadline{~uint64_t{0}};

  /// Sweeper decision lock: held from reading MinDeadline to entering
  /// the wait, so an earlier-deadline publisher cannot slip between.
  std::mutex TickM;
  std::condition_variable CV;
  bool Stop = false;
  std::once_flag StartOnce;
  std::thread Thread;
};

} // namespace autosynch::time

#endif // AUTOSYNCH_TIME_FALLBACKTICKER_H

//===- time/TimerWheel.h - Hierarchical timer wheel ------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deadline runtime's timer store: a hierarchical timing wheel (Varghese
/// & Lauck) of Levels wheels with Slots slots each, at a fixed tick
/// resolution. insert() and cancel() are O(1) — a level/slot computation
/// plus an intrusive doubly-linked-list splice — and advance() moves every
/// node whose deadline tick has fully elapsed to the caller, cascading
/// higher-level slots down lazily as the current tick crosses window
/// boundaries.
///
/// Deployment model (see core/ConditionManager.h): each condition manager
/// owns one wheel holding its blocked timed waiters. The wheel has its own
/// internal lock — sharded off the monitor mutex — so the structure itself
/// never contends with monitor regions; advance() is *driven lazily* from
/// the monitor's wait/exit paths (every relaySignal polls it through two
/// relaxed loads and a clock read only when timers exist and could be due).
/// There is deliberately no ticker thread: the fallback tick that guarantees
/// an expiry is noticed even when no other thread touches the monitor is
/// the expiring waiter's own bounded condvar wait (sync::Condition::
/// awaitUntil), which returns at the deadline regardless of traffic. The
/// wheel therefore only ever *accelerates* expiry processing and carries
/// the bookkeeping that lets exiting threads retire expired waiters from
/// relay consideration promptly.
///
/// Nodes are intrusive and caller-owned (the waiting thread's stack frame);
/// all node state transitions happen under the wheel lock, and the
/// embedding code (the condition manager) guarantees a node outlives its
/// wheel membership by cancelling before the frame unwinds.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TIME_TIMERWHEEL_H
#define AUTOSYNCH_TIME_TIMERWHEEL_H

#include "time/Deadline.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace autosynch::time {

/// One pending timer, embedded in its owner (for monitor waits: the
/// blocked thread's stack-allocated TimedWait). All fields other than
/// Owner/DeadlineNs are wheel-internal.
struct TimerNode {
  TimerNode *Prev = nullptr;
  TimerNode *Next = nullptr;
  /// Absolute monotonic deadline (time::nowNs domain).
  uint64_t DeadlineNs = 0;
  /// Opaque back-pointer for the embedding layer (the condition manager
  /// stores its TimedWait here).
  void *Owner = nullptr;

  enum class State : uint8_t {
    Idle,   ///< Not in any wheel.
    Queued, ///< Linked into a wheel slot.
    Fired   ///< Extracted by advance(); awaiting owner-side processing.
  };
  State S = State::Idle;

  /// Wheel-internal placement (valid while Queued).
  uint8_t Level = 0;
  uint8_t Slot = 0;
};

/// Hierarchical timing wheel. Thread-safe; every public member may be
/// called from any thread.
class TimerWheel {
public:
  static constexpr int SlotBits = 6;
  static constexpr int Slots = 1 << SlotBits; // 64
  static constexpr int Levels = 4;
  /// Default resolution: 2^17 ns ≈ 131 µs per tick. Level 0 then spans
  /// ~8.4 ms, level 1 ~540 ms, level 2 ~34 s, level 3 ~37 min; deadlines
  /// beyond the horizon clamp to the top level and re-cascade.
  static constexpr uint64_t DefaultTickNs = uint64_t{1} << 17;

  /// Registration horizon for the condition manager's waiters: only
  /// deadlines within ~4.3 s are worth a wheel entry. A farther waiter
  /// wakes itself at its own bounded block regardless (the wheel only
  /// *accelerates* retirement), and skipping it keeps generous-deadline
  /// hot paths free of wheel traffic and exit-path expiry probes.
  static constexpr uint64_t NearHorizonNs = uint64_t{1} << 32;

  explicit TimerWheel(uint64_t TickNs = DefaultTickNs)
      : TimerWheel(TickNs, nowNs()) {}
  TimerWheel(uint64_t TickNs, uint64_t StartNs);
  TimerWheel(const TimerWheel &) = delete;
  TimerWheel &operator=(const TimerWheel &) = delete;

  /// Queues \p N to fire once its deadline tick has elapsed. \p N must be
  /// Idle or Fired (re-arming a fired node is allowed); DeadlineNs must be
  /// set and must not be NeverNs (an unbounded wait has no timer).
  void insert(TimerNode &N);

  /// Unlinks \p N if it is still queued. Returns false when the node was
  /// already extracted by advance() (or was never queued); either way the
  /// node is Idle on return and safe to destroy or re-arm.
  bool cancel(TimerNode &N);

  /// Moves every node whose deadline tick has fully elapsed at \p NowNanos
  /// (DeadlineNs >> tick < NowNanos >> tick, so the node's deadline is
  /// certainly in the past) into \p Out, marking each Fired. Returns the
  /// number of nodes fired. Nodes in the current partial tick fire on a
  /// later call — at most one tick of wheel-side latency, which the
  /// waiters' own bounded blocks absorb.
  size_t advance(uint64_t NowNanos, std::vector<TimerNode *> &Out);

  /// Number of queued nodes. Relaxed read: the monitor exit path uses it
  /// as a zero-cost "any timers at all?" gate.
  size_t size() const { return Count.load(std::memory_order_relaxed); }

  /// Lower bound on the earliest queued deadline (NeverNs when empty):
  /// no node can fire before this instant, so callers skip the clock-
  /// compare-advance dance while now is below it. Relaxed read; may be
  /// conservative (early) but never late.
  uint64_t nextDueBoundNs() const {
    return NextDueBound.load(std::memory_order_relaxed);
  }

  uint64_t tickNs() const { return TickNs; }

private:
  struct SlotList {
    TimerNode *Head = nullptr;
  };

  void linkLocked(TimerNode &N);
  void unlinkLocked(TimerNode &N);
  /// Re-buckets every node of level \p L's current slot (called as the
  /// current tick enters a new level-(L-1) window).
  void cascadeLocked(int L);
  /// Recomputes NextDueBound from the occupancy bitmaps.
  void refreshDueBoundLocked();

  const uint64_t TickNs;
  mutable std::mutex Lock;
  /// Next tick advance() will retire (ticks strictly below have fired).
  uint64_t CurTick;
  SlotList Wheel[Levels][Slots];
  /// Per-level bitmask of non-empty slots, for skip-scans over idle gaps.
  uint64_t Occ[Levels] = {0, 0, 0, 0};
  std::atomic<size_t> Count{0};
  std::atomic<uint64_t> NextDueBound{NeverNs};
};

} // namespace autosynch::time

#endif // AUTOSYNCH_TIME_TIMERWHEEL_H

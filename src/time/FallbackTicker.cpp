//===- time/FallbackTicker.cpp - Far-deadline fallback tick ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "time/FallbackTicker.h"

#include "support/Check.h"
#include "sync/Mutex.h"
#include "time/Deadline.h"

#include <chrono>
#include <functional>

using namespace autosynch;
using namespace autosynch::time;

FallbackTicker &FallbackTicker::global() {
  static FallbackTicker Instance;
  return Instance;
}

FallbackTicker::~FallbackTicker() {
  {
    std::lock_guard<std::mutex> G(TickM);
    Stop = true;
  }
  CV.notify_one();
  if (Thread.joinable())
    Thread.join();
}

void FallbackTicker::publishDeadline(uint64_t DeadlineNs) {
  // Monotonic atomic min: the bound is visible before any sleep decision
  // that could miss it (see below).
  uint64_t Cur = MinDeadline.load(std::memory_order_relaxed);
  bool Lowered = false;
  while (DeadlineNs < Cur) {
    if (MinDeadline.compare_exchange_weak(Cur, DeadlineNs,
                                          std::memory_order_relaxed)) {
      Lowered = true;
      break;
    }
  }
  if (!Lowered)
    return; // The sweeper already wakes early enough.
  // The sweeper holds TickM from reading MinDeadline until it enters the
  // wait; taking it here means either it has not read yet (and will see
  // the lowered bound) or it is already waiting (and gets the notify).
  std::lock_guard<std::mutex> G(TickM);
  CV.notify_one();
}

void FallbackTicker::add(FarNode &N) {
  AUTOSYNCH_CHECK(N.Cond && isBounded(N.DeadlineNs),
                  "far park needs a condition and a bounded deadline");
  AUTOSYNCH_CHECK(N.S != FarNode::State::Queued, "far node parked twice");
  std::call_once(StartOnce, [this] {
    Thread = std::thread([this] { run(); });
  });

  size_t Idx = std::hash<std::thread::id>{}(std::this_thread::get_id()) %
               NumShards;
  N.Shard = static_cast<uint8_t>(Idx);
  Shard &S = Shards[Idx];
  {
    std::lock_guard<std::mutex> G(S.M);
    N.Prev = nullptr;
    N.Next = S.Head;
    if (S.Head)
      S.Head->Prev = &N;
    S.Head = &N;
    N.S = FarNode::State::Queued;
  }
  publishDeadline(N.DeadlineNs);
}

void FallbackTicker::remove(FarNode &N) {
  Shard &S = Shards[N.Shard];
  std::lock_guard<std::mutex> G(S.M);
  if (N.S != FarNode::State::Queued) {
    N.S = FarNode::State::Idle; // Fired while we were waking up.
    return;
  }
  if (N.Prev)
    N.Prev->Next = N.Next;
  else
    S.Head = N.Next;
  if (N.Next)
    N.Next->Prev = N.Prev;
  N.Prev = N.Next = nullptr;
  N.S = FarNode::State::Idle;
  // MinDeadline may now be stale low; the sweeper absorbs that with one
  // empty sweep and recomputes the exact bound.
}

size_t FallbackTicker::pending() const {
  size_t Count = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> G(S.M);
    for (FarNode *N = S.Head; N; N = N->Next)
      ++Count;
  }
  return Count;
}

void FallbackTicker::run() {
  std::unique_lock<std::mutex> L(TickM);
  while (!Stop) {
    uint64_t Bound = MinDeadline.load(std::memory_order_relaxed);
    if (Bound == NeverNs) {
      CV.wait(L);
      continue;
    }
    uint64_t Now = nowNs();
    if (Now < Bound) {
      CV.wait_until(L, std::chrono::steady_clock::time_point(
                           std::chrono::nanoseconds(Bound)));
      continue; // Re-evaluate: Stop, a lowered bound, or genuinely due.
    }

    // Sweep. All shard locks are held while the new bound is published,
    // so a racing add() either lands before (its node is seen here) or
    // runs its atomic min strictly after this store — the bound can
    // only be pessimistic-early, never late.
    L.unlock();
    uint64_t NewMin = NeverNs;
    for (Shard &S : Shards)
      S.M.lock();
    for (Shard &S : Shards) {
      FarNode *N = S.Head;
      while (N) {
        FarNode *Next = N->Next;
        if (N->DeadlineNs <= Now) {
          // Fire: the waiter observes the clock itself on wake. Signal
          // under the shard lock — the waiter cannot deregister (nor
          // its monitor die) until we release it.
          N->Cond->signalAll();
          if (N->Prev)
            N->Prev->Next = N->Next;
          else
            S.Head = N->Next;
          if (N->Next)
            N->Next->Prev = N->Prev;
          N->Prev = N->Next = nullptr;
          N->S = FarNode::State::Fired;
        } else if (N->DeadlineNs < NewMin) {
          NewMin = N->DeadlineNs;
        }
        N = Next;
      }
    }
    MinDeadline.store(NewMin, std::memory_order_relaxed);
    for (size_t I = NumShards; I != 0; --I)
      Shards[I - 1].M.unlock();
    L.lock();
  }
}

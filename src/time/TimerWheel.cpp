//===- time/TimerWheel.cpp - Hierarchical timer wheel ----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "time/TimerWheel.h"

#include "support/Check.h"

#include <algorithm>
#include <bit>

using namespace autosynch;
using namespace autosynch::time;

namespace {

constexpr uint64_t SlotMask = TimerWheel::Slots - 1;

/// Ticks one level spans per slot.
constexpr int levelShift(int L) { return TimerWheel::SlotBits * L; }

} // namespace

TimerWheel::TimerWheel(uint64_t Tick, uint64_t StartNs) : TickNs(Tick) {
  AUTOSYNCH_CHECK(Tick > 0, "timer wheel tick must be positive");
  CurTick = StartNs / TickNs;
}

void TimerWheel::linkLocked(TimerNode &N) {
  uint64_t DTick = N.DeadlineNs / TickNs;
  if (DTick < CurTick)
    DTick = CurTick; // Already due; fires on the next elapsed tick.
  uint64_t Delta = DTick - CurTick;

  int L = 0;
  while (L + 1 < Levels && Delta >= (uint64_t{1} << levelShift(L + 1)))
    ++L;
  if (Delta >= (uint64_t{1} << levelShift(Levels))) {
    // Beyond the horizon: park in the farthest top-level slot; each pass
    // through the top window re-buckets it until the deadline is in range.
    DTick = CurTick + (uint64_t{1} << levelShift(Levels)) - 1;
    L = Levels - 1;
  }

  unsigned Slot =
      static_cast<unsigned>((DTick >> levelShift(L)) & SlotMask);
  N.Level = static_cast<uint8_t>(L);
  N.Slot = static_cast<uint8_t>(Slot);
  N.S = TimerNode::State::Queued;
  SlotList &List = Wheel[L][Slot];
  N.Prev = nullptr;
  N.Next = List.Head;
  if (List.Head)
    List.Head->Prev = &N;
  List.Head = &N;
  Occ[L] |= uint64_t{1} << Slot;

  uint64_t BoundNs = DTick * TickNs; // DTick * TickNs <= DeadlineNs.
  if (BoundNs < NextDueBound.load(std::memory_order_relaxed))
    NextDueBound.store(BoundNs, std::memory_order_relaxed);
}

void TimerWheel::unlinkLocked(TimerNode &N) {
  SlotList &List = Wheel[N.Level][N.Slot];
  if (N.Prev)
    N.Prev->Next = N.Next;
  else {
    AUTOSYNCH_CHECK(List.Head == &N, "timer node not at its slot head");
    List.Head = N.Next;
  }
  if (N.Next)
    N.Next->Prev = N.Prev;
  if (!List.Head)
    Occ[N.Level] &= ~(uint64_t{1} << N.Slot);
  N.Prev = N.Next = nullptr;
}

void TimerWheel::refreshDueBoundLocked() {
  uint64_t Bound = NeverNs;
  for (int L = 0; L != Levels; ++L) {
    uint64_t Mask = Occ[L];
    if (!Mask)
      continue;
    uint64_t CL = CurTick >> levelShift(L);
    uint64_t WindowBase = CL & ~SlotMask;
    uint64_t Earliest = NeverNs;
    while (Mask) {
      unsigned Bit = static_cast<unsigned>(std::countr_zero(Mask));
      Mask &= Mask - 1;
      uint64_t Cnt = WindowBase | Bit;
      // Level 0 slots hold counters in [CL, CL+64); higher levels hold
      // (CL, CL+64] (the current-counter slot was cascaded on entry).
      if (L == 0 ? Cnt < CL : Cnt <= CL)
        Cnt += Slots;
      Earliest = std::min(Earliest, Cnt << levelShift(L));
    }
    Bound = std::min(Bound, Earliest * TickNs);
  }
  NextDueBound.store(Bound, std::memory_order_relaxed);
}

void TimerWheel::insert(TimerNode &N) {
  AUTOSYNCH_CHECK(N.DeadlineNs != NeverNs,
                  "unbounded waits do not register timers");
  std::lock_guard<std::mutex> G(Lock);
  AUTOSYNCH_CHECK(N.S != TimerNode::State::Queued,
                  "timer node inserted twice");
  linkLocked(N);
  Count.fetch_add(1, std::memory_order_relaxed);
}

bool TimerWheel::cancel(TimerNode &N) {
  std::lock_guard<std::mutex> G(Lock);
  if (N.S != TimerNode::State::Queued) {
    N.S = TimerNode::State::Idle;
    return false;
  }
  unlinkLocked(N);
  N.S = TimerNode::State::Idle;
  Count.fetch_sub(1, std::memory_order_relaxed);
  refreshDueBoundLocked();
  return true;
}

void TimerWheel::cascadeLocked(int L) {
  unsigned Slot =
      static_cast<unsigned>((CurTick >> levelShift(L)) & SlotMask);
  TimerNode *N = Wheel[L][Slot].Head;
  Wheel[L][Slot].Head = nullptr;
  Occ[L] &= ~(uint64_t{1} << Slot);
  while (N) {
    TimerNode *Next = N->Next;
    linkLocked(*N); // Re-buckets relative to the advanced CurTick.
    N = Next;
  }
}

size_t TimerWheel::advance(uint64_t NowNanos, std::vector<TimerNode *> &Out) {
  std::lock_guard<std::mutex> G(Lock);
  uint64_t NowTick = NowNanos / TickNs;
  size_t Fired = 0;

  while (CurTick < NowTick) {
    if (Count.load(std::memory_order_relaxed) == 0) {
      CurTick = NowTick;
      break;
    }

    unsigned Idx = static_cast<unsigned>(CurTick & SlotMask);
    if (Idx == 0) {
      // Entering a new level-0 window: pull the matching level-1 slot
      // down, and recursively higher levels on their own window
      // boundaries. Lazy cascade — no work happens between boundaries.
      for (int L = 1; L != Levels; ++L) {
        cascadeLocked(L);
        if (((CurTick >> levelShift(L)) & SlotMask) != 0)
          break;
      }
    }

    // Retire the current tick's slot: every node here has deadline tick
    // CurTick < NowTick, so its deadline is certainly in the past.
    TimerNode *N = Wheel[0][Idx].Head;
    Wheel[0][Idx].Head = nullptr;
    Occ[0] &= ~(uint64_t{1} << Idx);
    size_t SlotFired = 0;
    while (N) {
      TimerNode *Next = N->Next;
      N->Prev = N->Next = nullptr;
      N->S = TimerNode::State::Fired;
      Out.push_back(N);
      ++SlotFired;
      N = Next;
    }
    Fired += SlotFired;
    Count.fetch_sub(SlotFired, std::memory_order_relaxed);

    ++CurTick;
    // Skip-scan the rest of the window: jump straight to the next
    // occupied level-0 slot (or the window boundary, where the cascade
    // must run) instead of stepping idle ticks one by one.
    unsigned NIdx = static_cast<unsigned>(CurTick & SlotMask);
    if (NIdx != 0) {
      uint64_t WindowBase = CurTick - NIdx;
      uint64_t M = Occ[0] & (~uint64_t{0} << NIdx);
      uint64_t Next =
          M ? WindowBase + static_cast<unsigned>(std::countr_zero(M))
            : WindowBase + Slots;
      CurTick = std::min(Next, NowTick);
    }
  }

  refreshDueBoundLocked();
  return Fired;
}

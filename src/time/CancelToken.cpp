//===- time/CancelToken.cpp - Cooperative wait cancellation ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "time/CancelToken.h"

#include "support/Check.h"
#include "sync/Mutex.h"

#include <algorithm>

using namespace autosynch;
using namespace autosynch::time;

CancelToken::CancelToken() : S(std::make_shared<State>()) {}

void CancelToken::cancel() {
  std::lock_guard<std::mutex> G(S->M);
  S->Cancelled.store(true, std::memory_order_release);
  // Signal while holding the token lock: a registered wait cannot
  // deregister (and its monitor cannot be torn down) until we are done,
  // so every pointer here is live. signalAll is lock-free-safe on both
  // backends (see sync/Mutex.h).
  for (sync::Condition *C : S->Waits)
    C->signalAll();
}

size_t CancelToken::registeredWaits() const {
  std::lock_guard<std::mutex> G(S->M);
  return S->Waits.size();
}

CancelScope::CancelScope(CancelToken *Token, sync::Condition *Cond)
    : Token(Token), Cond(Cond) {
  if (!Token)
    return;
  std::lock_guard<std::mutex> G(Token->S->M);
  Token->S->Waits.push_back(Cond);
}

CancelScope::~CancelScope() {
  if (!Token)
    return;
  std::lock_guard<std::mutex> G(Token->S->M);
  auto &W = Token->S->Waits;
  auto It = std::find(W.begin(), W.end(), Cond);
  AUTOSYNCH_CHECK(It != W.end(), "cancel scope lost its registration");
  *It = W.back();
  W.pop_back();
}

//===- time/Deadline.h - Monotonic deadlines -------------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deadline runtime's time base: monotonic nanoseconds since the
/// steady-clock epoch (CLOCK_MONOTONIC on Linux — the same clock the futex
/// backend's absolute timed waits use, so deadlines mean the same thing in
/// every layer). A Deadline is a point on that clock; NeverNs is the
/// unbounded sentinel, so an untimed wait and a timed wait share one code
/// path with one comparison telling them apart.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TIME_DEADLINE_H
#define AUTOSYNCH_TIME_DEADLINE_H

#include <chrono>
#include <cstdint>
#include <limits>

namespace autosynch::time {

/// The unbounded-deadline sentinel: no monotonic clock reaches it.
inline constexpr uint64_t NeverNs = ~uint64_t{0};

/// Whether \p DeadlineNs is a real bound. Deadlines at or beyond
/// INT64_MAX nanoseconds (the sentinel, or a saturating now+timeout sum
/// ~292 years out) are unbounded in effect — the monotonic clock's
/// signed representation never reaches them — and the runtime treats
/// them as never: no timer-wheel registration, no expiry.
inline constexpr bool isBounded(uint64_t DeadlineNs) {
  return DeadlineNs < (~uint64_t{0} >> 1);
}

/// Monotonic now, in nanoseconds since the steady-clock epoch.
inline uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \p Now plus \p TimeoutNs, saturating at NeverNs (a huge timeout must
/// stay unbounded-in-effect, never wrap into the past).
inline uint64_t deadlineAfter(uint64_t Now, uint64_t TimeoutNs) {
  return TimeoutNs >= NeverNs - Now ? NeverNs : Now + TimeoutNs;
}

/// A raw nanosecond timeout as a chrono duration for waitUntilFor,
/// clamped to the signed range (INT64_MAX ns ≈ 292 years — unbounded in
/// effect; deadlineAfter and isBounded treat the resulting deadline as
/// never). The uint64-timeout problem interfaces funnel through this.
inline std::chrono::nanoseconds toTimeout(uint64_t TimeoutNs) {
  constexpr uint64_t Max =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  return std::chrono::nanoseconds(
      static_cast<int64_t>(TimeoutNs < Max ? TimeoutNs : Max));
}

/// A point on the monotonic clock, for waitUntilBy. Value-semantic and
/// trivially copyable; Deadline::never() expresses a cancellation-only
/// wait (block until the predicate holds or the token fires).
struct Deadline {
  uint64_t Ns = NeverNs;

  static constexpr Deadline never() { return Deadline{NeverNs}; }

  /// The deadline \p D from now.
  template <typename Rep, typename Period>
  static Deadline in(std::chrono::duration<Rep, Period> D) {
    auto NsCount =
        std::chrono::duration_cast<std::chrono::nanoseconds>(D).count();
    if (NsCount <= 0)
      return Deadline{nowNs()}; // Already due.
    return Deadline{deadlineAfter(nowNs(), static_cast<uint64_t>(NsCount))};
  }

  /// A steady-clock time point as a deadline.
  static Deadline at(std::chrono::steady_clock::time_point TP) {
    auto NsCount = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       TP.time_since_epoch())
                       .count();
    return Deadline{NsCount <= 0 ? 0 : static_cast<uint64_t>(NsCount)};
  }

  bool isNever() const { return Ns == NeverNs; }
  bool passed(uint64_t NowNanos) const { return NowNanos >= Ns; }
};

} // namespace autosynch::time

#endif // AUTOSYNCH_TIME_DEADLINE_H

//===- time/CancelToken.h - Cooperative wait cancellation ------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CancelToken: aborts blocked monitor waits from any thread. A token is a
/// cheap copyable handle on shared state; every waitUntilFor/waitUntilBy
/// that takes the token registers its condition variable before blocking
/// and deregisters on return, and cancel() sets the sticky cancelled flag
/// and wakes every registered wait. A cancelled wait returns false exactly
/// like a timeout (predicate-first: a wait that observes its predicate
/// true returns true even if the token fired concurrently).
///
/// Why cancellation cannot be lost: cancel() publishes the flag and then
/// signals while holding the token lock, and a waiter deregisters under
/// the same lock before its stack frame can unwind — so a signal never
/// chases a destroyed condition variable. The wake itself cannot slip
/// between the waiter's last flag check and its block because the waiter
/// captures the condition's wake epoch *before* checking the flag and
/// blocks with sync::Condition::awaitUntil(deadline, epoch), which returns
/// immediately when the epoch has moved (both backends are sequence-
/// counted). Any interleaving therefore either lands the flag before the
/// check, or bumps the epoch after the capture — never a silent miss.
///
/// cancel() uses signalAll on the registered conditions: a record's
/// condition may be shared by cancelled and uncancelled waiters, and the
/// uninvolved ones treat the wake as an ordinary spurious wakeup.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TIME_CANCELTOKEN_H
#define AUTOSYNCH_TIME_CANCELTOKEN_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace autosynch::sync {
class Condition;
} // namespace autosynch::sync

namespace autosynch::time {

/// Copyable cancellation handle; copies share one sticky flag.
class CancelToken {
public:
  CancelToken();

  /// Sets the sticky cancelled flag and wakes every registered wait.
  /// Idempotent; callable from any thread — but not from inside a monitor
  /// region that a registered wait's monitor could be blocked on (it
  /// signals lock-free, so it takes no monitor lock and cannot deadlock,
  /// but a cancel issued while *holding* the target monitor is pointless:
  /// the woken wait would just block on the mutex the caller holds).
  void cancel();

  bool cancelled() const {
    return S->Cancelled.load(std::memory_order_acquire);
  }

  /// Number of currently registered (blocked) waits; introspection for
  /// tests.
  size_t registeredWaits() const;

private:
  friend class CancelScope;

  struct State {
    std::mutex M;
    std::atomic<bool> Cancelled{false};
    /// Condition variables of blocked waits holding this token. A
    /// condition appears once per blocked wait (duplicates allowed: two
    /// waiters of one predicate record share a condition).
    std::vector<sync::Condition *> Waits;
  };

  std::shared_ptr<State> S;
};

/// RAII registration of one blocked wait with a token, used by the
/// condition manager around its block loop. Detaches on destruction; a
/// null token degenerates to a no-op so untimed/untokened waits share the
/// same call sites.
class CancelScope {
public:
  CancelScope(CancelToken *Token, sync::Condition *Cond);
  ~CancelScope();
  CancelScope(const CancelScope &) = delete;
  CancelScope &operator=(const CancelScope &) = delete;

  bool cancelled() const {
    return Token && Token->cancelled();
  }

private:
  CancelToken *Token;
  sync::Condition *Cond;
};

} // namespace autosynch::time

#endif // AUTOSYNCH_TIME_CANCELTOKEN_H

//===- core/Monitor.h - The automatic-signal monitor -----------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing automatic-signal monitor: the C++ rendering of the
/// paper's `AutoSynch class`. Derive from Monitor, declare monitor state as
/// Shared<T> members, wrap each public method body in a Region, and block
/// with waitUntil — no condition variables, no signal/signalAll:
///
/// \code
///   class BoundedBuffer : public autosynch::Monitor {
///   public:
///     explicit BoundedBuffer(int64_t N) : Capacity(N) {}
///
///     void put(int64_t Items) {
///       Region R(*this);
///       waitUntil(Count + Items <= Capacity);   // EDSL predicate
///       Count += Items;
///     }
///
///     int64_t take(int64_t Num) {
///       Region R(*this);
///       waitUntil("count >= num", locals().bindInt(local("num"), Num));
///       Count -= Num;
///       return Num;
///     }
///
///   private:
///     Shared<int64_t> Count{*this, "count", 0};
///     int64_t Capacity;
///   };
/// \endcode
///
/// Two predicate front ends with identical behaviour:
///  * the EDSL (expression templates over Shared<T>): local values are
///    baked in as literals — globalization done by construction;
///  * parsed strings: locals stay symbolic, are parsed once (cached), and
///    are globalized per call from the provided bindings — the path the
///    autosynchc translator emits.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_CORE_MONITOR_H
#define AUTOSYNCH_CORE_MONITOR_H

#include "core/ConditionManager.h"
#include "expr/Builder.h"
#include "plan/PlanCache.h"
#include "time/CancelToken.h"
#include "time/Deadline.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace autosynch {

namespace detail {

/// Environment over the monitor's shared-variable slots; always reflects
/// the current state.
class SlotEnv final : public Env {
public:
  SlotEnv(const SymbolTable &Syms, const std::vector<Value> &Slots)
      : Syms(Syms), Slots(Slots) {}

  Value get(VarId Id) const override {
    AUTOSYNCH_CHECK(has(Id), "unbound shared variable");
    return Slots[Id];
  }

  bool has(VarId Id) const override {
    return Id < Slots.size() && Syms.isShared(Id);
  }

private:
  const SymbolTable &Syms;
  const std::vector<Value> &Slots;
};

} // namespace detail

/// Base class for automatic-signal monitors.
class Monitor {
public:
  Monitor(const Monitor &) = delete;
  Monitor &operator=(const Monitor &) = delete;

  /// RAII monitor section: acquires the monitor lock on construction
  /// (reentrant for the owning thread) and releases it — after running the
  /// relay signaling rule — on destruction.
  class Region {
  public:
    explicit Region(Monitor &M) : M(M) { M.enter(); }
    ~Region() { M.exit(); }
    Region(const Region &) = delete;
    Region &operator=(const Region &) = delete;

  private:
    Monitor &M;
  };

  /// A shared monitor variable (paper Def. 1's set S). Reads and writes
  /// require the calling thread to be inside the monitor.
  template <typename T> class Shared {
    static_assert(std::is_same_v<T, bool> ||
                      (std::is_integral_v<T> && sizeof(T) <= 8),
                  "Shared<T> supports bool and integral types up to 64 bits");

  public:
    Shared(Monitor &M, std::string_view Name, T Initial = T())
        : M(M), Id(M.declareShared(Name, typeKind())) {
      M.writeSlot(Id, toValue(Initial), /*RequireOwned=*/false);
    }

    /// Current value; caller must be inside the monitor.
    T get() const { return fromValue(M.readSlot(Id)); }

    void set(T V) { M.writeSlot(Id, toValue(V), /*RequireOwned=*/true); }

    Shared &operator=(T V) {
      set(V);
      return *this;
    }
    Shared &operator+=(T V) {
      set(static_cast<T>(get() + V));
      return *this;
    }
    Shared &operator-=(T V) {
      set(static_cast<T>(get() - V));
      return *this;
    }

    /// The variable as an EDSL expression.
    ExprHandle expr() const {
      return ExprHandle(M.Arena, M.Arena.var(Id, typeKind()));
    }
    operator ExprHandle() const { return expr(); }

    VarId id() const { return Id; }

  private:
    static constexpr TypeKind typeKind() {
      return std::is_same_v<T, bool> ? TypeKind::Bool : TypeKind::Int;
    }
    static Value toValue(T V) {
      if constexpr (std::is_same_v<T, bool>)
        return Value::makeBool(V);
      else
        return Value::makeInt(static_cast<int64_t>(V));
    }
    static T fromValue(Value V) {
      if constexpr (std::is_same_v<T, bool>)
        return V.asBool();
      else
        return static_cast<T>(V.asInt());
    }

    Monitor &M;
    VarId Id;
  };

  //===--------------------------------------------------------------------===//
  // Introspection (tests and benches)
  //===--------------------------------------------------------------------===//

  ConditionManager &conditionManager() { return Mgr; }
  ExprArena &arena() { return Arena; }
  SymbolTable &symbols() { return Syms; }
  const MonitorConfig &config() const { return Cfg; }
  /// The monitor's wait-plan cache (predicate-shape -> WaitPlan).
  PlanCache &planCache() { return Plans; }

  /// How a wait is bounded (implementation descriptor, public so the
  /// out-of-line helpers can build one). For-timeouts stay relative until
  /// the wait actually blocks (no clock read on the already-true fast
  /// path); the deadline is materialized once, so every retry of the
  /// block loop sees the same instant.
  struct TimedSpec {
    enum class Kind : uint8_t { None, For, By };
    Kind K = Kind::None;
    uint64_t Ns = 0; ///< For: relative timeout; By: absolute deadline.
    time::CancelToken *Token = nullptr;

    bool timed() const { return K != Kind::None; }
    /// The absolute monotonic deadline (clock read only for For).
    uint64_t deadlineNs() const {
      return K == Kind::For ? time::deadlineAfter(time::nowNs(), Ns) : Ns;
    }
  };

protected:
  explicit Monitor(MonitorConfig Config = {});
  ~Monitor();

  /// Blocks until the EDSL predicate \p P holds. Must be called inside the
  /// monitor at region depth 1 (a wait from a nested region would deadlock
  /// and is rejected). Fatal error if \p P is canonically unsatisfiable.
  void waitUntil(const ExprHandle &P);

  /// Blocks until the parsed predicate \p Pred (shared variables only)
  /// holds. The parse is cached per source string.
  void waitUntil(std::string_view Pred);

  /// Blocks until parsed predicate \p Pred holds, with local variables
  /// bound in \p Locals (globalized per call, paper §4.1).
  void waitUntil(std::string_view Pred, const MapEnv &Locals);

  //===--------------------------------------------------------------------===//
  // Timed and cancellable waits (the src/time/ deadline runtime)
  //===--------------------------------------------------------------------===//
  //
  // waitUntilFor bounds the wait by a relative timeout, waitUntilBy by an
  // absolute monotonic deadline (time::Deadline; Deadline::never() plus a
  // CancelToken expresses a cancellation-only wait). All variants return
  // true iff the predicate was observed true — predicate-first: a wait
  // whose predicate holds returns true even if the deadline passed or the
  // token fired concurrently, so a relayed signal is accepted, never
  // stolen — and false on expiry or cancellation, with the monitor
  // re-entered and the region still intact either way. The fast path
  // (predicate already true) reads no clock; timeouts convert to
  // deadlines only when the wait actually blocks. Same restrictions as
  // waitUntil (region depth 1; canonically unsatisfiable predicates are
  // fatal — a deadline bounds a possible wait, it does not legalize an
  // impossible one).

  /// Bounded wait on an EDSL predicate.
  bool waitUntilFor(const ExprHandle &P, std::chrono::nanoseconds Timeout,
                    time::CancelToken *Token = nullptr);

  /// Bounded wait on a parsed shared-only predicate.
  bool waitUntilFor(std::string_view Pred, std::chrono::nanoseconds Timeout,
                    time::CancelToken *Token = nullptr);

  /// Bounded wait on a parsed predicate with local bindings.
  bool waitUntilFor(std::string_view Pred, const MapEnv &Locals,
                    std::chrono::nanoseconds Timeout,
                    time::CancelToken *Token = nullptr);

  /// Deadline wait on an EDSL predicate.
  bool waitUntilBy(const ExprHandle &P, time::Deadline D,
                   time::CancelToken *Token = nullptr);

  /// Deadline wait on a parsed shared-only predicate.
  bool waitUntilBy(std::string_view Pred, time::Deadline D,
                   time::CancelToken *Token = nullptr);

  /// Deadline wait on a parsed predicate with local bindings.
  bool waitUntilBy(std::string_view Pred, const MapEnv &Locals,
                   time::Deadline D, time::CancelToken *Token = nullptr);

  /// Declares (or retrieves) a Local-scoped variable for use in parsed
  /// predicates. Call during construction or while inside the monitor.
  VarId local(std::string_view Name, TypeKind Ty = TypeKind::Int);

  /// Fresh, empty local-bindings environment (sugar for call sites).
  static MapEnv locals() { return MapEnv(); }

  /// Integer literal in this monitor's arena (EDSL convenience).
  ExprHandle lit(int64_t V) { return ExprHandle(Arena, Arena.intLit(V)); }
  /// Boolean literal in this monitor's arena.
  ExprHandle blit(bool V) { return ExprHandle(Arena, Arena.boolLit(V)); }

  /// Eagerly registers a shared predicate (paper Fig. 5 registers all
  /// static shared predicates in the constructor). Purely an optimization;
  /// waits register on demand anyway.
  void registerPredicate(std::string_view Pred);

  /// Runs \p F inside the monitor.
  template <typename Fn> auto synchronized(Fn &&F) {
    Region R(*this);
    return F();
  }

private:
  template <typename> friend class Shared;

  void enter();
  void exit();
  bool ownedByCaller() const {
    return Owner.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

  VarId declareShared(std::string_view Name, TypeKind Ty);
  Value readSlot(VarId Id) const;
  void writeSlot(VarId Id, Value V, bool RequireOwned);

  /// A parse-cache entry: the interned parse plus the memoized WaitPlan
  /// for that shape (filled on first use; plans are never evicted, so the
  /// pointer is stable). Saves a plan-cache hash lookup per parsed wait.
  struct ParseEntry {
    ExprRef Expr = nullptr;
    const WaitPlan *Plan = nullptr;
  };

  ParseEntry &parseCached(std::string_view Pred);

  bool waitUntilImpl(ExprRef Pred, const Env &Locals, bool Edsl,
                     ParseEntry *Entry, const TimedSpec &TS);
  bool dispatchWait(ExprRef Pred, const Env &Locals, bool Edsl,
                    ParseEntry *Entry, const TimedSpec &TS);
  /// Tail of dispatchWait: runs the uncached pipeline with the spec's
  /// bound materialized.
  bool awaitLegacy(ExprRef Pred, const Env &Locals, const TimedSpec &TS);

  /// Heterogeneous string hashing so the parse-cache hit path looks up by
  /// string_view without materializing a std::string key.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>{}(S);
    }
    size_t operator()(const std::string &S) const {
      return std::hash<std::string_view>{}(S);
    }
  };

  MonitorConfig Cfg;
  sync::Mutex Lock;
  ExprArena Arena;
  SymbolTable Syms;
  std::vector<Value> Slots;
  detail::SlotEnv SharedSlots;
  ConditionManager Mgr;
  PlanCache Plans;
  std::unordered_map<std::string, ParseEntry, StringHash, std::equal_to<>>
      ParseCache;
  std::atomic<std::thread::id> Owner{};
  int Depth = 0;
};

} // namespace autosynch

#endif // AUTOSYNCH_CORE_MONITOR_H

//===- core/MonitorConfig.h - Monitor policy configuration -----*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the automatic-signal monitor. One Monitor
/// implementation instantiates all three automatic mechanisms the paper
/// evaluates (§6.2) by switching the signal policy:
///
///  * Tagged     — "AutoSynch": relay signaling directed by predicate tags.
///  * LinearScan — "AutoSynch-T": relay signaling, tags disabled; the relay
///                 scan evaluates active predicates one by one.
///  * Broadcast  — "Baseline": one condition variable, signalAll on every
///                 exit/block; each woken thread re-evaluates its own
///                 predicate.
///
/// The explicit-signal mechanism has no automatic monitor; its problem
/// implementations are hand-written in src/problems/ like the paper's Java.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_CORE_MONITORCONFIG_H
#define AUTOSYNCH_CORE_MONITORCONFIG_H

#include "dnf/Dnf.h"
#include "sync/Mutex.h"

#include <cstddef>

namespace autosynch {

/// How the condition manager signals waiting threads.
enum class SignalPolicy : uint8_t {
  Tagged,     ///< Full AutoSynch (relay invariance + predicate tagging).
  LinearScan, ///< AutoSynch-T (relay invariance, exhaustive scan).
  Broadcast   ///< Baseline (single condition variable + signalAll).
};

/// Returns "tagged", "linear-scan", or "broadcast".
const char *signalPolicyName(SignalPolicy P);

/// How much of the registered-predicate table a relay scan visits.
enum class RelayFilter : uint8_t {
  Always,  ///< Every relay runs the full tag-index/linear search (the
           ///< paper's behavior; kept for ablation).
  DirtySet ///< Relay work is proportional to what changed: a region that
           ///< wrote no shared variable skips the search outright, and a
           ///< search only visits predicates whose read sets intersect
           ///< the variables written since the last empty-handed scan.
};

/// Returns "always" or "dirty".
const char *relayFilterName(RelayFilter F);

struct MonitorConfig {
  SignalPolicy Policy = SignalPolicy::Tagged;

  /// Dirty-set-directed relay signaling (default) vs. the always-scan
  /// baseline. Only affects the relay policies; Broadcast ignores it.
  RelayFilter Filter = RelayFilter::DirtySet;

  /// Lock/condvar backend for the monitor lock and all conditions.
  sync::Backend Backend = sync::Backend::Std;

  /// Record per-phase CPU time (lock / await / relaySignal / tag manager)
  /// for the Table 1 experiment. Off by default: two clock reads per phase.
  bool EnablePhaseTimers = false;

  /// Evaluate registered predicates with compiled bytecode instead of the
  /// tree walker. On by default: slot programs read the monitor state as a
  /// flat array (no virtual Env dispatch). Turn off for the tree-walk
  /// ablation — together with UsePlanCache, whose fast-path check always
  /// runs the plan's compiled program regardless of this flag.
  bool UseCompiledEval = true;

  /// Serve waituntil through the per-shape WaitPlan cache (src/plan/):
  /// steady-state waits bind local values into a cached, pre-canonicalized
  /// plan instead of re-running globalization -> canonicalization -> tag
  /// derivation. Turn off for the uncached-pipeline ablation. Under the
  /// Broadcast policy only the allocation-free already-true precheck runs
  /// off the plan (it registers no predicates to resolve against); its
  /// blocking waits and wakeup semantics are unchanged.
  bool UsePlanCache = true;

  /// Registered predicates with no waiters are parked in an inactive cache
  /// for reuse (§5.2) instead of being destroyed; the oldest entries are
  /// evicted beyond this limit.
  size_t InactiveCacheLimit = 64;

  /// DNF conversion caps.
  DnfLimits Limits;
};

} // namespace autosynch

#endif // AUTOSYNCH_CORE_MONITORCONFIG_H

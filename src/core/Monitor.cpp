//===- core/Monitor.cpp - The automatic-signal monitor ---------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "core/Monitor.h"

#include "expr/Subst.h"
#include "parse/PredicateParser.h"

using namespace autosynch;

Monitor::Monitor(MonitorConfig Config)
    : Cfg(Config), Lock(Config.Backend), SharedSlots(Syms, Slots),
      Mgr(Lock, Arena, Syms, SharedSlots, Slots, Cfg), Plans(Arena, Syms) {}

Monitor::~Monitor() = default;

//===----------------------------------------------------------------------===//
// Shared-variable slots
//===----------------------------------------------------------------------===//

VarId Monitor::declareShared(std::string_view Name, TypeKind Ty) {
  VarId Id = Syms.declare(Name, Ty, VarScope::Shared);
  if (Slots.size() < Syms.size())
    Slots.resize(Syms.size());
  return Id;
}

Value Monitor::readSlot(VarId Id) const {
  AUTOSYNCH_CHECK(ownedByCaller(),
                  "shared variable read outside the monitor");
  return Slots[Id];
}

void Monitor::writeSlot(VarId Id, Value V, bool RequireOwned) {
  AUTOSYNCH_CHECK(!RequireOwned || ownedByCaller(),
                  "shared variable write outside the monitor");
  // A write that does not change the value cannot change any predicate:
  // it neither dirties the relay set nor bumps the variable's version, so
  // idempotent stores keep the read-only-exit fast path.
  if (Slots[Id] == V)
    return;
  Slots[Id] = V;
  Mgr.noteWrite(Id);
}

//===----------------------------------------------------------------------===//
// Mutual exclusion (reentrant monitor regions)
//===----------------------------------------------------------------------===//

void Monitor::enter() {
  std::thread::id Me = std::this_thread::get_id();
  if (Owner.load(std::memory_order_relaxed) == Me) {
    ++Depth;
    return;
  }
  uint64_t T0 = Mgr.timers().start();
  Lock.lock();
  Mgr.timers().stop(PhaseTimers::Lock, T0);
  Owner.store(Me, std::memory_order_relaxed);
  Depth = 1;
}

void Monitor::exit() {
  AUTOSYNCH_CHECK(ownedByCaller(), "monitor exit by a non-owning thread");
  if (--Depth > 0)
    return;
  // Relay signaling rule: on exit, hand the monitor to some thread whose
  // condition has become true (paper §4.2). The winner is picked (and all
  // bookkeeping done) under the lock, but the condvar wakeup fires only
  // after the unlock — otherwise the woken thread would immediately block
  // on the mutex this thread still holds (the wake-then-block convoy).
  DeferredWake Wake;
  Mgr.relaySignal(&Wake);
  Owner.store(std::thread::id(), std::memory_order_relaxed);
  Lock.unlock();
  Wake.fire();
}

//===----------------------------------------------------------------------===//
// waituntil
//===----------------------------------------------------------------------===//

bool Monitor::waitUntilImpl(ExprRef Pred, const Env &Locals, bool Edsl,
                            ParseEntry *Entry, const TimedSpec &TS) {
  AUTOSYNCH_CHECK(ownedByCaller(), "waitUntil outside the monitor");
  AUTOSYNCH_CHECK(Depth == 1,
                  "waitUntil from a nested monitor region would deadlock");
  std::thread::id Me = Owner.load(std::memory_order_relaxed);
  // The wait releases the monitor lock; other threads own the monitor in
  // the meantime, so ownership is cleared here and restored when the wait
  // returns with the lock re-held. Depth must be restored as well: an
  // intervening region that fully exited leaves Depth at 0, which would
  // misfire the nested-region check on a later waitUntil in this region
  // (and unbalance exit()). We checked Depth == 1 above, so restoring to
  // 1 is exact.
  Owner.store(std::thread::id(), std::memory_order_relaxed);
  bool Satisfied = dispatchWait(Pred, Locals, Edsl, Entry, TS);
  Owner.store(Me, std::memory_order_relaxed);
  Depth = 1;
  return Satisfied;
}

bool Monitor::awaitLegacy(ExprRef Pred, const Env &Locals,
                          const TimedSpec &TS) {
  PlanCounters::global().onLegacyWait();
  if (!TS.timed())
    return Mgr.await(Pred, Locals);
  ConditionManager::TimedWait TW(TS.deadlineNs(), TS.Token);
  return Mgr.await(Pred, Locals, &TW);
}

bool Monitor::dispatchWait(ExprRef Pred, const Env &Locals, bool Edsl,
                           ParseEntry *Entry, const TimedSpec &TS) {
  if (!Cfg.UsePlanCache)
    return awaitLegacy(Pred, Locals, TS);

  // Broadcast has no registered predicates, so plans cannot resolve waits
  // for it — but the allocation-free already-true precheck applies to any
  // policy. Blocking Broadcast waits fall through to the uncached
  // pipeline below with wakeup semantics untouched.
  const bool Broadcast = Cfg.Policy == SignalPolicy::Broadcast;

  Value Bound[WaitPlan::MaxSlots];
  size_t NumBound = 0;
  const WaitPlan *Plan;
  if (Edsl) {
    Plan = Plans.forEdsl(Pred, Cfg.Limits, Bound, NumBound);
  } else if (Entry && Entry->Plan) {
    Plan = Entry->Plan; // Memoized on the parse-cache entry.
  } else {
    Plan = Plans.forShape(Pred, Cfg.Limits);
    if (Entry)
      Entry->Plan = Plan;
  }

  // Shapes beyond the planner (mixed non-linear atoms, slot overflow) and
  // the canonically-trivial ones run the uncached pipeline: it reproduces
  // the exact fast-path-then-fatal behavior for trivial predicates, and
  // it is the reference semantics for everything else.
  if (!Plan || Plan->kind() == WaitPlan::Kind::Legacy ||
      Plan->kind() == WaitPlan::Kind::AlwaysTrue ||
      Plan->kind() == WaitPlan::Kind::Unsatisfiable)
    return awaitLegacy(Pred, Locals, TS);

  if (Plan->kind() == WaitPlan::Kind::Ground) {
    if (Plan->code().runRawBool(Slots.data(), nullptr))
      return true; // Fast path: already true (Fig. 6 checks P first).
    if (Broadcast)
      return awaitLegacy(Pred, Locals, TS);
    if (!TS.timed())
      return Mgr.awaitGround(*Plan);
    // Timed waits bind their deadline into the same stack frame the plan
    // hit uses — a TimerNode slot, no allocation, no extra lookups.
    ConditionManager::TimedWait TW(TS.deadlineNs(), TS.Token);
    return Mgr.awaitGround(*Plan, &TW);
  }

  // Slotted plan: bind this thread's locals, then check-then-wait.
  if (!Edsl)
    Plan->bindFromEnv(Locals, Bound);
  else
    AUTOSYNCH_CHECK(NumBound == Plan->slots().size(),
                    "EDSL binding count diverged from the plan");
  if (Plan->code().runRawBool(Slots.data(), Bound))
    return true; // Fast path: already true.
  if (Broadcast)
    return awaitLegacy(Pred, Locals, TS);

  SigEntry Sig[WaitPlan::MaxSigEntries];
  size_t N = 0;
  switch (Plan->resolve(Bound, Sig, N)) {
  case WaitPlan::ResolveStatus::Resolved: {
    if (!TS.timed())
      return Mgr.awaitBound(Sig, N);
    ConditionManager::TimedWait TW(TS.deadlineNs(), TS.Token);
    return Mgr.awaitBound(Sig, N, &TW);
  }
  case WaitPlan::ResolveStatus::True:
    // "True under any shared state" contradicts the fast check above;
    // resolution and the compiled check derive from the same canonical
    // form, so this is unreachable.
    AUTOSYNCH_CHECK(false, "plan resolution diverged from evaluation");
    return true;
  case WaitPlan::ResolveStatus::False:
    AUTOSYNCH_CHECK(false,
                    "waituntil on an unsatisfiable predicate would never "
                    "return");
    return false;
  case WaitPlan::ResolveStatus::Overflow:
    // Key arithmetic left int64; the uncached pipeline (whose own
    // overflow handling degrades to an untagged opaque atom) is exact.
    return awaitLegacy(Pred, Locals, TS);
  }
  AUTOSYNCH_UNREACHABLE("invalid ResolveStatus");
}

void Monitor::waitUntil(const ExprHandle &P) {
  AUTOSYNCH_CHECK(&P.arena() == &Arena,
                  "predicate built against a different monitor");
  AUTOSYNCH_CHECK(P.type() == TypeKind::Bool,
                  "waitUntil requires a bool predicate");
  waitUntilImpl(P.ref(), EmptyEnv::instance(), /*Edsl=*/true, nullptr,
                TimedSpec());
}

void Monitor::waitUntil(std::string_view Pred) {
  ParseEntry &E = parseCached(Pred);
  waitUntilImpl(E.Expr, EmptyEnv::instance(), /*Edsl=*/false, &E,
                TimedSpec());
}

void Monitor::waitUntil(std::string_view Pred, const MapEnv &Locals) {
  ParseEntry &E = parseCached(Pred);
  waitUntilImpl(E.Expr, Locals, /*Edsl=*/false, &E, TimedSpec());
}

//===----------------------------------------------------------------------===//
// Timed and cancellable waits
//===----------------------------------------------------------------------===//

namespace {

Monitor::TimedSpec specFor(std::chrono::nanoseconds Timeout,
                           time::CancelToken *Token) {
  Monitor::TimedSpec TS;
  TS.K = Monitor::TimedSpec::Kind::For;
  TS.Ns = Timeout.count() <= 0 ? 0
                               : static_cast<uint64_t>(Timeout.count());
  TS.Token = Token;
  return TS;
}

Monitor::TimedSpec specBy(time::Deadline D, time::CancelToken *Token) {
  Monitor::TimedSpec TS;
  TS.K = Monitor::TimedSpec::Kind::By;
  TS.Ns = D.Ns;
  TS.Token = Token;
  return TS;
}

} // namespace

bool Monitor::waitUntilFor(const ExprHandle &P,
                           std::chrono::nanoseconds Timeout,
                           time::CancelToken *Token) {
  AUTOSYNCH_CHECK(&P.arena() == &Arena,
                  "predicate built against a different monitor");
  AUTOSYNCH_CHECK(P.type() == TypeKind::Bool,
                  "waitUntilFor requires a bool predicate");
  return waitUntilImpl(P.ref(), EmptyEnv::instance(), /*Edsl=*/true,
                       nullptr, specFor(Timeout, Token));
}

bool Monitor::waitUntilFor(std::string_view Pred,
                           std::chrono::nanoseconds Timeout,
                           time::CancelToken *Token) {
  ParseEntry &E = parseCached(Pred);
  return waitUntilImpl(E.Expr, EmptyEnv::instance(), /*Edsl=*/false, &E,
                       specFor(Timeout, Token));
}

bool Monitor::waitUntilFor(std::string_view Pred, const MapEnv &Locals,
                           std::chrono::nanoseconds Timeout,
                           time::CancelToken *Token) {
  ParseEntry &E = parseCached(Pred);
  return waitUntilImpl(E.Expr, Locals, /*Edsl=*/false, &E,
                       specFor(Timeout, Token));
}

bool Monitor::waitUntilBy(const ExprHandle &P, time::Deadline D,
                          time::CancelToken *Token) {
  AUTOSYNCH_CHECK(&P.arena() == &Arena,
                  "predicate built against a different monitor");
  AUTOSYNCH_CHECK(P.type() == TypeKind::Bool,
                  "waitUntilBy requires a bool predicate");
  return waitUntilImpl(P.ref(), EmptyEnv::instance(), /*Edsl=*/true,
                       nullptr, specBy(D, Token));
}

bool Monitor::waitUntilBy(std::string_view Pred, time::Deadline D,
                          time::CancelToken *Token) {
  ParseEntry &E = parseCached(Pred);
  return waitUntilImpl(E.Expr, EmptyEnv::instance(), /*Edsl=*/false, &E,
                       specBy(D, Token));
}

bool Monitor::waitUntilBy(std::string_view Pred, const MapEnv &Locals,
                          time::Deadline D, time::CancelToken *Token) {
  ParseEntry &E = parseCached(Pred);
  return waitUntilImpl(E.Expr, Locals, /*Edsl=*/false, &E,
                       specBy(D, Token));
}

Monitor::ParseEntry &Monitor::parseCached(std::string_view Pred) {
  auto It = ParseCache.find(Pred); // Heterogeneous: no key allocation.
  if (It != ParseCache.end())
    return It->second;

  PredicateParseOptions Options;
  Options.AutoDeclareLocals = true;
  PredicateParseResult R = parsePredicate(Pred, Arena, Syms, Options);
  if (!R.ok()) {
    std::string Msg = "waituntil predicate \"" + std::string(Pred) +
                      "\": " + R.Error.toString();
    fatalError(__FILE__, __LINE__, Msg.c_str());
  }
  return ParseCache.emplace(std::string(Pred), ParseEntry{R.Expr, nullptr})
      .first->second;
}

VarId Monitor::local(std::string_view Name, TypeKind Ty) {
  if (const VarInfo *Info = Syms.lookup(Name)) {
    AUTOSYNCH_CHECK(Info->Scope == VarScope::Local,
                    "local(): name already declared as a shared variable");
    AUTOSYNCH_CHECK(Info->Type == Ty,
                    "local(): redeclaration with a different type");
    return Info->Id;
  }
  return Syms.declare(Name, Ty, VarScope::Local);
}

void Monitor::registerPredicate(std::string_view Pred) {
  ExprRef E = parseCached(Pred).Expr;
  AUTOSYNCH_CHECK(!isComplex(E, Syms),
                  "registerPredicate requires a shared predicate");
  Mgr.registerPredicate(E);
}

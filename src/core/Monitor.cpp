//===- core/Monitor.cpp - The automatic-signal monitor ---------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "core/Monitor.h"

#include "expr/Subst.h"
#include "parse/PredicateParser.h"

using namespace autosynch;

Monitor::Monitor(MonitorConfig Config)
    : Cfg(Config), Lock(Config.Backend), SharedSlots(Syms, Slots),
      Mgr(Lock, Arena, Syms, SharedSlots, Cfg) {}

Monitor::~Monitor() = default;

//===----------------------------------------------------------------------===//
// Shared-variable slots
//===----------------------------------------------------------------------===//

VarId Monitor::declareShared(std::string_view Name, TypeKind Ty) {
  VarId Id = Syms.declare(Name, Ty, VarScope::Shared);
  if (Slots.size() < Syms.size())
    Slots.resize(Syms.size());
  return Id;
}

Value Monitor::readSlot(VarId Id) const {
  AUTOSYNCH_CHECK(ownedByCaller(),
                  "shared variable read outside the monitor");
  return Slots[Id];
}

void Monitor::writeSlot(VarId Id, Value V, bool RequireOwned) {
  AUTOSYNCH_CHECK(!RequireOwned || ownedByCaller(),
                  "shared variable write outside the monitor");
  Slots[Id] = V;
}

//===----------------------------------------------------------------------===//
// Mutual exclusion (reentrant monitor regions)
//===----------------------------------------------------------------------===//

void Monitor::enter() {
  std::thread::id Me = std::this_thread::get_id();
  if (Owner.load(std::memory_order_relaxed) == Me) {
    ++Depth;
    return;
  }
  uint64_t T0 = Mgr.timers().start();
  Lock.lock();
  Mgr.timers().stop(PhaseTimers::Lock, T0);
  Owner.store(Me, std::memory_order_relaxed);
  Depth = 1;
}

void Monitor::exit() {
  AUTOSYNCH_CHECK(ownedByCaller(), "monitor exit by a non-owning thread");
  if (--Depth > 0)
    return;
  // Relay signaling rule: on exit, hand the monitor to some thread whose
  // condition has become true (paper §4.2).
  Mgr.relaySignal();
  Owner.store(std::thread::id(), std::memory_order_relaxed);
  Lock.unlock();
}

//===----------------------------------------------------------------------===//
// waituntil
//===----------------------------------------------------------------------===//

void Monitor::waitUntilImpl(ExprRef Pred, const Env &Locals) {
  AUTOSYNCH_CHECK(ownedByCaller(), "waitUntil outside the monitor");
  AUTOSYNCH_CHECK(Depth == 1,
                  "waitUntil from a nested monitor region would deadlock");
  std::thread::id Me = Owner.load(std::memory_order_relaxed);
  // The wait releases the monitor lock; other threads own the monitor in
  // the meantime, so ownership is cleared here and restored when the wait
  // returns with the lock re-held. Depth must be restored as well: an
  // intervening region that fully exited leaves Depth at 0, which would
  // misfire the nested-region check on a later waitUntil in this region
  // (and unbalance exit()). We checked Depth == 1 above, so restoring to
  // 1 is exact.
  Owner.store(std::thread::id(), std::memory_order_relaxed);
  Mgr.await(Pred, Locals);
  Owner.store(Me, std::memory_order_relaxed);
  Depth = 1;
}

void Monitor::waitUntil(const ExprHandle &P) {
  AUTOSYNCH_CHECK(&P.arena() == &Arena,
                  "predicate built against a different monitor");
  AUTOSYNCH_CHECK(P.type() == TypeKind::Bool,
                  "waitUntil requires a bool predicate");
  waitUntilImpl(P.ref(), EmptyEnv::instance());
}

void Monitor::waitUntil(std::string_view Pred) {
  waitUntilImpl(parseCached(Pred), EmptyEnv::instance());
}

void Monitor::waitUntil(std::string_view Pred, const MapEnv &Locals) {
  waitUntilImpl(parseCached(Pred), Locals);
}

ExprRef Monitor::parseCached(std::string_view Pred) {
  std::string Key(Pred);
  auto It = ParseCache.find(Key);
  if (It != ParseCache.end())
    return It->second;

  PredicateParseOptions Options;
  Options.AutoDeclareLocals = true;
  PredicateParseResult R = parsePredicate(Pred, Arena, Syms, Options);
  if (!R.ok()) {
    std::string Msg = "waituntil predicate \"" + Key +
                      "\": " + R.Error.toString();
    fatalError(__FILE__, __LINE__, Msg.c_str());
  }
  ParseCache.emplace(std::move(Key), R.Expr);
  return R.Expr;
}

VarId Monitor::local(std::string_view Name, TypeKind Ty) {
  if (const VarInfo *Info = Syms.lookup(Name)) {
    AUTOSYNCH_CHECK(Info->Scope == VarScope::Local,
                    "local(): name already declared as a shared variable");
    AUTOSYNCH_CHECK(Info->Type == Ty,
                    "local(): redeclaration with a different type");
    return Info->Id;
  }
  return Syms.declare(Name, Ty, VarScope::Local);
}

void Monitor::registerPredicate(std::string_view Pred) {
  ExprRef E = parseCached(Pred);
  AUTOSYNCH_CHECK(!isComplex(E, Syms),
                  "registerPredicate requires a shared predicate");
  Mgr.registerPredicate(E);
}

//===- core/ConditionManager.h - The AutoSynch condition manager -*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The condition manager (paper §5): it owns the predicate table, the
/// per-predicate condition variables, the tag indices, and the inactive
/// cache, and it implements the relay signaling rule (§4.2):
///
///   "When a thread exits a monitor or goes into waiting state, it checks
///    whether there is some thread waiting on a condition that has become
///    true. If at least one such waiting thread exists, it signals that
///    thread."
///
/// Relay invariance bookkeeping: PendingSignals counts signaled-but-not-yet
/// -resumed threads. Those threads are *active* by the paper's Definition 3
/// ("not waiting ... or has been signaled"), so while one is in flight the
/// relay scan is skipped — if the in-flight thread finds its predicate
/// falsified it re-runs the relay itself, preserving the invariance chain
/// of Proposition 2.
///
/// All member functions require the monitor lock to be held by the caller
/// (the Monitor wrapper enforces this).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_CORE_CONDITIONMANAGER_H
#define AUTOSYNCH_CORE_CONDITIONMANAGER_H

#include "core/MonitorConfig.h"
#include "core/PhaseTimers.h"
#include "expr/Bytecode.h"
#include "expr/Env.h"
#include "expr/SymbolTable.h"
#include "tag/TagIndex.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

namespace autosynch {

/// Aggregate signaling statistics, exposed to tests and benches.
struct ManagerStats {
  uint64_t Waits = 0;         ///< await() calls that actually blocked.
  uint64_t RelayCalls = 0;    ///< relaySignal() invocations.
  uint64_t RelaySkips = 0;    ///< Relays skipped (a signal was in flight).
  uint64_t SignalsSent = 0;   ///< Directed signals issued.
  uint64_t BroadcastSignals = 0; ///< signalAll calls (Broadcast policy).
  uint64_t Registrations = 0; ///< Predicates added to the table.
  uint64_t CacheReuses = 0;   ///< Predicates revived from the inactive cache.
  uint64_t Evictions = 0;     ///< Predicates evicted from the cache.
  TagSearchStats Search;      ///< Tag-directed search work.
};

/// The per-monitor condition manager.
class ConditionManager {
public:
  /// \p SharedEnv must resolve every Shared-scoped variable of \p Syms and
  /// reflect the monitor's current state on each call (the Monitor's slot
  /// environment does). All references must outlive the manager.
  ConditionManager(sync::Mutex &MonitorLock, ExprArena &Arena,
                   SymbolTable &Syms, const Env &SharedEnv,
                   const MonitorConfig &Cfg);
  ~ConditionManager();
  ConditionManager(const ConditionManager &) = delete;
  ConditionManager &operator=(const ConditionManager &) = delete;

  /// Blocks the calling thread until \p Pred (which may mention local
  /// variables bound in \p Locals) holds. Implements the paper's Fig. 6:
  /// check, globalize, register, then relay-and-wait until true.
  ///
  /// Monitor lock must be held; it is released while blocked and re-held on
  /// return. Fatal error if the predicate is canonically unsatisfiable
  /// (the wait could never finish).
  void await(ExprRef Pred, const Env &Locals);

  /// The relay signaling rule; called on monitor exit and before blocking.
  void relaySignal();

  /// Eagerly registers \p Pred (no waiting), mirroring the paper's
  /// constructor-time registration of static shared predicates (Fig. 5).
  /// The predicate starts in the inactive cache and is revived on first
  /// wait. Predicates that canonicalize to true/false are ignored.
  void registerPredicate(ExprRef Pred);

  //===--------------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------------===//

  const ManagerStats &stats() const { return Stats; }
  void resetStats() { Stats = ManagerStats(); }

  PhaseTimers &timers() { return Timers; }

  /// Registered predicates (active + inactive).
  size_t numRegistered() const { return Table.size(); }
  /// Predicates with at least one waiter (tags registered in the index).
  size_t numActive() const { return ActiveCount; }
  /// Parked predicates available for reuse.
  size_t inactiveCacheSize() const { return Table.size() - ActiveCount; }
  /// Threads currently blocked in await().
  int numWaiters() const { return TotalWaiters; }
  /// Signals issued whose target has not resumed yet.
  int pendingSignals() const { return PendingTotal; }

private:
  /// One registered (globalized, canonicalized) predicate.
  struct Record {
    ExprRef Canonical = nullptr;
    Dnf D;
    std::vector<Tag> Tags;
    std::unique_ptr<sync::Condition> Cond;
    CompiledPredicate Code;
    int Waiters = 0;
    int PendingSignals = 0;
    bool Active = false;
    /// Whether the record has an entry in InactiveQueue (at most one).
    bool InQueue = false;
    uint64_t LastUse = 0;
  };

  /// Parks \p R in the inactive queue for reuse or eventual eviction.
  void park(Record *R);

  Record *lookupOrRegister(ExprRef Canonical, Dnf D);
  void activate(Record *R);
  void deactivate(Record *R);
  void evictIfNeeded();

  /// Full predicate check under the current shared state.
  bool recordTrue(Record *R);

  /// Relay search under the LinearScan policy: evaluate active predicates
  /// one by one.
  Record *linearScanFindTrue();

  /// Relay search under the Tagged policy (TagIndex::findTrue).
  Record *taggedFindTrue();

  void awaitBroadcast(ExprRef Pred, const Env &Locals);

  sync::Mutex &MonitorLock;
  ExprArena &Arena;
  SymbolTable &Syms;
  const Env &SharedEnv;
  MonitorConfig Cfg;
  PhaseTimers Timers;

  /// Predicate table (§5.2): canonical predicate -> record. Pointer keys
  /// work because canonical predicates are interned.
  std::unordered_map<ExprRef, std::unique_ptr<Record>> Table;

  /// Tag indices (Tagged policy).
  TagIndex<Record> Index;

  /// Active records, for the LinearScan policy and diagnostics.
  std::vector<Record *> ActiveList;
  std::unordered_map<Record *, size_t> ActivePos;
  size_t ActiveCount = 0;

  /// Inactive cache in parking order. Each record appears at most once
  /// (Record::InQueue); revived records are skipped lazily on eviction.
  std::deque<Record *> InactiveQueue;

  /// Broadcast policy state.
  std::unique_ptr<sync::Condition> BroadcastCond;
  int BroadcastWaiters = 0;

  int TotalWaiters = 0;
  int PendingTotal = 0;
  uint64_t UseTick = 0;

  ManagerStats Stats;
};

} // namespace autosynch

#endif // AUTOSYNCH_CORE_CONDITIONMANAGER_H

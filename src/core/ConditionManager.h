//===- core/ConditionManager.h - The AutoSynch condition manager -*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The condition manager (paper §5): it owns the predicate table, the
/// per-predicate condition variables, the tag indices, and the inactive
/// cache, and it implements the relay signaling rule (§4.2):
///
///   "When a thread exits a monitor or goes into waiting state, it checks
///    whether there is some thread waiting on a condition that has become
///    true. If at least one such waiting thread exists, it signals that
///    thread."
///
/// Relay invariance bookkeeping: PendingSignals counts signaled-but-not-yet
/// -resumed threads. Those threads are *active* by the paper's Definition 3
/// ("not waiting ... or has been signaled"), so while one is in flight the
/// relay scan is skipped — if the in-flight thread finds its predicate
/// falsified it re-runs the relay itself, preserving the invariance chain
/// of Proposition 2.
///
/// Dirty-set-directed relays (MonitorConfig::RelayFilter::DirtySet, the
/// default): Monitor::writeSlot reports every value-changing shared write
/// to noteWrite(), which accumulates the written VarIds in a dirty set and
/// bumps a per-variable version counter. The invariant the filter rests on:
///
///   every active (waiter-holding) predicate whose read set does not
///   intersect the accumulated dirty set is false.
///
/// It holds because a scan that returns empty-handed has just (re-)proven
/// every active predicate false — only then is the dirty set cleared — and
/// a predicate over unchanged variables cannot change truth value. Three
/// consequences shape the code:
///
///  * A relay with an empty dirty set skips the search outright (the
///    read-only-exit fast path; Stats.RelayDirtySkips).
///  * A scan that *finds* a winner must NOT clear the dirty set: the scan
///    stopped early, so records it never reached may have been made true
///    by the same writes, and the relay chain (the winner re-relays on its
///    own exit) must still see them as suspect. For the same reason a
///    relay skipped because a signal is in flight (PendingTotal > 0) may
///    not clear or consume the set — the in-flight thread's later relay
///    inherits the accumulated dirt, so no write is ever dropped on the
///    floor between two scans.
///  * Version stamps piggyback on the same counters: recordTrue() stamps a
///    record with the newest version among its read set whenever it
///    evaluates false, and later checks answer "still false" without
///    running the bytecode while that stamp is current
///    (Stats.StampShortCircuits). Stamps are discarded on (re)activation,
///    and eviction destroys the record with its stamp, so cache churn can
///    never resurrect a stale proof.
///
/// All member functions require the monitor lock to be held by the caller
/// (the Monitor wrapper enforces this); the dirty set, version counters,
/// and stamps are all guarded by that lock.
///
/// Timed waits (the src/time/ deadline runtime): every await entry point
/// takes an optional TimedWait carrying a monotonic deadline and an
/// optional CancelToken. A blocked timed waiter registers in the
/// per-manager timer wheel (its own lock shard; see time/TimerWheel.h) and
/// blocks with a *bounded* condvar wait — the wait's own deadline is the
/// guaranteed fallback tick, so expiry never depends on monitor traffic.
/// Exit paths additionally drive the wheel's lazy cascade (processExpiry,
/// polled at the top of every relaySignal through two relaxed loads):
/// expired waiters are marked, woken, and — via the ExpiredWaiters count —
/// retired from relay consideration, so a record whose every waiter has
/// expired is skipped by the search without being evaluated. Three
/// invariants keep this sound against the dirty-set machinery:
///
///  * Predicate-first: a waiter that observes its predicate true returns
///    true even if its deadline passed or its token fired concurrently —
///    a consumed directed signal is thereby *accepted*, never stolen.
///  * Baton passing: a timed waiter that leaves unsatisfied re-runs the
///    relay before returning, because its wakeup may have consumed (or
///    pre-empted) a directed signal another thread now deserves.
///  * Expired-skip soundness: the relay scan may skip a fully-expired
///    record without evaluating it, and an empty-handed scan still clears
///    the dirty set. Safe because nothing ever *waits* on that proof: the
///    expired waiters wake on their own bounded blocks and self-check, and
///    any future waiter of the record evaluates the predicate itself
///    before blocking (and from then on the record is no longer skipped).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_CORE_CONDITIONMANAGER_H
#define AUTOSYNCH_CORE_CONDITIONMANAGER_H

#include "core/MonitorConfig.h"
#include "core/PhaseTimers.h"
#include "expr/Bytecode.h"
#include "expr/Env.h"
#include "expr/SymbolTable.h"
#include "expr/VarSet.h"
#include "plan/WaitPlan.h"
#include "sync/Counters.h"
#include "tag/TagIndex.h"
#include "time/CancelToken.h"
#include "time/FallbackTicker.h"
#include "time/TimerWheel.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

namespace autosynch {

/// Aggregate signaling statistics, exposed to tests and benches.
struct ManagerStats {
  uint64_t Waits = 0;         ///< await() calls that actually blocked.
  uint64_t RelayCalls = 0;    ///< relaySignal() invocations.
  uint64_t RelaySkips = 0;    ///< Relays skipped (a signal was in flight).
  uint64_t RelayDirtySkips = 0; ///< Relays skipped: empty dirty set (no
                                ///< shared variable changed since the last
                                ///< empty-handed scan).
  uint64_t StampShortCircuits = 0; ///< recordTrue() answers proven by the
                                   ///< version stamp without evaluating.
  uint64_t SignalsSent = 0;   ///< Directed signals issued.
  uint64_t BroadcastSignals = 0; ///< signalAll calls (Broadcast policy).
  uint64_t TimedWaits = 0;    ///< Timed waits that reached the blocking
                              ///< path (already-true fast paths excluded).
  uint64_t Timeouts = 0;      ///< Timed waits that returned false because
                              ///< their deadline passed.
  uint64_t Cancels = 0;       ///< Waits aborted through a CancelToken.
  uint64_t WheelWakeups = 0;  ///< Expired waiters noticed (and woken) by
                              ///< an exit-path wheel advance.
  uint64_t Registrations = 0; ///< Predicates added to the table.
  uint64_t CacheReuses = 0;   ///< Predicates revived from the inactive cache.
  uint64_t Evictions = 0;     ///< Predicates evicted from the cache.
  uint64_t PlanBindHits = 0;  ///< Plan signatures served by the bind table.
  uint64_t PlanColdBinds = 0; ///< Plan signatures resolved the long way.
  TagSearchStats Search;      ///< Tag-directed search work; the relay
                              ///< filter's skip count is Search.FilteredExprs.
};

/// A wakeup picked under the monitor lock but issued after it is released
/// (Monitor::exit), so the signaled thread does not immediately block on
/// the mutex the signaler still holds.
struct DeferredWake {
  sync::Condition *Cond = nullptr;
  bool All = false;

  /// Issues the wakeup (no-op when nothing was picked). Call WITHOUT the
  /// monitor lock.
  void fire() {
    if (!Cond)
      return;
    if (All)
      Cond->signalAll();
    else
      Cond->signal();
  }
};

/// The per-monitor condition manager.
class ConditionManager {
  struct Record; // Defined below; TimedWait carries a back-pointer.

public:
  /// One in-flight timed (or cancellable) wait: a stack-allocated record
  /// the blocking thread threads through the await entry points. Carries
  /// the wheel node (intrusive; zero allocation) and the optional token.
  /// Deadline semantics: Node.DeadlineNs is absolute monotonic
  /// (time::nowNs domain); time::NeverNs plus a token expresses a
  /// cancellation-only wait.
  struct TimedWait {
    TimedWait(uint64_t DeadlineNs, time::CancelToken *Token)
        : Token(Token) {
      Node.DeadlineNs = DeadlineNs;
      Node.Owner = this;
    }

    time::TimerNode Node;
    /// Far-deadline parking slot (time/FallbackTicker.h); used instead
    /// of the wheel node when the deadline is beyond the near horizon.
    time::FarNode FarN;
    time::CancelToken *Token = nullptr;
    /// The record this wait blocks on; set by waitOnRecord so exit-path
    /// expiry processing can retire the waiter from the record.
    Record *Rec = nullptr;
    /// Marked (under the monitor lock) by an exit-path wheel advance that
    /// noticed the deadline passed before the waiter's own bounded block
    /// returned; balanced against Record::ExpiredWaiters on the way out.
    bool Expired = false;

    uint64_t deadlineNs() const { return Node.DeadlineNs; }
    bool cancelled() const { return Token && Token->cancelled(); }
  };

  /// \p SharedEnv must resolve every Shared-scoped variable of \p Syms and
  /// reflect the monitor's current state on each call (the Monitor's slot
  /// environment does); \p Slots is the raw backing array of the same
  /// state, indexed by VarId, for the allocation-free compiled-eval path.
  /// All references must outlive the manager.
  ConditionManager(sync::Mutex &MonitorLock, ExprArena &Arena,
                   SymbolTable &Syms, const Env &SharedEnv,
                   const std::vector<Value> &Slots,
                   const MonitorConfig &Cfg);
  ~ConditionManager();
  ConditionManager(const ConditionManager &) = delete;
  ConditionManager &operator=(const ConditionManager &) = delete;

  /// Blocks the calling thread until \p Pred (which may mention local
  /// variables bound in \p Locals) holds. Implements the paper's Fig. 6:
  /// check, globalize, register, then relay-and-wait until true. This is
  /// the uncached path; steady-state waits go through awaitGround /
  /// awaitBound below.
  ///
  /// Monitor lock must be held; it is released while blocked and re-held on
  /// return. Fatal error if the predicate is canonically unsatisfiable
  /// (the wait could never finish — timed waits included: a deadline bounds
  /// waiting for a *possible* condition, it does not legalize an impossible
  /// one).
  ///
  /// With \p TW null this is the classic unbounded wait and always returns
  /// true. With \p TW set, returns true iff the predicate was observed
  /// true, false on deadline expiry or cancellation (predicate-first: see
  /// the file comment).
  bool await(ExprRef Pred, const Env &Locals, TimedWait *TW = nullptr);

  /// Blocks on a Ground wait plan (shared-only shape, canonicalized at
  /// plan-build time). The caller has already checked the fast path (the
  /// predicate is false right now). Lock and TimedWait semantics as
  /// await().
  bool awaitGround(const WaitPlan &Plan, TimedWait *TW = nullptr);

  /// Blocks on a resolved plan signature (\p Sig / \p N from
  /// WaitPlan::resolve, status Resolved). Known signatures map straight to
  /// their predicate record — zero interning, zero allocation; unknown
  /// ones are reconstructed and unified through the canonical predicate
  /// table. Lock and TimedWait semantics as await().
  bool awaitBound(const SigEntry *Sig, size_t N, TimedWait *TW = nullptr);

  /// The relay signaling rule; called on monitor exit and before blocking.
  /// With \p Defer null the winning record is signaled immediately (the
  /// pre-block relay, where the caller is about to release the lock by
  /// waiting anyway); otherwise the pick is recorded in \p Defer and the
  /// caller fires it after releasing the monitor lock.
  void relaySignal(DeferredWake *Defer = nullptr);

  /// Eagerly registers \p Pred (no waiting), mirroring the paper's
  /// constructor-time registration of static shared predicates (Fig. 5).
  /// The predicate starts in the inactive cache and is revived on first
  /// wait. Predicates that canonicalize to true/false are ignored.
  void registerPredicate(ExprRef Pred);

  /// Records that shared variable \p Id changed value: unions it into the
  /// relay dirty set and bumps its version counter. Called by
  /// Monitor::writeSlot under the monitor lock; a no-op when the dirty-set
  /// filter is off or the policy is Broadcast.
  void noteWrite(VarId Id) {
    if (Cfg.Filter != RelayFilter::DirtySet ||
        Cfg.Policy == SignalPolicy::Broadcast)
      return;
    ++GlobalVersion;
    if (Id >= SlotVersions.size())
      SlotVersions.resize(Id + 1, 0);
    SlotVersions[Id] = GlobalVersion;
    AccumDirty.add(Id);
  }

  //===--------------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------------===//

  const ManagerStats &stats() const { return Stats; }
  void resetStats() {
    flushRelayCounters(); // Keep the process-wide totals exact.
    Stats = ManagerStats();
    FlushedRelay = sync::RelayCountersSnapshot();
    FlushedTimed = sync::TimedCountersSnapshot();
  }

  PhaseTimers &timers() { return Timers; }

  /// Registered predicates (active + inactive).
  size_t numRegistered() const { return Table.size(); }
  /// Predicates with at least one waiter (tags registered in the index).
  size_t numActive() const { return ActiveCount; }
  /// Parked predicates available for reuse.
  size_t inactiveCacheSize() const { return Table.size() - ActiveCount; }
  /// Threads currently blocked in await().
  int numWaiters() const { return TotalWaiters; }
  /// Signals issued whose target has not resumed yet.
  int pendingSignals() const { return PendingTotal; }

private:
  static constexpr size_t InvalidPos = static_cast<size_t>(-1);

  /// One registered (globalized, canonicalized) predicate (declared at
  /// the top of the class so TimedWait can point at it).
  struct Record {
    ExprRef Canonical = nullptr;
    Dnf D;
    std::vector<Tag> Tags;
    std::unique_ptr<sync::Condition> Cond;
    CompiledPredicate Code;
    /// Shared variables the predicate reads; drives the relay filter.
    VarSet ReadSet;
    /// Version-stamp of the last false evaluation: while no read-set
    /// variable has a newer version, the predicate is still false and
    /// recordTrue() answers without running the bytecode. Invalidated on
    /// activation (StampValid = false).
    uint64_t FalseVersion = 0;
    bool StampValid = false;
    int Waiters = 0;
    /// Waiters whose deadline an exit-path wheel advance has seen expire
    /// but whose threads have not finished unwinding yet. When every
    /// waiter is expired the record is dead weight for the relay: the
    /// search skips it without evaluating (Search.ExpiredSkips).
    int ExpiredWaiters = 0;
    int PendingSignals = 0;
    bool Active = false;
    /// Whether the record has an entry in InactiveQueue (at most one).
    bool InQueue = false;
    uint64_t LastUse = 0;
    /// Intrusive position in ActiveList (InvalidPos when inactive); no
    /// side-table hashing on activate/deactivate.
    size_t ActiveIdx = InvalidPos;
    /// Intrusive position in the tag index's None list (see TagIndex).
    size_t NoneIdx = InvalidPos;
    /// Plan-signature aliases resolving to this record: pointers to the
    /// owning BindTable keys (stable: unordered_map nodes do not move),
    /// used to erase the aliases on eviction without a second copy of
    /// each signature.
    std::vector<const std::vector<SigEntry> *> SigAliases;
  };

  /// Owned plan-signature key (cold path); lookups use SigView.
  struct SigKey {
    std::vector<SigEntry> E;
  };
  struct SigView {
    const SigEntry *P;
    size_t N;
  };
  struct SigHash {
    using is_transparent = void;
    size_t operator()(const SigKey &K) const {
      return hash(K.E.data(), K.E.size());
    }
    size_t operator()(const SigView &V) const { return hash(V.P, V.N); }
    static size_t hash(const SigEntry *P, size_t N);
  };
  struct SigEq {
    using is_transparent = void;
    static bool eq(const SigEntry *A, size_t NA, const SigEntry *B,
                   size_t NB) {
      if (NA != NB)
        return false;
      for (size_t I = 0; I != NA; ++I)
        if (!(A[I] == B[I]))
          return false;
      return true;
    }
    bool operator()(const SigKey &A, const SigKey &B) const {
      return eq(A.E.data(), A.E.size(), B.E.data(), B.E.size());
    }
    bool operator()(const SigKey &A, const SigView &B) const {
      return eq(A.E.data(), A.E.size(), B.P, B.N);
    }
    bool operator()(const SigView &A, const SigKey &B) const {
      return eq(A.P, A.N, B.E.data(), B.E.size());
    }
  };

  /// Parks \p R in the inactive queue for reuse or eventual eviction.
  void park(Record *R);

  /// Existing record for \p Canonical (with revival bookkeeping), or null.
  Record *lookupExisting(ExprRef Canonical);
  Record *lookupOrRegister(ExprRef Canonical, Dnf D);
  void activate(Record *R);
  void deactivate(Record *R);
  void evictIfNeeded();

  /// The shared blocking loop: activate, relay-and-wait until the record's
  /// predicate holds (or, with \p TW, the deadline/token fires),
  /// deactivate when the last waiter leaves. Returns false only for a
  /// timed wait that left unsatisfied.
  bool waitOnRecord(Record *R, TimedWait *TW);

  /// Drives the timer wheel's lazy cascade from the monitor's wait/exit
  /// paths: fires due timers, marks their waits expired, retires them
  /// from relay consideration, and wakes their threads. Two relaxed loads
  /// and no clock read when no timer could be due.
  void processExpiry();

  /// Full predicate check under the current shared state, answered by the
  /// false-stamp when it is still current (DirtySet filter only).
  bool recordTrue(Record *R);

  /// Runs the record's predicate (bytecode or tree walk), no stamping.
  bool evalRecord(Record *R) const;

  /// Newest version among \p S's variables (the stamp domain).
  uint64_t readSetVersion(const VarSet &S) const;

  /// Relay search under the LinearScan policy: evaluate active predicates
  /// one by one, skipping those \p Dirty proves unchanged-false.
  Record *linearScanFindTrue(const VarSet *Dirty);

  /// Relay search under the Tagged policy (TagIndex::findTrue).
  Record *taggedFindTrue(const VarSet *Dirty);

  /// Folds the delta of the per-monitor relay stats since the last flush
  /// into the process-wide sync::RelayCounters. Called every few dozen
  /// relays, on destruction, and from resetStats — never per exit, so the
  /// hot path touches no shared atomics.
  void flushRelayCounters();

  bool awaitBroadcast(ExprRef Pred, const Env &Locals, TimedWait *TW);

  sync::Mutex &MonitorLock;
  ExprArena &Arena;
  SymbolTable &Syms;
  const Env &SharedEnv;
  const std::vector<Value> &Slots;
  MonitorConfig Cfg;
  PhaseTimers Timers;

  /// Predicate table (§5.2): canonical predicate -> record. Pointer keys
  /// work because canonical predicates are interned.
  std::unordered_map<ExprRef, std::unique_ptr<Record>> Table;

  /// Plan-bind table: resolved plan signature -> record. The steady-state
  /// complex-predicate path; entries are aliases into Table's records.
  std::unordered_map<SigKey, Record *, SigHash, SigEq> BindTable;

  /// Tag indices (Tagged policy).
  TagIndex<Record> Index;

  /// Active records, for the LinearScan policy and diagnostics.
  std::vector<Record *> ActiveList;
  size_t ActiveCount = 0;

  /// Inactive cache in parking order. Each record appears at most once
  /// (Record::InQueue); revived records are skipped lazily on eviction.
  std::deque<Record *> InactiveQueue;

  /// Condition variables of evicted records. Never destroyed before the
  /// manager itself: a deferred wakeup (Monitor::exit signals after the
  /// unlock) may still be in flight for a record whose waiter already
  /// resumed — consuming the pending-signal accounting and allowing
  /// eviction — so destroying the condvar there would race the signal.
  /// Parking it instead makes the late signal a legal spurious wakeup for
  /// whichever record reuses it.
  std::vector<std::unique_ptr<sync::Condition>> CondPool;

  /// Broadcast policy state.
  std::unique_ptr<sync::Condition> BroadcastCond;
  int BroadcastWaiters = 0;

  int TotalWaiters = 0;
  int PendingTotal = 0;
  uint64_t UseTick = 0;

  /// The deadline runtime's per-manager timer wheel (its own internal
  /// lock, sharded off the monitor mutex) and the reusable scratch buffer
  /// advance() fires into (allocation-free steady state).
  time::TimerWheel Wheel;
  std::vector<time::TimerNode *> ExpiredScratch;

  /// Dirty-set relay state (all guarded by the monitor lock): variables
  /// written since the last empty-handed relay scan, the global write
  /// tick, and per-variable last-write versions (indexed by VarId, grown
  /// lazily). See the file comment for the invariant.
  VarSet AccumDirty;
  uint64_t GlobalVersion = 0;
  std::vector<uint64_t> SlotVersions;

  ManagerStats Stats;
  /// Portion of Stats already folded into sync::RelayCounters::global().
  sync::RelayCountersSnapshot FlushedRelay;
  /// Portion of Stats already folded into sync::TimedCounters::global().
  sync::TimedCountersSnapshot FlushedTimed;
};

} // namespace autosynch

#endif // AUTOSYNCH_CORE_CONDITIONMANAGER_H

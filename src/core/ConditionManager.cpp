//===- core/ConditionManager.cpp - The AutoSynch condition manager ---------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "core/ConditionManager.h"

#include "expr/Eval.h"
#include "expr/Subst.h"
#include "plan/PlanCache.h"
#include "sync/Counters.h"
#include "time/FallbackTicker.h"

#include <bit>

using namespace autosynch;

const char *autosynch::signalPolicyName(SignalPolicy P) {
  switch (P) {
  case SignalPolicy::Tagged:
    return "tagged";
  case SignalPolicy::LinearScan:
    return "linear-scan";
  case SignalPolicy::Broadcast:
    return "broadcast";
  }
  AUTOSYNCH_UNREACHABLE("invalid SignalPolicy");
}

const char *autosynch::relayFilterName(RelayFilter F) {
  switch (F) {
  case RelayFilter::Always:
    return "always";
  case RelayFilter::DirtySet:
    return "dirty";
  }
  AUTOSYNCH_UNREACHABLE("invalid RelayFilter");
}

ConditionManager::ConditionManager(sync::Mutex &MonitorLock,
                                   ExprArena &Arena, SymbolTable &Syms,
                                   const Env &SharedEnv,
                                   const std::vector<Value> &Slots,
                                   const MonitorConfig &Cfg)
    : MonitorLock(MonitorLock), Arena(Arena), Syms(Syms),
      SharedEnv(SharedEnv), Slots(Slots), Cfg(Cfg),
      Timers(Cfg.EnablePhaseTimers) {
  if (Cfg.Policy == SignalPolicy::Broadcast)
    BroadcastCond = MonitorLock.newCondition();
}

size_t ConditionManager::SigHash::hash(const SigEntry *P, size_t N) {
  // FNV-1a over the entry fields.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  for (size_t I = 0; I != N; ++I) {
    Mix(reinterpret_cast<uintptr_t>(P[I].P));
    Mix(P[I].Tag);
    Mix(static_cast<uint64_t>(P[I].K));
  }
  return static_cast<size_t>(H);
}

ConditionManager::~ConditionManager() {
  AUTOSYNCH_CHECK(TotalWaiters == 0,
                  "destroying a monitor with blocked waiters");
  flushRelayCounters();
}

void ConditionManager::flushRelayCounters() {
  sync::RelayCountersSnapshot Cur{Stats.RelayCalls, Stats.RelayDirtySkips,
                                  Stats.Search.FilteredExprs,
                                  Stats.StampShortCircuits};
  sync::RelayCounters::global().add(Cur - FlushedRelay);
  FlushedRelay = Cur;
  // The deadline-runtime totals ride the same batching cadence.
  sync::TimedCountersSnapshot Timed{Stats.TimedWaits, Stats.Timeouts,
                                    Stats.Cancels, Stats.WheelWakeups};
  sync::TimedCounters::global().add(Timed - FlushedTimed);
  FlushedTimed = Timed;
}

//===----------------------------------------------------------------------===//
// Predicate evaluation
//===----------------------------------------------------------------------===//

bool ConditionManager::evalRecord(Record *R) const {
  // Slot programs read the monitor's shared state straight out of the
  // backing array — no virtual Env dispatch on the relay hot path.
  if (R->Code.valid())
    return R->Code.runRawBool(Slots.data(), nullptr);
  return evalBool(R->Canonical, SharedEnv);
}

uint64_t ConditionManager::readSetVersion(const VarSet &S) const {
  if (S.universal())
    return GlobalVersion;
  uint64_t V = 0;
  for (uint64_t M = S.mask(); M != 0; M &= M - 1) {
    auto B = static_cast<size_t>(std::countr_zero(M));
    if (B < SlotVersions.size() && SlotVersions[B] > V)
      V = SlotVersions[B];
  }
  return V;
}

bool ConditionManager::recordTrue(Record *R) {
  if (Cfg.Filter != RelayFilter::DirtySet)
    return evalRecord(R);

  // Predicates are pure functions of the shared slots, so an unchanged
  // read-set version means an unchanged truth value: a current false-stamp
  // answers without touching the bytecode.
  uint64_t Ver = readSetVersion(R->ReadSet);
  if (R->StampValid && R->FalseVersion == Ver) {
    ++Stats.StampShortCircuits;
    return false;
  }
  bool True = evalRecord(R);
  R->StampValid = !True;
  R->FalseVersion = Ver;
  return True;
}

//===----------------------------------------------------------------------===//
// Registration, activation, and the inactive cache (§5.2)
//===----------------------------------------------------------------------===//

ConditionManager::Record *ConditionManager::lookupExisting(ExprRef Canonical) {
  auto It = Table.find(Canonical);
  if (It == Table.end())
    return nullptr;
  if (!It->second->Active)
    ++Stats.CacheReuses;
  return It->second.get();
}

ConditionManager::Record *
ConditionManager::lookupOrRegister(ExprRef Canonical, Dnf D) {
  if (Record *Existing = lookupExisting(Canonical))
    return Existing;

  ++Stats.Registrations;
  auto R = std::make_unique<Record>();
  R->Canonical = Canonical;
  R->D = std::move(D);
  R->Tags = deriveTags(Arena, R->D, Syms);
  // Registered predicates are globalized (shared variables only), so the
  // whole variable set of the canonical form is the read set.
  collectVars(Canonical, R->ReadSet);
  if (!CondPool.empty()) {
    R->Cond = std::move(CondPool.back());
    CondPool.pop_back();
  } else {
    R->Cond = MonitorLock.newCondition();
  }
  if (Cfg.UseCompiledEval)
    R->Code = CompiledPredicate::compile(
        Canonical, [this](VarId V) -> ResolvedVar {
          AUTOSYNCH_CHECK(Syms.isShared(V),
                          "registered predicate mentions a local");
          return {ResolvedVar::Kind::Shared, V};
        });
  Record *Raw = R.get();
  Table.emplace(Canonical, std::move(R));
  // Newly registered predicates start parked; activate() revives them when
  // the first waiter arrives.
  park(Raw);
  return Raw;
}

void ConditionManager::park(Record *R) {
  R->LastUse = ++UseTick;
  if (!R->InQueue) {
    InactiveQueue.push_back(R);
    R->InQueue = true;
  }
}

void ConditionManager::activate(Record *R) {
  if (R->Active)
    return;
  // Revival invalidates the false-stamp: cheap (one eval on the next
  // check), and it keeps "stamps are only trusted on records that stayed
  // active" a local invariant instead of a whole-lifecycle proof.
  R->StampValid = false;
  uint64_t T0 = Timers.start();
  if (Cfg.Policy == SignalPolicy::Tagged)
    for (const Tag &T : R->Tags)
      Index.add(T, R);
  AUTOSYNCH_CHECK(R->ActiveIdx == InvalidPos,
                  "inactive record still holds an active position");
  R->ActiveIdx = ActiveList.size();
  ActiveList.push_back(R);
  ++ActiveCount;
  R->Active = true;
  Timers.stop(PhaseTimers::TagMgmt, T0);
}

void ConditionManager::deactivate(Record *R) {
  AUTOSYNCH_CHECK(R->Active, "deactivating an inactive record");
  AUTOSYNCH_CHECK(R->Waiters == 0, "deactivating a record with waiters");
  AUTOSYNCH_CHECK(R->ExpiredWaiters == 0,
                  "deactivating a record with unretired expired waiters");
  AUTOSYNCH_CHECK(R->PendingSignals == 0,
                  "deactivating a record with an in-flight signal");
  uint64_t T0 = Timers.start();
  if (Cfg.Policy == SignalPolicy::Tagged)
    for (const Tag &T : R->Tags)
      Index.remove(T, R);
  size_t Pos = R->ActiveIdx;
  AUTOSYNCH_CHECK(Pos < ActiveList.size() && ActiveList[Pos] == R,
                  "record's active position is stale");
  ActiveList[Pos] = ActiveList.back();
  ActiveList[Pos]->ActiveIdx = Pos;
  ActiveList.pop_back();
  R->ActiveIdx = InvalidPos;
  --ActiveCount;
  R->Active = false;
  park(R);
  Timers.stop(PhaseTimers::TagMgmt, T0);
  evictIfNeeded();
}

void ConditionManager::evictIfNeeded() {
  // Oldest-first eviction. A queue entry is stale when its record was
  // revived after parking; such records are skipped (they re-enter the
  // queue when they park again).
  while (Table.size() - ActiveCount > Cfg.InactiveCacheLimit &&
         !InactiveQueue.empty()) {
    Record *R = InactiveQueue.front();
    InactiveQueue.pop_front();
    R->InQueue = false;
    if (R->Active)
      continue; // Revived while queued.
    AUTOSYNCH_CHECK(R->Waiters == 0 && R->PendingSignals == 0,
                    "evicting a record in use");
    for (const std::vector<SigEntry> *Alias : R->SigAliases) {
      auto It = BindTable.find(SigView{Alias->data(), Alias->size()});
      AUTOSYNCH_CHECK(It != BindTable.end() && It->second == R,
                      "stale plan-signature alias");
      BindTable.erase(It);
    }
    // Park the condvar, never destroy it here: a deferred exit-wakeup may
    // still be signaling it (see CondPool).
    CondPool.push_back(std::move(R->Cond));
    Table.erase(R->Canonical);
    ++Stats.Evictions;
  }
}

void ConditionManager::registerPredicate(ExprRef Pred) {
  AUTOSYNCH_CHECK(!isComplex(Pred, Syms),
                  "registerPredicate requires a shared predicate");
  CanonicalPredicate CP = canonicalizePredicate(Arena, Pred, Cfg.Limits);
  if (CP.D.isTrue() || CP.D.isFalse())
    return;
  lookupOrRegister(CP.Expr, std::move(CP.D));
  evictIfNeeded();
}

//===----------------------------------------------------------------------===//
// Relay signaling (§4.2)
//===----------------------------------------------------------------------===//

ConditionManager::Record *
ConditionManager::linearScanFindTrue(const VarSet *Dirty) {
  for (Record *R : ActiveList) {
    if (Dirty && !Dirty->intersects(R->ReadSet)) {
      ++Stats.Search.FilteredExprs;
      continue;
    }
    if (R->ExpiredWaiters >= R->Waiters) {
      // Every waiter's deadline has passed; each wakes on its own bounded
      // block, so a directed signal here would be wasted (see the file
      // comment for why skipping without evaluating stays sound).
      ++Stats.Search.ExpiredSkips;
      continue;
    }
    ++Stats.Search.PredicateChecks;
    if (recordTrue(R))
      return R;
  }
  return nullptr;
}

ConditionManager::Record *ConditionManager::taggedFindTrue(const VarSet *Dirty) {
  return Index.findTrue(
      [&](ExprRef SharedExpr) { return eval(SharedExpr, SharedEnv).raw(); },
      [&](Record *R) {
        if (R->ExpiredWaiters >= R->Waiters) {
          // Mid-scan retirement of expired records: answer "not a
          // winner" without touching the record's predicate or stamp.
          ++Stats.Search.ExpiredSkips;
          return false;
        }
        ++Stats.Search.PredicateChecks;
        return recordTrue(R);
      },
      &Stats.Search, Dirty);
}

void ConditionManager::processExpiry() {
  // Gate with two relaxed loads before paying for a clock read (and only
  // then the wheel lock): monitors without timed waiters must not feel
  // the deadline runtime on their exit paths.
  if (Wheel.size() == 0)
    return;
  uint64_t Now = time::nowNs();
  if (Now < Wheel.nextDueBoundNs())
    return;

  ExpiredScratch.clear();
  if (Wheel.advance(Now, ExpiredScratch) == 0)
    return;
  for (time::TimerNode *N : ExpiredScratch) {
    auto *TW = static_cast<TimedWait *>(N->Owner);
    AUTOSYNCH_CHECK(TW && !TW->Expired, "timer fired twice for one wait");
    AUTOSYNCH_CHECK(TW->Rec, "fired timer without a record");
    TW->Expired = true;
    ++TW->Rec->ExpiredWaiters;
    ++Stats.WheelWakeups;
    // Wake the expired thread promptly (it would otherwise return at its
    // own bounded block's deadline — this only accelerates). The signal
    // may land on a sibling waiter of the same record; that thread treats
    // it as a legal spurious wakeup.
    TW->Rec->Cond->signal();
  }
}

void ConditionManager::relaySignal(DeferredWake *Defer) {
  // Exit/wait paths drive the timer wheel's lazy cascade: expired timed
  // waiters are retired from relay consideration before the search picks
  // a winner (near-free when no timer is due; see processExpiry).
  processExpiry();

  uint64_t T0 = Timers.start();
  // The process-wide counters are fed in batches, not per exit: a shared
  // fetch_add here would put cross-monitor cache-line contention on the
  // very path the dirty skip makes cheap.
  if ((++Stats.RelayCalls & 63) == 0)
    flushRelayCounters();

  if (Cfg.Policy == SignalPolicy::Broadcast) {
    // Baseline: wake everyone; each waiter re-evaluates its own predicate.
    // Deliberately unfiltered — the baseline's behavior is a paper
    // comparison point and must stay bit-for-bit.
    if (BroadcastWaiters > 0) {
      if (Defer) {
        Defer->Cond = BroadcastCond.get();
        Defer->All = true;
      } else {
        BroadcastCond->signalAll();
      }
      ++Stats.BroadcastSignals;
    }
    Timers.stop(PhaseTimers::Relay, T0);
    return;
  }

  // A signaled thread that has not resumed yet is active (Definition 3);
  // relay invariance already holds, and that thread will re-relay if its
  // predicate has been falsified in the meantime. The dirty set is left
  // untouched: the in-flight thread's relay must still see these writes.
  if (PendingTotal > 0) {
    ++Stats.RelaySkips;
    Timers.stop(PhaseTimers::Relay, T0);
    return;
  }

  const bool Filtered = Cfg.Filter == RelayFilter::DirtySet;
  if (Filtered && AccumDirty.empty()) {
    // Nothing changed since the last empty-handed scan proved every
    // active predicate false — the read-only-exit fast path: no shared-
    // expression evaluation, no predicate check, no heap visit.
    ++Stats.RelayDirtySkips;
    Timers.stop(PhaseTimers::Relay, T0);
    return;
  }

  const VarSet *Dirty = Filtered ? &AccumDirty : nullptr;
  Record *R = Cfg.Policy == SignalPolicy::Tagged ? taggedFindTrue(Dirty)
                                                 : linearScanFindTrue(Dirty);
  if (R) {
    // All bookkeeping happens here, under the lock, at pick time; only the
    // condvar notification itself may be deferred past the unlock. The
    // non-zero PendingSignals keeps the record alive (eviction refuses
    // records in use) until the signaled thread resumes. The dirty set
    // survives a successful pick: the scan stopped early, so unvisited
    // records may owe their (unknown) truth to the same writes.
    if (Defer)
      Defer->Cond = R->Cond.get();
    else
      R->Cond->signal();
    ++R->PendingSignals;
    ++PendingTotal;
    ++Stats.SignalsSent;
  } else if (Filtered) {
    // Empty-handed scan: every active predicate is (re-)proven false
    // under the current state, so the accumulated dirt is discharged.
    AccumDirty.clear();
  }
  Timers.stop(PhaseTimers::Relay, T0);
}

//===----------------------------------------------------------------------===//
// Waiting (paper Fig. 6)
//===----------------------------------------------------------------------===//

bool ConditionManager::awaitBroadcast(ExprRef Pred, const Env &Locals,
                                      TimedWait *TW) {
  OverlayEnv Combined(Locals, SharedEnv);
  // Broadcast timed waits never register in the wheel: signalAll on every
  // exit already wakes them, and their bounded block is its own fallback
  // tick. The token still needs the registration handshake for a wake
  // that races the final flag check (see time/CancelToken.h).
  time::CancelScope Scope(TW ? TW->Token : nullptr, BroadcastCond.get());
  if (TW)
    ++Stats.TimedWaits; // On entry, like waitOnRecord: a wait that dies
                        // at its first deadline check still counts, so
                        // Timeouts <= TimedWaits holds for every policy.
  bool Waited = false;
  while (true) {
    if (evalBool(Pred, Combined))
      return true; // Predicate-first, even past the deadline.
    if (TW) {
      if (Scope.cancelled()) {
        ++Stats.Cancels;
        return false;
      }
      if (time::isBounded(TW->deadlineNs()) &&
          time::nowNs() >= TW->deadlineNs()) {
        ++Stats.Timeouts;
        return false;
      }
    }
    if (!Waited) {
      Waited = true;
      ++Stats.Waits;
      // The classic pre-block relay: the region may have changed state
      // before this wait, and the broadcast policy's only bookkeeping is
      // "wake everyone". First iteration only — a woken waiter that
      // re-evaluates false has nothing new to announce, and under
      // epoch-counted (loss-free) timed waits a per-iteration signalAll
      // would ping-pong blocked waiters forever.
      relaySignal();
    }
    ++BroadcastWaiters;
    ++TotalWaiters;
    uint64_t T0 = Timers.start();
    if (TW) {
      // Epoch after every gen-bumping step above and cancel re-checked
      // after the capture: a flag set later necessarily bumps the epoch
      // later, so the bounded wait returns immediately (see
      // sync/Mutex.h on the closed lost-notify window).
      uint64_t Epoch = BroadcastCond->epoch();
      if (!Scope.cancelled())
        BroadcastCond->awaitUntil(TW->deadlineNs(), Epoch);
    } else {
      BroadcastCond->await();
    }
    Timers.stop(PhaseTimers::Await, T0);
    --BroadcastWaiters;
    --TotalWaiters;
  }
}

bool ConditionManager::waitOnRecord(Record *R, TimedWait *TW) {
  activate(R);
  ++R->Waiters;
  ++TotalWaiters;
  ++Stats.Waits;
  time::CancelScope Scope(TW ? TW->Token : nullptr, R->Cond.get());
  bool InWheel = false;
  bool Far = false;
  // Near deadlines are detected by the bounded block itself (awaitUntil's
  // verdict is authoritative: the kernel compared against the same
  // monotonic clock), so the near loop needs no per-wakeup clock read —
  // only this entry check, for waits whose deadline already passed before
  // ever blocking. Far deadlines (beyond the wheel's near horizon) block
  // *unbounded* under the epoch handshake and lean on the process-wide
  // fallback tick for their expiry wake: one armed kernel timer for every
  // far wait in the process, instead of one per block.
  bool DeadlinePassed = false;
  if (TW) {
    ++Stats.TimedWaits;
    TW->Rec = R;
    if (time::isBounded(TW->deadlineNs())) {
      uint64_t Now = time::nowNs();
      DeadlinePassed = Now >= TW->deadlineNs();
      if (!DeadlinePassed) {
        if (TW->deadlineNs() - Now <= time::TimerWheel::NearHorizonNs) {
          Wheel.insert(TW->Node); // O(1); cancelled symmetrically below.
          InWheel = true;
        } else {
          TW->FarN.Cond = R->Cond.get();
          TW->FarN.DeadlineNs = TW->deadlineNs();
          time::FallbackTicker::global().add(TW->FarN);
          Far = true;
        }
      }
    }
  }

  bool Satisfied;
  while (true) {
    if (recordTrue(R)) {
      Satisfied = true;
      break;
    }
    uint64_t Epoch = 0;
    if (TW) {
      // Epoch before the flag checks: a cancel or expiry wake that lands
      // after this line bumps it, and awaitUntil then returns
      // immediately — the lost-notify window is closed (sync/Mutex.h).
      Epoch = R->Cond->epoch();
      if (Far)
        DeadlinePassed = time::nowNs() >= TW->deadlineNs();
      if (DeadlinePassed || TW->Expired || Scope.cancelled()) {
        Satisfied = false;
        break;
      }
    }
    relaySignal(); // Maintain the invariance before blocking.
    uint64_t T0 = Timers.start();
    if (TW) {
      // Far waits pass the unbounded sentinel: no kernel timer; the
      // fallback tick (or any relay/cancel wake) ends the block.
      bool V = R->Cond->awaitUntil(
          Far ? time::NeverNs : TW->deadlineNs(), Epoch);
      DeadlinePassed = DeadlinePassed || V;
    } else {
      R->Cond->await();
    }
    Timers.stop(PhaseTimers::Await, T0);
    if (R->PendingSignals > 0) {
      --R->PendingSignals;
      --PendingTotal;
    }
  }

  if (TW) {
    if (InWheel)
      Wheel.cancel(TW->Node); // No-op if an exit-path advance fired it.
    if (Far)
      time::FallbackTicker::global().remove(TW->FarN);
    if (TW->Expired) {
      AUTOSYNCH_CHECK(R->ExpiredWaiters > 0,
                      "expired-waiter count out of balance");
      --R->ExpiredWaiters;
      TW->Expired = false;
    }
    if (!Satisfied) {
      if (Scope.cancelled())
        ++Stats.Cancels;
      else
        ++Stats.Timeouts;
      // Baton passing: our wakeup may have consumed a directed signal
      // whose chain obligation we are abandoning; re-run the relay so a
      // thread whose predicate became true is still signaled.
      relaySignal();
    }
  }

  --R->Waiters;
  --TotalWaiters;
  if (R->Waiters == 0)
    deactivate(R);
  return Satisfied;
}

bool ConditionManager::await(ExprRef Pred, const Env &Locals,
                             TimedWait *TW) {
  // Fast path: the condition already holds (Fig. 6 checks P first).
  {
    OverlayEnv Combined(Locals, SharedEnv);
    if (evalBool(Pred, Combined))
      return true;
  }

  if (Cfg.Policy == SignalPolicy::Broadcast)
    return awaitBroadcast(Pred, Locals, TW);

  // Globalization (§4.1): substitute the thread's locals so every other
  // thread can evaluate the predicate on our behalf.
  ExprRef G = isComplex(Pred, Syms) ? globalize(Arena, Pred, Syms, Locals)
                                    : Pred;
  CanonicalPredicate CP = canonicalizePredicate(Arena, G, Cfg.Limits);
  if (CP.D.isTrue()) // Canonicalization may prove it (x >= x).
    return true;
  AUTOSYNCH_CHECK(!CP.D.isFalse(),
                  "waituntil on an unsatisfiable predicate would never "
                  "return");

  return waitOnRecord(lookupOrRegister(CP.Expr, std::move(CP.D)), TW);
}

bool ConditionManager::awaitGround(const WaitPlan &Plan, TimedWait *TW) {
  AUTOSYNCH_CHECK(Plan.kind() == WaitPlan::Kind::Ground,
                  "awaitGround requires a Ground plan");
  // Steady state is a plain table hit; the plan's Dnf is copied only when
  // the record actually has to be (re-)registered.
  Record *R = lookupExisting(Plan.canonical().Expr);
  if (!R)
    R = lookupOrRegister(Plan.canonical().Expr, Plan.canonical().D);
  return waitOnRecord(R, TW);
}

bool ConditionManager::awaitBound(const SigEntry *Sig, size_t N,
                                  TimedWait *TW) {
  Record *R;
  auto It = BindTable.find(SigView{Sig, N});
  if (It != BindTable.end()) {
    // Steady state: the signature was seen before; no interning, no
    // allocation, no canonicalization.
    R = It->second;
    ++Stats.PlanBindHits;
    PlanCounters::global().onBindHit();
    if (!R->Active)
      ++Stats.CacheReuses; // Revival parity with the table path.
  } else {
    // Cold: rebuild the ground predicate the signature denotes and unify
    // it through the canonical table (it may already be registered via
    // another shape, eager registration, or the uncached path), then
    // remember the signature as an alias.
    ++Stats.PlanColdBinds;
    PlanCounters::global().onColdBind();
    Dnf D0 = WaitPlan::reconstruct(Arena, Sig, N);
    CanonicalPredicate CP =
        canonicalizePredicate(Arena, dnfToExpr(Arena, D0), Cfg.Limits);
    if (CP.D.isTrue())
      return true; // Subsumption may prove the binding trivially true.
    AUTOSYNCH_CHECK(!CP.D.isFalse(),
                    "waituntil on an unsatisfiable predicate would never "
                    "return");
    R = lookupOrRegister(CP.Expr, std::move(CP.D));
    SigKey Key;
    Key.E.assign(Sig, Sig + N);
    auto [Slot, Inserted] = BindTable.emplace(std::move(Key), R);
    AUTOSYNCH_CHECK(Inserted, "cold bind raced an existing signature");
    R->SigAliases.push_back(&Slot->first.E);
  }

  return waitOnRecord(R, TW);
}

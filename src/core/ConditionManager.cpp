//===- core/ConditionManager.cpp - The AutoSynch condition manager ---------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "core/ConditionManager.h"

#include "expr/Eval.h"
#include "expr/Subst.h"

using namespace autosynch;

const char *autosynch::signalPolicyName(SignalPolicy P) {
  switch (P) {
  case SignalPolicy::Tagged:
    return "tagged";
  case SignalPolicy::LinearScan:
    return "linear-scan";
  case SignalPolicy::Broadcast:
    return "broadcast";
  }
  AUTOSYNCH_UNREACHABLE("invalid SignalPolicy");
}

ConditionManager::ConditionManager(sync::Mutex &MonitorLock,
                                   ExprArena &Arena, SymbolTable &Syms,
                                   const Env &SharedEnv,
                                   const MonitorConfig &Cfg)
    : MonitorLock(MonitorLock), Arena(Arena), Syms(Syms),
      SharedEnv(SharedEnv), Cfg(Cfg), Timers(Cfg.EnablePhaseTimers) {
  if (Cfg.Policy == SignalPolicy::Broadcast)
    BroadcastCond = MonitorLock.newCondition();
}

ConditionManager::~ConditionManager() {
  AUTOSYNCH_CHECK(TotalWaiters == 0,
                  "destroying a monitor with blocked waiters");
}

//===----------------------------------------------------------------------===//
// Predicate evaluation
//===----------------------------------------------------------------------===//

bool ConditionManager::recordTrue(Record *R) {
  if (Cfg.UseCompiledEval)
    return R->Code.runBool(SharedEnv);
  return evalBool(R->Canonical, SharedEnv);
}

//===----------------------------------------------------------------------===//
// Registration, activation, and the inactive cache (§5.2)
//===----------------------------------------------------------------------===//

ConditionManager::Record *
ConditionManager::lookupOrRegister(ExprRef Canonical, Dnf D) {
  auto It = Table.find(Canonical);
  if (It != Table.end()) {
    if (!It->second->Active)
      ++Stats.CacheReuses;
    return It->second.get();
  }

  ++Stats.Registrations;
  auto R = std::make_unique<Record>();
  R->Canonical = Canonical;
  R->D = std::move(D);
  R->Tags = deriveTags(Arena, R->D, Syms);
  R->Cond = MonitorLock.newCondition();
  if (Cfg.UseCompiledEval)
    R->Code = CompiledPredicate::compile(Canonical);
  Record *Raw = R.get();
  Table.emplace(Canonical, std::move(R));
  // Newly registered predicates start parked; activate() revives them when
  // the first waiter arrives.
  park(Raw);
  return Raw;
}

void ConditionManager::park(Record *R) {
  R->LastUse = ++UseTick;
  if (!R->InQueue) {
    InactiveQueue.push_back(R);
    R->InQueue = true;
  }
}

void ConditionManager::activate(Record *R) {
  if (R->Active)
    return;
  uint64_t T0 = Timers.start();
  if (Cfg.Policy == SignalPolicy::Tagged)
    for (const Tag &T : R->Tags)
      Index.add(T, R);
  ActivePos[R] = ActiveList.size();
  ActiveList.push_back(R);
  ++ActiveCount;
  R->Active = true;
  Timers.stop(PhaseTimers::TagMgmt, T0);
}

void ConditionManager::deactivate(Record *R) {
  AUTOSYNCH_CHECK(R->Active, "deactivating an inactive record");
  AUTOSYNCH_CHECK(R->Waiters == 0, "deactivating a record with waiters");
  AUTOSYNCH_CHECK(R->PendingSignals == 0,
                  "deactivating a record with an in-flight signal");
  uint64_t T0 = Timers.start();
  if (Cfg.Policy == SignalPolicy::Tagged)
    for (const Tag &T : R->Tags)
      Index.remove(T, R);
  size_t Pos = ActivePos.at(R);
  ActiveList[Pos] = ActiveList.back();
  ActivePos[ActiveList.back()] = Pos;
  ActiveList.pop_back();
  ActivePos.erase(R);
  --ActiveCount;
  R->Active = false;
  park(R);
  Timers.stop(PhaseTimers::TagMgmt, T0);
  evictIfNeeded();
}

void ConditionManager::evictIfNeeded() {
  // Oldest-first eviction. A queue entry is stale when its record was
  // revived after parking; such records are skipped (they re-enter the
  // queue when they park again).
  while (Table.size() - ActiveCount > Cfg.InactiveCacheLimit &&
         !InactiveQueue.empty()) {
    Record *R = InactiveQueue.front();
    InactiveQueue.pop_front();
    R->InQueue = false;
    if (R->Active)
      continue; // Revived while queued.
    AUTOSYNCH_CHECK(R->Waiters == 0 && R->PendingSignals == 0,
                    "evicting a record in use");
    Table.erase(R->Canonical);
    ++Stats.Evictions;
  }
}

void ConditionManager::registerPredicate(ExprRef Pred) {
  AUTOSYNCH_CHECK(!isComplex(Pred, Syms),
                  "registerPredicate requires a shared predicate");
  CanonicalPredicate CP = canonicalizePredicate(Arena, Pred, Cfg.Limits);
  if (CP.D.isTrue() || CP.D.isFalse())
    return;
  lookupOrRegister(CP.Expr, std::move(CP.D));
  evictIfNeeded();
}

//===----------------------------------------------------------------------===//
// Relay signaling (§4.2)
//===----------------------------------------------------------------------===//

ConditionManager::Record *ConditionManager::linearScanFindTrue() {
  for (Record *R : ActiveList) {
    ++Stats.Search.PredicateChecks;
    if (recordTrue(R))
      return R;
  }
  return nullptr;
}

ConditionManager::Record *ConditionManager::taggedFindTrue() {
  return Index.findTrue(
      [&](ExprRef SharedExpr) { return eval(SharedExpr, SharedEnv).raw(); },
      [&](Record *R) {
        ++Stats.Search.PredicateChecks;
        return recordTrue(R);
      },
      &Stats.Search);
}

void ConditionManager::relaySignal() {
  uint64_t T0 = Timers.start();
  ++Stats.RelayCalls;

  if (Cfg.Policy == SignalPolicy::Broadcast) {
    // Baseline: wake everyone; each waiter re-evaluates its own predicate.
    if (BroadcastWaiters > 0) {
      BroadcastCond->signalAll();
      ++Stats.BroadcastSignals;
    }
    Timers.stop(PhaseTimers::Relay, T0);
    return;
  }

  // A signaled thread that has not resumed yet is active (Definition 3);
  // relay invariance already holds, and that thread will re-relay if its
  // predicate has been falsified in the meantime.
  if (PendingTotal > 0) {
    ++Stats.RelaySkips;
    Timers.stop(PhaseTimers::Relay, T0);
    return;
  }

  Record *R = Cfg.Policy == SignalPolicy::Tagged ? taggedFindTrue()
                                                 : linearScanFindTrue();
  if (R) {
    R->Cond->signal();
    ++R->PendingSignals;
    ++PendingTotal;
    ++Stats.SignalsSent;
  }
  Timers.stop(PhaseTimers::Relay, T0);
}

//===----------------------------------------------------------------------===//
// Waiting (paper Fig. 6)
//===----------------------------------------------------------------------===//

void ConditionManager::awaitBroadcast(ExprRef Pred, const Env &Locals) {
  OverlayEnv Combined(Locals, SharedEnv);
  bool Waited = false;
  while (!evalBool(Pred, Combined)) {
    if (!Waited) {
      Waited = true;
      ++Stats.Waits;
    }
    relaySignal(); // State may have changed since others last looked.
    ++BroadcastWaiters;
    ++TotalWaiters;
    uint64_t T0 = Timers.start();
    BroadcastCond->await();
    Timers.stop(PhaseTimers::Await, T0);
    --BroadcastWaiters;
    --TotalWaiters;
  }
}

void ConditionManager::await(ExprRef Pred, const Env &Locals) {
  // Fast path: the condition already holds (Fig. 6 checks P first).
  {
    OverlayEnv Combined(Locals, SharedEnv);
    if (evalBool(Pred, Combined))
      return;
  }

  if (Cfg.Policy == SignalPolicy::Broadcast)
    return awaitBroadcast(Pred, Locals);

  // Globalization (§4.1): substitute the thread's locals so every other
  // thread can evaluate the predicate on our behalf.
  ExprRef G = isComplex(Pred, Syms) ? globalize(Arena, Pred, Syms, Locals)
                                    : Pred;
  CanonicalPredicate CP = canonicalizePredicate(Arena, G, Cfg.Limits);
  if (CP.D.isTrue()) // Canonicalization may prove it (x >= x).
    return;
  AUTOSYNCH_CHECK(!CP.D.isFalse(),
                  "waituntil on an unsatisfiable predicate would never "
                  "return");

  Record *R = lookupOrRegister(CP.Expr, std::move(CP.D));
  activate(R);
  ++R->Waiters;
  ++TotalWaiters;
  ++Stats.Waits;

  while (true) {
    if (recordTrue(R))
      break;
    relaySignal(); // Maintain the invariance before blocking.
    uint64_t T0 = Timers.start();
    R->Cond->await();
    Timers.stop(PhaseTimers::Await, T0);
    if (R->PendingSignals > 0) {
      --R->PendingSignals;
      --PendingTotal;
    }
  }

  --R->Waiters;
  --TotalWaiters;
  if (R->Waiters == 0)
    deactivate(R);
}

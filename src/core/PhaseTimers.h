//===- core/PhaseTimers.h - Per-phase CPU accounting (Table 1) -*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulates wall time spent in the monitor phases that the paper's
/// Table 1 profiles with YourKit: lock acquisition, await (blocked time),
/// relaySignal (deciding whom to wake), and tag management. The remaining
/// "others" column is derived by the bench as total minus these.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_CORE_PHASETIMERS_H
#define AUTOSYNCH_CORE_PHASETIMERS_H

#include <atomic>
#include <cstdint>

namespace autosynch {

/// Nanosecond phase accumulators; cheap no-ops when disabled.
class PhaseTimers {
public:
  enum Phase : unsigned { Lock = 0, Await, Relay, TagMgmt, NumPhases };

  static const char *phaseName(Phase P);

  explicit PhaseTimers(bool Enabled) : Enabled(Enabled) {}

  bool enabled() const { return Enabled; }

  /// Monotonic nanoseconds, or 0 when disabled (callers pass the result
  /// back to stop()).
  uint64_t start() const { return Enabled ? nowNs() : 0; }

  /// Accumulates elapsed time since \p StartNs into \p P.
  void stop(Phase P, uint64_t StartNs) {
    if (Enabled)
      Totals[P].fetch_add(nowNs() - StartNs, std::memory_order_relaxed);
  }

  uint64_t totalNs(Phase P) const {
    return Totals[P].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto &T : Totals)
      T.store(0, std::memory_order_relaxed);
  }

private:
  static uint64_t nowNs();

  bool Enabled;
  std::atomic<uint64_t> Totals[NumPhases] = {};
};

} // namespace autosynch

#endif // AUTOSYNCH_CORE_PHASETIMERS_H

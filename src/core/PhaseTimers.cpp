//===- core/PhaseTimers.cpp - Per-phase CPU accounting (Table 1) -----------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "core/PhaseTimers.h"

#include "support/Check.h"

#include <chrono>

using namespace autosynch;

const char *PhaseTimers::phaseName(Phase P) {
  switch (P) {
  case Lock:
    return "lock";
  case Await:
    return "await";
  case Relay:
    return "relaySignal";
  case TagMgmt:
    return "tagMgr";
  default:
    AUTOSYNCH_UNREACHABLE("invalid phase");
  }
}

uint64_t PhaseTimers::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

//===- dnf/Dnf.cpp - Disjunctive normal form --------------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "dnf/Dnf.h"

#include "dnf/CanonicalAtom.h"
#include "expr/Structural.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_set>

using namespace autosynch;

//===----------------------------------------------------------------------===//
// Negation-normal form
//===----------------------------------------------------------------------===//

static ExprRef nnfImpl(ExprArena &Arena, ExprRef E, bool Negate) {
  switch (E->kind()) {
  case ExprKind::BoolLit:
    return Arena.boolLit(Negate ? !E->boolValue() : E->boolValue());
  case ExprKind::Not:
    return nnfImpl(Arena, E->lhs(), !Negate);
  case ExprKind::And:
  case ExprKind::Or: {
    ExprKind K = E->kind();
    if (Negate) // De Morgan.
      K = K == ExprKind::And ? ExprKind::Or : ExprKind::And;
    return Arena.binary(K, nnfImpl(Arena, E->lhs(), Negate),
                        nnfImpl(Arena, E->rhs(), Negate));
  }
  default:
    break;
  }

  if (isComparisonKind(E->kind())) {
    if (!Negate)
      return E;
    // !(a < b) becomes a >= b, etc. Exact for == and != on bools too.
    return Arena.binary(negatedComparisonKind(E->kind()), E->lhs(),
                        E->rhs());
  }

  // Remaining bool atom (a bool variable). Int-typed nodes cannot reach
  // here: NNF only descends through bool structure.
  AUTOSYNCH_CHECK(E->type() == TypeKind::Bool, "NNF reached an int node");
  return Negate ? Arena.unary(ExprKind::Not, E) : E;
}

ExprRef autosynch::toNnf(ExprArena &Arena, ExprRef E) {
  AUTOSYNCH_CHECK(E->type() == TypeKind::Bool,
                  "toNnf requires a bool-typed expression");
  return nnfImpl(Arena, E, /*Negate=*/false);
}

//===----------------------------------------------------------------------===//
// DNF distribution
//===----------------------------------------------------------------------===//

namespace {

/// Merges the atoms of two conjunctions. Returns nullopt when the result is
/// trivially unsatisfiable (contains both X and !X, pointer-level) — the
/// merged conjunction can then be dropped from the disjunction.
std::optional<Conjunction> mergeConjunctions(const Conjunction &A,
                                             const Conjunction &B) {
  Conjunction Out;
  std::unordered_set<ExprRef> Seen;
  auto Add = [&](ExprRef Atom) {
    if (Seen.insert(Atom).second)
      Out.Atoms.push_back(Atom);
  };
  for (ExprRef Atom : A.Atoms)
    Add(Atom);
  for (ExprRef Atom : B.Atoms)
    Add(Atom);

  for (ExprRef Atom : Out.Atoms) {
    if (Atom->kind() == ExprKind::Not && Seen.count(Atom->lhs()))
      return std::nullopt;
  }
  return Out;
}

/// Distributes NNF expression \p E into conjunctions, appending to \p Out.
/// Returns false when a cap in \p Limits is exceeded.
bool distribute(ExprRef E, std::vector<Conjunction> &Out,
                const DnfLimits &Limits) {
  if (E->kind() == ExprKind::Or) {
    if (!distribute(E->lhs(), Out, Limits))
      return false;
    return distribute(E->rhs(), Out, Limits);
  }

  if (E->kind() == ExprKind::And) {
    std::vector<Conjunction> L, R;
    if (!distribute(E->lhs(), L, Limits) || !distribute(E->rhs(), R, Limits))
      return false;
    for (const Conjunction &Cl : L) {
      for (const Conjunction &Cr : R) {
        std::optional<Conjunction> Merged = mergeConjunctions(Cl, Cr);
        if (!Merged)
          continue; // X && !X: contributes nothing to the disjunction.
        if (Merged->Atoms.size() > Limits.MaxAtomsPerConjunction)
          return false;
        Out.push_back(std::move(*Merged));
        if (Out.size() > Limits.MaxConjunctions)
          return false;
      }
    }
    return true;
  }

  if (E->kind() == ExprKind::BoolLit) {
    if (E->boolValue())
      Out.push_back(Conjunction{}); // true: one empty conjunction.
    // false: contributes no conjunction.
    return true;
  }

  Out.push_back(Conjunction{{E}});
  return Out.size() <= Limits.MaxConjunctions;
}

} // namespace

Dnf autosynch::toDnf(ExprArena &Arena, ExprRef E, DnfLimits Limits) {
  ExprRef N = toNnf(Arena, E);
  Dnf D;
  if (!distribute(N, D.Conjs, Limits)) {
    // Blow-up: keep the whole predicate as a single opaque atom. It still
    // evaluates exactly; it just cannot be tagged per conjunction.
    D.Conjs.clear();
    D.Conjs.push_back(Conjunction{{N}});
    D.Exact = false;
    return D;
  }
  // An empty conjunction makes the whole disjunction true.
  for (const Conjunction &C : D.Conjs) {
    if (C.Atoms.empty()) {
      D.Conjs.clear();
      D.Conjs.push_back(Conjunction{});
      return D;
    }
  }
  return D;
}

ExprRef autosynch::dnfToExpr(ExprArena &Arena, const Dnf &D) {
  ExprRef Result = nullptr;
  for (const Conjunction &C : D.Conjs) {
    ExprRef ConjExpr = nullptr;
    for (ExprRef Atom : C.Atoms)
      ConjExpr =
          ConjExpr ? Arena.binary(ExprKind::And, ConjExpr, Atom) : Atom;
    if (!ConjExpr)
      ConjExpr = Arena.boolLit(true); // Empty conjunction.
    Result =
        Result ? Arena.binary(ExprKind::Or, Result, ConjExpr) : ConjExpr;
  }
  return Result ? Result : Arena.boolLit(false); // Empty disjunction.
}

//===----------------------------------------------------------------------===//
// Canonicalization
//===----------------------------------------------------------------------===//

namespace {

/// Per-linear-form bound tracking for contradiction pruning, e.g.
/// (x <= 2) && (x >= 5) or (x == 3) && (x != 3).
class BoundsTracker {
public:
  /// Records canonical atom \p A. Returns false when the conjunction became
  /// unsatisfiable.
  bool record(const CanonicalAtom &A) {
    Bounds &B = Map[A.Lhs.terms()];
    switch (A.Op) {
    case ExprKind::Eq:
      if (B.Eq && *B.Eq != A.Rhs)
        return false;
      B.Eq = A.Rhs;
      break;
    case ExprKind::Ne:
      B.Ne.insert(A.Rhs);
      break;
    case ExprKind::Le:
      if (!B.Hi || A.Rhs < *B.Hi)
        B.Hi = A.Rhs;
      break;
    case ExprKind::Ge:
      if (!B.Lo || A.Rhs > *B.Lo)
        B.Lo = A.Rhs;
      break;
    default:
      AUTOSYNCH_UNREACHABLE("non-canonical op in BoundsTracker");
    }
    return B.satisfiable();
  }

private:
  struct Bounds {
    std::optional<int64_t> Lo, Hi, Eq;
    std::set<int64_t> Ne;

    bool satisfiable() const {
      if (Lo && Hi && *Lo > *Hi)
        return false;
      if (Eq) {
        if (Lo && *Eq < *Lo)
          return false;
        if (Hi && *Eq > *Hi)
          return false;
        if (Ne.count(*Eq))
          return false;
      }
      // A fully pinched range that is excluded by a != atom.
      if (Lo && Hi && *Lo == *Hi && Ne.count(*Lo))
        return false;
      return true;
    }
  };

  std::map<std::vector<LinearForm::Term>, Bounds> Map;
};

/// Lexicographic structural order on conjunctions (atom vectors).
bool conjunctionLess(const Conjunction &A, const Conjunction &B) {
  size_t N = std::min(A.Atoms.size(), B.Atoms.size());
  for (size_t I = 0; I != N; ++I)
    if (int C = structuralCompare(A.Atoms[I], B.Atoms[I]))
      return C < 0;
  return A.Atoms.size() < B.Atoms.size();
}

bool conjunctionEqual(const Conjunction &A, const Conjunction &B) {
  return A.Atoms == B.Atoms; // Pointer vectors; atoms are interned.
}

/// True when A's atom set is a proper subset of B's (both sorted): then B
/// implies A and B is redundant in the disjunction.
bool properSubset(const Conjunction &A, const Conjunction &B) {
  return A.Atoms.size() < B.Atoms.size() &&
         std::includes(B.Atoms.begin(), B.Atoms.end(), A.Atoms.begin(),
                       A.Atoms.end(), StructuralLess());
}

CanonicalPredicate makeTrue(ExprArena &Arena) {
  CanonicalPredicate P;
  P.Expr = Arena.boolLit(true);
  P.D.Conjs.push_back(Conjunction{});
  return P;
}

} // namespace

CanonicalPredicate autosynch::canonicalizePredicate(ExprArena &Arena,
                                                    ExprRef E,
                                                    DnfLimits Limits) {
  AUTOSYNCH_CHECK(E->type() == TypeKind::Bool,
                  "canonicalizePredicate requires a bool-typed expression");
  Dnf D0 = toDnf(Arena, E, Limits);

  CanonicalPredicate P;
  P.D.Exact = D0.Exact;

  for (const Conjunction &C : D0.Conjs) {
    if (C.Atoms.empty()) // `true` conjunction: whole predicate is true.
      return makeTrue(Arena);

    bool Dropped = false;
    BoundsTracker Tracker;
    std::vector<ExprRef> Atoms;

    for (ExprRef Atom : C.Atoms) {
      AtomCanonResult R = canonicalizeAtom(Atom);
      switch (R.Kind) {
      case AtomCanonKind::True:
        continue; // Contributes nothing to the conjunction.
      case AtomCanonKind::False:
        Dropped = true;
        break;
      case AtomCanonKind::Atom:
        if (!Tracker.record(R.Atom)) {
          Dropped = true;
          break;
        }
        Atoms.push_back(canonicalAtomToExpr(Arena, R.Atom));
        break;
      case AtomCanonKind::Opaque:
        Atoms.push_back(Atom);
        break;
      }
      if (Dropped)
        break;
    }
    if (Dropped)
      continue;

    std::sort(Atoms.begin(), Atoms.end(), StructuralLess());
    Atoms.erase(std::unique(Atoms.begin(), Atoms.end()), Atoms.end());
    if (Atoms.empty()) // All atoms constantly true.
      return makeTrue(Arena);
    P.D.Conjs.push_back(Conjunction{std::move(Atoms)});
  }

  // Canonical conjunction order, duplicate removal.
  std::sort(P.D.Conjs.begin(), P.D.Conjs.end(), conjunctionLess);
  P.D.Conjs.erase(std::unique(P.D.Conjs.begin(), P.D.Conjs.end(),
                              conjunctionEqual),
                  P.D.Conjs.end());

  // Subsumption: drop any conjunction that another conjunction's atom set
  // properly subsets (the superset conjunction is redundant). Mark first,
  // move after — moving while scanning would leave empty (subsume-all)
  // husks in the vector being compared against.
  std::vector<bool> Redundant(P.D.Conjs.size(), false);
  for (size_t I = 0; I != P.D.Conjs.size(); ++I)
    for (size_t J = 0; J != P.D.Conjs.size() && !Redundant[I]; ++J)
      if (J != I && properSubset(P.D.Conjs[J], P.D.Conjs[I]))
        Redundant[I] = true;
  std::vector<Conjunction> Kept;
  for (size_t I = 0; I != P.D.Conjs.size(); ++I)
    if (!Redundant[I])
      Kept.push_back(std::move(P.D.Conjs[I]));
  P.D.Conjs = std::move(Kept);

  P.Expr = dnfToExpr(Arena, P.D);
  return P;
}

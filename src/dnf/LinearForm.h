//===- dnf/LinearForm.h - Linear combinations over variables ---*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic linear forms c1*v1 + ... + cn*vn + k extracted from int-typed
/// expressions. The paper (§4.3) rearranges predicates like
/// `x - a = y + b` into `x - y = a + b` so they become equivalence or
/// threshold predicates; linear forms are the mechanism. Extraction uses
/// overflow-checked arithmetic and reports non-linear (or overflowing)
/// expressions as unrepresentable.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_DNF_LINEARFORM_H
#define AUTOSYNCH_DNF_LINEARFORM_H

#include "expr/Expr.h"

#include <optional>
#include <utility>
#include <vector>

namespace autosynch {

/// A linear combination of variables plus a constant. Terms are sorted by
/// VarId and never have zero coefficients.
class LinearForm {
public:
  using Term = std::pair<VarId, int64_t>;

  /// The zero form.
  LinearForm() = default;

  /// Extracts a linear form from int-typed \p E, or nullopt when E is
  /// non-linear (Mul of two variables, Div, Mod) or coefficient arithmetic
  /// would overflow int64.
  static std::optional<LinearForm> of(ExprRef E);

  /// A constant form.
  static LinearForm constantForm(int64_t K) {
    LinearForm F;
    F.Const = K;
    return F;
  }

  /// A single-variable form (coefficient 1).
  static LinearForm variableForm(VarId Id) {
    LinearForm F;
    F.TermList.push_back({Id, 1});
    return F;
  }

  const std::vector<Term> &terms() const { return TermList; }
  int64_t constant() const { return Const; }
  bool isConstant() const { return TermList.empty(); }

  /// this + Rhs, or nullopt on overflow.
  std::optional<LinearForm> add(const LinearForm &Rhs) const;
  /// this - Rhs, or nullopt on overflow.
  std::optional<LinearForm> sub(const LinearForm &Rhs) const;
  /// this * K, or nullopt on overflow.
  std::optional<LinearForm> scale(int64_t K) const;
  /// -this, or nullopt on overflow.
  std::optional<LinearForm> negate() const { return scale(-1); }

  bool operator==(const LinearForm &Rhs) const {
    return Const == Rhs.Const && TermList == Rhs.TermList;
  }

private:
  std::vector<Term> TermList;
  int64_t Const = 0;
};

} // namespace autosynch

#endif // AUTOSYNCH_DNF_LINEARFORM_H

//===- dnf/CanonicalAtom.cpp - Canonical comparison atoms ------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "dnf/CanonicalAtom.h"

#include <numeric>

using namespace autosynch;

namespace {

AtomCanonResult constResult(bool Truth) {
  AtomCanonResult R;
  R.Kind = Truth ? AtomCanonKind::True : AtomCanonKind::False;
  return R;
}

AtomCanonResult opaque() { return AtomCanonResult(); }

/// Evaluates `0 op K` for a constant-only comparison.
bool constCompare(ExprKind Op, int64_t Lhs, int64_t Rhs) {
  switch (Op) {
  case ExprKind::Eq:
    return Lhs == Rhs;
  case ExprKind::Ne:
    return Lhs != Rhs;
  case ExprKind::Lt:
    return Lhs < Rhs;
  case ExprKind::Le:
    return Lhs <= Rhs;
  case ExprKind::Gt:
    return Lhs > Rhs;
  case ExprKind::Ge:
    return Lhs >= Rhs;
  default:
    AUTOSYNCH_UNREACHABLE("constCompare on non-comparison");
  }
}

} // namespace

AtomCanonResult autosynch::canonicalizeAtom(ExprRef E) {
  if (!isComparisonKind(E->kind()))
    return opaque();
  if (E->lhs()->type() != TypeKind::Int)
    return opaque(); // Bool == / != bool stays opaque.

  std::optional<LinearForm> L = LinearForm::of(E->lhs());
  if (!L)
    return opaque();
  std::optional<LinearForm> R = LinearForm::of(E->rhs());
  if (!R)
    return opaque();

  // Form (L - R) op 0, then move the constant right: terms op -const.
  std::optional<LinearForm> Diff = L->sub(*R);
  if (!Diff)
    return opaque();
  int64_t K;
  if (__builtin_sub_overflow(static_cast<int64_t>(0), Diff->constant(), &K))
    return opaque();

  ExprKind Op = E->kind();

  // Constant atom: fold.
  if (Diff->isConstant())
    return constResult(constCompare(Op, 0, K));

  // Rewrite strict comparisons: x < K  ≡  x <= K-1;  x > K  ≡  x >= K+1.
  if (Op == ExprKind::Lt) {
    if (K == INT64_MIN)
      return constResult(false); // Nothing is < INT64_MIN.
    Op = ExprKind::Le;
    --K;
  } else if (Op == ExprKind::Gt) {
    if (K == INT64_MAX)
      return constResult(false); // Nothing is > INT64_MAX.
    Op = ExprKind::Ge;
    ++K;
  }

  // Pure-variable linear form (constant already moved).
  LinearForm Terms = *Diff;
  {
    std::optional<LinearForm> NoConst =
        Terms.sub(LinearForm::constantForm(Terms.constant()));
    AUTOSYNCH_CHECK(NoConst.has_value(),
                    "removing a constant cannot overflow");
    Terms = *NoConst;
  }

  // Positive leading coefficient: negate everything and flip Le/Ge.
  if (Terms.terms().front().second < 0) {
    std::optional<LinearForm> Negated = Terms.negate();
    if (!Negated)
      return opaque(); // INT64_MIN coefficient; give up rather than lie.
    int64_t NegK;
    if (__builtin_sub_overflow(static_cast<int64_t>(0), K, &NegK))
      return opaque();
    Terms = *Negated;
    K = NegK;
    if (Op == ExprKind::Le)
      Op = ExprKind::Ge;
    else if (Op == ExprKind::Ge)
      Op = ExprKind::Le;
  }

  // gcd-reduce coefficients with an integer-exact bound adjustment.
  uint64_t G = 0;
  for (const LinearForm::Term &T : Terms.terms())
    G = std::gcd(G, static_cast<uint64_t>(T.second < 0
                                              ? -static_cast<uint64_t>(T.second)
                                              : static_cast<uint64_t>(
                                                    T.second)));
  AUTOSYNCH_CHECK(G > 0, "gcd of a non-constant form is positive");
  if (G > 1 && G <= static_cast<uint64_t>(INT64_MAX)) {
    int64_t Gs = static_cast<int64_t>(G);
    switch (Op) {
    case ExprKind::Eq:
      if (K % Gs != 0)
        return constResult(false); // g*expr == K unsolvable.
      K /= Gs;
      break;
    case ExprKind::Ne:
      if (K % Gs != 0)
        return constResult(true); // g*expr != K always holds.
      K /= Gs;
      break;
    case ExprKind::Le:
      K = floorDivExact(K, Gs); // g*expr <= K  ≡  expr <= floor(K/g).
      break;
    case ExprKind::Ge:
      K = ceilDivExact(K, Gs); // g*expr >= K  ≡  expr >= ceil(K/g).
      break;
    default:
      AUTOSYNCH_UNREACHABLE("strict op survived canonicalization");
    }
    // Divide coefficients exactly.
    LinearForm Divided;
    for (const LinearForm::Term &T : Terms.terms()) {
      std::optional<LinearForm> Part =
          LinearForm::variableForm(T.first).scale(T.second / Gs);
      AUTOSYNCH_CHECK(Part.has_value(), "gcd division cannot overflow");
      std::optional<LinearForm> Sum = Divided.add(*Part);
      AUTOSYNCH_CHECK(Sum.has_value(), "gcd division cannot overflow");
      Divided = *Sum;
    }
    Terms = Divided;
  }

  AtomCanonResult Result;
  Result.Kind = AtomCanonKind::Atom;
  Result.Atom.Lhs = Terms;
  Result.Atom.Op = Op;
  Result.Atom.Rhs = K;
  return Result;
}

ExprRef autosynch::linearFormToExpr(ExprArena &Arena, const LinearForm &F) {
  ExprRef Sum = nullptr;
  for (const LinearForm::Term &T : F.terms()) {
    ExprRef V = Arena.var(T.first, TypeKind::Int);
    ExprRef TermExpr =
        T.second == 1 ? V : Arena.binary(ExprKind::Mul, Arena.intLit(T.second), V);
    Sum = Sum ? Arena.binary(ExprKind::Add, Sum, TermExpr) : TermExpr;
  }
  if (!Sum)
    return Arena.intLit(F.constant());
  if (F.constant() != 0)
    Sum = Arena.binary(ExprKind::Add, Sum, Arena.intLit(F.constant()));
  return Sum;
}

ExprRef autosynch::canonicalAtomToExpr(ExprArena &Arena,
                                       const CanonicalAtom &A) {
  return Arena.binary(A.Op, linearFormToExpr(Arena, A.Lhs),
                      Arena.intLit(A.Rhs));
}

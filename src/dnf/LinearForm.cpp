//===- dnf/LinearForm.cpp - Linear combinations over variables -------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "dnf/LinearForm.h"

using namespace autosynch;

namespace {

bool addOv(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_add_overflow(A, B, &Out);
}

bool mulOv(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_mul_overflow(A, B, &Out);
}

} // namespace

std::optional<LinearForm> LinearForm::add(const LinearForm &Rhs) const {
  LinearForm Out;
  if (addOv(Const, Rhs.Const, Out.Const))
    return std::nullopt;

  // Merge the two sorted term lists, summing coefficients of equal vars.
  size_t I = 0, J = 0;
  while (I != TermList.size() || J != Rhs.TermList.size()) {
    if (J == Rhs.TermList.size() ||
        (I != TermList.size() && TermList[I].first < Rhs.TermList[J].first)) {
      Out.TermList.push_back(TermList[I++]);
      continue;
    }
    if (I == TermList.size() || Rhs.TermList[J].first < TermList[I].first) {
      Out.TermList.push_back(Rhs.TermList[J++]);
      continue;
    }
    int64_t C;
    if (addOv(TermList[I].second, Rhs.TermList[J].second, C))
      return std::nullopt;
    if (C != 0)
      Out.TermList.push_back({TermList[I].first, C});
    ++I;
    ++J;
  }
  return Out;
}

std::optional<LinearForm> LinearForm::sub(const LinearForm &Rhs) const {
  std::optional<LinearForm> Neg = Rhs.negate();
  if (!Neg)
    return std::nullopt;
  return add(*Neg);
}

std::optional<LinearForm> LinearForm::scale(int64_t K) const {
  if (K == 0)
    return LinearForm();
  LinearForm Out;
  if (mulOv(Const, K, Out.Const))
    return std::nullopt;
  Out.TermList.reserve(TermList.size());
  for (const Term &T : TermList) {
    int64_t C;
    if (mulOv(T.second, K, C))
      return std::nullopt;
    Out.TermList.push_back({T.first, C});
  }
  return Out;
}

std::optional<LinearForm> LinearForm::of(ExprRef E) {
  AUTOSYNCH_CHECK(E->type() == TypeKind::Int,
                  "LinearForm::of requires an int-typed expression");
  switch (E->kind()) {
  case ExprKind::IntLit:
    return constantForm(E->intValue());
  case ExprKind::Var:
    return variableForm(E->varId());
  case ExprKind::Neg: {
    std::optional<LinearForm> Op = of(E->lhs());
    if (!Op)
      return std::nullopt;
    return Op->negate();
  }
  case ExprKind::Add:
  case ExprKind::Sub: {
    std::optional<LinearForm> L = of(E->lhs());
    if (!L)
      return std::nullopt;
    std::optional<LinearForm> R = of(E->rhs());
    if (!R)
      return std::nullopt;
    return E->kind() == ExprKind::Add ? L->add(*R) : L->sub(*R);
  }
  case ExprKind::Mul: {
    std::optional<LinearForm> L = of(E->lhs());
    if (!L)
      return std::nullopt;
    std::optional<LinearForm> R = of(E->rhs());
    if (!R)
      return std::nullopt;
    // Linear only when one side is constant.
    if (L->isConstant())
      return R->scale(L->constant());
    if (R->isConstant())
      return L->scale(R->constant());
    return std::nullopt;
  }
  default:
    // Div and Mod are non-linear over the integers.
    return std::nullopt;
  }
}

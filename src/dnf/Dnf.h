//===- dnf/Dnf.h - Disjunctive normal form ---------------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DNF conversion and predicate canonicalization. The paper assumes every
/// waituntil predicate is in DNF (§4.1: "every Boolean formula can be
/// converted into DNF using De Morgan's laws and distributive law"); its
/// preprocessor performs the conversion, and tags are assigned per
/// conjunction. This module is that conversion:
///
///   NNF (negations pushed to atoms, comparisons flipped)
///    -> DNF (Or over And distribution, with blow-up caps)
///    -> per-atom canonicalization (dnf/CanonicalAtom.h)
///    -> conjunction-level simplification (contradiction pruning,
///       duplicate and subsumed conjunction removal)
///    -> a canonical, interned predicate expression (the predicate-table
///       key giving the paper's "syntax equivalence", §5.2).
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_DNF_DNF_H
#define AUTOSYNCH_DNF_DNF_H

#include "expr/ExprArena.h"

#include <vector>

namespace autosynch {

/// One DNF conjunction: the conjunction of its atoms. Atoms are bool-typed
/// expressions that are not And/Or (after an inexact fallback an atom may
/// be an arbitrary boolean expression; taggers must not assume shape).
struct Conjunction {
  std::vector<ExprRef> Atoms;
};

/// A predicate in disjunctive normal form.
struct Dnf {
  std::vector<Conjunction> Conjs;
  /// False when the distribution hit the blow-up cap and the predicate was
  /// kept as a single opaque atom instead.
  bool Exact = true;

  /// True when the DNF is the constant `true` (one empty conjunction).
  bool isTrue() const {
    return Conjs.size() == 1 && Conjs.front().Atoms.empty();
  }
  /// True when the DNF is the constant `false` (no conjunctions).
  bool isFalse() const { return Conjs.empty(); }
};

/// Negation-normal form: Not appears only directly above non-logical atoms;
/// negated comparisons are flipped instead. Result is interned in \p Arena.
ExprRef toNnf(ExprArena &Arena, ExprRef E);

/// Limits for DNF distribution. The paper's predicates have a handful of
/// conjunctions; the caps only guard against pathological inputs.
struct DnfLimits {
  size_t MaxConjunctions = 128;
  size_t MaxAtomsPerConjunction = 64;
};

/// Converts bool-typed \p E to DNF. When distribution exceeds \p Limits the
/// result is a single conjunction whose only atom is the whole NNF
/// expression, with Exact = false (it still evaluates correctly; it simply
/// gets a None tag).
Dnf toDnf(ExprArena &Arena, ExprRef E, DnfLimits Limits = {});

/// Rebuilds the expression form of \p D: `(a && b) || (c) || ...` with the
/// conjunctions and atoms in their stored order.
ExprRef dnfToExpr(ExprArena &Arena, const Dnf &D);

/// A fully canonicalized predicate: the DNF (canonical atoms, sorted,
/// deduplicated) plus its interned expression form. Two predicates that are
/// "syntax equivalent after globalization" (paper §5.2) — and many that are
/// merely semantically equal, thanks to atom canonicalization — share the
/// same Expr pointer.
struct CanonicalPredicate {
  ExprRef Expr = nullptr;
  Dnf D;
};

/// Canonicalizes globalized, bool-typed \p E.
CanonicalPredicate canonicalizePredicate(ExprArena &Arena, ExprRef E,
                                         DnfLimits Limits = {});

} // namespace autosynch

#endif // AUTOSYNCH_DNF_DNF_H

//===- dnf/CanonicalAtom.h - Canonical comparison atoms --------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalization of comparison atoms into `linear-form op constant`.
/// This implements (and strengthens) the paper's §4.3 rearrangement: after
/// globalization, `count >= 48`, `48 <= count`, and `2*count >= 96` all
/// canonicalize to the same atom, maximizing sharing in the predicate table
/// and enabling equivalence/threshold tagging.
///
/// Canonical form over int64:
///  * ops restricted to {==, !=, <=, >=} (strict < and > are rewritten with
///    +/-1, exact over the integers);
///  * constant moved entirely to the right-hand side;
///  * leading (lowest-VarId) coefficient positive;
///  * coefficients gcd-reduced with integer-exact rounding of the bound.
///
/// Caveat: canonicalization reasons over mathematical integers while
/// evaluation wraps at 64 bits. Predicates whose runtime values approach
/// INT64_MAX may change meaning; monitor predicates (counts, indices,
/// tickets) never do, and the library documents this bound.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_DNF_CANONICALATOM_H
#define AUTOSYNCH_DNF_CANONICALATOM_H

#include "dnf/LinearForm.h"
#include "expr/ExprArena.h"

namespace autosynch {

/// A canonicalized comparison `Lhs op Rhs` where Lhs is a pure-variable
/// linear form (constant 0) and Op is Eq, Ne, Le, or Ge.
struct CanonicalAtom {
  LinearForm Lhs;
  ExprKind Op = ExprKind::Eq;
  int64_t Rhs = 0;
};

/// Outcome of canonicalizing one atom.
enum class AtomCanonKind : uint8_t {
  True,  ///< Atom is constantly true (e.g. x - x >= -1).
  False, ///< Atom is constantly false.
  Atom,  ///< Canonicalized; see Atom field.
  Opaque ///< Not a linear integer comparison; left untouched.
};

struct AtomCanonResult {
  AtomCanonKind Kind = AtomCanonKind::Opaque;
  CanonicalAtom Atom;
};

/// Floor division, exact for negative numerators. Shared with the wait
/// planner (plan/WaitPlan.cpp): a bound key must reduce exactly the way
/// this canonicalizer reduces a ground constant.
inline int64_t floorDivExact(int64_t A, int64_t B) {
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

/// Ceiling division, exact for negative numerators (see floorDivExact).
inline int64_t ceilDivExact(int64_t A, int64_t B) {
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) == (B < 0)))
    ++Q;
  return Q;
}

/// Canonicalizes \p E if it is a comparison between linear int expressions;
/// returns Opaque otherwise (boolean atoms, non-linear arithmetic).
AtomCanonResult canonicalizeAtom(ExprRef E);

/// Rebuilds the expression form of \p A (interned in \p Arena):
/// `c1*v1 + c2*v2 + ... op K` with terms in VarId order and unit
/// coefficients elided.
ExprRef canonicalAtomToExpr(ExprArena &Arena, const CanonicalAtom &A);

/// Rebuilds just the linear-form side (no comparison), used as the tag's
/// shared expression.
ExprRef linearFormToExpr(ExprArena &Arena, const LinearForm &F);

} // namespace autosynch

#endif // AUTOSYNCH_DNF_CANONICALATOM_H

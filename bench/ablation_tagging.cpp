//===- bench/ablation_tagging.cpp - Tagging ablation --------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Ablation: what exactly does predicate tagging buy? Runs the round-robin
// pattern under AutoSynch-T (linear relay scan) and AutoSynch (tag-directed
// relay) and reports the relay work: full predicate evaluations per
// directed signal. The paper's Table 1 attributes a ~95% relaySignal
// reduction to tagging; these counts are the mechanism behind it (the scan
// checks O(N) predicates, the tag hash checks O(1)).
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

#include "core/ConditionManager.h"

#include <cstdio>

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Ablation - predicate tagging vs linear relay scan",
         "round-robin; relay predicate evaluations per directed signal",
         Opts);

  const int64_t TotalOps = Opts.scaled(40000);

  Table T({"threads", "scan-seconds", "tagged-seconds", "scan-evals/signal",
           "tagged-evals/signal"});
  for (int N : Opts.ThreadCounts) {
    double Secs[2] = {0, 0};
    double EvalsPerSignal[2] = {0, 0};
    int Idx = 0;
    for (Mechanism M : {Mechanism::AutoSynchT, Mechanism::AutoSynch}) {
      std::vector<double> Seconds;
      for (int Rep = 0; Rep != Opts.Reps; ++Rep) {
        auto RR = makeRoundRobin(M, N);
        RunMetrics Metrics = runRoundRobin(*RR, N, TotalOps);
        Seconds.push_back(Metrics.Seconds);
        const ManagerStats &S = RR->manager()->stats();
        if (S.SignalsSent)
          EvalsPerSignal[Idx] =
              static_cast<double>(S.Search.PredicateChecks) /
              static_cast<double>(S.SignalsSent);
      }
      Secs[Idx] = summarizeRuns(Seconds).Mean;
      ++Idx;
    }
    char ScanBuf[32], TagBuf[32];
    std::snprintf(ScanBuf, sizeof(ScanBuf), "%.2f", EvalsPerSignal[0]);
    std::snprintf(TagBuf, sizeof(TagBuf), "%.2f", EvalsPerSignal[1]);
    T.addRow({std::to_string(N), Table::fmtSeconds(Secs[0]),
              Table::fmtSeconds(Secs[1]), ScanBuf, TagBuf});
  }
  T.print();
  return 0;
}

//===- bench/relay_dirtyset.cpp - Dirty-set relay microbench ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The dirty-set relay microbench behind BENCH_relay.json: what does a
// monitor exit cost when nothing a waiter depends on changed?
//
// Scenarios (each swept over mechanism x backend x relay filter):
//  * readonly-exit — K waiters parked on never-true thresholds; the
//    measured loop runs read-only regions. Under RelayFilter::DirtySet the
//    exit relay must do literally nothing: zero predicate evaluations,
//    zero shared-expression evaluations, a 100% relay skip rate. Asserted,
//    not just reported.
//  * unrelated-write — same parked waiters; every measured region writes a
//    stats counter no waiter reads. The relay runs but the read-set filter
//    (and the version stamp, for records sharing a dirty expression) must
//    keep predicate evaluations at zero under DirtySet. Also asserted.
//  * readers-writers — the paper's fair RW monitor under a seeded 95%-read
//    mix across 4 threads; reported (evals/op under DirtySet vs. Always)
//    to show the filter on a real problem monitor, not asserted: the relay
//    interleaving is scheduler-dependent.
//
// "Predicate evaluations" is the process-wide predicateEvalCount() (both
// evaluators feed it), so a stamp short-circuit or a filtered index entry
// that silently ran the bytecode anyway would show up here.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"
#include "bench_support/RelayRegistry.h"
#include "core/Monitor.h"
#include "expr/Eval.h"
#include "problems/ReadersWriters.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace autosynch;
using namespace autosynch::bench;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Cell {
  std::string Scenario;
  Mechanism Mech = Mechanism::AutoSynch;
  sync::Backend Backend = sync::Backend::Std;
  RelayFilter Filter = RelayFilter::DirtySet;
  int64_t Ops = 0;
  double NsPerOp = 0.0;
  double EvalsPerOp = 0.0;       ///< predicateEvalCount() delta / op.
  /// Tag-search shared-expression evals / op. Measured only for the
  /// parked-waiter scenarios (per-monitor stats; the RW monitor hides its
  /// manager behind the problem interface) — absent from the JSON
  /// otherwise.
  bool HasSharedEvals = false;
  double SharedEvalsPerOp = 0.0;
  double SkipRate = 0.0;         ///< RelayDirtySkips / RelayCalls.
  uint64_t DirtySkips = 0;
  uint64_t FilteredExprs = 0;
  uint64_t StampShortCircuits = 0;
  uint64_t RelayCalls = 0;
};

/// Runs the parked-waiter scenarios. \p ReadOnly selects peek (read-only
/// regions) vs. bump (unrelated-variable writes).
Cell runParked(bool ReadOnly, Mechanism Mech, sync::Backend Backend,
               RelayFilter Filter, int64_t Ops, int Reps) {
  Cell C;
  C.Scenario = ReadOnly ? "readonly-exit" : "unrelated-write";
  C.Mech = Mech;
  C.Backend = Backend;
  C.Filter = Filter;
  C.Ops = Ops;

  constexpr int Waiters = 8;
  double BestSeconds = -1.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    MonitorConfig Cfg = configFor(Mech, Backend);
    Cfg.Filter = Filter;
    RelayRegistry M(Cfg);

    std::vector<std::thread> Pool;
    for (int W = 0; W != Waiters; ++W)
      Pool.emplace_back([&M, W] { M.waitLevel(1000 + W); });
    M.awaitBlocked(Waiters);

    M.conditionManager().resetStats();
    uint64_t Evals0 = predicateEvalCount();
    double T0 = nowSeconds();
    for (int64_t I = 0; I != Ops; ++I) {
      if (ReadOnly)
        M.peek();
      else
        M.bump();
    }
    double Seconds = nowSeconds() - T0;
    uint64_t EvalsDelta = predicateEvalCount() - Evals0;
    const ManagerStats &S = M.conditionManager().stats();

    if (BestSeconds < 0 || Seconds < BestSeconds) {
      BestSeconds = Seconds;
      C.NsPerOp = Seconds * 1e9 / static_cast<double>(Ops);
      C.EvalsPerOp =
          static_cast<double>(EvalsDelta) / static_cast<double>(Ops);
      C.HasSharedEvals = true;
      C.SharedEvalsPerOp = static_cast<double>(S.Search.SharedExprEvals) /
                           static_cast<double>(Ops);
      C.RelayCalls = S.RelayCalls;
      C.DirtySkips = S.RelayDirtySkips;
      C.FilteredExprs = S.Search.FilteredExprs;
      C.StampShortCircuits = S.StampShortCircuits;
      C.SkipRate = S.RelayCalls == 0
                       ? 0.0
                       : static_cast<double>(S.RelayDirtySkips) /
                             static_cast<double>(S.RelayCalls);
    }

    // The headline properties, asserted on every repetition. The parked
    // waiters never wake during the measured loop (their predicates stay
    // false and stamps make even spurious wakeups evaluation-free), so
    // the deltas are deterministic.
    if (Filter == RelayFilter::DirtySet) {
      AUTOSYNCH_CHECK(EvalsDelta == 0,
                      "dirty-set relay ran a predicate evaluation on an "
                      "exit that changed nothing the waiters read");
      if (ReadOnly) {
        AUTOSYNCH_CHECK(S.Search.SharedExprEvals == 0,
                        "read-only exits must skip the tag search outright");
        AUTOSYNCH_CHECK(S.RelayDirtySkips >= static_cast<uint64_t>(Ops),
                        "read-only exits must take the dirty-skip path");
      }
    } else {
      AUTOSYNCH_CHECK(S.RelayDirtySkips == 0,
                      "the always filter must never dirty-skip");
      if (Mech == Mechanism::AutoSynchT)
        AUTOSYNCH_CHECK(EvalsDelta >= static_cast<uint64_t>(Ops),
                        "the always-filter linear scan must evaluate "
                        "parked predicates on every exit");
    }

    M.setLevel(1000 + Waiters); // True for every waiter: drain.
    for (std::thread &T : Pool)
      T.join();
  }
  return C;
}

/// Seeded 95%-read mix on the paper's fair RW monitor; reported only.
Cell runReadersWriters(Mechanism Mech, sync::Backend Backend,
                       RelayFilter Filter, int64_t Ops, int Reps) {
  Cell C;
  C.Scenario = "readers-writers";
  C.Mech = Mech;
  C.Backend = Backend;
  C.Filter = Filter;
  C.Ops = Ops;

  constexpr int Actors = 4;
  double BestSeconds = -1.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    RelayFilter Prev = defaultRelayFilter();
    setDefaultRelayFilter(Filter);
    auto RW = makeReadersWriters(Mech, Backend);
    setDefaultRelayFilter(Prev);

    // Identical per-actor scripts across every cell (true = read).
    std::vector<std::vector<bool>> Script(Actors);
    for (int A = 0; A != Actors; ++A) {
      Rng R(0x52575242 + static_cast<uint64_t>(A));
      for (int64_t I = 0; I != Ops / Actors; ++I)
        Script[A].push_back(R.chance(19, 20));
    }

    uint64_t Evals0 = predicateEvalCount();
    sync::RelayCountersSnapshot Relay0 =
        sync::RelayCounters::global().snapshot();
    double T0 = nowSeconds();
    std::vector<std::thread> Pool;
    for (int A = 0; A != Actors; ++A)
      Pool.emplace_back([&, A] {
        for (bool IsRead : Script[A]) {
          if (IsRead) {
            RW->startRead();
            RW->endRead();
          } else {
            RW->startWrite();
            RW->endWrite();
          }
        }
      });
    for (std::thread &T : Pool)
      T.join();
    double Seconds = nowSeconds() - T0;
    uint64_t EvalsDelta = predicateEvalCount() - Evals0;
    // Destroy the monitor first: its manager flushes the final partial
    // batch of relay counters on destruction.
    RW.reset();
    sync::RelayCountersSnapshot Relay =
        sync::RelayCounters::global().snapshot() - Relay0;

    if (BestSeconds < 0 || Seconds < BestSeconds) {
      BestSeconds = Seconds;
      C.NsPerOp = Seconds * 1e9 / static_cast<double>(Ops);
      C.EvalsPerOp =
          static_cast<double>(EvalsDelta) / static_cast<double>(Ops);
      C.RelayCalls = Relay.RelayCalls;
      C.DirtySkips = Relay.DirtySkips;
      C.FilteredExprs = Relay.FilteredExprs;
      C.StampShortCircuits = Relay.StampShortCircuits;
      C.SkipRate = Relay.RelayCalls == 0
                       ? 0.0
                       : static_cast<double>(Relay.DirtySkips) /
                             static_cast<double>(Relay.RelayCalls);
    }
  }
  return C;
}

void writeJson(const std::vector<Cell> &Cells, const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "relay_dirtyset: cannot open %s\n", Path.c_str());
    std::exit(1);
  }
  OS << "{\n  \"bench\": \"relay_dirtyset\",\n  \"schema\": 1,\n"
     << "  \"runs\": [\n";
  for (size_t I = 0; I != Cells.size(); ++I) {
    const Cell &C = Cells[I];
    OS << "    {\"scenario\": \"" << C.Scenario << "\", \"mechanism\": \""
       << mechanismName(C.Mech) << "\", \"backend\": \""
       << sync::backendName(C.Backend) << "\", \"relay_filter\": \""
       << relayFilterName(C.Filter) << "\", \"ops\": " << C.Ops
       << ", \"ns_per_op\": " << C.NsPerOp
       << ", \"predicate_evals_per_op\": " << C.EvalsPerOp;
    if (C.HasSharedEvals)
      OS << ", \"shared_expr_evals_per_op\": " << C.SharedEvalsPerOp;
    OS << ", \"relay_skip_rate\": " << C.SkipRate
       << ", \"relay_calls\": " << C.RelayCalls
       << ", \"dirty_skips\": " << C.DirtySkips
       << ", \"filtered_exprs\": " << C.FilteredExprs
       << ", \"stamp_short_circuits\": " << C.StampShortCircuits << "}"
       << (I + 1 == Cells.size() ? "\n" : ",\n");
  }
  OS << "  ]\n}\n";
  std::printf("# wrote %s (%zu cells)\n", Path.c_str(), Cells.size());
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = "BENCH_relay.json";
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--json=", 0) == 0) {
      JsonPath = Arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json=PATH]\n"
                   "env: AUTOSYNCH_BENCH_REPS, AUTOSYNCH_BENCH_SCALE\n",
                   Argv[0]);
      return 2;
    }
  }

  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Dirty-set relay signaling",
         "exit-path cost when no waiter's predicate could have changed",
         Opts);

  const int64_t Ops = Opts.scaled(200000);
  const int64_t RwOps = (Opts.scaled(40000) / 4) * 4;

  std::vector<Cell> Cells;
  Table T({"scenario", "mechanism", "backend", "filter", "ns/op",
           "evals/op", "skip-rate"});
  auto Record = [&](Cell C) {
    char Buf[32];
    auto Fmt = [&Buf](double V) {
      std::snprintf(Buf, sizeof(Buf), "%.4f", V);
      return std::string(Buf);
    };
    T.addRow({C.Scenario, mechanismName(C.Mech),
              sync::backendName(C.Backend), relayFilterName(C.Filter),
              std::to_string(static_cast<int64_t>(C.NsPerOp)),
              Fmt(C.EvalsPerOp), Fmt(C.SkipRate)});
    Cells.push_back(std::move(C));
  };

  for (sync::Backend B : {sync::Backend::Std, sync::Backend::Futex}) {
    for (Mechanism Mech : {Mechanism::AutoSynch, Mechanism::AutoSynchT}) {
      for (RelayFilter F : {RelayFilter::DirtySet, RelayFilter::Always}) {
        Record(runParked(/*ReadOnly=*/true, Mech, B, F, Ops, Opts.Reps));
        Record(runParked(/*ReadOnly=*/false, Mech, B, F, Ops, Opts.Reps));
        Record(runReadersWriters(Mech, B, F, RwOps, Opts.Reps));
      }
    }
  }

  // Cross-cell acceptance: on the read-heavy scenarios the dirty filter
  // must beat the always filter on evaluations per op (the always-filter
  // linear scan pays K evals per exit; the dirty rows assert exact zero
  // above, so this can only fail if the bench itself regresses).
  for (const Cell &Dirty : Cells) {
    if (Dirty.Filter != RelayFilter::DirtySet ||
        Dirty.Scenario == "readers-writers" ||
        Dirty.Mech != Mechanism::AutoSynchT)
      continue;
    for (const Cell &Always : Cells) {
      if (Always.Filter == RelayFilter::Always &&
          Always.Scenario == Dirty.Scenario &&
          Always.Mech == Dirty.Mech && Always.Backend == Dirty.Backend)
        AUTOSYNCH_CHECK(Dirty.EvalsPerOp < Always.EvalsPerOp,
                        "dirty-set filter must reduce evaluations per op "
                        "on read-heavy scenarios");
    }
  }

  T.print();
  writeJson(Cells, JsonPath);
  return 0;
}

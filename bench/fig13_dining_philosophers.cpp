//===- bench/fig13_dining_philosophers.cpp - Paper Fig. 13 -------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Fig. 13: dining philosophers. Paper expectation: explicit does not win by
// much — each philosopher only contends with two neighbours regardless of
// N, so the automatic mechanisms' relay work stays local.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Fig. 13 - dining philosophers (runtime seconds)",
         "N philosophers, chopstick-pair predicates", Opts);

  const int64_t TotalMeals = Opts.scaled(40000);
  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::AutoSynchT,
                             Mechanism::AutoSynch};

  Table T({"philosophers", "explicit", "AutoSynch-T", "AutoSynch"});
  for (int N : Opts.ThreadCounts) {
    if (N < 2)
      continue;
    std::vector<std::string> Row = {std::to_string(N)};
    for (Mechanism M : Mechs) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto D = makeDiningPhilosophers(M, N);
        return runDiningPhilosophers(*D, N, TotalMeals);
      });
      Row.push_back(Table::fmtSeconds(R.Seconds));
    }
    T.addRow(std::move(Row));
  }
  T.print();
  return 0;
}

//===- bench/FigureBench.h - Shared figure-bench scaffolding ---*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark executables: repetition with
/// the paper's drop-best-and-worst averaging, and mechanism row/column
/// plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_BENCH_FIGUREBENCH_H
#define AUTOSYNCH_BENCH_FIGUREBENCH_H

#include "bench_support/BenchOptions.h"
#include "bench_support/Drivers.h"
#include "bench_support/Table.h"
#include "problems/Mechanism.h"
#include "support/Stats.h"

#include <cstdio>
#include <functional>
#include <vector>

namespace autosynch::bench {

/// Runs \p Body Reps times and returns the drop-best-and-worst mean of the
/// measured seconds plus the metrics of the last repetition (counters are
/// workload-deterministic enough for reporting).
inline RunMetrics
repeatRun(int Reps, const std::function<RunMetrics()> &Body) {
  std::vector<double> Seconds;
  RunMetrics Last;
  for (int R = 0; R != Reps; ++R) {
    Last = Body();
    Seconds.push_back(Last.Seconds);
  }
  Last.Seconds = summarizeRuns(Seconds).Mean;
  return Last;
}

/// Prints the standard bench banner.
inline void banner(const char *Experiment, const char *Description,
                   const BenchOptions &Opts) {
  std::printf("# %s\n# %s\n# reps=%d scale=%.2f (override with "
              "AUTOSYNCH_BENCH_THREADS / _REPS / _SCALE)\n",
              Experiment, Description, Opts.Reps, Opts.OpsScale);
}

} // namespace autosynch::bench

#endif // AUTOSYNCH_BENCH_FIGUREBENCH_H

//===- bench/ext02_santa_claus.cpp - Santa Claus problem --------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Extension beyond the paper's figures: Trono's Santa Claus problem. Santa
// waits on a two-disjunct threshold predicate; arrivals wait on pass
// counters. The thread sweep scales the elf population (reindeer stay at
// one team) — contention concentrates on the elf pass counter, the
// signalAll-hostile shape.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

#include <algorithm>

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Ext. 2 - Santa Claus (runtime seconds)",
         "9-reindeer team, 3-elf groups, N elf threads", Opts);

  const int64_t TotalConsultations = Opts.scaled(4000);
  const int64_t TotalDeliveries = std::max<int64_t>(1, Opts.scaled(200));
  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::Baseline,
                             Mechanism::AutoSynchT, Mechanism::AutoSynch};

  Table T({"elves", "explicit", "baseline", "AutoSynch-T", "AutoSynch"});
  for (int N : Opts.ThreadCounts) {
    int ElfThreads = std::max(N, 3); // At least one full elf group.
    std::vector<std::string> Row = {std::to_string(ElfThreads)};
    for (Mechanism M : Mechs) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto S = makeSantaClaus(M);
        return runSantaClaus(*S, /*ReindeerThreads=*/9, ElfThreads,
                             TotalDeliveries, TotalConsultations);
      });
      Row.push_back(Table::fmtSeconds(R.Seconds));
    }
    T.addRow(std::move(Row));
  }
  T.print();
  return 0;
}

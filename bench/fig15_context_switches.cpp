//===- bench/fig15_context_switches.cpp - Paper Fig. 15 ----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Fig. 15: context switches for the Fig. 14 workload. The paper counts OS
// context switches (2.7M for explicit vs ~5440 for AutoSynch at 256
// consumers). This bench reports the OS counters when the kernel exposes
// them, and always reports the sync-layer context-switch *events*
// (awaits + wakeups — every block and every wakeup implies a scheduler
// transition), which sandboxed kernels cannot hide.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Fig. 15 - context switches, parameterized bounded buffer",
         "same workload as Fig. 14; sync events = awaits + wakeups", Opts);

  const int64_t TotalItems = Opts.scaled(1000000);
  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::AutoSynch};

  Table T({"consumers", "explicit-sync-events", "AutoSynch-sync-events",
           "explicit-os-ctx", "AutoSynch-os-ctx"});
  for (int N : Opts.ThreadCounts) {
    uint64_t SyncEvents[2] = {0, 0};
    uint64_t OsCtx[2] = {0, 0};
    int Idx = 0;
    for (Mechanism M : Mechs) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto B = makeParamBoundedBuffer(M, 256);
        return runParamBoundedBuffer(*B, N, TotalItems, /*MaxBatch=*/128,
                                     /*Seed=*/42);
      });
      SyncEvents[Idx] = R.Sync.contextSwitchEvents();
      OsCtx[Idx] = R.OsCtx.total();
      ++Idx;
    }
    T.addRow({std::to_string(N), Table::fmtCount(SyncEvents[0]),
              Table::fmtCount(SyncEvents[1]), Table::fmtCount(OsCtx[0]),
              Table::fmtCount(OsCtx[1])});
  }
  T.print();
  std::printf("# note: os-ctx columns read getrusage(2); sandboxed kernels "
              "report 0 there.\n");
  return 0;
}

//===- bench/ext01_cyclic_barrier.cpp - FIFO cyclic barrier -----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Extension beyond the paper's figures: N parties crossing a FIFO cyclic
// barrier. Every waiter blocks on a distinct globalized threshold
// predicate (`generation > g`), so the threshold heap holds one frontier
// tag per in-flight generation; explicit signaling gets to use signalAll
// (the whole group wakes), the broadcast baseline is identical in shape.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Ext. 1 - FIFO cyclic barrier (runtime seconds)",
         "N parties, whole-group generations", Opts);

  const int64_t TotalGenerations = Opts.scaled(4000);
  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::Baseline,
                             Mechanism::AutoSynchT, Mechanism::AutoSynch};

  Table T({"parties", "explicit", "baseline", "AutoSynch-T", "AutoSynch"});
  for (int N : Opts.ThreadCounts) {
    std::vector<std::string> Row = {std::to_string(N)};
    // Fixed total await budget: generations shrink as parties grow.
    int64_t Generations = std::max<int64_t>(1, TotalGenerations / N);
    for (Mechanism M : Mechs) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto B = makeCyclicBarrier(M, N);
        return runCyclicBarrier(*B, Generations);
      });
      Row.push_back(Table::fmtSeconds(R.Seconds));
    }
    T.addRow(std::move(Row));
  }
  T.print();
  return 0;
}

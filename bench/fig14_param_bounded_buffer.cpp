//===- bench/fig14_param_bounded_buffer.cpp - Paper Fig. 14 ------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Fig. 14: the parameterized bounded buffer — the paper's headline result.
// One producer, N consumers, random batches of 1..128 items. The explicit
// mechanism cannot know which waiter to wake and must signalAll, so its
// runtime grows with the consumer count; AutoSynch signals exactly one
// thread whose threshold predicate holds and stays flat (26.9x faster at
// 256 consumers in the paper).
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Fig. 14 - parameterized bounded buffer (runtime seconds)",
         "1 producer, N consumers, random 1..128 item batches, capacity 256",
         Opts);

  const int64_t TotalItems = Opts.scaled(1000000);
  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::AutoSynch};

  Table T({"consumers", "explicit", "AutoSynch", "speedup"});
  for (int N : Opts.ThreadCounts) {
    double Results[2] = {0, 0};
    int Idx = 0;
    for (Mechanism M : Mechs) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto B = makeParamBoundedBuffer(M, 256);
        return runParamBoundedBuffer(*B, N, TotalItems, /*MaxBatch=*/128,
                                     /*Seed=*/42);
      });
      Results[Idx++] = R.Seconds;
    }
    T.addRow({std::to_string(N), Table::fmtSeconds(Results[0]),
              Table::fmtSeconds(Results[1]),
              Table::fmtRatio(Results[0] / Results[1])});
  }
  T.print();
  return 0;
}

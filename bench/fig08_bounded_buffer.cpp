//===- bench/fig08_bounded_buffer.cpp - Paper Fig. 8 ------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Fig. 8: classic bounded-buffer runtime as the number of producer/consumer
// pairs grows, for all four signaling mechanisms. Expectation from the
// paper: baseline (signalAll broadcast) is much slower; explicit,
// AutoSynch-T, and AutoSynch stay close (the two shared predicates make
// signaling O(1) for every relay policy).
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Fig. 8 - bounded buffer (runtime seconds)",
         "N producers + N consumers, unit ops, capacity 64", Opts);

  const int64_t TotalOps = Opts.scaled(40000);
  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::Baseline,
                             Mechanism::AutoSynchT, Mechanism::AutoSynch};

  Table T({"pairs", "explicit", "baseline", "AutoSynch-T", "AutoSynch"});
  for (int N : Opts.ThreadCounts) {
    std::vector<std::string> Row = {std::to_string(N)};
    for (Mechanism M : Mechs) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto B = makeBoundedBuffer(M, 64);
        return runBoundedBuffer(*B, N, N, TotalOps);
      });
      Row.push_back(Table::fmtSeconds(R.Seconds));
    }
    T.addRow(std::move(Row));
  }
  T.print();
  return 0;
}

//===- bench/ablation_inactive_list.cpp - Inactive-cache ablation -------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Ablation of the paper's §5.2 inactive list ("Predicates may be reused.
// Instead of removing those predicates with no waiting thread, we move
// those predicates to an inactive list"). Withdrawer threads cycle through
// 8 distinct threshold predicates while one supplier drip-feeds units;
// with the cache disabled (limit 0) every re-wait registers afresh (new
// condition variable, DNF, tags); with the cache enabled parked
// registrations are revived.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

#include "core/Monitor.h"

#include <cstdio>
#include <thread>

using namespace autosynch;
using namespace autosynch::bench;

namespace {

/// Minimal batch-threshold monitor (the Fig. 1 pattern) with a
/// configurable inactive cache.
class Pool : public Monitor {
public:
  explicit Pool(size_t CacheLimit) : Monitor(makeConfig(CacheLimit)) {}

  void deposit(int64_t N) {
    Region R(*this);
    Level += N;
  }

  void withdraw(int64_t N) {
    Region R(*this);
    waitUntil(Level >= N);
    Level -= N;
  }

  using Monitor::conditionManager;

private:
  static MonitorConfig makeConfig(size_t CacheLimit) {
    MonitorConfig Cfg;
    Cfg.InactiveCacheLimit = CacheLimit;
    return Cfg;
  }

  Shared<int64_t> Level{*this, "level", 0};
};

double runChurn(Pool &P, int Withdrawers, int64_t OpsPerThread,
                uint64_t &Registrations, uint64_t &Reuses) {
  // Total demand, precomputed so the supplier exactly covers it.
  int64_t Total = 0;
  for (int T = 0; T != Withdrawers; ++T)
    for (int64_t I = 0; I != OpsPerThread; ++I)
      Total += (T + I) % 8 + 1;

  std::vector<std::thread> Threads;
  Stopwatch Watch;
  // Unit deposits keep supply the bottleneck, so withdrawers block (and
  // register predicates) on nearly every operation.
  Threads.emplace_back([&P, Total] {
    for (int64_t Left = Total; Left > 0; --Left)
      P.deposit(1);
  });
  for (int T = 0; T != Withdrawers; ++T) {
    Threads.emplace_back([&P, T, OpsPerThread] {
      for (int64_t I = 0; I != OpsPerThread; ++I)
        P.withdraw((T + I) % 8 + 1);
    });
  }
  for (auto &T : Threads)
    T.join();
  double Seconds = Watch.seconds();
  Registrations = P.conditionManager().stats().Registrations;
  Reuses = P.conditionManager().stats().CacheReuses;
  return Seconds;
}

} // namespace

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Ablation - inactive predicate cache (paper Section 5.2)",
         "threshold churn; cache disabled (limit 0) vs enabled (64)", Opts);

  const int64_t OpsPerThread = Opts.scaled(2000);

  Table T({"withdrawers", "nocache-seconds", "cache-seconds",
           "nocache-registrations", "cache-registrations",
           "cache-reuses"});
  for (int N : Opts.ThreadCounts) {
    double Secs[2];
    uint64_t Regs[2] = {0, 0}, Reuses[2] = {0, 0};
    int Idx = 0;
    for (size_t Limit : {size_t(0), size_t(64)}) {
      std::vector<double> Seconds;
      for (int Rep = 0; Rep != Opts.Reps; ++Rep) {
        Pool P(Limit);
        Seconds.push_back(
            runChurn(P, N, OpsPerThread, Regs[Idx], Reuses[Idx]));
      }
      Secs[Idx] = summarizeRuns(Seconds).Mean;
      ++Idx;
    }
    T.addRow({std::to_string(N), Table::fmtSeconds(Secs[0]),
              Table::fmtSeconds(Secs[1]), Table::fmtCount(Regs[0]),
              Table::fmtCount(Regs[1]), Table::fmtCount(Reuses[1])});
  }
  T.print();
  return 0;
}

//===- bench/fig10_sleeping_barber.cpp - Paper Fig. 10 ----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Fig. 10: the sleeping barber with a growing customer population. Paper
// expectation: all four mechanisms close — notably even the baseline,
// because its signalAll wakes customers that can in fact make progress.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Fig. 10 - sleeping barber (runtime seconds)",
         "1 barber, N customers, 8 waiting chairs", Opts);

  const int64_t TotalCuts = Opts.scaled(20000);
  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::Baseline,
                             Mechanism::AutoSynchT, Mechanism::AutoSynch};

  Table T({"customers", "explicit", "baseline", "AutoSynch-T",
           "AutoSynch"});
  for (int N : Opts.ThreadCounts) {
    std::vector<std::string> Row = {std::to_string(N)};
    for (Mechanism M : Mechs) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto S = makeSleepingBarber(M, 8);
        return runSleepingBarber(*S, N, TotalCuts);
      });
      Row.push_back(Table::fmtSeconds(R.Seconds));
    }
    T.addRow(std::move(Row));
  }
  T.print();
  return 0;
}

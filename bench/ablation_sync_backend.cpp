//===- bench/ablation_sync_backend.cpp - Sync backend ablation ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Ablation: substrate sensitivity. The paper's results sit on Java's
// ReentrantLock; ours sit on a pluggable Mutex/Condition layer. Runs the
// bounded buffer under AutoSynch with the std and raw-futex backends to
// show the relative mechanism ordering is not a substrate artifact.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Ablation - std vs futex sync backend",
         "bounded buffer, AutoSynch policy, both lock substrates", Opts);

  const int64_t TotalOps = Opts.scaled(40000);

  Table T({"pairs", "std-backend", "futex-backend"});
  for (int N : Opts.ThreadCounts) {
    std::vector<std::string> Row = {std::to_string(N)};
    for (sync::Backend B : {sync::Backend::Std, sync::Backend::Futex}) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto Buf = makeBoundedBuffer(Mechanism::AutoSynch, 64, B);
        return runBoundedBuffer(*Buf, N, N, TotalOps);
      });
      Row.push_back(Table::fmtSeconds(R.Seconds));
    }
    T.addRow(std::move(Row));
  }
  T.print();
  return 0;
}

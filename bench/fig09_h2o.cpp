//===- bench/fig09_h2o.cpp - Paper Fig. 9 ------------------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Fig. 9: the H2O problem with one oxygen thread and a growing number of
// hydrogen threads. Paper expectation: baseline far slower; the other three
// mechanisms comparable (shared threshold predicates only).
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Fig. 9 - H2O (runtime seconds)",
         "1 oxygen thread, N hydrogen threads", Opts);

  const int64_t Molecules = Opts.scaled(10000);
  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::Baseline,
                             Mechanism::AutoSynchT, Mechanism::AutoSynch};

  Table T({"h-atoms", "explicit", "baseline", "AutoSynch-T", "AutoSynch"});
  for (int N : Opts.ThreadCounts) {
    std::vector<std::string> Row = {std::to_string(N)};
    for (Mechanism M : Mechs) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto W = makeH2O(M);
        return runH2O(*W, N, Molecules);
      });
      Row.push_back(Table::fmtSeconds(R.Seconds));
    }
    T.addRow(std::move(Row));
  }
  T.print();
  return 0;
}

//===- bench/ablation_threshold_heap.cpp - Heap micro-ablation ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Micro-ablation of the Fig. 4 data structure: threshold-tag search via the
// min-heap versus an exhaustive linear scan, over growing predicate
// populations. The heap's win is the pruned case (shared value below every
// key: one comparison); the scan pays O(N) there.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "tag/ThresholdHeap.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace autosynch;

namespace {

struct Record {
  int64_t Key;
  bool Truth;
};

struct Fixture {
  ThresholdHeap<Record> Heap{ThresholdHeap<Record>::Direction::LowerBound};
  std::vector<std::unique_ptr<Record>> Records;

  explicit Fixture(int N) {
    Rng R(7);
    for (int I = 0; I != N; ++I) {
      // Keys 10..10+N-1: a value of 0 prunes everything; a huge value
      // makes every tag true.
      Records.push_back(
          std::make_unique<Record>(Record{10 + I, /*Truth=*/false}));
      Heap.add(Records.back()->Key, /*Strict=*/false, Records.back().get());
    }
  }
};

void heapSearchPruned(benchmark::State &State) {
  Fixture F(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    Record *Found =
        F.Heap.search(0, [](Record *R) { return R->Truth; });
    benchmark::DoNotOptimize(Found);
  }
}

void linearScanPruned(benchmark::State &State) {
  Fixture F(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    Record *Found = nullptr;
    for (auto &R : F.Records) {
      if (0 >= R->Key && R->Truth) { // Tag check then predicate check.
        Found = R.get();
        break;
      }
    }
    benchmark::DoNotOptimize(Found);
  }
}

void heapSearchAllTagsTrue(benchmark::State &State) {
  // Worst case for the heap (paper: "In the worst case, we need to check
  // all predicates"): every tag true, every predicate false, so the search
  // pops and restores the whole heap.
  Fixture F(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    Record *Found =
        F.Heap.search(1 << 30, [](Record *R) { return R->Truth; });
    benchmark::DoNotOptimize(Found);
  }
}

void linearScanAllTagsTrue(benchmark::State &State) {
  Fixture F(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    Record *Found = nullptr;
    for (auto &R : F.Records) {
      if ((1 << 30) >= R->Key && R->Truth) {
        Found = R.get();
        break;
      }
    }
    benchmark::DoNotOptimize(Found);
  }
}

} // namespace

BENCHMARK(heapSearchPruned)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(linearScanPruned)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(heapSearchAllTagsTrue)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(linearScanAllTagsTrue)->Arg(8)->Arg(64)->Arg(512);

BENCHMARK_MAIN();

//===- bench/ablation_eval.cpp - Evaluator micro-ablation ---------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Micro-ablation of predicate-evaluation strategies: the reference
// tree-walking evaluator versus the compiled bytecode VM, on predicates
// representative of the paper's problems. Relay signaling evaluates
// predicates on its hot path (§1's "predicate evaluation" cost), so this
// is the per-check cost the monitor pays.
//
//===----------------------------------------------------------------------===//

#include "expr/Bytecode.h"
#include "expr/Eval.h"
#include "parse/PredicateParser.h"

#include <benchmark/benchmark.h>

using namespace autosynch;

namespace {

struct Fixture {
  SymbolTable Syms;
  ExprArena Arena;
  MapEnv Env;
  ExprRef Pred;
  CompiledPredicate Code;

  explicit Fixture(const char *Src) {
    VarId Count = Syms.declare("count", TypeKind::Int, VarScope::Shared);
    VarId Serving = Syms.declare("serving", TypeKind::Int, VarScope::Shared);
    VarId Writers = Syms.declare("writers", TypeKind::Int, VarScope::Shared);
    VarId Readers = Syms.declare("readers", TypeKind::Int, VarScope::Shared);
    Env.bindInt(Count, 37).bindInt(Serving, 12).bindInt(Writers, 0);
    Env.bindInt(Readers, 3);
    PredicateParseResult R = parsePredicate(Src, Arena, Syms);
    AUTOSYNCH_CHECK(R.ok(), "fixture predicate must parse");
    Pred = R.Expr;
    Code = CompiledPredicate::compile(Pred);
  }
};

constexpr const char *SimpleThreshold = "count >= 48";
constexpr const char *RwConjunction =
    "serving == 12 && writers == 0 && readers == 0";
constexpr const char *WideDisjunction =
    "count >= 48 || serving == 3 || count + readers >= 100 || "
    "writers == 1 && count <= 10";

void treeWalk(benchmark::State &State, const char *Src) {
  Fixture F(Src);
  for (auto _ : State) {
    bool B = evalBool(F.Pred, F.Env);
    benchmark::DoNotOptimize(B);
  }
}

void bytecode(benchmark::State &State, const char *Src) {
  Fixture F(Src);
  for (auto _ : State) {
    bool B = F.Code.runBool(F.Env);
    benchmark::DoNotOptimize(B);
  }
}

} // namespace

BENCHMARK_CAPTURE(treeWalk, simple_threshold, SimpleThreshold);
BENCHMARK_CAPTURE(bytecode, simple_threshold, SimpleThreshold);
BENCHMARK_CAPTURE(treeWalk, rw_conjunction, RwConjunction);
BENCHMARK_CAPTURE(bytecode, rw_conjunction, RwConjunction);
BENCHMARK_CAPTURE(treeWalk, wide_disjunction, WideDisjunction);
BENCHMARK_CAPTURE(bytecode, wide_disjunction, WideDisjunction);

BENCHMARK_MAIN();

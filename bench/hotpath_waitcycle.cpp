//===- bench/hotpath_waitcycle.cpp - Steady-state waituntil microbench ------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The hot-path microbench behind BENCH_hotpath.json: what does one
// steady-state waitUntil cost, and what does it allocate?
//
// Scenarios:
//  * cycle — two threads hand a token through `turn == me` (the canonical
//    wait/signal cycle: every handoff is one directed signal issued after
//    the monitor unlock). Local values recur, so a plan-cache hit must be
//    completely allocation-free. Reported per mechanism x backend x
//    plan-cache.
//  * fastpath-sweep — one thread calls waitUntil("count >= n") with a
//    fresh n every call while the predicate is already true: the pure
//    check cost (bind-and-evaluate vs. parse-cache + tree walk).
//  * globalize-sweep — a strict producer/consumer handshake where every
//    blocking wait carries a never-repeating local value through the
//    paper's flagship complex predicate `count + n <= cap` (§4.1). Each
//    such wait is a genuinely new predicate, so registration cost is
//    inherent — but the planned path interns only the canonical atom
//    while the uncached pipeline also interns the globalized raw tree.
//
// Allocation metrics: `heap_allocs_per_op` counts every operator-new in
// the process during the measured section (interposed below);
// `arena_nodes_per_op` counts expression-arena internings. The properties
// the acceptance bar names are asserted, not just reported, so the CI
// smoke run enforces them: a plan hit interns nothing, and the uncached
// sweep interns at least twice what the planned sweep does.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"
#include "core/Monitor.h"
#include "plan/PlanCache.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <thread>
#include <vector>

using namespace autosynch;
using namespace autosynch::bench;

//===----------------------------------------------------------------------===//
// Heap-allocation interposition
//===----------------------------------------------------------------------===//

static std::atomic<uint64_t> GHeapAllocs{0};

static void *countedAlloc(size_t Size) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new(size_t Size) { return countedAlloc(Size); }
void *operator new[](size_t Size) { return countedAlloc(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }

namespace {

uint64_t heapAllocs() {
  return GHeapAllocs.load(std::memory_order_relaxed);
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

//===----------------------------------------------------------------------===//
// Monitors
//===----------------------------------------------------------------------===//

/// Token ring of two: the steady-state wait/signal cycle.
class PingPong : public Monitor {
public:
  explicit PingPong(MonitorConfig Cfg)
      : Monitor(Cfg), Me(local("me")) {}

  void step(int64_t Mine, int64_t Next) {
    Region R(*this);
    waitUntil("turn == me", locals().bindInt(Me, Mine));
    Turn = Next;
  }

  /// Spins until \p N threads are parked (warmup choreography).
  void awaitBlocked(int N) {
    while (true) {
      {
        Region R(*this);
        if (conditionManager().numWaiters() >= N)
          return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  using Monitor::arena;
  using Monitor::conditionManager;
  using Monitor::planCache;

private:
  Shared<int64_t> Turn{*this, "turn", 0};
  VarId Me;
};

/// Fast-path sweep: the predicate is always already true; n never repeats.
class Sweeper : public Monitor {
public:
  explicit Sweeper(MonitorConfig Cfg, int64_t Ceiling)
      : Monitor(Cfg), N(local("n")) {
    Region R(*this);
    Count = Ceiling;
  }

  void probe(int64_t Value) {
    Region R(*this);
    waitUntil("count >= n", locals().bindInt(N, Value));
  }

  using Monitor::arena;
  using Monitor::conditionManager;

private:
  Shared<int64_t> Count{*this, "count", 0};
  VarId N;
};

/// Globalize sweep: a strict two-thread handshake. fill() blocks on the
/// paper's complex predicate `count + n <= cap` with a never-repeating n,
/// then refills the buffer; drain() blocks until full, then empties it.
/// Every fill() wait registers a brand-new globalized predicate.
class Handshake : public Monitor {
public:
  explicit Handshake(MonitorConfig Cfg, int64_t Capacity)
      : Monitor(Cfg), N(local("n")), Cap(Capacity) {
    Region R(*this);
    this->Capacity = Capacity;
    Count = Capacity; // Full: the first fill() blocks.
  }

  void fill(int64_t Fresh) {
    Region R(*this);
    waitUntil("count + n <= cap", locals().bindInt(N, Fresh));
    Count = Cap; // Refill so the next fill() blocks again.
  }

  void drain() {
    Region R(*this);
    waitUntil(Count >= Cap);
    Count = 0;
  }

  using Monitor::arena;
  using Monitor::conditionManager;

private:
  Shared<int64_t> Count{*this, "count", 0};
  Shared<int64_t> Capacity{*this, "cap", 0};
  VarId N;
  int64_t Cap;
};

//===----------------------------------------------------------------------===//
// Cells
//===----------------------------------------------------------------------===//

struct Cell {
  std::string Scenario;
  Mechanism Mech = Mechanism::AutoSynch;
  sync::Backend Backend = sync::Backend::Std;
  bool PlanCache = true;
  int64_t Ops = 0;
  double NsPerOp = 0.0;
  double HeapAllocsPerOp = 0.0;
  double ArenaNodesPerOp = 0.0;
  uint64_t Signals = 0;
  uint64_t Waits = 0;
  uint64_t PlanBindHits = 0;
  uint64_t PlanColdBinds = 0;
  uint64_t Registrations = 0;
  uint64_t ArenaNodes = 0;
};

Cell runCycle(Mechanism Mech, sync::Backend Backend, bool Plans,
              int64_t Handoffs, int Reps) {
  Cell C;
  C.Scenario = "cycle";
  C.Mech = Mech;
  C.Backend = Backend;
  C.PlanCache = Plans;
  C.Ops = Handoffs;

  double BestSeconds = -1.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    MonitorConfig Cfg = configFor(Mech, Backend);
    Cfg.UsePlanCache = Plans;
    PingPong M(Cfg);

    // Warm the parse cache, the plan shape, and both signatures so the
    // measured section is pure steady state. Each side is forced to
    // block once: a wait that never blocks stops at the fast-path check
    // and would leave its signature cold (registration happens on the
    // first blocking wait, whichever section that falls in).
    auto Side = [&M](int64_t Mine, int64_t Iters) {
      for (int64_t I = 0; I != Iters; ++I)
        M.step(Mine, 1 - Mine);
    };
    {
      std::thread W1([&] { M.step(1, 0); }); // turn==1 is false: blocks.
      M.awaitBlocked(1);
      M.step(0, 1); // Hands off; W1 restores turn=0.
      W1.join();
      M.step(0, 1); // turn=1 so the other side blocks too.
      std::thread W0([&] { M.step(0, 1); });
      M.awaitBlocked(1);
      M.step(1, 0); // Hands off; W0 sets turn=1.
      W0.join();
      M.step(1, 0); // Restore turn=0 for the measured ping-pong.
    }

    size_t Nodes0 = 0;
    {
      Monitor::Region R(M);
      Nodes0 = M.arena().numNodes();
    }
    M.conditionManager().resetStats();
    uint64_t Heap0 = heapAllocs();
    double T0 = nowSeconds();
    {
      std::thread A([&] { Side(0, Handoffs / 2); });
      std::thread B([&] { Side(1, Handoffs / 2); });
      A.join();
      B.join();
    }
    double Seconds = nowSeconds() - T0;
    uint64_t HeapDelta = heapAllocs() - Heap0;
    size_t NodesDelta = 0;
    {
      Monitor::Region R(M);
      NodesDelta = M.arena().numNodes() - Nodes0;
    }

    if (BestSeconds < 0 || Seconds < BestSeconds) {
      BestSeconds = Seconds;
      C.NsPerOp = Seconds * 1e9 / static_cast<double>(Handoffs);
      C.HeapAllocsPerOp =
          static_cast<double>(HeapDelta) / static_cast<double>(Handoffs);
      C.ArenaNodesPerOp =
          static_cast<double>(NodesDelta) / static_cast<double>(Handoffs);
      const ManagerStats &S = M.conditionManager().stats();
      C.Signals = S.SignalsSent + S.BroadcastSignals;
      C.Waits = S.Waits;
      C.PlanBindHits = S.PlanBindHits;
      C.PlanColdBinds = S.PlanColdBinds;
    }

    if (Plans && isAutomatic(Mech) &&
        Cfg.Policy != SignalPolicy::Broadcast) {
      AUTOSYNCH_CHECK(M.conditionManager().stats().PlanBindHits > 0,
                      "steady-state cycle must hit the plan bind table");
      AUTOSYNCH_CHECK(NodesDelta == 0,
                      "plan-cache cycle hit path must not intern");
    }
  }
  return C;
}

Cell runFastpathSweep(bool Plans, int64_t Ops, int Reps) {
  Cell C;
  C.Scenario = "fastpath-sweep";
  C.Mech = Mechanism::AutoSynch;
  C.Backend = sync::Backend::Std;
  C.PlanCache = Plans;
  C.Ops = Ops;

  double BestSeconds = -1.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    MonitorConfig Cfg = configFor(Mechanism::AutoSynch, sync::Backend::Std);
    Cfg.UsePlanCache = Plans;
    Sweeper M(Cfg, /*Ceiling=*/Ops + 2);

    M.probe(1); // Warm the parse cache and the plan shape.
    uint64_t Heap0 = heapAllocs();
    double T0 = nowSeconds();
    for (int64_t I = 0; I != Ops; ++I)
      M.probe(I + 2); // A fresh bound value every call; always true.
    double Seconds = nowSeconds() - T0;
    uint64_t HeapDelta = heapAllocs() - Heap0;

    if (BestSeconds < 0 || Seconds < BestSeconds) {
      BestSeconds = Seconds;
      C.NsPerOp = Seconds * 1e9 / static_cast<double>(Ops);
      C.HeapAllocsPerOp =
          static_cast<double>(HeapDelta) / static_cast<double>(Ops);
      C.ArenaNodesPerOp = 0.0; // Neither path interns on the true-fast-path.
    }
  }
  return C;
}

Cell runGlobalizeSweep(bool Plans, int64_t Ops, int Reps) {
  Cell C;
  C.Scenario = "globalize-sweep";
  C.Mech = Mechanism::AutoSynch;
  C.Backend = sync::Backend::Std;
  C.PlanCache = Plans;
  C.Ops = Ops;

  double BestSeconds = -1.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    MonitorConfig Cfg = configFor(Mechanism::AutoSynch, sync::Backend::Std);
    Cfg.UsePlanCache = Plans;
    // Every fill() predicate is brand new; an eviction limit keeps the
    // table (and the run) at steady state, the way a real server would.
    Cfg.InactiveCacheLimit = 256;
    const int64_t Cap = 1'000'000'000;
    Handshake M(Cfg, Cap);

    // Warmup is meaningless here (no fill value ever repeats); measure
    // the whole run.
    size_t Nodes0 = 0;
    {
      Monitor::Region R(M);
      Nodes0 = M.arena().numNodes();
    }
    uint64_t Heap0 = heapAllocs();
    double T0 = nowSeconds();
    std::thread Producer([&] {
      // Fresh values < Cap so `count + n <= cap` is satisfiable exactly
      // when the buffer was drained.
      for (int64_t I = 0; I != Ops; ++I)
        M.fill(I + 1);
    });
    std::thread Consumer([&] {
      for (int64_t I = 0; I != Ops; ++I)
        M.drain();
    });
    Producer.join();
    Consumer.join();
    double Seconds = nowSeconds() - T0;
    uint64_t HeapDelta = heapAllocs() - Heap0;
    size_t NodesDelta = 0;
    {
      Monitor::Region R(M);
      NodesDelta = M.arena().numNodes() - Nodes0;
    }

    if (BestSeconds < 0 || Seconds < BestSeconds) {
      BestSeconds = Seconds;
      C.NsPerOp = Seconds * 1e9 / static_cast<double>(Ops);
      C.HeapAllocsPerOp =
          static_cast<double>(HeapDelta) / static_cast<double>(Ops);
      C.ArenaNodesPerOp =
          static_cast<double>(NodesDelta) / static_cast<double>(Ops);
      const ManagerStats &S = M.conditionManager().stats();
      C.Signals = S.SignalsSent + S.BroadcastSignals;
      C.Waits = S.Waits;
      C.PlanBindHits = S.PlanBindHits;
      C.PlanColdBinds = S.PlanColdBinds;
      C.Registrations = S.Registrations;
      C.ArenaNodes = NodesDelta;
    }
  }
  return C;
}

//===----------------------------------------------------------------------===//
// JSON output
//===----------------------------------------------------------------------===//

void writeJson(const std::vector<Cell> &Cells, const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "hotpath_waitcycle: cannot open %s\n",
                 Path.c_str());
    std::exit(1);
  }
  OS << "{\n  \"bench\": \"hotpath_waitcycle\",\n  \"schema\": 1,\n"
     << "  \"runs\": [\n";
  for (size_t I = 0; I != Cells.size(); ++I) {
    const Cell &C = Cells[I];
    OS << "    {\"scenario\": \"" << C.Scenario << "\", \"mechanism\": \""
       << mechanismName(C.Mech) << "\", \"backend\": \""
       << sync::backendName(C.Backend) << "\", \"plan_cache\": "
       << (C.PlanCache ? "true" : "false") << ", \"ops\": " << C.Ops
       << ", \"ns_per_op\": " << C.NsPerOp
       << ", \"heap_allocs_per_op\": " << C.HeapAllocsPerOp
       << ", \"arena_nodes_per_op\": " << C.ArenaNodesPerOp
       << ", \"signals\": " << C.Signals << ", \"waits\": " << C.Waits
       << ", \"plan_bind_hits\": " << C.PlanBindHits
       << ", \"plan_cold_binds\": " << C.PlanColdBinds << "}"
       << (I + 1 == Cells.size() ? "\n" : ",\n");
  }
  OS << "  ]\n}\n";
  std::printf("# wrote %s (%zu cells)\n", Path.c_str(), Cells.size());
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = "BENCH_hotpath.json";
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--json=", 0) == 0) {
      JsonPath = Arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json=PATH]\n"
                   "env: AUTOSYNCH_BENCH_REPS, AUTOSYNCH_BENCH_SCALE\n",
                   Argv[0]);
      return 2;
    }
  }

  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Hot path - steady-state waituntil cycle",
         "token handoff ns/op and allocations/op, plan cache on vs off",
         Opts);

  const int64_t Handoffs = Opts.scaled(100000) & ~int64_t(1);
  const int64_t SweepOps = Opts.scaled(50000);

  std::vector<Cell> Cells;
  Table T({"scenario", "mechanism", "backend", "plan", "ns/op",
           "heap-allocs/op", "arena-nodes/op"});
  auto Record = [&](Cell C) {
    T.addRow({C.Scenario, mechanismName(C.Mech),
              sync::backendName(C.Backend), C.PlanCache ? "on" : "off",
              std::to_string(static_cast<int64_t>(C.NsPerOp)),
              std::to_string(C.HeapAllocsPerOp),
              std::to_string(C.ArenaNodesPerOp)});
    Cells.push_back(std::move(C));
  };

  for (sync::Backend B : {sync::Backend::Std, sync::Backend::Futex}) {
    for (Mechanism Mech :
         {Mechanism::AutoSynch, Mechanism::AutoSynchT, Mechanism::Baseline}) {
      Record(runCycle(Mech, B, /*Plans=*/true, Handoffs, Opts.Reps));
      if (Mech != Mechanism::Baseline) // Broadcast ignores the plan cache.
        Record(runCycle(Mech, B, /*Plans=*/false, Handoffs, Opts.Reps));
    }
  }
  Record(runFastpathSweep(/*Plans=*/true, SweepOps, Opts.Reps));
  Record(runFastpathSweep(/*Plans=*/false, SweepOps, Opts.Reps));

  Cell SweepOn = runGlobalizeSweep(/*Plans=*/true, SweepOps / 4, Opts.Reps);
  Cell SweepOff =
      runGlobalizeSweep(/*Plans=*/false, SweepOps / 4, Opts.Reps);
  // The acceptance bar: >= 2x fewer arena internings per registering
  // waituntil on the planned path, even when every bound value is fresh.
  // Normalized per registration — how many waits block (vs. hit the
  // already-true fast path, which interns nothing on either pipeline) is
  // scheduling-dependent and differs between the two runs.
  if (SweepOn.Registrations >= 8 && SweepOff.Registrations >= 8) {
    double PerRegOn = static_cast<double>(SweepOn.ArenaNodes) /
                      static_cast<double>(SweepOn.Registrations);
    double PerRegOff = static_cast<double>(SweepOff.ArenaNodes) /
                       static_cast<double>(SweepOff.Registrations);
    AUTOSYNCH_CHECK(PerRegOff >= 2.0 * PerRegOn,
                    "planned globalize-sweep must intern at most half of "
                    "what the uncached pipeline interns per registration");
  }
  Record(std::move(SweepOn));
  Record(std::move(SweepOff));

  T.print();
  writeJson(Cells, JsonPath);
  return 0;
}

//===- bench/timedwait_wheel.cpp - Deadline-runtime microbench -------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The deadline-runtime microbench behind BENCH_timedwait.json:
//
//  * wheel-ops — raw TimerWheel insert+cancel cost over a deadline mix
//    spanning every level (and the beyond-horizon clamp). Asserted to
//    stay within a generous sanity bound; the headline number is
//    reported (expected: tens of ns/op).
//  * fastpath — already-true waitUntilFor vs. waitUntil on a live
//    monitor: the timed entry points must not put a clock read or wheel
//    traffic on the no-block fast path.
//  * cycle — a blocking producer/consumer ping-pong (capacity-1 bounded
//    buffer) with untimed put/take vs. putFor/takeFor under a generous
//    deadline, per relay mechanism x backend: the timed hot path's
//    target is <= 10% overhead (wheel insert+cancel + the bounded block
//    ride along every park).
//  * expiry-accuracy — waitUntilFor on never-true predicates: how late
//    after the requested deadline does the false return arrive
//    (p50/p95/max lateness; bounded by condvar timed-wait precision
//    since the waiter's own block is the fallback tick).
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"
#include "core/Monitor.h"
#include "problems/BoundedBuffer.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "time/TimerWheel.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace autosynch;
using namespace autosynch::bench;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Cell {
  std::string Scenario;
  std::string Mech;    // "-" where not applicable.
  std::string Backend; // "-" where not applicable.
  int64_t Ops = 0;
  double NsPerOp = 0.0;
  /// cycle/fastpath: untimed ns/op and timed/untimed ratio.
  double UntimedNsPerOp = 0.0;
  double Overhead = 0.0;
  /// expiry-accuracy: lateness beyond the requested deadline.
  uint64_t LatenessP50 = 0, LatenessP95 = 0, LatenessMax = 0;
};

/// Raw wheel insert+cancel throughput over a level-spanning deadline mix.
Cell runWheelOps(int64_t Pairs, int Reps) {
  Cell C;
  C.Scenario = "wheel-ops";
  C.Mech = C.Backend = "-";
  C.Ops = 2 * Pairs; // One insert + one cancel per pair.

  std::vector<time::TimerNode> Nodes(1024);
  double Best = -1.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    time::TimerWheel Wheel;
    Rng R(0x77AEE1 + static_cast<uint64_t>(Rep));
    uint64_t Base = time::nowNs();
    // Pre-compute the deadline mix so the measured loop is wheel-only:
    // near (level 0), mid, far, and beyond-horizon deadlines.
    std::vector<uint64_t> Deadlines(Nodes.size());
    for (size_t I = 0; I != Deadlines.size(); ++I) {
      switch (R.range(0, 3)) {
      case 0:
        Deadlines[I] = Base + R.range(0, 1 << 22);
        break;
      case 1:
        Deadlines[I] = Base + R.range(0, 1 << 28);
        break;
      case 2:
        Deadlines[I] = Base + R.range(0, 1ll << 34);
        break;
      default:
        Deadlines[I] = Base + (1ull << 45); // Beyond the horizon.
      }
    }

    double T0 = nowSeconds();
    for (int64_t P = 0; P != Pairs; ++P) {
      time::TimerNode &N = Nodes[P % Nodes.size()];
      N.DeadlineNs = Deadlines[P % Deadlines.size()];
      Wheel.insert(N);
      Wheel.cancel(N);
    }
    double Seconds = nowSeconds() - T0;
    if (Best < 0 || Seconds < Best) {
      Best = Seconds;
      C.NsPerOp = Seconds * 1e9 / static_cast<double>(C.Ops);
    }
  }
  // Sanity bound, deliberately loose for sanitized/loaded CI machines;
  // the acceptance target (<= 200 ns/op) is read off the JSON.
  AUTOSYNCH_CHECK(C.NsPerOp < 5000.0,
                  "timer wheel insert+cancel is pathologically slow");
  return C;
}

/// Already-true timed vs. untimed waits: the no-block fast path.
class FastpathCell : public Monitor {
public:
  FastpathCell() {
    synchronized([this] { Ready = 1; });
  }

  void untimed() {
    Region R(*this);
    waitUntil(Ready >= lit(1));
  }

  bool timed() {
    Region R(*this);
    return waitUntilFor(Ready >= lit(1), std::chrono::seconds(5));
  }

private:
  Shared<int64_t> Ready{*this, "ready", 0};
};

Cell runFastpath(int64_t Ops, int Reps) {
  Cell C;
  C.Scenario = "fastpath";
  C.Mech = "AutoSynch";
  C.Backend = "std";
  C.Ops = Ops;

  double BestTimed = -1.0, BestUntimed = -1.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    FastpathCell M;
    double T0 = nowSeconds();
    for (int64_t I = 0; I != Ops; ++I)
      M.untimed();
    double Untimed = nowSeconds() - T0;
    T0 = nowSeconds();
    for (int64_t I = 0; I != Ops; ++I)
      AUTOSYNCH_CHECK(M.timed(), "already-true timed wait failed");
    double Timed = nowSeconds() - T0;
    if (BestUntimed < 0 || Untimed < BestUntimed)
      BestUntimed = Untimed;
    if (BestTimed < 0 || Timed < BestTimed)
      BestTimed = Timed;
  }
  C.UntimedNsPerOp = BestUntimed * 1e9 / static_cast<double>(Ops);
  C.NsPerOp = BestTimed * 1e9 / static_cast<double>(Ops);
  C.Overhead = BestUntimed > 0 ? BestTimed / BestUntimed : 0.0;
  return C;
}

/// Blocking ping-pong: producer/consumer over a capacity-1 buffer.
Cell runCycle(Mechanism Mech, sync::Backend Backend, int64_t Ops,
              int Reps) {
  Cell C;
  C.Scenario = "cycle";
  C.Mech = mechanismName(Mech);
  C.Backend = sync::backendName(Backend);
  C.Ops = Ops;

  constexpr uint64_t Generous = 10ull * 1000 * 1000 * 1000; // 10 s.
  {
    // Warm-up: the first far-deadline wait in the process spawns the
    // fallback-ticker thread; keep that one-time cost out of the
    // measured loop.
    auto B = makeBoundedBuffer(Mech, 1, Backend);
    int64_t Out;
    AUTOSYNCH_CHECK(B->putFor(0, Generous) && B->takeFor(Out, Generous),
                    "warm-up op expired");
  }
  auto RunOnce = [&](bool Timed) {
    auto B = makeBoundedBuffer(Mech, 1, Backend);
    double T0 = nowSeconds();
    std::thread Producer([&] {
      for (int64_t I = 0; I != Ops; ++I) {
        if (Timed)
          AUTOSYNCH_CHECK(B->putFor(I, Generous), "cycle put expired");
        else
          B->put(I);
      }
    });
    int64_t Out;
    for (int64_t I = 0; I != Ops; ++I) {
      if (Timed)
        AUTOSYNCH_CHECK(B->takeFor(Out, Generous), "cycle take expired");
      else
        Out = B->take();
    }
    Producer.join();
    return nowSeconds() - T0;
  };

  double BestTimed = -1.0, BestUntimed = -1.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    double Untimed = RunOnce(false);
    double Timed = RunOnce(true);
    if (BestUntimed < 0 || Untimed < BestUntimed)
      BestUntimed = Untimed;
    if (BestTimed < 0 || Timed < BestTimed)
      BestTimed = Timed;
  }
  C.UntimedNsPerOp = BestUntimed * 1e9 / static_cast<double>(Ops);
  C.NsPerOp = BestTimed * 1e9 / static_cast<double>(Ops);
  C.Overhead = BestUntimed > 0 ? BestTimed / BestUntimed : 0.0;
  // Sanity bound (generous: loaded CI machines bounce several percent
  // per run; sub-5k-op smoke runs are pure noise and skip it). The
  // acceptance target — <= 10% for the automatic mechanisms, courtesy
  // of the far-deadline fallback tick replacing per-block kernel
  // timers — is read off the JSON.
  if (isAutomatic(Mech) && Ops >= 5000)
    AUTOSYNCH_CHECK(C.Overhead < 1.5,
                    "timed wait cycle overhead regressed pathologically");
  return C;
}

/// Never-true timed waits: lateness of the false return past the bound.
Cell runExpiryAccuracy(int Waits, int Reps) {
  Cell C;
  C.Scenario = "expiry-accuracy";
  C.Mech = "AutoSynch";
  C.Backend = "std";
  C.Ops = Waits;

  class Never : public Monitor {
  public:
    uint64_t waitLateness(uint64_t TimeoutNs) {
      Region R(*this);
      uint64_t T0 = time::nowNs();
      bool Ok = waitUntilFor(Flag >= lit(1),
                             std::chrono::nanoseconds(TimeoutNs));
      AUTOSYNCH_CHECK(!Ok, "never-true predicate came true");
      uint64_t Elapsed = time::nowNs() - T0;
      return Elapsed > TimeoutNs ? Elapsed - TimeoutNs : 0;
    }

  private:
    Shared<int64_t> Flag{*this, "flag", 0};
  };

  LatencyHistogram Lateness;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    Never M;
    Rng R(0xACC + static_cast<uint64_t>(Rep));
    for (int I = 0; I != Waits; ++I)
      Lateness.record(
          M.waitLateness(static_cast<uint64_t>(R.range(1, 10)) * 1000000));
  }
  C.LatenessP50 = Lateness.quantileNanos(0.50);
  C.LatenessP95 = Lateness.quantileNanos(0.95);
  C.LatenessMax = Lateness.maxNanos();
  return C;
}

void writeJson(const std::vector<Cell> &Cells, const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "timedwait_wheel: cannot open %s\n", Path.c_str());
    std::exit(1);
  }
  OS << "{\n  \"bench\": \"timedwait_wheel\",\n  \"schema\": 1,\n"
     << "  \"runs\": [\n";
  for (size_t I = 0; I != Cells.size(); ++I) {
    const Cell &C = Cells[I];
    OS << "    {\"scenario\": \"" << C.Scenario << "\", \"mechanism\": \""
       << C.Mech << "\", \"backend\": \"" << C.Backend
       << "\", \"ops\": " << C.Ops << ", \"ns_per_op\": " << C.NsPerOp;
    if (C.Scenario == "cycle" || C.Scenario == "fastpath")
      OS << ", \"untimed_ns_per_op\": " << C.UntimedNsPerOp
         << ", \"timed_over_untimed\": " << C.Overhead;
    if (C.Scenario == "expiry-accuracy")
      OS << ", \"lateness_p50_ns\": " << C.LatenessP50
         << ", \"lateness_p95_ns\": " << C.LatenessP95
         << ", \"lateness_max_ns\": " << C.LatenessMax;
    OS << "}" << (I + 1 == Cells.size() ? "\n" : ",\n");
  }
  OS << "  ]\n}\n";
  std::printf("# wrote %s (%zu cells)\n", Path.c_str(), Cells.size());
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::fromEnv();
  std::string JsonPath = "BENCH_timedwait.json";
  for (int I = 1; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0) {
      JsonPath = Argv[I] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH]\n", Argv[0]);
      return 2;
    }
  }

  banner("timedwait_wheel",
         "deadline runtime: wheel ops, timed-vs-untimed waituntil, expiry "
         "accuracy",
         Opts);

  std::vector<Cell> Cells;
  Cells.push_back(runWheelOps(Opts.scaled(200000), Opts.Reps));
  Cells.push_back(runFastpath(Opts.scaled(200000), Opts.Reps));
  for (Mechanism M : {Mechanism::Explicit, Mechanism::AutoSynchT,
                      Mechanism::AutoSynch})
    for (sync::Backend B : {sync::Backend::Std, sync::Backend::Futex})
      Cells.push_back(runCycle(M, B, Opts.scaled(20000), Opts.Reps));
  Cells.push_back(
      runExpiryAccuracy(static_cast<int>(Opts.scaled(100)), Opts.Reps));

  bench::Table T({"scenario", "mech", "backend", "ops", "ns/op",
                  "untimed-ns/op", "timed/untimed", "late-p95-us"});
  char Buf[32];
  auto F = [&Buf](double V) {
    std::snprintf(Buf, sizeof(Buf), "%.2f", V);
    return std::string(Buf);
  };
  for (const Cell &C : Cells)
    T.addRow({C.Scenario, C.Mech, C.Backend, std::to_string(C.Ops),
              F(C.NsPerOp),
              C.UntimedNsPerOp > 0 ? F(C.UntimedNsPerOp) : "-",
              C.Overhead > 0 ? F(C.Overhead) : "-",
              C.LatenessP95 > 0
                  ? F(static_cast<double>(C.LatenessP95) / 1000.0)
                  : "-"});
  T.print();

  if (!JsonPath.empty())
    writeJson(Cells, JsonPath);
  return 0;
}

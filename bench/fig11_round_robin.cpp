//===- bench/fig11_round_robin.cpp - Paper Fig. 11 ---------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Fig. 11: the round-robin access pattern. Paper expectation: explicit
// signaling is flat (it signals exactly the next thread's condition);
// AutoSynch-T degrades sharply with the thread count (its relay scan
// evaluates O(N) predicates); AutoSynch stays within a small factor of
// explicit thanks to equivalence-tag hashing. The baseline is omitted as in
// the paper ("extremely inefficient in comparison").
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Fig. 11 - round-robin access pattern (runtime seconds)",
         "N threads take turns entering the monitor", Opts);

  const int64_t TotalOps = Opts.scaled(40000);
  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::AutoSynchT,
                             Mechanism::AutoSynch};

  Table T({"threads", "explicit", "AutoSynch-T", "AutoSynch"});
  for (int N : Opts.ThreadCounts) {
    std::vector<std::string> Row = {std::to_string(N)};
    for (Mechanism M : Mechs) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto RR = makeRoundRobin(M, N);
        return runRoundRobin(*RR, N, TotalOps);
      });
      Row.push_back(Table::fmtSeconds(R.Seconds));
    }
    T.addRow(std::move(Row));
  }
  T.print();
  return 0;
}

//===- bench/fig12_readers_writers.cpp - Paper Fig. 12 -----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Fig. 12: ticketed readers/writers with the paper's 1:5 writer:reader
// ratio, x-axis (writers/readers) pairs 2/10 .. 64/320. Expectation:
// explicit flat (it signals the exact next ticket holder); AutoSynch-T
// degrades with population; AutoSynch close to explicit via equivalence
// tags on `serving`.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  banner("Fig. 12 - readers/writers (runtime seconds)",
         "ticketed fair RW, writers:readers = 1:5", Opts);

  const int64_t TotalOps = Opts.scaled(20000);
  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::AutoSynchT,
                             Mechanism::AutoSynch};

  Table T({"writers/readers", "explicit", "AutoSynch-T", "AutoSynch"});
  for (int N : Opts.ThreadCounts) {
    // The paper steps pairs (2/10, 4/20, ...): writers = N, readers = 5N.
    int Writers = N;
    int Readers = 5 * N;
    std::vector<std::string> Row = {std::to_string(Writers) + "/" +
                                    std::to_string(Readers)};
    for (Mechanism M : Mechs) {
      RunMetrics R = repeatRun(Opts.Reps, [&] {
        auto RW = makeReadersWriters(M);
        return runReadersWriters(*RW, Writers, Readers, TotalOps);
      });
      Row.push_back(Table::fmtSeconds(R.Seconds));
    }
    T.addRow(std::move(Row));
  }
  T.print();
  return 0;
}

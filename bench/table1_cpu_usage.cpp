//===- bench/table1_cpu_usage.cpp - Paper Table 1 -----------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Table 1: per-phase CPU usage for the round-robin access pattern with 128
// threads. The paper profiles await / lock / relaySignal / tag-manager /
// others with YourKit. Here await and lock come from the globally timed
// sync substrate; relaySignal and tag management from the condition
// manager's phase timers. The paper's headline: predicate tagging cuts
// relaySignal time ~95% (2108ms -> 112ms) at a small tag-management cost,
// while await dominates everything for every mechanism.
//
//===----------------------------------------------------------------------===//

#include "FigureBench.h"

#include "core/ConditionManager.h"

#include <cstdlib>

using namespace autosynch;
using namespace autosynch::bench;

int main() {
  BenchOptions Opts = BenchOptions::fromEnv();
  int Threads = 128;
  if (const char *T = std::getenv("AUTOSYNCH_TABLE1_THREADS"))
    Threads = std::max(2, std::atoi(T));
  const int64_t TotalOps = Opts.scaled(40000);

  banner("Table 1 - CPU usage, round-robin access pattern",
         "await/lock timed in the sync layer; relaySignal/tagMgr in the "
         "condition manager",
         Opts);
  std::printf("# threads=%d (override with AUTOSYNCH_TABLE1_THREADS)\n",
              Threads);

  Table T({"mechanism", "await-ms", "lock-ms", "relaySignal-ms",
           "tagMgr-ms", "others-ms", "total-ms"});

  const Mechanism Mechs[] = {Mechanism::Explicit, Mechanism::AutoSynchT,
                             Mechanism::AutoSynch};
  for (Mechanism M : Mechs) {
    double AwaitMs = 0, LockMs = 0, RelayMs = 0, TagMs = 0, TotalMs = 0;
    bool HasPhases = isAutomatic(M);

    sync::Counters::global().enableTiming(true);
    for (int R = 0; R != Opts.Reps; ++R) {
      auto RR = makeRoundRobin(M, Threads, sync::Backend::Std,
                               /*EnablePhaseTimers=*/true);
      sync::CountersSnapshot Before = sync::Counters::global().snapshot();
      RunMetrics Metrics = runRoundRobin(*RR, Threads, TotalOps);
      sync::CountersSnapshot Delta =
          sync::Counters::global().snapshot() - Before;

      AwaitMs += static_cast<double>(Delta.AwaitNs) / 1e6;
      LockMs += static_cast<double>(Delta.LockNs) / 1e6;
      // Aggregate thread time, the closest analogue of the paper's summed
      // per-phase CPU profile.
      TotalMs += Metrics.Seconds * 1e3 * Threads;

      if (ConditionManager *Mgr = RR->manager()) {
        RelayMs += static_cast<double>(
                       Mgr->timers().totalNs(PhaseTimers::Relay)) /
                   1e6;
        TagMs += static_cast<double>(
                     Mgr->timers().totalNs(PhaseTimers::TagMgmt)) /
                 1e6;
      }
    }
    sync::Counters::global().enableTiming(false);

    double OthersMs =
        std::max(0.0, TotalMs - AwaitMs - LockMs - RelayMs - TagMs);
    T.addRow({mechanismName(M), Table::fmtSeconds(AwaitMs / 1e3),
              Table::fmtSeconds(LockMs / 1e3),
              HasPhases ? Table::fmtSeconds(RelayMs / 1e3) : "n/a",
              HasPhases ? Table::fmtSeconds(TagMs / 1e3) : "n/a",
              Table::fmtSeconds(OthersMs / 1e3),
              Table::fmtSeconds(TotalMs / 1e3)});
  }
  T.print();
  std::printf("# values are seconds of aggregate thread time across %d "
              "repetitions\n",
              Opts.Reps);
  return 0;
}

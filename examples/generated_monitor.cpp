//===- examples/generated_monitor.cpp - Using autosynchc output --------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the translator pipeline (the paper's Fig. 2): the monitor in
// examples/bounded_buffer.asynch was translated by
//
//   autosynchc examples/bounded_buffer.asynch -o generated/bounded_buffer.h
//
// and the generated class is used below like any hand-written monitor —
// including running it under the Baseline / AutoSynch-T / AutoSynch signal
// policies via the generated config parameter.
//
//===----------------------------------------------------------------------===//

#include "generated/bounded_buffer.h"

#include "core/ConditionManager.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

void run(SignalPolicy Policy) {
  MonitorConfig Cfg;
  Cfg.Policy = Policy;
  GeneratedBoundedBuffer Buffer(/*capacity=*/64, Cfg);

  std::vector<std::thread> Pool;
  for (int64_t Batch : {3, 48, 7}) {
    Pool.emplace_back([&Buffer, Batch] {
      for (int I = 0; I != 300; ++I)
        Buffer.put(Batch);
    });
  }
  int64_t Total = 300 * (3 + 48 + 7);
  // Take at most 16 at a time: the 48-item producer needs count <= 16, so
  // any smaller consumer stride could wedge between the two thresholds.
  Pool.emplace_back([&Buffer, Total] {
    for (int64_t Left = Total; Left > 0;)
      Left -= Buffer.take(Left < 16 ? Left : 16);
  });
  for (auto &T : Pool)
    T.join();

  const ManagerStats &S = Buffer.conditionManager().stats();
  std::printf("%-12s size=%lld waits=%llu directed-signals=%llu "
              "signalAll=%llu\n",
              signalPolicyName(Policy),
              static_cast<long long>(Buffer.size()),
              static_cast<unsigned long long>(S.Waits),
              static_cast<unsigned long long>(S.SignalsSent),
              static_cast<unsigned long long>(S.BroadcastSignals));
}

} // namespace

int main() {
  std::printf("generated monitor (examples/bounded_buffer.asynch) under "
              "all three automatic policies:\n");
  run(SignalPolicy::Broadcast);
  run(SignalPolicy::LinearScan);
  run(SignalPolicy::Tagged);
  return 0;
}

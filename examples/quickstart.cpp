//===- examples/quickstart.cpp - First steps with autosynch ------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The smallest useful automatic-signal monitor: a bounded buffer with no
// condition variables and no signal/signalAll anywhere — the runtime
// decides whom to wake (the paper's waituntil construct). Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Monitor.h"
#include "sync/Counters.h"

#include <cstdio>
#include <thread>
#include <vector>

namespace {

/// Compare with the paper's Fig. 1: the explicit-signal version needs a
/// lock, two condition variables, and correctly-placed signalAll calls.
/// Here conditional synchronization is one waitUntil per method.
class BoundedBuffer : public autosynch::Monitor {
public:
  explicit BoundedBuffer(int64_t Capacity) : Capacity(Capacity) {}

  void put(int64_t Items) {
    Region R(*this);
    waitUntil(Count + Items <= Capacity); // Blocks until there is space.
    Count += Items;
  }

  void take(int64_t Items) {
    Region R(*this);
    waitUntil(Count >= Items); // Blocks until enough items arrived.
    Count -= Items;
  }

  int64_t size() {
    Region R(*this);
    return Count.get();
  }

private:
  Shared<int64_t> Count{*this, "count", 0};
  const int64_t Capacity;
};

} // namespace

int main() {
  autosynch::sync::Counters::global().reset();

  BoundedBuffer Buffer(/*Capacity=*/64);

  // Producers deposit batches of different sizes; consumers demand
  // different amounts — every thread waits on its own threshold, and the
  // monitor signals exactly one thread whose predicate became true.
  std::vector<std::thread> Threads;
  for (int64_t Batch : {3, 5, 7}) {
    Threads.emplace_back([&Buffer, Batch] {
      for (int I = 0; I != 200; ++I)
        Buffer.put(Batch);
    });
  }
  for (int64_t Want : {10, 20}) {
    Threads.emplace_back([&Buffer, Want] {
      for (int I = 0; I != 150 / (Want / 10); ++I)
        Buffer.take(Want);
    });
  }
  for (auto &T : Threads)
    T.join();
  // Totals match: puts 200*(3+5+7) = 3000; takes 150*10 + 75*20 = 3000.

  std::printf("final size:      %lld (expected 0)\n",
              static_cast<long long>(Buffer.size()));

  autosynch::sync::CountersSnapshot S =
      autosynch::sync::Counters::global().snapshot();
  std::printf("threads blocked: %llu times\n",
              static_cast<unsigned long long>(S.Awaits));
  std::printf("signals sent:    %llu (each aimed at a true predicate)\n",
              static_cast<unsigned long long>(S.Signals));
  std::printf("signalAll calls: %llu (AutoSynch never broadcasts)\n",
              static_cast<unsigned long long>(S.SignalAlls));
  return 0;
}

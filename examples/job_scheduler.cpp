//===- examples/job_scheduler.cpp - Mixed predicate forms --------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// A print-server-style job scheduler showing every predicate front end the
// monitor offers:
//
//  * EDSL predicates over Shared<T> (threshold + boolean conjunction);
//  * parsed string predicates with per-call local bindings — the runtime
//    globalizes them (paper §4.1), which is exactly what autosynchc emits;
//  * pause/resume via a shared bool (equivalence-tagged atoms).
//
// Workers take batches of jobs but only while the scheduler is not paused;
// the supervisor pauses mid-run and the drain stalls until resume.
//
//===----------------------------------------------------------------------===//

#include "core/Monitor.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

namespace {

class JobScheduler : public autosynch::Monitor {
public:
  void submit(int64_t NumJobs) {
    Region R(*this);
    Jobs += NumJobs;
  }

  /// Takes exactly \p Batch jobs, waiting until they exist and the
  /// scheduler is running. Parsed-predicate front end with a local
  /// binding: the string form is what generated monitors use.
  void takeBatch(int64_t Batch) {
    Region R(*this);
    waitUntil("jobs >= batch && !paused",
              locals().bindInt(local("batch"), Batch));
    Jobs -= Batch;
    Done += Batch;
  }

  void pause() {
    Region R(*this);
    Paused = true;
  }

  void resume() {
    Region R(*this);
    Paused = false;
  }

  /// EDSL front end: wait until the backlog drains completely.
  void awaitDrained() {
    Region R(*this);
    waitUntil(Jobs == 0 && !Paused.expr());
  }

  int64_t done() {
    Region R(*this);
    return Done.get();
  }

private:
  Shared<int64_t> Jobs{*this, "jobs", 0};
  Shared<int64_t> Done{*this, "done", 0};
  Shared<bool> Paused{*this, "paused", false};
};

} // namespace

int main() {
  JobScheduler S;
  constexpr int Workers = 4;
  constexpr int64_t TotalJobs = 12000;

  std::vector<std::thread> Pool;
  for (int W = 0; W != Workers; ++W) {
    Pool.emplace_back([&S, W] {
      int64_t Batch = 2 + 3 * W; // 2, 5, 8, 11: distinct thresholds.
      int64_t Quota = TotalJobs / Workers;
      for (int64_t Taken = 0; Taken < Quota;) {
        int64_t Want = std::min(Batch, Quota - Taken);
        S.takeBatch(Want);
        Taken += Want;
      }
    });
  }

  std::thread Producer([&S] {
    for (int64_t Sent = 0; Sent < TotalJobs; Sent += 100) {
      S.submit(100);
      // Throttle so the pause below lands mid-run.
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  // Pause mid-run; workers with satisfied thresholds must still hold.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  S.pause();
  std::printf("paused with %lld jobs done\n",
              static_cast<long long>(S.done()));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int64_t DuringPause = S.done();
  S.resume();

  Producer.join();
  for (auto &T : Pool)
    T.join();
  S.awaitDrained(); // EDSL front end; already true by now.

  std::printf("done during pause: stayed at %lld (workers held)\n",
              static_cast<long long>(DuringPause));
  std::printf("total done:        %lld\n",
              static_cast<long long>(S.done()));
  return 0;
}

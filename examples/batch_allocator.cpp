//===- examples/batch_allocator.cpp - Selective wakeup in action -------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The paper's §3 motivating scenario, as a memory-block allocator: clients
// request batches of blocks of very different sizes, so "which waiter can
// proceed?" depends on how much just became free. Explicit signaling must
// broadcast (signalAll) and let every client re-check; the AutoSynch
// monitor's threshold tags find the one client whose request fits.
//
// This example runs the same workload against both and prints the wakeup
// economics (the quantity behind the paper's Figs. 14-15).
//
//===----------------------------------------------------------------------===//

#include "core/Monitor.h"
#include "support/Rng.h"
#include "sync/Counters.h"
#include "sync/Mutex.h"

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

namespace {

constexpr int64_t PoolBlocks = 256;
constexpr int Clients = 12;
constexpr int RequestsPerClient = 400;

/// What both allocators implement.
class AllocatorIface {
public:
  virtual ~AllocatorIface() = default;
  virtual void allocate(int64_t Blocks) = 0;
  virtual void release(int64_t Blocks) = 0;
};

/// Explicit-signal allocator: the releaser cannot know which waiter's
/// request now fits, so it must wake everyone (paper §3).
class ExplicitAllocator final : public AllocatorIface {
public:
  ExplicitAllocator() : SpaceFreed(Mutex.newCondition()) {}

  void allocate(int64_t Blocks) override {
    Mutex.lock();
    while (Free < Blocks)
      SpaceFreed->await();
    Free -= Blocks;
    Mutex.unlock();
  }

  void release(int64_t Blocks) override {
    Mutex.lock();
    Free += Blocks;
    SpaceFreed->signalAll(); // Whom to wake? No idea: broadcast.
    Mutex.unlock();
  }

private:
  autosynch::sync::Mutex Mutex;
  std::unique_ptr<autosynch::sync::Condition> SpaceFreed;
  int64_t Free = PoolBlocks;
};

/// Automatic-signal allocator: one waituntil; the relay scan consults the
/// threshold-tag heap and signals exactly one fitting request.
class AutoAllocator final : public AllocatorIface,
                            private autosynch::Monitor {
public:
  void allocate(int64_t Blocks) override {
    Region R(*this);
    waitUntil(Free >= Blocks);
    Free -= Blocks;
  }

  void release(int64_t Blocks) override {
    Region R(*this);
    Free += Blocks;
  }

private:
  Shared<int64_t> Free{*this, "free", PoolBlocks};
};

void runWorkload(AllocatorIface &A) {
  std::vector<std::thread> Pool;
  for (int C = 0; C != Clients; ++C) {
    Pool.emplace_back([&A, C] {
      autosynch::Rng R(1000 + C);
      for (int I = 0; I != RequestsPerClient; ++I) {
        // Mixed request sizes; hold the batch briefly so aggregate demand
        // (12 clients x avg 64 blocks) overcommits the 256-block pool and
        // waiters really queue up. One allocation per client at a time, so
        // no hold-and-wait deadlock is possible.
        int64_t Blocks = R.range(1, 128);
        A.allocate(Blocks);
        std::this_thread::yield();
        A.release(Blocks);
      }
    });
  }
  for (auto &T : Pool)
    T.join();
}

void report(const char *Name, AllocatorIface &A) {
  using autosynch::sync::Counters;
  using autosynch::sync::CountersSnapshot;
  CountersSnapshot Before = Counters::global().snapshot();
  runWorkload(A);
  CountersSnapshot Delta = Counters::global().snapshot() - Before;
  std::printf("%-9s  blocked %7llu times, woken %7llu times, "
              "signalAll %5llu, directed signals %5llu\n",
              Name, static_cast<unsigned long long>(Delta.Awaits),
              static_cast<unsigned long long>(Delta.Wakeups),
              static_cast<unsigned long long>(Delta.SignalAlls),
              static_cast<unsigned long long>(Delta.Signals));
}

} // namespace

int main() {
  std::printf("batch allocator, %d clients x %d mixed-size requests, "
              "%lld-block pool\n",
              Clients, RequestsPerClient,
              static_cast<long long>(PoolBlocks));
  ExplicitAllocator Explicit;
  report("explicit", Explicit);
  AutoAllocator Automatic;
  report("AutoSynch", Automatic);
  std::printf("\nAutoSynch wakes a thread only when its own threshold is "
              "satisfied;\nexplicit signaling broadcasts and lets every "
              "waiter re-check (paper Section 3).\n");
  return 0;
}

//===- tests/workload/ScenarioTest.cpp - Scenario graph + engine tests ------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Spec validation, deterministic token-flow simulation, and whole-engine
// runs of every built-in scenario across mechanisms: token conservation,
// histogram bookkeeping, and relay cleanliness (no signalAll outside the
// Broadcast policy). The engine runs are the first tests that exercise
// several automatic-signal monitors concurrently in one process.
//
//===----------------------------------------------------------------------===//

#include "../problems/ProblemTestUtil.h"
#include "workload/Engine.h"
#include "workload/Json.h"
#include "workload/Scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

using namespace autosynch;
using namespace autosynch::workload;

namespace {

TEST(ScenarioSpecTest, BuiltinsValidateAndAreFindable) {
  ASSERT_FALSE(builtinScenarios().empty());
  for (const ScenarioSpec &S : builtinScenarios()) {
    EXPECT_EQ(findScenario(S.Name), &S);
    EXPECT_EQ(S.withWorkers(3).validate(), "");
  }
  EXPECT_EQ(findScenario("no-such-scenario"), nullptr);
}

TEST(ScenarioSpecTest, ValidationRejectsMalformedGraphs) {
  ScenarioSpec S;
  EXPECT_NE(S.validate(), ""); // No stages.

  // No source.
  S.Stages = {{"q", StageKind::Queue, 1, 4, 90, 0, Arrival::Closed, 0.0,
               {}}};
  EXPECT_NE(S.validate(), "");

  // Source without downstream.
  S.Stages = {{"src", StageKind::Source, 1, 4, 90, 0, Arrival::Closed, 0.0,
               {}}};
  EXPECT_NE(S.validate(), "");

  // Backward edge.
  S.Stages = {{"src", StageKind::Source, 1, 4, 90, 0, Arrival::Closed, 0.0,
               {1}},
              {"q", StageKind::Queue, 1, 4, 90, 0, Arrival::Closed, 0.0,
               {1}}};
  EXPECT_NE(S.validate(), "");

  // Barrier parties exceeding workers could never fill a generation.
  S.Stages = {{"src", StageKind::Source, 1, 4, 90, 0, Arrival::Closed, 0.0,
               {1}},
              {"b", StageKind::Barrier, 2, 4, 90, 5, Arrival::Closed, 0.0,
               {}}};
  EXPECT_NE(S.validate(), "");

  // Unfilled Workers==0 placeholder.
  S.Stages = {{"src", StageKind::Source, 1, 4, 90, 0, Arrival::Closed, 0.0,
               {1}},
              {"q", StageKind::Queue, 0, 4, 90, 0, Arrival::Closed, 0.0,
               {}}};
  EXPECT_NE(S.validate(), "");
  EXPECT_EQ(S.withWorkers(2).validate(), "");
}

TEST(ScenarioSpecTest, TokenSimulationSplitsFanOutByResidue) {
  ScenarioSpec S;
  S.Stages = {{"src", StageKind::Source, 1, 4, 90, 0, Arrival::Closed, 0.0,
               {1}},
              {"router", StageKind::Queue, 1, 4, 90, 0, Arrival::Closed,
               0.0, {2, 3}},
              {"even", StageKind::Queue, 1, 4, 90, 0, Arrival::Closed, 0.0,
               {4}},
              {"odd", StageKind::Queue, 1, 4, 90, 0, Arrival::Closed, 0.0,
               {4}},
              {"join", StageKind::Queue, 1, 4, 90, 0, Arrival::Closed, 0.0,
               {}}};
  ASSERT_EQ(S.validate(), "");
  std::vector<int64_t> Counts = simulateTokenCounts(S, 101);
  EXPECT_EQ(Counts, (std::vector<int64_t>{101, 101, 51, 50, 101}));
}

TEST(ScenarioSpecTest, TwoSourcesEmitDistinctIdBlocks) {
  const ScenarioSpec *Fanin = findScenario("fanin");
  ASSERT_NE(Fanin, nullptr);
  std::vector<int64_t> Counts = simulateTokenCounts(*Fanin, 40);
  // Both sources emit 40; the merge queue and the sink see all 80.
  EXPECT_EQ(Counts[0], 40);
  EXPECT_EQ(Counts[1], 40);
  EXPECT_EQ(Counts[2], 80);
  EXPECT_EQ(Counts[3], 80);
}

class ScenarioEngineTest : public ::testing::TestWithParam<Mechanism> {};

INSTANTIATE_TEST_SUITE_P(Mechanisms, ScenarioEngineTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

TEST_P(ScenarioEngineTest, PipelineConservesTokens) {
  RunConfig Cfg;
  Cfg.Mech = GetParam();
  Cfg.TokensPerSource = 600;
  ScenarioReport R =
      runScenario(findScenario("pipeline")->withWorkers(3), Cfg);

  EXPECT_EQ(R.TotalTokens, 600);
  ASSERT_EQ(R.Stages.size(), 4u);
  for (const StageReport &S : R.Stages) {
    EXPECT_EQ(S.Tokens, 600) << S.Name;
    if (S.Kind != StageKind::Source) {
      // Every token's stage sojourn was recorded.
      EXPECT_EQ(S.Latency.count(), 600u) << S.Name;
      EXPECT_GT(S.Throughput, 0.0) << S.Name;
    }
  }
  // Every token reached the sink and got an end-to-end sample.
  EXPECT_EQ(R.EndToEnd.count(), 600u);
  EXPECT_LE(R.EndToEnd.quantileNanos(0.50),
            R.EndToEnd.quantileNanos(0.99));
  EXPECT_GT(R.WallSeconds, 0.0);
}

TEST_P(ScenarioEngineTest, EveryBuiltinScenarioDrains) {
  for (const ScenarioSpec &S : builtinScenarios()) {
    RunConfig Cfg;
    Cfg.Mech = GetParam();
    Cfg.TokensPerSource = 240;
    ScenarioReport R = runScenario(S.withWorkers(2), Cfg);
    std::vector<int64_t> Counts = simulateTokenCounts(S, 240);
    ASSERT_EQ(R.Stages.size(), Counts.size()) << S.Name;
    int64_t SinkTokens = 0;
    for (size_t I = 0; I != Counts.size(); ++I) {
      EXPECT_EQ(R.Stages[I].Tokens, Counts[I])
          << S.Name << "/" << R.Stages[I].Name;
      if (S.Stages[I].Downstream.empty() &&
          S.Stages[I].Kind != StageKind::Source)
        SinkTokens += Counts[I];
    }
    EXPECT_EQ(R.EndToEnd.count(), static_cast<uint64_t>(SinkTokens))
        << S.Name;
  }
}

TEST_P(ScenarioEngineTest, AutomaticPoliciesNeverBroadcast) {
  if (GetParam() == Mechanism::Baseline || GetParam() == Mechanism::Explicit)
    GTEST_SKIP() << "broadcast/explicit signaling is allowed here";
  RunConfig Cfg;
  Cfg.Mech = GetParam();
  Cfg.TokensPerSource = 300;
  ScenarioReport R =
      runScenario(findScenario("mixed")->withWorkers(3), Cfg);
  // Relay invariance across a whole multi-monitor scenario: the AutoSynch
  // policies must never fall back to signalAll.
  EXPECT_EQ(R.Sync.SignalAlls, 0u);
}

TEST(ScenarioEngineTest2, ReadWriteSplitIsSeedDeterministic) {
  // The seed-sensitive observable: the RW stage's read/write split is a
  // pure function of (seed, token id), so the same seed must reproduce it
  // exactly across runs (and scheduling), and varying the seed must be
  // able to change it — the property the differential oracle depends on.
  const ScenarioSpec Sized = findScenario("pipeline")->withWorkers(2);
  auto SplitFor = [&](uint64_t Seed) {
    RunConfig Cfg;
    Cfg.TokensPerSource = 400;
    Cfg.Seed = Seed;
    ScenarioReport R = runScenario(Sized, Cfg);
    const StageReport &RW = R.Stages[2];
    EXPECT_EQ(RW.Kind, StageKind::ReadersWriters);
    EXPECT_EQ(RW.Reads + RW.Writes, RW.Tokens);
    return std::pair<int64_t, int64_t>(RW.Reads, RW.Writes);
  };

  EXPECT_EQ(SplitFor(7), SplitFor(7)); // Same seed: identical split.

  // Different seeds: the split must actually move. One collision is
  // plausible (binomial), five identical splits across distinct seeds is
  // not — unless the engine ignores the seed.
  std::set<std::pair<int64_t, int64_t>> Splits;
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u})
    Splits.insert(SplitFor(Seed));
  EXPECT_GT(Splits.size(), 1u);
}

TEST(ScenarioEngineTest2, OpenLoopArrivalsDrainCompletely) {
  RunConfig Cfg;
  Cfg.TokensPerSource = 200;
  Cfg.OverrideArrival = true;
  Cfg.Process = Arrival::OpenPoisson;
  Cfg.RatePerSec = 200000.0;
  Cfg.Seed = 7;
  ScenarioReport R =
      runScenario(findScenario("pipeline")->withWorkers(2), Cfg);
  EXPECT_EQ(R.EndToEnd.count(), 200u);
}

TEST(ScenarioEngineTest2, FutexBackendRunsThePipeline) {
  RunConfig Cfg;
  Cfg.Backend = sync::Backend::Futex;
  Cfg.TokensPerSource = 300;
  ScenarioReport R =
      runScenario(findScenario("pipeline")->withWorkers(2), Cfg);
  EXPECT_EQ(R.EndToEnd.count(), 300u);
}

TEST(WorkloadJsonTest, WriterEscapesAndNests) {
  std::ostringstream OS;
  JsonWriter J(OS);
  J.beginObject()
      .member("s", "a\"b\\c\nd")
      .member("i", int64_t{-3})
      .member("u", uint64_t{5})
      .member("d", 1.5)
      .member("b", true);
  J.key("arr");
  J.beginArray().value(int64_t{1}).value("two").beginObject().endObject();
  J.endArray();
  J.endObject();
  EXPECT_EQ(OS.str(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,\"u\":5,"
                      "\"d\":1.5,\"b\":true,\"arr\":[1,\"two\",{}]}");
}

TEST(WorkloadJsonTest, ReportRoundTripsThroughWriter) {
  RunConfig Cfg;
  Cfg.TokensPerSource = 120;
  ScenarioReport R =
      runScenario(findScenario("pipeline")->withWorkers(2), Cfg);
  std::ostringstream OS;
  writeReportJson(R, OS);
  std::string S = OS.str();
  // Structural spot checks (no JSON parser in tree): balanced braces and
  // the documented members present.
  EXPECT_EQ(std::count(S.begin(), S.end(), '{'),
            std::count(S.begin(), S.end(), '}'));
  EXPECT_NE(S.find("\"scenario\":\"pipeline\""), std::string::npos);
  EXPECT_NE(S.find("\"end_to_end_ns\""), std::string::npos);
  EXPECT_NE(S.find("\"p99\""), std::string::npos);
  EXPECT_NE(S.find("\"stages\":["), std::string::npos);
  EXPECT_NE(S.find("\"throughput_tokens_per_sec\""), std::string::npos);
}

} // namespace

//===- tests/dnf/CanonicalAtomTest.cpp - Atom canonicalization tests --------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dnf/CanonicalAtom.h"
#include "expr/Printer.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class CanonicalAtomTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;

  ExprRef x() { return A.var(V.Syms.info(V.X)); }
  ExprRef y() { return A.var(V.Syms.info(V.Y)); }
  ExprRef a() { return A.var(V.Syms.info(V.A)); }
  ExprRef b() { return A.var(V.Syms.info(V.B)); }

  /// Canonicalizes and re-renders as an expression for easy assertions.
  std::string canonStr(ExprRef E) {
    AtomCanonResult R = canonicalizeAtom(E);
    switch (R.Kind) {
    case AtomCanonKind::True:
      return "true";
    case AtomCanonKind::False:
      return "false";
    case AtomCanonKind::Opaque:
      return "<opaque>";
    case AtomCanonKind::Atom:
      return printExpr(canonicalAtomToExpr(A, R.Atom), V.Syms);
    }
    return "<?>";
  }
};

TEST_F(CanonicalAtomTest, AlreadyCanonicalPassesThrough) {
  EXPECT_EQ(canonStr(A.binary(ExprKind::Ge, x(), A.intLit(3))), "x >= 3");
  EXPECT_EQ(canonStr(A.binary(ExprKind::Eq, x(), A.intLit(8))), "x == 8");
}

TEST_F(CanonicalAtomTest, SwappedSidesNormalize) {
  // 48 <= count and count >= 48 are the same atom.
  EXPECT_EQ(canonStr(A.binary(ExprKind::Le, A.intLit(48), x())),
            "x >= 48");
  EXPECT_EQ(canonStr(A.binary(ExprKind::Gt, A.intLit(5), x())), "x <= 4");
}

TEST_F(CanonicalAtomTest, StrictOpsBecomeInclusive) {
  // Integer-exact: x > 3 is x >= 4; x < 3 is x <= 2.
  EXPECT_EQ(canonStr(A.binary(ExprKind::Gt, x(), A.intLit(3))), "x >= 4");
  EXPECT_EQ(canonStr(A.binary(ExprKind::Lt, x(), A.intLit(3))), "x <= 2");
}

TEST_F(CanonicalAtomTest, ConstantsMoveRight) {
  // x + 5 <= 8 is x <= 3.
  ExprRef E = A.binary(ExprKind::Le,
                       A.binary(ExprKind::Add, x(), A.intLit(5)),
                       A.intLit(8));
  EXPECT_EQ(canonStr(E), "x <= 3");
}

TEST_F(CanonicalAtomTest, PaperRearrangementExample) {
  // §4.3: "(x - a = y + b) ... is equivalent to (x - y = a + b)". With
  // globalized locals a=3, b=4 this becomes x - y == 7.
  ExprRef E = A.binary(ExprKind::Eq,
                       A.binary(ExprKind::Sub, x(), A.intLit(3)),
                       A.binary(ExprKind::Add, y(), A.intLit(4)));
  EXPECT_EQ(canonStr(E), "x + -1 * y == 7");
}

TEST_F(CanonicalAtomTest, PaperThresholdExample) {
  // §4.3: x + b > 2y + a with a=11, b=2 becomes (x - 2y > 9), i.e.
  // x - 2y >= 10 in inclusive form.
  ExprRef E = A.binary(
      ExprKind::Gt, A.binary(ExprKind::Add, x(), A.intLit(2)),
      A.binary(ExprKind::Add, A.binary(ExprKind::Mul, A.intLit(2), y()),
               A.intLit(11)));
  EXPECT_EQ(canonStr(E), "x + -2 * y >= 10");
}

TEST_F(CanonicalAtomTest, LeadingCoefficientMadePositive) {
  // -x >= -3 becomes x <= 3.
  ExprRef E = A.binary(ExprKind::Ge, A.unary(ExprKind::Neg, x()),
                       A.intLit(-3));
  EXPECT_EQ(canonStr(E), "x <= 3");
}

TEST_F(CanonicalAtomTest, GcdReductionEquality) {
  // 2x == 6 is x == 3; 2x == 7 is unsatisfiable.
  ExprRef Even = A.binary(ExprKind::Eq,
                          A.binary(ExprKind::Mul, A.intLit(2), x()),
                          A.intLit(6));
  EXPECT_EQ(canonStr(Even), "x == 3");
  ExprRef Odd = A.binary(ExprKind::Eq,
                         A.binary(ExprKind::Mul, A.intLit(2), x()),
                         A.intLit(7));
  EXPECT_EQ(canonStr(Odd), "false");
}

TEST_F(CanonicalAtomTest, GcdReductionDisequality) {
  // 2x != 7 always holds over the integers.
  ExprRef E = A.binary(ExprKind::Ne,
                       A.binary(ExprKind::Mul, A.intLit(2), x()),
                       A.intLit(7));
  EXPECT_EQ(canonStr(E), "true");
}

TEST_F(CanonicalAtomTest, GcdReductionBoundsRoundExactly) {
  // 2x <= 7  ≡  x <= 3;  2x >= 7  ≡  x >= 4 (integer rounding).
  ExprRef Le7 = A.binary(ExprKind::Le,
                         A.binary(ExprKind::Mul, A.intLit(2), x()),
                         A.intLit(7));
  EXPECT_EQ(canonStr(Le7), "x <= 3");
  ExprRef Ge7 = A.binary(ExprKind::Ge,
                         A.binary(ExprKind::Mul, A.intLit(2), x()),
                         A.intLit(7));
  EXPECT_EQ(canonStr(Ge7), "x >= 4");
  // Negative bound: 2x <= -7  ≡  x <= -4.
  ExprRef LeNeg = A.binary(ExprKind::Le,
                           A.binary(ExprKind::Mul, A.intLit(2), x()),
                           A.intLit(-7));
  EXPECT_EQ(canonStr(LeNeg), "x <= -4");
}

TEST_F(CanonicalAtomTest, ScaledFormsCollapse) {
  // 2*count >= 96 and count >= 48 share one canonical atom.
  ExprRef Scaled = A.binary(ExprKind::Ge,
                            A.binary(ExprKind::Mul, A.intLit(2), x()),
                            A.intLit(96));
  ExprRef Plain = A.binary(ExprKind::Ge, x(), A.intLit(48));
  AtomCanonResult R1 = canonicalizeAtom(Scaled);
  AtomCanonResult R2 = canonicalizeAtom(Plain);
  ASSERT_EQ(R1.Kind, AtomCanonKind::Atom);
  ASSERT_EQ(R2.Kind, AtomCanonKind::Atom);
  EXPECT_EQ(canonicalAtomToExpr(A, R1.Atom),
            canonicalAtomToExpr(A, R2.Atom));
}

TEST_F(CanonicalAtomTest, ConstantComparisonsFold) {
  // x - x < 1 folds to true (0 < 1); x - x >= 1 to false.
  ExprRef E = A.binary(ExprKind::Lt, A.binary(ExprKind::Sub, x(), x()),
                       A.intLit(1));
  EXPECT_EQ(canonStr(E), "true");
  ExprRef F = A.binary(ExprKind::Ge, A.binary(ExprKind::Sub, x(), x()),
                       A.intLit(1));
  EXPECT_EQ(canonStr(F), "false");
}

TEST_F(CanonicalAtomTest, LocalVariablesCanonicalizeToo) {
  // Scope is irrelevant here (tagging checks it later): a < b is the atom
  // a - b <= -1.
  EXPECT_EQ(canonStr(A.binary(ExprKind::Lt, a(), b())),
            "a + -1 * b <= -1");
}

TEST_F(CanonicalAtomTest, NonLinearIsOpaque) {
  ExprRef E = A.binary(ExprKind::Ge, A.binary(ExprKind::Mul, x(), y()),
                       A.intLit(3));
  EXPECT_EQ(canonStr(E), "<opaque>");
  ExprRef D = A.binary(ExprKind::Ge, A.binary(ExprKind::Div, x(), A.intLit(2)),
                       A.intLit(3));
  EXPECT_EQ(canonStr(D), "<opaque>");
}

TEST_F(CanonicalAtomTest, BoolAtomsAreOpaque) {
  ExprRef Flag = A.var(V.Syms.info(V.Flag));
  EXPECT_EQ(canonStr(Flag), "<opaque>");
  ExprRef P = A.var(V.Syms.info(V.P));
  EXPECT_EQ(canonStr(A.binary(ExprKind::Eq, Flag, P)), "<opaque>");
}

TEST_F(CanonicalAtomTest, ExtremeBoundsFold) {
  // Nothing is > INT64_MAX: folds to false. The INT64_MIN mirror stays
  // opaque — canonicalization would have to negate INT64_MIN (overflow),
  // so it conservatively leaves the atom alone.
  ExprRef Gt = A.binary(ExprKind::Gt, x(), A.intLit(INT64_MAX));
  EXPECT_EQ(canonStr(Gt), "false");
  ExprRef Lt = A.binary(ExprKind::Lt, x(), A.intLit(INT64_MIN));
  EXPECT_EQ(canonStr(Lt), "<opaque>");
}

} // namespace

//===- tests/dnf/DnfTest.cpp - NNF/DNF conversion tests ---------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dnf/Dnf.h"
#include "expr/Printer.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class DnfTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;

  ExprRef x() { return A.var(V.Syms.info(V.X)); }
  ExprRef y() { return A.var(V.Syms.info(V.Y)); }
  ExprRef z() { return A.var(V.Syms.info(V.Z)); }
  ExprRef flag() { return A.var(V.Syms.info(V.Flag)); }

  ExprRef cmp(ExprKind K, ExprRef L, int64_t R) {
    return A.binary(K, L, A.intLit(R));
  }
};

TEST_F(DnfTest, NnfFlipsNegatedComparison) {
  // !(x < 3) becomes x >= 3.
  ExprRef E = A.unary(ExprKind::Not, cmp(ExprKind::Lt, x(), 3));
  EXPECT_EQ(toNnf(A, E), cmp(ExprKind::Ge, x(), 3));
}

TEST_F(DnfTest, NnfDeMorgan) {
  // !(a && b) becomes !a || !b (comparisons flipped, not wrapped).
  ExprRef E = A.unary(
      ExprKind::Not, A.binary(ExprKind::And, cmp(ExprKind::Lt, x(), 3),
                              cmp(ExprKind::Eq, y(), 0)));
  EXPECT_EQ(toNnf(A, E),
            A.binary(ExprKind::Or, cmp(ExprKind::Ge, x(), 3),
                     cmp(ExprKind::Ne, y(), 0)));
}

TEST_F(DnfTest, NnfDoubleNegation) {
  ExprRef E = A.unary(ExprKind::Not, A.unary(ExprKind::Not, flag()));
  EXPECT_EQ(toNnf(A, E), flag());
}

TEST_F(DnfTest, NnfKeepsNotOnBoolVars) {
  ExprRef E = A.unary(ExprKind::Not, flag());
  EXPECT_EQ(toNnf(A, E), E);
}

TEST_F(DnfTest, PaperExampleIsAlreadyDnf) {
  // (x = 1 && y = 6) || (z != 8) — the paper's §4.1 example.
  ExprRef E = A.binary(
      ExprKind::Or,
      A.binary(ExprKind::And, cmp(ExprKind::Eq, x(), 1),
               cmp(ExprKind::Eq, y(), 6)),
      cmp(ExprKind::Ne, z(), 8));
  Dnf D = toDnf(A, E);
  ASSERT_TRUE(D.Exact);
  ASSERT_EQ(D.Conjs.size(), 2u);
  EXPECT_EQ(D.Conjs[0].Atoms.size(), 2u);
  EXPECT_EQ(D.Conjs[1].Atoms.size(), 1u);
}

TEST_F(DnfTest, DistributesAndOverOr) {
  // a && (b || c) has two conjunctions {a,b}, {a,c}.
  ExprRef E = A.binary(
      ExprKind::And, cmp(ExprKind::Gt, x(), 0),
      A.binary(ExprKind::Or, cmp(ExprKind::Gt, y(), 0),
               cmp(ExprKind::Gt, z(), 0)));
  Dnf D = toDnf(A, E);
  ASSERT_EQ(D.Conjs.size(), 2u);
  EXPECT_EQ(D.Conjs[0].Atoms.size(), 2u);
  EXPECT_EQ(D.Conjs[1].Atoms.size(), 2u);
}

TEST_F(DnfTest, CrossProductOfDisjunctions) {
  // (a || b) && (c || d) has four conjunctions.
  ExprRef E = A.binary(
      ExprKind::And,
      A.binary(ExprKind::Or, cmp(ExprKind::Gt, x(), 0),
               cmp(ExprKind::Gt, x(), 1)),
      A.binary(ExprKind::Or, cmp(ExprKind::Gt, y(), 0),
               cmp(ExprKind::Gt, y(), 1)));
  Dnf D = toDnf(A, E);
  EXPECT_EQ(D.Conjs.size(), 4u);
}

TEST_F(DnfTest, DuplicateAtomsWithinConjunctionDrop) {
  ExprRef C = cmp(ExprKind::Gt, x(), 0);
  ExprRef E = A.binary(ExprKind::And, C,
                       A.binary(ExprKind::And, C, C));
  Dnf D = toDnf(A, E);
  ASSERT_EQ(D.Conjs.size(), 1u);
  EXPECT_EQ(D.Conjs[0].Atoms.size(), 1u);
}

TEST_F(DnfTest, PointerLevelContradictionDropsConjunction) {
  // flag && !flag contributes nothing.
  ExprRef E = A.binary(ExprKind::And, flag(),
                       A.unary(ExprKind::Not, flag()));
  Dnf D = toDnf(A, E);
  EXPECT_TRUE(D.isFalse());
}

TEST_F(DnfTest, TrueAndFalseLiterals) {
  EXPECT_TRUE(toDnf(A, A.boolLit(true)).isTrue());
  EXPECT_TRUE(toDnf(A, A.boolLit(false)).isFalse());
}

TEST_F(DnfTest, BlowupFallsBackToOpaqueAtom) {
  // Chain of (ai || bi) conjuncts: 2^n conjunctions; cap at 4.
  ExprRef E = nullptr;
  for (int I = 0; I != 6; ++I) {
    ExprRef Clause = A.binary(ExprKind::Or, cmp(ExprKind::Gt, x(), I),
                              cmp(ExprKind::Gt, y(), I));
    E = E ? A.binary(ExprKind::And, E, Clause) : Clause;
  }
  DnfLimits Limits;
  Limits.MaxConjunctions = 4;
  Dnf D = toDnf(A, E, Limits);
  EXPECT_FALSE(D.Exact);
  ASSERT_EQ(D.Conjs.size(), 1u);
  ASSERT_EQ(D.Conjs[0].Atoms.size(), 1u);
  EXPECT_EQ(D.Conjs[0].Atoms[0], toNnf(A, E)); // Whole predicate kept.
}

TEST_F(DnfTest, DnfToExprRoundTripStructure) {
  ExprRef E = A.binary(
      ExprKind::Or,
      A.binary(ExprKind::And, cmp(ExprKind::Eq, x(), 1),
               cmp(ExprKind::Eq, y(), 6)),
      cmp(ExprKind::Ne, z(), 8));
  Dnf D = toDnf(A, E);
  EXPECT_EQ(dnfToExpr(A, D), E); // Already in DNF: identical tree.
}

TEST_F(DnfTest, EmptyDnfIsFalseExpr) {
  Dnf D;
  EXPECT_EQ(dnfToExpr(A, D), A.boolLit(false));
}

TEST_F(DnfTest, TrueDnfIsTrueExpr) {
  Dnf D;
  D.Conjs.push_back(Conjunction{});
  EXPECT_EQ(dnfToExpr(A, D), A.boolLit(true));
}

} // namespace

//===- tests/dnf/CanonicalPredicateTest.cpp - Predicate canonicalization ----===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The predicate table's "syntax equivalence" (paper §5.2) rests on this:
// equivalent waituntil predicates must canonicalize to one interned node.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dnf/Dnf.h"
#include "expr/Printer.h"
#include "parse/PredicateParser.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class CanonicalPredicateTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;

  ExprRef parse(std::string_view Src) {
    PredicateParseResult R = parsePredicate(Src, A, V.Syms);
    EXPECT_TRUE(R.ok()) << Src << ": " << R.Error.toString();
    return R.Expr;
  }

  ExprRef canon(std::string_view Src) {
    return canonicalizePredicate(A, parse(Src)).Expr;
  }
};

TEST_F(CanonicalPredicateTest, SwappedComparisonSidesShareNode) {
  EXPECT_EQ(canon("x >= 48"), canon("48 <= x"));
}

TEST_F(CanonicalPredicateTest, ScaledAtomsShareNode) {
  EXPECT_EQ(canon("2 * x >= 96"), canon("x >= 48"));
}

TEST_F(CanonicalPredicateTest, StrictAndInclusiveShareNode) {
  EXPECT_EQ(canon("x > 47"), canon("x >= 48"));
  EXPECT_EQ(canon("x < 4"), canon("x <= 3"));
}

TEST_F(CanonicalPredicateTest, CommutedConjunctionsShareNode) {
  EXPECT_EQ(canon("x >= 1 && y >= 2"), canon("y >= 2 && x >= 1"));
}

TEST_F(CanonicalPredicateTest, CommutedDisjunctionsShareNode) {
  EXPECT_EQ(canon("x >= 1 || y >= 2"), canon("y >= 2 || x >= 1"));
}

TEST_F(CanonicalPredicateTest, NegationNormalizesIn) {
  EXPECT_EQ(canon("!(x < 48)"), canon("x >= 48"));
}

TEST_F(CanonicalPredicateTest, ArithmeticRearrangementsShareNode) {
  EXPECT_EQ(canon("x + 5 <= y"), canon("x - y <= -5"));
  EXPECT_EQ(canon("x - 3 == y + 4"), canon("x - y == 7"));
}

TEST_F(CanonicalPredicateTest, ContradictoryConjunctionDropped) {
  // (x <= 2 && x >= 5) || y == 1 keeps only the satisfiable disjunct.
  EXPECT_EQ(canon("x <= 2 && x >= 5 || y == 1"), canon("y == 1"));
}

TEST_F(CanonicalPredicateTest, EqNeContradictionDropped) {
  EXPECT_EQ(canon("x == 3 && x != 3 || y == 1"), canon("y == 1"));
}

TEST_F(CanonicalPredicateTest, PinchedRangeContradictionDropped) {
  // x >= 3 && x <= 3 && x != 3 is unsatisfiable.
  EXPECT_EQ(canon("(x >= 3 && x <= 3 && x != 3) || y == 1"),
            canon("y == 1"));
}

TEST_F(CanonicalPredicateTest, UnsatisfiableWholePredicateIsFalse) {
  CanonicalPredicate CP =
      canonicalizePredicate(A, parse("x < 3 && x > 5"));
  EXPECT_TRUE(CP.D.isFalse());
  EXPECT_EQ(CP.Expr, A.boolLit(false));
}

TEST_F(CanonicalPredicateTest, CrossDisjunctTautologyIsNotFolded) {
  // (x >= 3 || x < 3) covers all of Z, but coverage reasoning across
  // disjuncts is out of scope: the result is merely order-normalized.
  // (waitUntil still never blocks on it — the fast-path evaluation is
  // always true.)
  CanonicalPredicate CP = canonicalizePredicate(A, parse("x >= 3 || x < 3"));
  EXPECT_FALSE(CP.D.isTrue());
  EXPECT_EQ(CP.Expr, canon("x <= 2 || x >= 3"));
}

TEST_F(CanonicalPredicateTest, TrueAtomVanishesFromConjunction) {
  EXPECT_EQ(canon("x - x >= 0 && y == 1"), canon("y == 1"));
}

TEST_F(CanonicalPredicateTest, DuplicateConjunctionsMerge) {
  EXPECT_EQ(canon("x >= 1 || 1 <= x"), canon("x >= 1"));
}

TEST_F(CanonicalPredicateTest, SubsumedConjunctionDropped) {
  // (x >= 1) || (x >= 1 && y == 2): the second implies the first.
  EXPECT_EQ(canon("x >= 1 || (x >= 1 && y == 2)"), canon("x >= 1"));
}

TEST_F(CanonicalPredicateTest, BooleanAtomsSurvive) {
  EXPECT_EQ(canon("flag && x >= 1"), canon("x >= 1 && flag"));
  // Tautology detection is per-conjunction only; across disjuncts the
  // canonical form is merely order-normalized.
  EXPECT_EQ(canon("!flag || flag"), canon("flag || !flag"));
  // Within one conjunction, flag && !flag does vanish.
  EXPECT_EQ(canon("(flag && !flag) || x >= 1"), canon("x >= 1"));
}

TEST_F(CanonicalPredicateTest, CanonicalDnfAtomsAreSorted) {
  CanonicalPredicate CP =
      canonicalizePredicate(A, parse("y >= 2 && x >= 1"));
  ASSERT_EQ(CP.D.Conjs.size(), 1u);
  ASSERT_EQ(CP.D.Conjs[0].Atoms.size(), 2u);
  // Expression form is deterministic regardless of source order.
  EXPECT_EQ(printExpr(CP.Expr, V.Syms),
            printExpr(canonicalizePredicate(A, parse("x >= 1 && y >= 2"))
                          .Expr,
                      V.Syms));
}

} // namespace

//===- tests/dnf/PaperExamplesTest.cpp - Paper predicate goldens -------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Golden canonicalization + tagging results for every predicate the paper
// uses as an example (Fig. 7's condition-manager population, the §4.3
// rearrangements, and the Fig. 1 buffer predicates).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dnf/Dnf.h"
#include "expr/Printer.h"
#include "expr/Subst.h"
#include "parse/PredicateParser.h"
#include "tag/Tag.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class PaperExamplesTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;

  ExprRef parse(std::string_view Src) {
    PredicateParseOptions Options;
    Options.AutoDeclareLocals = true;
    PredicateParseResult R = parsePredicate(Src, A, V.Syms, Options);
    EXPECT_TRUE(R.ok()) << Src << ": " << R.Error.toString();
    return R.Expr;
  }

  std::string canonAndTag(std::string_view Src) {
    CanonicalPredicate CP = canonicalizePredicate(A, parse(Src));
    std::string Out = printExpr(CP.Expr, V.Syms);
    Out += "  tags:";
    for (const Tag &T : deriveTags(A, CP.D, V.Syms))
      Out += " " + T.toString(V.Syms);
    return Out;
  }
};

TEST_F(PaperExamplesTest, Figure7Population) {
  // The condition manager of Fig. 7 holds these predicates over x. Each
  // line pins the canonical form and the derived tag.
  EXPECT_EQ(canonAndTag("x > 5"), "x >= 6  tags: (threshold, x, 6, >=)");
  EXPECT_EQ(canonAndTag("x >= 5"), "x >= 5  tags: (threshold, x, 5, >=)");
  EXPECT_EQ(canonAndTag("x < 3"), "x <= 2  tags: (threshold, x, 2, <=)");
  EXPECT_EQ(canonAndTag("x <= 3"), "x <= 3  tags: (threshold, x, 3, <=)");
  EXPECT_EQ(canonAndTag("x == 6"), "x == 6  tags: (equivalence, x, 6)");
  EXPECT_EQ(canonAndTag("x == 7"), "x == 7  tags: (equivalence, x, 7)");
  EXPECT_EQ(canonAndTag("x != 9"), "x != 9  tags: (none)");
  EXPECT_EQ(canonAndTag("x != 5"), "x != 5  tags: (none)");
  EXPECT_EQ(canonAndTag("(x != 1) && (x <= 2)"),
            "x != 1 && x <= 2  tags: (threshold, x, 2, <=)");
  EXPECT_EQ(canonAndTag("(x != 9) && (x >= 2)"),
            "x != 9 && x >= 2  tags: (threshold, x, 2, >=)");
  EXPECT_EQ(canonAndTag("(x >= 8) || (x == 3)"),
            "x == 3 || x >= 8  tags: (equivalence, x, 3) "
            "(threshold, x, 8, >=)");
}

TEST_F(PaperExamplesTest, Section43ThresholdRearrangement) {
  // "consider the Threshold predicate x + b > 2y + a where a and b are
  // local variables with values 11 and 2 ... converted to (x - 2y > 9),
  // represented by the tag (Threshold, x - 2y, 9, >)". Inclusive integer
  // form here: x - 2y >= 10.
  MapEnv Locals;
  Locals.bindInt(V.A, 11).bindInt(V.B, 2);
  ExprRef G = globalize(A, parse("x + b > 2 * y + a"), V.Syms, Locals);
  CanonicalPredicate CP = canonicalizePredicate(A, G);
  EXPECT_EQ(printExpr(CP.Expr, V.Syms), "x + -2 * y >= 10");
  std::vector<Tag> Tags = deriveTags(A, CP.D, V.Syms);
  ASSERT_EQ(Tags.size(), 1u);
  EXPECT_EQ(Tags[0].toString(V.Syms), "(threshold, x + -2 * y, 10, >=)");
}

TEST_F(PaperExamplesTest, Section43EquivalenceRearrangement) {
  // "(x - a = y + b) ... is equivalent to (x - y = a + b)", a = 5, b = 2.
  MapEnv Locals;
  Locals.bindInt(V.A, 5).bindInt(V.B, 2);
  ExprRef G = globalize(A, parse("x - a == y + b"), V.Syms, Locals);
  CanonicalPredicate CP = canonicalizePredicate(A, G);
  EXPECT_EQ(printExpr(CP.Expr, V.Syms), "x + -1 * y == 7");
  std::vector<Tag> Tags = deriveTags(A, CP.D, V.Syms);
  ASSERT_EQ(Tags.size(), 1u);
  EXPECT_EQ(Tags[0].Kind, TagKind::Equivalence);
  EXPECT_EQ(Tags[0].Key, 7);
}

TEST_F(PaperExamplesTest, Figure1BufferPredicates) {
  // The parameterized buffer's waituntil conditions, globalized at
  // items = 48 / num = 32, buffer length 64.
  MapEnv Locals;
  Locals.bindInt(V.A, 48); // a plays 'items'
  Locals.bindInt(V.B, 32); // b plays 'num'
  ExprRef Put = globalize(A, parse("x + a <= 64"), V.Syms, Locals);
  EXPECT_EQ(printExpr(canonicalizePredicate(A, Put).Expr, V.Syms),
            "x <= 16");
  ExprRef Take = globalize(A, parse("x >= b"), V.Syms, Locals);
  EXPECT_EQ(printExpr(canonicalizePredicate(A, Take).Expr, V.Syms),
            "x >= 32");
}

TEST_F(PaperExamplesTest, Section41DnfExample) {
  // "(x = 1) ∧ (y = 6) ∨ (z ≠ 8) is DNF, where c1 = ... and c2 = ...".
  CanonicalPredicate CP =
      canonicalizePredicate(A, parse("x == 1 && y == 6 || z != 8"));
  ASSERT_EQ(CP.D.Conjs.size(), 2u);
  std::vector<Tag> Tags = deriveTags(A, CP.D, V.Syms);
  ASSERT_EQ(Tags.size(), 2u);
  // One equivalence tag (from the two-atom conjunction) and one None tag
  // (z != 8 is neither equivalence nor threshold).
  EXPECT_TRUE((Tags[0].Kind == TagKind::Equivalence &&
               Tags[1].Kind == TagKind::None) ||
              (Tags[0].Kind == TagKind::None &&
               Tags[1].Kind == TagKind::Equivalence));
}

TEST_F(PaperExamplesTest, SharedConjunctTagSharing) {
  // §4.3.1: "the predicates (x = 5) ∧ (z ≤ 4) and (x = 5) ∧ (y ≥ 4) would
  // have a shared equivalence tag of (x = 5)."
  CanonicalPredicate P1 = canonicalizePredicate(A, parse("x == 5 && z <= 4"));
  CanonicalPredicate P2 = canonicalizePredicate(A, parse("x == 5 && y >= 4"));
  std::vector<Tag> T1 = deriveTags(A, P1.D, V.Syms);
  std::vector<Tag> T2 = deriveTags(A, P2.D, V.Syms);
  ASSERT_EQ(T1.size(), 1u);
  ASSERT_EQ(T2.size(), 1u);
  EXPECT_TRUE(T1[0] == T2[0]); // Same kind, shared expr pointer, and key.
}

} // namespace

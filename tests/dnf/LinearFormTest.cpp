//===- tests/dnf/LinearFormTest.cpp - Linear form extraction tests ----------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dnf/LinearForm.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class LinearFormTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;

  ExprRef x() { return A.var(V.Syms.info(V.X)); }
  ExprRef y() { return A.var(V.Syms.info(V.Y)); }
};

TEST_F(LinearFormTest, Constant) {
  auto F = LinearForm::of(A.intLit(7));
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(F->isConstant());
  EXPECT_EQ(F->constant(), 7);
}

TEST_F(LinearFormTest, SingleVariable) {
  auto F = LinearForm::of(x());
  ASSERT_TRUE(F.has_value());
  ASSERT_EQ(F->terms().size(), 1u);
  EXPECT_EQ(F->terms()[0], (LinearForm::Term{V.X, 1}));
  EXPECT_EQ(F->constant(), 0);
}

TEST_F(LinearFormTest, SumAndScale) {
  // 2*x + y - 3.
  ExprRef E = A.binary(
      ExprKind::Sub,
      A.binary(ExprKind::Add, A.binary(ExprKind::Mul, A.intLit(2), x()),
               y()),
      A.intLit(3));
  auto F = LinearForm::of(E);
  ASSERT_TRUE(F.has_value());
  ASSERT_EQ(F->terms().size(), 2u);
  EXPECT_EQ(F->terms()[0], (LinearForm::Term{V.X, 2}));
  EXPECT_EQ(F->terms()[1], (LinearForm::Term{V.Y, 1}));
  EXPECT_EQ(F->constant(), -3);
}

TEST_F(LinearFormTest, VariableTimesConstantEitherOrder) {
  ExprRef L = A.binary(ExprKind::Mul, A.intLit(3), x());
  ExprRef R = A.binary(ExprKind::Mul, x(), A.intLit(3));
  EXPECT_EQ(LinearForm::of(L), LinearForm::of(R));
}

TEST_F(LinearFormTest, CancellationDropsTerm) {
  // x - x has no terms.
  ExprRef E = A.binary(ExprKind::Sub, x(), x());
  auto F = LinearForm::of(E);
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(F->isConstant());
  EXPECT_EQ(F->constant(), 0);
}

TEST_F(LinearFormTest, NegationNegatesEverything) {
  // -(2x + 3).
  ExprRef E = A.unary(
      ExprKind::Neg,
      A.binary(ExprKind::Add, A.binary(ExprKind::Mul, A.intLit(2), x()),
               A.intLit(3)));
  auto F = LinearForm::of(E);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->terms()[0], (LinearForm::Term{V.X, -2}));
  EXPECT_EQ(F->constant(), -3);
}

TEST_F(LinearFormTest, VariableProductIsNonLinear) {
  EXPECT_FALSE(LinearForm::of(A.binary(ExprKind::Mul, x(), y())));
}

TEST_F(LinearFormTest, DivisionIsNonLinear) {
  EXPECT_FALSE(LinearForm::of(A.binary(ExprKind::Div, x(), A.intLit(2))));
  EXPECT_FALSE(LinearForm::of(A.binary(ExprKind::Mod, x(), A.intLit(2))));
}

TEST_F(LinearFormTest, CoefficientOverflowIsRejected) {
  // INT64_MAX * x + INT64_MAX * x overflows the coefficient.
  ExprRef Big = A.binary(ExprKind::Mul, A.intLit(INT64_MAX), x());
  ExprRef E = A.binary(ExprKind::Add, Big, Big);
  EXPECT_FALSE(LinearForm::of(E));
}

TEST_F(LinearFormTest, TermsSortedByVarId) {
  // y + x normalizes to x-then-y (VarId order).
  ExprRef E = A.binary(ExprKind::Add, y(), x());
  auto F = LinearForm::of(E);
  ASSERT_TRUE(F.has_value());
  ASSERT_EQ(F->terms().size(), 2u);
  EXPECT_LT(F->terms()[0].first, F->terms()[1].first);
}

TEST_F(LinearFormTest, ScaleByZeroIsZero) {
  LinearForm F = LinearForm::variableForm(V.X);
  auto Z = F.scale(0);
  ASSERT_TRUE(Z.has_value());
  EXPECT_TRUE(Z->isConstant());
  EXPECT_EQ(Z->constant(), 0);
}

} // namespace

//===- tests/sync/ConditionStressTest.cpp - Multi-condition stress -----------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The condition manager creates one condition variable per registered
// predicate, all bound to the monitor mutex, and signals them selectively.
// These tests hammer exactly that pattern on the raw substrate — many
// conditions on one mutex, targeted handoffs — on both backends.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "sync/Mutex.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace autosynch;
using namespace autosynch::sync;

namespace {

class ConditionStressTest : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, ConditionStressTest,
                         ::testing::Values(Backend::Std, Backend::Futex),
                         [](const auto &Info) {
                           return std::string(backendName(Info.param));
                         });

TEST_P(ConditionStressTest, TargetedSignalsWakeOnlyTheirCondition) {
  // N waiters, each on its own condition; release them one by one in a
  // chosen order and verify the order is honored.
  constexpr int N = 16;
  Mutex M(GetParam());
  std::vector<std::unique_ptr<Condition>> Conds;
  for (int I = 0; I != N; ++I)
    Conds.push_back(M.newCondition());

  std::vector<bool> Released(N, false);
  std::vector<int> WakeOrder;
  std::vector<std::thread> Pool;
  for (int I = 0; I != N; ++I) {
    Pool.emplace_back([&, I] {
      M.lock();
      while (!Released[I])
        Conds[I]->await();
      WakeOrder.push_back(I); // Under the mutex.
      M.unlock();
    });
  }

  // Every waiter must be parked before the release pattern starts, or an
  // early signal could race a waiter still acquiring the mutex; poll the
  // per-condition await counts instead of sleeping (PR-1 deflaking).
  testutil::awaitParked(
      M,
      [&] {
        int Parked = 0;
        for (const auto &C : Conds)
          Parked += C->awaitCount() >= 1;
        return Parked;
      },
      N);
  // Release even-numbered waiters first, then odd.
  std::vector<int> Expected;
  for (int Pass = 0; Pass != 2; ++Pass) {
    for (int I = Pass; I < N; I += 2) {
      M.lock();
      Released[I] = true;
      Conds[I]->signal();
      M.unlock();
      Expected.push_back(I);
      // Wait for the waiter to record itself before releasing the next,
      // making the global order deterministic.
      for (;;) {
        M.lock();
        bool Done = WakeOrder.size() == Expected.size();
        M.unlock();
        if (Done)
          break;
        std::this_thread::yield();
      }
    }
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(WakeOrder, Expected);
}

TEST_P(ConditionStressTest, ChainedHandoffAcrossConditions) {
  // A token circulates through K conditions R rounds; each thread waits
  // on its own condition and signals the next — the relay pattern.
  constexpr int K = 8;
  constexpr int Rounds = 500;
  Mutex M(GetParam());
  std::vector<std::unique_ptr<Condition>> Conds;
  for (int I = 0; I != K; ++I)
    Conds.push_back(M.newCondition());

  int Holder = 0;
  int64_t Hops = 0;
  std::vector<std::thread> Pool;
  for (int I = 0; I != K; ++I) {
    Pool.emplace_back([&, I] {
      for (int R = 0; R != Rounds; ++R) {
        M.lock();
        while (Holder != I)
          Conds[I]->await();
        ++Hops;
        Holder = (I + 1) % K;
        Conds[Holder]->signal();
        M.unlock();
      }
    });
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Hops, static_cast<int64_t>(K) * Rounds);
  EXPECT_EQ(Holder, 0); // Full cycles return the token home.
}

TEST_P(ConditionStressTest, ManyConditionsLowTrafficDoNotCrosstalk) {
  // Signals on one condition must never wake a different condition's
  // waiter into a spurious exit of its predicate loop with a corrupted
  // state (each waiter re-checks its own flag).
  constexpr int N = 12;
  Mutex M(GetParam());
  std::vector<std::unique_ptr<Condition>> Conds;
  for (int I = 0; I != N; ++I)
    Conds.push_back(M.newCondition());
  std::vector<int> Generation(N, 0);
  std::vector<int> Observed(N, 0);

  std::vector<std::thread> Pool;
  for (int I = 0; I != N; ++I) {
    Pool.emplace_back([&, I] {
      for (int G = 1; G <= 50; ++G) {
        M.lock();
        while (Generation[I] < G)
          Conds[I]->await();
        Observed[I] = Generation[I];
        M.unlock();
      }
    });
  }

  for (int G = 1; G <= 50; ++G) {
    for (int I = 0; I != N; ++I) {
      M.lock();
      Generation[I] = G;
      Conds[I]->signal();
      M.unlock();
    }
  }
  for (auto &T : Pool)
    T.join();
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(Observed[I], 50);
}

} // namespace

//===- tests/sync/MutexTest.cpp - Lock/Condition substrate tests -----------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Parameterized over both backends (std and futex): mutual exclusion under
// contention, condition signal/signalAll semantics, and the instrumentation
// counters.
//
//===----------------------------------------------------------------------===//

#include "sync/Counters.h"
#include "sync/Mutex.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace autosynch;
using namespace autosynch::sync;

class MutexTest : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, MutexTest,
                         ::testing::Values(Backend::Std, Backend::Futex),
                         [](const auto &Info) {
                           return std::string(backendName(Info.param));
                         });

TEST_P(MutexTest, LockUnlockSingleThread) {
  Mutex M(GetParam());
  M.lock();
  M.unlock();
  M.lock();
  M.unlock();
}

TEST_P(MutexTest, TryLockReflectsState) {
  Mutex M(GetParam());
  EXPECT_TRUE(M.tryLock());
  std::thread([&] { EXPECT_FALSE(M.tryLock()); }).join();
  M.unlock();
  EXPECT_TRUE(M.tryLock());
  M.unlock();
}

TEST_P(MutexTest, MutualExclusionUnderContention) {
  Mutex M(GetParam());
  int64_t Counter = 0;
  constexpr int Threads = 8;
  constexpr int64_t Iters = 20000;

  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T) {
    Pool.emplace_back([&] {
      for (int64_t I = 0; I != Iters; ++I) {
        M.lock();
        ++Counter; // Data race unless the lock excludes.
        M.unlock();
      }
    });
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Counter, Threads * Iters);
}

TEST_P(MutexTest, ConditionSignalWakesOneWaiter) {
  Mutex M(GetParam());
  auto C = M.newCondition();
  bool Ready = false;

  std::thread Waiter([&] {
    M.lock();
    while (!Ready)
      C->await();
    M.unlock();
  });

  // Let the waiter block, then release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  M.lock();
  Ready = true;
  C->signal();
  M.unlock();
  Waiter.join();
}

TEST_P(MutexTest, SignalAllWakesEveryWaiter) {
  Mutex M(GetParam());
  auto C = M.newCondition();
  bool Ready = false;
  int Woken = 0;
  constexpr int Waiters = 6;

  std::vector<std::thread> Pool;
  for (int T = 0; T != Waiters; ++T) {
    Pool.emplace_back([&] {
      M.lock();
      while (!Ready)
        C->await();
      ++Woken;
      M.unlock();
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  M.lock();
  Ready = true;
  C->signalAll();
  M.unlock();
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Woken, Waiters);
}

TEST_P(MutexTest, SignalBeforeAnyWaiterIsNotRemembered) {
  // A condition variable is not a semaphore: a signal with no waiter is
  // lost, and the waiter relies on its predicate re-check.
  Mutex M(GetParam());
  auto C = M.newCondition();
  M.lock();
  C->signal(); // No waiter: must not break anything.
  M.unlock();

  bool Ready = false;
  std::thread Waiter([&] {
    M.lock();
    while (!Ready)
      C->await();
    M.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  M.lock();
  Ready = true;
  C->signal();
  M.unlock();
  Waiter.join();
}

TEST_P(MutexTest, ProducerConsumerHandoffStress) {
  // Two conditions on one mutex, as the monitors use them.
  Mutex M(GetParam());
  auto NotEmpty = M.newCondition();
  auto NotFull = M.newCondition();
  int64_t Buffer = 0; // 0 = empty, 1 = full.
  int64_t Produced = 0, Consumed = 0;
  constexpr int64_t Total = 20000;

  std::thread Producer([&] {
    for (int64_t I = 0; I != Total; ++I) {
      M.lock();
      while (Buffer == 1)
        NotFull->await();
      Buffer = 1;
      ++Produced;
      NotEmpty->signal();
      M.unlock();
    }
  });
  std::thread Consumer([&] {
    for (int64_t I = 0; I != Total; ++I) {
      M.lock();
      while (Buffer == 0)
        NotEmpty->await();
      Buffer = 0;
      ++Consumed;
      NotFull->signal();
      M.unlock();
    }
  });
  Producer.join();
  Consumer.join();
  EXPECT_EQ(Produced, Total);
  EXPECT_EQ(Consumed, Total);
  EXPECT_EQ(Buffer, 0);
}

TEST_P(MutexTest, PerConditionCountersTrackCalls) {
  Mutex M(GetParam());
  auto C = M.newCondition();
  EXPECT_EQ(C->awaitCount(), 0u);
  EXPECT_EQ(C->signalCount(), 0u);
  EXPECT_EQ(C->signalAllCount(), 0u);

  M.lock();
  C->signal();
  C->signal();
  C->signalAll();
  M.unlock();
  EXPECT_EQ(C->signalCount(), 2u);
  EXPECT_EQ(C->signalAllCount(), 1u);
}

TEST_P(MutexTest, GlobalCountersAccumulate) {
  Counters &G = Counters::global();
  CountersSnapshot Before = G.snapshot();

  Mutex M(GetParam());
  auto C = M.newCondition();
  bool Ready = false;
  std::thread Waiter([&] {
    M.lock();
    while (!Ready)
      C->await();
    M.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  M.lock();
  Ready = true;
  C->signal();
  M.unlock();
  Waiter.join();

  CountersSnapshot Delta = G.snapshot() - Before;
  EXPECT_GE(Delta.Awaits, 1u);
  EXPECT_GE(Delta.Signals, 1u);
  EXPECT_GE(Delta.Wakeups, 1u);
}

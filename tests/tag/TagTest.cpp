//===- tests/tag/TagTest.cpp - Tag derivation tests (paper Fig. 3) ----------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dnf/Dnf.h"
#include "expr/Printer.h"
#include "expr/Subst.h"
#include "parse/PredicateParser.h"
#include "tag/Tag.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class TagTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;

  /// Parses, globalizes nothing (shared-only sources), canonicalizes, and
  /// derives the tag of the first conjunction.
  Tag tagOf(std::string_view Src) {
    PredicateParseResult R = parsePredicate(Src, A, V.Syms);
    EXPECT_TRUE(R.ok()) << Src << ": " << R.Error.toString();
    CanonicalPredicate CP = canonicalizePredicate(A, R.Expr);
    EXPECT_FALSE(CP.D.Conjs.empty()) << Src;
    return deriveTag(A, CP.D.Conjs.front(), V.Syms);
  }
};

TEST_F(TagTest, EquivalencePredicate) {
  // Paper Def. 6: SE == LE (globalized) gets an Equivalence tag.
  Tag T = tagOf("x == 8");
  EXPECT_EQ(T.Kind, TagKind::Equivalence);
  EXPECT_EQ(T.Key, 8);
  EXPECT_EQ(printExpr(T.SharedExpr, V.Syms), "x");
}

TEST_F(TagTest, ThresholdPredicate) {
  Tag T = tagOf("x >= 5");
  EXPECT_EQ(T.Kind, TagKind::Threshold);
  EXPECT_EQ(T.Key, 5);
  EXPECT_EQ(T.Op, ExprKind::Ge);
}

TEST_F(TagTest, StrictThresholdCanonicalizesFirst) {
  // x > 5 canonicalizes to x >= 6 before tagging.
  Tag T = tagOf("x > 5");
  EXPECT_EQ(T.Kind, TagKind::Threshold);
  EXPECT_EQ(T.Key, 6);
  EXPECT_EQ(T.Op, ExprKind::Ge);
}

TEST_F(TagTest, EquivalenceBeatsThreshold) {
  // Paper Fig. 3: an equivalence atom wins over a threshold atom in the
  // same conjunction, whatever the order.
  for (const char *Src : {"x == 8 && y >= 3", "y >= 3 && x == 8"}) {
    Tag T = tagOf(Src);
    EXPECT_EQ(T.Kind, TagKind::Equivalence) << Src;
    EXPECT_EQ(T.Key, 8) << Src;
  }
}

TEST_F(TagTest, DisequalityIsNone) {
  // != is neither an equivalence nor a threshold (paper Defs. 6-7).
  EXPECT_EQ(tagOf("x != 9").Kind, TagKind::None);
}

TEST_F(TagTest, NonLinearIsNone) {
  EXPECT_EQ(tagOf("x * y >= 3").Kind, TagKind::None);
}

TEST_F(TagTest, ThresholdWithNeAtomStillThreshold) {
  // The paper's example P1: (x >= 5) && (y != 1) has tag (Threshold,x,5,>=).
  Tag T = tagOf("x >= 5 && y != 1");
  EXPECT_EQ(T.Kind, TagKind::Threshold);
  EXPECT_EQ(T.Key, 5);
  EXPECT_EQ(printExpr(T.SharedExpr, V.Syms), "x");
}

TEST_F(TagTest, PaperCompositeExample) {
  // §4.3: x + b > 2y + a with a=11, b=2 becomes the tag
  // (Threshold, x - 2y, 9, >) — inclusive form (.., 10, >=) here.
  MapEnv Locals;
  Locals.bindInt(V.A, 11).bindInt(V.B, 2);
  PredicateParseResult R =
      parsePredicate("x + b > 2 * y + a", A, V.Syms);
  ASSERT_TRUE(R.ok());
  ExprRef G = globalize(A, R.Expr, V.Syms, Locals);
  CanonicalPredicate CP = canonicalizePredicate(A, G);
  Tag T = deriveTag(A, CP.D.Conjs.front(), V.Syms);
  EXPECT_EQ(T.Kind, TagKind::Threshold);
  EXPECT_EQ(T.Key, 10);
  EXPECT_EQ(T.Op, ExprKind::Ge);
  EXPECT_EQ(printExpr(T.SharedExpr, V.Syms), "x + -2 * y");
}

TEST_F(TagTest, BoolSharedVarIsEquivalence) {
  Tag T = tagOf("flag");
  EXPECT_EQ(T.Kind, TagKind::Equivalence);
  EXPECT_EQ(T.Key, 1);
  EXPECT_EQ(printExpr(T.SharedExpr, V.Syms), "flag");

  Tag N = tagOf("!flag");
  EXPECT_EQ(N.Kind, TagKind::Equivalence);
  EXPECT_EQ(N.Key, 0);
}

TEST_F(TagTest, LocalVariableAtomIsNotTaggable) {
  // Without globalization, a local-mentioning atom cannot be evaluated by
  // other threads; derivation refuses to tag it (defensive path).
  PredicateParseResult R = parsePredicate("x >= a", A, V.Syms);
  ASSERT_TRUE(R.ok());
  Dnf D = toDnf(A, R.Expr);
  Tag T = deriveTag(A, D.Conjs.front(), V.Syms);
  EXPECT_EQ(T.Kind, TagKind::None);
}

TEST_F(TagTest, SharedExpressionsInternAcrossTags) {
  // Distinct predicates over the same shared expression produce tags with
  // the same SharedExpr pointer — the per-expression index relies on it.
  Tag T1 = tagOf("x == 3");
  Tag T2 = tagOf("x == 6");
  Tag T3 = tagOf("x >= 5");
  EXPECT_EQ(T1.SharedExpr, T2.SharedExpr);
  EXPECT_EQ(T1.SharedExpr, T3.SharedExpr);
}

TEST_F(TagTest, DeriveTagsDeduplicates) {
  // Paper §4.3.1: "multiple predicates with a shared conjunct may share a
  // tag"; per predicate, identical per-conjunction tags are stored once.
  PredicateParseResult R =
      parsePredicate("(x == 5 && z <= 4) || (x == 5 && y >= 4)", A, V.Syms);
  ASSERT_TRUE(R.ok());
  CanonicalPredicate CP = canonicalizePredicate(A, R.Expr);
  std::vector<Tag> Tags = deriveTags(A, CP.D, V.Syms);
  ASSERT_EQ(Tags.size(), 1u); // One (Equivalence, x, 5) tag for both.
  EXPECT_EQ(Tags[0].Kind, TagKind::Equivalence);
  EXPECT_EQ(Tags[0].Key, 5);
}

TEST_F(TagTest, ToStringRendersPaperStyle) {
  Tag T = tagOf("x >= 5");
  EXPECT_EQ(T.toString(V.Syms), "(threshold, x, 5, >=)");
  Tag E = tagOf("x == 8");
  EXPECT_EQ(E.toString(V.Syms), "(equivalence, x, 8)");
  Tag N = tagOf("x != 9");
  EXPECT_EQ(N.toString(V.Syms), "(none)");
}

} // namespace

//===- tests/tag/TagIndexTest.cpp - Fig. 7 index tests ----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "expr/Eval.h"
#include "parse/PredicateParser.h"
#include "tag/TagIndex.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

/// A registered predicate with its derived tags, as the condition manager
/// would hold it. NoneIdx is the intrusive None-list position the index
/// maintains for None-tagged records; ReadSet feeds the per-expression
/// cover sets behind the dirty-set relay filter.
struct StubRecord {
  ExprRef Pred = nullptr;
  std::vector<Tag> Tags;
  size_t NoneIdx = TagIndex<StubRecord>::InvalidPos;
  VarSet ReadSet;
};

class TagIndexTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;
  TagIndex<StubRecord> Index;
  std::vector<std::unique_ptr<StubRecord>> Records;

  StubRecord *addPredicate(std::string_view Src) {
    PredicateParseResult R = parsePredicate(Src, A, V.Syms);
    EXPECT_TRUE(R.ok()) << Src << ": " << R.Error.toString();
    CanonicalPredicate CP = canonicalizePredicate(A, R.Expr);
    auto Rec = std::make_unique<StubRecord>();
    Rec->Pred = CP.Expr;
    Rec->Tags = deriveTags(A, CP.D, V.Syms);
    collectVars(CP.Expr, Rec->ReadSet);
    for (const Tag &T : Rec->Tags)
      Index.add(T, Rec.get());
    Records.push_back(std::move(Rec));
    return Records.back().get();
  }

  void removeRecord(StubRecord *R) {
    for (const Tag &T : R->Tags)
      Index.remove(T, R);
  }

  StubRecord *find(const Env &State, TagSearchStats *Stats = nullptr,
                   const VarSet *Dirty = nullptr) {
    return Index.findTrue(
        [&](ExprRef E) { return eval(E, State).raw(); },
        [&](StubRecord *R) { return evalBool(R->Pred, State); }, Stats,
        Dirty);
  }

  VarSet dirty(std::initializer_list<VarId> Ids) {
    VarSet S;
    for (VarId Id : Ids)
      S.add(Id);
    return S;
  }

  MapEnv state(int64_t X, int64_t Y = 0, int64_t Z = 0, bool Flag = false) {
    MapEnv E;
    E.bindInt(V.X, X).bindInt(V.Y, Y).bindInt(V.Z, Z).bindBool(V.Flag,
                                                               Flag);
    return E;
  }
};

TEST_F(TagIndexTest, EmptyIndexFindsNothing) {
  EXPECT_TRUE(Index.empty());
  EXPECT_EQ(find(state(5)), nullptr);
}

TEST_F(TagIndexTest, EquivalenceHashHitInOneLookup) {
  addPredicate("x == 3");
  addPredicate("x == 6");
  StubRecord *R8 = addPredicate("x == 8");
  TagSearchStats Stats;
  EXPECT_EQ(find(state(8), &Stats), R8);
  // Paper §4.3.2: one shared-expression evaluation, one hash probe, one
  // predicate check — regardless of how many equivalence tags exist.
  EXPECT_EQ(Stats.SharedExprEvals, 1u);
  EXPECT_EQ(Stats.EqLookups, 1u);
  EXPECT_EQ(Stats.PredicateChecks, 1u);
}

TEST_F(TagIndexTest, EquivalenceMissFallsThroughToThresholds) {
  addPredicate("x == 3");
  StubRecord *Ge = addPredicate("x >= 5");
  EXPECT_EQ(find(state(7)), Ge);
}

TEST_F(TagIndexTest, ThresholdHeapsSearchBothDirections) {
  StubRecord *Low = addPredicate("x >= 5");
  StubRecord *High = addPredicate("x <= -5");
  EXPECT_EQ(find(state(10)), Low);
  EXPECT_EQ(find(state(-10)), High);
  EXPECT_EQ(find(state(0)), nullptr);
}

TEST_F(TagIndexTest, NoneListScannedLast) {
  StubRecord *Ne = addPredicate("x != 9"); // None tag.
  TagSearchStats Stats;
  EXPECT_EQ(find(state(5), &Stats), Ne);
  EXPECT_EQ(Stats.NoneScans, 1u);
  EXPECT_EQ(find(state(9)), nullptr);
}

TEST_F(TagIndexTest, PaperFigure7Scenario) {
  // The predicates of the paper's Fig. 7 condition-manager example (the
  // subset over x), evaluated at several states.
  addPredicate("x == 3");
  StubRecord *X6 = addPredicate("x == 6");
  addPredicate("x == 7");
  StubRecord *Gt5 = addPredicate("x > 5");
  StubRecord *Ge5 = addPredicate("x >= 5");
  addPredicate("x < 3");
  StubRecord *Le3 = addPredicate("x <= 3");
  StubRecord *Ne9 = addPredicate("x != 9");

  // x = 6: the equivalence bucket for 6 wins before any threshold work.
  TagSearchStats Stats;
  EXPECT_EQ(find(state(6), &Stats), X6);
  EXPECT_EQ(Stats.EqLookups, 1u);
  EXPECT_EQ(Stats.PredicateChecks, 1u);

  // x = 9: no equivalence bucket; the lower-bound heap finds x > 5 or
  // x >= 5 (either is correct — both are true).
  StubRecord *AtNine = find(state(9));
  EXPECT_TRUE(AtNine == Gt5 || AtNine == Ge5);

  // x = 2: upper-bound heap root is the largest key, (3, <=), whose
  // record is true.
  EXPECT_EQ(find(state(2)), Le3);

  // Remove every taggable predicate: only x != 9 remains reachable.
  for (auto &R : Records)
    if (R.get() != Ne9)
      removeRecord(R.get());
  EXPECT_EQ(find(state(9)), nullptr); // x != 9 is false at 9.
  EXPECT_EQ(find(state(4)), Ne9);
}

TEST_F(TagIndexTest, MultiplePredicatesShareEquivalenceBucket) {
  // Paper §4.3.1: (x == 5 && z <= 4) and (x == 5 && y >= 4) share the
  // equivalence tag (x, 5).
  StubRecord *P1 = addPredicate("x == 5 && z <= 4");
  StubRecord *P2 = addPredicate("x == 5 && y >= 4");
  EXPECT_EQ(Index.numSharedExprs(), 1u);
  EXPECT_EQ(find(state(5, /*Y=*/9, /*Z=*/9)), P2);
  EXPECT_EQ(find(state(5, /*Y=*/0, /*Z=*/0)), P1);
  EXPECT_EQ(find(state(5, /*Y=*/0, /*Z=*/9)), nullptr);
}

TEST_F(TagIndexTest, MultipleSharedExpressions) {
  StubRecord *OnX = addPredicate("x >= 5");
  StubRecord *OnSum = addPredicate("x + y >= 100");
  EXPECT_EQ(Index.numSharedExprs(), 2u);
  EXPECT_EQ(find(state(6, 0)), OnX);
  EXPECT_EQ(find(state(0, 100)), OnSum);
}

TEST_F(TagIndexTest, BoolEquivalenceTags) {
  StubRecord *WhenSet = addPredicate("flag");
  StubRecord *WhenClear = addPredicate("!flag");
  EXPECT_EQ(find(state(0, 0, 0, true)), WhenSet);
  EXPECT_EQ(find(state(0, 0, 0, false)), WhenClear);
}

TEST_F(TagIndexTest, RemoveEmptiesIndex) {
  StubRecord *R1 = addPredicate("x == 3");
  StubRecord *R2 = addPredicate("x >= 5");
  StubRecord *R3 = addPredicate("x != 9");
  removeRecord(R1);
  removeRecord(R2);
  removeRecord(R3);
  EXPECT_TRUE(Index.empty());
  EXPECT_EQ(find(state(3)), nullptr);
}

TEST_F(TagIndexTest, DoubleAddToNoneListIsFatal) {
  StubRecord *R = addPredicate("x != 9");
  EXPECT_DEATH(Index.add(R->Tags.front(), R), "already in the None list");
}

TEST_F(TagIndexTest, DoubleRemoveFromNoneListIsFatal) {
  StubRecord *R = addPredicate("x != 9");
  removeRecord(R);
  EXPECT_DEATH(Index.remove(R->Tags.front(), R), "not in the None list");
}

TEST_F(TagIndexTest, NoneListSwapRemoveKeepsOthersFindable) {
  // The None list removes by swap-with-back; removing a middle record
  // must keep every other record's position index coherent.
  StubRecord *A = addPredicate("x != 1");
  StubRecord *B = addPredicate("x != 2");
  StubRecord *C = addPredicate("x != 3");
  EXPECT_EQ(Index.noneListSize(), 3u);
  removeRecord(B); // Middle: C is swapped into B's slot.
  EXPECT_EQ(Index.noneListSize(), 2u);
  EXPECT_EQ(find(state(1)), C);    // x != 3 and x != 2 hold; A (x != 1) not.
  removeRecord(C);
  EXPECT_EQ(find(state(3)), A);
  removeRecord(A);
  EXPECT_TRUE(Index.empty());
  EXPECT_EQ(find(state(0)), nullptr); // Empty-index findTrue.
}

TEST_F(TagIndexTest, RetaggingARegisteredRecord) {
  // A record's predicate is replaced (the condition manager reuses parked
  // records, §5.2): all old tags must come out, the new ones go in, and
  // only the new predicate is findable afterwards.
  StubRecord *R = addPredicate("x >= 5");
  EXPECT_EQ(find(state(8)), R);

  removeRecord(R);
  PredicateParseResult PR = parsePredicate("x == 7", A, V.Syms);
  ASSERT_TRUE(PR.ok());
  CanonicalPredicate CP = canonicalizePredicate(A, PR.Expr);
  R->Pred = CP.Expr;
  R->Tags = deriveTags(A, CP.D, V.Syms);
  for (const Tag &T : R->Tags)
    Index.add(T, R);

  EXPECT_EQ(find(state(7)), R);
  EXPECT_EQ(find(state(8)), nullptr); // Old threshold tag is gone.
  removeRecord(R);
  EXPECT_TRUE(Index.empty());
}

TEST_F(TagIndexTest, EqualThresholdsFromDistinctPredicates) {
  // Two predicates sharing the tag key (x, 5, >=) plus one strict (x, 5, >):
  // equal-key nodes must coexist and removals must not disturb each other.
  StubRecord *GeA = addPredicate("x >= 5 && y >= 0");
  StubRecord *GeB = addPredicate("x >= 5 && z >= 0");
  StubRecord *Gt = addPredicate("x > 5");

  // x == 5: only the non-strict bucket can be true.
  StubRecord *AtFive = find(state(5, /*Y=*/1, /*Z=*/-1));
  EXPECT_EQ(AtFive, GeA);
  removeRecord(GeA);
  EXPECT_EQ(find(state(5, /*Y=*/-1, /*Z=*/1)), GeB);
  removeRecord(GeB);
  EXPECT_EQ(find(state(5, 1, 1)), nullptr); // Only x > 5 remains: false.
  EXPECT_EQ(find(state(6, 1, 1)), Gt);
  removeRecord(Gt);
  EXPECT_TRUE(Index.empty());
}

TEST_F(TagIndexTest, RandomizedAddRemoveChurnStaysConsistent) {
  // Property: after any interleaving of adds and removes, findTrue agrees
  // with a brute-force oracle over the records currently registered, and
  // a fully drained index is empty.
  AUTOSYNCH_SEEDED_RNG(R, 555);
  const char *Pool[] = {"x == 2",  "x == -3", "x >= 4",  "x >= 4 && y >= 1",
                        "x > -2",  "x <= 0",  "x < -5",  "x != 7",
                        "x != -1", "flag",    "x + y == 3"};
  constexpr int PoolSize = static_cast<int>(sizeof(Pool) / sizeof(Pool[0]));

  for (int Round = 0; Round != 20; ++Round) {
    TagIndex<StubRecord> LocalIndex;
    std::vector<std::unique_ptr<StubRecord>> Owned;
    std::vector<StubRecord *> Registered;

    for (int Step = 0; Step != 60; ++Step) {
      if (Registered.empty() || R.chance(3, 5)) {
        const char *Src = Pool[R.range(0, PoolSize - 1)];
        PredicateParseResult PR = parsePredicate(Src, A, V.Syms);
        ASSERT_TRUE(PR.ok()) << Src;
        CanonicalPredicate CP = canonicalizePredicate(A, PR.Expr);
        auto Rec = std::make_unique<StubRecord>();
        Rec->Pred = CP.Expr;
        Rec->Tags = deriveTags(A, CP.D, V.Syms);
        for (const Tag &T : Rec->Tags)
          LocalIndex.add(T, Rec.get());
        Registered.push_back(Rec.get());
        Owned.push_back(std::move(Rec));
      } else {
        size_t Victim =
            static_cast<size_t>(R.range(0, Registered.size() - 1));
        StubRecord *Rec = Registered[Victim];
        for (const Tag &T : Rec->Tags)
          LocalIndex.remove(T, Rec);
        Registered[Victim] = Registered.back();
        Registered.pop_back();
      }

      MapEnv State = state(R.range(-8, 8), R.range(-8, 8), R.range(-8, 8),
                           R.chance(1, 2));
      bool OracleHasTrue = false;
      for (StubRecord *Rec : Registered)
        OracleHasTrue |= evalBool(Rec->Pred, State);
      StubRecord *Found = LocalIndex.findTrue(
          [&](ExprRef E) { return eval(E, State).raw(); },
          [&](StubRecord *Rec) { return evalBool(Rec->Pred, State); });
      ASSERT_EQ(Found != nullptr, OracleHasTrue)
          << "round " << Round << " step " << Step;
      if (Found) {
        ASSERT_TRUE(evalBool(Found->Pred, State));
      }
    }

    // Drain: the index must come back exactly empty.
    for (StubRecord *Rec : Registered)
      for (const Tag &T : Rec->Tags)
        LocalIndex.remove(T, Rec);
    EXPECT_TRUE(LocalIndex.empty()) << "round " << Round;
    EXPECT_EQ(LocalIndex.findTrue([](ExprRef) { return int64_t{0}; },
                                  [](StubRecord *) { return true; }),
              nullptr);
  }
}

TEST_F(TagIndexTest, DirtyFilterPrunesDisjointExpressions) {
  StubRecord *OnX = addPredicate("x >= 5");
  addPredicate("y == 3");

  // Dirty = {x}: the y-group is pruned without evaluating its expression;
  // the x-group is scanned and found.
  TagSearchStats Stats;
  VarSet DX = dirty({V.X});
  EXPECT_EQ(find(state(8, /*Y=*/3), &Stats, &DX), OnX);
  EXPECT_EQ(Stats.FilteredExprs, 1u);
  EXPECT_EQ(Stats.SharedExprEvals, 1u);

  // Dirty = {z}: both groups pruned; nothing is visited even though both
  // predicates are true under the state.
  TagSearchStats Stats2;
  VarSet DZ = dirty({V.Z});
  EXPECT_EQ(find(state(8, /*Y=*/3), &Stats2, &DZ), nullptr);
  EXPECT_EQ(Stats2.FilteredExprs, 2u);
  EXPECT_EQ(Stats2.SharedExprEvals, 0u);
  EXPECT_EQ(Stats2.PredicateChecks, 0u);

  // No dirty set: the unfiltered scan still sees everything.
  EXPECT_NE(find(state(8, /*Y=*/3)), nullptr);
}

TEST_F(TagIndexTest, CoverSetUnionsRecordReadSets) {
  // The record is tagged under expression x (equivalence on x == 2), but
  // its predicate also reads y: a write to y alone must still reach it —
  // the group filter works on the cover (union of record read sets), not
  // on the tag expression's own variables.
  StubRecord *R = addPredicate("x == 2 && y >= 4");
  TagSearchStats Stats;
  VarSet DY = dirty({V.Y});
  EXPECT_EQ(find(state(2, /*Y=*/5), &Stats, &DY), R);
  EXPECT_EQ(Stats.FilteredExprs, 0u);
}

TEST_F(TagIndexTest, DirtyFilterPrunesNoneListPerRecord) {
  StubRecord *NeX = addPredicate("x != 9"); // None tag, reads {x}.
  StubRecord *NeY = addPredicate("y != 9"); // None tag, reads {y}.
  TagSearchStats Stats;
  VarSet DY = dirty({V.Y});
  EXPECT_EQ(find(state(0, /*Y=*/0), &Stats, &DY), NeY);
  EXPECT_EQ(Stats.FilteredExprs, 1u); // NeX pruned individually.
  EXPECT_EQ(Stats.NoneScans, 1u);

  VarSet DX = dirty({V.X});
  EXPECT_EQ(find(state(0, /*Y=*/0), nullptr, &DX), NeX);
}

TEST_F(TagIndexTest, CoverSurvivesRemovalConservatively) {
  // Cover sets only grow while a group lives: after removing the record
  // that contributed y, a y-write still scans the group (conservative,
  // never unsound) — and once the group empties and is rebuilt, the
  // stale cover is gone.
  StubRecord *XY = addPredicate("x == 2 && y >= 4");
  StubRecord *XOnly = addPredicate("x == 3");
  removeRecord(XY);

  TagSearchStats Stats;
  VarSet DY = dirty({V.Y});
  EXPECT_EQ(find(state(3), &Stats, &DY), XOnly); // Stale cover: scanned.
  EXPECT_EQ(Stats.FilteredExprs, 0u);

  removeRecord(XOnly); // Group empties and dies with its cover.
  StubRecord *Rebuilt = addPredicate("x == 3");
  TagSearchStats Stats2;
  EXPECT_EQ(find(state(3), &Stats2, &DY), nullptr);
  EXPECT_EQ(Stats2.FilteredExprs, 1u); // Fresh cover = {x}: pruned.
  VarSet DX = dirty({V.X});
  EXPECT_EQ(find(state(3), nullptr, &DX), Rebuilt);
}

TEST_F(TagIndexTest, RandomizedDirtyFilterSoundness) {
  // Property: against a dirty set D, the filtered search never *misses* —
  // whenever some record whose read set intersects D is true, findTrue(D)
  // returns a true record. (It may return a true record that does not
  // itself intersect D: group covers over-approximate, which is the safe
  // direction. The relay's invariant makes non-intersecting records false
  // in production, so over-approximation only costs work there.)
  AUTOSYNCH_SEEDED_RNG(R, 911);
  const char *Pool[] = {"x == 2",  "x >= 4", "x <= 0",  "x != 7",
                        "y == 1",  "y >= 2", "y != -3", "x + y >= 4",
                        "z <= 2",  "flag",   "x == 1 && y >= 1",
                        "z != 0"};

  for (int Round = 0; Round != 25; ++Round) {
    TagIndex<StubRecord> LocalIndex;
    std::vector<std::unique_ptr<StubRecord>> Owned;
    for (const char *Src : Pool) {
      if (!R.chance(1, 2))
        continue;
      PredicateParseResult PR = parsePredicate(Src, A, V.Syms);
      ASSERT_TRUE(PR.ok()) << Src;
      CanonicalPredicate CP = canonicalizePredicate(A, PR.Expr);
      auto Rec = std::make_unique<StubRecord>();
      Rec->Pred = CP.Expr;
      Rec->Tags = deriveTags(A, CP.D, V.Syms);
      collectVars(CP.Expr, Rec->ReadSet);
      for (const Tag &T : Rec->Tags)
        LocalIndex.add(T, Rec.get());
      Owned.push_back(std::move(Rec));
    }

    for (int Probe = 0; Probe != 30; ++Probe) {
      MapEnv State = state(R.range(-8, 8), R.range(-8, 8), R.range(-8, 8),
                           R.chance(1, 2));
      VarSet D;
      for (VarId Id : {V.X, V.Y, V.Z, V.Flag})
        if (R.chance(1, 3))
          D.add(Id);

      bool OracleHasTrue = false;
      for (auto &Rec : Owned)
        OracleHasTrue |= D.intersects(Rec->ReadSet) &&
                         evalBool(Rec->Pred, State);
      StubRecord *Found = LocalIndex.findTrue(
          [&](ExprRef E) { return eval(E, State).raw(); },
          [&](StubRecord *Rec) { return evalBool(Rec->Pred, State); },
          nullptr, &D);
      if (OracleHasTrue) {
        ASSERT_NE(Found, nullptr) << "round " << Round;
      }
      if (Found) {
        ASSERT_TRUE(evalBool(Found->Pred, State));
      }
    }
  }
}

TEST_F(TagIndexTest, RandomizedSoundnessAndCompleteness) {
  // The relay-invariance-critical property: findTrue returns a record iff
  // some registered predicate is true, and the returned record's predicate
  // is true. (Which record is unspecified.)
  AUTOSYNCH_SEEDED_RNG(R, 77);
  const char *Pool[] = {
      "x == 0",        "x == 3",      "x == -4",     "x >= 2",
      "x >= 7",        "x > -3",      "x <= -2",     "x < 5",
      "x != 1",        "x != -6",     "x + y >= 4",  "x - y <= -3",
      "y == 2",        "y >= 3",      "flag",        "!flag",
      "x == 2 && y >= 1", "x >= 1 && y <= -1", "x * y >= 2",
      "x % 3 == 0"};

  for (int Round = 0; Round != 30; ++Round) {
    TagIndex<StubRecord> LocalIndex;
    std::vector<std::unique_ptr<StubRecord>> LocalRecords;
    for (const char *Src : Pool) {
      if (!R.chance(2, 3))
        continue;
      PredicateParseResult PR = parsePredicate(Src, A, V.Syms);
      ASSERT_TRUE(PR.ok()) << Src;
      CanonicalPredicate CP = canonicalizePredicate(A, PR.Expr);
      auto Rec = std::make_unique<StubRecord>();
      Rec->Pred = CP.Expr;
      Rec->Tags = deriveTags(A, CP.D, V.Syms);
      for (const Tag &T : Rec->Tags)
        LocalIndex.add(T, Rec.get());
      LocalRecords.push_back(std::move(Rec));
    }

    for (int Probe = 0; Probe != 40; ++Probe) {
      MapEnv State = state(R.range(-8, 8), R.range(-8, 8), R.range(-8, 8),
                           R.chance(1, 2));
      bool OracleHasTrue = false;
      for (auto &Rec : LocalRecords)
        OracleHasTrue |= evalBool(Rec->Pred, State);
      StubRecord *Found = LocalIndex.findTrue(
          [&](ExprRef E) { return eval(E, State).raw(); },
          [&](StubRecord *Rec) { return evalBool(Rec->Pred, State); });
      ASSERT_EQ(Found != nullptr, OracleHasTrue) << "round " << Round;
      if (Found) {
        ASSERT_TRUE(evalBool(Found->Pred, State));
      }
    }
  }
}

} // namespace

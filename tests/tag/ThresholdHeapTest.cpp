//===- tests/tag/ThresholdHeapTest.cpp - Fig. 4 heap tests ------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "support/Rng.h"
#include "tag/ThresholdHeap.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace autosynch;

namespace {

/// Stand-in for a condition-manager record: a predicate the heap search
/// evaluates via the IsTrue callback.
struct StubRecord {
  int Id = 0;
  bool Truth = false; // What IsTrue reports for this record.
};

using Heap = ThresholdHeap<StubRecord>;

TEST(ThresholdHeapTest, EmptySearchFindsNothing) {
  Heap H(Heap::Direction::LowerBound);
  EXPECT_TRUE(H.empty());
  EXPECT_EQ(H.search(100, [](StubRecord *) { return true; }), nullptr);
}

TEST(ThresholdHeapTest, RootFalseStopsImmediately) {
  // Paper Fig. 4: if the root tag is false, all descendants are false.
  Heap H(Heap::Direction::LowerBound);
  StubRecord R5{5, true}, R7{7, true};
  H.add(5, /*Strict=*/false, &R5); // x >= 5
  H.add(7, /*Strict=*/true, &R7);  // x > 7
  TagSearchStats Stats;
  int Checks = 0;
  EXPECT_EQ(H.search(
                3,
                [&](StubRecord *) {
                  ++Checks;
                  return true;
                },
                &Stats),
            nullptr);
  EXPECT_EQ(Checks, 0);       // x=3: root (>=5) false, nothing evaluated.
  EXPECT_EQ(Stats.HeapVisits, 1u);
}

TEST(ThresholdHeapTest, FindsRecordUnderTrueRoot) {
  Heap H(Heap::Direction::LowerBound);
  StubRecord R5{5, true};
  H.add(5, false, &R5);
  EXPECT_EQ(H.search(9, [](StubRecord *R) { return R->Truth; }), &R5);
}

TEST(ThresholdHeapTest, PaperTemporaryRemovalExample) {
  // §4.3.2: P1: (x >= 5 && y != 1) tag (x,5,>=); P2: (x > 7) tag (x,7,>).
  // At x=9, y=1: P1's tag is true but P1 is false; the tag is removed
  // temporarily, P2 is found, and the heap is restored.
  Heap H(Heap::Direction::LowerBound);
  StubRecord P1{1, false}; // y == 1 makes it false.
  StubRecord P2{2, true};
  H.add(5, false, &P1);
  H.add(7, true, &P2);

  EXPECT_EQ(H.search(9, [](StubRecord *R) { return R->Truth; }), &P2);
  // Heap restored: the same search still starts from (5, >=).
  EXPECT_EQ(H.search(9, [](StubRecord *R) { return R->Truth; }), &P2);
  // And at x=3 the restored root again prunes everything.
  int Checks = 0;
  EXPECT_EQ(H.search(3,
                     [&](StubRecord *) {
                       ++Checks;
                       return true;
                     }),
            nullptr);
  EXPECT_EQ(Checks, 0);
}

TEST(ThresholdHeapTest, EqualKeyNonStrictExaminedFirst) {
  // Paper: "(k, >=) is considered smaller than (k, >)" in the min-heap.
  Heap H(Heap::Direction::LowerBound);
  StubRecord Ge3{1, true}, Gt3{2, true};
  H.add(3, true, &Gt3);
  H.add(3, false, &Ge3);
  // At x == 3 only (3, >=) is true; it must be reachable at the root.
  EXPECT_EQ(H.search(3, [](StubRecord *R) { return R->Truth; }), &Ge3);
}

TEST(ThresholdHeapTest, UpperBoundDirectionMirrors) {
  Heap H(Heap::Direction::UpperBound);
  StubRecord Le5{1, true}, Lt3{2, true};
  H.add(5, false, &Le5); // x <= 5
  H.add(3, true, &Lt3);  // x < 3
  // x=4: root is (5, <=) (largest key first); it is true.
  EXPECT_EQ(H.search(4, [](StubRecord *R) { return R->Truth; }), &Le5);
  // x=9: root false, nothing examined.
  int Checks = 0;
  EXPECT_EQ(H.search(9,
                     [&](StubRecord *) {
                       ++Checks;
                       return true;
                     }),
            nullptr);
  EXPECT_EQ(Checks, 0);
}

TEST(ThresholdHeapTest, UpperBoundEqualKeyTieBreak) {
  // At x == 3, (3, <=) is true and (3, <) is false: <= must be examined
  // first (it is "larger" in the max-heap).
  Heap H(Heap::Direction::UpperBound);
  StubRecord Le3{1, true}, Lt3{2, true};
  H.add(3, true, &Lt3);
  H.add(3, false, &Le3);
  EXPECT_EQ(H.search(3, [](StubRecord *R) { return R->Truth; }), &Le3);
}

TEST(ThresholdHeapTest, SharedTagHoldsMultipleRecords) {
  Heap H(Heap::Direction::LowerBound);
  StubRecord A{1, false}, B{2, true};
  H.add(5, false, &A);
  H.add(5, false, &B);
  EXPECT_EQ(H.search(6, [](StubRecord *R) { return R->Truth; }), &B);
}

TEST(ThresholdHeapTest, RemoveUnregistersRecord) {
  Heap H(Heap::Direction::LowerBound);
  StubRecord A{1, true};
  H.add(5, false, &A);
  H.remove(5, false, &A);
  EXPECT_EQ(H.search(9, [](StubRecord *R) { return R->Truth; }), nullptr);
}

TEST(ThresholdHeapTest, RemoveUnknownIsFatal) {
  Heap H(Heap::Direction::LowerBound);
  StubRecord A{1, true};
  EXPECT_DEATH(H.remove(5, false, &A), "unregistered tag");
  H.add(5, false, &A);
  StubRecord B{2, true};
  EXPECT_DEATH(H.remove(5, false, &B), "unregistered record");
}

TEST(ThresholdHeapTest, EmptiedNodeRemovedEagerly) {
  // §5.2: "A threshold tag also needs to be removed once it has no
  // predicate."
  Heap H(Heap::Direction::LowerBound);
  StubRecord A{1, true}, B{2, true};
  H.add(5, false, &A);
  H.add(7, false, &B);
  EXPECT_EQ(H.numNodes(), 2u);
  H.remove(5, false, &A);
  EXPECT_EQ(H.numNodes(), 1u);
  EXPECT_EQ(H.search(9, [](StubRecord *R) { return R->Truth; }), &B);
  H.remove(7, false, &B);
  EXPECT_TRUE(H.empty());
}

TEST(ThresholdHeapTest, DuplicateAddOfSameRecordUnderSameTag) {
  // The same record may be registered twice under one tag (two waiters on
  // one predicate record is modeled upstream, but the heap itself must
  // tolerate duplicates symmetrically): each add needs a matching remove.
  Heap H(Heap::Direction::LowerBound);
  StubRecord A{1, true};
  H.add(5, false, &A);
  H.add(5, false, &A);
  EXPECT_EQ(H.numNodes(), 1u); // One (key, strictness) node.
  EXPECT_EQ(H.search(9, [](StubRecord *R) { return R->Truth; }), &A);
  H.remove(5, false, &A);
  EXPECT_EQ(H.numNodes(), 1u); // One registration left.
  EXPECT_EQ(H.search(9, [](StubRecord *R) { return R->Truth; }), &A);
  H.remove(5, false, &A);
  EXPECT_TRUE(H.empty());
  EXPECT_EQ(H.search(9, [](StubRecord *R) { return R->Truth; }), nullptr);
}

TEST(ThresholdHeapTest, EqualKeysKeepDistinctStrictnessNodes) {
  // (5, >=) and (5, >) are distinct nodes; removing one must not disturb
  // the other, in either removal order.
  for (bool RemoveStrictFirst : {false, true}) {
    Heap H(Heap::Direction::LowerBound);
    StubRecord Ge{1, true}, Gt{2, true};
    H.add(5, false, &Ge);
    H.add(5, true, &Gt);
    EXPECT_EQ(H.numNodes(), 2u);
    if (RemoveStrictFirst) {
      H.remove(5, true, &Gt);
      // x == 5: the surviving non-strict tag is true.
      EXPECT_EQ(H.search(5, [](StubRecord *R) { return R->Truth; }), &Ge);
    } else {
      H.remove(5, false, &Ge);
      // x == 5: only (5, >) remains and it is false at 5.
      EXPECT_EQ(H.search(5, [](StubRecord *R) { return R->Truth; }),
                nullptr);
      EXPECT_EQ(H.search(6, [](StubRecord *R) { return R->Truth; }), &Gt);
    }
  }
}

TEST(ThresholdHeapTest, EqualKeyTemporaryRemovalReachesStrictTwin) {
  // Both (3, >=) and (3, >) are true at x = 4; if the non-strict node's
  // records are all false the Fig. 4 loop must pop it and examine the
  // strict twin, then restore the heap.
  Heap H(Heap::Direction::LowerBound);
  StubRecord GeFalse{1, false}, GtTrue{2, true};
  H.add(3, false, &GeFalse);
  H.add(3, true, &GtTrue);
  EXPECT_EQ(H.search(4, [](StubRecord *R) { return R->Truth; }), &GtTrue);
  // Restored: both nodes still present and orderable.
  EXPECT_EQ(H.numNodes(), 2u);
  GeFalse.Truth = true;
  EXPECT_EQ(H.search(3, [](StubRecord *R) { return R->Truth; }), &GeFalse);
}

TEST(ThresholdHeapTest, RandomizedAgainstBruteForceOracle) {
  // Soundness: any returned record's tag and predicate are true.
  // Completeness: when the oracle finds some true-tag true-record, the
  // heap search finds one too.
  AUTOSYNCH_SEEDED_RNG(R, 2024);
  for (int Round = 0; Round != 50; ++Round) {
    Heap H(Heap::Direction::LowerBound);
    std::vector<std::unique_ptr<StubRecord>> Records;
    std::vector<std::pair<int64_t, bool>> Tags;
    int N = static_cast<int>(R.range(1, 24));
    for (int I = 0; I != N; ++I) {
      Records.push_back(
          std::make_unique<StubRecord>(StubRecord{I, R.chance(1, 2)}));
      int64_t Key = R.range(-10, 10);
      bool Strict = R.chance(1, 2);
      Tags.push_back({Key, Strict});
      H.add(Key, Strict, Records.back().get());
    }

    for (int64_t X = -12; X <= 12; ++X) {
      bool OracleHasTrue = false;
      for (int I = 0; I != N; ++I) {
        bool TagTrue = Tags[I].second ? X > Tags[I].first
                                      : X >= Tags[I].first;
        if (TagTrue && Records[I]->Truth)
          OracleHasTrue = true;
      }
      StubRecord *Found =
          H.search(X, [](StubRecord *Rec) { return Rec->Truth; });
      ASSERT_EQ(Found != nullptr, OracleHasTrue)
          << "round " << Round << " x=" << X;
      if (Found) {
        ASSERT_TRUE(Found->Truth);
      }
    }
  }
}

} // namespace

//===- tests/problems/ReadersWritersTest.cpp - RW lock tests ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "problems/ReadersWriters.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

class ReadersWritersTest : public ::testing::TestWithParam<Mechanism> {};

INSTANTIATE_TEST_SUITE_P(Mechanisms, ReadersWritersTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

TEST_P(ReadersWritersTest, SingleReaderAndWriter) {
  auto RW = makeReadersWriters(GetParam());
  RW->startRead();
  RW->endRead();
  RW->startWrite();
  RW->endWrite();
  EXPECT_EQ(RW->reads(), 1);
  EXPECT_EQ(RW->writes(), 1);
}

TEST_P(ReadersWritersTest, WritersAreExclusive) {
  auto RW = makeReadersWriters(GetParam());
  std::atomic<int> InCritical{0};
  std::atomic<int> MaxInCritical{0};
  std::atomic<int> ReadersDuringWrite{0};
  std::atomic<int> ActiveReaders{0};

  std::vector<std::thread> Pool;
  for (int W = 0; W != 3; ++W) {
    Pool.emplace_back([&] {
      for (int I = 0; I != 100; ++I) {
        RW->startWrite();
        int Now = ++InCritical;
        int Max = MaxInCritical.load();
        while (Now > Max && !MaxInCritical.compare_exchange_weak(Max, Now))
          ;
        ReadersDuringWrite += ActiveReaders.load();
        --InCritical;
        RW->endWrite();
      }
    });
  }
  for (int R = 0; R != 3; ++R) {
    Pool.emplace_back([&] {
      for (int I = 0; I != 100; ++I) {
        RW->startRead();
        ++ActiveReaders;
        --ActiveReaders;
        RW->endRead();
      }
    });
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(MaxInCritical.load(), 1); // Never two writers at once.
  EXPECT_EQ(ReadersDuringWrite.load(), 0);
}

TEST_P(ReadersWritersTest, ReadersOverlap) {
  auto RW = makeReadersWriters(GetParam());
  std::atomic<int> Concurrent{0}, Peak{0};
  constexpr int Readers = 6;
  std::vector<std::thread> Pool;
  for (int R = 0; R != Readers; ++R) {
    Pool.emplace_back([&] {
      RW->startRead();
      int Now = ++Concurrent;
      int Max = Peak.load();
      while (Now > Max && !Peak.compare_exchange_weak(Max, Now))
        ;
      // Hold the read briefly so others can pile in.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --Concurrent;
      RW->endRead();
    });
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_GT(Peak.load(), 1); // At least two readers ran concurrently.
}

TEST_P(ReadersWritersTest, WriterBlocksWhileReadersActive) {
  auto RW = makeReadersWriters(GetParam());
  RW->startRead();
  std::atomic<bool> WriteDone{false};
  std::thread W([&] {
    RW->startWrite();
    WriteDone = true;
    RW->endWrite();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(WriteDone.load());
  RW->endRead();
  W.join();
  EXPECT_TRUE(WriteDone.load());
}

TEST_P(ReadersWritersTest, ArrivalOrderFairness) {
  // A waiting writer must not be starved by later readers: reader1 holds,
  // writer queues, reader2 arrives later — in the ticketed discipline
  // reader2 cannot pass the queued writer.
  auto RW = makeReadersWriters(GetParam());
  RW->startRead();

  std::atomic<bool> WriterIn{false}, Reader2In{false};
  std::thread W([&] {
    RW->startWrite();
    WriterIn = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    RW->endWrite();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread R2([&] {
    RW->startRead();
    Reader2In = true;
    RW->endRead();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(WriterIn.load());  // Reader1 still holds.
  EXPECT_FALSE(Reader2In.load()); // Queued behind the writer.
  RW->endRead();
  W.join();
  R2.join();
  EXPECT_TRUE(WriterIn.load());
  EXPECT_TRUE(Reader2In.load());
}

TEST_P(ReadersWritersTest, PaperWorkloadShape) {
  // The paper's 1:5 writer:reader mix (Fig. 12), scaled down.
  auto RW = makeReadersWriters(GetParam());
  constexpr int Writers = 2, Readers = 10, Ops = 50;
  std::vector<std::thread> Pool;
  for (int W = 0; W != Writers; ++W) {
    Pool.emplace_back([&] {
      for (int I = 0; I != Ops; ++I) {
        RW->startWrite();
        RW->endWrite();
      }
    });
  }
  for (int R = 0; R != Readers; ++R) {
    Pool.emplace_back([&] {
      for (int I = 0; I != Ops; ++I) {
        RW->startRead();
        RW->endRead();
      }
    });
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(RW->writes(), Writers * Ops);
  EXPECT_EQ(RW->reads(), Readers * Ops);
}

} // namespace

//===- tests/problems/SantaClausTest.cpp - Santa Claus problem tests --------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "problems/SantaClaus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

class SantaClausTest : public ::testing::TestWithParam<Mechanism> {};

INSTANTIATE_TEST_SUITE_P(Mechanisms, SantaClausTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

TEST_P(SantaClausTest, DeliversWhenTeamComplete) {
  auto S = makeSantaClaus(GetParam(), /*ReindeerTeam=*/3, /*ElfGroup=*/2);
  std::vector<std::thread> Pool;
  for (int I = 0; I != 3; ++I)
    Pool.emplace_back([&] { S->reindeer(); });
  EXPECT_EQ(S->santa(), SantaService::Toys);
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(S->deliveries(), 1);
  EXPECT_EQ(S->consultations(), 0);
}

TEST_P(SantaClausTest, ConsultsWhenElfGroupComplete) {
  auto S = makeSantaClaus(GetParam(), /*ReindeerTeam=*/3, /*ElfGroup=*/2);
  std::vector<std::thread> Pool;
  for (int I = 0; I != 2; ++I)
    Pool.emplace_back([&] { S->elf(); });
  EXPECT_EQ(S->santa(), SantaService::Consult);
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(S->deliveries(), 0);
  EXPECT_EQ(S->consultations(), 1);
}

TEST_P(SantaClausTest, SantaSleepsUntilAGroupForms) {
  auto S = makeSantaClaus(GetParam(), /*ReindeerTeam=*/2, /*ElfGroup=*/2);
  std::atomic<bool> Served{false};
  std::thread Santa([&] {
    S->santa();
    Served = true;
  });
  // One reindeer and one elf: neither group is complete.
  std::thread R([&] { S->reindeer(); });
  std::thread E1([&] { S->elf(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Served.load());
  std::thread E2([&] { S->elf(); }); // Completes the elf group.
  Santa.join();
  EXPECT_TRUE(Served.load());
  EXPECT_EQ(S->consultations(), 1);
  E1.join();
  E2.join();
  // Release the lone reindeer with a second one and a final delivery.
  std::thread R2([&] { S->reindeer(); });
  EXPECT_EQ(S->santa(), SantaService::Toys);
  R.join();
  R2.join();
  EXPECT_EQ(S->deliveries(), 1);
}

TEST_P(SantaClausTest, ReindeerHavePriorityOverElves) {
  auto S = makeSantaClaus(GetParam(), /*ReindeerTeam=*/2, /*ElfGroup=*/2);
  // Both groups are ready before Santa looks.
  std::vector<std::thread> Pool;
  for (int I = 0; I != 2; ++I)
    Pool.emplace_back([&] { S->reindeer(); });
  for (int I = 0; I != 2; ++I)
    Pool.emplace_back([&] { S->elf(); });
  // Poll the waiting counts (not a sleep) until both groups are fully
  // registered; only then is "reindeer first" a hard guarantee.
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (S->reindeerWaiting() < 2 || S->elvesWaiting() < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
        << "arrivals never registered";
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(S->santa(), SantaService::Toys);
  EXPECT_EQ(S->santa(), SantaService::Consult);
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(S->deliveries(), 1);
  EXPECT_EQ(S->consultations(), 1);
}

// TSan-clean stress: full classic configuration (9 reindeer, 3-elf
// groups) under concurrent arrivals, with conservation oracles.
TEST_P(SantaClausTest, StressConservesGroupAccounting) {
  constexpr int64_t Deliveries = 40;
  constexpr int64_t Consultations = 120;
  auto S = makeSantaClaus(GetParam());

  auto ReindeerLeft = std::atomic<int64_t>(9 * Deliveries);
  auto ElvesLeft = std::atomic<int64_t>(3 * Consultations);
  std::vector<std::thread> Pool;
  Pool.emplace_back([&] {
    for (int64_t I = 0; I != Deliveries + Consultations; ++I)
      S->santa();
  });
  for (int T = 0; T != 9; ++T) {
    Pool.emplace_back([&] {
      while (ReindeerLeft.fetch_sub(1) > 0)
        S->reindeer();
    });
  }
  for (int T = 0; T != 6; ++T) {
    Pool.emplace_back([&] {
      while (ElvesLeft.fetch_sub(1) > 0)
        S->elf();
    });
  }
  for (auto &T : Pool)
    T.join();

  EXPECT_EQ(S->deliveries(), Deliveries);
  EXPECT_EQ(S->consultations(), Consultations);
}

} // namespace

//===- tests/problems/DifferentialOracleTest.cpp - Cross-mechanism oracle ---===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The differential signaling oracle: every problem monitor is driven with
// the *identical* seeded operation sequence under every mechanism x
// backend combination, and the observable history summary must agree
// across all combinations. The explicit implementation serves as the
// reference; a signaling bug in a relay policy shows up as a diverging
// summary (conservation broken, FIFO order violated) or as a hang (lost
// wakeup — caught by the ctest timeout, since every sequence is designed
// to terminate iff no signal is lost).
//
// Op sequences are derived once per test from AUTOSYNCH_SEEDED_RNG and
// replayed byte-identically for each combination.
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "TestUtil.h"
#include "problems/BoundedBuffer.h"
#include "problems/CyclicBarrier.h"
#include "problems/DiningPhilosophers.h"
#include "problems/H2O.h"
#include "problems/ParamBoundedBuffer.h"
#include "problems/ReadersWriters.h"
#include "problems/RoundRobin.h"
#include "problems/SantaClaus.h"
#include "problems/SleepingBarber.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

struct Combo {
  Mechanism M;
  sync::Backend B;
};

const std::vector<Combo> &allCombos() {
  static const std::vector<Combo> Combos = {
      {Mechanism::Explicit, sync::Backend::Std},
      {Mechanism::Explicit, sync::Backend::Futex},
      {Mechanism::Baseline, sync::Backend::Std},
      {Mechanism::Baseline, sync::Backend::Futex},
      {Mechanism::AutoSynchT, sync::Backend::Std},
      {Mechanism::AutoSynchT, sync::Backend::Futex},
      {Mechanism::AutoSynch, sync::Backend::Std},
      {Mechanism::AutoSynch, sync::Backend::Futex},
  };
  return Combos;
}

std::string comboName(const Combo &C) {
  return std::string(mechanismName(C.M)) + "/" +
         sync::backendName(C.B);
}

/// Runs \p Produce for every combination and asserts each combination's
/// observable summary equals the first one's (and \p Check holds per run).
void differential(
    const std::function<std::vector<int64_t>(const Combo &)> &History) {
  const std::vector<Combo> &Combos = allCombos();
  std::vector<int64_t> Reference;
  for (size_t I = 0; I != Combos.size(); ++I) {
    std::vector<int64_t> Summary = History(Combos[I]);
    if (I == 0) {
      Reference = std::move(Summary);
      continue;
    }
    EXPECT_EQ(Summary, Reference)
        << comboName(Combos[I]) << " diverges from "
        << comboName(Combos[0]);
  }
}

TEST(DifferentialOracleTest, BoundedBufferFifoSequence) {
  // Single producer, single consumer: the buffer guarantees exact FIFO,
  // so the consumed sequence is fully deterministic — the strongest
  // differential observable.
  AUTOSYNCH_SEEDED_RNG(R, 101);
  constexpr int64_t Items = 800;
  std::vector<int64_t> Produced;
  for (int64_t I = 0; I != Items; ++I)
    Produced.push_back(R.range(-1000, 1000));

  differential([&](const Combo &C) {
    auto B = makeBoundedBuffer(C.M, 8, C.B);
    std::vector<int64_t> Consumed;
    Consumed.reserve(Items);
    std::thread Producer([&] {
      for (int64_t V : Produced)
        B->put(V);
    });
    for (int64_t I = 0; I != Items; ++I)
      Consumed.push_back(B->take());
    Producer.join();
    EXPECT_EQ(Consumed, Produced) << comboName(C) << ": FIFO violated";
    Consumed.push_back(B->size()); // Must be 0.
    return Consumed;
  });
}

TEST(DifferentialOracleTest, BoundedBufferContendedConservation) {
  // Multiple producers/consumers: the arrival interleaving is scheduler-
  // dependent, but the multiset of consumed items is not.
  AUTOSYNCH_SEEDED_RNG(R, 202);
  constexpr int Producers = 3, Consumers = 3;
  constexpr int64_t PerProducer = 300;
  std::vector<std::vector<int64_t>> Values(Producers);
  for (auto &V : Values)
    for (int64_t I = 0; I != PerProducer; ++I)
      V.push_back(R.range(1, 1 << 20));

  differential([&](const Combo &C) {
    auto B = makeBoundedBuffer(C.M, 4, C.B);
    std::vector<std::vector<int64_t>> Consumed(Consumers);
    std::vector<std::thread> Pool;
    for (int P = 0; P != Producers; ++P)
      Pool.emplace_back([&, P] {
        for (int64_t V : Values[P])
          B->put(V);
      });
    for (int Cons = 0; Cons != Consumers; ++Cons)
      Pool.emplace_back([&, Cons] {
        for (int64_t I = 0; I != PerProducer; ++I)
          Consumed[Cons].push_back(B->take());
      });
    for (auto &T : Pool)
      T.join();
    std::vector<int64_t> All;
    for (auto &V : Consumed)
      All.insert(All.end(), V.begin(), V.end());
    std::sort(All.begin(), All.end());
    All.push_back(B->size());
    return All; // Sorted multiset must match across combos.
  });
}

TEST(DifferentialOracleTest, ParamBoundedBufferBatchConservation) {
  AUTOSYNCH_SEEDED_RNG(R, 303);
  // Precompute a terminating batch schedule: supply exactly covers demand.
  constexpr int Consumers = 3;
  std::vector<std::vector<int64_t>> Takes(Consumers);
  int64_t Total = 0;
  for (auto &T : Takes)
    for (int I = 0; I != 60; ++I) {
      T.push_back(R.range(1, 6));
      Total += T.back();
    }
  std::vector<int64_t> Puts;
  for (int64_t Left = Total; Left > 0;) {
    int64_t N = std::min<int64_t>(Left, R.range(1, 8));
    Puts.push_back(N);
    Left -= N;
  }

  differential([&](const Combo &C) {
    auto B = makeParamBoundedBuffer(C.M, 16, C.B);
    std::vector<std::thread> Pool;
    Pool.emplace_back([&] {
      for (int64_t N : Puts)
        B->put(N);
    });
    for (int Cons = 0; Cons != Consumers; ++Cons)
      Pool.emplace_back([&, Cons] {
        for (int64_t N : Takes[Cons])
          B->take(N);
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{B->size()}; // Drained exactly.
  });
}

TEST(DifferentialOracleTest, H2OMoleculeConservation) {
  constexpr int64_t Molecules = 150;
  constexpr int HThreads = 4;
  differential([&](const Combo &C) {
    auto W = makeH2O(C.M, C.B);
    std::atomic<int64_t> HLeft{2 * Molecules};
    std::vector<std::thread> Pool;
    Pool.emplace_back([&] {
      for (int64_t I = 0; I != Molecules; ++I)
        W->oxygen();
    });
    for (int T = 0; T != HThreads; ++T)
      Pool.emplace_back([&] {
        while (HLeft.fetch_sub(1) > 0)
          W->hydrogen();
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{W->molecules()};
  });
}

TEST(DifferentialOracleTest, SleepingBarberEveryCutHappens) {
  constexpr int64_t Cuts = 200;
  constexpr int Customers = 4;
  differential([&](const Combo &C) {
    auto S = makeSleepingBarber(C.M, 3, C.B);
    std::atomic<int64_t> CutsLeft{Cuts};
    std::vector<std::thread> Pool;
    Pool.emplace_back([&] {
      for (int64_t I = 0; I != Cuts; ++I)
        S->cutHair();
    });
    for (int T = 0; T != Customers; ++T)
      Pool.emplace_back([&] {
        // Claim a cut first, then retry balks until it happens: total
        // successful haircuts exactly matches the barber's quota.
        while (CutsLeft.fetch_sub(1) > 0)
          while (!S->getHaircut())
            std::this_thread::yield();
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{S->haircuts()};
  });
}

TEST(DifferentialOracleTest, RoundRobinStrictRotation) {
  constexpr int Threads = 4;
  constexpr int64_t Rounds = 120;
  differential([&](const Combo &C) {
    auto RR = makeRoundRobin(C.M, Threads, C.B);
    std::vector<std::thread> Pool;
    for (int T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] {
        for (int64_t I = 0; I != Rounds; ++I)
          RR->access(T);
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{RR->accesses()};
  });
}

TEST(DifferentialOracleTest, ReadersWritersOpConservation) {
  AUTOSYNCH_SEEDED_RNG(R, 404);
  constexpr int Actors = 4;
  // Identical per-actor op scripts (true = read).
  std::vector<std::vector<bool>> Script(Actors);
  for (auto &S : Script)
    for (int I = 0; I != 150; ++I)
      S.push_back(R.chance(3, 4));

  differential([&](const Combo &C) {
    auto RW = makeReadersWriters(C.M, C.B);
    std::vector<std::thread> Pool;
    for (int A = 0; A != Actors; ++A)
      Pool.emplace_back([&, A] {
        for (bool IsRead : Script[A]) {
          if (IsRead) {
            RW->startRead();
            RW->endRead();
          } else {
            RW->startWrite();
            RW->endWrite();
          }
        }
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{RW->reads(), RW->writes()};
  });
}

TEST(DifferentialOracleTest, DiningPhilosophersMealConservation) {
  constexpr int Philosophers = 5;
  constexpr int64_t Meals = 80;
  differential([&](const Combo &C) {
    auto D = makeDiningPhilosophers(C.M, Philosophers, C.B);
    std::vector<std::thread> Pool;
    for (int P = 0; P != Philosophers; ++P)
      Pool.emplace_back([&, P] {
        for (int64_t I = 0; I != Meals; ++I) {
          D->pickUp(P);
          D->putDown(P);
        }
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{D->meals()};
  });
}

TEST(DifferentialOracleTest, CyclicBarrierGenerationAccounting) {
  constexpr int Parties = 4;
  constexpr int64_t Generations = 100;
  differential([&](const Combo &C) {
    auto B = makeCyclicBarrier(C.M, Parties, C.B);
    std::vector<std::vector<int64_t>> Indices(Parties);
    std::vector<std::thread> Pool;
    for (int P = 0; P != Parties; ++P)
      Pool.emplace_back([&, P] {
        for (int64_t G = 0; G != Generations; ++G)
          Indices[P].push_back(B->await());
      });
    for (auto &T : Pool)
      T.join();
    // FIFO observable: per generation each index 0..P-1 appears once, so
    // the overall index histogram is flat at Generations.
    std::vector<int64_t> Histogram(Parties, 0);
    for (auto &V : Indices)
      for (int64_t I : V)
        ++Histogram[I];
    Histogram.push_back(B->trips());
    return Histogram;
  });
}

TEST(DifferentialOracleTest, SantaClausGroupConservation) {
  constexpr int64_t Deliveries = 20;
  constexpr int64_t Consultations = 60;
  differential([&](const Combo &C) {
    auto S = makeSantaClaus(C.M, /*ReindeerTeam=*/5, /*ElfGroup=*/3, C.B);
    std::atomic<int64_t> RLeft{5 * Deliveries};
    std::atomic<int64_t> ELeft{3 * Consultations};
    std::vector<std::thread> Pool;
    Pool.emplace_back([&] {
      for (int64_t I = 0; I != Deliveries + Consultations; ++I)
        S->santa();
    });
    for (int T = 0; T != 5; ++T)
      Pool.emplace_back([&] {
        while (RLeft.fetch_sub(1) > 0)
          S->reindeer();
      });
    for (int T = 0; T != 6; ++T)
      Pool.emplace_back([&] {
        while (ELeft.fetch_sub(1) > 0)
          S->elf();
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{S->deliveries(), S->consultations()};
  });
}

} // namespace

//===- tests/problems/SleepingBarberTest.cpp - Barber tests -----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "problems/SleepingBarber.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

class SleepingBarberTest : public ::testing::TestWithParam<Mechanism> {};

INSTANTIATE_TEST_SUITE_P(Mechanisms, SleepingBarberTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

TEST_P(SleepingBarberTest, OneCustomerOneCut) {
  auto Shop = makeSleepingBarber(GetParam(), 4);
  std::thread Customer([&] { EXPECT_TRUE(Shop->getHaircut()); });
  Shop->cutHair();
  Customer.join();
  EXPECT_EQ(Shop->haircuts(), 1);
}

TEST_P(SleepingBarberTest, BarberSleepsUntilCustomerArrives) {
  auto Shop = makeSleepingBarber(GetParam(), 4);
  std::atomic<bool> CutDone{false};
  std::thread Barber([&] {
    Shop->cutHair(); // Sleeps: no customer yet.
    CutDone = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(CutDone.load());
  std::thread Customer([&] { EXPECT_TRUE(Shop->getHaircut()); });
  Barber.join();
  Customer.join();
  EXPECT_TRUE(CutDone.load());
}

TEST_P(SleepingBarberTest, AllWaitingCustomersEventuallyServed) {
  auto Shop = makeSleepingBarber(GetParam(), 8);
  constexpr int Customers = 8;
  std::vector<std::thread> Pool;
  std::atomic<int> Served{0};
  for (int I = 0; I != Customers; ++I) {
    Pool.emplace_back([&] {
      if (Shop->getHaircut())
        ++Served;
    });
  }
  std::thread Barber([&] {
    for (int I = 0; I != Customers; ++I)
      Shop->cutHair();
  });
  for (auto &T : Pool)
    T.join();
  Barber.join();
  EXPECT_EQ(Served.load(), Customers); // 8 chairs: nobody balks.
  EXPECT_EQ(Shop->haircuts(), Customers);
}

TEST_P(SleepingBarberTest, CustomersBalkWhenChairsFull) {
  // 1 chair, no barber activity: whichever of two customers sits first
  // occupies the only chair, so the other must leave — regardless of
  // scheduling order.
  auto Shop = makeSleepingBarber(GetParam(), 1);
  std::atomic<int> Served{0}, Balked{0};
  auto Customer = [&] {
    if (Shop->getHaircut())
      ++Served;
    else
      ++Balked;
  };
  std::thread C1(Customer);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread C2(Customer);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Shop->cutHair(); // Serve the seated customer.
  C1.join();
  C2.join();
  EXPECT_EQ(Served.load(), 1);
  EXPECT_EQ(Balked.load(), 1);
  EXPECT_EQ(Shop->haircuts(), 1);
}

TEST_P(SleepingBarberTest, SaturationRoundTrip) {
  auto Shop = makeSleepingBarber(GetParam(), 4);
  constexpr int Customers = 4;
  constexpr int CutsPerCustomer = 100;
  std::atomic<int64_t> TotalCuts{0};

  std::vector<std::thread> Pool;
  for (int I = 0; I != Customers; ++I) {
    Pool.emplace_back([&] {
      for (int Done = 0; Done != CutsPerCustomer;) {
        if (Shop->getHaircut()) {
          ++Done;
          ++TotalCuts;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::thread Barber([&] {
    for (int I = 0; I != Customers * CutsPerCustomer; ++I)
      Shop->cutHair();
  });
  for (auto &T : Pool)
    T.join();
  Barber.join();
  EXPECT_EQ(TotalCuts.load(), Customers * CutsPerCustomer);
  EXPECT_EQ(Shop->haircuts(), Customers * CutsPerCustomer);
}

} // namespace

//===- tests/problems/H2OTest.cpp - H2O barrier tests -----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "problems/H2O.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

class H2OTest : public ::testing::TestWithParam<Mechanism> {};

INSTANTIATE_TEST_SUITE_P(Mechanisms, H2OTest, testutil::allMechanisms(),
                         testutil::mechanismTestName);

TEST_P(H2OTest, OneMolecule) {
  auto W = makeH2O(GetParam());
  std::thread H1([&] { W->hydrogen(); });
  std::thread H2([&] { W->hydrogen(); });
  W->oxygen();
  H1.join();
  H2.join();
  EXPECT_EQ(W->molecules(), 1);
}

TEST_P(H2OTest, OxygenWaitsForTwoHydrogens) {
  auto W = makeH2O(GetParam());
  std::atomic<bool> OxygenDone{false};
  std::thread O([&] {
    W->oxygen();
    OxygenDone = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(OxygenDone.load());
  std::thread H1([&] { W->hydrogen(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(OxygenDone.load()); // One hydrogen is not enough.
  std::thread H2([&] { W->hydrogen(); });
  O.join();
  H1.join();
  H2.join();
  EXPECT_TRUE(OxygenDone.load());
}

TEST_P(H2OTest, HydrogenWaitsForOxygen) {
  auto W = makeH2O(GetParam());
  std::atomic<int> HDone{0};
  std::thread H1([&] {
    W->hydrogen();
    ++HDone;
  });
  std::thread H2([&] {
    W->hydrogen();
    ++HDone;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(HDone.load(), 0); // No oxygen yet: both blocked.
  W->oxygen();
  H1.join();
  H2.join();
  EXPECT_EQ(HDone.load(), 2);
}

TEST_P(H2OTest, StoichiometryUnderLoad) {
  // The paper's setup: a single oxygen thread, many hydrogen threads.
  // Hydrogens pull work from a shared counter: with fixed per-thread
  // quotas a lagging thread could own the last two H arrivals, and no
  // schedule can bond two hydrogens living in one sequential thread.
  auto W = makeH2O(GetParam());
  constexpr int HThreads = 8;
  constexpr int64_t TotalH = 400; // -> 200 molecules.
  std::atomic<int64_t> Remaining{TotalH};
  std::vector<std::thread> Pool;
  for (int I = 0; I != HThreads; ++I) {
    Pool.emplace_back([&] {
      while (Remaining.fetch_sub(1) > 0)
        W->hydrogen();
    });
  }
  std::thread O([&] {
    for (int J = 0; J != TotalH / 2; ++J)
      W->oxygen();
  });
  for (auto &T : Pool)
    T.join();
  O.join();
  EXPECT_EQ(W->molecules(), TotalH / 2);
}

TEST_P(H2OTest, MultipleOxygenThreads) {
  auto W = makeH2O(GetParam());
  constexpr int64_t Molecules = 60;
  std::atomic<int64_t> HRemaining{2 * Molecules};
  std::vector<std::thread> Pool;
  for (int I = 0; I != 4; ++I) { // 4 H threads pulling shared work.
    Pool.emplace_back([&] {
      while (HRemaining.fetch_sub(1) > 0)
        W->hydrogen();
    });
  }
  for (int I = 0; I != 2; ++I) { // 2 O threads.
    Pool.emplace_back([&] {
      for (int64_t J = 0; J != Molecules / 2; ++J)
        W->oxygen();
    });
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(W->molecules(), Molecules);
}

} // namespace

//===- tests/problems/ParamBoundedBufferTest.cpp - Fig. 1 buffer tests ------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "TestUtil.h"
#include "problems/ParamBoundedBuffer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

class ParamBoundedBufferTest : public ::testing::TestWithParam<Mechanism> {
};

INSTANTIATE_TEST_SUITE_P(Mechanisms, ParamBoundedBufferTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

TEST_P(ParamBoundedBufferTest, BatchPutTake) {
  auto B = makeParamBoundedBuffer(GetParam(), 64);
  B->put(10);
  B->put(20);
  EXPECT_EQ(B->size(), 30);
  B->take(25);
  EXPECT_EQ(B->size(), 5);
}

TEST_P(ParamBoundedBufferTest, ProducerBlocksOnInsufficientSpace) {
  auto B = makeParamBoundedBuffer(GetParam(), 10);
  B->put(8);
  std::atomic<bool> Done{false};
  std::thread P([&] {
    B->put(5); // Needs 5 free; only 2 free.
    Done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Done.load());
  B->take(4); // Now 4 + 2 >= 5 free... 6 free.
  P.join();
  EXPECT_EQ(B->size(), 9);
}

TEST_P(ParamBoundedBufferTest, ConsumerBlocksOnInsufficientItems) {
  auto B = makeParamBoundedBuffer(GetParam(), 64);
  B->put(3);
  std::atomic<bool> Done{false};
  std::thread C([&] {
    B->take(10);
    Done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Done.load());
  B->put(7);
  C.join();
  EXPECT_EQ(B->size(), 0);
}

TEST_P(ParamBoundedBufferTest, PaperScenarioSelectiveWakeup) {
  // §3's example: consumers wanting 48 items each; 64 items arrive; only
  // one can be served until more arrive. No consumer may be lost.
  auto B = makeParamBoundedBuffer(GetParam(), 256);
  constexpr int Consumers = 5;
  std::atomic<int> Served{0};
  std::vector<std::thread> Pool;
  for (int I = 0; I != Consumers; ++I) {
    Pool.emplace_back([&] {
      B->take(48);
      ++Served;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  B->put(64);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(Served.load(), 1); // 64 - 48 = 16 < 48: one consumer only.
  for (int I = 0; I != Consumers - 1; ++I)
    B->put(48);
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Served.load(), Consumers);
  EXPECT_EQ(B->size(), 16);
}

TEST_P(ParamBoundedBufferTest, RandomBatchesConserveItems) {
  // The Fig. 14 workload in miniature: 1 producer, N consumers, random
  // batch sizes, totals balanced up front.
  auto B = makeParamBoundedBuffer(GetParam(), 256);
  constexpr int Consumers = 4;
  constexpr int OpsPerConsumer = 200;

  // Precompute batches so production exactly covers demand.
  std::vector<std::vector<int64_t>> Batches(Consumers);
  int64_t Total = 0;
  AUTOSYNCH_SEEDED_RNG(R, 99);
  for (auto &Seq : Batches) {
    for (int I = 0; I != OpsPerConsumer; ++I) {
      Seq.push_back(R.range(1, 128));
      Total += Seq.back();
    }
  }

  std::vector<std::thread> Pool;
  for (int C = 0; C != Consumers; ++C) {
    Pool.emplace_back([&, C] {
      for (int64_t N : Batches[C])
        B->take(N);
    });
  }
  std::thread Producer([&] {
    // Worker thread: no SCOPED_TRACE (it is thread-local in gtest), but
    // the producer's stream still follows AUTOSYNCH_TEST_SEED.
    Rng PR(testutil::effectiveSeed(7));
    int64_t Remaining = Total;
    while (Remaining > 0) {
      int64_t N = std::min<int64_t>(Remaining, PR.range(1, 128));
      B->put(N);
      Remaining -= N;
    }
  });
  for (auto &T : Pool)
    T.join();
  Producer.join();
  EXPECT_EQ(B->size(), 0);
}

} // namespace

//===- tests/problems/ProblemTestUtil.h - Problem test helpers -*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TESTS_PROBLEMS_PROBLEMTESTUTIL_H
#define AUTOSYNCH_TESTS_PROBLEMS_PROBLEMTESTUTIL_H

#include "problems/Mechanism.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

namespace autosynch::testutil {

/// All four mechanisms for INSTANTIATE_TEST_SUITE_P.
inline auto allMechanisms() {
  return ::testing::Values(Mechanism::Explicit, Mechanism::Baseline,
                           Mechanism::AutoSynchT, Mechanism::AutoSynch);
}

/// Test-name-safe mechanism label.
inline std::string
mechanismTestName(const ::testing::TestParamInfo<Mechanism> &Info) {
  std::string Name = mechanismName(Info.param);
  std::string Out;
  for (char C : Name)
    if (std::isalnum(static_cast<unsigned char>(C)))
      Out += C;
  return Out;
}

} // namespace autosynch::testutil

#endif // AUTOSYNCH_TESTS_PROBLEMS_PROBLEMTESTUTIL_H

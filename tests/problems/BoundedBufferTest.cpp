//===- tests/problems/BoundedBufferTest.cpp - Bounded buffer tests ----------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "problems/BoundedBuffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

class BoundedBufferTest : public ::testing::TestWithParam<Mechanism> {};

INSTANTIATE_TEST_SUITE_P(Mechanisms, BoundedBufferTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

TEST_P(BoundedBufferTest, SingleThreadPutTake) {
  auto B = makeBoundedBuffer(GetParam(), 4);
  B->put(11);
  B->put(22);
  EXPECT_EQ(B->size(), 2);
  EXPECT_EQ(B->take(), 11); // FIFO.
  EXPECT_EQ(B->take(), 22);
  EXPECT_EQ(B->size(), 0);
}

TEST_P(BoundedBufferTest, FillsToCapacityExactly) {
  auto B = makeBoundedBuffer(GetParam(), 3);
  B->put(1);
  B->put(2);
  B->put(3);
  EXPECT_EQ(B->size(), 3);
  EXPECT_EQ(B->take(), 1);
  B->put(4); // Space freed; must not block.
  EXPECT_EQ(B->size(), 3);
}

TEST_P(BoundedBufferTest, ProducerBlocksUntilConsumerFreesSpace) {
  auto B = makeBoundedBuffer(GetParam(), 1);
  B->put(1);
  std::atomic<bool> SecondPutDone{false};
  std::thread Producer([&] {
    B->put(2); // Blocks: buffer full.
    SecondPutDone = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(SecondPutDone.load());
  EXPECT_EQ(B->take(), 1);
  Producer.join();
  EXPECT_TRUE(SecondPutDone.load());
  EXPECT_EQ(B->take(), 2);
}

TEST_P(BoundedBufferTest, ConsumerBlocksUntilProducerArrives) {
  auto B = makeBoundedBuffer(GetParam(), 4);
  std::atomic<bool> TookSomething{false};
  std::thread Consumer([&] {
    EXPECT_EQ(B->take(), 99);
    TookSomething = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(TookSomething.load());
  B->put(99);
  Consumer.join();
}

TEST_P(BoundedBufferTest, ConservationUnderContention) {
  auto B = makeBoundedBuffer(GetParam(), 8);
  constexpr int Producers = 4, Consumers = 4;
  constexpr int64_t OpsPerThread = 1000;

  std::atomic<int64_t> SumPut{0}, SumTaken{0};
  std::vector<std::thread> Pool;
  for (int P = 0; P != Producers; ++P) {
    Pool.emplace_back([&, P] {
      for (int64_t I = 0; I != OpsPerThread; ++I) {
        int64_t Item = P * OpsPerThread + I + 1;
        B->put(Item);
        SumPut += Item;
      }
    });
  }
  for (int C = 0; C != Consumers; ++C) {
    Pool.emplace_back([&] {
      for (int64_t I = 0; I != OpsPerThread; ++I)
        SumTaken += B->take();
    });
  }
  for (auto &T : Pool)
    T.join();

  EXPECT_EQ(B->size(), 0);
  EXPECT_EQ(SumPut.load(), SumTaken.load()); // No item lost or duplicated.
}

TEST_P(BoundedBufferTest, CapacityNeverExceeded) {
  auto B = makeBoundedBuffer(GetParam(), 4);
  std::atomic<bool> Stop{false};
  std::atomic<int64_t> MaxSeen{0};
  std::thread Observer([&] {
    while (!Stop) {
      int64_t S = B->size();
      int64_t Prev = MaxSeen.load();
      while (S > Prev && !MaxSeen.compare_exchange_weak(Prev, S))
        ;
    }
  });

  std::vector<std::thread> Pool;
  for (int P = 0; P != 2; ++P)
    Pool.emplace_back([&] {
      for (int I = 0; I != 2000; ++I)
        B->put(I);
    });
  for (int C = 0; C != 2; ++C)
    Pool.emplace_back([&] {
      for (int I = 0; I != 2000; ++I)
        B->take();
    });
  for (auto &T : Pool)
    T.join();
  Stop = true;
  Observer.join();
  EXPECT_LE(MaxSeen.load(), 4);
}

} // namespace

//===- tests/problems/RoundRobinTest.cpp - Round-robin tests ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "problems/RoundRobin.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

class RoundRobinTest : public ::testing::TestWithParam<Mechanism> {};

INSTANTIATE_TEST_SUITE_P(Mechanisms, RoundRobinTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

TEST_P(RoundRobinTest, SingleThreadIsTrivial) {
  auto RR = makeRoundRobin(GetParam(), 1);
  for (int I = 0; I != 10; ++I)
    RR->access(0);
  EXPECT_EQ(RR->accesses(), 10);
}

TEST_P(RoundRobinTest, TwoThreadsAlternate) {
  auto RR = makeRoundRobin(GetParam(), 2);
  constexpr int Rounds = 200;
  std::thread T0([&] {
    for (int I = 0; I != Rounds; ++I)
      RR->access(0);
  });
  std::thread T1([&] {
    for (int I = 0; I != Rounds; ++I)
      RR->access(1);
  });
  T0.join();
  T1.join();
  EXPECT_EQ(RR->accesses(), 2 * Rounds);
}

TEST_P(RoundRobinTest, AccessOrderIsStrictlyCyclic) {
  constexpr int Threads = 4;
  constexpr int Rounds = 50;
  auto RR = makeRoundRobin(GetParam(), Threads);

  // Record the global order of accesses (guarded by a plain mutex *after*
  // the monitor admitted us; the monitor enforces the order).
  std::mutex OrderMutex;
  std::vector<int> Order;
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T) {
    Pool.emplace_back([&, T] {
      for (int I = 0; I != Rounds; ++I) {
        RR->access(T);
        std::lock_guard<std::mutex> G(OrderMutex);
        Order.push_back(T);
      }
    });
  }
  for (auto &Th : Pool)
    Th.join();

  ASSERT_EQ(Order.size(), static_cast<size_t>(Threads * Rounds));
  // The recording mutex is taken outside the monitor, so adjacent swaps
  // can appear in the log; verify each thread's own appearances instead:
  // thread T must appear exactly Rounds times.
  std::vector<int> Counts(Threads, 0);
  for (int T : Order)
    ++Counts[T];
  for (int T = 0; T != Threads; ++T)
    EXPECT_EQ(Counts[T], Rounds);
  EXPECT_EQ(RR->accesses(), Threads * Rounds);
}

TEST_P(RoundRobinTest, LateStartersDoNotBreakOrder) {
  constexpr int Threads = 3;
  auto RR = makeRoundRobin(GetParam(), Threads);
  std::vector<std::thread> Pool;
  // Start threads in reverse turn order with staggered delays.
  for (int T = Threads - 1; T >= 0; --T) {
    Pool.emplace_back([&, T] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5 * T));
      for (int I = 0; I != 20; ++I)
        RR->access(T);
    });
  }
  for (auto &Th : Pool)
    Th.join();
  EXPECT_EQ(RR->accesses(), Threads * 20);
}

} // namespace

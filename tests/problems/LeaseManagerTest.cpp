//===- tests/problems/LeaseManagerTest.cpp - Lease manager -----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "TestUtil.h"
#include "problems/LeaseManager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

constexpr uint64_t Unbounded = ~uint64_t{0};
constexpr uint64_t ShortNs = 15u * 1000 * 1000; // 15 ms

class LeaseManagerTest : public ::testing::TestWithParam<Mechanism> {};

TEST_P(LeaseManagerTest, GrantsUpToPoolSizeThenTimesOut) {
  auto L = makeLeaseManager(GetParam(), 2);
  EXPECT_EQ(L->available(), 2);
  EXPECT_TRUE(L->acquire(Unbounded));
  EXPECT_TRUE(L->acquire(ShortNs));
  EXPECT_EQ(L->available(), 0);
  EXPECT_FALSE(L->acquire(ShortNs));
  EXPECT_EQ(L->grants(), 2);
  EXPECT_EQ(L->timeouts(), 1);
  L->release();
  EXPECT_TRUE(L->acquire(ShortNs));
  L->release();
  L->release();
  EXPECT_EQ(L->available(), 2);
}

TEST_P(LeaseManagerTest, ReleaseWakesBlockedAcquirer) {
  auto L = makeLeaseManager(GetParam(), 1);
  ASSERT_TRUE(L->acquire(Unbounded));
  std::thread Waiter([&] { EXPECT_TRUE(L->acquire(Unbounded)); });
  // Whether the waiter has blocked yet or not, the release must feed it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  L->release();
  Waiter.join();
  EXPECT_EQ(L->grants(), 2);
  EXPECT_EQ(L->available(), 0);
  L->release();
}

TEST_P(LeaseManagerTest, ContendedConservation) {
  constexpr int Threads = 6;
  constexpr int64_t Cycles = 200;
  auto L = makeLeaseManager(GetParam(), 3);
  std::atomic<int64_t> MaxedOut{0};
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T)
    Pool.emplace_back([&] {
      for (int64_t I = 0; I != Cycles; ++I) {
        // Mixed bounds: unbounded acquires keep the quota exact; the
        // occasional bounded acquire that expires is retried.
        if (I % 5 == 0) {
          while (!L->acquire(ShortNs))
            MaxedOut.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_TRUE(L->acquire(Unbounded));
        }
        L->release();
      }
    });
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(L->available(), 3);
  EXPECT_EQ(L->grants(), Threads * Cycles);
  EXPECT_EQ(L->timeouts(), MaxedOut.load());
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, LeaseManagerTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

} // namespace

//===- tests/problems/DiningPhilosophersTest.cpp - Philosophers tests -------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "problems/DiningPhilosophers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

class DiningPhilosophersTest : public ::testing::TestWithParam<Mechanism> {
};

INSTANTIATE_TEST_SUITE_P(Mechanisms, DiningPhilosophersTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

TEST_P(DiningPhilosophersTest, SinglePhilosopherPairEats) {
  auto Table = makeDiningPhilosophers(GetParam(), 2);
  Table->pickUp(0);
  Table->putDown(0);
  Table->pickUp(1);
  Table->putDown(1);
  EXPECT_EQ(Table->meals(), 2);
}

TEST_P(DiningPhilosophersTest, NeighborBlocksWhileEating) {
  auto Table = makeDiningPhilosophers(GetParam(), 3);
  Table->pickUp(0); // Holds sticks 0 and 1.
  std::atomic<bool> NeighborAte{false};
  std::thread N([&] {
    Table->pickUp(1); // Needs sticks 1 and 2; stick 1 is taken.
    NeighborAte = true;
    Table->putDown(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(NeighborAte.load());
  Table->putDown(0);
  N.join();
  EXPECT_TRUE(NeighborAte.load());
}

TEST_P(DiningPhilosophersTest, OppositePhilosophersEatConcurrently) {
  auto Table = makeDiningPhilosophers(GetParam(), 4);
  Table->pickUp(0); // Sticks 0, 1.
  Table->pickUp(2); // Sticks 2, 3 — no conflict.
  Table->putDown(0);
  Table->putDown(2);
  EXPECT_EQ(Table->meals(), 2);
}

TEST_P(DiningPhilosophersTest, NoTwoNeighborsEverEatTogether) {
  constexpr int N = 5;
  constexpr int MealsEach = 100;
  auto Table = makeDiningPhilosophers(GetParam(), N);

  std::vector<std::atomic<bool>> Eating(N);
  for (auto &E : Eating)
    E = false;
  std::atomic<int> Violations{0};

  std::vector<std::thread> Pool;
  for (int P = 0; P != N; ++P) {
    Pool.emplace_back([&, P] {
      for (int I = 0; I != MealsEach; ++I) {
        Table->pickUp(P);
        // Holding both sticks: neighbours cannot be eating. Their eating
        // flags may not be cleared yet only if they still hold a stick we
        // just got — impossible — so a set flag is a real violation.
        if (Eating[(P + N - 1) % N].load() || Eating[(P + 1) % N].load())
          ++Violations;
        Eating[P] = true;
        Eating[P] = false;
        Table->putDown(P);
      }
    });
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Violations.load(), 0);
  EXPECT_EQ(Table->meals(), N * MealsEach);
}

} // namespace

//===- tests/problems/CyclicBarrierTest.cpp - FIFO cyclic barrier tests -----===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "problems/CyclicBarrier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

class CyclicBarrierTest : public ::testing::TestWithParam<Mechanism> {};

INSTANTIATE_TEST_SUITE_P(Mechanisms, CyclicBarrierTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

TEST_P(CyclicBarrierTest, SinglePartyNeverBlocks) {
  auto B = makeCyclicBarrier(GetParam(), 1);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(B->await(), 0); // Sole arrival trips every generation.
  EXPECT_EQ(B->trips(), 10);
  EXPECT_EQ(B->parties(), 1);
}

TEST_P(CyclicBarrierTest, GroupReleasesTogether) {
  constexpr int Parties = 4;
  auto B = makeCyclicBarrier(GetParam(), Parties);
  std::atomic<int> Crossed{0};
  std::vector<std::thread> Pool;
  for (int P = 0; P != Parties - 1; ++P) {
    Pool.emplace_back([&] {
      B->await();
      ++Crossed;
    });
  }
  // An incomplete group must hold.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(Crossed.load(), 0);
  B->await(); // Complete the group.
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Crossed.load(), Parties - 1);
  EXPECT_EQ(B->trips(), 1);
}

TEST_P(CyclicBarrierTest, ArrivalIndicesAreFifoWithinGeneration) {
  // Indices are handed out in monitor-entry order, so every generation
  // must distribute 0..P-1 exactly once (each index P*Generations times
  // overall) — the FIFO observable that survives concurrent logging.
  constexpr int Parties = 3;
  auto B = makeCyclicBarrier(GetParam(), Parties);
  std::vector<std::thread> Pool;
  std::mutex OrderMutex;
  std::vector<int64_t> Indices;
  constexpr int Generations = 40;
  for (int P = 0; P != Parties; ++P) {
    Pool.emplace_back([&] {
      for (int G = 0; G != Generations; ++G) {
        int64_t Index = B->await();
        std::lock_guard<std::mutex> Lock(OrderMutex);
        Indices.push_back(Index);
      }
    });
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(B->trips(), Generations);
  ASSERT_EQ(Indices.size(), static_cast<size_t>(Parties * Generations));
  // Every generation hands out each index exactly once.
  std::vector<int> Counts(Parties, 0);
  for (int64_t I : Indices) {
    ASSERT_GE(I, 0);
    ASSERT_LT(I, Parties);
    ++Counts[I];
  }
  for (int C : Counts)
    EXPECT_EQ(C, Generations);
}

TEST_P(CyclicBarrierTest, ReusableAcrossManyGenerations) {
  constexpr int Parties = 2;
  constexpr int Generations = 500;
  auto B = makeCyclicBarrier(GetParam(), Parties);
  std::thread Other([&] {
    for (int G = 0; G != Generations; ++G)
      B->await();
  });
  for (int G = 0; G != Generations; ++G)
    B->await();
  Other.join();
  EXPECT_EQ(B->trips(), Generations);
}

// TSan-clean stress: many parties, many generations, with the generation
// count cross-checked against every thread's crossing count.
TEST_P(CyclicBarrierTest, StressManyPartiesManyGenerations) {
  constexpr int Parties = 8;
  constexpr int Generations = 200;
  auto B = makeCyclicBarrier(GetParam(), Parties);
  std::atomic<int64_t> Crossings{0};
  std::vector<std::thread> Pool;
  for (int P = 0; P != Parties; ++P) {
    Pool.emplace_back([&] {
      for (int G = 0; G != Generations; ++G) {
        B->await();
        ++Crossings;
      }
    });
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Crossings.load(), static_cast<int64_t>(Parties) * Generations);
  EXPECT_EQ(B->trips(), Generations);
}

} // namespace

//===- tests/problems/TokenBucketTest.cpp - Token-bucket rate limiter ------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ProblemTestUtil.h"
#include "TestUtil.h"
#include "problems/TokenBucket.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

constexpr uint64_t Unbounded = ~uint64_t{0};
constexpr uint64_t ShortNs = 15u * 1000 * 1000; // 15 ms

class TokenBucketTest : public ::testing::TestWithParam<Mechanism> {};

TEST_P(TokenBucketTest, StartsFullAndSaturatesOnRefill) {
  auto B = makeTokenBucket(GetParam(), 10);
  EXPECT_EQ(B->tokens(), 10);
  EXPECT_TRUE(B->acquire(4, Unbounded));
  EXPECT_EQ(B->tokens(), 6);
  B->refill(100); // Caps at capacity.
  EXPECT_EQ(B->tokens(), 10);
}

TEST_P(TokenBucketTest, TimesOutWhenDemandExceedsSupply) {
  auto B = makeTokenBucket(GetParam(), 8);
  EXPECT_TRUE(B->acquire(8, Unbounded)); // Drain.
  EXPECT_FALSE(B->acquire(3, ShortNs));
  EXPECT_FALSE(B->acquire(8, ShortNs));
  EXPECT_EQ(B->grants(), 1);
  EXPECT_EQ(B->timeouts(), 2);
  EXPECT_EQ(B->tokens(), 0); // Timed-out demands take nothing.
  B->refill(3);
  EXPECT_TRUE(B->acquire(3, ShortNs));
  EXPECT_EQ(B->grants(), 2);
}

TEST_P(TokenBucketTest, RefillWakesDemandOfMatchingSize) {
  auto B = makeTokenBucket(GetParam(), 8);
  ASSERT_TRUE(B->acquire(8, Unbounded));
  std::thread Big([&] { EXPECT_TRUE(B->acquire(5, Unbounded)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  B->refill(2); // Not enough for the blocked demand of 5.
  B->refill(3); // Now it is.
  Big.join();
  EXPECT_EQ(B->tokens(), 0);
  EXPECT_EQ(B->grants(), 2);
}

TEST_P(TokenBucketTest, ContendedConservation) {
  // Producer/consumer with exact budgets: consumers demand a fixed
  // seeded schedule, one refiller supplies exactly the excess over the
  // initial fill, never overflowing the bucket (it checks headroom and
  // is the only token source). Every acquire is unbounded, so the run
  // terminates iff no wakeup is lost.
  AUTOSYNCH_SEEDED_RNG(R, 8811);
  constexpr int Consumers = 3;
  constexpr int64_t Capacity = 12;
  std::vector<std::vector<int64_t>> Demands(Consumers);
  int64_t Total = 0;
  for (auto &D : Demands)
    for (int I = 0; I != 60; ++I) {
      D.push_back(R.range(1, Capacity));
      Total += D.back();
    }

  auto B = makeTokenBucket(GetParam(), Capacity);
  std::vector<std::thread> Pool;
  for (int C = 0; C != Consumers; ++C)
    Pool.emplace_back([&, C] {
      for (int64_t N : Demands[C])
        EXPECT_TRUE(B->acquire(N, Unbounded));
    });
  Pool.emplace_back([&] {
    Rng RR(4142);
    int64_t Left = Total - Capacity;
    while (Left > 0) {
      int64_t N = std::min<int64_t>(Left, RR.range(1, 5));
      if (B->tokens() > Capacity - N) {
        std::this_thread::yield();
        continue;
      }
      B->refill(N);
      Left -= N;
    }
  });
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(B->tokens(), 0);
  EXPECT_EQ(B->grants(), Consumers * 60);
  EXPECT_EQ(B->timeouts(), 0);
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, TokenBucketTest,
                         testutil::allMechanisms(),
                         testutil::mechanismTestName);

} // namespace

#===- tests/translate/GoldenDiff.cmake - translator golden-file check -----===#
#
# Runs the freshly built autosynchc over the committed example specs and
# byte-compares the output against the golden headers under
# examples/generated/.  Invoked by ctest as:
#
#   cmake -DAUTOSYNCHC=<tool> -DEXAMPLES_DIR=<dir> -DWORK_DIR=<dir> \
#     -P GoldenDiff.cmake
#
#===------------------------------------------------------------------------===#

foreach(var AUTOSYNCHC EXAMPLES_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "GoldenDiff.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")

# Every committed spec is checked, so adding an .asynch file (plus its
# generated header) extends coverage automatically.
file(GLOB _spec_files "${EXAMPLES_DIR}/*.asynch")
if(NOT _spec_files)
  message(FATAL_ERROR "no .asynch specs found under ${EXAMPLES_DIR}")
endif()

set(_checked "")
foreach(spec_file IN LISTS _spec_files)
  get_filename_component(spec "${spec_file}" NAME_WE)
  list(APPEND _checked "${spec}.h")
  set(input "${EXAMPLES_DIR}/${spec}.asynch")
  set(output "${WORK_DIR}/${spec}.h")
  set(golden "${EXAMPLES_DIR}/generated/${spec}.h")

  execute_process(
    COMMAND "${AUTOSYNCHC}" "${input}" -o "${output}"
    RESULT_VARIABLE rc
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "autosynchc failed on ${input} (exit ${rc}):\n${stderr}")
  endif()

  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${output}" "${golden}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    # Show the actual divergence in the failure log.
    execute_process(COMMAND diff -u "${golden}" "${output}"
      OUTPUT_VARIABLE diff_text ERROR_QUIET)
    message(FATAL_ERROR
      "autosynchc output for ${spec}.asynch diverges from golden "
      "${golden}:\n${diff_text}")
  endif()
endforeach()

message(STATUS "golden files match: ${_checked}")

//===- tests/translate/TranslatorTest.cpp - autosynchc tests -----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "translate/Translate.h"

#include <gtest/gtest.h>

using namespace autosynch;
using namespace autosynch::translate;

namespace {

constexpr const char *BoundedBufferSource = R"(
monitor Buf(int capacity) {
  shared int count = 0;

  method put(int items) {
    waituntil(count + items <= capacity);
    count = count + items;
  }

  method take(int num) returns int {
    waituntil(count >= num);
    count = count - num;
    return num;
  }
}
)";

std::string translateOk(std::string_view Src) {
  TranslateResult R = translateMonitorSource(Src, "test.asynch");
  EXPECT_TRUE(R.ok());
  for (const ParseError &E : R.Errors)
    ADD_FAILURE() << E.toString();
  return R.Cpp;
}

std::string firstError(std::string_view Src) {
  TranslateResult R = translateMonitorSource(Src, "test.asynch");
  EXPECT_FALSE(R.ok());
  return R.Errors.empty() ? "" : R.Errors.front().Message;
}

//===----------------------------------------------------------------------===//
// Code generation
//===----------------------------------------------------------------------===//

TEST(TranslatorTest, GeneratesMonitorClass) {
  std::string Cpp = translateOk(BoundedBufferSource);
  EXPECT_NE(Cpp.find("class Buf : public autosynch::Monitor {"),
            std::string::npos);
  EXPECT_NE(Cpp.find("#include \"core/Monitor.h\""), std::string::npos);
  EXPECT_NE(Cpp.find("#ifndef AUTOSYNCHC_GEN_TEST_ASYNCH_H"),
            std::string::npos);
}

TEST(TranslatorTest, CtorParamBecomesSharedVariable) {
  std::string Cpp = translateOk(BoundedBufferSource);
  EXPECT_NE(Cpp.find("Shared<int64_t> capacity_;"), std::string::npos);
  EXPECT_NE(Cpp.find("capacity_(*this, \"capacity\", capacity)"),
            std::string::npos);
  EXPECT_NE(Cpp.find("autosynch::MonitorConfig Cfg = {}"),
            std::string::npos);
}

TEST(TranslatorTest, SharedDeclBecomesMember) {
  std::string Cpp = translateOk(BoundedBufferSource);
  EXPECT_NE(Cpp.find("Shared<int64_t> count_{*this, \"count\", 0};"),
            std::string::npos);
}

TEST(TranslatorTest, MethodsWrapBodiesInRegion) {
  std::string Cpp = translateOk(BoundedBufferSource);
  EXPECT_NE(Cpp.find("void put(int64_t items) {"), std::string::npos);
  EXPECT_NE(Cpp.find("int64_t take(int64_t num) {"), std::string::npos);
  // One Region per method (the paper's lock/unlock insertion, Fig. 5).
  size_t Count = 0;
  for (size_t Pos = Cpp.find("Region AutosynchRegion(*this);");
       Pos != std::string::npos;
       Pos = Cpp.find("Region AutosynchRegion(*this);", Pos + 1))
    ++Count;
  EXPECT_EQ(Count, 2u);
}

TEST(TranslatorTest, WaituntilCarriesLocalBindings) {
  std::string Cpp = translateOk(BoundedBufferSource);
  // Globalization bindings (paper §4.1): exactly the locals the predicate
  // mentions.
  EXPECT_NE(Cpp.find("waitUntil(\"count + items <= capacity\", "
                     "locals().bindInt(local(\"items\"), items));"),
            std::string::npos);
  EXPECT_NE(Cpp.find("waitUntil(\"count >= num\", "
                     "locals().bindInt(local(\"num\"), num));"),
            std::string::npos);
}

TEST(TranslatorTest, SharedOnlyPredicateRegisteredEagerly) {
  // Paper Fig. 5: static shared predicates registered in the constructor.
  std::string Cpp = translateOk(R"(
monitor Gate {
  shared int open = 0;
  method pass() {
    waituntil(open >= 1);
  }
  method openUp() {
    open = 1;
  }
}
)");
  EXPECT_NE(Cpp.find("registerPredicate(\"open >= 1\");"),
            std::string::npos);
  EXPECT_NE(Cpp.find("waitUntil(\"open >= 1\");"), std::string::npos);
}

TEST(TranslatorTest, SharedReadsGoThroughGet) {
  std::string Cpp = translateOk(BoundedBufferSource);
  EXPECT_NE(Cpp.find("count_ = count_.get() + items;"), std::string::npos);
  EXPECT_NE(Cpp.find("count_ = count_.get() - num;"), std::string::npos);
}

TEST(TranslatorTest, BoolSharedAndLocals) {
  std::string Cpp = translateOk(R"(
monitor Toggle {
  shared bool on = false;
  method set(bool v) {
    on = v;
  }
  method awaitMatch(bool v) {
    waituntil(on == v);
  }
}
)");
  EXPECT_NE(Cpp.find("Shared<bool> on_{*this, \"on\", false};"),
            std::string::npos);
  EXPECT_NE(Cpp.find("void set(bool v) {"), std::string::npos);
  EXPECT_NE(
      Cpp.find("locals().bindBool(local(\"v\", autosynch::TypeKind::Bool), "
               "v)"),
      std::string::npos);
}

TEST(TranslatorTest, ControlFlowStatements) {
  std::string Cpp = translateOk(R"(
monitor Counter {
  shared int n = 0;
  method bump(int times) {
    int i = 0;
    while (i < times) {
      if (n >= 100) {
        n = 0;
      } else {
        n = n + 1;
      }
      i = i + 1;
    }
  }
}
)");
  EXPECT_NE(Cpp.find("while (i < times) {"), std::string::npos);
  EXPECT_NE(Cpp.find("if (n_.get() >= 100) {"), std::string::npos);
  EXPECT_NE(Cpp.find("} else {"), std::string::npos);
  EXPECT_NE(Cpp.find("int64_t i = 0;"), std::string::npos);
}

TEST(TranslatorTest, MultipleMonitorsInOneFile) {
  std::string Cpp = translateOk(R"(
monitor A { shared int x = 0; method touch() { x = 1; } }
monitor B { shared int y = 0; method touch() { y = 1; } }
)");
  EXPECT_NE(Cpp.find("class A : public autosynch::Monitor {"),
            std::string::npos);
  EXPECT_NE(Cpp.find("class B : public autosynch::Monitor {"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(TranslatorTest, EmptyInputIsError) {
  EXPECT_NE(firstError("").find("no monitors"), std::string::npos);
}

TEST(TranslatorTest, MissingMonitorKeyword) {
  EXPECT_NE(firstError("class Foo {}").find("expected 'monitor'"),
            std::string::npos);
}

TEST(TranslatorTest, UndeclaredVariableInPredicate) {
  EXPECT_NE(firstError(R"(
monitor M { method f() { waituntil(ghost >= 1); } }
)")
                .find("undeclared variable 'ghost'"),
            std::string::npos);
}

TEST(TranslatorTest, NonBoolWaituntil) {
  EXPECT_NE(firstError(R"(
monitor M { shared int x = 0; method f() { waituntil(x + 1); } }
)")
                .find("bool-typed"),
            std::string::npos);
}

TEST(TranslatorTest, AssignTypeMismatch) {
  EXPECT_NE(firstError(R"(
monitor M { shared int x = 0; method f() { x = true; } }
)")
                .find("does not match"),
            std::string::npos);
}

TEST(TranslatorTest, AssignToUndeclared) {
  EXPECT_NE(firstError(R"(
monitor M { method f() { y = 1; } }
)")
                .find("undeclared variable 'y'"),
            std::string::npos);
}

TEST(TranslatorTest, DuplicateSharedVariable) {
  EXPECT_NE(firstError(R"(
monitor M { shared int x = 0; shared bool x = true; }
)")
                .find("redeclaration"),
            std::string::npos);
}

TEST(TranslatorTest, ParamShadowingShared) {
  EXPECT_NE(firstError(R"(
monitor M { shared int x = 0; method f(int x) { x = 1; } }
)")
                .find("shadows"),
            std::string::npos);
}

TEST(TranslatorTest, ReturnTypeChecks) {
  EXPECT_NE(firstError(R"(
monitor M { method f() { return 3; } }
)")
                .find("void method cannot return"),
            std::string::npos);
  EXPECT_NE(firstError(R"(
monitor M { shared bool b = false; method f() returns int { return b; } }
)")
                .find("return value type"),
            std::string::npos);
  EXPECT_NE(firstError(R"(
monitor M { method f() returns int { return; } }
)")
                .find("needs a value"),
            std::string::npos);
}

TEST(TranslatorTest, LocalTypeConflictAcrossMethods) {
  EXPECT_NE(firstError(R"(
monitor M {
  shared int x = 0;
  method f(int v) { waituntil(x >= v); }
  method g(bool v) { waituntil(x >= 1 && v); }
}
)")
                .find("different types"),
            std::string::npos);
}

TEST(TranslatorTest, ReservedNamesRejected) {
  EXPECT_NE(firstError(R"(
monitor M { method waitUntil() { } }
)")
                .find("reserved"),
            std::string::npos);
}

TEST(TranslatorTest, BadInitializer) {
  EXPECT_NE(firstError(R"(
monitor M { shared int x = true; }
)")
                .find("literal of the declared type"),
            std::string::npos);
}

TEST(TranslatorTest, ErrorLocationsPointIntoExpressions) {
  TranslateResult R = translateMonitorSource(R"(
monitor M {
  shared int x = 0;
  method f() {
    waituntil(x >= oops);
  }
}
)",
                                             "test.asynch");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Errors.front().Line, 5); // The waituntil line.
  EXPECT_NE(R.Errors.front().Message.find("oops"), std::string::npos);
}

} // namespace

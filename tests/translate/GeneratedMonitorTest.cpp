//===- tests/translate/GeneratedMonitorTest.cpp - Generated code runs --------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// End-to-end check of the translator pipeline: the committed header
// examples/generated/bounded_buffer.h (produced by autosynchc from
// examples/bounded_buffer.asynch) compiles against the runtime and behaves
// like a hand-written monitor under every signal policy.
//
//===----------------------------------------------------------------------===//

#include "generated/bounded_buffer.h"
#include "generated/ticket_rw.h"

#include "core/ConditionManager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

class GeneratedMonitorTest : public ::testing::TestWithParam<SignalPolicy> {
protected:
  MonitorConfig config() {
    MonitorConfig Cfg;
    Cfg.Policy = GetParam();
    return Cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(Policies, GeneratedMonitorTest,
                         ::testing::Values(SignalPolicy::Tagged,
                                           SignalPolicy::LinearScan,
                                           SignalPolicy::Broadcast),
                         [](const auto &Info) {
                           return Info.param == SignalPolicy::Tagged
                                      ? "tagged"
                                  : Info.param == SignalPolicy::LinearScan
                                      ? "linearscan"
                                      : "broadcast";
                         });

TEST_P(GeneratedMonitorTest, SingleThreadedSemantics) {
  GeneratedBoundedBuffer B(16, config());
  B.put(10);
  EXPECT_EQ(B.size(), 10);
  EXPECT_EQ(B.take(4), 4);
  EXPECT_EQ(B.size(), 6);
}

TEST_P(GeneratedMonitorTest, BlocksOnCapacityAndEmptiness) {
  GeneratedBoundedBuffer B(8, config());
  B.put(8);
  std::thread Producer([&] { B.put(5); }); // Blocks: needs 5 free.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(B.size(), 8);
  B.take(6);
  Producer.join();
  EXPECT_EQ(B.size(), 7);
}

TEST_P(GeneratedMonitorTest, ConservationUnderContention) {
  GeneratedBoundedBuffer B(64, config());
  std::vector<std::thread> Pool;
  for (int64_t Batch : {2, 5, 9}) {
    Pool.emplace_back([&B, Batch] {
      for (int I = 0; I != 300; ++I)
        B.put(Batch);
    });
  }
  int64_t Total = 300 * (2 + 5 + 9);
  Pool.emplace_back([&B, Total] {
    for (int64_t Left = Total; Left > 0;)
      Left -= B.take(Left < 16 ? Left : 16);
  });
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(B.size(), 0);
}

TEST_P(GeneratedMonitorTest, TicketRWIsFairAndExclusive) {
  GeneratedTicketRW RW(config());
  std::atomic<int> InWrite{0};
  std::atomic<int> Violations{0};
  std::atomic<int64_t> Ops{0};

  std::vector<std::thread> Pool;
  for (int W = 0; W != 2; ++W) {
    Pool.emplace_back([&] {
      for (int I = 0; I != 150; ++I) {
        RW.startWrite();
        if (++InWrite != 1)
          ++Violations;
        --InWrite;
        RW.endWrite();
        ++Ops;
      }
    });
  }
  for (int R = 0; R != 4; ++R) {
    Pool.emplace_back([&] {
      for (int I = 0; I != 150; ++I) {
        RW.startRead();
        if (InWrite.load() != 0)
          ++Violations;
        RW.endRead();
        ++Ops;
      }
    });
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Violations.load(), 0);
  EXPECT_EQ(Ops.load(), 2 * 150 + 4 * 150);
}

TEST(GeneratedMonitorStatsTest, RelayPoliciesNeverBroadcast) {
  MonitorConfig Cfg;
  Cfg.Policy = SignalPolicy::Tagged;
  GeneratedBoundedBuffer B(16, Cfg);
  std::thread Consumer([&] { B.take(10); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  B.put(12);
  Consumer.join();
  EXPECT_EQ(B.conditionManager().stats().BroadcastSignals, 0u);
  EXPECT_GE(B.conditionManager().stats().SignalsSent, 1u);
}

} // namespace

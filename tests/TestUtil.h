//===- tests/TestUtil.h - Shared test helpers ------------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the test suites: tiny fixture symbol tables, random
/// expression generation for property tests, and random environments.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TESTS_TESTUTIL_H
#define AUTOSYNCH_TESTS_TESTUTIL_H

#include "expr/Builder.h"
#include "expr/Env.h"
#include "expr/ExprArena.h"
#include "expr/SymbolTable.h"
#include "support/Rng.h"

#include <vector>

namespace autosynch::testutil {

/// A fixture with a few shared and local variables of both types:
/// shared ints x, y, z; shared bool flag; local ints a, b; local bool p.
struct Vars {
  SymbolTable Syms;
  VarId X, Y, Z, Flag, A, B, P;

  Vars() {
    X = Syms.declare("x", TypeKind::Int, VarScope::Shared);
    Y = Syms.declare("y", TypeKind::Int, VarScope::Shared);
    Z = Syms.declare("z", TypeKind::Int, VarScope::Shared);
    Flag = Syms.declare("flag", TypeKind::Bool, VarScope::Shared);
    A = Syms.declare("a", TypeKind::Int, VarScope::Local);
    B = Syms.declare("b", TypeKind::Int, VarScope::Local);
    P = Syms.declare("p", TypeKind::Bool, VarScope::Local);
  }

  std::vector<VarId> intVars() const { return {X, Y, Z, A, B}; }
  std::vector<VarId> boolVars() const { return {Flag, P}; }
};

/// Generates a random well-typed expression of type \p Want. Values stay
/// small enough (literals in [-8, 8], depth <= MaxDepth) that evaluation
/// never approaches the int64 boundary, where canonicalization's
/// no-overflow assumption would not hold.
inline ExprRef randomExpr(Rng &R, ExprArena &Arena, const Vars &V,
                          TypeKind Want, int MaxDepth) {
  if (Want == TypeKind::Int) {
    if (MaxDepth <= 0 || R.chance(1, 3)) {
      if (R.chance(1, 2))
        return Arena.intLit(R.range(-8, 8));
      auto Ints = V.intVars();
      return Arena.var(V.Syms.info(Ints[R.range(0, Ints.size() - 1)]));
    }
    switch (R.range(0, 5)) {
    case 0:
      return Arena.unary(ExprKind::Neg,
                         randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1));
    case 1:
    case 2:
      return Arena.binary(
          R.chance(1, 2) ? ExprKind::Add : ExprKind::Sub,
          randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1),
          randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1));
    case 3:
      return Arena.binary(
          ExprKind::Mul, randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1),
          randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1));
    case 4:
      // Division by a nonzero literal only: predicates must stay total.
      return Arena.binary(
          ExprKind::Div, randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1),
          Arena.intLit(R.chance(1, 2) ? R.range(1, 7) : R.range(-7, -1)));
    default:
      return Arena.binary(
          ExprKind::Mod, randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1),
          Arena.intLit(R.range(1, 7)));
    }
  }

  // Bool.
  if (MaxDepth <= 0 || R.chance(1, 4)) {
    if (R.chance(1, 3))
      return Arena.boolLit(R.chance(1, 2));
    auto Bools = V.boolVars();
    return Arena.var(V.Syms.info(Bools[R.range(0, Bools.size() - 1)]));
  }
  switch (R.range(0, 4)) {
  case 0:
    return Arena.unary(ExprKind::Not,
                       randomExpr(R, Arena, V, TypeKind::Bool, MaxDepth - 1));
  case 1:
  case 2: {
    ExprKind K = static_cast<ExprKind>(
        static_cast<int>(ExprKind::Eq) + R.range(0, 5));
    return Arena.binary(K,
                        randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1),
                        randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1));
  }
  default:
    return Arena.binary(
        R.chance(1, 2) ? ExprKind::And : ExprKind::Or,
        randomExpr(R, Arena, V, TypeKind::Bool, MaxDepth - 1),
        randomExpr(R, Arena, V, TypeKind::Bool, MaxDepth - 1));
  }
}

/// Binds every fixture variable to a random small value.
inline MapEnv randomEnv(Rng &R, const Vars &V) {
  MapEnv E;
  for (VarId Id : V.intVars())
    E.bindInt(Id, R.range(-10, 10));
  for (VarId Id : V.boolVars())
    E.bindBool(Id, R.chance(1, 2));
  return E;
}

} // namespace autosynch::testutil

#endif // AUTOSYNCH_TESTS_TESTUTIL_H

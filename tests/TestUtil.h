//===- tests/TestUtil.h - Shared test helpers ------------------*- C++ -*-===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the test suites: tiny fixture symbol tables, random
/// expression generation for property tests, and random environments.
///
//===----------------------------------------------------------------------===//

#ifndef AUTOSYNCH_TESTS_TESTUTIL_H
#define AUTOSYNCH_TESTS_TESTUTIL_H

#include "expr/Builder.h"
#include "expr/Env.h"
#include "expr/ExprArena.h"
#include "expr/SymbolTable.h"
#include "support/Rng.h"
#include "sync/Mutex.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace autosynch::testutil {

/// Parses AUTOSYNCH_TEST_SEED (decimal or 0x-hex). Returns true and sets
/// \p Out when the variable is present; the parse result is cached so every
/// call site in a test binary sees the same base seed.
inline bool envSeedBase(uint64_t &Out) {
  struct Cached {
    bool Present = false;
    uint64_t Value = 0;
  };
  static const Cached C = [] {
    Cached R;
    if (const char *S = std::getenv("AUTOSYNCH_TEST_SEED")) {
      char *End = nullptr;
      R.Present = true;
      // Explicit base: base 0 would read a zero-padded decimal as octal.
      int Base = (S[0] == '0' && (S[1] == 'x' || S[1] == 'X')) ? 16 : 10;
      errno = 0;
      R.Value = std::strtoull(S, &End, Base);
      // strtoull would silently negate a '-' seed and saturate on
      // overflow; both are typos worth rejecting.
      if (End == S || *End != '\0' || S[0] == '-' || errno == ERANGE) {
        // A typo'd seed silently mixing base 0 would mask the mistake;
        // fail the run loudly instead.
        std::fprintf(stderr,
                     "AUTOSYNCH_TEST_SEED='%s' is not a number "
                     "(decimal or 0x-hex)\n",
                     S);
        std::abort();
      }
    }
    return R;
  }();
  Out = C.Value;
  return C.Present;
}

/// The seed a randomized test should run with: the per-site \p Default
/// normally, or — when AUTOSYNCH_TEST_SEED is set — the environment base
/// mixed with the site default so distinct call sites keep distinct
/// streams. Same environment value, same effective seed: flakes reproduce.
inline uint64_t effectiveSeed(uint64_t Default) {
  uint64_t Base;
  if (!envSeedBase(Base))
    return Default;
  return Base ^ (Default * 0x9e3779b97f4a7c15ULL);
}

/// Failure annotation naming the seed in force, so a flaky randomized test
/// prints everything needed to rerun it.
inline std::string seedNote(uint64_t Default) {
  std::ostringstream OS;
  uint64_t Base;
  OS << "randomized test seed 0x" << std::hex << effectiveSeed(Default);
  if (envSeedBase(Base))
    OS << " (AUTOSYNCH_TEST_SEED=0x" << Base << ")";
  else
    OS << " (rerun with AUTOSYNCH_TEST_SEED to vary)";
  return OS.str();
}

/// Blocks until \p N threads are parked in M's await(). The fixture must
/// expose waiters() (see AUTOSYNCH_TEST_WAITER_PROBE); a fixed sleep is
/// not enough under TSan or on loaded machines. Bounded so a fast-path
/// regression (the waiter never parks) fails with context in seconds
/// instead of hanging until the ctest timeout kills the binary.
template <typename MonitorT> void awaitWaiters(MonitorT &M, int N) {
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (M.waiters() < N) {
    if (std::chrono::steady_clock::now() >= Deadline) {
      FAIL() << "awaitWaiters: still " << M.waiters() << "/" << N
             << " parked waiters after 30s; did the waiter take the "
                "fast path?";
      return;
    }
    // A real sleep, not a yield: each poll takes the monitor lock and runs
    // the relay on exit, which is expensive under TSan and contends with
    // the waiter trying to park.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

/// Raw-substrate analogue of awaitWaiters: blocks until \p Count — a
/// functor evaluated while holding \p M — reaches \p N. Condition::await
/// bumps awaitCount() under the mutex *before* parking, so once the count
/// is observed under the lock the waiter has released it inside await();
/// a signal issued while still holding the mutex can no longer be lost on
/// either backend. Bounded like awaitWaiters so a regression fails fast.
template <typename CountFn>
void awaitParked(sync::Mutex &M, CountFn Count, int N) {
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    M.lock();
    int Parked = Count();
    M.unlock();
    if (Parked >= N)
      return;
    if (std::chrono::steady_clock::now() >= Deadline) {
      FAIL() << "awaitParked: still " << Parked << "/" << N
             << " parked waiters after 30s";
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

/// A fixture with a few shared and local variables of both types:
/// shared ints x, y, z; shared bool flag; local ints a, b; local bool p.
struct Vars {
  SymbolTable Syms;
  VarId X, Y, Z, Flag, A, B, P;

  Vars() {
    X = Syms.declare("x", TypeKind::Int, VarScope::Shared);
    Y = Syms.declare("y", TypeKind::Int, VarScope::Shared);
    Z = Syms.declare("z", TypeKind::Int, VarScope::Shared);
    Flag = Syms.declare("flag", TypeKind::Bool, VarScope::Shared);
    A = Syms.declare("a", TypeKind::Int, VarScope::Local);
    B = Syms.declare("b", TypeKind::Int, VarScope::Local);
    P = Syms.declare("p", TypeKind::Bool, VarScope::Local);
  }

  std::vector<VarId> intVars() const { return {X, Y, Z, A, B}; }
  std::vector<VarId> boolVars() const { return {Flag, P}; }
};

/// Generates a random well-typed expression of type \p Want. Values stay
/// small enough (literals in [-8, 8], depth <= MaxDepth) that evaluation
/// never approaches the int64 boundary, where canonicalization's
/// no-overflow assumption would not hold.
inline ExprRef randomExpr(Rng &R, ExprArena &Arena, const Vars &V,
                          TypeKind Want, int MaxDepth) {
  if (Want == TypeKind::Int) {
    if (MaxDepth <= 0 || R.chance(1, 3)) {
      if (R.chance(1, 2))
        return Arena.intLit(R.range(-8, 8));
      auto Ints = V.intVars();
      return Arena.var(V.Syms.info(Ints[R.range(0, Ints.size() - 1)]));
    }
    switch (R.range(0, 5)) {
    case 0:
      return Arena.unary(ExprKind::Neg,
                         randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1));
    case 1:
    case 2:
      return Arena.binary(
          R.chance(1, 2) ? ExprKind::Add : ExprKind::Sub,
          randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1),
          randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1));
    case 3:
      return Arena.binary(
          ExprKind::Mul, randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1),
          randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1));
    case 4:
      // Division by a nonzero literal only: predicates must stay total.
      return Arena.binary(
          ExprKind::Div, randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1),
          Arena.intLit(R.chance(1, 2) ? R.range(1, 7) : R.range(-7, -1)));
    default:
      return Arena.binary(
          ExprKind::Mod, randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1),
          Arena.intLit(R.range(1, 7)));
    }
  }

  // Bool.
  if (MaxDepth <= 0 || R.chance(1, 4)) {
    if (R.chance(1, 3))
      return Arena.boolLit(R.chance(1, 2));
    auto Bools = V.boolVars();
    return Arena.var(V.Syms.info(Bools[R.range(0, Bools.size() - 1)]));
  }
  switch (R.range(0, 4)) {
  case 0:
    return Arena.unary(ExprKind::Not,
                       randomExpr(R, Arena, V, TypeKind::Bool, MaxDepth - 1));
  case 1:
  case 2: {
    ExprKind K = static_cast<ExprKind>(
        static_cast<int>(ExprKind::Eq) + R.range(0, 5));
    return Arena.binary(K,
                        randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1),
                        randomExpr(R, Arena, V, TypeKind::Int, MaxDepth - 1));
  }
  default:
    return Arena.binary(
        R.chance(1, 2) ? ExprKind::And : ExprKind::Or,
        randomExpr(R, Arena, V, TypeKind::Bool, MaxDepth - 1),
        randomExpr(R, Arena, V, TypeKind::Bool, MaxDepth - 1));
  }
}

/// Binds every fixture variable to a random small value.
inline MapEnv randomEnv(Rng &R, const Vars &V) {
  MapEnv E;
  for (VarId Id : V.intVars())
    E.bindInt(Id, R.range(-10, 10));
  for (VarId Id : V.boolVars())
    E.bindBool(Id, R.chance(1, 2));
  return E;
}

} // namespace autosynch::testutil

/// Declares `::autosynch::Rng Var` honoring AUTOSYNCH_TEST_SEED, and
/// arranges for any assertion failure in the enclosing scope to print the
/// seed that produced it.
#define AUTOSYNCH_SEEDED_RNG(Var, Default)                                   \
  ::autosynch::Rng Var(::autosynch::testutil::effectiveSeed(Default));       \
  SCOPED_TRACE(::autosynch::testutil::seedNote(Default))

/// Injects a race-free `waiters()` accessor into a test monitor class:
/// reads numWaiters() under the region lock, where the condition manager
/// mutates it. Pair with testutil::awaitWaiters.
#define AUTOSYNCH_TEST_WAITER_PROBE()                                        \
  int waiters() {                                                            \
    Region R(*this);                                                         \
    return conditionManager().numWaiters();                                  \
  }

#endif // AUTOSYNCH_TESTS_TESTUTIL_H

//===- tests/time/SpuriousWakeupTest.cpp - Forced-spurious robustness ------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Fault injection: sync::setSpuriousWakeupPeriod makes every Nth condvar
// wait return spuriously (mutex released and re-acquired, no signal).
// Timed waits must be robust in both directions: a spurious wakeup before
// the deadline must not surface as an early false, and the repeated trips
// through the block loop must not double-count a single timeout.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/Monitor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace autosynch;
using namespace std::chrono_literals;

namespace {

class Cell : public Monitor {
public:
  explicit Cell(MonitorConfig Cfg = {}) : Monitor(Cfg) {}

  bool awaitAtLeast(int64_t Want, std::chrono::nanoseconds Timeout) {
    Region R(*this);
    return waitUntilFor(Count >= lit(Want), Timeout);
  }

  void add(int64_t V) {
    Region R(*this);
    Count += V;
  }

  const ManagerStats &stats() { return conditionManager().stats(); }

  AUTOSYNCH_TEST_WAITER_PROBE()

private:
  Shared<int64_t> Count{*this, "count", 0};
};

MonitorConfig backendConfig(sync::Backend B) {
  MonitorConfig Cfg;
  Cfg.Backend = B;
  return Cfg;
}

TEST(SpuriousWakeupTest, HookInjectsOnBothBackends) {
  for (sync::Backend B : {sync::Backend::Std, sync::Backend::Futex}) {
    SCOPED_TRACE(sync::backendName(B));
    sync::SpuriousWakeupGuard Inject(1); // Every wait returns spuriously.
    Cell M(backendConfig(B));
    // A never-true timed wait now spins through manufactured wakeups; the
    // deadline check must still terminate it (and once only).
    auto T0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(M.awaitAtLeast(1, 20ms));
    EXPECT_GE(std::chrono::steady_clock::now() - T0, 20ms);
    EXPECT_EQ(M.stats().Timeouts, 1u);
  }
}

TEST(SpuriousWakeupTest, NoEarlyFalseUnderInjection) {
  for (sync::Backend B : {sync::Backend::Std, sync::Backend::Futex}) {
    SCOPED_TRACE(sync::backendName(B));
    sync::SpuriousWakeupGuard Inject(3);
    Cell M(backendConfig(B));
    constexpr int Rounds = 25;
    for (int I = 0; I != Rounds; ++I) {
      std::thread Setter([&] {
        testutil::awaitWaiters(M, 1);
        M.add(1);
      });
      // Generous deadline: with the predicate guaranteed to turn true,
      // every spurious trip must re-block, never return false.
      EXPECT_TRUE(M.awaitAtLeast(I + 1, 30s))
          << "spurious wakeup surfaced as a timeout";
      Setter.join();
    }
    EXPECT_EQ(M.stats().Timeouts, 0u);
  }
}

TEST(SpuriousWakeupTest, TimeoutsCountedExactlyOnceUnderInjection) {
  for (sync::Backend B : {sync::Backend::Std, sync::Backend::Futex}) {
    SCOPED_TRACE(sync::backendName(B));
    sync::SpuriousWakeupGuard Inject(2);
    Cell M(backendConfig(B));
    constexpr uint64_t Expiring = 6;
    for (uint64_t I = 0; I != Expiring; ++I)
      EXPECT_FALSE(M.awaitAtLeast(1000, 15ms));
    // Each expiring wait looped through several injected wakeups; the
    // timeout count must equal the number of false returns exactly.
    EXPECT_EQ(M.stats().Timeouts, Expiring);
    EXPECT_EQ(M.stats().TimedWaits, Expiring);
  }
}

TEST(SpuriousWakeupTest, UntimedWaitsSurviveInjectionToo) {
  sync::SpuriousWakeupGuard Inject(2);
  Cell M;
  std::thread Setter([&] {
    testutil::awaitWaiters(M, 1);
    M.add(5);
  });
  // An effectively-unbounded timed wait and the injected substrate: the
  // only way out is the predicate turning true.
  EXPECT_TRUE(M.awaitAtLeast(5, 30s));
  Setter.join();
  EXPECT_EQ(M.stats().Timeouts, 0u);
}

} // namespace

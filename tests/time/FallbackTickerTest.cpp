//===- tests/time/FallbackTickerTest.cpp - Far-deadline fallback tick ------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Direct tests of the process-wide far-deadline sweeper: parked nodes
// fire a signalAll at (or promptly after) their deadline, removal before
// the deadline suppresses the fire, and the intrusive bookkeeping
// balances. The condition-manager integration (far waits block unbounded
// and are woken by the ticker) is covered end-to-end by TimedWaitTest's
// generous-deadline cases; here the horizon does not apply because the
// ticker itself accepts any bounded deadline.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "sync/Mutex.h"
#include "time/Deadline.h"
#include "time/FallbackTicker.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

using namespace autosynch;
using namespace std::chrono_literals;

namespace {

uint64_t inMs(uint64_t Ms) { return time::nowNs() + Ms * 1000000; }

/// Waits until \p Cond's signalAll count reaches \p Want (bounded).
bool awaitSignalAll(sync::Condition &Cond, uint64_t Want,
                    std::chrono::seconds Bound) {
  auto Give = std::chrono::steady_clock::now() + Bound;
  while (Cond.signalAllCount() < Want) {
    if (std::chrono::steady_clock::now() >= Give)
      return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(FallbackTickerTest, FiresAtDeadline) {
  sync::Mutex M;
  auto Cond = M.newCondition();
  time::FarNode N;
  N.Cond = Cond.get();
  N.DeadlineNs = inMs(60);
  uint64_t T0 = time::nowNs();
  time::FallbackTicker::global().add(N);
  EXPECT_TRUE(awaitSignalAll(*Cond, 1, 10s)) << "ticker never fired";
  uint64_t Elapsed = time::nowNs() - T0;
  EXPECT_GE(Elapsed, 60u * 1000000) << "fired before the deadline";
  // The node fired; removal afterwards is a clean no-op.
  time::FallbackTicker::global().remove(N);
  EXPECT_EQ(N.S, time::FarNode::State::Idle);
}

TEST(FallbackTickerTest, RemoveBeforeDeadlineSuppressesFire) {
  sync::Mutex M;
  auto Cond = M.newCondition();
  time::FarNode N;
  N.Cond = Cond.get();
  N.DeadlineNs = inMs(150);
  size_t Before = time::FallbackTicker::global().pending();
  time::FallbackTicker::global().add(N);
  EXPECT_EQ(time::FallbackTicker::global().pending(), Before + 1);
  time::FallbackTicker::global().remove(N);
  EXPECT_EQ(time::FallbackTicker::global().pending(), Before);
  std::this_thread::sleep_for(250ms);
  EXPECT_EQ(Cond->signalAllCount(), 0u) << "removed node still fired";
}

TEST(FallbackTickerTest, EarlierParkReArmsTheSweeper) {
  sync::Mutex M;
  auto Late = M.newCondition();
  auto Early = M.newCondition();
  time::FarNode NL, NE;
  NL.Cond = Late.get();
  NL.DeadlineNs = inMs(30000); // The sweeper arms for 30s out...
  time::FallbackTicker::global().add(NL);
  std::this_thread::sleep_for(20ms);
  NE.Cond = Early.get();
  NE.DeadlineNs = inMs(50); // ...then a much earlier park arrives.
  time::FallbackTicker::global().add(NE);
  EXPECT_TRUE(awaitSignalAll(*Early, 1, 10s))
      << "sweeper slept through a lowered earliest deadline";
  EXPECT_EQ(Late->signalAllCount(), 0u);
  time::FallbackTicker::global().remove(NL);
  time::FallbackTicker::global().remove(NE);
}

TEST(FallbackTickerTest, ManyNodesFireExactlyOnce) {
  AUTOSYNCH_SEEDED_RNG(R, 5150);
  sync::Mutex M;
  constexpr int Nodes = 32;
  std::vector<std::unique_ptr<sync::Condition>> Conds;
  std::vector<time::FarNode> Ns(Nodes);
  for (int I = 0; I != Nodes; ++I) {
    Conds.push_back(M.newCondition());
    Ns[I].Cond = Conds.back().get();
    Ns[I].DeadlineNs = inMs(static_cast<uint64_t>(R.range(20, 200)));
    time::FallbackTicker::global().add(Ns[I]);
  }
  for (int I = 0; I != Nodes; ++I)
    EXPECT_TRUE(awaitSignalAll(*Conds[I], 1, 10s)) << "node " << I;
  std::this_thread::sleep_for(50ms);
  for (int I = 0; I != Nodes; ++I) {
    EXPECT_EQ(Conds[I]->signalAllCount(), 1u) << "node " << I;
    time::FallbackTicker::global().remove(Ns[I]);
  }
}

} // namespace

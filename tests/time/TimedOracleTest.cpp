//===- tests/time/TimedOracleTest.cpp - Timeout-aware differential oracle --===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The timeout-aware extension of the differential signaling oracle: timed
// runs must agree on *completions and timeout sets* across every
// mechanism x backend x relay-filter combination. Real time is not
// deterministic, so the scripts make each timeout certain by
// construction: an op times out only when the tokens/leases it demands
// can never materialize again (supply is exhausted and no concurrent
// refiller remains), and succeeds only when its demand is guaranteed
// (either immediately satisfiable or fed by a dedicated supplier) under
// an effectively-unbounded deadline. The observable history — grant
// counts, timeout counts, and final pool state — is then schedule-
// independent, and any divergence is a signaling bug in one combination.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "problems/LeaseManager.h"
#include "problems/TokenBucket.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

constexpr uint64_t Unbounded = ~uint64_t{0};
/// Short but real bound for certain-timeout ops. The op's outcome does
/// not depend on the exact value — supply is provably exhausted — only
/// the run time does.
constexpr uint64_t ShortNs = 20u * 1000 * 1000; // 20 ms

struct Combo {
  Mechanism M;
  sync::Backend B;
  RelayFilter F;
};

std::vector<Combo> allCombos() {
  std::vector<Combo> Out;
  for (Mechanism M : {Mechanism::Explicit, Mechanism::Baseline,
                      Mechanism::AutoSynchT, Mechanism::AutoSynch})
    for (sync::Backend B : {sync::Backend::Std, sync::Backend::Futex})
      for (RelayFilter F : {RelayFilter::Always, RelayFilter::DirtySet}) {
        // The relay filter only exists for the relay policies; one cell
        // per filterless combination.
        bool RelayPolicy =
            M == Mechanism::AutoSynch || M == Mechanism::AutoSynchT;
        if (!RelayPolicy && F != RelayFilter::Always)
          continue;
        Out.push_back({M, B, F});
      }
  return Out;
}

std::string comboName(const Combo &C) {
  return std::string(mechanismName(C.M)) + "/" + sync::backendName(C.B) +
         "/" + relayFilterName(C.F);
}

/// Runs \p History under every combination; every summary must equal the
/// first one's.
void differential(
    const std::function<std::vector<int64_t>(const Combo &)> &History) {
  std::vector<Combo> Combos = allCombos();
  std::vector<int64_t> Reference;
  for (size_t I = 0; I != Combos.size(); ++I) {
    RelayFilter Prev = defaultRelayFilter();
    setDefaultRelayFilter(Combos[I].F);
    std::vector<int64_t> Summary = History(Combos[I]);
    setDefaultRelayFilter(Prev);
    if (I == 0) {
      Reference = std::move(Summary);
      continue;
    }
    EXPECT_EQ(Summary, Reference) << comboName(Combos[I])
                                  << " diverges from "
                                  << comboName(Combos[0]);
  }
}

TEST(TimedOracleTest, LeaseManagerTimeoutSets) {
  differential([](const Combo &C) {
    auto L = makeLeaseManager(C.M, /*Leases=*/3, C.B);
    // Phase 1: drain the pool (certain success).
    for (int I = 0; I != 3; ++I)
      EXPECT_TRUE(L->acquire(Unbounded)) << comboName(C);
    // Phase 2: the pool is empty and nobody will release — every bounded
    // acquire times out, deterministically.
    for (int I = 0; I != 4; ++I)
      EXPECT_FALSE(L->acquire(ShortNs)) << comboName(C);
    // Phase 3: a release from another thread feeds exactly one blocked
    // bounded acquire (certain success: the supply is dedicated to it).
    std::thread Waiter(
        [&] { EXPECT_TRUE(L->acquire(Unbounded)) << comboName(C); });
    L->release();
    Waiter.join();
    // Phase 4: empty again; one more certain timeout.
    EXPECT_FALSE(L->acquire(ShortNs)) << comboName(C);
    return std::vector<int64_t>{L->grants(), L->timeouts(),
                                L->available()};
  });
}

TEST(TimedOracleTest, TokenBucketTimeoutSets) {
  AUTOSYNCH_SEEDED_RNG(R, 6201);
  // A deterministic demand/supply script, shared by every combination:
  // the consumer's demands are served by a dedicated refiller whose total
  // supply exactly covers the in-budget demands; the out-of-budget
  // demands run after the refiller is done, so they time out certainly.
  constexpr int64_t Capacity = 16;
  std::vector<int64_t> Demands;
  int64_t TotalDemand = 0;
  for (int I = 0; I != 40; ++I) {
    Demands.push_back(R.range(1, Capacity));
    TotalDemand += Demands.back();
  }

  differential([&](const Combo &C) {
    auto B = makeTokenBucket(C.M, Capacity, C.B);
    // Start full; the refiller replaces exactly what the demands consume
    // beyond the initial fill.
    int64_t RefillBudget = TotalDemand - Capacity;
    std::thread Refiller([&] {
      Rng RR(6202);
      int64_t Left = RefillBudget;
      while (Left > 0) {
        int64_t N = std::min<int64_t>(Left, RR.range(1, 6));
        // Never overflow the bucket: a saturated refill would silently
        // drop supply and turn a certain success into a deadlock. Only
        // this thread adds tokens, so headroom observed here can only
        // grow by the time the refill lands.
        if (B->tokens() > Capacity - N) {
          std::this_thread::yield();
          continue;
        }
        B->refill(N);
        Left -= N;
      }
    });
    for (int64_t N : Demands)
      EXPECT_TRUE(B->acquire(N, Unbounded)) << comboName(C);
    Refiller.join();
    // Supply exactly exhausted: the bucket is empty and no refills
    // remain, so every bounded demand now times out.
    for (int I = 0; I != 5; ++I)
      EXPECT_FALSE(B->acquire(1 + I % Capacity, ShortNs)) << comboName(C);
    // One dedicated refill feeds one certain success, restoring a known
    // final state.
    std::thread LastRefill([&] { B->refill(4); });
    EXPECT_TRUE(B->acquire(4, Unbounded)) << comboName(C);
    LastRefill.join();
    return std::vector<int64_t>{B->grants(), B->timeouts(), B->tokens()};
  });
}

TEST(TimedOracleTest, ContendedLeaseQuotasAgree) {
  // Concurrency beyond one waiter: W workers each perform a fixed number
  // of hold/release cycles with unbounded acquires, while a separate
  // prober repeatedly runs certain-timeout acquires during a phase where
  // the pool is provably saturated... saturation cannot be proven under
  // scheduling freedom, so the prober instead runs *after* the workers
  // finish and the pool is fully drained by the main thread — keeping its
  // timeout count deterministic while the worker phase still exercises
  // contended timed machinery (their acquires are timed but unbounded).
  differential([](const Combo &C) {
    constexpr int Workers = 4;
    constexpr int64_t Cycles = 50;
    auto L = makeLeaseManager(C.M, /*Leases=*/2, C.B);
    std::vector<std::thread> Pool;
    for (int W = 0; W != Workers; ++W)
      Pool.emplace_back([&] {
        for (int64_t I = 0; I != Cycles; ++I) {
          EXPECT_TRUE(L->acquire(Unbounded));
          L->release();
        }
      });
    for (auto &T : Pool)
      T.join();
    // Drain, then deterministic timeouts.
    EXPECT_TRUE(L->acquire(Unbounded));
    EXPECT_TRUE(L->acquire(Unbounded));
    EXPECT_FALSE(L->acquire(ShortNs));
    EXPECT_FALSE(L->acquire(ShortNs));
    return std::vector<int64_t>{L->grants(), L->timeouts(),
                                L->available()};
  });
}

} // namespace

//===- tests/time/TimerWheelTest.cpp - Hierarchical wheel unit tests -------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Deterministic single-threaded tests of the timer wheel: a synthetic
// clock (plain uint64 nanoseconds fed to insert/advance) drives the
// cascade through every level, and a randomized differential test checks
// the wheel against a sorted-reference implementation.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "time/TimerWheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

using namespace autosynch;
using namespace autosynch::time;

namespace {

/// Tick of 1 µs keeps the arithmetic human-readable.
constexpr uint64_t Tick = 1000;

struct WheelFixture {
  TimerWheel Wheel{Tick, /*StartNs=*/0};
  std::vector<TimerNode *> Fired;

  size_t advanceTo(uint64_t Ns) {
    Fired.clear();
    return Wheel.advance(Ns, Fired);
  }
};

TimerNode makeNode(uint64_t DeadlineNs) {
  TimerNode N;
  N.DeadlineNs = DeadlineNs;
  return N;
}

TEST(TimerWheelTest, FiresAfterDeadlineTickElapses) {
  WheelFixture F;
  TimerNode N = makeNode(5 * Tick + 100);
  F.Wheel.insert(N);
  EXPECT_EQ(F.Wheel.size(), 1u);

  // The deadline tick (5) has not fully elapsed at t=5.5 ticks.
  EXPECT_EQ(F.advanceTo(5 * Tick + 500), 0u);
  // One tick later it has; the node fires exactly once.
  EXPECT_EQ(F.advanceTo(6 * Tick), 1u);
  ASSERT_EQ(F.Fired.size(), 1u);
  EXPECT_EQ(F.Fired[0], &N);
  EXPECT_EQ(N.S, TimerNode::State::Fired);
  EXPECT_EQ(F.Wheel.size(), 0u);
  EXPECT_EQ(F.advanceTo(100 * Tick), 0u);
}

TEST(TimerWheelTest, CancelBeforeFire) {
  WheelFixture F;
  TimerNode N = makeNode(10 * Tick);
  F.Wheel.insert(N);
  EXPECT_TRUE(F.Wheel.cancel(N));
  EXPECT_EQ(N.S, TimerNode::State::Idle);
  EXPECT_EQ(F.Wheel.size(), 0u);
  EXPECT_EQ(F.advanceTo(1000 * Tick), 0u);
  // Cancel after fire reports "too late" but leaves the node reusable.
  TimerNode M = makeNode(2000 * Tick);
  F.Wheel.insert(M);
  EXPECT_EQ(F.advanceTo(3000 * Tick), 1u);
  EXPECT_FALSE(F.Wheel.cancel(M));
  EXPECT_EQ(M.S, TimerNode::State::Idle);
}

TEST(TimerWheelTest, PastDeadlineFiresOnNextAdvance) {
  WheelFixture F;
  EXPECT_EQ(F.advanceTo(500 * Tick), 0u);
  TimerNode N = makeNode(3 * Tick); // Long past.
  F.Wheel.insert(N);
  // Clamped to the current tick; the next elapsed tick fires it.
  EXPECT_EQ(F.advanceTo(502 * Tick), 1u);
}

TEST(TimerWheelTest, CascadesAcrossEveryLevel) {
  // One node per level: 10 ticks (L0), 1000 ticks (L1), 100k ticks (L2),
  // 10M ticks (L3), plus one beyond the horizon (clamped, re-bucketed on
  // each top-level pass).
  WheelFixture F;
  std::vector<uint64_t> Deadlines = {10,        1000,      100000,
                                     10000000,  3000000000ull};
  std::vector<std::unique_ptr<TimerNode>> Nodes;
  for (uint64_t D : Deadlines) {
    Nodes.push_back(std::make_unique<TimerNode>(makeNode(D * Tick)));
    F.Wheel.insert(*Nodes.back());
  }
  EXPECT_EQ(F.Wheel.size(), Deadlines.size());

  // Walk time forward in uneven steps; every node must fire in its
  // deadline order, after its deadline, never before.
  std::map<TimerNode *, uint64_t> FiredAt;
  uint64_t Steps[] = {5,         11,        999,      1001,    50000,
                      100001,    9999999,   10000001, 2999999999ull,
                      3000000001ull};
  for (uint64_t S : Steps) {
    F.advanceTo(S * Tick);
    for (TimerNode *N : F.Fired) {
      EXPECT_EQ(FiredAt.count(N), 0u) << "node fired twice";
      FiredAt[N] = S * Tick;
    }
  }
  ASSERT_EQ(FiredAt.size(), Nodes.size());
  for (auto &Node : Nodes) {
    ASSERT_TRUE(FiredAt.count(Node.get()));
    EXPECT_GE(FiredAt[Node.get()], Node->DeadlineNs)
        << "fired before its deadline";
  }
}

TEST(TimerWheelTest, NextDueBoundNeverLate) {
  WheelFixture F;
  TimerNode A = makeNode(100 * Tick);
  TimerNode B = makeNode(5000 * Tick);
  F.Wheel.insert(A);
  F.Wheel.insert(B);
  // The bound is a lower bound on the earliest deadline.
  EXPECT_LE(F.Wheel.nextDueBoundNs(), 100 * Tick);
  EXPECT_GT(F.Wheel.nextDueBoundNs(), 0u);

  EXPECT_EQ(F.advanceTo(101 * Tick), 1u);
  // After A fires the bound must track B (coarsely), not stay at A.
  EXPECT_LE(F.Wheel.nextDueBoundNs(), 5000 * Tick);
  EXPECT_GT(F.Wheel.nextDueBoundNs(), 101 * Tick);

  EXPECT_TRUE(F.Wheel.cancel(B));
  EXPECT_EQ(F.Wheel.nextDueBoundNs(), NeverNs);
}

TEST(TimerWheelTest, ReArmAfterFire) {
  WheelFixture F;
  TimerNode N = makeNode(10 * Tick);
  F.Wheel.insert(N);
  EXPECT_EQ(F.advanceTo(11 * Tick), 1u);
  N.DeadlineNs = 20 * Tick;
  F.Wheel.insert(N); // Fired nodes may be re-armed.
  EXPECT_EQ(F.advanceTo(21 * Tick), 1u);
  EXPECT_EQ(F.Fired[0], &N);
}

TEST(TimerWheelTest, RandomizedAgainstReference) {
  AUTOSYNCH_SEEDED_RNG(R, 7001);
  for (int Round = 0; Round != 20; ++Round) {
    uint64_t Start = static_cast<uint64_t>(R.range(0, 1 << 20)) * Tick;
    TimerWheel Wheel(Tick, Start);
    std::vector<std::unique_ptr<TimerNode>> Nodes;
    // Reference: node -> deadline for all live (uncancelled, unfired).
    std::map<TimerNode *, uint64_t> Live;
    uint64_t Now = Start;
    std::vector<TimerNode *> Fired;

    for (int Op = 0; Op != 400; ++Op) {
      int Kind = static_cast<int>(R.range(0, 9));
      if (Kind <= 4) { // Insert with a mix of near and far deadlines.
        uint64_t Delta = R.chance(1, 4)
                             ? R.range(0, 100) * Tick
                             : R.range(0, 5000000) * Tick;
        Nodes.push_back(std::make_unique<TimerNode>(
            makeNode(Now + Delta + R.range(0, 999))));
        Wheel.insert(*Nodes.back());
        Live[Nodes.back().get()] = Nodes.back()->DeadlineNs;
      } else if (Kind <= 6 && !Live.empty()) { // Cancel a random live node.
        auto It = Live.begin();
        std::advance(It, R.range(0, Live.size() - 1));
        EXPECT_TRUE(Wheel.cancel(*It->first));
        Live.erase(It);
      } else { // Advance by a random step.
        Now += R.range(0, 200000) * Tick / 10;
        Fired.clear();
        Wheel.advance(Now, Fired);
        uint64_t NowTick = Now / Tick;
        for (TimerNode *N : Fired) {
          ASSERT_TRUE(Live.count(N)) << "fired a cancelled/foreign node";
          // Fire rule: deadline tick fully elapsed, never early.
          EXPECT_LT(N->DeadlineNs / Tick, NowTick);
          Live.erase(N);
        }
        // Completeness: every live node whose deadline tick elapsed must
        // have fired in this advance.
        for (auto &[N, D] : Live)
          EXPECT_GE(D / Tick, NowTick)
              << "wheel held back an elapsed timer";
      }
      EXPECT_EQ(Wheel.size(), Live.size());
    }
  }
}

} // namespace

//===- tests/time/TimedWaitTest.cpp - waitUntilFor/By/CancelToken ----------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Semantics of the deadline runtime at the monitor level, across every
// automatic mechanism and both sync backends: success before the
// deadline, expiry, predicate-first returns, cancellation (including
// cross-monitor), plan-cache integration, and the exit-path wheel
// machinery (expired-waiter retirement never strands a live waiter).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/Monitor.h"
#include "problems/Mechanism.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace autosynch;
using namespace std::chrono_literals;

namespace {

/// A monitor with one counter and timed entry points for every front end.
class TimedCell : public Monitor {
public:
  explicit TimedCell(MonitorConfig Cfg = {}) : Monitor(Cfg) {
    N = local("n");
  }

  bool awaitAtLeastEdsl(int64_t Want, std::chrono::nanoseconds Timeout,
                        time::CancelToken *Tok = nullptr) {
    Region R(*this);
    return waitUntilFor(Count >= lit(Want), Timeout, Tok);
  }

  bool awaitAtLeastParsed(int64_t Want, std::chrono::nanoseconds Timeout,
                          time::CancelToken *Tok = nullptr) {
    Region R(*this);
    return waitUntilFor("count >= n", locals().bindInt(N, Want), Timeout,
                        Tok);
  }

  bool awaitAtLeastBy(int64_t Want, time::Deadline D,
                      time::CancelToken *Tok = nullptr) {
    Region R(*this);
    return waitUntilBy(Count >= lit(Want), D, Tok);
  }

  void add(int64_t V) {
    Region R(*this);
    Count += V;
  }

  int64_t count() {
    return synchronized([this] { return Count.get(); });
  }

  const ManagerStats &stats() { return conditionManager().stats(); }

  /// Lock-guarded snapshot of the timeout counter, for polling while
  /// other threads are still running (stats() itself is only safe to
  /// read quiescently).
  uint64_t timeoutsSync() {
    return synchronized(
        [this] { return conditionManager().stats().Timeouts; });
  }

  AUTOSYNCH_TEST_WAITER_PROBE()

private:
  Shared<int64_t> Count{*this, "count", 0};
  VarId N;
};

struct Combo {
  SignalPolicy Policy;
  sync::Backend Backend;
};

const std::vector<Combo> &allCombos() {
  static const std::vector<Combo> Combos = {
      {SignalPolicy::Tagged, sync::Backend::Std},
      {SignalPolicy::Tagged, sync::Backend::Futex},
      {SignalPolicy::LinearScan, sync::Backend::Std},
      {SignalPolicy::LinearScan, sync::Backend::Futex},
      {SignalPolicy::Broadcast, sync::Backend::Std},
      {SignalPolicy::Broadcast, sync::Backend::Futex},
  };
  return Combos;
}

MonitorConfig configOf(const Combo &C) {
  MonitorConfig Cfg;
  Cfg.Policy = C.Policy;
  Cfg.Backend = C.Backend;
  return Cfg;
}

std::string comboName(const Combo &C) {
  return std::string(signalPolicyName(C.Policy)) + "/" +
         sync::backendName(C.Backend);
}

TEST(TimedWaitTest, AlreadyTrueReturnsImmediately) {
  for (const Combo &C : allCombos()) {
    SCOPED_TRACE(comboName(C));
    TimedCell M(configOf(C));
    M.add(5);
    // Zero timeout: predicate-first means success anyway.
    EXPECT_TRUE(M.awaitAtLeastEdsl(5, 0ns));
    EXPECT_TRUE(M.awaitAtLeastParsed(3, 0ns));
    EXPECT_TRUE(M.awaitAtLeastBy(1, time::Deadline{0})); // Deadline past.
    EXPECT_EQ(M.stats().Timeouts, 0u);
  }
}

TEST(TimedWaitTest, TimesOutWhenNeverSatisfied) {
  for (const Combo &C : allCombos()) {
    SCOPED_TRACE(comboName(C));
    TimedCell M(configOf(C));
    auto T0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(M.awaitAtLeastEdsl(1, 30ms));
    auto Elapsed = std::chrono::steady_clock::now() - T0;
    EXPECT_GE(Elapsed, 30ms) << "returned before the deadline";
    EXPECT_EQ(M.stats().Timeouts, 1u);
    EXPECT_EQ(M.stats().TimedWaits, 1u);
    // The monitor stays fully usable afterwards.
    M.add(2);
    EXPECT_TRUE(M.awaitAtLeastEdsl(2, 0ns));
    EXPECT_EQ(M.count(), 2);
  }
}

TEST(TimedWaitTest, SucceedsWhenMadeTrueBeforeDeadline) {
  for (const Combo &C : allCombos()) {
    SCOPED_TRACE(comboName(C));
    TimedCell M(configOf(C));
    std::thread Setter([&] {
      testutil::awaitWaiters(M, 1);
      M.add(7);
    });
    EXPECT_TRUE(M.awaitAtLeastParsed(7, 10s));
    Setter.join();
    EXPECT_EQ(M.stats().Timeouts, 0u);
  }
}

TEST(TimedWaitTest, ParsedAndEdslShareTimeoutSemantics) {
  for (const Combo &C : allCombos()) {
    SCOPED_TRACE(comboName(C));
    TimedCell M(configOf(C));
    EXPECT_FALSE(M.awaitAtLeastParsed(100, 20ms));
    EXPECT_FALSE(M.awaitAtLeastEdsl(100, 20ms));
    EXPECT_EQ(M.stats().Timeouts, 2u);
  }
}

TEST(TimedWaitTest, RepeatTimedWaitsHitThePlanCache) {
  TimedCell M; // Default: Tagged/Std, plan cache on.
  for (int I = 0; I != 4; ++I)
    EXPECT_FALSE(M.awaitAtLeastParsed(50 + I, 10ms));
  // One shape, four bindings: the timed path must ride the bind table
  // (allocation-free steady state), not the uncached pipeline.
  EXPECT_GE(M.stats().PlanBindHits + M.stats().PlanColdBinds, 4u);
  EXPECT_GE(M.stats().Timeouts, 4u);
}

TEST(TimedWaitTest, CancelTokenAbortsBlockedWait) {
  for (const Combo &C : allCombos()) {
    SCOPED_TRACE(comboName(C));
    TimedCell M(configOf(C));
    time::CancelToken Tok;
    std::thread Canceller([&] {
      testutil::awaitWaiters(M, 1);
      Tok.cancel();
    });
    auto T0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(M.awaitAtLeastEdsl(1, 10s, &Tok));
    auto Elapsed = std::chrono::steady_clock::now() - T0;
    EXPECT_LT(Elapsed, 5s) << "cancel did not cut the wait short";
    Canceller.join();
    EXPECT_EQ(M.stats().Cancels, 1u);
    EXPECT_EQ(M.stats().Timeouts, 0u);
    EXPECT_TRUE(Tok.cancelled());
    EXPECT_EQ(Tok.registeredWaits(), 0u);
  }
}

TEST(TimedWaitTest, CancelledTokenFailsFastWithoutBlocking) {
  for (const Combo &C : allCombos()) {
    SCOPED_TRACE(comboName(C));
    TimedCell M(configOf(C));
    time::CancelToken Tok;
    Tok.cancel();
    auto T0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(M.awaitAtLeastEdsl(1, 10s, &Tok));
    EXPECT_LT(std::chrono::steady_clock::now() - T0, 1s);
    // Predicate-first: a true predicate beats a cancelled token.
    M.add(1);
    EXPECT_TRUE(M.awaitAtLeastEdsl(1, 10s, &Tok));
  }
}

TEST(TimedWaitTest, CancellationOnlyWaitViaNeverDeadline) {
  TimedCell M;
  time::CancelToken Tok;
  std::thread Canceller([&] {
    testutil::awaitWaiters(M, 1);
    Tok.cancel();
  });
  EXPECT_FALSE(M.awaitAtLeastBy(1, time::Deadline::never(), &Tok));
  Canceller.join();
  EXPECT_EQ(M.stats().Cancels, 1u);
}

TEST(TimedWaitTest, OneTokenCancelsWaitsAcrossMonitors) {
  TimedCell A, B;
  time::CancelToken Tok;
  std::thread TA([&] { EXPECT_FALSE(A.awaitAtLeastEdsl(1, 10s, &Tok)); });
  std::thread TB([&] { EXPECT_FALSE(B.awaitAtLeastEdsl(1, 10s, &Tok)); });
  testutil::awaitWaiters(A, 1);
  testutil::awaitWaiters(B, 1);
  EXPECT_EQ(Tok.registeredWaits(), 2u);
  Tok.cancel();
  TA.join();
  TB.join();
  EXPECT_EQ(A.stats().Cancels, 1u);
  EXPECT_EQ(B.stats().Cancels, 1u);
}

TEST(TimedWaitTest, ExpiredWaiterDoesNotStrandSiblings) {
  // A timed waiter and a long-deadline waiter share one predicate
  // record. The timed one expires while exit-path traffic drives the
  // wheel; the long one must still be woken when the predicate turns
  // true — retirement of expired waiters must never retire the record
  // under a live waiter.
  for (const Combo &C : allCombos()) {
    SCOPED_TRACE(comboName(C));
    TimedCell M(configOf(C));
    std::thread Timed([&] { EXPECT_FALSE(M.awaitAtLeastParsed(9, 3s)); });
    std::thread Long([&] { EXPECT_TRUE(M.awaitAtLeastParsed(9, 60s)); });
    testutil::awaitWaiters(M, 2); // Both park well inside the 3s bound.
    // Exit-path traffic (no state change) until the timed waiter has
    // provably expired and left; the record must stay live for the
    // sibling throughout.
    auto Give = std::chrono::steady_clock::now() + 40s;
    while (M.timeoutsSync() == 0 &&
           std::chrono::steady_clock::now() < Give)
      std::this_thread::sleep_for(2ms); // timeoutsSync is the traffic.
    Timed.join();
    EXPECT_EQ(M.stats().Timeouts, 1u);
    M.add(9); // Now satisfy the surviving waiter.
    Long.join();
  }
}

TEST(TimedWaitTest, HandoffAtDeadlineIsAcceptedNotStolen) {
  // The predicate turns true around the moment the deadline passes; the
  // outcome may be either a success (predicate-first accepts the relayed
  // signal, even late) or a genuine timeout — but timeouts must be
  // counted exactly once per false return and conservation must hold
  // (a "stolen" signal would show up as a lost add or a hang).
  TimedCell M;
  AUTOSYNCH_SEEDED_RNG(R, 9102);
  uint64_t FalseReturns = 0;
  for (int I = 0; I != 20; ++I) {
    auto Delay = std::chrono::microseconds(R.range(0, 20000));
    std::thread Setter([&, Delay] {
      std::this_thread::sleep_for(Delay);
      M.add(1);
    });
    if (!M.awaitAtLeastEdsl(I + 1, 10ms))
      ++FalseReturns;
    Setter.join();
  }
  EXPECT_EQ(M.count(), 20); // Conservation: every round added one.
  EXPECT_EQ(M.stats().Timeouts, FalseReturns); // Exactly once per false.
}

TEST(TimedWaitTest, WheelWakeupsRetireExpiredWaitersUnderTraffic) {
  // With a long condvar bound (deadline far) but... here the waiter's own
  // bound equals the deadline, so wheel wakeups only accelerate; assert
  // the machinery engages at all under exit traffic: stats from the
  // workload run already cover >0, here we check the counter is wired.
  TimedCell M;
  std::thread Timed([&] { EXPECT_FALSE(M.awaitAtLeastEdsl(1000, 60ms)); });
  testutil::awaitWaiters(M, 1);
  auto Deadline = std::chrono::steady_clock::now() + 2s;
  while (M.timeoutsSync() == 0 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(1ms); // Each poll enters/exits: expiry.
  Timed.join();
  EXPECT_EQ(M.stats().Timeouts, 1u);
}

TEST(TimedWaitTest, BroadcastPolicyKeepsTimedSemantics) {
  MonitorConfig Cfg;
  Cfg.Policy = SignalPolicy::Broadcast;
  TimedCell M(Cfg);
  EXPECT_FALSE(M.awaitAtLeastEdsl(3, 30ms));
  EXPECT_EQ(M.stats().Timeouts, 1u);
  std::thread Setter([&] {
    testutil::awaitWaiters(M, 1);
    M.add(3);
  });
  EXPECT_TRUE(M.awaitAtLeastEdsl(3, 10s));
  Setter.join();
}

TEST(TimedWaitTest, TimedCountersFlushToProcessGlobals) {
  sync::TimedCountersSnapshot Before =
      sync::TimedCounters::global().snapshot();
  {
    TimedCell M;
    EXPECT_FALSE(M.awaitAtLeastEdsl(1, 10ms));
    time::CancelToken Tok;
    Tok.cancel();
    EXPECT_FALSE(M.awaitAtLeastEdsl(1, 10s, &Tok));
  } // Destruction flushes the partial batch.
  sync::TimedCountersSnapshot Delta =
      sync::TimedCounters::global().snapshot() - Before;
  EXPECT_GE(Delta.TimedWaits, 2u);
  EXPECT_GE(Delta.Timeouts, 1u);
  EXPECT_GE(Delta.Cancels, 1u);
}

} // namespace

//===- tests/support/RngTest.cpp - RNG tests --------------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace autosynch;

TEST(RngTest, DeterministicFromSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5);
}

TEST(RngTest, RangeIsInclusive) {
  Rng R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(1, 6);
    ASSERT_GE(V, 1);
    ASSERT_LE(V, 6);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 6u); // Every face of the die appears.
}

TEST(RngTest, RangeSingleton) {
  Rng R(9);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(R.range(5, 5), 5);
}

TEST(RngTest, RangeNegativeBounds) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.range(-8, -3);
    ASSERT_GE(V, -8);
    ASSERT_LE(V, -3);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng R(13);
  for (int I = 0; I != 100; ++I) {
    EXPECT_TRUE(R.chance(1, 1));
    EXPECT_FALSE(R.chance(0, 1));
  }
}

TEST(RngTest, ChanceRoughlyFair) {
  Rng R(17);
  int Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += R.chance(1, 2);
  EXPECT_GT(Hits, 4500);
  EXPECT_LT(Hits, 5500);
}

//===- tests/support/StatsTest.cpp - Run statistics tests ------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "support/Rng.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace autosynch;

TEST(StatsTest, SingleSampleIsItsOwnMean) {
  RunSummary S = summarizeRuns({3.5});
  EXPECT_DOUBLE_EQ(S.Mean, 3.5);
  EXPECT_DOUBLE_EQ(S.Min, 3.5);
  EXPECT_DOUBLE_EQ(S.Max, 3.5);
  EXPECT_EQ(S.Retained, 1);
  EXPECT_DOUBLE_EQ(S.StdDev, 0.0);
}

TEST(StatsTest, TwoSamplesNothingDropped) {
  RunSummary S = summarizeRuns({1.0, 3.0});
  EXPECT_DOUBLE_EQ(S.Mean, 2.0);
  EXPECT_EQ(S.Retained, 2);
}

TEST(StatsTest, DropsBestAndWorst) {
  // Paper §6.1: remove the best and worst results, then average.
  RunSummary S = summarizeRuns({100.0, 2.0, 3.0, 4.0, 0.001});
  EXPECT_DOUBLE_EQ(S.Mean, 3.0);
  EXPECT_EQ(S.Retained, 3);
  EXPECT_DOUBLE_EQ(S.Min, 0.001);
  EXPECT_DOUBLE_EQ(S.Max, 100.0);
}

TEST(StatsTest, OutliersDoNotSkewMean) {
  std::vector<double> Samples(25, 10.0);
  Samples[0] = 1000.0; // One pathological run.
  Samples[1] = 0.0;    // One suspiciously fast run.
  RunSummary S = summarizeRuns(Samples);
  EXPECT_DOUBLE_EQ(S.Mean, 10.0);
  EXPECT_EQ(S.Retained, 23);
}

TEST(StatsTest, StdDevOfConstantSamplesIsZero) {
  RunSummary S = summarizeRuns({5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(S.StdDev, 0.0);
}

TEST(StatsTest, StopwatchAdvances) {
  Stopwatch W;
  volatile double Sink = 0;
  for (int I = 0; I != 100000; ++I)
    Sink = Sink + I;
  EXPECT_GT(W.nanos(), 0u);
  EXPECT_GE(W.seconds(), 0.0);
}

TEST(StatsTest, StopwatchRestartResets) {
  Stopwatch W;
  volatile double Sink = 0;
  for (int I = 0; I != 100000; ++I)
    Sink = Sink + I;
  uint64_t First = W.nanos();
  W.restart();
  EXPECT_LE(W.nanos(), First + 1000000); // Fresh epoch, allow 1ms slack.
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.minNanos(), 0u);
  EXPECT_EQ(H.maxNanos(), 0u);
  EXPECT_DOUBLE_EQ(H.meanNanos(), 0.0);
  EXPECT_EQ(H.quantileNanos(0.5), 0u);
}

TEST(LatencyHistogramTest, SingleSampleIsEveryQuantile) {
  LatencyHistogram H;
  H.record(12345);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.minNanos(), 12345u);
  EXPECT_EQ(H.maxNanos(), 12345u);
  EXPECT_DOUBLE_EQ(H.meanNanos(), 12345.0);
  // 12345 lands in a log bucket; the reported quantile is the bucket's
  // lower bound, within the histogram's ~3% relative error.
  for (double Q : {0.0, 0.5, 0.99, 1.0}) {
    uint64_t V = H.quantileNanos(Q);
    EXPECT_LE(V, 12345u);
    EXPECT_GE(V, 12345u - 12345u / 16);
  }
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // The first two octaves (values < 64) are stored exactly.
  LatencyHistogram H;
  for (uint64_t V = 0; V != 64; ++V)
    H.record(V);
  EXPECT_EQ(H.quantileNanos(1.0 / 64), 0u);
  EXPECT_EQ(H.quantileNanos(0.5), 31u);
  EXPECT_EQ(H.quantileNanos(1.0), 63u);
}

TEST(LatencyHistogramTest, QuantilesWithinRelativeErrorOfOracle) {
  AUTOSYNCH_SEEDED_RNG(R, 4242);
  LatencyHistogram H;
  std::vector<uint64_t> Samples;
  for (int I = 0; I != 20000; ++I) {
    // Mix of magnitudes: ns to tens of seconds.
    uint64_t V = R.next() >> (R.range(20, 60));
    Samples.push_back(V);
    H.record(V);
  }
  std::sort(Samples.begin(), Samples.end());
  for (double Q : {0.5, 0.9, 0.95, 0.99}) {
    size_t Rank = static_cast<size_t>(
        std::ceil(Q * static_cast<double>(Samples.size())));
    uint64_t Oracle = Samples[std::min(Rank, Samples.size()) - 1];
    uint64_t Got = H.quantileNanos(Q);
    // Bucket lower bound: never above the oracle, never further below
    // than one sub-bucket (1/32 relative).
    EXPECT_LE(Got, Oracle) << "q=" << Q;
    EXPECT_GE(Got, Oracle - Oracle / 16 - 1) << "q=" << Q;
  }
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  AUTOSYNCH_SEEDED_RNG(R, 99);
  LatencyHistogram A, B, Combined;
  for (int I = 0; I != 5000; ++I) {
    uint64_t V = R.next() >> 40;
    if (I % 2) {
      A.record(V);
    } else {
      B.record(V);
    }
    Combined.record(V);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Combined.count());
  EXPECT_EQ(A.minNanos(), Combined.minNanos());
  EXPECT_EQ(A.maxNanos(), Combined.maxNanos());
  EXPECT_DOUBLE_EQ(A.meanNanos(), Combined.meanNanos());
  for (double Q : {0.25, 0.5, 0.95, 0.99})
    EXPECT_EQ(A.quantileNanos(Q), Combined.quantileNanos(Q)) << "q=" << Q;
}

TEST(LatencyHistogramTest, ExtremeValuesDoNotOverflowBuckets) {
  LatencyHistogram H;
  H.record(0);
  H.record(~0ULL);
  EXPECT_EQ(H.count(), 2u);
  EXPECT_EQ(H.minNanos(), 0u);
  EXPECT_EQ(H.maxNanos(), ~0ULL);
  EXPECT_EQ(H.quantileNanos(0.5), 0u);
  EXPECT_GT(H.quantileNanos(1.0), ~0ULL - (~0ULL >> 5));
}

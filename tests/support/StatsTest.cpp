//===- tests/support/StatsTest.cpp - Run statistics tests ------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace autosynch;

TEST(StatsTest, SingleSampleIsItsOwnMean) {
  RunSummary S = summarizeRuns({3.5});
  EXPECT_DOUBLE_EQ(S.Mean, 3.5);
  EXPECT_DOUBLE_EQ(S.Min, 3.5);
  EXPECT_DOUBLE_EQ(S.Max, 3.5);
  EXPECT_EQ(S.Retained, 1);
  EXPECT_DOUBLE_EQ(S.StdDev, 0.0);
}

TEST(StatsTest, TwoSamplesNothingDropped) {
  RunSummary S = summarizeRuns({1.0, 3.0});
  EXPECT_DOUBLE_EQ(S.Mean, 2.0);
  EXPECT_EQ(S.Retained, 2);
}

TEST(StatsTest, DropsBestAndWorst) {
  // Paper §6.1: remove the best and worst results, then average.
  RunSummary S = summarizeRuns({100.0, 2.0, 3.0, 4.0, 0.001});
  EXPECT_DOUBLE_EQ(S.Mean, 3.0);
  EXPECT_EQ(S.Retained, 3);
  EXPECT_DOUBLE_EQ(S.Min, 0.001);
  EXPECT_DOUBLE_EQ(S.Max, 100.0);
}

TEST(StatsTest, OutliersDoNotSkewMean) {
  std::vector<double> Samples(25, 10.0);
  Samples[0] = 1000.0; // One pathological run.
  Samples[1] = 0.0;    // One suspiciously fast run.
  RunSummary S = summarizeRuns(Samples);
  EXPECT_DOUBLE_EQ(S.Mean, 10.0);
  EXPECT_EQ(S.Retained, 23);
}

TEST(StatsTest, StdDevOfConstantSamplesIsZero) {
  RunSummary S = summarizeRuns({5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(S.StdDev, 0.0);
}

TEST(StatsTest, StopwatchAdvances) {
  Stopwatch W;
  volatile double Sink = 0;
  for (int I = 0; I != 100000; ++I)
    Sink = Sink + I;
  EXPECT_GT(W.nanos(), 0u);
  EXPECT_GE(W.seconds(), 0.0);
}

TEST(StatsTest, StopwatchRestartResets) {
  Stopwatch W;
  volatile double Sink = 0;
  for (int I = 0; I != 100000; ++I)
    Sink = Sink + I;
  uint64_t First = W.nanos();
  W.restart();
  EXPECT_LE(W.nanos(), First + 1000000); // Fresh epoch, allow 1ms slack.
}

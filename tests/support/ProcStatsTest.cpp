//===- tests/support/ProcStatsTest.cpp - Context-switch counter tests ------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/ProcStats.h"

#include <gtest/gtest.h>

#include <thread>

using namespace autosynch;

TEST(ProcStatsTest, CountersAreMonotonic) {
  ContextSwitches A = readContextSwitches();
  // Voluntary switches: sleep forces at least one.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ContextSwitches B = readContextSwitches();
  EXPECT_GE(B.Voluntary, A.Voluntary);
  EXPECT_GE(B.Involuntary, A.Involuntary);
  EXPECT_GE(B.total(), A.total());
}

TEST(ProcStatsTest, SleepNeverDecreasesCounters) {
  // Some sandboxed kernels report zero for ru_nvcsw; the counters must
  // still be readable and monotonic (Fig. 15 falls back to the sync-layer
  // event counters when the OS reports nothing).
  ContextSwitches A = readContextSwitches();
  for (int I = 0; I != 5; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ContextSwitches B = readContextSwitches();
  EXPECT_GE(B.Voluntary, A.Voluntary);
  EXPECT_GE(B.total(), A.total());
}

TEST(ProcStatsTest, DifferenceOperator) {
  ContextSwitches A{10, 5}, B{25, 9};
  ContextSwitches D = B - A;
  EXPECT_EQ(D.Voluntary, 15u);
  EXPECT_EQ(D.Involuntary, 4u);
  EXPECT_EQ(D.total(), 19u);
}

//===- tests/parse/ParserTest.cpp - Predicate parser tests -------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "expr/Eval.h"
#include "expr/Printer.h"
#include "parse/PredicateParser.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class ParserTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;

  ExprRef parseOk(std::string_view Src) {
    PredicateParseResult R = parsePredicate(Src, A, V.Syms);
    EXPECT_TRUE(R.ok()) << Src << ": " << R.Error.toString();
    return R.Expr;
  }

  std::string parseErr(std::string_view Src) {
    PredicateParseResult R = parsePredicate(Src, A, V.Syms);
    EXPECT_FALSE(R.ok()) << Src;
    return R.Error.Message;
  }
};

TEST_F(ParserTest, SimpleComparison) {
  ExprRef E = parseOk("x >= 3");
  EXPECT_EQ(E, A.binary(ExprKind::Ge, A.var(V.Syms.info(V.X)),
                        A.intLit(3)));
}

TEST_F(ParserTest, PrecedenceMulOverAdd) {
  EXPECT_EQ(parseOk("x + 2 * y == 7"),
            parseOk("x + (2 * y) == 7"));
  EXPECT_NE(parseOk("x + 2 * y == 7"), parseOk("(x + 2) * y == 7"));
}

TEST_F(ParserTest, PrecedenceAndOverOr) {
  // a || b && c parses as a || (b && c).
  ExprRef E = parseOk("flag || x > 0 && y > 0");
  EXPECT_EQ(E->kind(), ExprKind::Or);
  EXPECT_EQ(E->rhs()->kind(), ExprKind::And);
}

TEST_F(ParserTest, LeftAssociativeChains) {
  // x - y - 1 is (x - y) - 1.
  ExprRef E = parseOk("x - y - 1 == 0");
  ExprRef Sub = E->lhs();
  EXPECT_EQ(Sub->kind(), ExprKind::Sub);
  EXPECT_EQ(Sub->lhs()->kind(), ExprKind::Sub);
}

TEST_F(ParserTest, UnaryOperators) {
  EXPECT_EQ(parseOk("-x < 0"),
            A.binary(ExprKind::Lt,
                     A.unary(ExprKind::Neg, A.var(V.Syms.info(V.X))),
                     A.intLit(0)));
  EXPECT_EQ(parseOk("!flag"),
            A.unary(ExprKind::Not, A.var(V.Syms.info(V.Flag))));
  EXPECT_EQ(parseOk("!!flag"), parseOk("!(!flag)"));
}

TEST_F(ParserTest, ParenthesizedGrouping) {
  EXPECT_EQ(parseOk("(x + 1) * y >= 6"),
            A.binary(ExprKind::Ge,
                     A.binary(ExprKind::Mul,
                              A.binary(ExprKind::Add,
                                       A.var(V.Syms.info(V.X)),
                                       A.intLit(1)),
                              A.var(V.Syms.info(V.Y))),
                     A.intLit(6)));
}

TEST_F(ParserTest, BoolLiteralsAndVars) {
  EXPECT_EQ(parseOk("true"), A.boolLit(true));
  EXPECT_EQ(parseOk("flag == false"),
            A.binary(ExprKind::Eq, A.var(V.Syms.info(V.Flag)),
                     A.boolLit(false)));
}

TEST_F(ParserTest, ComparisonIsNonAssociative) {
  EXPECT_NE(parseErr("x < y < z").find("unexpected"), std::string::npos);
}

TEST_F(ParserTest, UndeclaredVariableIsError) {
  EXPECT_NE(parseErr("ghost > 0").find("undeclared variable 'ghost'"),
            std::string::npos);
}

TEST_F(ParserTest, AutoDeclareCreatesLocals) {
  PredicateParseOptions Options;
  Options.AutoDeclareLocals = true;
  PredicateParseResult R = parsePredicate("x >= num", A, V.Syms, Options);
  ASSERT_TRUE(R.ok());
  const VarInfo *Num = V.Syms.lookup("num");
  ASSERT_NE(Num, nullptr);
  EXPECT_EQ(Num->Scope, VarScope::Local);
  EXPECT_EQ(Num->Type, TypeKind::Int);
}

TEST_F(ParserTest, TypeErrors) {
  EXPECT_NE(parseErr("x && flag").find("'&&' requires bool"),
            std::string::npos);
  EXPECT_NE(parseErr("flag + 1").find("arithmetic requires int"),
            std::string::npos);
  EXPECT_NE(parseErr("flag < true").find("ordering comparison"),
            std::string::npos);
  EXPECT_NE(parseErr("x == flag").find("same type"), std::string::npos);
  EXPECT_NE(parseErr("!x").find("'!' requires a bool"), std::string::npos);
  EXPECT_NE(parseErr("-flag > 0").find("unary '-' requires an int"),
            std::string::npos);
}

TEST_F(ParserTest, IntPredicateRejected) {
  EXPECT_NE(parseErr("x + 1").find("must be bool-typed"),
            std::string::npos);
}

TEST_F(ParserTest, IntExpressionAcceptedByParseExpression) {
  PredicateParseResult R = parseExpression("x + 1", A, V.Syms);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Expr->type(), TypeKind::Int);
}

TEST_F(ParserTest, TrailingGarbageIsError) {
  EXPECT_NE(parseErr("x > 0 x").find("unexpected"), std::string::npos);
}

TEST_F(ParserTest, MissingCloseParen) {
  EXPECT_NE(parseErr("(x > 0").find("expected ')'"), std::string::npos);
}

TEST_F(ParserTest, EmptyInputIsError) {
  EXPECT_NE(parseErr("").find("expected an expression"),
            std::string::npos);
}

TEST_F(ParserTest, ErrorLocationsAreReported) {
  PredicateParseResult R = parsePredicate("x >\n  ghost", A, V.Syms);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error.Line, 2);
  EXPECT_EQ(R.Error.Col, 3);
}

TEST_F(ParserTest, PaperExamplePredicates) {
  // Predicates from the paper's figures parse and round-trip.
  PredicateParseOptions Options;
  Options.AutoDeclareLocals = true;
  for (const char *Src :
       {"x == 1 && y == 6 || z != 8", "x - 2 * y > 9",
        "x >= 5 && y != 1", "x > 7", "x == 8 && y == 9"}) {
    PredicateParseResult R = parsePredicate(Src, A, V.Syms, Options);
    ASSERT_TRUE(R.ok()) << Src;
    EXPECT_EQ(printExpr(R.Expr, V.Syms), Src);
  }
}

} // namespace

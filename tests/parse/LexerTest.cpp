//===- tests/parse/LexerTest.cpp - Lexer tests -------------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "parse/Lexer.h"

#include <gtest/gtest.h>

using namespace autosynch;

namespace {

std::vector<TokenKind> kinds(std::string_view Src) {
  std::vector<TokenKind> Out;
  for (const Token &T : Lexer::tokenize(Src))
    Out.push_back(T.Kind);
  return Out;
}

TEST(LexerTest, EmptyInput) {
  Lexer L("");
  EXPECT_TRUE(L.next().is(TokenKind::Eof));
  EXPECT_TRUE(L.next().is(TokenKind::Eof)); // Eof repeats.
}

TEST(LexerTest, WhitespaceOnly) {
  EXPECT_TRUE(kinds(" \t\r\n  ").empty());
}

TEST(LexerTest, Identifiers) {
  auto Toks = Lexer::tokenize("count putPtr _x a1_b2");
  ASSERT_EQ(Toks.size(), 4u);
  for (const Token &T : Toks)
    EXPECT_TRUE(T.is(TokenKind::Identifier));
  EXPECT_EQ(Toks[0].Spelling, "count");
  EXPECT_EQ(Toks[3].Spelling, "a1_b2");
}

TEST(LexerTest, Keywords) {
  EXPECT_EQ(kinds("monitor shared method waituntil int bool"),
            (std::vector<TokenKind>{
                TokenKind::KwMonitor, TokenKind::KwShared,
                TokenKind::KwMethod, TokenKind::KwWaituntil,
                TokenKind::KwInt, TokenKind::KwBool}));
  EXPECT_EQ(kinds("true false if else while return returns"),
            (std::vector<TokenKind>{
                TokenKind::KwTrue, TokenKind::KwFalse, TokenKind::KwIf,
                TokenKind::KwElse, TokenKind::KwWhile, TokenKind::KwReturn,
                TokenKind::KwReturns}));
}

TEST(LexerTest, KeywordPrefixIsIdentifier) {
  auto Toks = Lexer::tokenize("monitors truex whileLoop");
  for (const Token &T : Toks)
    EXPECT_TRUE(T.is(TokenKind::Identifier)) << T.Spelling;
}

TEST(LexerTest, IntegerLiterals) {
  auto Toks = Lexer::tokenize("0 42 9223372036854775807");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].IntValue, 0);
  EXPECT_EQ(Toks[1].IntValue, 42);
  EXPECT_EQ(Toks[2].IntValue, INT64_MAX);
}

TEST(LexerTest, IntegerOverflowIsError) {
  auto Toks = Lexer::tokenize("9223372036854775808"); // INT64_MAX + 1.
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_TRUE(Toks[0].is(TokenKind::Error));
}

TEST(LexerTest, Operators) {
  EXPECT_EQ(kinds("+ - * / % == != < <= > >= && || ! ="),
            (std::vector<TokenKind>{
                TokenKind::Plus, TokenKind::Minus, TokenKind::Star,
                TokenKind::Slash, TokenKind::Percent, TokenKind::EqEq,
                TokenKind::NotEq, TokenKind::Less, TokenKind::LessEq,
                TokenKind::Greater, TokenKind::GreaterEq, TokenKind::AmpAmp,
                TokenKind::PipePipe, TokenKind::Bang, TokenKind::Assign}));
}

TEST(LexerTest, MaximalMunch) {
  // "<=" is one token, not "<" "=".
  EXPECT_EQ(kinds("a<=b"), (std::vector<TokenKind>{TokenKind::Identifier,
                                                   TokenKind::LessEq,
                                                   TokenKind::Identifier}));
  EXPECT_EQ(kinds("a==b"), (std::vector<TokenKind>{TokenKind::Identifier,
                                                   TokenKind::EqEq,
                                                   TokenKind::Identifier}));
}

TEST(LexerTest, Punctuation) {
  EXPECT_EQ(kinds("( ) { } , ;"),
            (std::vector<TokenKind>{TokenKind::LParen, TokenKind::RParen,
                                    TokenKind::LBrace, TokenKind::RBrace,
                                    TokenKind::Comma,
                                    TokenKind::Semicolon}));
}

TEST(LexerTest, LineComments) {
  auto Toks = Lexer::tokenize("a // the rest vanishes\nb");
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Spelling, "a");
  EXPECT_EQ(Toks[1].Spelling, "b");
}

TEST(LexerTest, BlockComments) {
  auto Toks = Lexer::tokenize("a /* span\nmultiple\nlines */ b");
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_EQ(Toks[1].Spelling, "b");
  EXPECT_EQ(Toks[1].Line, 3);
}

TEST(LexerTest, UnterminatedBlockCommentReachesEof) {
  EXPECT_TRUE(kinds("a /* never closed").size() == 1);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto Toks = Lexer::tokenize("ab\n  cd");
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Line, 1);
  EXPECT_EQ(Toks[0].Col, 1);
  EXPECT_EQ(Toks[1].Line, 2);
  EXPECT_EQ(Toks[1].Col, 3);
}

TEST(LexerTest, SingleAmpersandIsError) {
  auto Toks = Lexer::tokenize("a & b");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_TRUE(Toks[1].is(TokenKind::Error));
}

TEST(LexerTest, UnknownCharacterIsError) {
  auto Toks = Lexer::tokenize("a @ b");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_TRUE(Toks[1].is(TokenKind::Error));
}

} // namespace

//===- tests/bench_support/BenchSupportTest.cpp - Harness tests --------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "bench_support/BenchOptions.h"
#include "bench_support/Drivers.h"
#include "bench_support/Table.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace autosynch;
using namespace autosynch::bench;

namespace {

//===----------------------------------------------------------------------===//
// BenchOptions
//===----------------------------------------------------------------------===//

struct EnvGuard {
  ~EnvGuard() {
    unsetenv("AUTOSYNCH_BENCH_THREADS");
    unsetenv("AUTOSYNCH_BENCH_REPS");
    unsetenv("AUTOSYNCH_BENCH_SCALE");
  }
};

TEST(BenchOptionsTest, Defaults) {
  EnvGuard G;
  BenchOptions O = BenchOptions::fromEnv();
  EXPECT_EQ(O.ThreadCounts, (std::vector<int>{2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(O.Reps, 3);
  EXPECT_DOUBLE_EQ(O.OpsScale, 1.0);
}

TEST(BenchOptionsTest, ThreadListFromEnv) {
  EnvGuard G;
  setenv("AUTOSYNCH_BENCH_THREADS", "2,16,256", 1);
  BenchOptions O = BenchOptions::fromEnv();
  EXPECT_EQ(O.ThreadCounts, (std::vector<int>{2, 16, 256}));
}

TEST(BenchOptionsTest, MalformedThreadListFallsBack) {
  EnvGuard G;
  setenv("AUTOSYNCH_BENCH_THREADS", "zero,,-3", 1);
  BenchOptions O = BenchOptions::fromEnv();
  EXPECT_EQ(O.ThreadCounts, (std::vector<int>{2, 4, 8, 16, 32, 64}));
}

TEST(BenchOptionsTest, RepsAndScale) {
  EnvGuard G;
  setenv("AUTOSYNCH_BENCH_REPS", "7", 1);
  setenv("AUTOSYNCH_BENCH_SCALE", "0.25", 1);
  BenchOptions O = BenchOptions::fromEnv();
  EXPECT_EQ(O.Reps, 7);
  EXPECT_DOUBLE_EQ(O.OpsScale, 0.25);
  EXPECT_EQ(O.scaled(1000), 250);
  EXPECT_EQ(O.scaled(1), 1); // Never below one operation.
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, RowWidthMismatchIsFatal) {
  Table T({"a", "b"});
  EXPECT_DEATH(T.addRow({"only-one"}), "width mismatch");
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::fmtSeconds(1.2345), "1.234");
  EXPECT_EQ(Table::fmtSeconds(0.5), "0.500");
  EXPECT_EQ(Table::fmtCount(42), "42");
  EXPECT_EQ(Table::fmtRatio(26.94), "26.9x");
}

//===----------------------------------------------------------------------===//
// Drivers (small smoke runs; conservation is asserted via problem state)
//===----------------------------------------------------------------------===//

TEST(DriversTest, LeaseManagerDriverBalancesGrants) {
  auto L = makeLeaseManager(Mechanism::AutoSynch, 3);
  RunMetrics M = runLeaseManager(*L, 4, 400, /*TimedEvery=*/5,
                                 /*TimeoutNs=*/10u * 1000 * 1000);
  EXPECT_EQ(L->available(), 3);
  // Every op eventually acquired (timed expiries are retried).
  EXPECT_GE(L->grants(), 400);
  EXPECT_GE(M.Seconds, 0.0);
}

TEST(DriversTest, TokenBucketDriverConservesTokens) {
  auto B = makeTokenBucket(Mechanism::AutoSynch, 16);
  runTokenBucket(*B, 3, 16, 4000, /*Seed=*/11);
  EXPECT_EQ(B->tokens(), 0); // Supply exactly covered demand.
  EXPECT_EQ(B->timeouts(), 0);
}

TEST(DriversTest, BoundedBufferDriverDrains) {
  auto B = makeBoundedBuffer(Mechanism::AutoSynch, 8);
  RunMetrics M = runBoundedBuffer(*B, 2, 2, 500);
  EXPECT_EQ(B->size(), 0);
  EXPECT_GE(M.Seconds, 0.0);
}

TEST(DriversTest, ParamBufferDriverBalancesSupplyAndDemand) {
  auto B = makeParamBoundedBuffer(Mechanism::AutoSynch, 256);
  runParamBoundedBuffer(*B, 3, 5000, 128, /*Seed=*/7);
  EXPECT_EQ(B->size(), 0);
}

TEST(DriversTest, H2ODriverKeepsStoichiometry) {
  auto W = makeH2O(Mechanism::AutoSynch);
  runH2O(*W, 4, 300);
  EXPECT_EQ(W->molecules(), 300);
}

TEST(DriversTest, BarberDriverCompletesAllCuts) {
  auto S = makeSleepingBarber(Mechanism::AutoSynch, 4);
  runSleepingBarber(*S, 3, 300);
  EXPECT_EQ(S->haircuts(), 300);
}

TEST(DriversTest, RoundRobinDriverCompletesWholeCycles) {
  auto RR = makeRoundRobin(Mechanism::AutoSynch, 4);
  runRoundRobin(*RR, 4, 400);
  EXPECT_EQ(RR->accesses(), 400);
}

TEST(DriversTest, ReadersWritersDriverCountsOps) {
  auto RW = makeReadersWriters(Mechanism::AutoSynch);
  runReadersWriters(*RW, 2, 4, 600);
  EXPECT_EQ(RW->reads() + RW->writes(), 600);
}

TEST(DriversTest, PhilosophersDriverCountsMeals) {
  auto D = makeDiningPhilosophers(Mechanism::AutoSynch, 5);
  runDiningPhilosophers(*D, 5, 500);
  EXPECT_EQ(D->meals(), 500);
}

TEST(DriversTest, MetricsCaptureSyncEvents) {
  auto B = makeBoundedBuffer(Mechanism::Baseline, 2);
  RunMetrics M = runBoundedBuffer(*B, 2, 2, 400);
  // A capacity-2 buffer with 4 threads must block sometimes, and the
  // baseline must broadcast.
  EXPECT_GT(M.Sync.Awaits, 0u);
  EXPECT_GT(M.Sync.SignalAlls, 0u);
  EXPECT_EQ(M.Sync.contextSwitchEvents(), M.Sync.Awaits + M.Sync.Wakeups);
}

} // namespace

//===- tests/expr/EvalTest.cpp - Tree-walk evaluator tests ------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "expr/Eval.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class EvalTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;
  MapEnv Env;

  void SetUp() override {
    Env.bindInt(V.X, 10).bindInt(V.Y, -3).bindInt(V.Z, 0);
    Env.bindBool(V.Flag, true);
    Env.bindInt(V.A, 4).bindInt(V.B, 7).bindBool(V.P, false);
  }

  ExprRef x() { return A.var(V.Syms.info(V.X)); }
  ExprRef y() { return A.var(V.Syms.info(V.Y)); }
  ExprRef z() { return A.var(V.Syms.info(V.Z)); }
  ExprRef flag() { return A.var(V.Syms.info(V.Flag)); }
};

TEST_F(EvalTest, Leaves) {
  EXPECT_EQ(eval(A.intLit(42), Env), Value::makeInt(42));
  EXPECT_EQ(eval(A.boolLit(false), Env), Value::makeBool(false));
  EXPECT_EQ(eval(x(), Env), Value::makeInt(10));
  EXPECT_EQ(eval(flag(), Env), Value::makeBool(true));
}

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(evalInt(A.binary(ExprKind::Add, x(), y()), Env), 7);
  EXPECT_EQ(evalInt(A.binary(ExprKind::Sub, x(), y()), Env), 13);
  EXPECT_EQ(evalInt(A.binary(ExprKind::Mul, x(), y()), Env), -30);
  EXPECT_EQ(evalInt(A.binary(ExprKind::Div, x(), y()), Env), -3);
  EXPECT_EQ(evalInt(A.binary(ExprKind::Mod, x(), A.intLit(3)), Env), 1);
  EXPECT_EQ(evalInt(A.unary(ExprKind::Neg, y()), Env), 3);
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(evalBool(A.binary(ExprKind::Gt, x(), y()), Env));
  EXPECT_FALSE(evalBool(A.binary(ExprKind::Lt, x(), y()), Env));
  EXPECT_TRUE(evalBool(A.binary(ExprKind::Ge, x(), A.intLit(10)), Env));
  EXPECT_TRUE(evalBool(A.binary(ExprKind::Le, y(), A.intLit(-3)), Env));
  EXPECT_TRUE(evalBool(A.binary(ExprKind::Eq, z(), A.intLit(0)), Env));
  EXPECT_TRUE(evalBool(A.binary(ExprKind::Ne, x(), z()), Env));
}

TEST_F(EvalTest, BoolEqualityComparison) {
  ExprRef P = A.var(V.Syms.info(V.P));
  EXPECT_FALSE(evalBool(A.binary(ExprKind::Eq, flag(), P), Env));
  EXPECT_TRUE(evalBool(A.binary(ExprKind::Ne, flag(), P), Env));
}

TEST_F(EvalTest, ShortCircuitAndSkipsFaultingRhs) {
  // (false && x/z == 0): the division by zero on the right must never run.
  ExprRef Faulting =
      A.binary(ExprKind::Eq, A.binary(ExprKind::Div, x(), z()), A.intLit(0));
  ExprRef E = A.binary(ExprKind::And,
                       A.binary(ExprKind::Lt, x(), A.intLit(0)), Faulting);
  EXPECT_FALSE(evalBool(E, Env));
}

TEST_F(EvalTest, ShortCircuitOrSkipsFaultingRhs) {
  ExprRef Faulting =
      A.binary(ExprKind::Eq, A.binary(ExprKind::Div, x(), z()), A.intLit(0));
  ExprRef E = A.binary(ExprKind::Or,
                       A.binary(ExprKind::Gt, x(), A.intLit(0)), Faulting);
  EXPECT_TRUE(evalBool(E, Env));
}

TEST_F(EvalTest, DivisionByZeroIsFatal) {
  ExprRef E = A.binary(ExprKind::Div, x(), z());
  EXPECT_DEATH(eval(E, Env), "division by zero");
  ExprRef M = A.binary(ExprKind::Mod, x(), z());
  EXPECT_DEATH(eval(M, Env), "modulo by zero");
}

TEST_F(EvalTest, WrappingOverflow) {
  MapEnv Big;
  Big.bindInt(V.X, INT64_MAX);
  ExprRef E = A.binary(ExprKind::Add, A.var(V.Syms.info(V.X)), A.intLit(1));
  EXPECT_EQ(evalInt(E, Big), INT64_MIN);
}

TEST_F(EvalTest, UnboundVariableIsFatal) {
  MapEnv Empty;
  EXPECT_DEATH(eval(x(), Empty), "unbound variable");
}

TEST_F(EvalTest, EvalCountAdvances) {
  resetPredicateEvalCount();
  eval(x(), Env);
  eval(x(), Env);
  EXPECT_EQ(predicateEvalCount(), 2u);
}

} // namespace

//===- tests/expr/PropertyTest.cpp - Cross-evaluator properties -------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Randomized equivalence properties across the expression pipeline. These
// are the load-bearing correctness tests: if any transformation (NNF, DNF,
// canonicalization, bytecode) changed a predicate's meaning, the condition
// manager would signal wrong threads or deadlock.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dnf/Dnf.h"
#include "expr/Bytecode.h"
#include "expr/Eval.h"
#include "expr/Printer.h"
#include "expr/Subst.h"
#include "parse/PredicateParser.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

struct PropertyCase {
  uint64_t Seed;
  int Depth;
};

class PropertyTest : public ::testing::TestWithParam<PropertyCase> {
protected:
  static constexpr int TrialsPerCase = 150;
  static constexpr int EnvsPerTrial = 8;
};

INSTANTIATE_TEST_SUITE_P(
    Seeds, PropertyTest,
    ::testing::Values(PropertyCase{1, 2}, PropertyCase{2, 3},
                      PropertyCase{3, 4}, PropertyCase{4, 5},
                      PropertyCase{5, 6}),
    [](const auto &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "depth" +
             std::to_string(Info.param.Depth);
    });

TEST_P(PropertyTest, BytecodeMatchesTreeWalk) {
  Vars V;
  ExprArena A;
  AUTOSYNCH_SEEDED_RNG(R, GetParam().Seed);
  for (int T = 0; T != TrialsPerCase; ++T) {
    ExprRef E =
        testutil::randomExpr(R, A, V, TypeKind::Bool, GetParam().Depth);
    CompiledPredicate P = CompiledPredicate::compile(E);
    for (int I = 0; I != EnvsPerTrial; ++I) {
      MapEnv Env = testutil::randomEnv(R, V);
      ASSERT_EQ(P.run(Env), eval(E, Env)) << printExpr(E, V.Syms);
    }
  }
}

TEST_P(PropertyTest, BytecodeMatchesTreeWalkOnIntExprs) {
  Vars V;
  ExprArena A;
  AUTOSYNCH_SEEDED_RNG(R, GetParam().Seed ^ 0x9999);
  for (int T = 0; T != TrialsPerCase; ++T) {
    ExprRef E =
        testutil::randomExpr(R, A, V, TypeKind::Int, GetParam().Depth);
    CompiledPredicate P = CompiledPredicate::compile(E);
    for (int I = 0; I != EnvsPerTrial; ++I) {
      MapEnv Env = testutil::randomEnv(R, V);
      ASSERT_EQ(P.run(Env), eval(E, Env)) << printExpr(E, V.Syms);
    }
  }
}

TEST_P(PropertyTest, NnfPreservesMeaning) {
  Vars V;
  ExprArena A;
  AUTOSYNCH_SEEDED_RNG(R, GetParam().Seed ^ 0xABCD);
  for (int T = 0; T != TrialsPerCase; ++T) {
    ExprRef E =
        testutil::randomExpr(R, A, V, TypeKind::Bool, GetParam().Depth);
    ExprRef N = toNnf(A, E);
    for (int I = 0; I != EnvsPerTrial; ++I) {
      MapEnv Env = testutil::randomEnv(R, V);
      ASSERT_EQ(evalBool(N, Env), evalBool(E, Env))
          << printExpr(E, V.Syms) << "  NNF: " << printExpr(N, V.Syms);
    }
  }
}

TEST_P(PropertyTest, DnfPreservesMeaning) {
  Vars V;
  ExprArena A;
  AUTOSYNCH_SEEDED_RNG(R, GetParam().Seed ^ 0x1234);
  for (int T = 0; T != TrialsPerCase; ++T) {
    ExprRef E =
        testutil::randomExpr(R, A, V, TypeKind::Bool, GetParam().Depth);
    Dnf D = toDnf(A, E);
    ExprRef Back = dnfToExpr(A, D);
    for (int I = 0; I != EnvsPerTrial; ++I) {
      MapEnv Env = testutil::randomEnv(R, V);
      ASSERT_EQ(evalBool(Back, Env), evalBool(E, Env))
          << printExpr(E, V.Syms) << "  DNF: " << printExpr(Back, V.Syms);
    }
  }
}

TEST_P(PropertyTest, CanonicalizationPreservesMeaning) {
  // The strongest property: globalize, canonicalize, and compare against
  // the original under many environments. This is exactly the
  // transformation every registered waituntil predicate undergoes.
  Vars V;
  ExprArena A;
  AUTOSYNCH_SEEDED_RNG(R, GetParam().Seed ^ 0x5555);
  for (int T = 0; T != TrialsPerCase; ++T) {
    ExprRef E =
        testutil::randomExpr(R, A, V, TypeKind::Bool, GetParam().Depth);
    MapEnv Locals = testutil::randomEnv(R, V);
    ExprRef G = globalize(A, E, V.Syms, Locals);
    CanonicalPredicate CP = canonicalizePredicate(A, G);
    for (int I = 0; I != EnvsPerTrial; ++I) {
      MapEnv Env = testutil::randomEnv(R, V);
      // Keep the globalized locals fixed; vary the shared state.
      MapEnv Mixed = Locals;
      for (VarId Id : {V.X, V.Y, V.Z})
        Mixed.bind(Id, Env.get(Id));
      Mixed.bind(V.Flag, Env.get(V.Flag));
      ASSERT_EQ(evalBool(CP.Expr, Mixed), evalBool(E, Mixed))
          << printExpr(E, V.Syms)
          << "  canon: " << printExpr(CP.Expr, V.Syms);
    }
  }
}

TEST_P(PropertyTest, CanonicalizationIsIdempotent) {
  Vars V;
  ExprArena A;
  AUTOSYNCH_SEEDED_RNG(R, GetParam().Seed ^ 0x7777);
  for (int T = 0; T != TrialsPerCase; ++T) {
    ExprRef E =
        testutil::randomExpr(R, A, V, TypeKind::Bool, GetParam().Depth);
    MapEnv Locals = testutil::randomEnv(R, V);
    ExprRef G = globalize(A, E, V.Syms, Locals);
    CanonicalPredicate Once = canonicalizePredicate(A, G);
    CanonicalPredicate Twice = canonicalizePredicate(A, Once.Expr);
    ASSERT_EQ(Once.Expr, Twice.Expr) << printExpr(G, V.Syms);
  }
}

TEST_P(PropertyTest, PrinterOutputReparsesToSameNode) {
  Vars V;
  ExprArena A;
  AUTOSYNCH_SEEDED_RNG(R, GetParam().Seed ^ 0xDEAD);
  for (int T = 0; T != TrialsPerCase; ++T) {
    ExprRef E =
        testutil::randomExpr(R, A, V, TypeKind::Bool, GetParam().Depth);
    std::string Src = printExpr(E, V.Syms);
    PredicateParseResult P = parseExpression(Src, A, V.Syms);
    ASSERT_TRUE(P.ok()) << Src << "  error: " << P.Error.toString();
    ASSERT_EQ(P.Expr, E) << Src;
  }
}

} // namespace

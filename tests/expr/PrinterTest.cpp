//===- tests/expr/PrinterTest.cpp - Printer tests ---------------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "expr/Printer.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class PrinterTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;

  ExprRef x() { return A.var(V.Syms.info(V.X)); }
  ExprRef y() { return A.var(V.Syms.info(V.Y)); }
  ExprRef flag() { return A.var(V.Syms.info(V.Flag)); }

  std::string print(ExprRef E) { return printExpr(E, V.Syms); }
};

TEST_F(PrinterTest, Leaves) {
  EXPECT_EQ(print(A.intLit(42)), "42");
  EXPECT_EQ(print(A.intLit(-7)), "-7");
  EXPECT_EQ(print(A.boolLit(true)), "true");
  EXPECT_EQ(print(x()), "x");
}

TEST_F(PrinterTest, FlatArithmeticNeedsNoParens) {
  ExprRef E = A.binary(ExprKind::Add,
                       A.binary(ExprKind::Mul, x(), A.intLit(2)), y());
  EXPECT_EQ(print(E), "x * 2 + y");
}

TEST_F(PrinterTest, PrecedenceForcesParens) {
  ExprRef E = A.binary(ExprKind::Mul,
                       A.binary(ExprKind::Add, x(), A.intLit(1)), y());
  EXPECT_EQ(print(E), "(x + 1) * y");
}

TEST_F(PrinterTest, RightAssociativeChildParenthesized) {
  // x - (y - 1) must keep its parentheses; (x - y) - 1 must not.
  ExprRef Inner = A.binary(ExprKind::Sub, y(), A.intLit(1));
  EXPECT_EQ(print(A.binary(ExprKind::Sub, x(), Inner)), "x - (y - 1)");
  ExprRef Left = A.binary(ExprKind::Sub, A.binary(ExprKind::Sub, x(), y()),
                          A.intLit(1));
  EXPECT_EQ(print(Left), "x - y - 1");
}

TEST_F(PrinterTest, LogicalPrecedence) {
  ExprRef Cmp1 = A.binary(ExprKind::Gt, x(), A.intLit(0));
  ExprRef Cmp2 = A.binary(ExprKind::Lt, y(), A.intLit(5));
  ExprRef E = A.binary(ExprKind::Or, A.binary(ExprKind::And, Cmp1, Cmp2),
                       flag());
  EXPECT_EQ(print(E), "x > 0 && y < 5 || flag");
  ExprRef F = A.binary(ExprKind::And, A.binary(ExprKind::Or, Cmp1, Cmp2),
                       flag());
  EXPECT_EQ(print(F), "(x > 0 || y < 5) && flag");
}

TEST_F(PrinterTest, NotAndNeg) {
  EXPECT_EQ(print(A.unary(ExprKind::Not, flag())), "!flag");
  EXPECT_EQ(print(A.unary(ExprKind::Neg, x())), "-x");
  ExprRef E = A.unary(ExprKind::Not,
                      A.binary(ExprKind::And, flag(), flag()));
  EXPECT_EQ(print(E), "!(flag && flag)");
}

TEST_F(PrinterTest, SyntheticNamesWithoutSymbolTable) {
  EXPECT_EQ(printExpr(x()), "v0");
}

} // namespace

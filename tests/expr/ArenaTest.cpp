//===- tests/expr/ArenaTest.cpp - Interning arena tests ---------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "expr/ExprArena.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

TEST(ArenaTest, LiteralsAreInterned) {
  ExprArena A;
  EXPECT_EQ(A.intLit(5), A.intLit(5));
  EXPECT_NE(A.intLit(5), A.intLit(6));
  EXPECT_EQ(A.boolLit(true), A.boolLit(true));
  EXPECT_NE(A.boolLit(true), A.boolLit(false));
}

TEST(ArenaTest, VarsAreInterned) {
  Vars V;
  ExprArena A;
  EXPECT_EQ(A.var(V.Syms.info(V.X)), A.var(V.Syms.info(V.X)));
  EXPECT_NE(A.var(V.Syms.info(V.X)), A.var(V.Syms.info(V.Y)));
}

TEST(ArenaTest, StructurallyEqualTreesShareOneNode) {
  Vars V;
  ExprArena A;
  ExprRef X = A.var(V.Syms.info(V.X));
  ExprRef E1 = A.binary(ExprKind::Add, X, A.intLit(1));
  ExprRef E2 = A.binary(ExprKind::Add, X, A.intLit(1));
  EXPECT_EQ(E1, E2);
  // Same shape via a different build order still dedups.
  ExprRef G1 = A.binary(ExprKind::Ge, E1, A.intLit(3));
  ExprRef G2 =
      A.binary(ExprKind::Ge, A.binary(ExprKind::Add, X, A.intLit(1)),
               A.intLit(3));
  EXPECT_EQ(G1, G2);
}

TEST(ArenaTest, NodeCountReflectsSharing) {
  Vars V;
  ExprArena A;
  size_t Before = A.numNodes();
  ExprRef X = A.var(V.Syms.info(V.X));
  A.binary(ExprKind::Add, X, A.intLit(1));
  A.binary(ExprKind::Add, X, A.intLit(1)); // No new nodes.
  EXPECT_EQ(A.numNodes(), Before + 3);     // x, 1, x+1.
}

TEST(ArenaTest, ConstantFoldingArithmetic) {
  ExprArena A;
  EXPECT_EQ(A.binary(ExprKind::Add, A.intLit(2), A.intLit(3)), A.intLit(5));
  EXPECT_EQ(A.binary(ExprKind::Sub, A.intLit(2), A.intLit(3)),
            A.intLit(-1));
  EXPECT_EQ(A.binary(ExprKind::Mul, A.intLit(4), A.intLit(3)),
            A.intLit(12));
  EXPECT_EQ(A.binary(ExprKind::Div, A.intLit(7), A.intLit(2)), A.intLit(3));
  EXPECT_EQ(A.binary(ExprKind::Mod, A.intLit(7), A.intLit(2)), A.intLit(1));
  EXPECT_EQ(A.unary(ExprKind::Neg, A.intLit(5)), A.intLit(-5));
}

TEST(ArenaTest, ConstantFoldingComparisons) {
  ExprArena A;
  EXPECT_EQ(A.binary(ExprKind::Lt, A.intLit(2), A.intLit(3)),
            A.boolLit(true));
  EXPECT_EQ(A.binary(ExprKind::Ge, A.intLit(2), A.intLit(3)),
            A.boolLit(false));
  EXPECT_EQ(A.binary(ExprKind::Eq, A.intLit(3), A.intLit(3)),
            A.boolLit(true));
}

TEST(ArenaTest, DivisionByZeroLiteralIsNotFolded) {
  ExprArena A;
  ExprRef E = A.binary(ExprKind::Div, A.intLit(7), A.intLit(0));
  EXPECT_EQ(E->kind(), ExprKind::Div); // Left for evaluation to fault on.
}

TEST(ArenaTest, BooleanIdentityFolds) {
  Vars V;
  ExprArena A;
  ExprRef F = A.var(V.Syms.info(V.Flag));
  EXPECT_EQ(A.binary(ExprKind::And, F, A.boolLit(true)), F);
  EXPECT_EQ(A.binary(ExprKind::And, F, A.boolLit(false)),
            A.boolLit(false));
  EXPECT_EQ(A.binary(ExprKind::Or, F, A.boolLit(false)), F);
  EXPECT_EQ(A.binary(ExprKind::Or, A.boolLit(true), F), A.boolLit(true));
  EXPECT_EQ(A.unary(ExprKind::Not, A.boolLit(true)), A.boolLit(false));
}

TEST(ArenaTest, WrappingFoldMatchesEvalSemantics) {
  ExprArena A;
  ExprRef E = A.binary(ExprKind::Add, A.intLit(INT64_MAX), A.intLit(1));
  ASSERT_EQ(E->kind(), ExprKind::IntLit);
  EXPECT_EQ(E->intValue(), INT64_MIN); // Two's-complement wrap.
}

TEST(ArenaTest, TypeErrorsAreFatal) {
  Vars V;
  ExprArena A;
  ExprRef X = A.var(V.Syms.info(V.X));
  ExprRef F = A.var(V.Syms.info(V.Flag));
  EXPECT_DEATH(A.binary(ExprKind::Add, X, F), "arithmetic requires int");
  EXPECT_DEATH(A.binary(ExprKind::And, X, X), "requires bool");
  EXPECT_DEATH(A.binary(ExprKind::Lt, F, F), "ordering comparison");
  EXPECT_DEATH(A.unary(ExprKind::Not, X), "Not requires a bool");
  EXPECT_DEATH(A.unary(ExprKind::Neg, F), "Neg requires an int");
}

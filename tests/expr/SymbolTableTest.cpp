//===- tests/expr/SymbolTableTest.cpp - Symbol table tests ------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "expr/SymbolTable.h"

#include <gtest/gtest.h>

using namespace autosynch;

TEST(SymbolTableTest, DeclareAssignsDenseIds) {
  SymbolTable S;
  EXPECT_EQ(S.declare("a", TypeKind::Int, VarScope::Shared), 0u);
  EXPECT_EQ(S.declare("b", TypeKind::Bool, VarScope::Local), 1u);
  EXPECT_EQ(S.size(), 2u);
}

TEST(SymbolTableTest, LookupFindsDeclared) {
  SymbolTable S;
  S.declare("count", TypeKind::Int, VarScope::Shared);
  const VarInfo *Info = S.lookup("count");
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->Name, "count");
  EXPECT_EQ(Info->Type, TypeKind::Int);
  EXPECT_EQ(Info->Scope, VarScope::Shared);
}

TEST(SymbolTableTest, LookupMissReturnsNull) {
  SymbolTable S;
  EXPECT_EQ(S.lookup("ghost"), nullptr);
}

TEST(SymbolTableTest, ScopePredicates) {
  SymbolTable S;
  VarId Sh = S.declare("sh", TypeKind::Int, VarScope::Shared);
  VarId Lo = S.declare("lo", TypeKind::Int, VarScope::Local);
  EXPECT_TRUE(S.isShared(Sh));
  EXPECT_FALSE(S.isLocal(Sh));
  EXPECT_TRUE(S.isLocal(Lo));
}

TEST(SymbolTableTest, DuplicateDeclarationIsFatal) {
  SymbolTable S;
  S.declare("x", TypeKind::Int, VarScope::Shared);
  EXPECT_DEATH(S.declare("x", TypeKind::Bool, VarScope::Local),
               "duplicate variable");
}

TEST(SymbolTableTest, EmptyNameIsFatal) {
  SymbolTable S;
  EXPECT_DEATH(S.declare("", TypeKind::Int, VarScope::Shared),
               "non-empty");
}

TEST(SymbolTableTest, InfoOutOfRangeIsFatal) {
  SymbolTable S;
  EXPECT_DEATH(S.info(0), "out of range");
}

TEST(SymbolTableTest, VariablesInDeclarationOrder) {
  SymbolTable S;
  S.declare("first", TypeKind::Int, VarScope::Shared);
  S.declare("second", TypeKind::Int, VarScope::Local);
  ASSERT_EQ(S.variables().size(), 2u);
  EXPECT_EQ(S.variables()[0].Name, "first");
  EXPECT_EQ(S.variables()[1].Name, "second");
}

//===- tests/expr/StructuralTest.cpp - Structural order laws ----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The canonical form of a predicate depends on structuralCompare being a
// total order consistent with interning; these properties make sorted DNFs
// deterministic across runs (and therefore golden-testable).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "expr/Structural.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace autosynch;
using testutil::Vars;

namespace {

TEST(StructuralTest, ZeroExactlyOnIdenticalNodes) {
  Vars V;
  ExprArena A;
  ExprRef X = A.var(V.Syms.info(V.X));
  ExprRef E1 = A.binary(ExprKind::Ge, X, A.intLit(3));
  ExprRef E2 = A.binary(ExprKind::Ge, X, A.intLit(3));
  EXPECT_EQ(structuralCompare(E1, E2), 0); // Interned: same node.
  ExprRef E3 = A.binary(ExprKind::Ge, X, A.intLit(4));
  EXPECT_NE(structuralCompare(E1, E3), 0);
}

TEST(StructuralTest, Antisymmetry) {
  Vars V;
  ExprArena A;
  AUTOSYNCH_SEEDED_RNG(R, 31);
  for (int I = 0; I != 300; ++I) {
    ExprRef E1 = testutil::randomExpr(R, A, V, TypeKind::Bool, 3);
    ExprRef E2 = testutil::randomExpr(R, A, V, TypeKind::Bool, 3);
    int Fwd = structuralCompare(E1, E2);
    int Bwd = structuralCompare(E2, E1);
    if (Fwd == 0) {
      EXPECT_EQ(E1, E2); // Zero implies identity (interning).
      EXPECT_EQ(Bwd, 0);
    } else {
      EXPECT_EQ(Fwd > 0, Bwd < 0);
    }
  }
}

TEST(StructuralTest, TransitivityOnRandomTriples) {
  Vars V;
  ExprArena A;
  AUTOSYNCH_SEEDED_RNG(R, 37);
  for (int I = 0; I != 200; ++I) {
    ExprRef E[3];
    for (auto &Slot : E)
      Slot = testutil::randomExpr(R, A, V, TypeKind::Bool, 3);
    std::sort(E, E + 3, StructuralLess());
    EXPECT_LE(structuralCompare(E[0], E[1]), 0);
    EXPECT_LE(structuralCompare(E[1], E[2]), 0);
    EXPECT_LE(structuralCompare(E[0], E[2]), 0);
  }
}

TEST(StructuralTest, SortingIsDeterministicAcrossShuffles) {
  Vars V;
  ExprArena A;
  AUTOSYNCH_SEEDED_RNG(R, 41);
  std::vector<ExprRef> Exprs;
  for (int I = 0; I != 40; ++I)
    Exprs.push_back(testutil::randomExpr(R, A, V, TypeKind::Bool, 3));

  std::vector<ExprRef> Sorted1 = Exprs;
  std::sort(Sorted1.begin(), Sorted1.end(), StructuralLess());

  // Shuffle differently and re-sort: identical result required.
  std::vector<ExprRef> Shuffled = Exprs;
  for (size_t I = Shuffled.size(); I > 1; --I)
    std::swap(Shuffled[I - 1], Shuffled[R.range(0, I - 1)]);
  std::sort(Shuffled.begin(), Shuffled.end(), StructuralLess());
  EXPECT_EQ(Sorted1, Shuffled);
}

TEST(StructuralTest, OrdersByKindThenPayloadThenOperands) {
  Vars V;
  ExprArena A;
  // Kind: IntLit < Var (enum order).
  EXPECT_LT(structuralCompare(A.intLit(100), A.var(V.Syms.info(V.X))), 0);
  // Payload: smaller literal first.
  EXPECT_LT(structuralCompare(A.intLit(-5), A.intLit(3)), 0);
  // VarId order.
  EXPECT_LT(structuralCompare(A.var(V.Syms.info(V.X)),
                              A.var(V.Syms.info(V.Y))),
            0);
  // Operands compared left to right.
  ExprRef X = A.var(V.Syms.info(V.X));
  ExprRef L = A.binary(ExprKind::Ge, X, A.intLit(3));
  ExprRef Rhs = A.binary(ExprKind::Ge, X, A.intLit(9));
  EXPECT_LT(structuralCompare(L, Rhs), 0);
}

} // namespace

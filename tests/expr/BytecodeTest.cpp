//===- tests/expr/BytecodeTest.cpp - Compiled evaluator tests ---------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "expr/Bytecode.h"
#include "expr/Eval.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class BytecodeTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;
  MapEnv Env;

  void SetUp() override {
    Env.bindInt(V.X, 6).bindInt(V.Y, -2).bindInt(V.Z, 0);
    Env.bindBool(V.Flag, true);
  }

  ExprRef x() { return A.var(V.Syms.info(V.X)); }
  ExprRef y() { return A.var(V.Syms.info(V.Y)); }
  ExprRef z() { return A.var(V.Syms.info(V.Z)); }
};

TEST_F(BytecodeTest, EmptyProgramIsInvalid) {
  CompiledPredicate P;
  EXPECT_FALSE(P.valid());
  EXPECT_DEATH(P.run(Env), "empty CompiledPredicate");
}

TEST_F(BytecodeTest, CompilesLiteral) {
  CompiledPredicate P = CompiledPredicate::compile(A.boolLit(true));
  EXPECT_TRUE(P.valid());
  EXPECT_TRUE(P.runBool(Env));
}

TEST_F(BytecodeTest, ArithmeticMatchesTreeWalk) {
  ExprRef E = A.binary(
      ExprKind::Add, A.binary(ExprKind::Mul, x(), A.intLit(3)),
      A.unary(ExprKind::Neg, y()));
  CompiledPredicate P = CompiledPredicate::compile(E);
  EXPECT_EQ(P.run(Env), eval(E, Env));
}

TEST_F(BytecodeTest, ComparisonResult) {
  ExprRef E = A.binary(ExprKind::Ge, x(), A.intLit(6));
  CompiledPredicate P = CompiledPredicate::compile(E);
  EXPECT_TRUE(P.runBool(Env));
}

TEST_F(BytecodeTest, ShortCircuitAndSkipsFaultingRhs) {
  // (x < 0) && (x / z == 0): the guard is false at runtime (but not
  // foldable), so the compiled form must skip the division.
  ExprRef Faulting =
      A.binary(ExprKind::Eq, A.binary(ExprKind::Div, x(), z()), A.intLit(0));
  ExprRef Guard = A.binary(ExprKind::Lt, x(), A.intLit(0));
  CompiledPredicate P =
      CompiledPredicate::compile(A.binary(ExprKind::And, Guard, Faulting));
  EXPECT_FALSE(P.runBool(Env));
}

TEST_F(BytecodeTest, ShortCircuitOrSkipsFaultingRhs) {
  ExprRef Faulting =
      A.binary(ExprKind::Eq, A.binary(ExprKind::Div, x(), z()), A.intLit(0));
  ExprRef Guard = A.binary(ExprKind::Gt, x(), A.intLit(0)); // true here.
  ExprRef E = A.binary(ExprKind::Or, Guard, Faulting);
  CompiledPredicate P = CompiledPredicate::compile(E);
  EXPECT_TRUE(P.runBool(Env));
}

TEST_F(BytecodeTest, DivisionByZeroFaults) {
  ExprRef E = A.binary(ExprKind::Eq, A.binary(ExprKind::Div, x(), z()),
                       A.intLit(0));
  CompiledPredicate P = CompiledPredicate::compile(E);
  EXPECT_DEATH(P.run(Env), "division by zero");
}

TEST_F(BytecodeTest, RunBoolOnIntProgramIsFatal) {
  CompiledPredicate P = CompiledPredicate::compile(x());
  EXPECT_DEATH(P.runBool(Env), "asBool on an int");
}

TEST_F(BytecodeTest, StackDepthIsTracked) {
  // ((x + y) + (x + y)) needs depth >= 2... build something deeper.
  ExprRef E = x();
  for (int I = 0; I != 10; ++I)
    E = A.binary(ExprKind::Add, E, A.binary(ExprKind::Mul, x(), y()));
  CompiledPredicate P = CompiledPredicate::compile(E);
  EXPECT_GE(P.maxStackDepth(), 2u);
  EXPECT_EQ(P.run(Env), eval(E, Env));
}

} // namespace

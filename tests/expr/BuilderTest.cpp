//===- tests/expr/BuilderTest.cpp - EDSL builder tests ----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "expr/Builder.h"
#include "expr/Eval.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class BuilderTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;

  ExprHandle x() { return ExprHandle(A, A.var(V.Syms.info(V.X))); }
  ExprHandle y() { return ExprHandle(A, A.var(V.Syms.info(V.Y))); }
  ExprHandle flag() { return ExprHandle(A, A.var(V.Syms.info(V.Flag))); }
};

TEST_F(BuilderTest, ArithmeticOperators) {
  ExprHandle E = x() + y() * 2 - 1;
  MapEnv Env;
  Env.bindInt(V.X, 10).bindInt(V.Y, 3);
  EXPECT_EQ(evalInt(E.ref(), Env), 15);
}

TEST_F(BuilderTest, IntOnEitherSide) {
  EXPECT_EQ((x() + 5).ref()->kind(), ExprKind::Add);
  EXPECT_EQ((5 + x()).ref()->kind(), ExprKind::Add);
  // No commutative normalization at build time: distinct trees (the DNF
  // canonicalizer merges them later).
  EXPECT_NE((x() + 5).ref(), (5 + x()).ref());
}

TEST_F(BuilderTest, ComparisonsProduceBool) {
  EXPECT_EQ((x() < 3).type(), TypeKind::Bool);
  EXPECT_EQ((x() <= 3).ref()->kind(), ExprKind::Le);
  EXPECT_EQ((x() > 3).ref()->kind(), ExprKind::Gt);
  EXPECT_EQ((x() >= 3).ref()->kind(), ExprKind::Ge);
  EXPECT_EQ((x() == 3).ref()->kind(), ExprKind::Eq);
  EXPECT_EQ((x() != 3).ref()->kind(), ExprKind::Ne);
}

TEST_F(BuilderTest, LogicalOperators) {
  ExprHandle E = (x() > 0 && y() < 5) || !flag();
  MapEnv Env;
  Env.bindInt(V.X, 1).bindInt(V.Y, 10).bindBool(V.Flag, false);
  EXPECT_TRUE(evalBool(E.ref(), Env));
}

TEST_F(BuilderTest, UnaryMinus) {
  ExprHandle E = -x() + 1;
  MapEnv Env;
  Env.bindInt(V.X, 4);
  EXPECT_EQ(evalInt(E.ref(), Env), -3);
}

TEST_F(BuilderTest, SameExpressionInterns) {
  EXPECT_EQ((x() + 1 <= 64).ref(), (x() + 1 <= 64).ref());
}

TEST_F(BuilderTest, LiteralFoldingThroughOperators) {
  ExprHandle E = lit(A, 2) + 3;
  EXPECT_EQ(E.ref(), A.intLit(5));
  ExprHandle B = blit(A, true) && blit(A, false);
  EXPECT_EQ(B.ref(), A.boolLit(false));
}

TEST_F(BuilderTest, MixingArenasIsFatal) {
  ExprArena Other;
  ExprHandle Foreign = lit(Other, 1);
  EXPECT_DEATH((void)(x() + Foreign), "different arenas");
}

TEST_F(BuilderTest, ModuloAndDivision) {
  ExprHandle E = x() % 4 == 0 && x() / 2 > 1;
  MapEnv Env;
  Env.bindInt(V.X, 8);
  EXPECT_TRUE(evalBool(E.ref(), Env));
}

} // namespace

//===- tests/expr/SubstTest.cpp - Globalization tests -----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "expr/Eval.h"
#include "expr/Subst.h"

#include <gtest/gtest.h>

using namespace autosynch;
using testutil::Vars;

namespace {

class SubstTest : public ::testing::Test {
protected:
  Vars V;
  ExprArena A;

  ExprRef x() { return A.var(V.Syms.info(V.X)); }
  ExprRef a() { return A.var(V.Syms.info(V.A)); }
  ExprRef b() { return A.var(V.Syms.info(V.B)); }
};

TEST_F(SubstTest, SharedPredicateDetection) {
  ExprRef SharedPred = A.binary(ExprKind::Ge, x(), A.intLit(3));
  EXPECT_FALSE(isComplex(SharedPred, V.Syms));
  ExprRef ComplexPred = A.binary(ExprKind::Ge, x(), a());
  EXPECT_TRUE(isComplex(ComplexPred, V.Syms)); // Paper Def. 1.
}

TEST_F(SubstTest, GroundDetection) {
  EXPECT_TRUE(isGround(A.binary(ExprKind::Add, A.intLit(1), A.intLit(2))));
  EXPECT_FALSE(isGround(x()));
}

TEST_F(SubstTest, GlobalizationSubstitutesLocalsOnly) {
  // The paper's running example: count >= num, num local, becomes
  // count >= 48 (Definition 2).
  ExprRef P = A.binary(ExprKind::Ge, x(), a());
  MapEnv Locals;
  Locals.bindInt(V.A, 48);
  ExprRef G = globalize(A, P, V.Syms, Locals);
  EXPECT_EQ(G, A.binary(ExprKind::Ge, x(), A.intLit(48)));
  EXPECT_FALSE(isComplex(G, V.Syms)); // Now a shared predicate.
}

TEST_F(SubstTest, GlobalizationFoldsLocalArithmetic) {
  // x >= a + b with a=40, b=8 collapses to x >= 48: identical to the
  // predicate another thread wrote directly.
  ExprRef P = A.binary(ExprKind::Ge, x(), A.binary(ExprKind::Add, a(), b()));
  MapEnv Locals;
  Locals.bindInt(V.A, 40).bindInt(V.B, 8);
  EXPECT_EQ(globalize(A, P, V.Syms, Locals),
            A.binary(ExprKind::Ge, x(), A.intLit(48)));
}

TEST_F(SubstTest, GlobalizationLeavesSharedPredicatesAlone) {
  ExprRef P = A.binary(ExprKind::Ge, x(), A.intLit(3));
  EXPECT_EQ(globalize(A, P, V.Syms, MapEnv()), P);
}

TEST_F(SubstTest, UnboundLocalIsFatal) {
  ExprRef P = A.binary(ExprKind::Ge, x(), a());
  MapEnv Empty;
  EXPECT_DEATH(globalize(A, P, V.Syms, Empty), "unbound local");
}

TEST_F(SubstTest, SubstituteReplacesAnyBoundVariable) {
  ExprRef P = A.binary(ExprKind::Add, x(), a());
  MapEnv Bindings;
  Bindings.bindInt(V.X, 2).bindInt(V.A, 3);
  EXPECT_EQ(substitute(A, P, Bindings), A.intLit(5));
}

TEST_F(SubstTest, SemanticEquivalenceProposition1) {
  // Proposition 1: P(x, a) == P(x, a_t) under any shared state, when the
  // locals hold the globalized values.
  AUTOSYNCH_SEEDED_RNG(R, 123);
  for (int Trial = 0; Trial != 200; ++Trial) {
    ExprRef P = testutil::randomExpr(R, A, V, TypeKind::Bool, 4);
    MapEnv Env = testutil::randomEnv(R, V);
    ExprRef G = globalize(A, P, V.Syms, Env);
    EXPECT_FALSE(isComplex(G, V.Syms));
    EXPECT_EQ(evalBool(G, Env), evalBool(P, Env))
        << "trial " << Trial;
  }
}

} // namespace

//===- tests/expr/VarSetPropertyTest.cpp - VarSet saturation properties ----===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Property tests for the ≥64-VarId saturation path of the relay filter's
// bitmask sets. The reference model is an exact std::set of ids with an
// explicit "universal" flag for saturation; VarSet must never
// *under-approximate* it — a saturated set has to behave as "intersects
// everything non-empty" in relay filtering, or a wakeup could be dropped.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "expr/VarSet.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace autosynch;

namespace {

/// Exact reference: ids plus a universal flag (ids >= MaxDirect saturate,
/// mirroring VarSet's contract, but here without losing the id set).
struct RefSet {
  std::set<VarId> Ids;
  bool Universal = false;

  void add(VarId Id) {
    if (Id >= VarSet::MaxDirect)
      Universal = true;
    else
      Ids.insert(Id);
  }
  void unionWith(const RefSet &O) {
    Ids.insert(O.Ids.begin(), O.Ids.end());
    Universal = Universal || O.Universal;
  }
  bool empty() const { return Ids.empty() && !Universal; }
  bool contains(VarId Id) const {
    return Universal || Ids.count(Id) != 0;
  }
  bool intersects(const RefSet &O) const {
    if (empty() || O.empty())
      return false;
    if (Universal || O.Universal)
      return true;
    for (VarId Id : Ids)
      if (O.Ids.count(Id))
        return true;
    return false;
  }
  void clear() {
    Ids.clear();
    Universal = false;
  }
};

struct Pair {
  VarSet S;
  RefSet R;

  void check() const {
    EXPECT_EQ(S.empty(), R.empty());
    EXPECT_EQ(S.universal(), R.Universal);
    for (VarId Id = 0; Id != 96; ++Id)
      EXPECT_EQ(S.contains(Id), R.contains(Id)) << "id " << Id;
  }
};

TEST(VarSetPropertyTest, RandomOpsMatchReference) {
  AUTOSYNCH_SEEDED_RNG(Rng, 4401);
  for (int Round = 0; Round != 50; ++Round) {
    std::vector<Pair> Sets(4);
    for (int Op = 0; Op != 200; ++Op) {
      Pair &P = Sets[Rng.range(0, Sets.size() - 1)];
      switch (Rng.range(0, 3)) {
      case 0: {
        // Bias toward the saturation boundary.
        VarId Id = static_cast<VarId>(
            Rng.chance(1, 3) ? Rng.range(60, 90) : Rng.range(0, 63));
        P.S.add(Id);
        P.R.add(Id);
        break;
      }
      case 1: {
        Pair &O = Sets[Rng.range(0, Sets.size() - 1)];
        P.S.unionWith(O.S);
        P.R.unionWith(O.R);
        break;
      }
      case 2: {
        if (Rng.chance(1, 8)) {
          P.S.clear();
          P.R.clear();
        }
        break;
      }
      default:
        break;
      }
      P.check();
      // Pairwise relations after every op.
      for (const Pair &A : Sets)
        for (const Pair &B : Sets) {
          EXPECT_EQ(A.S.intersects(B.S), A.R.intersects(B.R));
          // Symmetry, while we are at it.
          EXPECT_EQ(A.S.intersects(B.S), B.S.intersects(A.S));
        }
    }
  }
}

TEST(VarSetPropertyTest, SaturatedSetIntersectsEveryNonEmptySet) {
  VarSet Saturated;
  Saturated.add(64); // First out-of-range id.
  EXPECT_TRUE(Saturated.universal());
  EXPECT_FALSE(Saturated.empty());

  VarSet Empty;
  EXPECT_FALSE(Saturated.intersects(Empty));
  EXPECT_FALSE(Empty.intersects(Saturated));

  for (VarId Id = 0; Id != 80; ++Id) {
    VarSet Single;
    Single.add(Id);
    EXPECT_TRUE(Saturated.intersects(Single)) << "id " << Id;
    EXPECT_TRUE(Single.intersects(Saturated)) << "id " << Id;
    EXPECT_TRUE(Saturated.contains(Id)) << "id " << Id;
  }
}

TEST(VarSetPropertyTest, EqualityIgnoresMaskOnceSaturated) {
  // Two universal sets built along different paths are the same set; the
  // direct-member word is documented as meaningless once saturated and
  // must not leak into equality.
  VarSet A;
  A.add(3);
  A.add(70); // Saturates with bit 3 set.
  VarSet B;
  B.add(90); // Saturates with no direct bits.
  EXPECT_TRUE(A == B);

  VarSet C;
  C.add(3);
  EXPECT_FALSE(A == C);
  EXPECT_FALSE(C == A);

  VarSet D, E;
  D.add(5);
  E.add(5);
  EXPECT_TRUE(D == E);
}

TEST(VarSetPropertyTest, UnionPropagatesSaturation) {
  VarSet A, B;
  A.add(1);
  B.add(100);
  A.unionWith(B);
  EXPECT_TRUE(A.universal());
  VarSet Probe;
  Probe.add(63);
  EXPECT_TRUE(A.intersects(Probe));
}

} // namespace

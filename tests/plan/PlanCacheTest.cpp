//===- tests/plan/PlanCacheTest.cpp - WaitPlan cache tests ------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The WaitPlan cache: one plan per predicate *shape*, bound per call with
// the thread's local values. Covered here: shape reuse across distinct
// values (both front ends), allocation-freedom of the steady-state bind
// path, unification with records registered through other routes, the
// interaction with the inactive cache's eviction limit, and a differential
// run against the uncached pipeline.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/Monitor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace autosynch;

namespace {

using testutil::awaitWaiters;

/// Pool monitor exercising both predicate front ends over one shape each.
class PoolMonitor : public Monitor {
public:
  explicit PoolMonitor(MonitorConfig Cfg = {}) : Monitor(Cfg) {}

  void deposit(int64_t N) {
    Region R(*this);
    Level += N;
  }

  void withdrawEdsl(int64_t N) {
    Region R(*this);
    waitUntil(Level >= N);
    Level -= N;
  }

  void withdrawParsed(int64_t N) {
    Region R(*this);
    waitUntil("level >= n", locals().bindInt(local("n"), N));
    Level -= N;
  }

  int64_t level() {
    Region R(*this);
    return Level.get();
  }

  AUTOSYNCH_TEST_WAITER_PROBE()

  using Monitor::conditionManager;
  using Monitor::planCache;
  using Monitor::arena;

private:
  Shared<int64_t> Level{*this, "level", 0};
};

/// Runs one blocked-then-released withdraw so the wait registers.
template <typename WithdrawFn>
void blockedWithdraw(PoolMonitor &M, int64_t N, WithdrawFn &&Withdraw) {
  std::thread W([&] { Withdraw(N); });
  awaitWaiters(M, 1);
  M.deposit(N);
  W.join();
}

TEST(PlanCacheTest, ParsedShapeReusedAcrossValues) {
  PoolMonitor M;
  for (int64_t N : {3, 5, 7})
    blockedWithdraw(M, N, [&](int64_t V) { M.withdrawParsed(V); });

  const PlanCacheStats &P = M.planCache().stats();
  // One plan per shape, not per value; repeat parsed waits do not even
  // re-look-it-up (the plan is memoized on the parse-cache entry).
  EXPECT_EQ(P.ShapeBuilds, 1u);
  EXPECT_EQ(P.ShapeHits, 0u);
  // Three distinct values -> three registered predicates, all cold binds.
  const ManagerStats &S = M.conditionManager().stats();
  EXPECT_EQ(S.Registrations, 3u);
  EXPECT_EQ(S.PlanColdBinds, 3u);
  EXPECT_EQ(S.PlanBindHits, 0u);
}

TEST(PlanCacheTest, EdslLiteralsShareOneShape) {
  PoolMonitor M;
  for (int64_t N : {2, 4, 6, 8})
    blockedWithdraw(M, N, [&](int64_t V) { M.withdrawEdsl(V); });

  const PlanCacheStats &P = M.planCache().stats();
  EXPECT_EQ(P.EdslSkeletons, 4u);
  EXPECT_EQ(P.ShapeBuilds, 1u) << "Level >= 2 and Level >= 8 are one shape";
  EXPECT_EQ(M.conditionManager().stats().Registrations, 4u);
}

TEST(PlanCacheTest, RepeatedBindingsHitWithoutArenaGrowth) {
  PoolMonitor M;
  // Warm the shape and the (level >= 5) signature.
  blockedWithdraw(M, 5, [&](int64_t V) { M.withdrawParsed(V); });
  size_t NodesWarm = M.arena().numNodes();

  for (int Round = 0; Round != 8; ++Round)
    blockedWithdraw(M, 5, [&](int64_t V) { M.withdrawParsed(V); });

  // The steady-state bind path interns nothing: same shape, same
  // signature, record found in the bind table.
  EXPECT_EQ(M.arena().numNodes(), NodesWarm);
  const ManagerStats &S = M.conditionManager().stats();
  EXPECT_EQ(S.PlanBindHits, 8u);
  EXPECT_EQ(S.PlanColdBinds, 1u);
  EXPECT_EQ(S.Registrations, 1u);
}

TEST(PlanCacheTest, EdslRepeatedBindingsDoNotGrowArena) {
  PoolMonitor M;
  blockedWithdraw(M, 9, [&](int64_t V) { M.withdrawEdsl(V); });
  size_t NodesWarm = M.arena().numNodes();
  for (int Round = 0; Round != 8; ++Round)
    blockedWithdraw(M, 9, [&](int64_t V) { M.withdrawEdsl(V); });
  EXPECT_EQ(M.arena().numNodes(), NodesWarm);
}

TEST(PlanCacheTest, FrontEndsUnifyOnOneRecord) {
  // The EDSL shape `x >= $i0` bound at 48, the parsed shape `x >= n`
  // bound at 48, and the EDSL shape `x * 2 >= $i0` bound at 96 all
  // canonicalize to `x >= 48` and must share one registration.
  class M1 : public Monitor {
  public:
    void bump() {
      Region R(*this);
      X += 100;
    }
    void waitEdsl() {
      Region R(*this);
      waitUntil(X >= 48);
    }
    void waitParsed() {
      Region R(*this);
      waitUntil("x >= n", locals().bindInt(local("n"), 48));
    }
    void waitScaled() {
      Region R(*this);
      waitUntil(X * 2 >= 96);
    }
    AUTOSYNCH_TEST_WAITER_PROBE()
    using Monitor::conditionManager;

  private:
    Shared<int64_t> X{*this, "x", 0};
  };

  M1 M;
  std::thread A([&] { M.waitEdsl(); });
  std::thread B([&] { M.waitParsed(); });
  std::thread C([&] { M.waitScaled(); });
  awaitWaiters(M, 3);
  M.bump();
  A.join();
  B.join();
  C.join();
  EXPECT_EQ(M.conditionManager().stats().Registrations, 1u);
}

TEST(PlanCacheTest, BindHitsRecordCacheReuse) {
  // A bind-table hit on a parked record must count as a cache reuse,
  // exactly like a canonical-table hit on the uncached path.
  PoolMonitor M;
  blockedWithdraw(M, 4, [&](int64_t V) { M.withdrawParsed(V); });
  uint64_t ReusesBefore = M.conditionManager().stats().CacheReuses;
  blockedWithdraw(M, 4, [&](int64_t V) { M.withdrawParsed(V); });
  EXPECT_GT(M.conditionManager().stats().CacheReuses, ReusesBefore);
}

TEST(PlanCacheTest, EvictionDropsBindAliasesAndStaysBounded) {
  MonitorConfig Cfg;
  Cfg.InactiveCacheLimit = 4;
  PoolMonitor M(Cfg);

  // 32 distinct bound values: far past the limit. Eviction must keep the
  // table bounded and drop each evicted record's signature alias.
  for (int64_t N = 1; N <= 32; ++N)
    blockedWithdraw(M, N, [&](int64_t V) { M.withdrawParsed(V); });

  EXPECT_LE(M.conditionManager().inactiveCacheSize(), 4u);
  EXPECT_LE(M.conditionManager().numRegistered(), 5u);
  EXPECT_GE(M.conditionManager().stats().Evictions, 20u);

  // An evicted binding must come back cleanly (fresh cold bind, fresh
  // record), not resolve through a dangling alias.
  uint64_t ColdBefore = M.conditionManager().stats().PlanColdBinds;
  blockedWithdraw(M, 1, [&](int64_t V) { M.withdrawParsed(V); });
  EXPECT_GT(M.conditionManager().stats().PlanColdBinds, ColdBefore);
  EXPECT_EQ(M.level(), 0);
}

TEST(PlanCacheTest, GroundParsedPredicatePlansOnce) {
  class Flagged : public Monitor {
  public:
    void raise() {
      Region R(*this);
      Count += 1;
    }
    void awaitThree() {
      Region R(*this);
      waitUntil("count >= 3");
    }
    AUTOSYNCH_TEST_WAITER_PROBE()
    using Monitor::conditionManager;
    using Monitor::planCache;

  private:
    Shared<int64_t> Count{*this, "count", 0};
  };

  Flagged M;
  std::thread W([&] { M.awaitThree(); });
  awaitWaiters(M, 1);
  for (int I = 0; I != 3; ++I)
    M.raise();
  W.join();
  M.awaitThree(); // Fast path through the same memoized Ground plan.
  EXPECT_EQ(M.planCache().stats().ShapeBuilds, 1u);
  EXPECT_EQ(M.conditionManager().stats().Registrations, 1u);
}

TEST(PlanCacheTest, UnsatisfiableBindingIsFatal) {
  class Unsat : public Monitor {
  public:
    void wait() {
      Region R(*this);
      // Satisfiable as a shape (there are n, m with n <= m), dead for
      // this binding: the bind-time interval check must catch it.
      waitUntil("count >= n && count <= m",
                locals().bindInt(local("n"), 5).bindInt(local("m"), 3));
    }

  private:
    Shared<int64_t> Count{*this, "count", 0};
  };
  Unsat M;
  EXPECT_DEATH(M.wait(), "unsatisfiable");
}

TEST(PlanCacheTest, GuardedDisjunctionTakesTrueBranchImmediately) {
  // `n <= 0 || level >= n` with n = 0: the guard conjunction is true for
  // this binding, so the wait returns without blocking.
  class Guarded : public Monitor {
  public:
    void wait(int64_t N) {
      Region R(*this);
      waitUntil("n <= 0 || level >= n", locals().bindInt(local("n"), N));
    }
    using Monitor::conditionManager;

  private:
    Shared<int64_t> Level{*this, "level", 0};
  };
  Guarded M;
  M.wait(0);
  M.wait(-3);
  EXPECT_EQ(M.conditionManager().stats().Waits, 0u);
}

TEST(PlanCacheTest, DifferentialAgainstUncachedPipeline) {
  // The same seeded workload, planned and unplanned: identical
  // conservation result and a full drain under both configurations and
  // both front ends.
  AUTOSYNCH_SEEDED_RNG(Rng, 0x91a2c3ull);
  std::vector<int64_t> Demands;
  for (int I = 0; I != 200; ++I)
    Demands.push_back(Rng.range(1, 5));

  for (bool UsePlans : {true, false}) {
    MonitorConfig Cfg;
    Cfg.UsePlanCache = UsePlans;
    PoolMonitor M(Cfg);
    constexpr int Threads = 4;
    std::vector<std::thread> Pool;
    for (int T = 0; T != Threads; ++T) {
      Pool.emplace_back([&M, &Demands, T] {
        for (size_t I = T; I < Demands.size();
             I += static_cast<size_t>(Threads)) {
          M.deposit(Demands[I]);
          if (I % 2 == 0)
            M.withdrawEdsl(Demands[I]);
          else
            M.withdrawParsed(Demands[I]);
        }
      });
    }
    for (auto &T : Pool)
      T.join();
    EXPECT_EQ(M.level(), 0) << (UsePlans ? "planned" : "uncached");
    EXPECT_EQ(M.conditionManager().numWaiters(), 0);
    EXPECT_EQ(M.conditionManager().pendingSignals(), 0);
  }
}

TEST(PlanCacheTest, UncachedConfigBypassesPlans) {
  MonitorConfig Cfg;
  Cfg.UsePlanCache = false;
  PoolMonitor M(Cfg);
  blockedWithdraw(M, 2, [&](int64_t V) { M.withdrawParsed(V); });
  EXPECT_EQ(M.planCache().stats().ShapeBuilds, 0u);
  EXPECT_EQ(M.conditionManager().stats().PlanColdBinds, 0u);
  EXPECT_EQ(M.conditionManager().stats().Waits, 1u);
}

TEST(PlanCacheTest, BroadcastAlreadyTrueWaitsUseThePlanPrecheck) {
  // The Broadcast policy registers no predicates, but its already-true
  // waits run the plan's allocation-free compiled check: after the shape
  // is warm, fresh bound values must not grow the arena (the uncached
  // pipeline would intern a globalized tree per value).
  MonitorConfig Cfg;
  Cfg.Policy = SignalPolicy::Broadcast;
  PoolMonitor M(Cfg);
  M.deposit(1'000'000);
  M.withdrawParsed(1); // Warms the parse cache and the plan shape.

  size_t NodesWarm = M.arena().numNodes();
  for (int64_t N = 2; N != 50; ++N)
    M.withdrawParsed(N); // Always true: fast path, fresh value each call.
  EXPECT_EQ(M.arena().numNodes(), NodesWarm)
      << "broadcast already-true waits must not intern per value";
  // One plan for the shape, served from the parse-entry memo afterwards.
  EXPECT_EQ(M.planCache().stats().ShapeBuilds, 1u);
  // No predicate was ever registered and nothing blocked.
  EXPECT_EQ(M.conditionManager().stats().Registrations, 0u);
  EXPECT_EQ(M.conditionManager().stats().Waits, 0u);
}

TEST(PlanCacheTest, BroadcastBlockingWaitsKeepSignalAllSemantics) {
  // The precheck must not change how Broadcast blocks or wakes: a
  // blocking wait still goes through the uncached pipeline and resumes
  // via signalAll.
  MonitorConfig Cfg;
  Cfg.Policy = SignalPolicy::Broadcast;
  PoolMonitor M(Cfg);
  blockedWithdraw(M, 5, [&](int64_t V) { M.withdrawParsed(V); });
  EXPECT_EQ(M.level(), 0);
  EXPECT_GE(M.conditionManager().stats().BroadcastSignals, 1u);
  EXPECT_EQ(M.conditionManager().stats().SignalsSent, 0u);
  EXPECT_EQ(M.conditionManager().stats().Registrations, 0u);
  EXPECT_EQ(M.conditionManager().numWaiters(), 0);
}

} // namespace

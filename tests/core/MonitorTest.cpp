//===- tests/core/MonitorTest.cpp - Monitor API tests -----------------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/Monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

using testutil::awaitWaiters;

/// A small counter monitor exercising both predicate front ends.
class CounterMonitor : public Monitor {
public:
  explicit CounterMonitor(MonitorConfig Cfg = {}) : Monitor(Cfg) {}

  void add(int64_t N) {
    Region R(*this);
    Count += N;
  }

  void awaitAtLeastEdsl(int64_t N) {
    Region R(*this);
    waitUntil(Count >= N);
  }

  void awaitAtLeastParsed(int64_t N) {
    Region R(*this);
    waitUntil("count >= n", locals().bindInt(local("n"), N));
  }

  int64_t get() {
    Region R(*this);
    return Count.get();
  }

  void nestedAdd(int64_t N) {
    Region Outer(*this);
    add(N); // Re-enters through a nested Region.
  }

  void waitFromNestedRegion() {
    Region Outer(*this);
    Region Inner(*this);
    waitUntil(Count >= 0); // Must be fatal: depth 2.
  }

  bool inMonitorNow() {
    Region R(*this);
    return true;
  }

  AUTOSYNCH_TEST_WAITER_PROBE()

  void waitUnsatisfiable() {
    Region R(*this);
    waitUntil(Count < 0 && Count > 0);
  }

  using Monitor::conditionManager;

private:
  Shared<int64_t> Count{*this, "count", 0};
};

class MonitorPolicyTest : public ::testing::TestWithParam<SignalPolicy> {
protected:
  MonitorConfig config() {
    MonitorConfig Cfg;
    Cfg.Policy = GetParam();
    return Cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(Policies, MonitorPolicyTest,
                         ::testing::Values(SignalPolicy::Tagged,
                                           SignalPolicy::LinearScan,
                                           SignalPolicy::Broadcast),
                         [](const auto &Info) {
                           std::string Name = signalPolicyName(Info.param);
                           Name.erase(std::remove(Name.begin(), Name.end(),
                                                  '-'),
                                      Name.end());
                           return Name;
                         });

TEST_P(MonitorPolicyTest, FastPathWhenPredicateAlreadyTrue) {
  CounterMonitor M(config());
  M.add(10);
  M.awaitAtLeastEdsl(5); // Returns immediately, no registration.
  EXPECT_EQ(M.conditionManager().stats().Waits, 0u);
  EXPECT_EQ(M.get(), 10);
}

TEST_P(MonitorPolicyTest, WaiterWokenBySingleProducer) {
  CounterMonitor M(config());
  std::thread Waiter([&] { M.awaitAtLeastEdsl(3); });
  // Don't produce until the waiter has blocked, or on a loaded machine the
  // producer can finish first and the wait degenerates to the fast path.
  awaitWaiters(M, 1);
  std::thread Producer([&] {
    for (int I = 0; I != 3; ++I)
      M.add(1);
  });
  Waiter.join();
  Producer.join();
  EXPECT_EQ(M.get(), 3);
  EXPECT_GE(M.conditionManager().stats().Waits, 1u);
}

TEST_P(MonitorPolicyTest, ParsedAndEdslPredicatesBehaveAlike) {
  CounterMonitor M(config());
  std::thread W1([&] { M.awaitAtLeastEdsl(2); });
  std::thread W2([&] { M.awaitAtLeastParsed(4); });
  std::thread Producer([&] {
    for (int I = 0; I != 4; ++I)
      M.add(1);
  });
  W1.join();
  W2.join();
  Producer.join();
  EXPECT_EQ(M.get(), 4);
}

TEST_P(MonitorPolicyTest, ManyWaitersAllReleased) {
  CounterMonitor M(config());
  constexpr int Waiters = 16;
  std::vector<std::thread> Pool;
  for (int I = 1; I <= Waiters; ++I)
    Pool.emplace_back([&M, I] { M.awaitAtLeastEdsl(I); });
  std::thread Producer([&] {
    for (int I = 0; I != Waiters; ++I)
      M.add(1);
  });
  for (auto &T : Pool)
    T.join();
  Producer.join();
  EXPECT_EQ(M.get(), Waiters);
  EXPECT_EQ(M.conditionManager().numWaiters(), 0);
  EXPECT_EQ(M.conditionManager().pendingSignals(), 0);
}

TEST_P(MonitorPolicyTest, ReentrantRegions) {
  CounterMonitor M(config());
  M.nestedAdd(7);
  EXPECT_EQ(M.get(), 7);
}

TEST(MonitorTest, WaitFromNestedRegionIsFatal) {
  CounterMonitor M;
  EXPECT_DEATH(M.waitFromNestedRegion(), "nested monitor region");
}

TEST(MonitorTest, UnsatisfiablePredicateIsFatal) {
  CounterMonitor M;
  EXPECT_DEATH(M.waitUnsatisfiable(), "unsatisfiable");
}

TEST(MonitorTest, ParseErrorsAreFatalWithLocation) {
  class BadMonitor : public Monitor {
  public:
    void wait() {
      Region R(*this);
      waitUntil("count >=");
    }

  private:
    Shared<int64_t> Count{*this, "count", 0};
  };
  BadMonitor M;
  EXPECT_DEATH(M.wait(), "waituntil predicate");
}

TEST(MonitorTest, SharedVariableAccessOutsideMonitorIsFatal) {
  class Leaky : public Monitor {
  public:
    Shared<int64_t> Count{*this, "count", 0};
  };
  Leaky M;
  EXPECT_DEATH((void)M.Count.get(), "outside the monitor");
  EXPECT_DEATH(M.Count.set(1), "outside the monitor");
}

TEST(MonitorTest, SharedBoolVariables) {
  class Flagged : public Monitor {
  public:
    void setReady() {
      Region R(*this);
      Ready = true;
    }
    void awaitReady() {
      Region R(*this);
      waitUntil(Ready.expr());
    }
    AUTOSYNCH_TEST_WAITER_PROBE()

  private:
    Shared<bool> Ready{*this, "ready", false};
  };
  Flagged M;
  std::thread W([&] { M.awaitReady(); });
  awaitWaiters(M, 1);
  M.setReady();
  W.join();
}

TEST(MonitorTest, EquivalentPredicatesShareOneRegistration) {
  // "x >= 48", "48 <= x", and "2x >= 96" must hit one table entry.
  class M1 : public Monitor {
  public:
    void bump() {
      Region R(*this);
      X += 100;
    }
    void waitA() {
      Region R(*this);
      waitUntil(X >= 48);
    }
    void waitB() {
      Region R(*this);
      waitUntil(48 <= X);
    }
    void waitC() {
      Region R(*this);
      waitUntil(X * 2 >= 96);
    }
    AUTOSYNCH_TEST_WAITER_PROBE()
    using Monitor::conditionManager;

  private:
    Shared<int64_t> X{*this, "x", 0};
  };

  M1 M;
  std::thread A([&] { M.waitA(); });
  std::thread B([&] { M.waitB(); });
  std::thread C([&] { M.waitC(); });
  awaitWaiters(M, 3);
  M.bump();
  A.join();
  B.join();
  C.join();
  // All three blocked before the bump, so exactly one registration was
  // created and the equivalent predicates shared it.
  EXPECT_EQ(M.conditionManager().stats().Registrations, 1u);
}

TEST(MonitorTest, EagerRegistrationIsReused) {
  class M2 : public Monitor {
  public:
    M2() { registerPredicate("x >= 5"); }
    void bump() {
      Region R(*this);
      X += 5;
    }
    void wait() {
      Region R(*this);
      waitUntil(X >= 5);
    }
    AUTOSYNCH_TEST_WAITER_PROBE()
    using Monitor::conditionManager;

  private:
    Shared<int64_t> X{*this, "x", 0};
  };
  M2 M;
  EXPECT_EQ(M.conditionManager().numRegistered(), 1u);
  std::thread W([&] { M.wait(); });
  awaitWaiters(M, 1);
  M.bump();
  W.join();
  EXPECT_EQ(M.conditionManager().stats().Registrations, 1u);
  EXPECT_GE(M.conditionManager().stats().CacheReuses, 1u);
}

TEST(MonitorTest, RegionDepthSurvivesBlockedWait) {
  // Regression (found by the differential signaling oracle): a region
  // whose waitUntil blocked resumes after other regions fully exited —
  // which used to leave Depth at 0 and misfire the nested-region check
  // on the region's *second* waitUntil (the sleeping barber's shape).
  class TwoWaits : public Monitor {
  public:
    void rendezvous() {
      Region R(*this);
      waitUntil(X >= 1); // Blocks until poke(); waker fully exits.
      waitUntil(Y >= 0); // Used to abort: Depth clobbered to 0.
      X -= 1;
    }
    void poke() {
      Region R(*this);
      X += 1;
    }
    AUTOSYNCH_TEST_WAITER_PROBE()
    using Monitor::conditionManager;

  private:
    Shared<int64_t> X{*this, "x", 0};
    Shared<int64_t> Y{*this, "y", 0};
  };
  TwoWaits M;
  std::thread W([&] { M.rendezvous(); });
  awaitWaiters(M, 1);
  M.poke(); // Full enter/exit while W is parked.
  W.join();
  EXPECT_EQ(M.conditionManager().numWaiters(), 0);
}

} // namespace

//===- tests/core/ConditionManagerTest.cpp - Manager bookkeeping tests ------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/Monitor.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace autosynch;

namespace {

/// Ping-pong monitor creating many distinct predicates so the inactive
/// cache and eviction paths are exercised.
class TurnMonitor : public Monitor {
public:
  explicit TurnMonitor(MonitorConfig Cfg) : Monitor(Cfg) {}

  void awaitTurn(int64_t T) {
    Region R(*this);
    waitUntil(Turn == T);
  }

  void advance() {
    Region R(*this);
    Turn += 1;
  }

  void reset() {
    Region R(*this);
    Turn = 0;
  }

  AUTOSYNCH_TEST_WAITER_PROBE()

  using Monitor::conditionManager;

private:
  Shared<int64_t> Turn{*this, "turn", 0};
};

TEST(ConditionManagerTest, InactiveCacheReusesPredicates) {
  MonitorConfig Cfg;
  Cfg.InactiveCacheLimit = 64;
  TurnMonitor M(Cfg);

  // Two rounds over the same predicates: round two reuses the parked
  // registrations instead of creating new ones.
  for (int Round = 0; Round != 2; ++Round) {
    M.reset();
    for (int64_t T = 1; T <= 4; ++T) {
      std::thread W([&M, T] { M.awaitTurn(T); });
      testutil::awaitWaiters(M, 1);
      for (int64_t Step = 0; Step != T; ++Step)
        M.advance();
      W.join();
      M.reset();
    }
  }

  const ManagerStats &S = M.conditionManager().stats();
  EXPECT_LE(S.Registrations, 4u);
  EXPECT_GE(S.CacheReuses, 1u);
  EXPECT_EQ(M.conditionManager().numWaiters(), 0);
}

TEST(ConditionManagerTest, EvictionBoundsTheTable) {
  MonitorConfig Cfg;
  Cfg.InactiveCacheLimit = 4;
  TurnMonitor M(Cfg);

  // 32 distinct predicates in sequence; the table must stay bounded by
  // the cache limit (plus actives, which drain to zero).
  for (int64_t T = 1; T <= 32; ++T) {
    std::thread W([&M, T] { M.awaitTurn(T); });
    // Let the waiter block (and register) before its predicate turns true;
    // otherwise it takes the fast path and registers nothing.
    testutil::awaitWaiters(M, 1);
    M.advance();
    W.join();
  }
  EXPECT_LE(M.conditionManager().inactiveCacheSize(), 4u);
  EXPECT_LE(M.conditionManager().numRegistered(), 5u);
  EXPECT_GE(M.conditionManager().stats().Evictions, 10u);
}

TEST(ConditionManagerTest, StatsTrackWaitsAndSignals) {
  MonitorConfig Cfg;
  TurnMonitor M(Cfg);
  std::thread W([&] { M.awaitTurn(1); });
  testutil::awaitWaiters(M, 1);
  M.advance();
  W.join();
  const ManagerStats &S = M.conditionManager().stats();
  EXPECT_EQ(S.Waits, 1u);
  EXPECT_EQ(S.SignalsSent, 1u);
  EXPECT_GE(S.RelayCalls, 1u);
}

TEST(ConditionManagerTest, ResetStatsClears) {
  TurnMonitor M(MonitorConfig{});
  std::thread W([&] { M.awaitTurn(1); });
  testutil::awaitWaiters(M, 1);
  M.advance();
  W.join();
  M.conditionManager().resetStats();
  EXPECT_EQ(M.conditionManager().stats().Waits, 0u);
  EXPECT_EQ(M.conditionManager().stats().SignalsSent, 0u);
}

TEST(ConditionManagerTest, CompiledEvalBehavesIdentically) {
  // Note: a waiter on `turn == T` is only woken while the equality holds;
  // advancing past T concurrently is allowed to strand it (the paper's
  // semantics), so each round advances exactly once and joins.
  MonitorConfig Cfg;
  Cfg.UseCompiledEval = true;
  TurnMonitor M(Cfg);
  for (int64_t T = 1; T <= 8; ++T) {
    std::thread W([&M, T] { M.awaitTurn(T); });
    M.advance();
    W.join();
  }
  EXPECT_EQ(M.conditionManager().numWaiters(), 0);
  EXPECT_LE(M.conditionManager().stats().Registrations, 8u);
}

TEST(ConditionManagerTest, PhaseTimersAccumulateWhenEnabled) {
  MonitorConfig Cfg;
  Cfg.EnablePhaseTimers = true;
  TurnMonitor M(Cfg);
  std::thread W([&] { M.awaitTurn(1); });
  testutil::awaitWaiters(M, 1);
  M.advance();
  W.join();
  PhaseTimers &T = M.conditionManager().timers();
  EXPECT_GT(T.totalNs(PhaseTimers::Await), 0u);
  EXPECT_GT(T.totalNs(PhaseTimers::Relay), 0u);
  // The waiter registered tags (Tagged policy default).
  EXPECT_GT(T.totalNs(PhaseTimers::TagMgmt), 0u);
}

TEST(ConditionManagerTest, PhaseTimersSilentWhenDisabled) {
  MonitorConfig Cfg;
  Cfg.EnablePhaseTimers = false;
  TurnMonitor M(Cfg);
  std::thread W([&] { M.awaitTurn(1); });
  testutil::awaitWaiters(M, 1);
  M.advance();
  W.join();
  PhaseTimers &T = M.conditionManager().timers();
  EXPECT_EQ(T.totalNs(PhaseTimers::Await), 0u);
  EXPECT_EQ(T.totalNs(PhaseTimers::Relay), 0u);
}

TEST(ConditionManagerTest, TaggedSearchStatsAdvance) {
  MonitorConfig Cfg;
  Cfg.Policy = SignalPolicy::Tagged;
  TurnMonitor M(Cfg);
  std::thread W([&] { M.awaitTurn(1); });
  testutil::awaitWaiters(M, 1);
  M.advance();
  W.join();
  const TagSearchStats &S = M.conditionManager().stats().Search;
  EXPECT_GE(S.SharedExprEvals, 1u);
  EXPECT_GE(S.PredicateChecks, 1u);
}

} // namespace

//===- tests/core/StressTest.cpp - Randomized monitor stress -----------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Heavier randomized stress across policies and sync backends: mixed
// threshold/equivalence/boolean predicates churning registrations, with
// conservation oracles. These are the tests most likely to surface relay
// lost-wakeup bugs (they hang, and the ctest timeout flags them).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/Monitor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

/// A small "warehouse": deposits, withdrawals, a gate flag, and an epoch
/// counter — covering threshold, boolean, and equivalence predicates in
/// one monitor.
class Warehouse : public Monitor {
public:
  explicit Warehouse(MonitorConfig Cfg) : Monitor(Cfg) {}

  void deposit(int64_t N) {
    Region R(*this);
    Stock += N;
  }

  void withdraw(int64_t N) {
    Region R(*this);
    waitUntil(Stock >= N && Open.expr());
    Stock -= N;
  }

  void setOpen(bool V) {
    Region R(*this);
    Open = V;
  }

  void nextEpoch() {
    Region R(*this);
    Epoch += 1;
  }

  void awaitEpoch(int64_t E) {
    Region R(*this);
    waitUntil(Epoch == E);
  }

  int64_t stock() {
    Region R(*this);
    return Stock.get();
  }

  AUTOSYNCH_TEST_WAITER_PROBE()
  using Monitor::conditionManager;

private:
  Shared<int64_t> Stock{*this, "stock", 0};
  Shared<int64_t> Epoch{*this, "epoch", 0};
  Shared<bool> Open{*this, "open", true};
};

struct StressCase {
  SignalPolicy Policy;
  sync::Backend Backend;
};

class MonitorStressTest : public ::testing::TestWithParam<StressCase> {};

INSTANTIATE_TEST_SUITE_P(
    All, MonitorStressTest,
    ::testing::Values(
        StressCase{SignalPolicy::Tagged, sync::Backend::Std},
        StressCase{SignalPolicy::Tagged, sync::Backend::Futex},
        StressCase{SignalPolicy::LinearScan, sync::Backend::Std},
        StressCase{SignalPolicy::LinearScan, sync::Backend::Futex},
        StressCase{SignalPolicy::Broadcast, sync::Backend::Std},
        StressCase{SignalPolicy::Broadcast, sync::Backend::Futex}),
    [](const auto &Info) {
      std::string Name = Info.param.Policy == SignalPolicy::Tagged
                             ? "tagged"
                         : Info.param.Policy == SignalPolicy::LinearScan
                             ? "linearscan"
                             : "broadcast";
      Name += Info.param.Backend == sync::Backend::Std ? "Std" : "Futex";
      return Name;
    });

TEST_P(MonitorStressTest, MixedPredicateChurn) {
  MonitorConfig Cfg;
  Cfg.Policy = GetParam().Policy;
  Cfg.Backend = GetParam().Backend;
  Cfg.InactiveCacheLimit = 8; // Exercise eviction under load.
  Warehouse W(Cfg);

  constexpr int Withdrawers = 6;
  constexpr int64_t OpsPerThread = 400;

  // Precompute total demand; one supplier covers it exactly.
  int64_t Total = 0;
  for (int T = 0; T != Withdrawers; ++T)
    for (int64_t I = 0; I != OpsPerThread; ++I)
      Total += (T * 7 + I) % 9 + 1;

  std::vector<std::thread> Pool;
  Pool.emplace_back([&W, Total] {
    for (int64_t Left = Total; Left > 0;) {
      int64_t N = Left < 3 ? Left : 3;
      W.deposit(N);
      Left -= N;
    }
  });
  // A gate toggler: closes and reopens the warehouse repeatedly. Waiters
  // must hold while closed (the boolean conjunct) yet never be stranded.
  Pool.emplace_back([&W] {
    for (int I = 0; I != 50; ++I) {
      W.setOpen(false);
      std::this_thread::yield();
      W.setOpen(true);
    }
  });
  for (int T = 0; T != Withdrawers; ++T) {
    Pool.emplace_back([&W, T] {
      for (int64_t I = 0; I != OpsPerThread; ++I)
        W.withdraw((T * 7 + I) % 9 + 1);
    });
  }
  for (auto &T : Pool)
    T.join();

  EXPECT_EQ(W.stock(), 0);
  EXPECT_EQ(W.conditionManager().numWaiters(), 0);
  EXPECT_EQ(W.conditionManager().pendingSignals(), 0);
  if (GetParam().Policy != SignalPolicy::Broadcast) {
    EXPECT_EQ(W.conditionManager().stats().BroadcastSignals, 0u);
  }
}

TEST_P(MonitorStressTest, EpochBarrierChains) {
  // Equivalence-predicate chain: waiters for epochs 1..K are released in
  // order as the epoch advances.
  MonitorConfig Cfg;
  Cfg.Policy = GetParam().Policy;
  Cfg.Backend = GetParam().Backend;
  Warehouse W(Cfg);

  constexpr int64_t Epochs = 24;
  std::atomic<int64_t> Released{0};
  std::vector<std::thread> Pool;
  for (int64_t E = 1; E <= Epochs; ++E) {
    Pool.emplace_back([&W, &Released, E] {
      W.awaitEpoch(E);
      ++Released;
    });
  }
  // Drive epochs upward with a pause so waiters for every value get their
  // turn while that value is current.
  for (int64_t E = 1; E <= Epochs; ++E) {
    // Wait until the waiter for epoch E has been released before moving
    // on; otherwise an equality waiter could legitimately be skipped.
    W.nextEpoch();
    while (Released.load() < E)
      std::this_thread::yield();
  }
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Released.load(), Epochs);
}

TEST(MonitorLifecycleTest, DestructionWithWaitersIsFatal) {
  EXPECT_DEATH(
      {
        auto *W = new Warehouse(MonitorConfig{});
        std::thread T([&] { W->withdraw(100); });
        // Waiter-count probe, not a sleep: the waiter must be parked
        // before destruction or the test would pass vacuously.
        testutil::awaitWaiters(*W, 1);
        delete W; // A blocked waiter exists: must abort, not corrupt.
        T.join();
      },
      "blocked waiters");
}

} // namespace

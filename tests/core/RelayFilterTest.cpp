//===- tests/core/RelayFilterTest.cpp - Dirty-set relay tests ---------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Dirty-set-directed relay signaling (MonitorConfig::RelayFilter):
//
//  * behavioral unit tests — read-only exits skip the relay outright,
//    unrelated-variable writes are filtered by read-set intersection,
//    version stamps short-circuit re-evaluation across relay chains, and
//    stamps stay correct across inactive-cache revival and eviction;
//  * read-set extraction — the EDSL and parsed front ends produce plans
//    with identical shared read sets, matching the registered record's;
//  * a differential property suite — every problem monitor driven with an
//    identical seeded op sequence under RelayFilter::DirtySet vs. Always
//    on every relay mechanism x backend must complete with an identical
//    observable summary (a filtered-away wakeup would diverge or hang;
//    hangs are caught by the ctest timeout).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "bench_support/RelayRegistry.h"
#include "core/Monitor.h"
#include "expr/VarSet.h"
#include "parse/PredicateParser.h"
#include "problems/BoundedBuffer.h"
#include "problems/CyclicBarrier.h"
#include "problems/DiningPhilosophers.h"
#include "problems/H2O.h"
#include "problems/ParamBoundedBuffer.h"
#include "problems/ReadersWriters.h"
#include "problems/RoundRobin.h"
#include "problems/SantaClaus.h"
#include "problems/SleepingBarber.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

using namespace autosynch;
using testutil::awaitWaiters;

namespace {

//===----------------------------------------------------------------------===//
// VarSet basics
//===----------------------------------------------------------------------===//

TEST(VarSetTest, IntersectionAndSaturation) {
  VarSet A, B;
  EXPECT_TRUE(A.empty());
  EXPECT_FALSE(A.intersects(B)); // Empty sets intersect nothing.

  A.add(3);
  B.add(7);
  EXPECT_FALSE(A.intersects(B));
  B.add(3);
  EXPECT_TRUE(A.intersects(B));
  EXPECT_TRUE(A.contains(3));
  EXPECT_FALSE(A.contains(7));

  // A VarId beyond the word width saturates to universal: it intersects
  // every non-empty set but still not the empty one.
  VarSet Big;
  Big.add(VarSet::MaxDirect + 5);
  EXPECT_TRUE(Big.universal());
  EXPECT_TRUE(Big.intersects(A));
  VarSet Empty;
  EXPECT_FALSE(Big.intersects(Empty));
  EXPECT_TRUE(Big.contains(0));

  A.clear();
  EXPECT_TRUE(A.empty());
}

//===----------------------------------------------------------------------===//
// Behavioral monitors
//===----------------------------------------------------------------------===//

/// The registry-style scenario monitor shared with bench/relay_dirtyset
/// (see bench_support/RelayRegistry.h for the read/write-set table the
/// assertions below rely on).
using Registry = bench::RelayRegistry;

MonitorConfig relayConfig(SignalPolicy P, RelayFilter F) {
  MonitorConfig Cfg;
  Cfg.Policy = P;
  Cfg.Filter = F;
  return Cfg;
}

class RelayFilterPolicyTest : public ::testing::TestWithParam<SignalPolicy> {};

INSTANTIATE_TEST_SUITE_P(Policies, RelayFilterPolicyTest,
                         ::testing::Values(SignalPolicy::Tagged,
                                           SignalPolicy::LinearScan),
                         [](const auto &Info) {
                           return Info.param == SignalPolicy::Tagged
                                      ? "tagged"
                                      : "linearscan";
                         });

TEST_P(RelayFilterPolicyTest, ReadOnlyExitsSkipTheRelayOutright) {
  Registry M(relayConfig(GetParam(), RelayFilter::DirtySet));
  std::thread W([&] { M.waitLevel(100); });
  awaitWaiters(M, 1);

  M.conditionManager().resetStats();
  constexpr int Ops = 50;
  for (int I = 0; I != Ops; ++I)
    M.peek();

  const ManagerStats &S = M.conditionManager().stats();
  EXPECT_GE(S.RelayDirtySkips, static_cast<uint64_t>(Ops));
  EXPECT_EQ(S.Search.PredicateChecks, 0u);
  EXPECT_EQ(S.Search.SharedExprEvals, 0u);

  M.setLevel(100);
  W.join();
}

TEST_P(RelayFilterPolicyTest, UnrelatedWritesAreFilteredNotEvaluated) {
  Registry M(relayConfig(GetParam(), RelayFilter::DirtySet));
  std::thread W([&] { M.waitLevel(100); });
  awaitWaiters(M, 1);

  M.conditionManager().resetStats();
  constexpr int Ops = 50;
  for (int I = 0; I != Ops; ++I)
    M.bump(); // Writes `stamp`, which no waiter reads.

  const ManagerStats &S = M.conditionManager().stats();
  EXPECT_EQ(S.Search.PredicateChecks, 0u)
      << "a write to a variable outside every read set must not trigger "
         "predicate evaluation";
  EXPECT_GE(S.Search.FilteredExprs, static_cast<uint64_t>(Ops));

  M.setLevel(100);
  W.join();
}

TEST_P(RelayFilterPolicyTest, AlwaysFilterNeverSkips) {
  Registry M(relayConfig(GetParam(), RelayFilter::Always));
  std::thread W([&] { M.waitLevel(100); });
  awaitWaiters(M, 1);

  M.conditionManager().resetStats();
  constexpr int Ops = 50;
  for (int I = 0; I != Ops; ++I)
    M.peek();

  const ManagerStats &S = M.conditionManager().stats();
  EXPECT_EQ(S.RelayDirtySkips, 0u);
  EXPECT_EQ(S.StampShortCircuits, 0u);
  EXPECT_EQ(S.Search.FilteredExprs, 0u);
  // The ablation baseline really scans: every exit ran a search.
  EXPECT_GE(S.RelayCalls, static_cast<uint64_t>(Ops));
  if (GetParam() == SignalPolicy::LinearScan) {
    EXPECT_GE(S.Search.PredicateChecks, static_cast<uint64_t>(Ops));
  }

  M.setLevel(100);
  W.join();
}

TEST_P(RelayFilterPolicyTest, IdempotentWritesKeepTheFastExit) {
  Registry M(relayConfig(GetParam(), RelayFilter::DirtySet));
  std::thread W([&] { M.waitLevel(100); });
  awaitWaiters(M, 1);

  M.conditionManager().resetStats();
  constexpr int Ops = 25;
  for (int I = 0; I != Ops; ++I)
    M.setLevel(0); // Stores the value already there: no dirt.

  const ManagerStats &S = M.conditionManager().stats();
  EXPECT_GE(S.RelayDirtySkips, static_cast<uint64_t>(Ops));
  EXPECT_EQ(S.Search.PredicateChecks, 0u);

  M.setLevel(100);
  W.join();
}

TEST(RelayFilterTest, StampShortCircuitsAcrossRelayChains) {
  // LinearScan makes the scan order deterministic: W1 (level >= 10) parks
  // first, W2 (gate == 1) second. One region writes both variables: the
  // exit scan evaluates W1 false (stamping it) and signals W2. W2 resumes,
  // writes gate back, and its exit relay — with `level` still in the
  // accumulated dirty set but W1's version unchanged — must answer W1's
  // check from the stamp without re-running the bytecode.
  Registry M(relayConfig(SignalPolicy::LinearScan, RelayFilter::DirtySet));
  std::thread W1([&] { M.waitLevel(10); });
  awaitWaiters(M, 1);
  std::atomic<bool> W2Done{false};
  std::thread W2([&] {
    M.waitGate();
    M.setGate(0);
    W2Done = true;
  });
  awaitWaiters(M, 2);

  M.conditionManager().resetStats();
  M.setLevelAndGate(1, 1); // W1 still false; W2 becomes true.
  W2.join();
  EXPECT_TRUE(W2Done.load());

  const ManagerStats &S = M.conditionManager().stats();
  EXPECT_GE(S.StampShortCircuits, 1u)
      << "W2's exit relay re-checked W1 without a stamp hit";

  M.setLevel(10);
  W1.join();
  EXPECT_EQ(M.conditionManager().numWaiters(), 0);
  EXPECT_EQ(M.conditionManager().pendingSignals(), 0);
}

TEST(RelayFilterTest, StampsStayCorrectAcrossRevivalAndEviction) {
  // Revival: a record parked in the inactive cache and revived by a new
  // waiter must be re-evaluated (activation drops the stamp), and the
  // waiter must still complete. Eviction: with a zero cache limit the
  // record is destroyed between waits; the re-registered record starts
  // stampless. Either path losing a wakeup would hang this test.
  for (size_t CacheLimit : {size_t{64}, size_t{0}}) {
    MonitorConfig Cfg =
        relayConfig(SignalPolicy::Tagged, RelayFilter::DirtySet);
    Cfg.InactiveCacheLimit = CacheLimit;
    Registry M(Cfg);

    for (int Round = 0; Round != 4; ++Round) {
      std::thread W([&] { M.waitGate(); });
      awaitWaiters(M, 1);
      // Unrelated traffic first (stamps/filters engage), then the wake.
      M.bump();
      M.setLevel(Round + 1);
      M.setGate(1);
      W.join();
      M.setGate(0);
      EXPECT_EQ(M.conditionManager().numWaiters(), 0);
    }

    const ManagerStats &S = M.conditionManager().stats();
    if (CacheLimit == 0) {
      EXPECT_GE(S.Evictions, 1u);
    } else {
      EXPECT_GE(S.CacheReuses, 1u);
    }
  }
}

//===----------------------------------------------------------------------===//
// Read-set extraction
//===----------------------------------------------------------------------===//

TEST(ReadSetTest, EdslAndParsedFrontsAgree) {
  // The same predicate through both front ends: the plans' shared read
  // sets must be identical (the EDSL shape abstracts its literals into
  // slot locals, which must not leak into the read set).
  class Probe : public Monitor {
  public:
    Probe() : Monitor(MonitorConfig{}) {}

    const WaitPlan *edslPlan() {
      Region R(*this);
      Value Bound[WaitPlan::MaxSlots];
      size_t NumBound = 0;
      return planCache().forEdsl((Count + lit(3) <= Cap).ref(),
                                 config().Limits, Bound, NumBound);
    }

    const WaitPlan *parsedPlan() {
      Region R(*this);
      (void)local("n");
      PredicateParseOptions Options;
      Options.AutoDeclareLocals = true;
      PredicateParseResult PR = parsePredicate("count + n <= cap", arena(),
                                               symbols(), Options);
      EXPECT_TRUE(PR.ok());
      return planCache().forShape(PR.Expr, config().Limits);
    }

    VarSet slotReadSet() {
      Region R(*this);
      VarSet S;
      S.add(Count.id());
      S.add(Cap.id());
      return S;
    }

    using Monitor::arena;
    using Monitor::config;
    using Monitor::planCache;
    using Monitor::symbols;

  private:
    Shared<int64_t> Count{*this, "count", 0};
    Shared<int64_t> Cap{*this, "cap", 100};
  };

  Probe P;
  const WaitPlan *Edsl = P.edslPlan();
  const WaitPlan *Parsed = P.parsedPlan();
  ASSERT_NE(Edsl, nullptr);
  ASSERT_NE(Parsed, nullptr);
  EXPECT_EQ(Edsl->kind(), WaitPlan::Kind::Slotted);
  EXPECT_EQ(Parsed->kind(), WaitPlan::Kind::Slotted);
  EXPECT_TRUE(Edsl->readSet() == Parsed->readSet());
  EXPECT_TRUE(Edsl->readSet() == P.slotReadSet());
  EXPECT_FALSE(Edsl->readSet().universal());
}

TEST(ReadSetTest, RegisteredRecordsSeeEveryReadVariable) {
  // Multi-variable predicate: a write to either variable must reach the
  // waiter; a read-set that dropped one of them would strand it.
  class TwoVar : public Monitor {
  public:
    explicit TwoVar(MonitorConfig Cfg) : Monitor(Cfg) {}
    void waitBoth() {
      Region R(*this);
      waitUntil(A >= lit(1) && B >= lit(1));
    }
    void setA(int64_t V) {
      Region R(*this);
      A = V;
    }
    void setB(int64_t V) {
      Region R(*this);
      B = V;
    }
    AUTOSYNCH_TEST_WAITER_PROBE()
    using Monitor::conditionManager;

  private:
    Shared<int64_t> A{*this, "a", 0};
    Shared<int64_t> B{*this, "b", 0};
  };

  for (SignalPolicy P : {SignalPolicy::Tagged, SignalPolicy::LinearScan}) {
    TwoVar M(relayConfig(P, RelayFilter::DirtySet));
    std::thread W([&] { M.waitBoth(); });
    awaitWaiters(M, 1);
    M.setA(1); // Predicate still false; must be evaluated, not filtered.
    M.setB(1); // Now true; the relay must find it through `b` alone.
    W.join();
    EXPECT_EQ(M.conditionManager().numWaiters(), 0);
  }
}

//===----------------------------------------------------------------------===//
// Differential property suite: DirtySet vs Always on the problem monitors
//===----------------------------------------------------------------------===//

struct Combo {
  Mechanism M;
  sync::Backend B;
  RelayFilter F;
};

const std::vector<Combo> &allCombos() {
  static const std::vector<Combo> Combos = [] {
    std::vector<Combo> Out;
    for (Mechanism M : {Mechanism::AutoSynchT, Mechanism::AutoSynch})
      for (sync::Backend B : {sync::Backend::Std, sync::Backend::Futex})
        for (RelayFilter F : {RelayFilter::Always, RelayFilter::DirtySet})
          Out.push_back({M, B, F});
    return Out;
  }();
  return Combos;
}

std::string comboName(const Combo &C) {
  return std::string(mechanismName(C.M)) + "/" + sync::backendName(C.B) +
         "/" + relayFilterName(C.F);
}

/// Runs \p History for every mechanism x backend x filter combination and
/// asserts each summary equals the first one's. The factories read the
/// relay filter through defaultRelayFilter(), restored afterwards.
void differential(
    const std::function<std::vector<int64_t>(const Combo &)> &History) {
  RelayFilter Prev = defaultRelayFilter();
  std::vector<int64_t> Reference;
  const std::vector<Combo> &Combos = allCombos();
  for (size_t I = 0; I != Combos.size(); ++I) {
    setDefaultRelayFilter(Combos[I].F);
    std::vector<int64_t> Summary = History(Combos[I]);
    if (I == 0) {
      Reference = std::move(Summary);
      continue;
    }
    EXPECT_EQ(Summary, Reference)
        << comboName(Combos[I]) << " diverges from "
        << comboName(Combos[0]);
  }
  setDefaultRelayFilter(Prev);
}

TEST(RelayFilterOracleTest, BoundedBufferFifo) {
  AUTOSYNCH_SEEDED_RNG(R, 1201);
  constexpr int64_t Items = 400;
  std::vector<int64_t> Produced;
  for (int64_t I = 0; I != Items; ++I)
    Produced.push_back(R.range(-1000, 1000));

  differential([&](const Combo &C) {
    auto B = makeBoundedBuffer(C.M, 4, C.B);
    std::vector<int64_t> Consumed;
    Consumed.reserve(Items);
    std::thread Producer([&] {
      for (int64_t V : Produced)
        B->put(V);
    });
    for (int64_t I = 0; I != Items; ++I)
      Consumed.push_back(B->take());
    Producer.join();
    Consumed.push_back(B->size());
    return Consumed;
  });
}

TEST(RelayFilterOracleTest, ParamBoundedBufferBatches) {
  AUTOSYNCH_SEEDED_RNG(R, 1202);
  constexpr int Consumers = 3;
  std::vector<std::vector<int64_t>> Takes(Consumers);
  int64_t Total = 0;
  for (auto &T : Takes)
    for (int I = 0; I != 40; ++I) {
      T.push_back(R.range(1, 6));
      Total += T.back();
    }
  std::vector<int64_t> Puts;
  for (int64_t Left = Total; Left > 0;) {
    int64_t N = std::min<int64_t>(Left, R.range(1, 8));
    Puts.push_back(N);
    Left -= N;
  }

  differential([&](const Combo &C) {
    auto B = makeParamBoundedBuffer(C.M, 16, C.B);
    std::vector<std::thread> Pool;
    Pool.emplace_back([&] {
      for (int64_t N : Puts)
        B->put(N);
    });
    for (int Cons = 0; Cons != Consumers; ++Cons)
      Pool.emplace_back([&, Cons] {
        for (int64_t N : Takes[Cons])
          B->take(N);
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{B->size()};
  });
}

TEST(RelayFilterOracleTest, H2OMolecules) {
  constexpr int64_t Molecules = 80;
  constexpr int HThreads = 4;
  differential([&](const Combo &C) {
    auto W = makeH2O(C.M, C.B);
    std::atomic<int64_t> HLeft{2 * Molecules};
    std::vector<std::thread> Pool;
    Pool.emplace_back([&] {
      for (int64_t I = 0; I != Molecules; ++I)
        W->oxygen();
    });
    for (int T = 0; T != HThreads; ++T)
      Pool.emplace_back([&] {
        while (HLeft.fetch_sub(1) > 0)
          W->hydrogen();
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{W->molecules()};
  });
}

TEST(RelayFilterOracleTest, SleepingBarberCuts) {
  constexpr int64_t Cuts = 120;
  constexpr int Customers = 4;
  differential([&](const Combo &C) {
    auto S = makeSleepingBarber(C.M, 3, C.B);
    std::atomic<int64_t> CutsLeft{Cuts};
    std::vector<std::thread> Pool;
    Pool.emplace_back([&] {
      for (int64_t I = 0; I != Cuts; ++I)
        S->cutHair();
    });
    for (int T = 0; T != Customers; ++T)
      Pool.emplace_back([&] {
        while (CutsLeft.fetch_sub(1) > 0)
          while (!S->getHaircut())
            std::this_thread::yield();
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{S->haircuts()};
  });
}

TEST(RelayFilterOracleTest, RoundRobinRotation) {
  constexpr int Threads = 4;
  constexpr int64_t Rounds = 80;
  differential([&](const Combo &C) {
    auto RR = makeRoundRobin(C.M, Threads, C.B);
    std::vector<std::thread> Pool;
    for (int T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] {
        for (int64_t I = 0; I != Rounds; ++I)
          RR->access(T);
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{RR->accesses()};
  });
}

TEST(RelayFilterOracleTest, ReadersWritersConservation) {
  AUTOSYNCH_SEEDED_RNG(R, 1203);
  constexpr int Actors = 4;
  std::vector<std::vector<bool>> Script(Actors);
  for (auto &S : Script)
    for (int I = 0; I != 100; ++I)
      S.push_back(R.chance(3, 4));

  differential([&](const Combo &C) {
    auto RW = makeReadersWriters(C.M, C.B);
    std::vector<std::thread> Pool;
    for (int A = 0; A != Actors; ++A)
      Pool.emplace_back([&, A] {
        for (bool IsRead : Script[A]) {
          if (IsRead) {
            RW->startRead();
            RW->endRead();
          } else {
            RW->startWrite();
            RW->endWrite();
          }
        }
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{RW->reads(), RW->writes()};
  });
}

TEST(RelayFilterOracleTest, DiningPhilosophersMeals) {
  constexpr int Philosophers = 5;
  constexpr int64_t Meals = 50;
  differential([&](const Combo &C) {
    auto D = makeDiningPhilosophers(C.M, Philosophers, C.B);
    std::vector<std::thread> Pool;
    for (int P = 0; P != Philosophers; ++P)
      Pool.emplace_back([&, P] {
        for (int64_t I = 0; I != Meals; ++I) {
          D->pickUp(P);
          D->putDown(P);
        }
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{D->meals()};
  });
}

TEST(RelayFilterOracleTest, CyclicBarrierGenerations) {
  constexpr int Parties = 4;
  constexpr int64_t Generations = 60;
  differential([&](const Combo &C) {
    auto B = makeCyclicBarrier(C.M, Parties, C.B);
    std::vector<std::vector<int64_t>> Indices(Parties);
    std::vector<std::thread> Pool;
    for (int P = 0; P != Parties; ++P)
      Pool.emplace_back([&, P] {
        for (int64_t G = 0; G != Generations; ++G)
          Indices[P].push_back(B->await());
      });
    for (auto &T : Pool)
      T.join();
    std::vector<int64_t> Histogram(Parties, 0);
    for (auto &V : Indices)
      for (int64_t I : V)
        ++Histogram[I];
    Histogram.push_back(B->trips());
    return Histogram;
  });
}

TEST(RelayFilterOracleTest, SantaClausGroups) {
  constexpr int64_t Deliveries = 12;
  constexpr int64_t Consultations = 36;
  differential([&](const Combo &C) {
    auto S = makeSantaClaus(C.M, /*ReindeerTeam=*/5, /*ElfGroup=*/3, C.B);
    std::atomic<int64_t> RLeft{5 * Deliveries};
    std::atomic<int64_t> ELeft{3 * Consultations};
    std::vector<std::thread> Pool;
    Pool.emplace_back([&] {
      for (int64_t I = 0; I != Deliveries + Consultations; ++I)
        S->santa();
    });
    for (int T = 0; T != 5; ++T)
      Pool.emplace_back([&] {
        while (RLeft.fetch_sub(1) > 0)
          S->reindeer();
      });
    for (int T = 0; T != 6; ++T)
      Pool.emplace_back([&] {
        while (ELeft.fetch_sub(1) > 0)
          S->elf();
      });
    for (auto &T : Pool)
      T.join();
    return std::vector<int64_t>{S->deliveries(), S->consultations()};
  });
}

/// A monitor with more shared variables than the VarSet word width, so
/// both the dirty set and the waiters' read sets saturate. The filter
/// must degrade to conservative (scan everything), never drop a wakeup.
class WideMonitor : public Monitor {
public:
  explicit WideMonitor(MonitorConfig Cfg) : Monitor(Cfg) {
    Vars.reserve(NumVars);
    for (int I = 0; I != NumVars; ++I)
      Vars.push_back(std::make_unique<Shared<int64_t>>(
          *this, "v" + std::to_string(I), 0));
  }

  void set(int I, int64_t V) {
    Region R(*this);
    *Vars[I] = V;
  }

  bool awaitAtLeast(int I, int64_t Want,
                    std::chrono::nanoseconds Timeout) {
    Region R(*this);
    return waitUntilFor(Vars[I]->expr() >= lit(Want), Timeout);
  }

  AUTOSYNCH_TEST_WAITER_PROBE()

  static constexpr int NumVars = 72; // > VarSet::MaxDirect.

private:
  std::vector<std::unique_ptr<Shared<int64_t>>> Vars;
};

TEST_P(RelayFilterPolicyTest, SaturatedSetsNeverDropAWakeup) {
  // Waiters parked on variables above the saturation boundary (their
  // read sets are universal) and below it, while unrelated writes churn
  // the dirty set across the boundary: every waiter must be woken when
  // its own variable is finally written.
  WideMonitor M(relayConfig(GetParam(), RelayFilter::DirtySet));
  constexpr int HighVar = 70, LowVar = 3, NoiseVar = 68;
  std::thread THigh([&] {
    EXPECT_TRUE(
        M.awaitAtLeast(HighVar, 1, std::chrono::seconds(30)));
  });
  std::thread TLow([&] {
    EXPECT_TRUE(M.awaitAtLeast(LowVar, 1, std::chrono::seconds(30)));
  });
  awaitWaiters(M, 2);
  // Noise writes: dirty set saturates (NoiseVar >= 64) and clears again
  // through empty-handed scans; waiters must survive every transition.
  for (int I = 0; I != 50; ++I)
    M.set(NoiseVar, I + 1);
  M.set(HighVar, 1);
  THigh.join();
  M.set(LowVar, 1);
  TLow.join();
}

} // namespace

//===- tests/core/RelayTest.cpp - Relay invariance tests (§4.2) -------------===//
//
// Part of AutoSynch-C++, a reproduction of "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (Hung & Garg, PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The paper's headline guarantee: the relay policies never call signalAll,
// yet no waiter whose predicate became true is stranded. The baseline
// (Broadcast) policy, by contrast, must show signalAll traffic.
//
//===----------------------------------------------------------------------===//

#include "core/Monitor.h"
#include "sync/Counters.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace autosynch;

namespace {

/// Batch-threshold monitor: waiters demand different amounts, the producer
/// deposits in chunks — the paper's §3 scenario where explicit signaling
/// would need signalAll.
class PoolMonitor : public Monitor {
public:
  explicit PoolMonitor(MonitorConfig Cfg) : Monitor(Cfg) {}

  void deposit(int64_t N) {
    Region R(*this);
    Level += N;
  }

  void withdraw(int64_t N) {
    Region R(*this);
    waitUntil(Level >= N);
    Level -= N;
  }

  int64_t level() {
    Region R(*this);
    return Level.get();
  }

  using Monitor::conditionManager;

private:
  Shared<int64_t> Level{*this, "level", 0};
};

class RelayTest : public ::testing::TestWithParam<SignalPolicy> {
protected:
  MonitorConfig config() {
    MonitorConfig Cfg;
    Cfg.Policy = GetParam();
    return Cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(Policies, RelayTest,
                         ::testing::Values(SignalPolicy::Tagged,
                                           SignalPolicy::LinearScan),
                         [](const auto &Info) {
                           return Info.param == SignalPolicy::Tagged
                                      ? "tagged"
                                      : "linearscan";
                         });

TEST_P(RelayTest, RelayPoliciesNeverSignalAll) {
  sync::CountersSnapshot Before = sync::Counters::global().snapshot();

  PoolMonitor M(config());
  constexpr int Waiters = 12;
  std::vector<std::thread> Pool;
  for (int I = 1; I <= Waiters; ++I)
    Pool.emplace_back([&M, I] { M.withdraw(I); });
  // Total demand: 78. Deposit in odd chunks to shuffle wake order.
  std::thread Producer([&] {
    for (int I = 0; I != 26; ++I)
      M.deposit(3);
  });
  for (auto &T : Pool)
    T.join();
  Producer.join();

  sync::CountersSnapshot Delta =
      sync::Counters::global().snapshot() - Before;
  EXPECT_EQ(Delta.SignalAlls, 0u) << "relay policy used signalAll";
  EXPECT_EQ(M.level(), 0);
  EXPECT_EQ(M.conditionManager().stats().BroadcastSignals, 0u);
}

TEST_P(RelayTest, EveryTrueWaiterEventuallyRuns) {
  // Interleave producers and varied-demand waiters; everything must
  // drain — the liveness half of relay invariance (Prop. 2).
  PoolMonitor M(config());
  std::atomic<int> Done{0};
  constexpr int Waiters = 24;
  std::vector<std::thread> Pool;
  for (int I = 0; I != Waiters; ++I) {
    Pool.emplace_back([&M, &Done, I] {
      M.withdraw((I % 6) + 1);
      ++Done;
    });
  }
  int64_t Total = 0;
  for (int I = 0; I != Waiters; ++I)
    Total += (I % 6) + 1;
  std::thread Producer([&] {
    for (int64_t I = 0; I != Total; ++I)
      M.deposit(1);
  });
  for (auto &T : Pool)
    T.join();
  Producer.join();
  EXPECT_EQ(Done.load(), Waiters);
  EXPECT_EQ(M.level(), 0);
  EXPECT_EQ(M.conditionManager().pendingSignals(), 0);
}

TEST_P(RelayTest, SignalsDoNotExceedWakeBudget) {
  // Directed signaling: the number of signals stays in the order of the
  // number of successful wakeups, never the waiter-count blowup that
  // broadcast suffers.
  PoolMonitor M(config());
  constexpr int Waiters = 16;
  std::vector<std::thread> Pool;
  for (int I = 1; I <= Waiters; ++I)
    Pool.emplace_back([&M, I] { M.withdraw(I); });
  std::thread Producer([&] {
    for (int I = 0; I != Waiters * (Waiters + 1) / 2; ++I)
      M.deposit(1);
  });
  for (auto &T : Pool)
    T.join();
  Producer.join();

  const ManagerStats &S = M.conditionManager().stats();
  // Each signal is directed at a then-true predicate. A signaled thread's
  // predicate can be falsified before it resumes, so allow some slack,
  // but far below broadcast's Waiters * deposits.
  EXPECT_LE(S.SignalsSent, static_cast<uint64_t>(4 * Waiters));
}

TEST(RelayBaselineTest, BroadcastUsesSignalAll) {
  MonitorConfig Cfg;
  Cfg.Policy = SignalPolicy::Broadcast;
  PoolMonitor M(Cfg);
  std::thread W([&] { M.withdraw(5); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (int I = 0; I != 5; ++I)
    M.deposit(1);
  W.join();
  EXPECT_GE(M.conditionManager().stats().BroadcastSignals, 1u);
}

TEST(RelayBaselineTest, BroadcastAlsoDrains) {
  MonitorConfig Cfg;
  Cfg.Policy = SignalPolicy::Broadcast;
  PoolMonitor M(Cfg);
  std::vector<std::thread> Pool;
  for (int I = 1; I <= 10; ++I)
    Pool.emplace_back([&M, I] { M.withdraw(I); });
  std::thread Producer([&] {
    for (int I = 0; I != 55; ++I)
      M.deposit(1);
  });
  for (auto &T : Pool)
    T.join();
  Producer.join();
  EXPECT_EQ(M.level(), 0);
}

/// Token-ring monitor: thread T blocks on `turn == T`, then passes the
/// token on. Every handoff is one monitor exit whose relay wakeup is
/// deferred past the unlock — the densest possible exercise of the
/// deferred-signal path.
class RingMonitor : public Monitor {
public:
  explicit RingMonitor(MonitorConfig Cfg) : Monitor(Cfg) {}

  void pass(int64_t Me, int64_t Next) {
    Region R(*this);
    waitUntil(Turn == Me);
    Turn = Next;
  }

  int64_t turn() {
    Region R(*this);
    return Turn.get();
  }

private:
  Shared<int64_t> Turn{*this, "turn", 0};
};

TEST(RelayDeferredWakeTest, TokenRingHandoffsOnBothBackends) {
  // Monitor::exit picks the relay winner under the lock but issues the
  // condvar signal after releasing it. A lost or misordered deferred
  // wakeup shows up as a hang (ctest timeout) or a wrong final token.
  // Runs under TSan in CI: the post-unlock signal must not race record
  // reuse or the condvar counters.
  for (sync::Backend B : {sync::Backend::Std, sync::Backend::Futex}) {
    for (SignalPolicy P :
         {SignalPolicy::Tagged, SignalPolicy::LinearScan,
          SignalPolicy::Broadcast}) {
      MonitorConfig Cfg;
      Cfg.Policy = P;
      Cfg.Backend = B;
      RingMonitor M(Cfg);
      constexpr int64_t Threads = 4;
      constexpr int64_t Rounds = 200;
      std::vector<std::thread> Pool;
      for (int64_t T = 0; T != Threads; ++T) {
        Pool.emplace_back([&M, T] {
          for (int64_t I = 0; I != Rounds; ++I) {
            int64_t Me = I * Threads + T;
            M.pass(Me, Me + 1);
          }
        });
      }
      for (auto &T : Pool)
        T.join();
      EXPECT_EQ(M.turn(), Threads * Rounds)
          << sync::backendName(B) << "/" << signalPolicyName(P);
      EXPECT_EQ(M.conditionManager().numWaiters(), 0);
      EXPECT_EQ(M.conditionManager().pendingSignals(), 0);
    }
  }
}

TEST(RelayStressTest, MixedDemandsManyRounds) {
  // Heavier randomized stress across both relay policies.
  for (SignalPolicy P : {SignalPolicy::Tagged, SignalPolicy::LinearScan}) {
    MonitorConfig Cfg;
    Cfg.Policy = P;
    PoolMonitor M(Cfg);
    constexpr int Threads = 8;
    constexpr int Rounds = 200;
    std::vector<std::thread> Pool;
    for (int T = 0; T != Threads; ++T) {
      Pool.emplace_back([&M, T] {
        for (int I = 0; I != Rounds; ++I) {
          M.deposit((T + I) % 5 + 1);
          M.withdraw((T + I) % 5 + 1);
        }
      });
    }
    for (auto &T : Pool)
      T.join();
    EXPECT_EQ(M.level(), 0) << signalPolicyName(P);
    EXPECT_EQ(M.conditionManager().numWaiters(), 0);
  }
}

} // namespace
